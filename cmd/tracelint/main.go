// Command tracelint validates a JSONL span trace written by tv -trace or
// keq -trace: every line must parse as a span record, span IDs must be
// unique, every parent must exist, and every child must nest within its
// parent's interval. On success it prints a per-span-name summary; any
// violation is reported and the exit status is 1.
//
// Usage:
//
//	tracelint trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/telemetry"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracelint trace.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	check(err)
	records, err := telemetry.ReadJSONL(f)
	f.Close()
	check(err)
	if err := telemetry.Lint(records); err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", path, err)
		os.Exit(1)
	}

	byName := make(map[string]int)
	var roots, children int
	for _, r := range records {
		byName[r.Name]++
		if r.Parent == 0 {
			roots++
		} else {
			children++
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("%s: %d spans (%d roots, %d children), all nested correctly\n",
		path, len(records), roots, children)
	for _, n := range names {
		fmt.Printf("  %-22s %6d\n", n, byName[n])
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracelint:", err)
		os.Exit(2)
	}
}
