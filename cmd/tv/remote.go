package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/corpus"
	"repro/internal/llvmir"
	"repro/internal/telemetry"
	"repro/internal/tv"
	"repro/internal/tvd"
)

// remoteBatch sends fns to a tvd daemon as one batch and returns the
// result. Progress lines (one per function, in completion order) mirror
// the local harness format, with a "cached" marker for store hits.
func remoteBatch(addr string, fns []corpus.Function, budget tv.Budget,
	wantProofs, wantTrace bool, progress io.Writer) (*tvd.BatchResult, error) {
	c := tvd.NewClient(addr)
	c.RetryBudget = 2 * time.Minute
	req := &tvd.BatchRequest{
		TimeoutSeconds: budget.Timeout.Seconds(),
		MaxTermNodes:   budget.MaxTermNodes,
		ConflictBudget: budget.ConflictBudget,
		Proofs:         wantProofs,
		Trace:          wantTrace,
	}
	for _, f := range fns {
		req.Jobs = append(req.Jobs, tvd.JobRequest{Fn: f.Name, IR: f.Src})
	}
	done := 0
	return c.ValidateAll(req, func(rec telemetry.Record) {
		if progress == nil {
			return
		}
		done++
		fn, _ := rec.Attrs["fn"].(string)
		class, _ := rec.Attrs["class"].(string)
		mark := ""
		if cached, _ := rec.Attrs["cached"].(bool); cached {
			mark = " (store)"
		}
		fmt.Fprintf(progress, "%4d/%d %-8s %-28s %8.2fs%s\n",
			done, len(fns), fn, class,
			time.Duration(rec.DurNS).Seconds(), mark)
	})
}

// finishRemote handles the client-side outputs every remote run shares:
// materializing -emit-proofs artifacts, writing the -trace span file,
// and reporting store traffic.
func finishRemote(res *tvd.BatchResult, proofDir, traceFile string) {
	fmt.Fprintf(os.Stderr, "tv: server run: %d/%d functions from the result store\n",
		res.StoreHits, res.StoreHits+res.StoreMisses)
	if proofDir != "" {
		check(os.MkdirAll(proofDir, 0o755))
		check(tvd.MaterializeProofs(proofDir, res))
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		check(err)
		enc := json.NewEncoder(f)
		for i := range res.Trace {
			check(enc.Encode(&res.Trace[i]))
		}
		check(f.Close())
	}
}

// validateFileRemote is single-file mode against a daemon: every
// defined function in the module becomes one job.
func validateFileRemote(path, addr string, budget tv.Budget,
	proofDir, traceFile string, statsJSON bool) int {
	src, err := os.ReadFile(path)
	check(err)
	mod, err := llvmir.Parse(string(src))
	check(err)
	check(llvmir.Verify(mod))
	var fns []corpus.Function
	for _, fn := range mod.Funcs {
		if fn.Defined() {
			fns = append(fns, corpus.Function{Name: fn.Name, Src: string(src)})
		}
	}
	if len(fns) == 0 {
		fmt.Fprintln(os.Stderr, "tv: no defined functions in", path)
		return 1
	}
	res, err := remoteBatch(addr, fns, budget, proofDir != "", traceFile != "", nil)
	check(err)
	failed := false
	for _, row := range res.Rows {
		mark := ""
		if row.Cached {
			mark = "  (store)"
		}
		fmt.Printf("@%-30s %-28s %8.2fs%s\n",
			row.Fn, row.Class, time.Duration(row.DurationNS).Seconds(), mark)
		if c, _ := tv.ParseClass(row.Class); c != tv.ClassSucceeded {
			failed = true
			if row.Err != "" {
				fmt.Printf("    %s\n", row.Err)
			}
		}
	}
	finishRemote(res, proofDir, traceFile)
	if statsJSON {
		printStatsJSON(res.Stats)
	}
	if failed {
		return 1
	}
	return 0
}

// printStatsJSON writes one JSON object to stdout — the machine-
// readable form of -stats.
func printStatsJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	check(enc.Encode(v))
}
