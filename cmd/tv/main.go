// Command tv runs the full translation-validation pipeline of the paper's
// Figure 5 — ISel → hint generation → VC generation → KEQ — either on a
// single LLVM IR file or as the paper's evaluation experiments.
//
// Usage:
//
//	tv file.ll                      validate one file (all definitions)
//	tv -experiment fig6 [-n 300]    reproduce the Figure 6 outcome table
//	tv -experiment fig7 [-n 300]    reproduce the Figure 7 distributions
//	tv -experiment bugs             reproduce the §5.2 bug studies
//	tv -server host:port ...        run any of the above on a tvd daemon
//
// With -server the jobs are validated by a remote tvd daemon (warm
// solver pool, persistent result store) instead of in-process;
// -emit-proofs materializes the returned certificate artifacts locally
// and -trace writes the server-side span trace. -stats-json prints the
// run summary as one JSON object on stdout — the same struct a daemon
// embeds in its batch responses, so local and remote runs are
// field-for-field comparable.
//
// The -timeout, -max-nodes and -conflicts flags scale the paper's
// per-function budgets (3 h / 12 GB) down to interactive sizes. The
// -timeout budget bounds the whole per-function pipeline (ISel, VC
// generation, and KEQ), not just the SMT phase. -j spreads the
// experiment corpus across a worker pool; results are identical to a
// serial run (rows stay in corpus order), only faster. All experiment
// workers share one verification-condition result cache keyed by
// alpha-invariant canonical term hashes; -no-vc-cache and
// -no-clause-reduce are the ablations for the two solver-side
// accelerators. -cpuprofile/-memprofile write pprof profiles for corpus
// runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/paperprogs"
	"repro/internal/proof"
	"repro/internal/smt"
	"repro/internal/telemetry"
	"repro/internal/tv"
	"repro/internal/vcgen"
)

func main() {
	// All work happens in run so its deferred profile writers complete
	// before the process exits (os.Exit skips pending defers).
	os.Exit(run())
}

func run() int {
	experiment := flag.String("experiment", "", "fig6, fig7, eval (both), or bugs")
	n := flag.Int("n", 300, "corpus size for fig6/fig7")
	timeout := flag.Duration("timeout", 20*time.Second, "per-function wall-clock budget")
	maxNodes := flag.Uint64("max-nodes", 4_000_000, "per-function term-node budget (memory stand-in)")
	conflicts := flag.Int64("conflicts", 0, "per-query SAT conflict budget (0 = unlimited)")
	inadequate := flag.Int("inadequate-every", 150, "validate every n-th function with coarse liveness (0 = never)")
	negForm := flag.Bool("negative-form", false, "ablation: disable the positive-form SMT optimization")
	noVCCache := flag.Bool("no-vc-cache", false, "ablation: disable the run-wide VC result cache")
	noClauseReduce := flag.Bool("no-clause-reduce", false, "ablation: disable LBD learned-clause database reduction")
	noInprocess := flag.Bool("no-inprocess", false, "ablation: disable SatELite-style SAT inprocessing")
	noPortfolio := flag.Bool("no-portfolio", false, "ablation: disable portfolio racing across idle workers")
	noCube := flag.Bool("no-cube", false, "ablation: disable cube-and-conquer escalation for the hardest queries")
	progress := flag.Bool("progress", false, "print per-function progress")
	jobs := flag.Int("j", 0, "parallel validation workers for fig6/fig7 (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "print run-wide solver and worker-pool statistics")
	emitProofs := flag.String("emit-proofs", "", "write proof certificates and bisimulation witnesses to this directory (verify with proofcheck)")
	proofLegacy := flag.Bool("proof-legacy", false, "ablation: emit buffered schema-1 proof artifacts (textual DRAT, per-function term tables)")
	noScratch := flag.Bool("no-scratch", false, "ablation: disable per-worker arena scratch reuse between functions")
	traceFile := flag.String("trace", "", "write a JSONL span trace of every pipeline phase and SMT query to this file (lint with tracelint)")
	phaseReport := flag.Bool("phase-report", false, "print the per-phase time breakdown (and the timeout/OOM tail's)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	server := flag.String("server", "", "validate on a remote tvd daemon at this address instead of locally")
	statsJSON := flag.Bool("stats-json", false, "print the run summary as one JSON object on stdout")
	flag.Parse()

	// In server mode the daemon runs the pipeline (ablation flags do not
	// apply) and returns the span trace in the batch result, so the local
	// tracer stays off.
	var tracer *telemetry.Tracer
	if *traceFile != "" && *server == "" {
		tracer = telemetry.NewTracer()
	}

	if *emitProofs != "" {
		check(os.MkdirAll(*emitProofs, 0o755))
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC() // materialize up-to-date allocation stats
			check(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	budget := tv.Budget{Timeout: *timeout, MaxTermNodes: *maxNodes, ConflictBudget: *conflicts}
	copts := core.Options{
		DisablePositiveForm:      *negForm,
		DisableClauseDBReduction: *noClauseReduce,
		DisableInprocess:         *noInprocess,
		DisableCube:              *noCube,
	}

	code := 0
	switch *experiment {
	case "":
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: tv [flags] file.ll | tv -experiment fig6|fig7|bugs")
			code = 2
			break
		}
		if *server != "" {
			code = validateFileRemote(flag.Arg(0), *server, budget, *emitProofs, *traceFile, *statsJSON)
			break
		}
		if !*noPortfolio {
			// Single-file mode has no worker pool: every slot beyond the
			// one running the pipeline is idle capacity racers may use.
			copts.Portfolio = smt.NewPortfolio(runtime.GOMAXPROCS(0))
			copts.Portfolio.Acquire() // the pipeline's own slot
		}
		code = validateFile(flag.Arg(0), copts, budget, *emitProofs, *proofLegacy, *noScratch, tracer, *phaseReport)
	case "fig6", "fig7", "eval":
		if *server != "" {
			// Remote experiment: the daemon validates the same synthetic
			// corpus; rendering goes through the identical Summary code.
			fns := corpus.Generate(corpus.GCCLike(*n))
			var pw io.Writer
			if *progress {
				pw = os.Stderr
			}
			res, err := remoteBatch(*server, fns, budget, *emitProofs != "", *traceFile != "", pw)
			check(err)
			finishRemote(res, *emitProofs, *traceFile)
			sum := res.Summary()
			if *experiment == "fig6" || *experiment == "eval" {
				sum.Figure6(os.Stdout)
			}
			if *experiment == "fig7" || *experiment == "eval" {
				fmt.Println()
				sum.Figure7(os.Stdout)
			}
			if *stats {
				fmt.Println()
				sum.RenderStats(os.Stdout)
			}
			if *statsJSON {
				printStatsJSON(res.Stats)
			}
			break
		}
		cfg := harness.Config{
			Profile:          corpus.GCCLike(*n),
			Budget:           budget,
			InadequateEvery:  *inadequate,
			Checker:          copts,
			Workers:          *jobs,
			DisableVCCache:   *noVCCache,
			DisablePortfolio: *noPortfolio,
			ProofDir:         *emitProofs,
			ProofLegacy:      *proofLegacy,
			DisableScratch:   *noScratch,
			Tracer:           tracer,
		}
		if *progress {
			cfg.Progress = os.Stderr
		}
		sum := harness.Run(cfg)
		check(sum.ProofErr)
		if *experiment == "fig6" || *experiment == "eval" {
			sum.Figure6(os.Stdout)
		}
		if *experiment == "fig7" || *experiment == "eval" {
			fmt.Println()
			sum.Figure7(os.Stdout)
		}
		if *stats {
			fmt.Println()
			sum.RenderStats(os.Stdout)
		}
		if *phaseReport {
			fmt.Println()
			sum.PhaseReport(os.Stdout)
		}
		if *statsJSON {
			printStatsJSON(sum.StatsJSON())
		}
	case "bugs":
		code = runBugs(budget)
	default:
		fmt.Fprintf(os.Stderr, "tv: unknown experiment %q\n", *experiment)
		code = 2
	}
	if tracer != nil {
		f, err := os.Create(*traceFile)
		check(err)
		check(tracer.WriteJSONL(f))
		check(f.Close())
	}
	return code
}

func validateFile(path string, copts core.Options, budget tv.Budget, proofDir string,
	proofLegacy, noScratch bool, tracer *telemetry.Tracer, phaseReport bool) int {
	m := telemetry.NewMetrics()
	copts.Trace = tracer
	copts.Metrics = m
	if !noScratch {
		copts.Scratch = smt.NewScratch()
	}

	parseStart := time.Now()
	src, err := os.ReadFile(path)
	check(err)
	mod, err := llvmir.Parse(string(src))
	check(err)
	check(llvmir.Verify(mod))
	m.Observe("phase.parse", time.Since(parseStart))

	var dw *proof.DirWriter
	if proofDir != "" && !proofLegacy {
		dw, err = proof.NewDirWriter(proofDir)
		check(err)
	}

	failed := false
	var manifest proof.Manifest
	for _, fn := range mod.Funcs {
		if !fn.Defined() {
			continue
		}
		var rec *proof.Recorder
		if proofDir != "" {
			if dw != nil {
				rec = dw.NewRecorder(fn.Name)
			} else {
				rec = proof.NewRecorder(fn.Name)
			}
			copts.Proof = rec
		}
		out := tv.Validate(mod, fn.Name, isel.Options{}, vcgen.Options{}, copts, budget)
		harness.RecordOutcome(m, 0, out)
		certified := false
		if rec != nil {
			if dw != nil {
				_, err := rec.Close(out.Class == tv.ClassSucceeded)
				check(err)
				certified = out.Class == tv.ClassSucceeded
			} else {
				_, err := proof.WriteCerts(proofDir, rec)
				check(err)
				if out.Class == tv.ClassSucceeded {
					_, err := proof.WriteWitness(proofDir, rec)
					check(err)
					certified = true
				}
			}
			manifest.Functions = append(manifest.Functions, proof.ManifestRow{
				Name: fn.Name, Class: out.Class.String(), Certified: certified,
			})
		}
		fmt.Printf("@%-30s %-28s %8.2fs  %d points\n",
			fn.Name, out.Class, out.Duration.Seconds(), out.Points)
		if out.Class != tv.ClassSucceeded {
			failed = true
			if out.Err != nil {
				fmt.Printf("    %v\n", out.Err)
			}
			if out.Report != nil {
				for _, f := range out.Report.Failures {
					fmt.Printf("    %s\n", f)
				}
			}
		}
	}
	if dw != nil {
		check(dw.Close())
		manifest.Schema = proof.SchemaStreaming
		manifest.Terms = proof.TermsName
		manifest.TermCount = dw.Table().Len()
	}
	if proofDir != "" {
		check(proof.WriteManifest(proofDir, &manifest))
	}
	if phaseReport {
		fmt.Println()
		harness.RenderPhases(os.Stdout, m)
	}
	if failed {
		return 1
	}
	return 0
}

func runBugs(budget tv.Budget) int {
	experiments := []harness.BugExperiment{
		{
			Name:        "WAW store merge (Fig. 8/9, PR25154)",
			Program:     paperprogs.WAWStores,
			Fn:          "waw_foo",
			GoodOptions: isel.Options{MergeStores: true},
			BadOptions:  isel.Options{BugWAWStoreMerge: true},
		},
		{
			Name:        "Load narrowing (Fig. 10/11, PR4737)",
			Program:     paperprogs.LoadNarrow,
			Fn:          "narrow_foo",
			GoodOptions: isel.Options{},
			BadOptions:  isel.Options{BugLoadNarrow: true},
		},
	}
	var results []*harness.BugResult
	ok := true
	for _, e := range experiments {
		r, err := harness.RunBug(e, budget)
		check(err)
		results = append(results, r)
		ok = ok && r.BugCaught && r.GoodPassed
	}
	harness.RenderBugTable(os.Stdout, results)
	if !ok {
		return 1
	}
	return 0
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tv:", err)
		os.Exit(1)
	}
}
