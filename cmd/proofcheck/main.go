// Command proofcheck independently verifies a proof directory emitted by
// tv -emit-proofs (or keq -emit-proof): DRAT traces are replayed by
// reverse unit propagation, Sat models are re-evaluated against the
// original term DAGs, cache references are resolved against the verified
// certificate with the same canonical key, and each bisimulation witness
// is checked for structural well-formedness with every cited query
// verified.
//
// The checker deliberately shares no solving code with the validator: it
// imports only the certificate package (internal/proof) and the term
// layer (internal/term) — never the SAT or SMT solvers — so the trusted
// base of a certified run is this program plus the term evaluator.
//
// Usage:
//
//	proofcheck [-v] DIR
//
// Exit status 0 when every certificate and witness verifies, 1 when
// anything is rejected, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/proof"
)

func main() {
	verbose := flag.Bool("v", false, "list every rejection (default: first 20)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: proofcheck [-v] DIR")
		os.Exit(2)
	}
	report, err := proof.CheckDir(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		os.Exit(2)
	}

	kinds := make([]string, 0, len(report.ByKind))
	for k := range report.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("proofcheck: %d functions, %d query certificates, %d trace steps, %d witnesses\n",
		report.Functions, report.Queries, report.Steps, report.Witnesses)
	for _, k := range kinds {
		fmt.Printf("  %-10s %d\n", k, report.ByKind[k])
	}

	if len(report.Rejections) == 0 {
		fmt.Println("OK: all certificates verified")
		return
	}
	limit := len(report.Rejections)
	if !*verbose && limit > 20 {
		limit = 20
	}
	for _, r := range report.Rejections[:limit] {
		fmt.Fprintln(os.Stderr, "REJECTED:", r)
	}
	if limit < len(report.Rejections) {
		fmt.Fprintf(os.Stderr, "... and %d more (use -v)\n", len(report.Rejections)-limit)
	}
	fmt.Fprintf(os.Stderr, "proofcheck: %d rejections\n", len(report.Rejections))
	os.Exit(1)
}
