// Command proofcheck independently verifies a proof directory emitted by
// tv -emit-proofs (or keq -emit-proof): DRAT traces are replayed by
// reverse unit propagation, Sat models are re-evaluated against the
// original term DAGs, cache references are resolved against the verified
// certificate with the same canonical key, and each bisimulation witness
// is checked for structural well-formedness with every cited query
// verified.
//
// The checker deliberately shares no solving code with the validator: it
// imports only the certificate package (internal/proof) and the term
// layer (internal/term) — never the SAT or SMT solvers — so the trusted
// base of a certified run is this program plus the term evaluator.
//
// Usage:
//
//	proofcheck [-v] DIR
//	proofcheck [-v] -store DIR -key HASH
//	proofcheck [-v] -store DIR -all
//
// The second form verifies one entry of a tvd result store: the entry's
// certificate artifacts are materialized into a scratch directory
// together with a single-row manifest and checked exactly like a tv
// -emit-proofs directory. Store entries are written self-contained
// (each job gets a private certificate namespace), so one entry checks
// in isolation.
//
// The third form is the offline audit mode: every entry in the store is
// decoded, CRC-checked, and re-verified end to end, with one report
// line per entry. Reads never refresh access times, so an audit does
// not distort the store's LRU eviction order; entries written by a
// future binary are reported as skipped, not failed.
//
// Exit status 0 when every certificate and witness verifies, 1 when
// anything is rejected, 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/proof"
	"repro/internal/store"
)

func main() {
	verbose := flag.Bool("v", false, "list every rejection (default: first 20)")
	storeDir := flag.String("store", "", "verify an entry of this tvd result store instead of a proof directory")
	keyHex := flag.String("key", "", "content address (64 hex digits) of the store entry to verify")
	all := flag.Bool("all", false, "with -store: decode, CRC-check, and re-verify every entry in the store")
	flag.Parse()

	var dir, scratch string
	switch {
	case *storeDir != "" && *all:
		if flag.NArg() != 0 || *keyHex != "" {
			fmt.Fprintln(os.Stderr, "usage: proofcheck [-v] -store DIR -all")
			os.Exit(2)
		}
		os.Exit(checkWholeStore(*storeDir, *verbose))
	case *storeDir != "":
		if flag.NArg() != 0 || *keyHex == "" {
			fmt.Fprintln(os.Stderr, "usage: proofcheck [-v] -store DIR -key HASH")
			os.Exit(2)
		}
		dir = materializeStoreEntry(*storeDir, *keyHex)
		scratch = dir
	case flag.NArg() == 1 && *keyHex == "":
		dir = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: proofcheck [-v] DIR | proofcheck [-v] -store DIR [-key HASH | -all]")
		os.Exit(2)
	}
	code := checkDir(dir, *verbose)
	if scratch != "" {
		os.RemoveAll(scratch)
	}
	os.Exit(code)
}

// checkWholeStore audits every entry of a result store: decode +
// per-artifact CRC via Peek (access times untouched), then the same
// materialize-and-replay verification a single -key run performs. The
// return value is the process exit code.
func checkWholeStore(storeDir string, verbose bool) int {
	st, err := store.Open(storeDir, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		return 2
	}
	keys := st.Keys()
	var verified, skipped int
	var failures []string
	for _, k := range keys {
		e, err := st.Peek(k)
		if err != nil {
			if os.IsNotExist(err) {
				continue // evicted since the key list was taken
			}
			if store.IsBadVersion(err) {
				skipped++
				fmt.Printf("skip %s: %v\n", k.Hex()[:12], err)
				continue
			}
			failures = append(failures, fmt.Sprintf("FAIL %s: %v", k.Hex()[:12], err))
			continue
		}
		if err := store.VerifyEntry(e); err != nil {
			failures = append(failures, fmt.Sprintf("FAIL %s (@%s %s): %v",
				k.Hex()[:12], e.Meta.Function, e.Meta.Class, err))
			continue
		}
		verified++
		if verbose {
			fmt.Printf("ok   %s @%s %s (certified=%t)\n",
				k.Hex()[:12], e.Meta.Function, e.Meta.Class, e.Meta.Certified)
		}
	}
	fmt.Printf("proofcheck: store %s: %d entries, %d verified, %d skipped (future version), %d failed\n",
		storeDir, len(keys), verified, skipped, len(failures))
	if q := st.QuarantineLen(); q > 0 {
		fmt.Printf("proofcheck: %d previously quarantined entries under quarantine/ (not audited)\n", q)
	}
	limit := len(failures)
	if !verbose && limit > 20 {
		limit = 20
	}
	for _, f := range failures[:limit] {
		fmt.Fprintln(os.Stderr, f)
	}
	if limit < len(failures) {
		fmt.Fprintf(os.Stderr, "... and %d more (use -v)\n", len(failures)-limit)
	}
	if len(failures) > 0 {
		return 1
	}
	return 0
}

// materializeStoreEntry extracts one store entry into a scratch proof
// directory with a single-row manifest, ready for CheckDir.
func materializeStoreEntry(storeDir, keyHex string) string {
	k, err := store.KeyFromHex(keyHex)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		os.Exit(2)
	}
	st, err := store.Open(storeDir, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		os.Exit(2)
	}
	e, ok := st.Get(k)
	if !ok {
		fmt.Fprintf(os.Stderr, "proofcheck: store has no (intact) entry %s\n", keyHex)
		os.Exit(2)
	}
	dir, err := os.MkdirTemp("", "proofcheck-store-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		os.Exit(2)
	}
	err = store.MaterializeEntry(dir, e)
	if err == nil {
		err = proof.WriteManifest(dir, &proof.Manifest{
			Schema: proof.SchemaStreaming,
			Functions: []proof.ManifestRow{{
				Name: e.Meta.Function, Class: e.Meta.Class, Certified: e.Meta.Certified,
			}},
		})
	}
	if err != nil {
		os.RemoveAll(dir)
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		os.Exit(2)
	}
	fmt.Printf("store entry %s: @%s %s (certified=%t)\n",
		keyHex[:12], e.Meta.Function, e.Meta.Class, e.Meta.Certified)
	return dir
}

// checkDir replays dir and renders the report; the return value is the
// process exit code.
func checkDir(dir string, verbose bool) int {
	report, err := proof.CheckDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "proofcheck:", err)
		return 2
	}

	kinds := make([]string, 0, len(report.ByKind))
	for k := range report.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("proofcheck: %d functions, %d query certificates, %d trace steps, %d witnesses\n",
		report.Functions, report.Queries, report.Steps, report.Witnesses)
	for _, k := range kinds {
		fmt.Printf("  %-10s %d\n", k, report.ByKind[k])
	}

	if len(report.Rejections) == 0 {
		fmt.Println("OK: all certificates verified")
		return 0
	}
	limit := len(report.Rejections)
	if !verbose && limit > 20 {
		limit = 20
	}
	for _, r := range report.Rejections[:limit] {
		fmt.Fprintln(os.Stderr, "REJECTED:", r)
	}
	if limit < len(report.Rejections) {
		fmt.Fprintf(os.Stderr, "... and %d more (use -v)\n", len(report.Rejections)-limit)
	}
	fmt.Fprintf(os.Stderr, "proofcheck: %d rejections\n", len(report.Rejections))
	return 1
}
