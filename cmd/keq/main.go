// Command keq is the language-parametric equivalence checker: given an
// LLVM IR function, a Virtual x86 function, and a synchronization-point
// file (the verification condition), it checks that the relation is a
// cut-bisimulation witnessing their equivalence — Algorithm 1 of the
// paper, over the two bundled semantics.
//
// Usage:
//
//	keq [-fn name] [-mode equivalence|refinement] [-timeout 60s] input.ll output.vx86 points.sync
//
// Exit status: 0 validated, 1 not validated, 2 usage/input error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/llvmir"
	"repro/internal/proof"
	"repro/internal/telemetry"
	"repro/internal/tv"
	"repro/internal/vx86"
)

func main() {
	fnName := flag.String("fn", "", "function to validate (default: the sole definition)")
	mode := flag.String("mode", "equivalence", "equivalence or refinement")
	timeout := flag.Duration("timeout", 10*time.Minute, "per-run wall-clock budget")
	verbose := flag.Bool("v", false, "print per-point statistics")
	emitProof := flag.String("emit-proof", "", "write proof certificates and the bisimulation witness to this directory")
	traceFile := flag.String("trace", "", "write a JSONL span trace of the check to this file (lint with tracelint)")
	flag.Parse()
	if flag.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "usage: keq [flags] input.ll output.vx86 points.sync")
		flag.Usage()
		os.Exit(2)
	}

	llSrc, err := os.ReadFile(flag.Arg(0))
	check(err)
	mod, err := llvmir.Parse(string(llSrc))
	check(err)
	check(llvmir.Verify(mod))

	xSrc, err := os.ReadFile(flag.Arg(1))
	check(err)
	prog, err := vx86.Parse(string(xSrc))
	check(err)

	pSrc, err := os.Open(flag.Arg(2))
	check(err)
	points, err := core.ParseSyncPoints(pSrc)
	check(err)
	pSrc.Close()

	var fn *llvmir.Function
	if *fnName != "" {
		fn = mod.Func(*fnName)
	} else {
		for _, f := range mod.Funcs {
			if f.Defined() {
				fn = f
			}
		}
	}
	if fn == nil || !fn.Defined() {
		check(fmt.Errorf("no function definition (use -fn)"))
	}
	xfn := prog.Func(fn.Name)
	if xfn == nil {
		check(fmt.Errorf("no Virtual x86 function %q", fn.Name))
	}

	opts := core.Options{}
	switch strings.ToLower(*mode) {
	case "equivalence":
	case "refinement":
		opts.Mode = core.Refinement
	default:
		check(fmt.Errorf("unknown -mode %q", *mode))
	}

	var dw *proof.DirWriter
	var rec *proof.Recorder
	if *emitProof != "" {
		var err error
		dw, err = proof.NewDirWriter(*emitProof)
		check(err)
		rec = dw.NewRecorder(fn.Name)
		opts.Proof = rec
	}
	var tracer *telemetry.Tracer
	if *traceFile != "" {
		tracer = telemetry.NewTracer()
		opts.Trace = tracer
	}

	out := tv.ValidateTranslation(mod, fn, xfn, points, opts, tv.Budget{Timeout: *timeout})
	if tracer != nil {
		f, err := os.Create(*traceFile)
		check(err)
		check(tracer.WriteJSONL(f))
		check(f.Close())
	}
	if rec != nil {
		_, err := rec.Close(out.Class == tv.ClassSucceeded)
		check(err)
		check(dw.Close())
		m := &proof.Manifest{
			Schema: proof.SchemaStreaming, Terms: proof.TermsName,
			TermCount: dw.Table().Len(),
			Functions: []proof.ManifestRow{{
				Name: fn.Name, Class: out.Class.String(),
				Certified: out.Class == tv.ClassSucceeded,
			}},
		}
		check(proof.WriteManifest(*emitProof, m))
	}
	if *verbose && out.Report != nil {
		fmt.Printf("points checked: %d, states: %d, SMT queries: %d (%d fast)\n",
			out.Report.Stats.PointsChecked, out.Report.Stats.StatesExplored,
			out.SMTStats.Queries, out.SMTStats.FastQueries)
	}
	switch out.Class {
	case tv.ClassSucceeded:
		fmt.Printf("keq: @%s VALIDATED (%s, %v)\n", fn.Name, *mode, out.Duration.Round(time.Millisecond))
	case tv.ClassNotValidated:
		fmt.Printf("keq: @%s NOT VALIDATED\n", fn.Name)
		if out.Report != nil {
			for _, f := range out.Report.Failures {
				fmt.Printf("  %s\n", f)
			}
		}
		os.Exit(1)
	default:
		fmt.Printf("keq: @%s FAILED: %s (%v)\n", fn.Name, out.Class, out.Err)
		os.Exit(1)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "keq:", err)
		os.Exit(2)
	}
}
