// Command tvd is the translation-validation daemon: validation as a
// service. It keeps a warm worker pool (persistent per-worker solver
// arenas, shared portfolio) and a persistent content-addressed result
// store, so repeated validation of the same functions — CI runs, bisect
// loops, repeated local builds — is served from remembered verdicts
// whose certificates can be independently re-checked (proofcheck
// -store).
//
// Usage:
//
//	tvd [-addr :8347] [-store DIR] [-j N] [-queue N] [-tenant-budget N]
//	    [-store-max-bytes N] [-scrub-interval D] [-scrub-sample N]
//	    [-scrub-fraction F]
//	tvd -store DIR -scrub-once
//
// The store has a lifecycle: -store-max-bytes bounds its size (LRU
// eviction by access time, whole entries only, run synchronously on
// overflow and periodically in the background), and the background
// scrubber re-reads a paced sample of entries, CRC-checks them,
// re-verifies a fraction end to end with the proofcheck core, and
// quarantines failures (served afterwards as clean misses).
// -scrub-once is the offline operator mode: scrub every entry end to
// end once, print the report, and exit (status 1 when anything was
// quarantined).
//
// POST /v1/validate takes a batch of (fn, ir, hints) jobs and streams
// back one JSONL progress record per function plus a final summary (see
// internal/tvd for the wire format); tv -server is the reference
// client. GET /healthz reports liveness (503 once draining) and GET
// /metricsz the counter/histogram snapshot.
//
// On SIGTERM or SIGINT the daemon drains gracefully: the listener
// stops, admitted batches run to completion (their verdicts land in the
// store), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/store"
	"repro/internal/tvd"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	storeDir := flag.String("store", "", "persistent result-store directory (empty = no store)")
	jobs := flag.Int("j", 0, "validation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "bounded job-queue capacity (0 = 2x workers)")
	tenantBudget := flag.Int("tenant-budget", 0, "per-tenant admitted-job token budget (0 = 4x workers)")
	workDir := flag.String("workdir", "", "scratch directory for in-flight proof artifacts (default: system temp)")
	maxBodyMB := flag.Int64("max-body-mb", 64, "request body size limit in MiB")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long to wait for in-flight batches on shutdown")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "store byte budget: LRU-evict whole entries past this size (0 = unbounded)")
	scrubInterval := flag.Duration("scrub-interval", time.Minute, "pause between background scrub rounds (0 disables scrubbing)")
	scrubSample := flag.Int("scrub-sample", 32, "store entries examined per scrub round")
	scrubFraction := flag.Float64("scrub-fraction", 0.05, "fraction of scanned entries re-verified end to end (0..1)")
	scrubOnce := flag.Bool("scrub-once", false, "offline mode: scrub every store entry end to end once, report, exit")
	flag.Parse()

	if *scrubOnce {
		os.Exit(runScrubOnce(*storeDir))
	}

	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	srv, err := tvd.NewServer(tvd.ServerConfig{
		Workers:       workers,
		Queue:         *queue,
		StoreDir:      *storeDir,
		TenantBudget:  *tenantBudget,
		WorkDir:       *workDir,
		MaxBodyBytes:  *maxBodyMB << 20,
		StoreMaxBytes: *storeMaxBytes,
		ScrubInterval: *scrubInterval,
		ScrubSample:   *scrubSample,
		ScrubFraction: *scrubFraction,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("tvd: listening on %s (%d workers, store=%q)", *addr, workers, *storeDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("tvd: %v: draining", s)
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "tvd:", err)
		os.Exit(1)
	}

	// Drain: refuse new batches, stop the listener once in-flight
	// requests finish, then join the pool so every admitted verdict is
	// stored before exit.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tvd: shutdown: %v", err)
	}
	srv.Close()
	log.Printf("tvd: drained, exiting")
}

// runScrubOnce is the -scrub-once offline mode: one full end-to-end
// scrub pass over every store entry, with a human-readable report.
func runScrubOnce(dir string) int {
	if dir == "" {
		fmt.Fprintln(os.Stderr, "tvd: -scrub-once requires -store DIR")
		return 2
	}
	st, err := store.Open(dir, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvd:", err)
		return 2
	}
	stats := st.ScrubOnce(store.ScrubConfig{Fraction: 1})
	fmt.Printf("tvd: scrub: %d entries scanned, %d verified end to end, %d future-version skipped, %d quarantined\n",
		stats.Scanned, stats.Verified, stats.BadVersion, stats.Quarantined)
	if stats.Quarantined > 0 {
		fmt.Printf("tvd: quarantined entries preserved under %s\n", filepath.Join(dir, "quarantine"))
		return 1
	}
	return 0
}
