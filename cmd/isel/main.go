// Command isel compiles an LLVM IR module (the supported subset of
// internal/llvmir) to Virtual x86 with the instruction-selection pass of
// internal/isel, and emits the compiler hints consumed by the VC
// generator.
//
// Usage:
//
//	isel [-fn name | -all [-j n]] [-merge-stores] [-bug waw|narrow] [-hints file.hints] [-o out.vx86] input.ll
//
// With no -o/-hints the Virtual x86 program is printed to stdout. -all
// compiles every definition in the module (across -j parallel workers),
// emitting functions in module order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/vcgen"
	"repro/internal/vx86"
)

func main() {
	fnName := flag.String("fn", "", "function to compile (default: the sole definition)")
	all := flag.Bool("all", false, "compile every definition in the module")
	jobs := flag.Int("j", 0, "parallel compile workers with -all (0 = GOMAXPROCS)")
	mergeStores := flag.Bool("merge-stores", false, "enable the store-merging peephole (Figure 9c)")
	strengthReduce := flag.Bool("strength-reduce", false, "enable power-of-two mul/div/rem strength reduction (§4.7)")
	bug := flag.String("bug", "", "inject a miscompilation: waw (Figure 9b) or narrow (Figure 11b)")
	out := flag.String("o", "", "write Virtual x86 output to this file (default stdout)")
	hintsOut := flag.String("hints", "", "write compiler hints to this file")
	syncOut := flag.String("sync", "", "write generated synchronization points to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isel [flags] input.ll")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	check(err)
	mod, err := llvmir.Parse(string(src))
	check(err)
	check(llvmir.Verify(mod))

	opts := isel.Options{MergeStores: *mergeStores, StrengthReduce: *strengthReduce}
	switch *bug {
	case "":
	case "waw":
		opts.BugWAWStoreMerge = true
	case "narrow":
		opts.BugLoadNarrow = true
	default:
		fmt.Fprintf(os.Stderr, "isel: unknown -bug %q (want waw or narrow)\n", *bug)
		os.Exit(2)
	}

	if *all {
		if *fnName != "" || *hintsOut != "" || *syncOut != "" {
			fmt.Fprintln(os.Stderr, "isel: -all is incompatible with -fn, -hints and -sync")
			os.Exit(2)
		}
		text := compileAll(mod, opts, *jobs)
		if *out == "" {
			fmt.Print(text)
		} else {
			check(os.WriteFile(*out, []byte(text), 0o644))
		}
		return
	}

	fn := pickFunction(mod, *fnName)
	res, err := isel.Compile(mod, fn, opts)
	check(err)

	text := (&vx86.Program{Funcs: []*vx86.Function{res.Fn}}).String()
	if *out == "" {
		fmt.Print(text)
	} else {
		check(os.WriteFile(*out, []byte(text), 0o644))
	}
	if *hintsOut != "" {
		check(os.WriteFile(*hintsOut, []byte(res.Hints.String()), 0o644))
	}
	if *syncOut != "" {
		points, err := vcgen.Generate(fn, res.Fn, res.Hints, vcgen.Options{})
		check(err)
		f, err := os.Create(*syncOut)
		check(err)
		check(core.WriteSyncPoints(f, points))
		check(f.Close())
	}
}

// compileAll compiles every defined function across a worker pool and
// returns the Virtual x86 program text in module order (the same output
// a serial run produces). Unsupported or failing functions are reported
// to stderr and terminate with exit 1 after all workers finish.
func compileAll(mod *llvmir.Module, opts isel.Options, jobs int) string {
	var defined []*llvmir.Function
	for _, f := range mod.Funcs {
		if f.Defined() {
			defined = append(defined, f)
		}
	}
	if len(defined) == 0 {
		fmt.Fprintln(os.Stderr, "isel: no function definition in input")
		os.Exit(1)
	}
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(defined) {
		jobs = len(defined)
	}

	compiled := make([]*vx86.Function, len(defined))
	errs := make([]error, len(defined))
	indices := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				res, err := isel.Compile(mod, defined[i], opts)
				if err != nil {
					errs[i] = err
					continue
				}
				compiled[i] = res.Fn
			}
		}()
	}
	for i := range defined {
		indices <- i
	}
	close(indices)
	wg.Wait()

	failed := false
	prog := &vx86.Program{}
	for i, fn := range compiled {
		if errs[i] != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "isel: @%s: %v\n", defined[i].Name, errs[i])
			continue
		}
		prog.Funcs = append(prog.Funcs, fn)
	}
	if failed {
		os.Exit(1)
	}
	return prog.String()
}

func pickFunction(mod *llvmir.Module, name string) *llvmir.Function {
	if name != "" {
		fn := mod.Func(name)
		if fn == nil || !fn.Defined() {
			fmt.Fprintf(os.Stderr, "isel: no definition of @%s\n", name)
			os.Exit(1)
		}
		return fn
	}
	var found *llvmir.Function
	for _, f := range mod.Funcs {
		if f.Defined() {
			if found != nil {
				fmt.Fprintln(os.Stderr, "isel: multiple definitions; use -fn")
				os.Exit(1)
			}
			found = f
		}
	}
	if found == nil {
		fmt.Fprintln(os.Stderr, "isel: no function definition in input")
		os.Exit(1)
	}
	return found
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "isel:", err)
		os.Exit(1)
	}
}
