// Command isel compiles an LLVM IR module (the supported subset of
// internal/llvmir) to Virtual x86 with the instruction-selection pass of
// internal/isel, and emits the compiler hints consumed by the VC
// generator.
//
// Usage:
//
//	isel [-fn name] [-merge-stores] [-bug waw|narrow] [-hints file.hints] [-o out.vx86] input.ll
//
// With no -o/-hints the Virtual x86 program is printed to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/vcgen"
	"repro/internal/vx86"
)

func main() {
	fnName := flag.String("fn", "", "function to compile (default: the sole definition)")
	mergeStores := flag.Bool("merge-stores", false, "enable the store-merging peephole (Figure 9c)")
	strengthReduce := flag.Bool("strength-reduce", false, "enable power-of-two mul/div/rem strength reduction (§4.7)")
	bug := flag.String("bug", "", "inject a miscompilation: waw (Figure 9b) or narrow (Figure 11b)")
	out := flag.String("o", "", "write Virtual x86 output to this file (default stdout)")
	hintsOut := flag.String("hints", "", "write compiler hints to this file")
	syncOut := flag.String("sync", "", "write generated synchronization points to this file")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: isel [flags] input.ll")
		flag.Usage()
		os.Exit(2)
	}

	src, err := os.ReadFile(flag.Arg(0))
	check(err)
	mod, err := llvmir.Parse(string(src))
	check(err)
	check(llvmir.Verify(mod))

	fn := pickFunction(mod, *fnName)
	opts := isel.Options{MergeStores: *mergeStores, StrengthReduce: *strengthReduce}
	switch *bug {
	case "":
	case "waw":
		opts.BugWAWStoreMerge = true
	case "narrow":
		opts.BugLoadNarrow = true
	default:
		fmt.Fprintf(os.Stderr, "isel: unknown -bug %q (want waw or narrow)\n", *bug)
		os.Exit(2)
	}

	res, err := isel.Compile(mod, fn, opts)
	check(err)

	text := (&vx86.Program{Funcs: []*vx86.Function{res.Fn}}).String()
	if *out == "" {
		fmt.Print(text)
	} else {
		check(os.WriteFile(*out, []byte(text), 0o644))
	}
	if *hintsOut != "" {
		check(os.WriteFile(*hintsOut, []byte(res.Hints.String()), 0o644))
	}
	if *syncOut != "" {
		points, err := vcgen.Generate(fn, res.Fn, res.Hints, vcgen.Options{})
		check(err)
		f, err := os.Create(*syncOut)
		check(err)
		check(core.WriteSyncPoints(f, points))
		check(f.Close())
	}
}

func pickFunction(mod *llvmir.Module, name string) *llvmir.Function {
	if name != "" {
		fn := mod.Func(name)
		if fn == nil || !fn.Defined() {
			fmt.Fprintf(os.Stderr, "isel: no definition of @%s\n", name)
			os.Exit(1)
		}
		return fn
	}
	var found *llvmir.Function
	for _, f := range mod.Funcs {
		if f.Defined() {
			if found != nil {
				fmt.Fprintln(os.Stderr, "isel: multiple definitions; use -fn")
				os.Exit(1)
			}
			found = f
		}
	}
	if found == nil {
		fmt.Fprintln(os.Stderr, "isel: no function definition in input")
		os.Exit(1)
	}
	return found
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "isel:", err)
		os.Exit(1)
	}
}
