# Tier-1 verification: build + full test suite, static analysis, gofmt
# cleanliness, and the race detector over the concurrent packages (the
# harness worker pool and the tv pipeline it drives).
.PHONY: tier1 build test vet fmtcheck race bench benchall

tier1: build test vet fmtcheck race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:" >&2; \
		echo "$$out" >&2; exit 1; fi

# The harness portfolio/proof tests are CPU-bound and can exceed go
# test's default 10m package timeout under -race on small machines;
# the raised timeout does not mask races, which fail immediately.
race:
	go test -race -timeout 30m ./internal/harness ./internal/tv ./internal/telemetry ./internal/smt ./internal/store ./internal/tvd

# bench reproduces the Figure 6 comparisons — cache on/off, proof
# emission on/off, tracing on/off, inprocessing/portfolio ablations,
# cube-and-conquer tail legs with the adaptive portfolio, legacy vs
# streaming certificate formats, cold vs warm daemon runs against the
# persistent result store — and writes the machine-readable artifacts
# BENCH_PR2.json, BENCH_PR3.json, BENCH_PR5.json, BENCH_PR6.json,
# BENCH_PR7.json, BENCH_PR8.json, and BENCH_PR9.json.
bench:
	go test -run '^$$' -bench 'BenchmarkFigure6' -benchtime 1x .
	WRITE_BENCH_JSON=1 go test -timeout 60m -run 'TestBenchPR2JSON|TestBenchPR3JSON|TestBenchPR5JSON|TestBenchPR6JSON|TestBenchPR7JSON|TestBenchPR8JSON|TestBenchPR9JSON' -v .

benchall:
	go test -bench=. -benchmem
