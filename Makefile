# Tier-1 verification: build + full test suite, static analysis, and the
# race detector over the concurrent packages (the harness worker pool and
# the tv pipeline it drives).
.PHONY: tier1 build test vet race bench

tier1: build test vet race

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/harness ./internal/tv

bench:
	go test -bench=. -benchmem
