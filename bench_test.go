// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation (§5), plus ablations of the design choices called out
// in DESIGN.md. Run them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the corresponding table/series once (on the first
// iteration) and reports the usual ns/op for the underlying workload.
package repro

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/imp"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/paperprogs"
	"repro/internal/proof"
	"repro/internal/regalloc"
	"repro/internal/smt"
	"repro/internal/stack"
	"repro/internal/telemetry"
	"repro/internal/tv"
	"repro/internal/tvd"
	"repro/internal/vcgen"
	"repro/internal/vx86"
)

func mustMod(b *testing.B, src string) *llvmir.Module {
	b.Helper()
	m, err := llvmir.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

var benchBudget = tv.Budget{Timeout: 30 * time.Second}

// BenchmarkFig3RunningExample validates the paper's Figures 1–3 example:
// arithm_seq_sum through ISel, VC generation, and KEQ.
func BenchmarkFig3RunningExample(b *testing.B) {
	mod := mustMod(b, paperprogs.ArithmSeqSum)
	for i := 0; i < b.N; i++ {
		out := tv.Validate(mod, "arithm_seq_sum", isel.Options{}, vcgen.Options{},
			core.Options{}, benchBudget)
		if out.Class != tv.ClassSucceeded {
			b.Fatalf("class = %v err = %v", out.Class, out.Err)
		}
	}
}

// figure6Corpus is the scaled-down corpus used by the Fig. 6/7 benchmarks:
// large enough to show the outcome mix, small enough for a bench run.
const figure6Corpus = 120

var (
	fig6Once sync.Once
	fig6Sum  *harness.Summary
)

func runFig6Corpus() *harness.Summary {
	fig6Once.Do(func() {
		fig6Sum = harness.Run(harness.Config{
			Profile:         corpus.GCCLike(figure6Corpus),
			Budget:          tv.Budget{Timeout: 5 * time.Second, MaxTermNodes: 3_000_000},
			InadequateEvery: 40,
		})
	})
	return fig6Sum
}

// BenchmarkFig6Validation regenerates the Figure 6 outcome table
// (Succeeded / Timeout / OOM / Other) on the synthetic GCC-like corpus.
func BenchmarkFig6Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum := runFig6Corpus()
		if i == 0 {
			sum.Figure6(os.Stdout)
		}
	}
}

// fig6ParallelBudget is the budget for the worker-pool benchmark: no
// wall-clock timeout (timeout classes are timing-dependent and would
// break the cross-j comparison), only the deterministic term-node limit.
var fig6ParallelBudget = tv.Budget{MaxTermNodes: 3_000_000}

var (
	fig6BaseOnce   sync.Once
	fig6BaseCounts string
)

// fig6BaselineCounts runs the bench corpus serially once and returns the
// Figure 6 class counts every parallel run must reproduce exactly. The
// comparison form is fmt.Sprint of Summary.ClassCounts() — string-keyed,
// so the rendering is ordered lexically and matches the JSON artifacts.
func fig6BaselineCounts() string {
	fig6BaseOnce.Do(func() {
		sum := harness.Run(harness.Config{
			Profile:         corpus.GCCLike(figure6Corpus),
			Budget:          fig6ParallelBudget,
			InadequateEvery: 40,
			Workers:         1,
		})
		fig6BaseCounts = fmt.Sprint(sum.ClassCounts())
	})
	return fig6BaseCounts
}

// BenchmarkFig6ParallelWorkers regenerates the Figure 6 corpus run across
// worker-pool sizes (-j 1/2/4/8). Each run must produce class counts
// byte-identical to the serial baseline — the pool only changes wall-clock
// time, reported alongside the achieved cpu/wall speedup.
func BenchmarkFig6ParallelWorkers(b *testing.B) {
	base := fig6BaselineCounts()
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sum := harness.Run(harness.Config{
					Profile:         corpus.GCCLike(figure6Corpus),
					Budget:          fig6ParallelBudget,
					InadequateEvery: 40,
					Workers:         j,
				})
				if got := fmt.Sprint(sum.ClassCounts()); got != base {
					b.Fatalf("j=%d class counts diverged from serial run:\n got %s\nwant %s", j, got, base)
				}
				b.ReportMetric(sum.Speedup(), "cpu/wall")
			}
		})
	}
}

// BenchmarkFig7Distributions regenerates the Figure 7 validation-time and
// code-size distributions from the same corpus run.
func BenchmarkFig7Distributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sum := runFig6Corpus()
		if i == 0 {
			sum.Figure7(os.Stdout)
		}
	}
}

// BenchmarkFig8WAWBug regenerates the §5.2 write-after-write store-merge
// study (Figures 8/9): the correct merge validates, the buggy one is
// rejected.
func BenchmarkFig8WAWBug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunBug(harness.BugExperiment{
			Name:        "WAW store merge",
			Program:     paperprogs.WAWStores,
			Fn:          "waw_foo",
			GoodOptions: isel.Options{MergeStores: true},
			BadOptions:  isel.Options{BugWAWStoreMerge: true},
		}, benchBudget)
		if err != nil || !r.BugCaught || !r.GoodPassed {
			b.Fatalf("bug experiment failed: %+v err=%v", r, err)
		}
		if i == 0 {
			harness.RenderBugTable(os.Stdout, []*harness.BugResult{r})
		}
	}
}

// BenchmarkFig10LoadNarrowBug regenerates the §5.2 load-narrowing study
// (Figures 10/11).
func BenchmarkFig10LoadNarrowBug(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.RunBug(harness.BugExperiment{
			Name:        "Load narrowing",
			Program:     paperprogs.LoadNarrow,
			Fn:          "narrow_foo",
			GoodOptions: isel.Options{},
			BadOptions:  isel.Options{BugLoadNarrow: true},
		}, benchBudget)
		if err != nil || !r.BugCaught || !r.GoodPassed {
			b.Fatalf("bug experiment failed: %+v err=%v", r, err)
		}
		if i == 0 {
			harness.RenderBugTable(os.Stdout, []*harness.BugResult{r})
		}
	}
}

// ablationCorpus returns a fixed slice of corpus functions reused by the
// ablation benchmarks.
func ablationCorpus(b *testing.B, n int) []corpus.Function {
	b.Helper()
	return corpus.Generate(corpus.GCCLike(n))
}

func runAblation(b *testing.B, opts core.Options) {
	fns := ablationCorpus(b, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fns {
			mod := mustMod(b, f.Src)
			out := tv.Validate(mod, f.Name, isel.Options{}, vcgen.Options{}, opts,
				tv.Budget{Timeout: 20 * time.Second})
			if out.Class != tv.ClassSucceeded && out.Class != tv.ClassTimeout {
				b.Fatalf("%s: %v (%v)", f.Name, out.Class, out.Err)
			}
		}
	}
}

// BenchmarkAblationPositiveForm measures validation with the paper's §3
// positive-form SMT query optimization (the default configuration).
func BenchmarkAblationPositiveForm(b *testing.B) {
	runAblation(b, core.Options{})
}

// BenchmarkAblationNegativeForm is the ablation: the naive φ1 ∧ ¬φ2 query
// form the paper found Z3 to handle poorly.
func BenchmarkAblationNegativeForm(b *testing.B) {
	runAblation(b, core.Options{DisablePositiveForm: true, DisablePCFastPath: true})
}

// BenchmarkAblationNoPCFastPath disables only the syntactic
// path-condition-equality shortcut.
func BenchmarkAblationNoPCFastPath(b *testing.B) {
	runAblation(b, core.Options{DisablePCFastPath: true})
}

// BenchmarkCrossLang validates the IMP→stack-machine compiler with the
// same checker — the language-parametricity claim as a benchmark.
func BenchmarkCrossLang(b *testing.B) {
	prog, err := imp.Parse(`
input a, b
a := (a | 1)
b := (b | 1)
while ((a == b) == 0) {
  if (a < b) {
    b := (b - a)
  } else {
    a := (a - b)
  }
}
return a
`)
	if err != nil {
		b.Fatal(err)
	}
	compiled := stack.Compile(prog, stack.Options{})
	points := stack.SyncPoints(prog)
	for i := 0; i < b.N; i++ {
		ctx := smt.NewContext()
		solver := smt.NewSolver(ctx)
		ck := core.NewChecker(solver, imp.NewSem(ctx, prog), stack.NewSem(ctx, compiled), core.Options{})
		rep, err := ck.Run(points)
		if err != nil || rep.Verdict != core.Validated {
			b.Fatalf("verdict %v err %v", rep.Verdict, err)
		}
	}
}

// BenchmarkRefinementUB measures the §4.6 undefined-behavior path: the nsw
// program validates via the acceptability relation's silent degradation to
// refinement.
func BenchmarkRefinementUB(b *testing.B) {
	mod := mustMod(b, paperprogs.NSWExample)
	for i := 0; i < b.N; i++ {
		out := tv.Validate(mod, "nsw_example", isel.Options{}, vcgen.Options{},
			core.Options{}, benchBudget)
		if out.Class != tv.ClassSucceeded {
			b.Fatalf("class = %v", out.Class)
		}
	}
}

// BenchmarkSMTSolver isolates the SMT substrate on a representative VC
// query shape: memory equality between reordered store chains.
func BenchmarkSMTSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ctx := smt.NewContext()
		s := smt.NewSolver(ctx)
		m := ctx.VarMem("M")
		a := ctx.VarBV("a", 64)
		v1 := ctx.VarBV("v1", 8)
		v2 := ctx.VarBV("v2", 8)
		m1 := ctx.Store(ctx.Store(m, a, v1), ctx.Add(a, ctx.BV(1, 64)), v2)
		m2 := ctx.Store(ctx.Store(m, ctx.Add(a, ctx.BV(1, 64)), v2), a, v1)
		proved, _, err := s.Prove(ctx.Eq(m1, m2))
		if err != nil || !proved {
			b.Fatalf("proved=%v err=%v", proved, err)
		}
	}
}

// BenchmarkISel isolates the compiler itself.
func BenchmarkISel(b *testing.B) {
	mod := mustMod(b, paperprogs.ArithmSeqSum)
	fn := mod.Func("arithm_seq_sum")
	for i := 0; i < b.N; i++ {
		if _, err := isel.Compile(mod, fn, isel.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchSanity keeps `go test ./...` meaningful at the repository root:
// the running example must validate and both bugs must be caught.
func TestBenchSanity(t *testing.T) {
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		t.Fatal(err)
	}
	out := tv.Validate(mod, "arithm_seq_sum", isel.Options{}, vcgen.Options{},
		core.Options{}, benchBudget)
	if out.Class != tv.ClassSucceeded {
		t.Fatalf("running example: %v (%v)", out.Class, out.Err)
	}
	fmt.Printf("running example validated in %v with %d sync points\n",
		out.Duration.Round(time.Millisecond), out.Points)
}

// BenchmarkAblationColdSMT disables incremental SMT solving: every query
// cold-starts a fresh SAT instance, the situation the paper's §5.1
// identifies as a major source of its timeout tail.
func BenchmarkAblationColdSMT(b *testing.B) {
	runAblation(b, core.Options{DisableIncrementalSMT: true})
}

// BenchmarkStrengthReduction validates the §4.7 "challenging validation"
// class: division/multiplication strength reductions, which the paper
// reports Z3 struggles with; the bit-blasting backend proves them
// directly.
func BenchmarkStrengthReduction(b *testing.B) {
	mod := mustMod(b, `
define i32 @sr(i32 %x, i32 %y) {
entry:
  %a = mul i32 %x, 8
  %b = udiv i32 %a, 4
  %c = urem i32 %b, 16
  %d = udiv i32 %y, 3
  %e = add i32 %c, %d
  ret i32 %e
}`)
	for i := 0; i < b.N; i++ {
		out := tv.Validate(mod, "sr", isel.Options{StrengthReduce: true},
			vcgen.Options{}, core.Options{}, benchBudget)
		if out.Class != tv.ClassSucceeded {
			b.Fatalf("class = %v err = %v", out.Class, out.Err)
		}
	}
}

// BenchmarkRegAllocValidation validates the register-allocation pass
// (the paper's "ongoing work"): Virtual x86 on both sides of the same
// checker, vregs against frame slots.
func BenchmarkRegAllocValidation(b *testing.B) {
	mod := mustMod(b, paperprogs.ArithmSeqSum)
	res, err := isel.Compile(mod, mod.Func("arithm_seq_sum"), isel.Options{})
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := regalloc.Allocate(res.Fn, regalloc.Options{})
	if err != nil {
		b.Fatal(err)
	}
	points, err := regalloc.SyncPoints(res.Fn, alloc)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		ctx := smt.NewContext()
		solver := smt.NewSolver(ctx)
		layout := llvmir.BuildLayout(mod, mod.Func("arithm_seq_sum"))
		ck := core.NewChecker(solver,
			vx86.NewSem(ctx, res.Fn, layout),
			vx86.NewSem(ctx, alloc.Fn, layout),
			core.Options{})
		rep, err := ck.Run(points)
		if err != nil || rep.Verdict != core.Validated {
			b.Fatalf("verdict %v err %v", rep.Verdict, err)
		}
	}
}

// figure6Config builds the canonical Fig. 6 bench configuration; cache
// toggles only the run-wide VC result cache, everything else held fixed.
func figure6Config(workers int, cache bool) harness.Config {
	return harness.Config{
		Profile:         corpus.GCCLike(figure6Corpus),
		Budget:          fig6ParallelBudget,
		InadequateEvery: 40,
		Workers:         workers,
		DisableVCCache:  !cache,
	}
}

// BenchmarkFigure6 compares the Figure 6 corpus run across the solver
// configurations: with and without the shared VC result cache, with
// proof-certificate emission on top of the cached configuration, and with
// span tracing on top of that. Class counts must match the serial
// baseline in every configuration — neither the cache, proof logging, nor
// tracing may change verdicts, only time. The cache=on runs report
// hit-rate metrics, the proofs=on runs certificate counts, the trace=on
// runs span counts, next to ns/op.
func BenchmarkFigure6(b *testing.B) {
	base := fig6BaselineCounts()
	const workers = 4
	for _, mode := range []struct {
		name   string
		cache  bool
		proofs bool
		trace  bool
	}{
		{"cache=off", false, false, false},
		{"cache=on", true, false, false},
		{"proofs=on", true, true, false},
		{"trace=on", true, false, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := figure6Config(workers, mode.cache)
				if mode.proofs {
					cfg.ProofDir = b.TempDir()
				}
				var tracer *telemetry.Tracer
				if mode.trace {
					tracer = telemetry.NewTracer()
					cfg.Tracer = tracer
				}
				sum := harness.Run(cfg)
				if sum.ProofErr != nil {
					b.Fatal(sum.ProofErr)
				}
				if got := fmt.Sprint(sum.ClassCounts()); got != base {
					b.Fatalf("%s class counts diverged from serial baseline:\n got %s\nwant %s",
						mode.name, got, base)
				}
				if mode.trace {
					b.ReportMetric(float64(tracer.Len()), "spans")
				} else if mode.proofs {
					b.ReportMetric(float64(sum.SMTStats.Certificates), "certs")
					b.ReportMetric(float64(sum.Certified), "certified")
				} else if mode.cache {
					hits, misses := sum.SMTStats.CacheHits, sum.SMTStats.CacheMisses
					if hits+misses > 0 {
						b.ReportMetric(float64(hits), "hits")
						b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
					}
				}
			}
		})
	}
}

// TestBenchPR2JSON writes the machine-readable benchmark artifact
// BENCH_PR2.json (the `make bench` target). Gated behind WRITE_BENCH_JSON
// so plain `go test ./...` stays fast and side-effect free.
func TestBenchPR2JSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		t.Skip("set WRITE_BENCH_JSON=1 to write BENCH_PR2.json")
	}
	const workers = 4
	type configResult struct {
		WallSeconds float64 `json:"wall_seconds"`
		CPUSeconds  float64 `json:"cpu_seconds"`
		CacheHits   int64   `json:"cache_hits"`
		CacheMisses int64   `json:"cache_misses"`
		// Counts is a real JSON object ({"Succeeded": 119, ...}), not a
		// stringified Go map.
		Counts map[string]int `json:"class_counts"`
	}
	measure := func(cache bool) configResult {
		start := time.Now()
		sum := harness.Run(figure6Config(workers, cache))
		return configResult{
			WallSeconds: time.Since(start).Seconds(),
			CPUSeconds:  sum.CPUTime.Seconds(),
			CacheHits:   sum.SMTStats.CacheHits,
			CacheMisses: sum.SMTStats.CacheMisses,
			Counts:      sum.ClassCounts(),
		}
	}
	// Warm the process (page cache, JIT-free but first-run allocator noise)
	// with the baseline, which also pins the expected class counts.
	base := fig6BaselineCounts()
	off := measure(false)
	on := measure(true)
	if fmt.Sprint(off.Counts) != base || fmt.Sprint(on.Counts) != base {
		t.Fatalf("class counts diverged: baseline %s, cache-off %v, cache-on %v",
			base, off.Counts, on.Counts)
	}
	artifact := struct {
		Benchmark string       `json:"benchmark"`
		Corpus    int          `json:"corpus_functions"`
		Workers   int          `json:"workers"`
		CacheOff  configResult `json:"cache_off"`
		CacheOn   configResult `json:"cache_on"`
		Speedup   float64      `json:"wall_speedup_cache_on"`
	}{
		Benchmark: "Figure6",
		Corpus:    figure6Corpus,
		Workers:   workers,
		CacheOff:  off,
		CacheOn:   on,
		Speedup:   off.WallSeconds / on.WallSeconds,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR2.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_PR2.json: cache off %.2fs, on %.2fs (%.2fx), %d hits / %d misses",
		off.WallSeconds, on.WallSeconds, artifact.Speedup, on.CacheHits, on.CacheMisses)
}

// TestBenchPR3JSON writes the proof-certificate overhead artifact
// BENCH_PR3.json (the `make bench` target): the Figure 6 corpus run with
// certificate emission off and on, at the same worker count and with the
// VC cache enabled in both. Class counts must be byte-identical — proof
// logging may never change verdicts — and the emitted directory must pass
// the independent proofcheck verifier with zero rejections. The wall-clock
// ratio is recorded against the <=1.3x overhead target. Gated behind
// WRITE_BENCH_JSON like TestBenchPR2JSON.
func TestBenchPR3JSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		t.Skip("set WRITE_BENCH_JSON=1 to write BENCH_PR3.json")
	}
	const workers = 4
	type configResult struct {
		WallSeconds  float64        `json:"wall_seconds"`
		CPUSeconds   float64        `json:"cpu_seconds"`
		Certificates int64          `json:"certificates"`
		ProofBytes   int64          `json:"proof_bytes"`
		Certified    int            `json:"functions_certified"`
		Counts       map[string]int `json:"class_counts"`
	}
	measure := func(proofDir string) configResult {
		cfg := figure6Config(workers, true)
		cfg.ProofDir = proofDir
		start := time.Now()
		sum := harness.Run(cfg)
		if sum.ProofErr != nil {
			t.Fatal(sum.ProofErr)
		}
		return configResult{
			WallSeconds:  time.Since(start).Seconds(),
			CPUSeconds:   sum.CPUTime.Seconds(),
			Certificates: sum.SMTStats.Certificates,
			ProofBytes:   sum.SMTStats.ProofBytes,
			Certified:    sum.Certified,
			Counts:       sum.ClassCounts(),
		}
	}
	base := fig6BaselineCounts()
	off := measure("")
	proofDir := t.TempDir()
	on := measure(proofDir)
	if fmt.Sprint(off.Counts) != base || fmt.Sprint(on.Counts) != base {
		t.Fatalf("class counts diverged: baseline %s, proofs-off %v, proofs-on %v",
			base, off.Counts, on.Counts)
	}
	report, err := proof.CheckDir(proofDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) != 0 {
		t.Fatalf("proofcheck rejected %d certificates, first: %s",
			len(report.Rejections), report.Rejections[0])
	}
	ratio := on.WallSeconds / off.WallSeconds
	artifact := struct {
		Benchmark     string       `json:"benchmark"`
		Corpus        int          `json:"corpus_functions"`
		Workers       int          `json:"workers"`
		ProofsOff     configResult `json:"proofs_off"`
		ProofsOn      configResult `json:"proofs_on"`
		WallRatio     float64      `json:"wall_ratio_proofs_on"`
		RatioTarget   float64      `json:"wall_ratio_target"`
		CheckQueries  int          `json:"proofcheck_queries"`
		CheckSteps    int          `json:"proofcheck_trace_steps"`
		CheckWitness  int          `json:"proofcheck_witnesses"`
		CheckRejected int          `json:"proofcheck_rejections"`
	}{
		Benchmark:    "Figure6-proofs",
		Corpus:       figure6Corpus,
		Workers:      workers,
		ProofsOff:    off,
		ProofsOn:     on,
		WallRatio:    ratio,
		RatioTarget:  1.3,
		CheckQueries: report.Queries,
		CheckSteps:   report.Steps,
		CheckWitness: report.Witnesses,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR3.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_PR3.json: proofs off %.2fs, on %.2fs (%.2fx, target <=1.30x), %d certs, %d trace bytes, %d/%d certified",
		off.WallSeconds, on.WallSeconds, ratio, on.Certificates, on.ProofBytes, on.Certified, figure6Corpus)
	if ratio > 1.3 {
		t.Errorf("proof logging overhead %.2fx exceeds 1.3x wall-clock target", ratio)
	}
}

// BenchmarkAblationNoVCCache and BenchmarkAblationNoClauseReduce are the
// EXPERIMENTS.md ablation rows for the two solver-side accelerators
// introduced with the VC cache work. They reuse the same 10-function
// corpus as the other ablations so the table stays comparable.
func BenchmarkAblationNoVCCache(b *testing.B) {
	// tv.Validate creates a fresh solver per function with no shared
	// cache, so the per-function ablation baseline is runAblation itself;
	// what this row measures is a corpus run with the harness cache off.
	base := fig6BaselineCounts()
	for i := 0; i < b.N; i++ {
		sum := harness.Run(figure6Config(4, false))
		if got := fmt.Sprint(sum.ClassCounts()); got != base {
			b.Fatalf("counts diverged: got %s want %s", got, base)
		}
	}
}

func BenchmarkAblationNoClauseReduce(b *testing.B) {
	runAblation(b, core.Options{DisableClauseDBReduction: true})
}

// TestBenchPR5JSON writes the telemetry overhead artifact BENCH_PR5.json
// (the `make bench` target): the Figure 6 corpus run untraced and traced,
// same workers and cache in both. Class counts must be byte-identical —
// tracing may never change verdicts — the trace must lint clean, and the
// wall-clock ratio is recorded against a <=1.10x overhead target. Gated
// behind WRITE_BENCH_JSON like the other artifact writers.
func TestBenchPR5JSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		t.Skip("set WRITE_BENCH_JSON=1 to write BENCH_PR5.json")
	}
	const workers = 4
	type configResult struct {
		WallSeconds float64        `json:"wall_seconds"`
		CPUSeconds  float64        `json:"cpu_seconds"`
		Spans       int            `json:"spans"`
		Counts      map[string]int `json:"class_counts"`
	}
	measure := func(tracer *telemetry.Tracer) configResult {
		cfg := figure6Config(workers, true)
		cfg.Tracer = tracer
		start := time.Now()
		sum := harness.Run(cfg)
		return configResult{
			WallSeconds: time.Since(start).Seconds(),
			CPUSeconds:  sum.CPUTime.Seconds(),
			Spans:       tracer.Len(),
			Counts:      sum.ClassCounts(),
		}
	}
	base := fig6BaselineCounts()
	off := measure(nil)
	tracer := telemetry.NewTracer()
	on := measure(tracer)
	if fmt.Sprint(off.Counts) != base || fmt.Sprint(on.Counts) != base {
		t.Fatalf("class counts diverged: baseline %s, untraced %v, traced %v",
			base, off.Counts, on.Counts)
	}
	if err := telemetry.Lint(tracer.Records()); err != nil {
		t.Fatalf("trace lint: %v", err)
	}
	smtQueries := int64(0)
	for _, r := range tracer.Records() {
		if r.Name == "smt.query" {
			smtQueries++
		}
	}
	ratio := on.WallSeconds / off.WallSeconds
	artifact := struct {
		Benchmark     string       `json:"benchmark"`
		Corpus        int          `json:"corpus_functions"`
		Workers       int          `json:"workers"`
		Untraced      configResult `json:"untraced"`
		Traced        configResult `json:"traced"`
		WallRatio     float64      `json:"wall_ratio_traced"`
		RatioTarget   float64      `json:"wall_ratio_target"`
		SMTQuerySpans int64        `json:"smt_query_spans"`
	}{
		Benchmark:     "Figure6-telemetry",
		Corpus:        figure6Corpus,
		Workers:       workers,
		Untraced:      off,
		Traced:        on,
		WallRatio:     ratio,
		RatioTarget:   1.10,
		SMTQuerySpans: smtQueries,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR5.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_PR5.json: untraced %.2fs, traced %.2fs (%.2fx, target <=1.10x), %d spans (%d smt.query)",
		off.WallSeconds, on.WallSeconds, ratio, on.Spans, smtQueries)
	if ratio > 1.10 {
		t.Errorf("tracing overhead %.2fx exceeds 1.10x wall-clock target", ratio)
	}
}

// heapSampler polls the live heap every 10ms and tracks its maximum —
// the peak-RSS proxy used by the certificate-scale artifact. stop() ends
// the sampling and returns the observed peak in bytes.
func heapSampler() (stop func() int64) {
	var peak atomic.Int64
	done := make(chan struct{})
	finished := make(chan struct{})
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if h := int64(ms.HeapAlloc); h > peak.Load() {
			peak.Store(h)
		}
	}
	go func() {
		defer close(finished)
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample()
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	return func() int64 {
		close(done)
		<-finished
		return peak.Load()
	}
}

// TestBenchPR7JSON writes the certificate & memory scale artifact
// BENCH_PR7.json (the `make bench` target): the Figure 6 corpus run with
// the schema-1 buffered certificate writers (the -proof-legacy ablation)
// versus the schema-2 streaming writers — binary DRAT, shared term
// table, per-query flushing. Class counts must be byte-identical to the
// serial baseline in both modes, both directories must pass the
// independent verifier with zero rejections, the streaming artifacts
// must come in under the 150 KB/function budget, and the peak heap of
// verification must drop. Gated behind WRITE_BENCH_JSON like the other
// artifact writers.
func TestBenchPR7JSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		t.Skip("set WRITE_BENCH_JSON=1 to write BENCH_PR7.json")
	}
	const workers = 4
	const bytesPerFnBudget = 150 * 1024
	type configResult struct {
		WallSeconds      float64        `json:"wall_seconds"`
		CPUSeconds       float64        `json:"cpu_seconds"`
		ProofBytes       int64          `json:"proof_bytes"`
		BytesPerFunction int64          `json:"proof_bytes_per_function"`
		EmitPeakHeap     int64          `json:"emit_peak_heap_bytes"`
		CheckWallSeconds float64        `json:"proofcheck_wall_seconds"`
		CheckPeakHeap    int64          `json:"proofcheck_peak_heap_bytes"`
		Certified        int            `json:"functions_certified"`
		Counts           map[string]int `json:"class_counts"`
	}
	measure := func(legacy bool) configResult {
		dir := t.TempDir()
		cfg := figure6Config(workers, true)
		cfg.ProofDir = dir
		cfg.ProofLegacy = legacy

		runtime.GC()
		stop := heapSampler()
		start := time.Now()
		sum := harness.Run(cfg)
		wall := time.Since(start)
		emitPeak := stop()
		if sum.ProofErr != nil {
			t.Fatal(sum.ProofErr)
		}

		runtime.GC()
		stop = heapSampler()
		start = time.Now()
		report, err := proof.CheckDir(dir)
		checkWall := time.Since(start)
		checkPeak := stop()
		if err != nil {
			t.Fatal(err)
		}
		if len(report.Rejections) != 0 {
			t.Fatalf("legacy=%v: proofcheck rejected %d certificates, first: %s",
				legacy, len(report.Rejections), report.Rejections[0])
		}
		return configResult{
			WallSeconds:      wall.Seconds(),
			CPUSeconds:       sum.CPUTime.Seconds(),
			ProofBytes:       sum.SMTStats.ProofBytes,
			BytesPerFunction: sum.SMTStats.ProofBytes / int64(figure6Corpus),
			EmitPeakHeap:     emitPeak,
			CheckWallSeconds: checkWall.Seconds(),
			CheckPeakHeap:    checkPeak,
			Certified:        sum.Certified,
			Counts:           sum.ClassCounts(),
		}
	}
	base := fig6BaselineCounts()
	legacy := measure(true)
	streaming := measure(false)
	if fmt.Sprint(legacy.Counts) != base || fmt.Sprint(streaming.Counts) != base {
		t.Fatalf("class counts diverged: baseline %s, legacy %v, streaming %v",
			base, legacy.Counts, streaming.Counts)
	}
	if streaming.BytesPerFunction > bytesPerFnBudget {
		t.Errorf("streaming artifacts %d B/function exceed the %d B budget",
			streaming.BytesPerFunction, bytesPerFnBudget)
	}
	if streaming.ProofBytes >= legacy.ProofBytes {
		t.Errorf("streaming artifacts (%d B) not smaller than legacy (%d B)",
			streaming.ProofBytes, legacy.ProofBytes)
	}
	if streaming.CheckPeakHeap >= legacy.CheckPeakHeap {
		t.Errorf("streaming verification peak heap (%d B) not below legacy (%d B)",
			streaming.CheckPeakHeap, legacy.CheckPeakHeap)
	}
	artifact := struct {
		Benchmark       string       `json:"benchmark"`
		Corpus          int          `json:"corpus_functions"`
		Workers         int          `json:"workers"`
		Legacy          configResult `json:"cert_refactor_off"`
		Streaming       configResult `json:"cert_refactor_on"`
		SizeRatio       float64      `json:"proof_bytes_ratio_legacy_over_streaming"`
		BytesPerFnLimit int64        `json:"proof_bytes_per_function_budget"`
	}{
		Benchmark:       "Figure6-certificate-scale",
		Corpus:          figure6Corpus,
		Workers:         workers,
		Legacy:          legacy,
		Streaming:       streaming,
		SizeRatio:       float64(legacy.ProofBytes) / float64(streaming.ProofBytes),
		BytesPerFnLimit: bytesPerFnBudget,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR7.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_PR7.json: legacy %d B (%d B/fn, check peak %d B), streaming %d B (%d B/fn, check peak %d B), %.2fx smaller",
		legacy.ProofBytes, legacy.BytesPerFunction, legacy.CheckPeakHeap,
		streaming.ProofBytes, streaming.BytesPerFunction, streaming.CheckPeakHeap,
		artifact.SizeRatio)
}

// TestBenchPR8JSON writes the validation-as-a-service artifact
// BENCH_PR8.json (the `make bench` target): the Figure 6 corpus
// validated through a tvd daemon twice against the same persistent
// result store — a cold run that fills the store and a warm run served
// from it. The warm run must hit the store for >=95% of the corpus with
// class counts byte-identical to the cold run AND to a local in-process
// run of the same corpus (the daemon changes where validation happens,
// never what it concludes), and the store-served certificate artifacts
// must pass the independent verifier with zero rejections. The recorded
// headline is the cold/warm wall-clock ratio. Gated behind
// WRITE_BENCH_JSON like the other artifact writers.
func TestBenchPR8JSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		t.Skip("set WRITE_BENCH_JSON=1 to write BENCH_PR8.json")
	}
	const workers = 4
	fns := corpus.Generate(corpus.GCCLike(figure6Corpus))

	srv, err := tvd.NewServer(tvd.ServerConfig{
		Workers:  workers,
		StoreDir: t.TempDir(),
		WorkDir:  t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := tvd.NewClient(hs.URL)

	req := &tvd.BatchRequest{MaxTermNodes: fig6ParallelBudget.MaxTermNodes}
	for _, f := range fns {
		req.Jobs = append(req.Jobs, tvd.JobRequest{Fn: f.Name, IR: f.Src})
	}
	type configResult struct {
		WallSeconds float64        `json:"wall_seconds"`
		CPUSeconds  float64        `json:"cpu_seconds"`
		StoreHits   int            `json:"store_hits"`
		StoreMisses int            `json:"store_misses"`
		Counts      map[string]int `json:"class_counts"`
	}
	measure := func(proofs bool) (configResult, *tvd.BatchResult) {
		req.Proofs = proofs
		start := time.Now()
		res, err := client.ValidateAll(req, nil)
		if err != nil {
			t.Fatal(err)
		}
		return configResult{
			WallSeconds: time.Since(start).Seconds(),
			CPUSeconds:  res.Stats.CPUSeconds,
			StoreHits:   res.StoreHits,
			StoreMisses: res.StoreMisses,
			Counts:      res.Stats.Classes,
		}, res
	}
	cold, _ := measure(false)
	warm, warmRes := measure(true)

	hitRate := float64(warm.StoreHits) / float64(len(fns))
	if hitRate < 0.95 {
		t.Errorf("warm-start hit rate %.2f (%d/%d) below the 0.95 floor",
			hitRate, warm.StoreHits, len(fns))
	}
	if fmt.Sprint(cold.Counts) != fmt.Sprint(warm.Counts) {
		t.Errorf("class counts diverged: cold %v, warm %v", cold.Counts, warm.Counts)
	}
	// Local equivalence: the same corpus validated in-process (same
	// deterministic budget, no daemon) must produce the same classes.
	local := harness.Run(harness.Config{
		Profile: corpus.GCCLike(figure6Corpus),
		Budget:  fig6ParallelBudget,
		Workers: workers,
	})
	if fmt.Sprint(local.ClassCounts()) != fmt.Sprint(cold.Counts) {
		t.Errorf("daemon classes diverged from a local run: local %v, daemon %v",
			local.ClassCounts(), cold.Counts)
	}

	// The warm batch's store-served artifacts must verify from scratch.
	proofDir := t.TempDir()
	if err := tvd.MaterializeProofs(proofDir, warmRes); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(proofDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) != 0 {
		t.Fatalf("store-backed proofs rejected (%d), first: %s",
			len(report.Rejections), report.Rejections[0])
	}

	artifact := struct {
		Benchmark     string       `json:"benchmark"`
		Corpus        int          `json:"corpus_functions"`
		Workers       int          `json:"workers"`
		Cold          configResult `json:"cold"`
		Warm          configResult `json:"warm"`
		WallRatio     float64      `json:"wall_ratio_cold_over_warm"`
		HitRate       float64      `json:"warm_store_hit_rate"`
		HitRateFloor  float64      `json:"warm_store_hit_rate_floor"`
		CheckQueries  int          `json:"proofcheck_queries"`
		CheckWitness  int          `json:"proofcheck_witnesses"`
		CheckRejected int          `json:"proofcheck_rejections"`
	}{
		Benchmark:    "Figure6-daemon-store",
		Corpus:       figure6Corpus,
		Workers:      workers,
		Cold:         cold,
		Warm:         warm,
		WallRatio:    cold.WallSeconds / warm.WallSeconds,
		HitRate:      hitRate,
		HitRateFloor: 0.95,
		CheckQueries: report.Queries,
		CheckWitness: report.Witnesses,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR8.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_PR8.json: cold %.2fs, warm %.2fs (%.1fx), %d/%d store hits, proofcheck %d queries 0 rejections",
		cold.WallSeconds, warm.WallSeconds, artifact.WallRatio, warm.StoreHits, len(fns), report.Queries)
}

// TestBenchPR6JSON writes the solver-acceleration artifact BENCH_PR6.json
// (the `make bench` target): the Figure 6 corpus run — deterministic
// term-node budget like every other BENCH artifact, so classes cannot
// depend on timing — across the four inprocessing × portfolio ablation
// combinations. Class counts must be byte-identical to the serial
// baseline in all four: both techniques are accelerators, never
// verdict-changers. A second leg squeezes the per-function budget to a
// 2s wall clock so a Timeout tail exists, and records the tail.smt
// histogram with both accelerators off versus on — the PR's motivating
// metric (timed classes are inherently timing-dependent, so that leg
// records the tail without asserting counts). Gated behind
// WRITE_BENCH_JSON like the other artifact writers.
func TestBenchPR6JSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		t.Skip("set WRITE_BENCH_JSON=1 to write BENCH_PR6.json")
	}
	const workers = 4
	type configResult struct {
		WallSeconds  float64        `json:"wall_seconds"`
		CPUSeconds   float64        `json:"cpu_seconds"`
		Counts       map[string]int `json:"class_counts"`
		Subsumed     int64          `json:"subsumed_clauses,omitempty"`
		Strengthened int64          `json:"strengthened_clauses,omitempty"`
		Vivified     int64          `json:"vivified_clauses,omitempty"`
		Eliminated   int64          `json:"eliminated_vars,omitempty"`
		Races        int64          `json:"races,omitempty"`
		RacerWins    int64          `json:"racer_wins,omitempty"`
		TailSMTCount int64          `json:"tail_smt_count"`
		TailSMTSecs  float64        `json:"tail_smt_seconds"`
	}
	measure := func(budget tv.Budget, noInprocess, noPortfolio bool) configResult {
		cfg := figure6Config(workers, true)
		cfg.Budget = budget
		cfg.Checker = core.Options{DisableInprocess: noInprocess}
		cfg.DisablePortfolio = noPortfolio
		start := time.Now()
		sum := harness.Run(cfg)
		tail := sum.Metrics.Hist("tail.smt")
		return configResult{
			WallSeconds:  time.Since(start).Seconds(),
			CPUSeconds:   sum.CPUTime.Seconds(),
			Counts:       sum.ClassCounts(),
			Subsumed:     sum.SMTStats.SubsumedClauses,
			Strengthened: sum.SMTStats.StrengthenedClauses,
			Vivified:     sum.SMTStats.VivifiedClauses,
			Eliminated:   sum.SMTStats.EliminatedVars,
			Races:        sum.SMTStats.Races,
			RacerWins:    sum.SMTStats.RaceRacerWins,
			TailSMTCount: tail.Count,
			TailSMTSecs:  time.Duration(tail.Sum).Seconds(),
		}
	}

	full := measure(fig6ParallelBudget, false, false)
	noInproc := measure(fig6ParallelBudget, true, false)
	noPortfolio := measure(fig6ParallelBudget, false, true)
	bothOff := measure(fig6ParallelBudget, true, true)
	base := fig6BaselineCounts()
	for name, r := range map[string]configResult{
		"full": full, "no-inprocess": noInproc, "no-portfolio": noPortfolio, "both-off": bothOff,
	} {
		if got := fmt.Sprint(r.Counts); got != base {
			t.Errorf("%s class counts diverged from the serial baseline:\n got %s\nwant %s",
				name, got, base)
		}
	}

	// The tail leg: a 2s budget manufactures the Timeout tail the 20s run
	// no longer has, so the tail.smt reduction is observable.
	tight := tv.Budget{Timeout: 2 * time.Second, MaxTermNodes: fig6ParallelBudget.MaxTermNodes}
	tailOff := measure(tight, true, true)
	tailOn := measure(tight, false, false)
	if tailOn.TailSMTCount >= tailOff.TailSMTCount && tailOn.TailSMTSecs >= tailOff.TailSMTSecs {
		t.Errorf("tail.smt not reduced: off count=%d sum=%.2fs, on count=%d sum=%.2fs",
			tailOff.TailSMTCount, tailOff.TailSMTSecs, tailOn.TailSMTCount, tailOn.TailSMTSecs)
	}

	artifact := struct {
		Benchmark    string       `json:"benchmark"`
		Corpus       int          `json:"corpus_functions"`
		Workers      int          `json:"workers"`
		Full         configResult `json:"inprocess_and_portfolio"`
		NoInprocess  configResult `json:"no_inprocess"`
		NoPortfolio  configResult `json:"no_portfolio"`
		BothOff      configResult `json:"both_off"`
		TightBothOff configResult `json:"tight_budget_both_off"`
		TightFull    configResult `json:"tight_budget_full"`
	}{
		Benchmark:    "Figure6-inprocess-portfolio",
		Corpus:       figure6Corpus,
		Workers:      workers,
		Full:         full,
		NoInprocess:  noInproc,
		NoPortfolio:  noPortfolio,
		BothOff:      bothOff,
		TightBothOff: tailOff,
		TightFull:    tailOn,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR6.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_PR6.json: full %.2fs, no-inprocess %.2fs, no-portfolio %.2fs, both-off %.2fs; tight tail.smt off %d/%.2fs on %d/%.2fs",
		full.WallSeconds, noInproc.WallSeconds, noPortfolio.WallSeconds, bothOff.WallSeconds,
		tailOff.TailSMTCount, tailOff.TailSMTSecs, tailOn.TailSMTCount, tailOn.TailSMTSecs)
}

// TestBenchPR9JSON writes the cube-and-conquer / adaptive-portfolio
// artifact BENCH_PR9.json (the `make bench` target). Legs:
//
//   - untimed_full: the deterministic no-timeout Fig. 6 run with the whole
//     solver stack on (inprocessing, portfolio, cube) — class counts must
//     be byte-identical to the serial baseline, pinning that the
//     escalation-ladder rewrite changes time only, never verdicts;
//   - default_budget_adaptive vs default_budget_no_portfolio: the
//     generous 20s default budget, where PR 6's always-race portfolio
//     cost wall time (72.0s vs 68.3s no-portfolio). The adaptive gate
//     keeps probing solo while more than half the budget remains, so the
//     adaptive wall must come back down to the no-portfolio leg's,
//     with a timeout-count backstop against gross regressions;
//   - tight_budget_cube_off vs tight_budget_cube_on: the 2s budget that
//     manufactures the Timeout tail. The cube leg must escalate, must
//     decide queries by cubing (cube_unsat_wins + cubes_sat > 0), and
//     must not grow the tail. Function-level counts are gated for
//     non-regression rather than strict decrease: the 2s tail on this
//     corpus is mostly throughput-bound (hundreds of ~3ms queries per
//     function), so several functions straddle the cutoff and flip
//     between identical runs; each leg is therefore the median of three
//     interleaved runs. Cubing converts the monster-query functions and
//     20-35 individual queries per run, which is the stable signal;
//   - tight_budget_cube_proofs: the cube-on tight leg re-run with
//     certificate emission — every cube-composed certificate must verify
//     with zero proofcheck rejections.
//
// Gated behind WRITE_BENCH_JSON like the other artifact writers.
func TestBenchPR9JSON(t *testing.T) {
	if os.Getenv("WRITE_BENCH_JSON") == "" {
		t.Skip("set WRITE_BENCH_JSON=1 to write BENCH_PR9.json")
	}
	const workers = 4
	type configResult struct {
		WallSeconds     float64        `json:"wall_seconds"`
		CPUSeconds      float64        `json:"cpu_seconds"`
		Counts          map[string]int `json:"class_counts"`
		Races           int64          `json:"races,omitempty"`
		RacerWins       int64          `json:"racer_wins,omitempty"`
		WastedConflicts int64          `json:"race_wasted_conflicts,omitempty"`
		CubeEscalations int64          `json:"cube_escalations,omitempty"`
		CubesGenerated  int64          `json:"cubes_generated,omitempty"`
		CubesRefuted    int64          `json:"cubes_refuted,omitempty"`
		CubesSat        int64          `json:"cubes_sat,omitempty"`
		CubeUnsatWins   int64          `json:"cube_unsat_wins,omitempty"`
		CubeSteals      int64          `json:"cube_steals,omitempty"`
		TailSMTCount    int64          `json:"tail_smt_count"`
		TailRuns        []int64        `json:"tail_smt_count_runs,omitempty"`
		TailSMTSecs     float64        `json:"tail_smt_seconds"`
		Rejections      int            `json:"proofcheck_rejections,omitempty"`
		Certificates    int64          `json:"certificates,omitempty"`
	}
	measure := func(budget tv.Budget, noPortfolio, noCube bool, proofDir string) configResult {
		cfg := figure6Config(workers, true)
		cfg.Budget = budget
		cfg.Checker = core.Options{DisableCube: noCube}
		cfg.DisablePortfolio = noPortfolio
		cfg.ProofDir = proofDir
		start := time.Now()
		sum := harness.Run(cfg)
		if sum.ProofErr != nil {
			t.Fatalf("proof emission failed: %v", sum.ProofErr)
		}
		tail := sum.Metrics.Hist("tail.smt")
		return configResult{
			WallSeconds:     time.Since(start).Seconds(),
			CPUSeconds:      sum.CPUTime.Seconds(),
			Counts:          sum.ClassCounts(),
			Races:           sum.SMTStats.Races,
			RacerWins:       sum.SMTStats.RaceRacerWins,
			WastedConflicts: sum.SMTStats.RaceWastedConflicts,
			CubeEscalations: sum.SMTStats.CubeEscalations,
			CubesGenerated:  sum.SMTStats.CubesGenerated,
			CubesRefuted:    sum.SMTStats.CubesRefuted,
			CubesSat:        sum.SMTStats.CubesSat,
			CubeUnsatWins:   sum.Metrics.Counter("cube.unsat"),
			CubeSteals:      sum.SMTStats.CubeSteals,
			TailSMTCount:    tail.Count,
			TailSMTSecs:     time.Duration(tail.Sum).Seconds(),
			Certificates:    sum.SMTStats.Certificates,
		}
	}

	// Deterministic leg: verdict parity under the full stack.
	untimed := measure(fig6ParallelBudget, false, false, "")
	if got, base := fmt.Sprint(untimed.Counts), fig6BaselineCounts(); got != base {
		t.Errorf("untimed full-stack class counts diverged from the serial baseline:\n got %s\nwant %s", got, base)
	}

	// Generous-budget legs: the adaptive gate must stop the portfolio
	// from costing wall time.
	defaultBudget := tv.Budget{Timeout: 20 * time.Second, MaxTermNodes: fig6ParallelBudget.MaxTermNodes}
	adaptive := measure(defaultBudget, false, false, "")
	noPf := measure(defaultBudget, true, false, "")
	// The wall comparison is the gate that matters (PR 6's race-always
	// stack was 3.7s slower here); the timeout-count backstop only
	// catches gross regressions, because at 20s the 3-5 tail functions
	// sit right at the budget boundary and flip between identical runs.
	if adaptive.TailSMTCount > noPf.TailSMTCount+2 {
		t.Errorf("adaptive portfolio times out far more than no-portfolio at the default budget: %d vs %d",
			adaptive.TailSMTCount, noPf.TailSMTCount)
	}
	if adaptive.WallSeconds > noPf.WallSeconds*1.05 {
		t.Errorf("adaptive portfolio still costs wall time at the default budget: %.2fs vs %.2fs no-portfolio",
			adaptive.WallSeconds, noPf.WallSeconds)
	}

	// Tight-budget legs: cubing must engage, must decide queries, and
	// must not grow the timeout tail (see the leg comment above for why
	// strict function-level decrease is not a stable gate here). The
	// single-run counts flip ±2 between identical invocations, so each
	// leg is the tail-count median of three runs, interleaved so machine
	// drift across the bench lands on both legs alike.
	tight := tv.Budget{Timeout: 2 * time.Second, MaxTermNodes: fig6ParallelBudget.MaxTermNodes}
	var offRuns, onRuns []configResult
	for i := 0; i < 3; i++ {
		offRuns = append(offRuns, measure(tight, false, true, ""))
		onRuns = append(onRuns, measure(tight, false, false, ""))
	}
	tailMedian := func(rs []configResult) configResult {
		sorted := append([]configResult(nil), rs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].TailSMTCount < sorted[j].TailSMTCount })
		med := sorted[1]
		for _, r := range rs {
			med.TailRuns = append(med.TailRuns, r.TailSMTCount)
		}
		return med
	}
	tightOff := tailMedian(offRuns)
	tightOn := tailMedian(onRuns)
	if tightOn.CubeEscalations == 0 {
		t.Errorf("tight-budget cube leg never escalated: the comparison is vacuous")
	}
	if tightOn.CubeUnsatWins+tightOn.CubesSat == 0 {
		t.Errorf("tight-budget cube leg decided no queries by cubing (escalated %d times)",
			tightOn.CubeEscalations)
	}
	if tightOn.TailSMTCount > tightOff.TailSMTCount+1 {
		t.Errorf("cube grew the timeout tail: on %d, off %d",
			tightOn.TailSMTCount, tightOff.TailSMTCount)
	}

	// Certification leg: cube-composed certificates verify from scratch.
	proofDir := t.TempDir()
	tightProofs := measure(tight, false, false, proofDir)
	report, err := proof.CheckDir(proofDir)
	if err != nil {
		t.Fatal(err)
	}
	tightProofs.Rejections = len(report.Rejections)
	for _, r := range report.Rejections {
		t.Errorf("proofcheck rejection: %s", r)
	}

	artifact := struct {
		Benchmark   string       `json:"benchmark"`
		Corpus      int          `json:"corpus_functions"`
		Workers     int          `json:"workers"`
		Untimed     configResult `json:"untimed_full"`
		Adaptive    configResult `json:"default_budget_adaptive"`
		NoPortfolio configResult `json:"default_budget_no_portfolio"`
		TightOff    configResult `json:"tight_budget_cube_off"`
		TightOn     configResult `json:"tight_budget_cube_on"`
		TightProofs configResult `json:"tight_budget_cube_proofs"`
	}{
		Benchmark:   "Figure6-cube-adaptive-portfolio",
		Corpus:      figure6Corpus,
		Workers:     workers,
		Untimed:     untimed,
		Adaptive:    adaptive,
		NoPortfolio: noPf,
		TightOff:    tightOff,
		TightOn:     tightOn,
		TightProofs: tightProofs,
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_PR9.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("BENCH_PR9.json: adaptive %.2fs vs no-portfolio %.2fs; tight tail cube-off %d/%.2fs cube-on %d/%.2fs (%d escalations, %d cubes, %d unsat wins); proofs leg %d certs %d rejections",
		adaptive.WallSeconds, noPf.WallSeconds,
		tightOff.TailSMTCount, tightOff.TailSMTSecs, tightOn.TailSMTCount, tightOn.TailSMTSecs,
		tightOn.CubeEscalations, tightOn.CubesGenerated, tightOn.CubeUnsatWins,
		tightProofs.Certificates, tightProofs.Rejections)
}
