package core

import "fmt"

// This file implements the concrete side of the paper's formalization
// (§7): cut transition systems over explicit state graphs, cut-successor
// computation (Definition 7.3), cut-(bi)simulation checking exactly as
// Algorithm 1 is stated, and the cut-abstract transition system of
// Definition 7.5. It exists for three reasons: it documents the theory the
// symbolic checker implements, it lets tests exercise Algorithm 1 against
// hand-built transition systems (e.g. the partial-redundancy-elimination
// example of Figure 4), and it supports property tests comparing the
// abstract and concrete formulations.

// ConcreteTS is a finite, explicitly enumerated cut transition system
// (S, ξ, →, C) with states identified by strings.
type ConcreteTS struct {
	Init  string
	Succs map[string][]string
	Cut   map[string]bool
}

// Validate checks basic well-formedness: the initial state exists and is a
// cut state (Definition 7.1 requires ξ ∈ C).
func (t *ConcreteTS) Validate() error {
	if _, ok := t.Succs[t.Init]; !ok {
		return fmt.Errorf("core: initial state %q not in state set", t.Init)
	}
	if !t.Cut[t.Init] {
		return fmt.Errorf("core: initial state %q not a cut state", t.Init)
	}
	for s, next := range t.Succs {
		for _, n := range next {
			if _, ok := t.Succs[n]; !ok {
				return fmt.Errorf("core: transition %q→%q leaves the state set", s, n)
			}
		}
	}
	return nil
}

// CutSuccessors implements next_i of Algorithm 1 / Definition 7.3: the set
// of cut states reachable from s through non-cut states only. It returns
// an error if some path can avoid the cut forever (then C is not a cut for
// s, violating Definition 7.1).
func (t *ConcreteTS) CutSuccessors(s string) ([]string, error) {
	var ret []string
	inRet := make(map[string]bool)
	visited := make(map[string]bool) // non-cut intermediate states seen
	work := []string{s}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, n2 := range t.Succs[n] {
			if t.Cut[n2] {
				if !inRet[n2] {
					inRet[n2] = true
					ret = append(ret, n2)
				}
				continue
			}
			if visited[n2] {
				continue // diamond re-entry; cycles are detected below
			}
			visited[n2] = true
			work = append(work, n2)
		}
	}
	// A cycle within the visited non-cut states means some execution from
	// s avoids the cut forever: C is not a cut for s (Definition 7.1).
	if cyc := findCycle(t, visited); cyc != "" {
		return nil, fmt.Errorf("core: cycle through non-cut state %q (C is not a cut)", cyc)
	}
	return ret, nil
}

// findCycle returns a state on a cycle within the induced subgraph over
// `within` (non-cut states), or "" if that subgraph is acyclic.
func findCycle(t *ConcreteTS, within map[string]bool) string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[string]int, len(within))
	var visit func(string) string
	visit = func(n string) string {
		color[n] = grey
		for _, n2 := range t.Succs[n] {
			if !within[n2] {
				continue
			}
			switch color[n2] {
			case grey:
				return n2
			case white:
				if c := visit(n2); c != "" {
					return c
				}
			}
		}
		color[n] = black
		return ""
	}
	for n := range within {
		if color[n] == white {
			if c := visit(n); c != "" {
				return c
			}
		}
	}
	return ""
}

// IsCutFor verifies Definition 7.1 globally: every complete trace from
// every cut state passes through the cut again (or terminates in it).
func (t *ConcreteTS) IsCutFor() error {
	for s := range t.Succs {
		if !t.Cut[s] && s != t.Init {
			continue
		}
		if _, err := t.CutSuccessors(s); err != nil {
			return err
		}
		// Terminating executions must terminate in C: a final state (no
		// successors) reachable through non-cut states would have been
		// returned by CutSuccessors only if it is in C; a non-cut final
		// state is a violation. Detect it directly.
		if err := t.checkNoncutFinals(s); err != nil {
			return err
		}
	}
	return nil
}

func (t *ConcreteTS) checkNoncutFinals(s string) error {
	seen := map[string]bool{s: true}
	work := []string{s}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, n2 := range t.Succs[n] {
			if t.Cut[n2] || seen[n2] {
				continue
			}
			if len(t.Succs[n2]) == 0 {
				return fmt.Errorf("core: terminating state %q outside the cut", n2)
			}
			seen[n2] = true
			work = append(work, n2)
		}
	}
	return nil
}

// StatePair relates a state of T1 with a state of T2.
type StatePair struct{ L, R string }

// CheckCutBisim is the concrete Algorithm 1 exactly as given in the paper:
// it checks whether the relation P is a cut-bisimulation between t1 and
// t2. Acceptability of the pairs in P (A-membership, Theorem 2.3) is the
// caller's responsibility, as in the paper.
func CheckCutBisim(t1, t2 *ConcreteTS, P []StatePair) (bool, error) {
	return checkCutRelation(t1, t2, P, true)
}

// CheckCutSim checks whether P is a cut-simulation of t1 by t2
// (refinement: only the left successors must be matched; the footnote to
// Algorithm 1).
func CheckCutSim(t1, t2 *ConcreteTS, P []StatePair) (bool, error) {
	return checkCutRelation(t1, t2, P, false)
}

func checkCutRelation(t1, t2 *ConcreteTS, P []StatePair, bisim bool) (bool, error) {
	if err := t1.Validate(); err != nil {
		return false, err
	}
	if err := t2.Validate(); err != nil {
		return false, err
	}
	inP := make(map[StatePair]bool, len(P))
	for _, p := range P {
		if !t1.Cut[p.L] || !t2.Cut[p.R] {
			return false, fmt.Errorf("core: pair (%q,%q) relates non-cut states", p.L, p.R)
		}
		inP[p] = true
	}
	// main() of Algorithm 1.
	for _, p := range P {
		n1, err := t1.CutSuccessors(p.L)
		if err != nil {
			return false, err
		}
		n2, err := t2.CutSuccessors(p.R)
		if err != nil {
			return false, err
		}
		black1 := make(map[string]bool)
		black2 := make(map[string]bool)
		for _, a := range n1 {
			for _, b := range n2 {
				if inP[StatePair{a, b}] {
					black1[a] = true
					black2[b] = true
				}
			}
		}
		for _, a := range n1 {
			if !black1[a] {
				return false, nil
			}
		}
		if bisim {
			for _, b := range n2 {
				if !black2[b] {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// CutAbstract builds the cut-abstract transition system of Definition 7.5:
// states are the cut states of t, transitions are cut-successor steps.
func (t *ConcreteTS) CutAbstract() (*ConcreteTS, error) {
	out := &ConcreteTS{Init: t.Init, Succs: make(map[string][]string), Cut: make(map[string]bool)}
	for s := range t.Succs {
		if !t.Cut[s] {
			continue
		}
		succ, err := t.CutSuccessors(s)
		if err != nil {
			return nil, err
		}
		out.Succs[s] = succ
		out.Cut[s] = true
	}
	return out, nil
}

// StrongBisim checks whether P is a strong bisimulation between two
// transition systems where every state is a cut state (used to validate
// Lemma 7.6: cut-bisimulation on T = bisimulation on the cut-abstraction).
func StrongBisim(t1, t2 *ConcreteTS, P []StatePair) (bool, error) {
	inP := make(map[StatePair]bool, len(P))
	for _, p := range P {
		inP[p] = true
	}
	for _, p := range P {
		for _, a := range t1.Succs[p.L] {
			matched := false
			for _, b := range t2.Succs[p.R] {
				if inP[StatePair{a, b}] {
					matched = true
					break
				}
			}
			if !matched {
				return false, nil
			}
		}
		for _, b := range t2.Succs[p.R] {
			matched := false
			for _, a := range t1.Succs[p.L] {
				if inP[StatePair{a, b}] {
					matched = true
					break
				}
			}
			if !matched {
				return false, nil
			}
		}
	}
	return true, nil
}
