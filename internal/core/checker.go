package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/proof"
	"repro/internal/smt"
	"repro/internal/telemetry"
)

// CheckStats counts the work done by a validation run.
type CheckStats struct {
	PointsChecked   int
	StatesExplored  int
	Steps           int
	PairQueries     int
	FastPCPairs     int // pairs decided by syntactic path-condition equality
	ConstraintProof int
}

// Options tune the checker. The zero value enables the paper's
// optimizations (positive-form queries and the syntactic path-condition
// fast path); set the Disable fields for ablation studies.
type Options struct {
	// Mode selects cut-bisimulation (Equivalence) or cut-simulation
	// (Refinement: only left states need matching).
	Mode Mode
	// MaxSteps bounds the symbolic steps taken while searching for cut
	// successors of one sync point (0 = default 1<<20). Exceeding it means
	// the sync points do not form a cut — the run fails. Wall-clock
	// pressure is handled by the solver deadline, which the search also
	// honors.
	MaxSteps int
	// DisablePositiveForm reverts the path-condition implication queries
	// to the naive φ1 ∧ ¬φ2 form (paper §3 "Optimizing SMT Queries").
	DisablePositiveForm bool
	// DisablePCFastPath turns off the syntactic path-condition equality
	// shortcut that skips SMT pairing queries.
	DisablePCFastPath bool
	// DisableIncrementalSMT makes every SMT query start from a cold solver
	// (the behavior the paper's §5.1 blames for much of the timeout tail
	// in K's Z3 integration; incremental solving is the default here).
	DisableIncrementalSMT bool
	// VCCache, when non-nil, is the shared verification-condition result
	// cache the solver consults before solving (see smt.Cache). The
	// harness injects one cache per corpus run so structurally identical
	// obligations are proved once across all functions and workers.
	VCCache *smt.Cache
	// DisableClauseDBReduction turns off the LBD-based learned-clause
	// database reduction in the SAT backend, reverting to the legacy
	// activity-threshold policy (ablation).
	DisableClauseDBReduction bool
	// DisableInprocess turns off SatELite-style inprocessing in the SAT
	// backend (subsumption, vivification, bounded variable elimination;
	// ablation — on by default, see smt.Solver.Inprocess).
	DisableInprocess bool
	// Portfolio, when non-nil, is the shared worker-slot pool that lets
	// the solver race stuck queries across idle workers (see
	// smt.Portfolio). The harness injects one pool per corpus run.
	Portfolio *smt.Portfolio
	// DisableCube turns off the cube-and-conquer escalation tier above
	// portfolio racing (ablation — on by default whenever a Portfolio is
	// attached; see smt.Solver.DisableCube).
	DisableCube bool
	// Proof, when non-nil, records a bisimulation witness for the run and
	// is wired into the solver so every query emits a certificate: the
	// sync points of P, each non-exiting point's cut successors with
	// their feasibility queries, and every pairing decision with the
	// query certificates discharging its obligations (see internal/proof).
	Proof *proof.Recorder
	// Trace, when non-nil, receives a span per sync point checked, per
	// cut-successor search, per pairing attempt, and (via the solver) per
	// SMT query. TraceParent is the span the point spans nest under.
	Trace       *telemetry.Tracer
	TraceParent telemetry.SpanID
	// Metrics, when non-nil, receives per-phase latency observations and
	// query-outcome counters. It is also handed to the solver.
	Metrics *telemetry.Metrics
	// Scratch, when non-nil, supplies the per-worker reusable slabs the
	// solver's bit-blaster allocates literal vectors from. The harness
	// resets it between functions (see smt.Scratch).
	Scratch *smt.Scratch
}

// Checker runs the symbolic variant of Algorithm 1 over two language
// semantics. Create one per validation instance with NewChecker; the
// Context and Solver must be shared with the Semantics implementations.
type Checker struct {
	ctx    *smt.Context
	solver *smt.Solver
	left   Semantics
	right  Semantics
	opts   Options
	rec    *proof.Recorder

	// workStack is the cut-successor search's DFS stack, reused across
	// sync points so steady-state exploration allocates nothing for it.
	workStack []State

	Stats CheckStats
}

// NewChecker returns a Checker over the given semantics pair.
func NewChecker(solver *smt.Solver, left, right Semantics, opts Options) *Checker {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 1 << 20
	}
	solver.Incremental = !opts.DisableIncrementalSMT
	solver.Cache = opts.VCCache
	solver.DisableClauseDB = opts.DisableClauseDBReduction
	solver.Inprocess = !opts.DisableInprocess
	solver.Portfolio = opts.Portfolio
	solver.DisableCube = opts.DisableCube
	solver.Recorder = opts.Proof
	solver.Tracer = opts.Trace
	solver.TraceParent = opts.TraceParent
	solver.Metrics = opts.Metrics
	solver.Scratch = opts.Scratch
	return &Checker{
		ctx:    solver.Context(),
		solver: solver,
		left:   left,
		right:  right,
		opts:   opts,
		rec:    opts.Proof,
	}
}

// Report is the outcome of a Run.
type Report struct {
	Verdict  Verdict
	Mode     Mode
	Failures []Failure
	Stats    CheckStats
}

// Run checks that the synchronization relation P is a cut-bisimulation
// (or cut-simulation in Refinement mode) witnessing the equivalence of the
// two programs. It is the symbolic Algorithm 1 of the paper: for each
// non-exiting point, both sides are executed symbolically to their cut
// successors, and every successor must be covered by a matching pair in P
// (or excused by the undefined-behavior acceptability policy of §4.6).
//
// A returned error means the check could not be completed (solver budget,
// semantics error); a Report with Verdict NotValidated means P failed.
func (ck *Checker) Run(points []*SyncPoint) (*Report, error) {
	rel := NewRelation(points)
	if ck.rec != nil {
		ck.rec.SetMode(ck.opts.Mode.String())
		infos := make([]proof.PointInfo, len(rel.Points))
		for i, p := range rel.Points {
			infos[i] = proof.PointInfo{
				ID:           p.ID,
				Left:         string(p.LocLeft),
				Right:        string(p.LocRight),
				Exiting:      p.Exiting,
				MemEqual:     p.MemEqual,
				NConstraints: len(p.Constraints),
			}
		}
		ck.rec.SetPoints(infos)
	}
	report := &Report{Verdict: Validated, Mode: ck.opts.Mode}
	for _, p := range rel.Points {
		if p.Exiting {
			continue
		}
		start := time.Now()
		sp := ck.opts.Trace.Start(ck.opts.TraceParent, "core.point",
			telemetry.String("point", p.ID))
		saved := ck.solver.TraceParent
		if sp != nil {
			ck.solver.TraceParent = sp.ID()
		}
		fails, err := ck.checkPoint(rel, p)
		ck.solver.TraceParent = saved
		if sp != nil {
			sp.SetAttr("failures", len(fails))
			sp.End()
		}
		ck.opts.Metrics.Observe("core.point", time.Since(start))
		if err != nil {
			return nil, fmt.Errorf("core: checking point %s: %w", p.ID, err)
		}
		ck.Stats.PointsChecked++
		if len(fails) > 0 {
			report.Verdict = NotValidated
			report.Failures = append(report.Failures, fails...)
		}
	}
	report.Stats = ck.Stats
	return report, nil
}

// watermark helpers: bracket a group of solver calls to learn which
// certificate IDs they produced (every decided query emits exactly one).
func (ck *Checker) qmark() int {
	if ck.rec == nil {
		return 0
	}
	return ck.rec.NumQueries()
}

func (ck *Checker) qsince(w int) []string {
	if ck.rec == nil {
		return nil
	}
	return ck.rec.QueriesSince(w)
}

// qone returns the single certificate ID recorded since w ("" when
// recording is off or the query was decided without a certificate).
func (ck *Checker) qone(w int) string {
	ids := ck.qsince(w)
	if len(ids) == 1 {
		return ids[0]
	}
	return ""
}

// succsOf converts cut successors into their witness records.
func (ck *Checker) succsOf(states []State, feasQ []string) []proof.SuccState {
	out := make([]proof.SuccState, len(states))
	for i, s := range states {
		out[i] = proof.SuccState{
			Loc:   string(s.Loc()),
			Error: s.ErrorKind(),
			PC:    ck.rec.EncodeTerm(s.PathCond()),
			FeasQ: feasQ[i],
		}
	}
	return out
}

// checkPoint is function check(p1, p2) of Algorithm 1.
func (ck *Checker) checkPoint(rel *Relation, p *SyncPoint) ([]Failure, error) {
	sL, sR, err := ck.instantiate(p)
	if err != nil {
		return nil, err
	}
	n1, feas1, pruned1, err := ck.tracedCutSuccessors("left", ck.left, sL, rel.LeftLocs())
	if err != nil {
		return nil, fmt.Errorf("left side: %w", err)
	}
	n2, feas2, pruned2, err := ck.tracedCutSuccessors("right", ck.right, sR, rel.RightLocs())
	if err != nil {
		return nil, fmt.Errorf("right side: %w", err)
	}

	black1 := make([]bool, len(n1))
	black2 := make([]bool, len(n2))

	// Disjunction of left-side error path conditions: behaviors excused by
	// undefined behavior in the input program (paper §4.6 — KEQ silently
	// degrades to refinement on those paths).
	excuse := ck.ctx.False()
	for _, s := range n1 {
		if IsError(s) {
			excuse = ck.ctx.OrB(excuse, s.PathCond())
		}
	}

	var pairs []proof.PairWitness
	for i := range n1 {
		for j := range n2 {
			ok, pw, err := ck.tryPair(rel, n1, n2, i, j, excuse)
			if err != nil {
				return nil, err
			}
			if ok {
				black1[i] = true
				black2[j] = true
				if ck.rec != nil {
					pairs = append(pairs, pw)
				}
			}
		}
	}
	if ck.rec != nil {
		ck.rec.AddChecked(proof.CheckedPoint{
			Point:       p.ID,
			Left:        ck.succsOf(n1, feas1),
			Right:       ck.succsOf(n2, feas2),
			PrunedLeft:  pruned1,
			PrunedRight: pruned2,
			Pairs:       pairs,
		})
	}

	var fails []Failure
	for i, s := range n1 {
		if !black1[i] {
			fails = append(fails, Failure{
				Point: p.ID, Side: "left", Loc: s.Loc(),
				Reason: "no matching right-side cut successor in P",
			})
		}
	}
	if ck.opts.Mode == Equivalence {
		for j, s := range n2 {
			if !black2[j] {
				fails = append(fails, Failure{
					Point: p.ID, Side: "right", Loc: s.Loc(),
					Reason: "no matching left-side cut successor in P",
				})
			}
		}
	}
	return fails, nil
}

// instantiate builds the pair of start states for p, sharing one fresh
// symbolic variable per constraint and one memory base variable.
func (ck *Checker) instantiate(p *SyncPoint) (State, State, error) {
	presetL := make(map[string]*smt.Term)
	presetR := make(map[string]*smt.Term)
	for i, c := range p.Constraints {
		lConst, rConst := IsConstExpr(c.Left), IsConstExpr(c.Right)
		switch {
		case lConst && rConst:
			return nil, nil, fmt.Errorf("constraint %d of %s relates two constants", i, p.ID)
		case lConst:
			w, err := ck.right.ObservableWidth(p.LocRight, c.Right)
			if err != nil {
				return nil, nil, err
			}
			v, err := ParseConstExpr(c.Left)
			if err != nil {
				return nil, nil, err
			}
			if err := addPreset(presetR, c.Right, ck.ctx.BV(v, w), p.ID); err != nil {
				return nil, nil, err
			}
		case rConst:
			w, err := ck.left.ObservableWidth(p.LocLeft, c.Left)
			if err != nil {
				return nil, nil, err
			}
			v, err := ParseConstExpr(c.Right)
			if err != nil {
				return nil, nil, err
			}
			if err := addPreset(presetL, c.Left, ck.ctx.BV(v, w), p.ID); err != nil {
				return nil, nil, err
			}
		default:
			wL, err := ck.left.ObservableWidth(p.LocLeft, c.Left)
			if err != nil {
				return nil, nil, err
			}
			wR, err := ck.right.ObservableWidth(p.LocRight, c.Right)
			if err != nil {
				return nil, nil, err
			}
			// Differing widths encode the narrow-value-in-wider-register
			// convention (e.g. LLVM i1 values living in 8-bit x86
			// registers): the shared variable has the narrow width and the
			// wide side is preset to its zero-extension.
			narrow := wL
			if wR < narrow {
				narrow = wR
			}
			shared := ck.ctx.VarBV(fmt.Sprintf("sp!%s!%d", p.ID, i), narrow)
			// The same observable may appear in several constraints (e.g.
			// two right registers equal to one left register): reuse the
			// first shared variable for both sides.
			if prev, ok := presetL[c.Left]; ok && prev.Width <= narrow {
				shared = prev
			} else if prev, ok := presetR[c.Right]; ok && prev.Width <= narrow {
				shared = prev
			}
			if _, ok := presetL[c.Left]; !ok {
				presetL[c.Left] = ck.widen(shared, wL)
			}
			if _, ok := presetR[c.Right]; !ok {
				presetR[c.Right] = ck.widen(shared, wR)
			}
		}
	}
	var memT *smt.Term
	if p.MemEqual {
		memT = ck.ctx.VarMem("M!" + p.ID)
	}
	sL, err := ck.left.Instantiate(p.LocLeft, presetL, memT)
	if err != nil {
		return nil, nil, fmt.Errorf("instantiating left at %s: %w", p.LocLeft, err)
	}
	sR, err := ck.right.Instantiate(p.LocRight, presetR, memT)
	if err != nil {
		return nil, nil, fmt.Errorf("instantiating right at %s: %w", p.LocRight, err)
	}
	return sL, sR, nil
}

// widen zero-extends t to width w (identity when widths match).
func (ck *Checker) widen(t *smt.Term, w uint8) *smt.Term {
	if t.Width == w {
		return t
	}
	return ck.ctx.ZExt(t, w)
}

func addPreset(m map[string]*smt.Term, name string, t *smt.Term, pid string) error {
	if old, ok := m[name]; ok && old != t {
		return fmt.Errorf("conflicting constant presets for %s in %s", name, pid)
	}
	m[name] = t
	return nil
}

// tracedCutSuccessors brackets one cut-successor search with a span (the
// solver's per-query spans nest under it) and a latency observation.
func (ck *Checker) tracedCutSuccessors(side string, sem Semantics, s State, cuts map[Location]bool) ([]State, []string, []proof.Pruned, error) {
	start := time.Now()
	sp := ck.opts.Trace.Start(ck.solver.TraceParent, "core.cutsuccessors",
		telemetry.String("side", side))
	saved := ck.solver.TraceParent
	if sp != nil {
		ck.solver.TraceParent = sp.ID()
	}
	states, feasQ, pruned, err := ck.cutSuccessors(sem, s, cuts)
	ck.solver.TraceParent = saved
	if sp != nil {
		sp.SetAttr("succs", len(states))
		sp.SetAttr("pruned", len(pruned))
		sp.End()
	}
	ck.opts.Metrics.Observe("core.cutsuccessors", time.Since(start))
	return states, feasQ, pruned, err
}

// cutSuccessors is function next_i of Algorithm 1: symbolic execution from
// s until every path reaches a cut state (a location in cuts, a final
// state, or an error state). Successors with unsatisfiable path conditions
// are pruned (they denote no concrete states). The second return value
// holds, per returned state, the ID of the certificate of its feasibility
// query; the third lists the pruned cut states with their Unsat query.
func (ck *Checker) cutSuccessors(sem Semantics, s State, cuts map[Location]bool) ([]State, []string, []proof.Pruned, error) {
	work := append(ck.workStack[:0], s)
	defer func() { ck.workStack = work[:0] }()
	first := true
	var ret []State
	var feasQ []string
	var pruned []proof.Pruned
	steps := 0
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		// The start state itself is a cut state; we want its successors,
		// so the first expansion always steps.
		if !first {
			if cur.ErrorKind() != "" || cur.IsFinal() || cuts[cur.Loc()] {
				w := ck.qmark()
				sat, err := ck.pathFeasible(cur)
				if err != nil {
					return nil, nil, nil, err
				}
				if sat {
					ret = append(ret, cur)
					feasQ = append(feasQ, ck.qone(w))
					ck.Stats.StatesExplored++
				} else if ck.rec != nil {
					pruned = append(pruned, proof.Pruned{Loc: string(cur.Loc()), Q: ck.qone(w)})
				}
				continue
			}
		}
		first = false
		steps++
		ck.Stats.Steps++
		if steps > ck.opts.MaxSteps {
			return nil, nil, nil, fmt.Errorf("no cut reached within %d steps from %s (P is not a cut)", ck.opts.MaxSteps, s.Loc())
		}
		if steps%256 == 0 && !ck.solver.Deadline.IsZero() && time.Now().After(ck.solver.Deadline) {
			return nil, nil, nil, fmt.Errorf("searching cut successors of %s: %w", s.Loc(), smt.ErrDeadline)
		}
		succs, err := sem.Step(cur)
		if err != nil {
			return nil, nil, nil, err
		}
		if len(succs) == 0 && !(cur.IsFinal() || cur.ErrorKind() != "") {
			return nil, nil, nil, fmt.Errorf("stuck state at %s", cur.Loc())
		}
		// Quick syntactic pruning: drop branches whose path condition
		// already simplified to false.
		for _, n := range succs {
			if n.PathCond().IsFalse() {
				continue
			}
			work = append(work, n)
		}
	}
	return ret, feasQ, pruned, nil
}

// pathFeasible checks satisfiability of a cut successor's path condition.
func (ck *Checker) pathFeasible(s State) (bool, error) {
	pc := s.PathCond()
	if pc.IsTrue() {
		return true, nil
	}
	if pc.IsFalse() {
		return false, nil
	}
	res, _, err := ck.solver.CheckSat(pc)
	if err != nil {
		return false, err
	}
	return res == smt.ResultSat, nil
}

// tryPair attempts to mark the pair (n1[i], n2[j]) black: either by the
// undefined-behavior acceptability policy, or by finding a sync point in P
// whose constraints are provable once the two path conditions are shown to
// pair up.
func (ck *Checker) tryPair(rel *Relation, n1, n2 []State, i, j int, excuse *smt.Term) (matched bool, _ proof.PairWitness, _ error) {
	if sp := ck.opts.Trace.Start(ck.solver.TraceParent, "core.pair",
		telemetry.Int("l", int64(i)), telemetry.Int("r", int64(j))); sp != nil {
		saved := ck.solver.TraceParent
		ck.solver.TraceParent = sp.ID()
		defer func() {
			ck.solver.TraceParent = saved
			sp.SetAttr("matched", matched)
			sp.End()
		}()
	}
	a, b := n1[i], n2[j]
	ctx := ck.ctx
	pw := proof.PairWitness{L: i, R: j}

	if IsError(a) {
		// A left (input-program) error state is related to any right state
		// whose path overlaps it: undefined behavior in the input excuses
		// all output behavior on those inputs (paper §4.6).
		w := ck.qmark()
		res, _, err := ck.solver.CheckSat(ctx.AndB(a.PathCond(), b.PathCond()))
		if err != nil {
			return false, pw, err
		}
		if res != smt.ResultSat {
			return false, pw, nil
		}
		pw.How = proof.HowExcuse
		pw.PairQs = ck.qsince(w)
		return true, pw, nil
	}
	if IsError(b) {
		// A right error state is acceptable only against a left error of
		// the same kind — and that case is handled above.
		return false, pw, nil
	}

	cands := rel.Candidates(a.Loc(), b.Loc())
	if len(cands) == 0 {
		return false, pw, nil
	}

	ok, fast, pairQs, err := ck.pathsPair(n1, n2, i, j, excuse)
	if err != nil {
		return false, pw, err
	}
	if !ok {
		return false, pw, nil
	}
	pw.How = proof.HowQueries
	if fast {
		pw.How = proof.HowFastPath
	}
	pw.PairQs = pairQs

	premise := ctx.AndB(a.PathCond(), b.PathCond())
	for _, q := range cands {
		oblig, err := ck.obligations(q, a, b)
		if err != nil {
			return false, pw, err
		}
		ck.Stats.ConstraintProof++
		w := ck.qmark()
		proved, _, err := ck.solver.ProveImplies(premise, oblig)
		if err != nil {
			return false, pw, err
		}
		if proved {
			pw.Sync = q.ID
			pw.ObligQ = ck.qone(w)
			return true, pw, nil
		}
	}
	return false, pw, nil
}

// pathsPair decides whether the path conditions of n1[i] and n2[j] denote
// the same inputs (modulo left-side UB excuse): φ1 ⟹ φ2 and φ2 ⟹ φ1∨excuse.
// With the positive-form optimization (paper §3) the negations are replaced
// by the disjunction of the sibling path conditions, exploiting that both
// transition systems are deterministic so sibling conditions partition.
func (ck *Checker) pathsPair(n1, n2 []State, i, j int, excuse *smt.Term) (ok, fast bool, qids []string, err error) {
	ctx := ck.ctx
	pc1, pc2 := n1[i].PathCond(), n2[j].PathCond()

	if !ck.opts.DisablePCFastPath && pc1 == pc2 && excuse.IsFalse() {
		ck.Stats.FastPCPairs++
		return true, true, nil, nil
	}

	var q1, q2 *smt.Term
	if ck.opts.DisablePositiveForm {
		q1 = ctx.AndB(pc1, ctx.Not(pc2))
		q2 = ctx.AndB(pc2, ctx.Not(ctx.OrB(pc1, excuse)))
	} else {
		psi2 := ctx.False()
		for k, s := range n2 {
			if k != j {
				psi2 = ctx.OrB(psi2, s.PathCond())
			}
		}
		psi1 := ctx.False()
		for k, s := range n1 {
			if k != i && !IsError(s) {
				psi1 = ctx.OrB(psi1, s.PathCond())
			}
		}
		q1 = ctx.AndB(pc1, psi2)
		q2 = ctx.AndB(pc2, psi1)
	}

	w := ck.qmark()
	ck.Stats.PairQueries++
	res, _, err := ck.solver.CheckSat(q1)
	if err != nil {
		return false, false, nil, err
	}
	if res != smt.ResultUnsat {
		return false, false, nil, nil
	}
	ck.Stats.PairQueries++
	res, _, err = ck.solver.CheckSat(q2)
	if err != nil {
		return false, false, nil, err
	}
	if res != smt.ResultUnsat {
		return false, false, nil, nil
	}
	return true, false, ck.qsince(w), nil
}

// obligations builds the conjunction of q's equality constraints evaluated
// in states a (left) and b (right), plus memory equality when required.
func (ck *Checker) obligations(q *SyncPoint, a, b State) (*smt.Term, error) {
	ctx := ck.ctx
	oblig := ctx.True()
	for _, c := range q.Constraints {
		var lt, rt *smt.Term
		var err error
		if IsConstExpr(c.Left) {
			rt, err = b.Observable(c.Right)
			if err != nil {
				return nil, err
			}
			v, perr := ParseConstExpr(c.Left)
			if perr != nil {
				return nil, perr
			}
			lt = ctx.BV(v, rt.Width)
		} else if IsConstExpr(c.Right) {
			lt, err = a.Observable(c.Left)
			if err != nil {
				return nil, err
			}
			v, perr := ParseConstExpr(c.Right)
			if perr != nil {
				return nil, perr
			}
			rt = ctx.BV(v, lt.Width)
		} else {
			lt, err = a.Observable(c.Left)
			if err != nil {
				return nil, err
			}
			rt, err = b.Observable(c.Right)
			if err != nil {
				return nil, err
			}
		}
		// Width mismatches follow the zero-extension convention (see
		// instantiate): the narrow value zero-extended must equal the wide
		// register's contents.
		if lt.Width < rt.Width {
			lt = ctx.ZExt(lt, rt.Width)
		} else if rt.Width < lt.Width {
			rt = ctx.ZExt(rt, lt.Width)
		}
		oblig = ctx.AndB(oblig, ctx.Eq(lt, rt))
	}
	if q.MemEqual {
		mA, mB := a.MemTerm(), b.MemTerm()
		if mA == nil || mB == nil {
			return nil, errors.New("sync point requires memory equality but a state has no memory")
		}
		oblig = ctx.AndB(oblig, ctx.Eq(mA, mB))
	}
	return oblig, nil
}
