package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// fig4Left and fig4Right reproduce the partial-redundancy-elimination
// example of Figure 4: the left program computes x=a+b then branches
// nondeterministically; the right program branches first. P1 and Q1 are
// the "irrelevant" intermediate states that strong bisimulation chokes on.
func fig4Left() *ConcreteTS {
	return &ConcreteTS{
		Init: "P0",
		Succs: map[string][]string{
			"P0": {"P1"},
			"P1": {"P2", "P3"},
			"P2": {},
			"P3": {},
		},
		Cut: map[string]bool{"P0": true, "P2": true, "P3": true},
	}
}

func fig4Right() *ConcreteTS {
	return &ConcreteTS{
		Init: "Q0",
		Succs: map[string][]string{
			"Q0": {"Q1", "Q3"},
			"Q1": {"Q2"},
			"Q2": {},
			"Q3": {},
		},
		Cut: map[string]bool{"Q0": true, "Q2": true, "Q3": true},
	}
}

var fig4P = []StatePair{{"P0", "Q0"}, {"P2", "Q2"}, {"P3", "Q3"}}

func TestFigure4CutBisimulation(t *testing.T) {
	ok, err := CheckCutBisim(fig4Left(), fig4Right(), fig4P)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("Figure 4 relation rejected")
	}
}

func TestFigure4StrongBisimulationFails(t *testing.T) {
	// The same relation is NOT a strong bisimulation on the raw systems:
	// P0's only successor P1 has no related partner.
	ok, err := StrongBisim(fig4Left(), fig4Right(), fig4P)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("strong bisimulation accepted the Figure 4 relation")
	}
}

func TestLemma76CutAbstractEquivalence(t *testing.T) {
	// Lemma 7.6: a cut-bisimulation on T is a strong bisimulation on the
	// cut-abstract system of T.
	a1, err := fig4Left().CutAbstract()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := fig4Right().CutAbstract()
	if err != nil {
		t.Fatal(err)
	}
	ok, err := StrongBisim(a1, a2, fig4P)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("cut-bisimulation is not a bisimulation on the cut abstraction")
	}
}

func TestCutBisimRejectsWrongPairing(t *testing.T) {
	// Swap the exits: P2 related to Q3 and P3 to Q2. Still covers the
	// locations, but then CutSuccessors(P0) = {P2,P3} must pair against
	// {Q2,Q3}: with the swap, all pairs exist — this is actually fine for
	// a nondeterministic system. Remove one exit pair instead.
	bad := []StatePair{{"P0", "Q0"}, {"P2", "Q2"}}
	ok, err := CheckCutBisim(fig4Left(), fig4Right(), bad)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("relation missing the P3/Q3 pair accepted")
	}
}

func TestCutSimulationOneSided(t *testing.T) {
	// Left has fewer behaviors: only the P2 exit. A cut-simulation (left
	// refined by right) holds, a cut-bisimulation does not.
	left := &ConcreteTS{
		Init: "P0",
		Succs: map[string][]string{
			"P0": {"P1"}, "P1": {"P2"}, "P2": {},
		},
		Cut: map[string]bool{"P0": true, "P2": true},
	}
	P := []StatePair{{"P0", "Q0"}, {"P2", "Q2"}}
	ok, err := CheckCutSim(left, fig4Right(), P)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("refinement rejected")
	}
	ok, err = CheckCutBisim(left, fig4Right(), P)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("bisimulation accepted despite extra right behavior Q3")
	}
}

func TestCutSuccessorsDiamond(t *testing.T) {
	// Non-cut diamond must not be mistaken for a cycle.
	ts := &ConcreteTS{
		Init: "s",
		Succs: map[string][]string{
			"s": {"a", "b"}, "a": {"m"}, "b": {"m"}, "m": {"t"}, "t": {},
		},
		Cut: map[string]bool{"s": true, "t": true},
	}
	succ, err := ts.CutSuccessors("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(succ) != 1 || succ[0] != "t" {
		t.Fatalf("succ = %v, want [t]", succ)
	}
}

func TestCutSuccessorsDetectsNonCut(t *testing.T) {
	// A loop that never crosses the cut: C is not a cut (Definition 7.1).
	ts := &ConcreteTS{
		Init: "s",
		Succs: map[string][]string{
			"s": {"a"}, "a": {"b"}, "b": {"a"},
		},
		Cut: map[string]bool{"s": true},
	}
	if _, err := ts.CutSuccessors("s"); err == nil {
		t.Fatalf("non-cut loop not detected")
	}
	if err := ts.IsCutFor(); err == nil {
		t.Fatalf("IsCutFor accepted a non-cut")
	}
}

func TestIsCutForNoncutFinal(t *testing.T) {
	ts := &ConcreteTS{
		Init: "s",
		Succs: map[string][]string{
			"s": {"a"}, "a": {},
		},
		Cut: map[string]bool{"s": true},
	}
	if err := ts.IsCutFor(); err == nil {
		t.Fatalf("terminating state outside cut not detected")
	}
}

func TestValidateRejectsBadSystems(t *testing.T) {
	bad := &ConcreteTS{
		Init:  "s",
		Succs: map[string][]string{"s": {"ghost"}},
		Cut:   map[string]bool{"s": true},
	}
	if err := bad.Validate(); err == nil {
		t.Fatalf("dangling transition accepted")
	}
	bad2 := &ConcreteTS{
		Init:  "s",
		Succs: map[string][]string{"s": {}},
		Cut:   map[string]bool{},
	}
	if err := bad2.Validate(); err == nil {
		t.Fatalf("non-cut initial state accepted")
	}
}

func TestCheckRejectsNonCutPairs(t *testing.T) {
	P := []StatePair{{"P0", "Q0"}, {"P1", "Q1"}} // P1/Q1 are not cut states
	if _, err := CheckCutBisim(fig4Left(), fig4Right(), P); err == nil {
		t.Fatalf("pairs over non-cut states accepted")
	}
}

func TestLoopingCutSystem(t *testing.T) {
	// An infinite system (reactive loop) where the loop head is in the
	// cut: cut successors of the head include the head itself.
	ts := &ConcreteTS{
		Init: "init",
		Succs: map[string][]string{
			"init": {"head"},
			"head": {"body", "exit"},
			"body": {"head"},
			"exit": {},
		},
		Cut: map[string]bool{"init": true, "head": true, "exit": true},
	}
	if err := ts.IsCutFor(); err != nil {
		t.Fatal(err)
	}
	succ, err := ts.CutSuccessors("head")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"head": true, "exit": true}
	if len(succ) != 2 || !want[succ[0]] || !want[succ[1]] {
		t.Fatalf("succ(head) = %v", succ)
	}
	// Two identical copies are cut-bisimilar via the identity relation.
	P := []StatePair{{"init", "init"}, {"head", "head"}, {"exit", "exit"}}
	ok, err := CheckCutBisim(ts, ts, P)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("identity relation rejected on self")
	}
}

// TestLemma76Property is a property test of Lemma 7.6 on random cut
// transition systems: a relation is a cut-bisimulation on (T1, T2) exactly
// when it is a strong bisimulation on their cut abstractions.
func TestLemma76Property(t *testing.T) {
	gen := func(rng *rand.Rand, prefix string) *ConcreteTS {
		n := 3 + rng.Intn(5)
		ts := &ConcreteTS{
			Init:  prefix + "0",
			Succs: map[string][]string{},
			Cut:   map[string]bool{prefix + "0": true},
		}
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("%s%d", prefix, i)
			ts.Succs[names[i]] = nil
		}
		for i, s := range names {
			// Edges go mostly forward so that cuts are easy to maintain;
			// back edges only to cut states (keeps C a valid cut).
			for _, tgt := range names {
				if rng.Intn(3) != 0 {
					continue
				}
				ts.Succs[s] = append(ts.Succs[s], tgt)
			}
			// Every third state is a cut state.
			if i%2 == 0 {
				ts.Cut[s] = true
			}
		}
		// Make C a cut: any non-cut state on a cycle breaks Definition 7.1;
		// simply make every state with a back edge a cut state.
		for s, outs := range ts.Succs {
			for _, tgt := range outs {
				if tgt <= s {
					ts.Cut[s] = true
					ts.Cut[tgt] = true
				}
			}
		}
		return ts
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		t1 := gen(rng, "a")
		t2 := gen(rng, "b")
		if t1.IsCutFor() != nil || t2.IsCutFor() != nil {
			return true // generator produced a non-cut; skip
		}
		// Random candidate relation over cut states.
		var P []StatePair
		for s1 := range t1.Cut {
			for s2 := range t2.Cut {
				if rng.Intn(3) == 0 {
					P = append(P, StatePair{s1, s2})
				}
			}
		}
		P = append(P, StatePair{t1.Init, t2.Init})
		got, err := CheckCutBisim(t1, t2, P)
		if err != nil {
			return true // cut violation discovered dynamically; skip
		}
		a1, err := t1.CutAbstract()
		if err != nil {
			return true
		}
		a2, err := t2.CutAbstract()
		if err != nil {
			return true
		}
		want, err := StrongBisim(a1, a2, P)
		if err != nil {
			return true
		}
		if got != want {
			t.Logf("seed %d: cut-bisim=%v, abstract strong bisim=%v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
