package core

import (
	"strings"
	"testing"

	"repro/internal/smt"
)

// --- A tiny mock language for exercising the checker in isolation ---
//
// A toy program maps each location to a step function that produces the
// symbolic successors. Registers are 32-bit; reads of unbound registers
// materialize fresh variables (the same lazy-havoc convention the real
// semantics use).

type toyState struct {
	sem   *toySem
	loc   Location
	regs  map[string]*smt.Term
	pc    *smt.Term
	final bool
	err   string
	ret   *smt.Term
}

func (s *toyState) Loc() Location       { return s.loc }
func (s *toyState) PathCond() *smt.Term { return s.pc }
func (s *toyState) MemTerm() *smt.Term  { return nil }
func (s *toyState) IsFinal() bool       { return s.final }
func (s *toyState) ErrorKind() string   { return s.err }
func (s *toyState) Observable(name string) (*smt.Term, error) {
	if name == "ret" {
		if s.ret == nil {
			return nil, errString("no return value at " + string(s.loc))
		}
		return s.ret, nil
	}
	return s.get(name), nil
}

type errString string

func (e errString) Error() string { return string(e) }

func (s *toyState) get(name string) *smt.Term {
	if t, ok := s.regs[name]; ok {
		return t
	}
	s.sem.fresh++
	t := s.sem.ctx.VarBV(string(s.sem.side)+"!"+name+"!"+itoa(s.sem.fresh), 32)
	s.regs[name] = t
	return t
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func (s *toyState) clone() *toyState {
	regs := make(map[string]*smt.Term, len(s.regs))
	for k, v := range s.regs {
		regs[k] = v
	}
	return &toyState{sem: s.sem, loc: s.loc, regs: regs, pc: s.pc, ret: s.ret}
}

type toySem struct {
	ctx   *smt.Context
	side  string
	steps map[Location]func(*toyState) []State
	fresh int
}

func (m *toySem) Instantiate(loc Location, presets map[string]*smt.Term, memT *smt.Term) (State, error) {
	regs := make(map[string]*smt.Term, len(presets))
	for k, v := range presets {
		regs[k] = v
	}
	return &toyState{sem: m, loc: loc, regs: regs, pc: m.ctx.True()}, nil
}

func (m *toySem) Step(s State) ([]State, error) {
	ts := s.(*toyState)
	if ts.final || ts.err != "" {
		return nil, nil
	}
	fn, ok := m.steps[ts.loc]
	if !ok {
		return nil, errString("no step function at " + string(ts.loc))
	}
	return fn(ts), nil
}

func (m *toySem) ObservableWidth(loc Location, name string) (uint8, error) { return 32, nil }

func newPair(t *testing.T) (*smt.Context, *smt.Solver) {
	t.Helper()
	ctx := smt.NewContext()
	return ctx, smt.NewSolver(ctx)
}

// exitState builds a final state holding a return value.
func exitState(ts *toyState, ret *smt.Term) *toyState {
	n := ts.clone()
	n.loc = "exit"
	n.final = true
	n.ret = ret
	return n
}

func run(t *testing.T, solver *smt.Solver, left, right Semantics, points []*SyncPoint, opts Options) *Report {
	t.Helper()
	ck := NewChecker(solver, left, right, opts)
	rep, err := ck.Run(points)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func entryExitPoints(cons ...Constraint) []*SyncPoint {
	return []*SyncPoint{
		{ID: "p0", LocLeft: "entry", LocRight: "entry", Constraints: cons},
		{ID: "p1", LocLeft: "exit", LocRight: "exit", Exiting: true,
			Constraints: []Constraint{{Left: "ret", Right: "ret"}}},
	}
}

func TestCheckerStraightLineEquivalent(t *testing.T) {
	ctx, solver := newPair(t)
	left := &toySem{ctx: ctx, side: "L"}
	left.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			// ret = (x + y) + y
			v := ctx.Add(ctx.Add(s.get("x"), s.get("y")), s.get("y"))
			return []State{exitState(s, v)}
		},
	}
	right := &toySem{ctx: ctx, side: "R"}
	right.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			// ret = x + 2*y — needs the solver, not just normalization
			v := ctx.Add(s.get("a"), ctx.Mul(ctx.BV(2, 32), s.get("b")))
			return []State{exitState(s, v)}
		},
	}
	points := entryExitPoints(
		Constraint{Left: "x", Right: "a"},
		Constraint{Left: "y", Right: "b"},
	)
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != Validated {
		t.Fatalf("verdict = %v; failures: %v", rep.Verdict, rep.Failures)
	}
}

func TestCheckerStraightLineInequivalent(t *testing.T) {
	ctx, solver := newPair(t)
	left := &toySem{ctx: ctx, side: "L"}
	left.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			return []State{exitState(s, ctx.Add(s.get("x"), s.get("y")))}
		},
	}
	right := &toySem{ctx: ctx, side: "R"}
	right.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			return []State{exitState(s, ctx.Sub(s.get("a"), s.get("b")))}
		},
	}
	points := entryExitPoints(
		Constraint{Left: "x", Right: "a"},
		Constraint{Left: "y", Right: "b"},
	)
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != NotValidated {
		t.Fatalf("x+y vs x-y validated")
	}
	if len(rep.Failures) == 0 {
		t.Fatalf("no failures reported")
	}
}

// branchingSem builds a two-armed program: if cond(x) then ret=a(x) at exit
// else ret=b(x).
func branchingSem(ctx *smt.Context, side string, cond func(x *smt.Term) *smt.Term,
	thenV, elseV func(x *smt.Term) *smt.Term) *toySem {
	m := &toySem{ctx: ctx, side: side}
	m.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			x := s.get("x")
			c := cond(x)
			sT := s.clone()
			sT.pc = ctx.AndB(s.pc, c)
			sT.loc = "then"
			sF := s.clone()
			sF.pc = ctx.AndB(s.pc, ctx.Not(c))
			sF.loc = "else"
			return []State{sT, sF}
		},
		"then": func(s *toyState) []State {
			return []State{exitState(s, thenV(s.get("x")))}
		},
		"else": func(s *toyState) []State {
			return []State{exitState(s, elseV(s.get("x")))}
		},
	}
	return m
}

func TestCheckerBranchingEquivalent(t *testing.T) {
	ctx, solver := newPair(t)
	ten := ctx.BV(10, 32)
	// Left branches on x <u 10; right on ¬(10 ≤u x): same predicate,
	// different syntax, so pairing requires real SMT queries.
	left := branchingSem(ctx, "L",
		func(x *smt.Term) *smt.Term { return ctx.Ult(x, ten) },
		func(x *smt.Term) *smt.Term { return ctx.Add(x, ctx.BV(1, 32)) },
		func(x *smt.Term) *smt.Term { return x })
	right := branchingSem(ctx, "R",
		func(x *smt.Term) *smt.Term { return ctx.Not(ctx.Ule(ten, x)) },
		func(x *smt.Term) *smt.Term { return ctx.Sub(x, ctx.BV(0xFFFFFFFF, 32)) }, // x+1
		func(x *smt.Term) *smt.Term { return x })
	points := entryExitPoints(Constraint{Left: "x", Right: "x"})
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != Validated {
		t.Fatalf("verdict = %v; failures: %v", rep.Verdict, rep.Failures)
	}
	if rep.Stats.PairQueries == 0 {
		t.Errorf("expected SMT pairing queries for syntactically distinct conditions")
	}
}

func TestCheckerBranchingSwappedArms(t *testing.T) {
	ctx, solver := newPair(t)
	ten := ctx.BV(10, 32)
	left := branchingSem(ctx, "L",
		func(x *smt.Term) *smt.Term { return ctx.Ult(x, ten) },
		func(x *smt.Term) *smt.Term { return ctx.Add(x, ctx.BV(1, 32)) },
		func(x *smt.Term) *smt.Term { return x })
	// Right swaps the arms without swapping the condition: inequivalent.
	right := branchingSem(ctx, "R",
		func(x *smt.Term) *smt.Term { return ctx.Ult(x, ten) },
		func(x *smt.Term) *smt.Term { return x },
		func(x *smt.Term) *smt.Term { return ctx.Add(x, ctx.BV(1, 32)) })
	points := entryExitPoints(Constraint{Left: "x", Right: "x"})
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != NotValidated {
		t.Fatalf("swapped-arm program validated")
	}
}

func TestCheckerAblationNegativeForm(t *testing.T) {
	// The naive ¬φ2 query form must reach the same verdict (slower).
	ctx, solver := newPair(t)
	ten := ctx.BV(10, 32)
	mk := func(side string) *toySem {
		return branchingSem(ctx, side,
			func(x *smt.Term) *smt.Term { return ctx.Ult(x, ten) },
			func(x *smt.Term) *smt.Term { return ctx.Add(x, ctx.BV(1, 32)) },
			func(x *smt.Term) *smt.Term { return x })
	}
	points := entryExitPoints(Constraint{Left: "x", Right: "x"})
	rep := run(t, solver, mk("L"), mk("R"), points,
		Options{DisablePositiveForm: true, DisablePCFastPath: true})
	if rep.Verdict != Validated {
		t.Fatalf("negative-form verdict = %v; failures: %v", rep.Verdict, rep.Failures)
	}
}

// loopSem builds: i=0 at entry; head: if i <u n → body else exit(acc);
// body: acc += k; i += 1 → head. Register names are shared across sides.
func loopSem(ctx *smt.Context, side string) *toySem {
	one := ctx.BV(1, 32)
	m := &toySem{ctx: ctx, side: side}
	m.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			n := s.clone()
			n.regs["i"] = ctx.BV(0, 32)
			n.regs["acc"] = ctx.BV(0, 32)
			n.loc = "head"
			return []State{n}
		},
		"head": func(s *toyState) []State {
			c := ctx.Ult(s.get("i"), s.get("n"))
			sT := s.clone()
			sT.pc = ctx.AndB(s.pc, c)
			sT.loc = "body"
			sF := s.clone()
			sF.pc = ctx.AndB(s.pc, ctx.Not(c))
			sF.loc = "exit"
			sF.final = true
			sF.ret = s.get("acc")
			return []State{sT, sF}
		},
		"body": func(s *toyState) []State {
			n := s.clone()
			n.regs["acc"] = ctx.Add(s.get("acc"), s.get("k"))
			n.regs["i"] = ctx.Add(s.get("i"), one)
			n.loc = "head"
			return []State{n}
		},
	}
	return m
}

func TestCheckerLoop(t *testing.T) {
	ctx, solver := newPair(t)
	left := loopSem(ctx, "L")
	right := loopSem(ctx, "R")
	points := []*SyncPoint{
		{ID: "p0", LocLeft: "entry", LocRight: "entry", Constraints: []Constraint{
			{Left: "n", Right: "n"}, {Left: "k", Right: "k"},
		}},
		{ID: "p1", LocLeft: "head", LocRight: "head", Constraints: []Constraint{
			{Left: "n", Right: "n"}, {Left: "k", Right: "k"},
			{Left: "i", Right: "i"}, {Left: "acc", Right: "acc"},
		}},
		{ID: "p2", LocLeft: "exit", LocRight: "exit", Exiting: true,
			Constraints: []Constraint{{Left: "ret", Right: "ret"}}},
	}
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != Validated {
		t.Fatalf("loop verdict = %v; failures: %v", rep.Verdict, rep.Failures)
	}
}

func TestCheckerLoopMissingCutFails(t *testing.T) {
	// Without the loop-head point the sync relation is not a cut: the
	// checker must fail with an error (MaxSteps exceeded), not validate.
	ctx, solver := newPair(t)
	left := loopSem(ctx, "L")
	right := loopSem(ctx, "R")
	points := []*SyncPoint{
		{ID: "p0", LocLeft: "entry", LocRight: "entry", Constraints: []Constraint{
			{Left: "n", Right: "n"}, {Left: "k", Right: "k"},
		}},
		{ID: "p2", LocLeft: "exit", LocRight: "exit", Exiting: true,
			Constraints: []Constraint{{Left: "ret", Right: "ret"}}},
	}
	ck := NewChecker(solver, left, right, Options{MaxSteps: 64})
	_, err := ck.Run(points)
	if err == nil {
		t.Fatalf("missing loop cut did not error")
	}
	if !strings.Contains(err.Error(), "cut") {
		t.Errorf("error %q does not mention the cut", err)
	}
}

// ubSem is like a straight-line program but the left side branches to an
// overflow error state when x = 7 (modeling nsw UB), while the right side
// computes unconditionally.
func TestCheckerUBExcuse(t *testing.T) {
	ctx, solver := newPair(t)
	seven := ctx.BV(7, 32)
	left := &toySem{ctx: ctx, side: "L"}
	left.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			x := s.get("x")
			bad := ctx.Eq(x, seven)
			errS := s.clone()
			errS.pc = ctx.AndB(s.pc, bad)
			errS.loc = ErrorLoc("overflow")
			errS.err = "overflow"
			okS := s.clone()
			okS.pc = ctx.AndB(s.pc, ctx.Not(bad))
			return []State{errS, exitStateFrom(okS, ctx.Add(x, ctx.BV(1, 32)))}
		},
	}
	right := &toySem{ctx: ctx, side: "R"}
	right.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			return []State{exitState(s, ctx.Add(s.get("x"), ctx.BV(1, 32)))}
		},
	}
	points := entryExitPoints(Constraint{Left: "x", Right: "x"})
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != Validated {
		t.Fatalf("UB-excused program not validated: %v", rep.Failures)
	}
}

func exitStateFrom(s *toyState, ret *smt.Term) *toyState {
	s.loc = "exit"
	s.final = true
	s.ret = ret
	return s
}

func TestCheckerRightErrorNotExcused(t *testing.T) {
	// The RIGHT side introduces an error (like the out-of-bounds load of
	// Figure 10/11) with no matching left error: must not validate, in
	// either mode.
	ctx, solver := newPair(t)
	left := &toySem{ctx: ctx, side: "L"}
	left.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			return []State{exitState(s, s.get("x"))}
		},
	}
	right := &toySem{ctx: ctx, side: "R"}
	right.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			errS := s.clone()
			errS.loc = ErrorLoc("oob")
			errS.err = "oob"
			return []State{errS}
		},
	}
	points := entryExitPoints(Constraint{Left: "x", Right: "x"})
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != NotValidated {
		t.Fatalf("right-side error state validated")
	}
	rep = run(t, solver, left, right, points, Options{Mode: Refinement})
	if rep.Verdict != NotValidated {
		t.Fatalf("right-side error state validated as refinement")
	}
}

func TestCheckerRefinementAllowsExtraRightBehavior(t *testing.T) {
	// Right side branches; left always takes one arm. Equivalence fails,
	// refinement succeeds.
	ctx, solver := newPair(t)
	left := &toySem{ctx: ctx, side: "L"}
	left.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			// pc restricted to x <u 10, then returns x.
			c := ctx.Ult(s.get("x"), ctx.BV(10, 32))
			n := s.clone()
			n.pc = ctx.AndB(s.pc, c)
			return []State{exitStateFrom(n, s.get("x"))}
		},
	}
	right := branchingSem(ctx, "R",
		func(x *smt.Term) *smt.Term { return ctx.Ult(x, ctx.BV(10, 32)) },
		func(x *smt.Term) *smt.Term { return x },
		func(x *smt.Term) *smt.Term { return ctx.BV(99, 32) })
	points := entryExitPoints(Constraint{Left: "x", Right: "x"})
	rep := run(t, solver, left, right, points, Options{Mode: Refinement})
	if rep.Verdict != Validated {
		t.Fatalf("refinement verdict = %v; failures: %v", rep.Verdict, rep.Failures)
	}
	rep = run(t, solver, left, right, points, Options{Mode: Equivalence})
	if rep.Verdict != NotValidated {
		t.Fatalf("equivalence validated despite unmatched right arm")
	}
}

func TestSyncPointRoundTrip(t *testing.T) {
	points := []*SyncPoint{
		{ID: "p0", LocLeft: "entry", LocRight: "entry", MemEqual: true,
			Constraints: []Constraint{{Left: "%a0", Right: "edi"}, {Left: "1", Right: "%vr9"}}},
		{ID: "p3", LocLeft: "exit", LocRight: "exit", Exiting: true,
			Constraints: []Constraint{{Left: "ret", Right: "eax"}}},
	}
	var b strings.Builder
	if err := WriteSyncPoints(&b, points); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseSyncPoints(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("parse: %v\ninput:\n%s", err, b.String())
	}
	if len(parsed) != 2 {
		t.Fatalf("parsed %d points", len(parsed))
	}
	if parsed[0].ID != "p0" || !parsed[0].MemEqual || parsed[0].Exiting {
		t.Errorf("p0 = %+v", parsed[0])
	}
	if len(parsed[0].Constraints) != 2 || parsed[0].Constraints[1].Left != "1" {
		t.Errorf("p0 constraints = %+v", parsed[0].Constraints)
	}
	if !parsed[1].Exiting || parsed[1].Constraints[0].Right != "eax" {
		t.Errorf("p3 = %+v", parsed[1])
	}
}

func TestParseSyncPointsErrors(t *testing.T) {
	bad := []string{
		"sync p0 entry {\n}", // missing right loc
		"sync p0 entry entry {\nno-equals-here\n}",
		"}",
		"sync p0 entry entry {\n",       // unterminated
		"sync p0 entry entry flag {\n}", // unknown flag
	}
	for _, in := range bad {
		if _, err := ParseSyncPoints(strings.NewReader(in)); err == nil {
			t.Errorf("input %q parsed without error", in)
		}
	}
}

func TestConstExprHelpers(t *testing.T) {
	if !IsConstExpr("42") || !IsConstExpr("-1") || IsConstExpr("%x") || IsConstExpr("") || IsConstExpr("-") {
		t.Errorf("IsConstExpr misclassifies")
	}
	v, err := ParseConstExpr("-1")
	if err != nil || v != ^uint64(0) {
		t.Errorf("ParseConstExpr(-1) = %d, %v", v, err)
	}
}

func TestCheckerConstConstraint(t *testing.T) {
	// Right side materializes the constant 1 into a register (like
	// %vr9_32 = mov 1 in Figure 2); the sync point pins it with a
	// constant constraint.
	ctx, solver := newPair(t)
	left := &toySem{ctx: ctx, side: "L"}
	left.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			return []State{exitState(s, ctx.Add(s.get("x"), ctx.BV(1, 32)))}
		},
	}
	right := &toySem{ctx: ctx, side: "R"}
	right.steps = map[Location]func(*toyState) []State{
		"entry": func(s *toyState) []State {
			return []State{exitState(s, ctx.Add(s.get("x"), s.get("one")))}
		},
	}
	points := entryExitPoints(
		Constraint{Left: "x", Right: "x"},
		Constraint{Left: "1", Right: "one"},
	)
	rep := run(t, solver, left, right, points, Options{})
	if rep.Verdict != Validated {
		t.Fatalf("const-constraint program not validated: %v", rep.Failures)
	}
}
