package core

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Constraint is one equality obligation of a synchronization point: the
// left expression (evaluated in the left state) must equal the right
// expression (evaluated in the right state). Each expression is either an
// observable name or a decimal integer literal.
type Constraint struct {
	Left  string
	Right string
}

// IsConstExpr reports whether a constraint expression is an integer literal.
func IsConstExpr(e string) bool {
	if e == "" {
		return false
	}
	if e[0] == '-' && len(e) > 1 {
		e = e[1:]
	}
	for _, r := range e {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// ParseConstExpr parses an integer-literal constraint expression.
func ParseConstExpr(e string) (uint64, error) {
	neg := false
	if strings.HasPrefix(e, "-") {
		neg = true
		e = e[1:]
	}
	v, err := strconv.ParseUint(e, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("core: bad constant expression %q: %v", e, err)
	}
	if neg {
		return -v, nil
	}
	return v, nil
}

// SyncPoint is one element of the synchronization relation P: a pair of
// locations plus the equality constraints that related states must satisfy
// (paper §4.5). MemEqual additionally requires the two memories to be
// equal. Exiting marks points that act only as proof targets (function
// exits and before-call points) and are never symbolically executed from.
type SyncPoint struct {
	ID          string
	LocLeft     Location
	LocRight    Location
	Constraints []Constraint
	MemEqual    bool
	Exiting     bool
}

func (p *SyncPoint) String() string {
	var b strings.Builder
	writeSyncPoint(&b, p)
	return b.String()
}

// WriteSyncPoints serializes a synchronization relation in the textual
// format accepted by ParseSyncPoints (and by cmd/keq).
func WriteSyncPoints(w io.Writer, points []*SyncPoint) error {
	var b strings.Builder
	for i, p := range points {
		if i > 0 {
			b.WriteByte('\n')
		}
		writeSyncPoint(&b, p)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSyncPoint(b *strings.Builder, p *SyncPoint) {
	fmt.Fprintf(b, "sync %s %s %s", p.ID, p.LocLeft, p.LocRight)
	if p.Exiting {
		b.WriteString(" exiting")
	}
	b.WriteString(" {\n")
	for _, c := range p.Constraints {
		fmt.Fprintf(b, "  %s = %s\n", c.Left, c.Right)
	}
	if p.MemEqual {
		b.WriteString("  mem\n")
	}
	b.WriteString("}\n")
}

// ParseSyncPoints parses the textual synchronization-relation format:
//
//	sync <id> <locLeft> <locRight> [exiting] {
//	  <leftExpr> = <rightExpr>
//	  mem
//	}
//
// Lines starting with '#' are comments.
func ParseSyncPoints(r io.Reader) ([]*SyncPoint, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var points []*SyncPoint
	var cur *SyncPoint
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "sync "):
			if cur != nil {
				return nil, fmt.Errorf("line %d: nested sync block", lineNo)
			}
			rest := strings.TrimSuffix(strings.TrimPrefix(line, "sync "), "{")
			fields := strings.Fields(rest)
			if len(fields) < 3 || len(fields) > 4 {
				return nil, fmt.Errorf("line %d: malformed sync header %q", lineNo, line)
			}
			cur = &SyncPoint{
				ID:       fields[0],
				LocLeft:  Location(fields[1]),
				LocRight: Location(fields[2]),
			}
			if len(fields) == 4 {
				if fields[3] != "exiting" {
					return nil, fmt.Errorf("line %d: unknown flag %q", lineNo, fields[3])
				}
				cur.Exiting = true
			}
			if !strings.HasSuffix(line, "{") {
				return nil, fmt.Errorf("line %d: sync header must end with '{'", lineNo)
			}
		case line == "}":
			if cur == nil {
				return nil, fmt.Errorf("line %d: '}' outside sync block", lineNo)
			}
			points = append(points, cur)
			cur = nil
		case line == "mem":
			if cur == nil {
				return nil, fmt.Errorf("line %d: constraint outside sync block", lineNo)
			}
			cur.MemEqual = true
		default:
			if cur == nil {
				return nil, fmt.Errorf("line %d: constraint outside sync block", lineNo)
			}
			parts := strings.SplitN(line, "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed constraint %q", lineNo, line)
			}
			cur.Constraints = append(cur.Constraints, Constraint{
				Left:  strings.TrimSpace(parts[0]),
				Right: strings.TrimSpace(parts[1]),
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil {
		return nil, fmt.Errorf("unterminated sync block %q", cur.ID)
	}
	return points, nil
}

// Relation is a synchronization relation with location-pair indexing.
type Relation struct {
	Points []*SyncPoint
	index  map[[2]Location][]*SyncPoint
}

// NewRelation indexes the given synchronization points.
func NewRelation(points []*SyncPoint) *Relation {
	r := &Relation{Points: points, index: make(map[[2]Location][]*SyncPoint)}
	for _, p := range points {
		k := [2]Location{p.LocLeft, p.LocRight}
		r.index[k] = append(r.index[k], p)
	}
	return r
}

// Candidates returns the sync points whose location pair matches (l1, l2).
func (r *Relation) Candidates(l1, l2 Location) []*SyncPoint {
	return r.index[[2]Location{l1, l2}]
}

// LeftLocs returns the set of left-side locations mentioned in P (these are
// the left program's cut locations, in addition to final and error states).
func (r *Relation) LeftLocs() map[Location]bool {
	out := make(map[Location]bool, len(r.Points))
	for _, p := range r.Points {
		out[p.LocLeft] = true
	}
	return out
}

// RightLocs returns the set of right-side locations mentioned in P.
func (r *Relation) RightLocs() map[Location]bool {
	out := make(map[Location]bool, len(r.Points))
	for _, p := range r.Points {
		out[p.LocRight] = true
	}
	return out
}

// SortPoints orders points deterministically by ID (entry first if present).
func SortPoints(points []*SyncPoint) {
	sort.Slice(points, func(i, j int) bool {
		pi, pj := points[i], points[j]
		if (pi.LocLeft == "entry") != (pj.LocLeft == "entry") {
			return pi.LocLeft == "entry"
		}
		return pi.ID < pj.ID
	})
}
