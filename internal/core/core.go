// Package core implements the paper's primary contribution: cut transition
// systems, cut-bisimulation (paper §2, §7), and the KEQ language-parametric
// equivalence checking algorithm (paper §3, Algorithm 1, §8).
//
// The checker is parameterized by two Semantics values — one per language —
// and a candidate synchronization relation P (the verification condition).
// It has no knowledge of the languages involved or of the transformation
// that produced the right-hand program: everything language-specific flows
// through the State and Semantics interfaces, mirroring how the original
// KEQ accepts two K semantic definitions.
package core

import (
	"fmt"

	"repro/internal/smt"
)

// Location identifies a program point for cut membership. Locations are
// opaque to the checker except for equality; the conventions used by the
// bundled languages are:
//
//	entry                      function entry
//	exit                       function exit (after return)
//	block:<B>:from:<P>         start of block B entered from P (pre-phi)
//	call:<callee>:<n>:before   immediately before the n-th call site
//	call:<callee>:<n>:after    immediately after the n-th call site
//	error:<kind>               an undefined-behavior error state
type Location string

// ErrorLocPrefix prefixes all error-state locations.
const ErrorLocPrefix = "error:"

// ErrorLoc builds the location for an error state of the given kind
// (e.g. "oob", "overflow", "divzero").
func ErrorLoc(kind string) Location { return Location(ErrorLocPrefix + kind) }

// State is a symbolic program configuration. A State is immutable once
// returned by a Semantics.
type State interface {
	// Loc returns the state's cut location key.
	Loc() Location
	// PathCond returns the accumulated path condition (a Bool term).
	PathCond() *smt.Term
	// Observable resolves a name from a synchronization-point constraint
	// (a register, "ret", ...) to its value term in this state.
	Observable(name string) (*smt.Term, error)
	// MemTerm returns the state's memory as an smt array term, or nil if
	// the language has no memory.
	MemTerm() *smt.Term
	// IsFinal reports whether the state has terminated normally.
	IsFinal() bool
	// ErrorKind returns the undefined-behavior kind ("oob", "overflow",
	// ...) when the state is an error state, and "" otherwise.
	ErrorKind() string
}

// IsError reports whether s is an undefined-behavior error state.
func IsError(s State) bool { return s.ErrorKind() != "" }

// Semantics is the language-parametric interface KEQ requires: the ability
// to instantiate a symbolic state at a location and to compute symbolic
// successors. It corresponds to the API the K framework provided to the
// original implementation.
type Semantics interface {
	// Instantiate builds a symbolic state at loc. presets maps observable
	// names to terms the state must start from (the shared variables
	// created from synchronization-point constraints); unmentioned
	// observables materialize as fresh unconstrained variables on first
	// read. memTerm, when non-nil, is the array term both sides share as
	// their initial memory.
	Instantiate(loc Location, presets map[string]*smt.Term, memTerm *smt.Term) (State, error)
	// Step returns the symbolic one-step successors of s. Final and error
	// states have no successors. Each successor's path condition extends
	// the parent's.
	Step(s State) ([]State, error)
	// ObservableWidth reports the bit width of a constraint observable at
	// loc (needed to create shared variables of the right sort).
	ObservableWidth(loc Location, name string) (uint8, error)
}

// Mode selects between equivalence (cut-bisimulation) and refinement
// (cut-simulation: every left behavior is matched on the right).
type Mode int8

// Checking modes.
const (
	Equivalence Mode = iota
	Refinement
)

func (m Mode) String() string {
	if m == Refinement {
		return "refinement"
	}
	return "equivalence"
}

// Verdict is the outcome of a validation run.
type Verdict int8

// Verdicts. NotValidated does not mean the programs are inequivalent —
// only that P was not shown to be a cut-bisimulation (paper: TV systems
// may raise false alarms but never accept a wrong translation).
const (
	NotValidated Verdict = iota
	Validated
)

func (v Verdict) String() string {
	if v == Validated {
		return "validated"
	}
	return "not validated"
}

// Failure describes why a synchronization point could not be discharged.
type Failure struct {
	Point   string // sync point ID being checked
	Side    string // "left", "right", or "pair"
	Loc     Location
	Reason  string
	Counter *smt.Assign // countermodel when available
}

func (f Failure) String() string {
	return fmt.Sprintf("point %s [%s @ %s]: %s", f.Point, f.Side, f.Loc, f.Reason)
}
