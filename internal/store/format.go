package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-disk entry format
//
//	offset 0: magic "TVST" (4 bytes)
//	offset 4: version byte
//	offset 5: version-specific payload
//
// Version 1 payload:
//
//	uvarint metaLen, metaLen bytes of JSON (entryMetaV1)
//	artifact bodies, concatenated in table order
//
// The JSON header carries the verdict Meta plus an artifact table of
// (name, size, CRC32-Castagnoli). Bodies are integrity-checked against
// their CRCs on read, so a bit flip anywhere in a certificate surfaces
// as a decode error (-> clean miss), never as a trusted verdict.
//
// New format generations add a decoder to entryDecoders and bump
// entryVersion in the writer; old decoders are kept forever, which is
// what keeps a store written by an old binary loadable (the
// goloader-style per-version decoder idiom). A version byte with no
// decoder is errBadVersion — a miss, counted separately from
// corruption.

const (
	entryMagic   = "TVST"
	entryVersion = 1

	manifestMagic   = "TVSM"
	manifestVersion = 1
)

// errBadVersion marks an entry (or manifest) whose version byte has no
// registered decoder — written by a future binary, not damaged.
var errBadVersion = errors.New("store: unsupported format version")

func isBadVersion(err error) bool { return errors.Is(err, errBadVersion) }

// IsBadVersion reports whether err marks an entry written by a future
// binary's format version — unreadable by this one, but not damaged.
// Audit tools (proofcheck -store -all) use it to report such entries as
// skipped rather than failed.
func IsBadVersion(err error) bool { return isBadVersion(err) }

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// entryDecoder decodes one format generation's payload (the bytes after
// magic+version).
type entryDecoder func(payload []byte) (*Entry, error)

// entryDecoders maps version byte -> decoder. Old versions stay in the
// table across format generations; tests exercise the bump by
// registering a future decoder and re-reading v1 stores.
var entryDecoders = map[byte]entryDecoder{
	1: decodeEntryV1,
}

// artifactHeader is the artifact-table row of the v1 JSON header.
type artifactHeader struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
}

// entryMetaV1 is the v1 JSON header.
type entryMetaV1 struct {
	Meta      Meta             `json:"meta"`
	Artifacts []artifactHeader `json:"artifacts,omitempty"`
}

// encodeEntry serializes e at the current writer version.
func encodeEntry(e *Entry) ([]byte, error) {
	hdr := entryMetaV1{Meta: e.Meta}
	var bodyLen int64
	for _, a := range e.Artifacts {
		if !safeArtifactName(a.Name) {
			return nil, fmt.Errorf("store: unsafe artifact name %q", a.Name)
		}
		hdr.Artifacts = append(hdr.Artifacts, artifactHeader{
			Name: a.Name,
			Size: int64(len(a.Data)),
			CRC:  crc32.Checksum(a.Data, crcTable),
		})
		bodyLen += int64(len(a.Data))
	}
	meta, err := json.Marshal(&hdr)
	if err != nil {
		return nil, fmt.Errorf("store: %v", err)
	}
	buf := make([]byte, 0, len(entryMagic)+1+binary.MaxVarintLen64+len(meta)+int(bodyLen))
	buf = append(buf, entryMagic...)
	buf = append(buf, entryVersion)
	buf = binary.AppendUvarint(buf, uint64(len(meta)))
	buf = append(buf, meta...)
	for _, a := range e.Artifacts {
		buf = append(buf, a.Data...)
	}
	return buf, nil
}

// decodeEntry sniffs magic and version and dispatches to the
// per-version decoder table.
func decodeEntry(data []byte) (*Entry, error) {
	if len(data) < len(entryMagic)+1 {
		return nil, fmt.Errorf("store: entry truncated before header")
	}
	if string(data[:len(entryMagic)]) != entryMagic {
		return nil, fmt.Errorf("store: bad entry magic %q", data[:len(entryMagic)])
	}
	version := data[len(entryMagic)]
	dec := entryDecoders[version]
	if dec == nil {
		return nil, fmt.Errorf("%w: entry version %d", errBadVersion, version)
	}
	return dec(data[len(entryMagic)+1:])
}

func decodeEntryV1(payload []byte) (*Entry, error) {
	metaLen, n := binary.Uvarint(payload)
	if n <= 0 || metaLen > uint64(len(payload)-n) {
		return nil, fmt.Errorf("store: entry truncated in meta header")
	}
	var hdr entryMetaV1
	if err := json.Unmarshal(payload[n:n+int(metaLen)], &hdr); err != nil {
		return nil, fmt.Errorf("store: bad entry meta: %v", err)
	}
	body := payload[n+int(metaLen):]
	e := &Entry{Meta: hdr.Meta}
	var off int64
	for _, ah := range hdr.Artifacts {
		if ah.Size < 0 || off+ah.Size > int64(len(body)) {
			return nil, fmt.Errorf("store: entry truncated in artifact %q", ah.Name)
		}
		if !safeArtifactName(ah.Name) {
			return nil, fmt.Errorf("store: unsafe artifact name %q", ah.Name)
		}
		data := body[off : off+ah.Size]
		if crc32.Checksum(data, crcTable) != ah.CRC {
			return nil, fmt.Errorf("store: artifact %q fails its checksum", ah.Name)
		}
		e.Artifacts = append(e.Artifacts, Artifact{Name: ah.Name, Data: data})
		off += ah.Size
	}
	if off != int64(len(body)) {
		return nil, fmt.Errorf("store: %d trailing bytes after last artifact", int64(len(body))-off)
	}
	return e, nil
}

// manifestBody is the JSON payload of the store manifest.
type manifestBody struct {
	Format string `json:"format"`
	// EntryVersion is the version new entries are written at; readers
	// decode any version in their table regardless.
	EntryVersion int `json:"entry_version"`
}

func encodeManifest() []byte {
	body, _ := json.Marshal(manifestBody{Format: "tv-result-store", EntryVersion: entryVersion})
	buf := make([]byte, 0, len(manifestMagic)+1+len(body)+1)
	buf = append(buf, manifestMagic...)
	buf = append(buf, manifestVersion)
	buf = append(buf, body...)
	buf = append(buf, '\n')
	return buf
}

// checkManifest validates an existing manifest. An unknown manifest
// version is an Open-time error (not a miss): the caller must not write
// entries into a store whose ground rules it cannot read.
func checkManifest(data []byte) error {
	if len(data) < len(manifestMagic)+1 {
		return fmt.Errorf("store: manifest truncated")
	}
	if string(data[:len(manifestMagic)]) != manifestMagic {
		return fmt.Errorf("store: bad manifest magic %q", data[:len(manifestMagic)])
	}
	if v := data[len(manifestMagic)]; v != manifestVersion {
		return fmt.Errorf("%w: manifest version %d", errBadVersion, v)
	}
	var body manifestBody
	if err := json.Unmarshal(data[len(manifestMagic)+1:], &body); err != nil {
		return fmt.Errorf("store: bad manifest body: %v", err)
	}
	return nil
}
