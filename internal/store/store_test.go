package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

func testEntry() *Entry {
	return &Entry{
		Meta: Meta{
			Function:      "f0",
			Class:         "Succeeded",
			CodeSize:      42,
			Points:        3,
			Certified:     true,
			CreatedUnixNS: 1700000000000000000,
		},
		Artifacts: []Artifact{
			{Name: "f0.certs.json", Data: []byte("certs-bytes")},
			{Name: "f0.drat", Data: bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 100)},
			{Name: "f0.witness.json", Data: []byte(`{"points":3}`)},
		},
	}
}

func openTestStore(t *testing.T) (*Store, *telemetry.Metrics) {
	t.Helper()
	m := telemetry.NewMetrics()
	s, err := Open(t.TempDir(), m)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, m
}

func TestRoundTrip(t *testing.T) {
	s, m := openTestStore(t)
	k := FunctionKey("f0", "src", "opts")
	if _, ok := s.Get(k); ok {
		t.Fatal("Get on empty store: want miss")
	}
	if m.Counter(MetricMiss) != 1 {
		t.Fatalf("miss counter = %d, want 1", m.Counter(MetricMiss))
	}
	want := testEntry()
	if err := s.Put(k, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("Get after Put: want hit")
	}
	if got.Meta != want.Meta {
		t.Fatalf("Meta round-trip: got %+v, want %+v", got.Meta, want.Meta)
	}
	if len(got.Artifacts) != len(want.Artifacts) {
		t.Fatalf("artifact count: got %d, want %d", len(got.Artifacts), len(want.Artifacts))
	}
	for i, a := range want.Artifacts {
		if got.Artifacts[i].Name != a.Name || !bytes.Equal(got.Artifacts[i].Data, a.Data) {
			t.Fatalf("artifact %d mismatch", i)
		}
	}
	if got.Artifact("f0.drat") == nil || got.Artifact("absent") != nil {
		t.Fatal("Artifact lookup broken")
	}
	if m.Counter(MetricHit) != 1 || m.Counter(MetricPut) != 1 {
		t.Fatalf("hit=%d put=%d, want 1/1", m.Counter(MetricHit), m.Counter(MetricPut))
	}
	if !s.Contains(k) || s.Contains(FunctionKey("other")) {
		t.Fatal("Contains broken")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestKeyFromHex(t *testing.T) {
	k := FunctionKey("a", "b")
	back, err := KeyFromHex(k.Hex())
	if err != nil || back != k {
		t.Fatalf("KeyFromHex round-trip: %v", err)
	}
	for _, bad := range []string{"", "zz", k.Hex()[:10], k.Hex() + "00"} {
		if _, err := KeyFromHex(bad); err == nil {
			t.Fatalf("KeyFromHex(%q): want error", bad)
		}
	}
	// Length-prefixing: concatenation-equal part lists must not collide.
	if FunctionKey("ab", "c") == FunctionKey("a", "bc") {
		t.Fatal("FunctionKey collides under concatenation")
	}
}

// corruptEntry rewrites the stored entry file through fn.
func corruptEntry(t *testing.T, s *Store, k Key, fn func([]byte) []byte) {
	t.Helper()
	path := s.entryPath(k)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	if err := os.WriteFile(path, fn(data), 0o644); err != nil {
		t.Fatalf("rewrite entry: %v", err)
	}
}

func TestCorruptionTruncated(t *testing.T) {
	s, m := openTestStore(t)
	k := FunctionKey("trunc")
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	// Chop the tail: truncation lands inside an artifact body (or the
	// meta header for very short prefixes). Every prefix must be a
	// clean miss, never a panic or a verdict.
	full, _ := os.ReadFile(s.entryPath(k))
	for _, n := range []int{len(full) - 1, len(full) / 2, 7, 4, 1, 0} {
		corruptEntry(t, s, k, func(b []byte) []byte { return full[:n] })
		if _, ok := s.Get(k); ok {
			t.Fatalf("truncated to %d bytes: want miss", n)
		}
	}
	if c := m.Counter(MetricCorrupt); c != 6 {
		t.Fatalf("store.corrupt = %d, want 6", c)
	}
	if m.Counter(MetricBadVersion) != 0 {
		t.Fatal("truncation must not count as badversion")
	}
}

func TestCorruptionBitFlip(t *testing.T) {
	s, m := openTestStore(t)
	k := FunctionKey("flip")
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	// Flip one bit in the last artifact body — past the JSON header, so
	// only the per-artifact CRC can catch it.
	corruptEntry(t, s, k, func(b []byte) []byte {
		b[len(b)-1] ^= 0x40
		return b
	})
	if _, ok := s.Get(k); ok {
		t.Fatal("bit-flipped artifact: want miss, got trusted verdict")
	}
	if m.Counter(MetricCorrupt) != 1 || m.Counter(MetricMiss) != 1 {
		t.Fatalf("corrupt=%d miss=%d, want 1/1",
			m.Counter(MetricCorrupt), m.Counter(MetricMiss))
	}
}

func TestCorruptionBadMagic(t *testing.T) {
	s, m := openTestStore(t)
	k := FunctionKey("magic")
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s, k, func(b []byte) []byte {
		copy(b, "XXXX")
		return b
	})
	if _, ok := s.Get(k); ok {
		t.Fatal("bad magic: want miss")
	}
	if m.Counter(MetricCorrupt) != 1 {
		t.Fatalf("store.corrupt = %d, want 1", m.Counter(MetricCorrupt))
	}
}

func TestUnknownFutureVersion(t *testing.T) {
	s, m := openTestStore(t)
	k := FunctionKey("future")
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	corruptEntry(t, s, k, func(b []byte) []byte {
		b[len(entryMagic)] = 0x7F
		return b
	})
	if _, ok := s.Get(k); ok {
		t.Fatal("future version: want miss")
	}
	if m.Counter(MetricBadVersion) != 1 || m.Counter(MetricMiss) != 1 {
		t.Fatalf("badversion=%d miss=%d, want 1/1",
			m.Counter(MetricBadVersion), m.Counter(MetricMiss))
	}
	if m.Counter(MetricCorrupt) != 0 {
		t.Fatal("future version must not count as corruption")
	}
}

// TestDecoderTableBump simulates a format-generation bump: a store full
// of v1 entries must stay readable after a v2 decoder joins the table
// and the writer moves on.
func TestDecoderTableBump(t *testing.T) {
	s, _ := openTestStore(t)
	k := FunctionKey("v1-era")
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	// Register a (fake) future decoder, as a real version bump would.
	if _, claimed := entryDecoders[2]; claimed {
		t.Fatal("version 2 already registered; bump the test version")
	}
	entryDecoders[2] = func(payload []byte) (*Entry, error) {
		return &Entry{Meta: Meta{Function: "decoded-by-v2"}}, nil
	}
	defer delete(entryDecoders, 2)

	// Old v1 entries still decode through the v1 decoder.
	got, ok := s.Get(k)
	if !ok || got.Meta.Function != "f0" {
		t.Fatal("v1 entry unreadable after decoder-table bump")
	}
	// And a v2-stamped entry dispatches to the new decoder.
	corruptEntry(t, s, k, func(b []byte) []byte {
		b[len(entryMagic)] = 2
		return b
	})
	got, ok = s.Get(k)
	if !ok || got.Meta.Function != "decoded-by-v2" {
		t.Fatal("v2 entry did not dispatch to the v2 decoder")
	}
}

func TestCrashSafety(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A leftover temp file from a crashed writer must not surface as an
	// entry or break reopening.
	junk := filepath.Join(dir, tmpDir, "put-9999-1.tve")
	if err := os.WriteFile(junk, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len counts tmp junk: %d", s.Len())
	}
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("reopen with tmp junk: %v", err)
	}
	k := FunctionKey("post-crash")
	if err := s2.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); !ok {
		t.Fatal("Put/Get after crash leftovers")
	}
}

func TestManifestValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, manifestName)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("manifest not created: %v", err)
	}
	// Reopen accepts the manifest it wrote.
	if _, err := Open(dir, nil); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	// A future manifest version refuses Open: we must not write into a
	// store whose rules we cannot read.
	data, _ := os.ReadFile(path)
	data[len(manifestMagic)] = 0x7F
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil || !isBadVersion(err) {
		t.Fatalf("future manifest: want bad-version error, got %v", err)
	}
	// A garbage manifest also refuses Open.
	if err := os.WriteFile(path, []byte("not a manifest"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, nil); err == nil {
		t.Fatal("garbage manifest: want error")
	}
}

func TestMaterialize(t *testing.T) {
	s, _ := openTestStore(t)
	e := testEntry()
	out := t.TempDir()
	if err := s.Materialize(out, e); err != nil {
		t.Fatal(err)
	}
	for _, a := range e.Artifacts {
		data, err := os.ReadFile(filepath.Join(out, a.Name))
		if err != nil || !bytes.Equal(data, a.Data) {
			t.Fatalf("materialized %s: %v", a.Name, err)
		}
	}
	// Unsafe names are refused, at encode time and at materialize time.
	evil := &Entry{Artifacts: []Artifact{{Name: "../escape", Data: []byte("x")}}}
	if err := MaterializeEntry(out, evil); err == nil {
		t.Fatal("materialize with path traversal name: want error")
	}
	if _, err := encodeEntry(evil); err == nil {
		t.Fatal("encode with path traversal name: want error")
	}
	if err := s.Put(FunctionKey("evil"), evil); err == nil {
		t.Fatal("Put with path traversal name: want error")
	}
}

func TestNilMetrics(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	k := FunctionKey("nil-metrics")
	if _, ok := s.Get(k); ok {
		t.Fatal("want miss")
	}
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("want hit")
	}
}
