package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/proof"
)

// Scrub metric names. store.scrub.quarantined is the one the operator
// alerts on: a nonzero rate means entries are rotting on disk.
const (
	MetricScrubScanned     = "store.scrub.scanned"
	MetricScrubVerified    = "store.scrub.verified"
	MetricScrubQuarantined = "store.scrub.quarantined"
	MetricScrubBadVersion  = "store.scrub.badversion"
	MetricScrubRounds      = "store.scrub.rounds"
)

// ScrubConfig shapes one scrub pass.
type ScrubConfig struct {
	// Fraction in [0,1] is the share of intact entries re-verified end
	// to end (materialize -> proof.CheckDir) on top of the decode and
	// CRC check every scanned entry gets. 0 scrubs structure only; 1
	// replays every certificate.
	Fraction float64
	// Verify overrides the end-to-end check (tests, custom policies);
	// nil uses VerifyEntry — the cmd/proofcheck core.
	Verify func(*Entry) error
}

// ScrubStats reports one scrub pass (or the running totals of a
// background scrubber round).
type ScrubStats struct {
	// Scanned entries were read and decode/CRC-checked.
	Scanned int
	// BadVersion entries carry a future format version: unreadable by
	// this binary but not damaged, so they are skipped, not quarantined.
	BadVersion int
	// Verified entries were additionally re-checked end to end.
	Verified int
	// Quarantined entries failed (corrupt encoding, CRC mismatch, or
	// certificate rejection) and were moved under quarantine/.
	Quarantined int
}

// Keys lists every entry key currently in the object tree, in
// deterministic (hex-lexicographic) order. Files with non-key names are
// ignored.
func (s *Store) Keys() []Key {
	var keys []Key
	_ = filepath.WalkDir(filepath.Join(s.dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, entrySuffix) {
			return nil
		}
		hx := strings.TrimSuffix(filepath.Base(path), entrySuffix)
		if k, kerr := KeyFromHex(hx); kerr == nil {
			keys = append(keys, k)
		}
		return nil
	})
	sort.Slice(keys, func(i, j int) bool { return keys[i].Hex() < keys[j].Hex() })
	return keys
}

// QuarantineLen counts quarantined entries.
func (s *Store) QuarantineLen() int {
	n := 0
	_ = filepath.WalkDir(filepath.Join(s.dir, quarantineDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, entrySuffix) {
			n++
		}
		return nil
	})
	return n
}

// Quarantine moves k's entry out of the object tree into quarantine/,
// recording why in a sidecar <key>.reason file. From this moment the
// key is a clean miss: the next Get re-validates and a fresh Put simply
// writes a new object. The damaged bytes are preserved (not deleted)
// for the operator's post-mortem.
func (s *Store) Quarantine(k Key, reason string) error {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	hx := k.Hex()
	if err := os.Rename(s.entryPath(k), filepath.Join(qdir, hx+entrySuffix)); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	os.Remove(s.touchPath(k))
	_ = os.WriteFile(filepath.Join(qdir, hx+reasonSuffix),
		[]byte(time.Now().UTC().Format(time.RFC3339)+" "+reason+"\n"), 0o644)
	s.metrics.Add(MetricScrubQuarantined, 1)
	return nil
}

// VerifyEntry re-checks one decoded entry end to end with the
// cmd/proofcheck core: the artifacts are materialized into a scratch
// directory with a single-row manifest and replayed by proof.CheckDir —
// DRAT traces by reverse unit propagation, models by re-evaluation,
// witnesses structurally. It returns nil only when every certificate
// verifies; the scrubber quarantines on anything else.
func VerifyEntry(e *Entry) error {
	dir, err := os.MkdirTemp("", "store-scrub-")
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	defer os.RemoveAll(dir)
	if err := MaterializeEntry(dir, e); err != nil {
		return err
	}
	if err := proof.WriteManifest(dir, &proof.Manifest{
		Schema: proof.SchemaStreaming,
		Functions: []proof.ManifestRow{{
			Name: e.Meta.Function, Class: e.Meta.Class, Certified: e.Meta.Certified,
		}},
	}); err != nil {
		return err
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		return err
	}
	if len(report.Rejections) > 0 {
		return fmt.Errorf("%d certificate rejections, first: %s",
			len(report.Rejections), report.Rejections[0])
	}
	return nil
}

// scrubKeys scans the given keys: every entry is re-read and
// decode/CRC-checked via Peek, a Fraction of the intact ones are
// re-verified end to end, and failures are quarantined. acc carries the
// fractional-verification accumulator across rounds so a long-running
// scrubber converges on exactly the configured fraction. Access times
// are never touched (Peek), so scrubbing cannot distort LRU order.
func (s *Store) scrubKeys(keys []Key, cfg ScrubConfig, acc *float64) ScrubStats {
	verify := cfg.Verify
	if verify == nil {
		verify = VerifyEntry
	}
	var st ScrubStats
	for _, k := range keys {
		e, err := s.Peek(k)
		switch {
		case os.IsNotExist(err):
			// Evicted or quarantined since the key list was taken.
			continue
		case err != nil && isBadVersion(err):
			st.Scanned++
			st.BadVersion++
			s.metrics.Add(MetricScrubBadVersion, 1)
			continue
		case err != nil:
			st.Scanned++
			if s.Quarantine(k, fmt.Sprintf("scrub: %v", err)) == nil {
				st.Quarantined++
			}
			continue
		}
		st.Scanned++
		*acc += cfg.Fraction
		if *acc >= 1 {
			*acc--
			st.Verified++
			if err := verify(e); err != nil {
				if s.Quarantine(k, fmt.Sprintf("scrub verify: %v", err)) == nil {
					st.Quarantined++
				}
			}
		}
	}
	s.metrics.Add(MetricScrubScanned, int64(st.Scanned))
	s.metrics.Add(MetricScrubVerified, int64(st.Verified))
	return st
}

// ScrubOnce scrubs every entry in the store in one pass — the offline
// operator mode behind `tvd -scrub-once` and the integrity half of
// `proofcheck -store -all`.
func (s *Store) ScrubOnce(cfg ScrubConfig) ScrubStats {
	var acc float64
	st := s.scrubKeys(s.Keys(), cfg, &acc)
	s.metrics.Add(MetricScrubRounds, 1)
	return st
}

// ScrubberConfig sizes the background scrubber.
type ScrubberConfig struct {
	ScrubConfig
	// Interval is the pause between rounds (default 1m). The scrubber
	// runs on its own goroutine and never blocks admission: validation
	// traffic sees at most the I/O contention of a paced read.
	Interval time.Duration
	// Sample is how many entries one round examines (default 32). The
	// cursor persists across rounds, so the scrubber circles the whole
	// key space regardless of store size.
	Sample int
}

// Scrubber is a paced background integrity pass over the store. Create
// with StartScrubber; Close stops the goroutine and waits for it.
type Scrubber struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartScrubber launches the background scrubber. Each round samples
// cfg.Sample entries (continuing round-robin from the previous round's
// cursor), decode/CRC-checks them, re-verifies cfg.Fraction of them end
// to end, quarantines failures, then sleeps cfg.Interval.
func (s *Store) StartScrubber(cfg ScrubberConfig) *Scrubber {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Minute
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 32
	}
	sc := &Scrubber{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(sc.done)
		cursor := ""
		var acc float64
		for {
			keys := s.Keys()
			batch := nextAfter(keys, cursor, cfg.Sample)
			if len(batch) > 0 {
				cursor = batch[len(batch)-1].Hex()
				s.scrubKeys(batch, cfg.ScrubConfig, &acc)
			} else {
				cursor = ""
			}
			s.metrics.Add(MetricScrubRounds, 1)
			select {
			case <-sc.stop:
				return
			case <-time.After(cfg.Interval):
			}
		}
	}()
	return sc
}

// Close stops the scrubber and waits for the in-flight round to finish.
// Idempotent.
func (sc *Scrubber) Close() {
	sc.once.Do(func() { close(sc.stop) })
	<-sc.done
}

// nextAfter returns up to n keys following cursor in hex order,
// wrapping to the start of the key space when the tail is shorter than
// n — the round-robin window the background scrubber walks.
func nextAfter(keys []Key, cursor string, n int) []Key {
	if len(keys) == 0 {
		return nil
	}
	start := sort.Search(len(keys), func(i int) bool { return keys[i].Hex() > cursor })
	if n >= len(keys) {
		n = len(keys)
	}
	out := make([]Key, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, keys[(start+i)%len(keys)])
	}
	return out
}
