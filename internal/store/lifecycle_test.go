package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// putN stores n distinct entries and returns their keys in put order.
func putN(t *testing.T, s *Store, n int) []Key {
	t.Helper()
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = FunctionKey(fmt.Sprintf("fn-%d", i))
		e := testEntry()
		e.Meta.Function = fmt.Sprintf("fn-%d", i)
		if err := s.Put(keys[i], e); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	return keys
}

// setAccess back-dates k's access-time sidecar.
func setAccess(t *testing.T, s *Store, k Key, at time.Time) {
	t.Helper()
	if err := os.Chtimes(s.touchPath(k), at, at); err != nil {
		t.Fatalf("Chtimes: %v", err)
	}
}

func TestGCEvictsLRUWholeEntries(t *testing.T) {
	s, m := openTestStore(t)
	keys := putN(t, s, 4)
	perEntry := s.Usage() / 4

	// Stagger access times: keys[0] coldest ... keys[3] hottest. The
	// filesystem clock may tick coarsely, so the times are set explicitly
	// rather than relying on Put order.
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		setAccess(t, s, k, base.Add(time.Duration(i)*time.Minute))
	}

	budget := perEntry*2 + perEntry/2 // room for exactly two entries
	res := s.GC(budget)
	if res.Evicted != 2 || res.BytesAfter > budget {
		t.Fatalf("GC: evicted=%d after=%d budget=%d", res.Evicted, res.BytesAfter, budget)
	}
	if res.BytesBefore != perEntry*4 || res.EvictedBytes != perEntry*2 {
		t.Fatalf("GC accounting: before=%d evictedBytes=%d perEntry=%d",
			res.BytesBefore, res.EvictedBytes, perEntry)
	}
	// The two coldest entries are gone, whole; the two hottest survive
	// intact and still decode.
	for i, k := range keys {
		_, ok := s.Get(k)
		if want := i >= 2; ok != want {
			t.Fatalf("after GC: Get(keys[%d]) = %t, want %t", i, ok, want)
		}
	}
	if m.Counter(MetricGCRuns) != 1 || m.Counter(MetricGCEvicted) != 2 ||
		m.Counter(MetricGCEvictedBytes) != perEntry*2 {
		t.Fatalf("gc metrics: runs=%d evicted=%d bytes=%d",
			m.Counter(MetricGCRuns), m.Counter(MetricGCEvicted), m.Counter(MetricGCEvictedBytes))
	}
}

func TestGetRefreshesLRUOrder(t *testing.T) {
	s, _ := openTestStore(t)
	keys := putN(t, s, 2)
	perEntry := s.Usage() / 2

	// keys[1] is the more recent... until a Get on keys[0] refreshes it.
	setAccess(t, s, keys[0], time.Now().Add(-2*time.Hour))
	setAccess(t, s, keys[1], time.Now().Add(-time.Hour))
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("Get(keys[0])")
	}
	res := s.GC(perEntry)
	if res.Evicted != 1 {
		t.Fatalf("GC evicted %d, want 1", res.Evicted)
	}
	if !s.Contains(keys[0]) || s.Contains(keys[1]) {
		t.Fatal("GC must evict the entry whose access time is oldest, counting the Get refresh")
	}
}

func TestPutOverflowTriggersGC(t *testing.T) {
	s, m := openTestStore(t)
	probe := FunctionKey("probe")
	if err := s.Put(probe, testEntry()); err != nil {
		t.Fatal(err)
	}
	perEntry := s.Usage()
	s.GC(0) // clear the probe

	s.SetMaxBytes(perEntry * 3)
	for i := 0; i < 8; i++ {
		k := FunctionKey(fmt.Sprintf("overflow-%d", i))
		if err := s.Put(k, testEntry()); err != nil {
			t.Fatal(err)
		}
		if u := s.Usage(); u > perEntry*3 {
			t.Fatalf("after Put %d: usage %d exceeds budget %d", i, u, perEntry*3)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3 under a 3-entry budget", s.Len())
	}
	if m.Counter(MetricGCRuns) == 0 {
		t.Fatal("overflow Puts must run GC")
	}
}

func TestGCReclaimsOrphanTouchFiles(t *testing.T) {
	s, _ := openTestStore(t)
	k := FunctionKey("orphan")
	if err := s.Put(k, testEntry()); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.entryPath(k)); err != nil {
		t.Fatal(err)
	}
	s.GC(1 << 40)
	if _, err := os.Stat(s.touchPath(k)); !os.IsNotExist(err) {
		t.Fatalf("orphan touch sidecar survived GC: %v", err)
	}
}

func TestScrubQuarantinesCorruptEntry(t *testing.T) {
	s, m := openTestStore(t)
	keys := putN(t, s, 3)
	// Flip a bit in the last artifact body of keys[1]: only the CRC can
	// catch it.
	corruptEntry(t, s, keys[1], func(b []byte) []byte {
		b[len(b)-1] ^= 0x01
		return b
	})

	st := s.ScrubOnce(ScrubConfig{})
	if st.Scanned != 3 || st.Quarantined != 1 || st.Verified != 0 {
		t.Fatalf("scrub: %+v", st)
	}
	// The quarantined key is a clean miss; the intact neighbors still hit.
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("quarantined entry must read as a miss")
	}
	if !s.Contains(keys[0]) || !s.Contains(keys[2]) {
		t.Fatal("scrub must not disturb intact entries")
	}
	if s.QuarantineLen() != 1 {
		t.Fatalf("QuarantineLen = %d, want 1", s.QuarantineLen())
	}
	// The damaged bytes and the reason sidecar are preserved for the
	// post-mortem.
	hx := keys[1].Hex()
	if _, err := os.Stat(filepath.Join(s.Dir(), quarantineDir, hx+entrySuffix)); err != nil {
		t.Fatalf("quarantined entry bytes missing: %v", err)
	}
	reason, err := os.ReadFile(filepath.Join(s.Dir(), quarantineDir, hx+reasonSuffix))
	if err != nil || !strings.Contains(string(reason), "scrub") {
		t.Fatalf("reason sidecar: %q, %v", reason, err)
	}
	if m.Counter(MetricScrubQuarantined) != 1 || m.Counter(MetricScrubScanned) != 3 {
		t.Fatalf("scrub metrics: quarantined=%d scanned=%d",
			m.Counter(MetricScrubQuarantined), m.Counter(MetricScrubScanned))
	}
	// A fresh Put re-populates the key as if it had never been damaged.
	if err := s.Put(keys[1], testEntry()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[1]); !ok {
		t.Fatal("re-Put after quarantine must hit")
	}
}

func TestScrubSkipsFutureVersions(t *testing.T) {
	s, m := openTestStore(t)
	keys := putN(t, s, 2)
	corruptEntry(t, s, keys[0], func(b []byte) []byte {
		b[len(entryMagic)] = 0x7F
		return b
	})
	st := s.ScrubOnce(ScrubConfig{})
	if st.BadVersion != 1 || st.Quarantined != 0 {
		t.Fatalf("scrub: %+v — future versions are skipped, never quarantined", st)
	}
	if s.QuarantineLen() != 0 {
		t.Fatal("future-version entry must stay in place")
	}
	if m.Counter(MetricScrubBadVersion) != 1 {
		t.Fatalf("badversion metric = %d", m.Counter(MetricScrubBadVersion))
	}
}

func TestScrubVerifyFractionAndOverride(t *testing.T) {
	s, _ := openTestStore(t)
	putN(t, s, 4)
	var verified []string
	st := s.ScrubOnce(ScrubConfig{
		Fraction: 0.5,
		Verify: func(e *Entry) error {
			verified = append(verified, e.Meta.Function)
			return nil
		},
	})
	if st.Verified != 2 || len(verified) != 2 {
		t.Fatalf("Fraction 0.5 over 4 entries: verified %d (%v), want 2", st.Verified, verified)
	}

	// A verify failure quarantines the intact-looking entry: rot that
	// only certificate replay can catch still gets pulled from service.
	st = s.ScrubOnce(ScrubConfig{
		Fraction: 1,
		Verify: func(e *Entry) error {
			if e.Meta.Function == "fn-2" {
				return errors.New("synthetic certificate rejection")
			}
			return nil
		},
	})
	if st.Quarantined != 1 {
		t.Fatalf("scrub with failing verify: %+v", st)
	}
	if s.Contains(FunctionKey("fn-2")) {
		t.Fatal("entry failing end-to-end verification must be quarantined")
	}
}

func TestScrubDoesNotTouchAccessTimes(t *testing.T) {
	s, _ := openTestStore(t)
	k := putN(t, s, 1)[0]
	old := time.Now().Add(-time.Hour)
	setAccess(t, s, k, old)
	s.ScrubOnce(ScrubConfig{Fraction: 1, Verify: func(*Entry) error { return nil }})
	info, err := os.Stat(s.touchPath(k))
	if err != nil {
		t.Fatal(err)
	}
	if info.ModTime().After(old.Add(time.Second)) {
		t.Fatalf("scrub refreshed the access time: %v", info.ModTime())
	}
}

func TestBackgroundScrubber(t *testing.T) {
	s, m := openTestStore(t)
	keys := putN(t, s, 5)
	corruptEntry(t, s, keys[3], func(b []byte) []byte {
		copy(b, "XXXX")
		return b
	})
	sc := s.StartScrubber(ScrubberConfig{
		ScrubConfig: ScrubConfig{Verify: func(*Entry) error { return nil }},
		Interval:    time.Millisecond,
		Sample:      2,
	})
	deadline := time.Now().Add(5 * time.Second)
	for s.QuarantineLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never quarantined the corrupt entry")
		}
		time.Sleep(time.Millisecond)
	}
	sc.Close()
	sc.Close() // idempotent
	if _, ok := s.Get(keys[3]); ok {
		t.Fatal("quarantined entry served as hit")
	}
	if m.Counter(MetricScrubRounds) == 0 {
		t.Fatal("rounds metric never bumped")
	}
	// The sampler's cursor wraps: with Sample 2 over 4 surviving keys,
	// enough rounds have run that every key was scanned at least once.
	if m.Counter(MetricScrubScanned) < 4 {
		t.Fatalf("scanned = %d, want the cursor to circle the key space", m.Counter(MetricScrubScanned))
	}
}

func TestNextAfterWraparound(t *testing.T) {
	s, _ := openTestStore(t)
	keys := putN(t, s, 5)
	sorted := s.Keys()
	if len(sorted) != 5 {
		t.Fatalf("Keys: %d", len(sorted))
	}
	// Windows of 2 starting after each cursor must walk the ring in hex
	// order with wraparound and no repeats within a window.
	win := nextAfter(sorted, sorted[3].Hex(), 3)
	want := []Key{sorted[4], sorted[0], sorted[1]}
	for i := range want {
		if win[i] != want[i] {
			t.Fatalf("nextAfter window[%d] = %s, want %s", i, win[i].Hex()[:8], want[i].Hex()[:8])
		}
	}
	if got := nextAfter(sorted, "", 99); len(got) != 5 {
		t.Fatalf("oversized window: %d keys, want all 5", len(got))
	}
	if nextAfter(nil, "", 4) != nil {
		t.Fatal("empty key space")
	}
	_ = keys
}

func TestUsageAndSetMaxBytes(t *testing.T) {
	s, _ := openTestStore(t)
	if s.Usage() != 0 || s.MaxBytes() != 0 {
		t.Fatal("fresh store must be empty and unbounded")
	}
	putN(t, s, 2)
	u := s.Usage()
	if u <= 0 {
		t.Fatalf("Usage = %d", u)
	}
	s.SetMaxBytes(u * 10)
	if s.MaxBytes() != u*10 {
		t.Fatalf("MaxBytes = %d", s.MaxBytes())
	}
	// The gauge initializes from the walk, so the next overflowing Put
	// GCs even though earlier Puts predate SetMaxBytes.
	s.SetMaxBytes(u)
	if err := s.Put(FunctionKey("one-more"), testEntry()); err != nil {
		t.Fatal(err)
	}
	if got := s.Usage(); got > u {
		t.Fatalf("usage %d exceeds budget %d after overflow Put", got, u)
	}
}

func TestQuarantineMetricsNil(t *testing.T) {
	// The whole lifecycle must run with a nil metrics registry.
	s, err := Open(t.TempDir(), (*telemetry.Metrics)(nil))
	if err != nil {
		t.Fatal(err)
	}
	keys := putN(t, s, 2)
	corruptEntry(t, s, keys[0], func(b []byte) []byte { return b[:3] })
	if st := s.ScrubOnce(ScrubConfig{}); st.Quarantined != 1 {
		t.Fatalf("scrub with nil metrics: %+v", st)
	}
	s.GC(0)
	if s.Len() != 0 {
		t.Fatal("GC with nil metrics")
	}
}
