package store

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GC metric names. store.gc.evicted_bytes is what capacity dashboards
// integrate; store.gc.wall is the pass-latency histogram.
const (
	MetricGCRuns         = "store.gc.runs"
	MetricGCEvicted      = "store.gc.evicted"
	MetricGCEvictedBytes = "store.gc.evicted_bytes"
	MetricGCWall         = "store.gc.wall"
)

// GCResult reports one eviction pass.
type GCResult struct {
	// BytesBefore/BytesAfter are the exact entry-payload totals around
	// the pass (BytesAfter <= maxBytes unless removals failed).
	BytesBefore int64
	BytesAfter  int64
	// Evicted counts whole entries dropped; EvictedBytes their payloads.
	Evicted      int
	EvictedBytes int64
}

// gcCandidate is one entry as the collector sees it.
type gcCandidate struct {
	path   string // entry file
	touch  string // access sidecar ("" when absent)
	size   int64
	access time.Time
}

// GC brings the store's total entry bytes under maxBytes by evicting
// whole entries in LRU order — least recently accessed first, where
// access time is the touch sidecar's mtime (falling back to the entry
// file's own mtime for entries that predate access tracking). Eviction
// is whole-entry by construction: a verdict either keeps its complete
// certificate set or disappears entirely, so everything the store
// serves stays independently re-checkable.
//
// GC never rewrites immutable objects — it only unlinks them — and is
// safe to run concurrently with Get/Put from any number of goroutines
// (concurrent passes serialize on an internal mutex). The walk is the
// authoritative usage measurement, so a pass also resynchronizes the
// approximate gauge behind Put's overflow check, including growth
// written by other processes.
func (s *Store) GC(maxBytes int64) GCResult {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	start := time.Now()

	var cands []gcCandidate
	var total int64
	root := filepath.Join(s.dir, objectsDir)
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		switch {
		case strings.HasSuffix(path, entrySuffix):
			info, ierr := d.Info()
			if ierr != nil {
				return nil
			}
			c := gcCandidate{path: path, size: info.Size(), access: info.ModTime()}
			touch := strings.TrimSuffix(path, entrySuffix) + touchSuffix
			if ti, terr := os.Stat(touch); terr == nil {
				c.touch = touch
				c.access = ti.ModTime()
			}
			total += c.size
			cands = append(cands, c)
		case strings.HasSuffix(path, touchSuffix):
			// Orphan sidecar (its entry was evicted or never landed):
			// reclaim it here rather than leaking it forever.
			if _, err := os.Stat(strings.TrimSuffix(path, touchSuffix) + entrySuffix); os.IsNotExist(err) {
				os.Remove(path)
			}
		}
		return nil
	})

	res := GCResult{BytesBefore: total, BytesAfter: total}
	if total > maxBytes {
		// Oldest access first; ties (same clock tick) break by path so
		// the eviction order is deterministic.
		sort.Slice(cands, func(i, j int) bool {
			if !cands[i].access.Equal(cands[j].access) {
				return cands[i].access.Before(cands[j].access)
			}
			return cands[i].path < cands[j].path
		})
		for _, c := range cands {
			if res.BytesAfter <= maxBytes {
				break
			}
			if err := os.Remove(c.path); err != nil {
				continue
			}
			if c.touch != "" {
				os.Remove(c.touch)
			}
			res.Evicted++
			res.EvictedBytes += c.size
			res.BytesAfter -= c.size
		}
	}
	s.curBytes.Store(res.BytesAfter)

	s.metrics.Add(MetricGCRuns, 1)
	s.metrics.Add(MetricGCEvicted, int64(res.Evicted))
	s.metrics.Add(MetricGCEvictedBytes, res.EvictedBytes)
	s.metrics.Observe(MetricGCWall, time.Since(start))
	return res
}
