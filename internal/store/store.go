// Package store is the persistent half of validation-as-a-service: a
// disk-backed, content-addressed result store keyed by the same
// alpha-invariant SHA-256 hashes the VC cache uses (term.CanonKey, which
// smt.CanonKey aliases). Each entry carries a verdict *with* the
// certificate artifacts that make it independently re-checkable — the
// schema-2 certs stream, the binary DRAT trace, the bisimulation witness,
// and a per-function term segment — so a cross-run hit is something
// cmd/proofcheck can verify, never something the daemon merely believes.
//
// Durability and trust rules:
//
//   - Writes are crash-safe: entries land under tmp/ first and are
//     renamed into place; the store manifest is fsynced on creation.
//     A crashed writer leaves at worst an ignorable temp file.
//   - The on-disk format is explicitly versioned (4-byte magic plus a
//     version byte on every entry and on the manifest) with a
//     per-version decoder table, so a store written by an old binary
//     stays loadable after the format moves on.
//   - Corruption never propagates: a truncated entry, a bit-flipped
//     artifact body (per-artifact CRC32), or an unknown future version
//     byte all surface as a clean miss — the caller re-validates — with
//     a store.corrupt / store.badversion metric bump. The store never
//     trusts a damaged verdict and never panics on one.
//
// The package deliberately imports only the term layer, the telemetry
// registry, and the standard library — never the SAT/SMT solvers — so
// cmd/proofcheck can link it for store spot-checks without growing the
// trusted base (see the import-constraint test in internal/proof).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/telemetry"
	"repro/internal/term"
)

// Key is the 32-byte content address of an entry — the same SHA-256
// canonical-hash type the VC cache is keyed by.
type Key = term.CanonKey

// KeyFromHex parses a 64-digit lowercase hex content address.
func KeyFromHex(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("store: bad key %q: %v", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q: got %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// FunctionKey derives the content address of a function-level validation
// job from its semantic inputs (source text, options fingerprint, ...).
// Parts are length-prefixed before hashing so no two distinct part lists
// collide by concatenation.
func FunctionKey(parts ...string) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Metric names bumped by the store. store.corrupt and store.badversion
// are the corruption-handling telemetry the operator alerts on.
const (
	MetricHit        = "store.hit"
	MetricMiss       = "store.miss"
	MetricPut        = "store.put"
	MetricPutBytes   = "store.put_bytes"
	MetricCorrupt    = "store.corrupt"
	MetricBadVersion = "store.badversion"
)

// Meta is the verdict half of an entry: what the validator concluded,
// without the evidence.
type Meta struct {
	Function string `json:"function"`
	Class    string `json:"class"`
	Err      string `json:"err,omitempty"`
	CodeSize int    `json:"code_size"`
	Points   int    `json:"points,omitempty"`
	// Certified reports that the entry carries a verified-witness
	// artifact set (Succeeded rows only).
	Certified bool `json:"certified"`
	// CreatedUnixNS is the wall-clock time the entry was recorded.
	CreatedUnixNS int64 `json:"created_unix_ns"`
}

// Artifact is one named certificate file carried by an entry. Names are
// the exact file names a proof directory uses (<base>.certs.json,
// <base>.drat, <base>.witness.json, <base>.terms.jsonl), so Materialize
// is a plain write-out.
type Artifact struct {
	Name string
	Data []byte
}

// Entry is one stored verdict with its certificates.
type Entry struct {
	Meta      Meta
	Artifacts []Artifact
}

// Artifact returns the named artifact's bytes (nil when absent).
func (e *Entry) Artifact(name string) []byte {
	for _, a := range e.Artifacts {
		if a.Name == name {
			return a.Data
		}
	}
	return nil
}

// Store is a handle on one store directory. It is safe for concurrent
// use by any number of goroutines (and, for reads, processes): Get reads
// immutable content-addressed files, Put publishes atomically via
// rename.
type Store struct {
	dir     string
	metrics *telemetry.Metrics
	tmpSeq  atomic.Uint64
}

// Dir layout.
const (
	manifestName = "MANIFEST.tvs"
	objectsDir   = "objects"
	tmpDir       = "tmp"
	entrySuffix  = ".tve"
)

// Open opens (creating if needed) the store at dir. The metrics registry
// receives the store.* counters; nil drops them.
func Open(dir string, m *telemetry.Metrics) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, tmpDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
	}
	s := &Store{dir: dir, metrics: m}
	if err := s.ensureManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store directory path.
func (s *Store) Dir() string { return s.dir }

// entryPath fans entries out under a two-hex-digit prefix directory so
// one flat directory never holds the whole corpus.
func (s *Store) entryPath(k Key) string {
	hx := k.Hex()
	return filepath.Join(s.dir, objectsDir, hx[:2], hx+entrySuffix)
}

// Get returns the entry stored under k. Any defect — missing file,
// truncation, checksum mismatch, unknown future format version — is a
// clean miss: the caller re-validates, and the corresponding store.*
// counter records why.
func (s *Store) Get(k Key) (*Entry, bool) {
	data, err := os.ReadFile(s.entryPath(k))
	if err != nil {
		s.metrics.Add(MetricMiss, 1)
		return nil, false
	}
	e, err := decodeEntry(data)
	if err != nil {
		if isBadVersion(err) {
			s.metrics.Add(MetricBadVersion, 1)
		} else {
			s.metrics.Add(MetricCorrupt, 1)
		}
		s.metrics.Add(MetricMiss, 1)
		return nil, false
	}
	s.metrics.Add(MetricHit, 1)
	return e, true
}

// Contains reports whether a well-formed entry exists under k, without
// touching the hit/miss counters.
func (s *Store) Contains(k Key) bool {
	data, err := os.ReadFile(s.entryPath(k))
	if err != nil {
		return false
	}
	_, err = decodeEntry(data)
	return err == nil
}

// Put stores e under k, atomically: the encoded entry is written to a
// private temp file and renamed into place, so concurrent readers see
// either the old entry or the new one, never a torn write. A crash
// mid-Put leaves only an ignorable temp file.
func (s *Store) Put(k Key, e *Entry) error {
	data, err := encodeEntry(e)
	if err != nil {
		return err
	}
	dst := s.entryPath(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	tmp := filepath.Join(s.dir, tmpDir,
		fmt.Sprintf("put-%d-%d%s", os.Getpid(), s.tmpSeq.Add(1), entrySuffix))
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %v", err)
	}
	s.metrics.Add(MetricPut, 1)
	s.metrics.Add(MetricPutBytes, int64(len(data)))
	return nil
}

// Len walks the object tree and counts entry files (well-formed or not;
// it is a size gauge, not an integrity pass).
func (s *Store) Len() int {
	n := 0
	_ = filepath.WalkDir(filepath.Join(s.dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, entrySuffix) {
			n++
		}
		return nil
	})
	return n
}

// Materialize writes the entry's artifacts into dir — the store-backed
// proof-directory path: together with the artifacts of the other served
// functions and a MANIFEST.json, the result is a directory
// cmd/proofcheck verifies exactly like a freshly emitted one.
func (s *Store) Materialize(dir string, e *Entry) error {
	return MaterializeEntry(dir, e)
}

// MaterializeEntry is the Store-independent form of Materialize, usable
// on an Entry obtained elsewhere.
func MaterializeEntry(dir string, e *Entry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	for _, a := range e.Artifacts {
		if !safeArtifactName(a.Name) {
			return fmt.Errorf("store: refusing to materialize artifact with unsafe name %q", a.Name)
		}
		if err := os.WriteFile(filepath.Join(dir, a.Name), a.Data, 0o644); err != nil {
			return fmt.Errorf("store: %v", err)
		}
	}
	return nil
}

// safeArtifactName rejects names that could escape the target directory.
// Entry artifacts are named by this package's own writers, so anything
// else is corruption or tampering.
func safeArtifactName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

// ensureManifest validates an existing store manifest or creates one:
// written to a temp file, fsynced, renamed into place, and the directory
// fsynced — the durability point of store creation.
func (s *Store) ensureManifest() error {
	path := filepath.Join(s.dir, manifestName)
	if data, err := os.ReadFile(path); err == nil {
		return checkManifest(data)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: %v", err)
	}
	data := encodeManifest()
	tmp := filepath.Join(s.dir, tmpDir, fmt.Sprintf("manifest-%d", os.Getpid()))
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %v", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
