// Package store is the persistent half of validation-as-a-service: a
// disk-backed, content-addressed result store keyed by the same
// alpha-invariant SHA-256 hashes the VC cache uses (term.CanonKey, which
// smt.CanonKey aliases). Each entry carries a verdict *with* the
// certificate artifacts that make it independently re-checkable — the
// schema-2 certs stream, the binary DRAT trace, the bisimulation witness,
// and a per-function term segment — so a cross-run hit is something
// cmd/proofcheck can verify, never something the daemon merely believes.
//
// Durability and trust rules:
//
//   - Writes are crash-safe: entries land under tmp/ first, are fsynced,
//     and are renamed into place with the prefix directory fsynced after
//     the rename; the store manifest is fsynced on creation. A crashed
//     writer leaves at worst an ignorable temp file, and a power cut
//     never surfaces a torn entry.
//   - The on-disk format is explicitly versioned (4-byte magic plus a
//     version byte on every entry and on the manifest) with a
//     per-version decoder table, so a store written by an old binary
//     stays loadable after the format moves on.
//   - Corruption never propagates: a truncated entry, a bit-flipped
//     artifact body (per-artifact CRC32), or an unknown future version
//     byte all surface as a clean miss — the caller re-validates — with
//     a store.corrupt / store.badversion metric bump. The store never
//     trusts a damaged verdict and never panics on one.
//   - Lifecycle preserves re-checkability: the byte-budgeted GC (gc.go)
//     evicts whole entries in LRU order by access time — a certificate
//     set is dropped entirely or kept entirely, never thinned — and the
//     background scrubber (scrub.go) re-decodes, CRC-checks, and
//     re-verifies entries, quarantining failures under quarantine/
//     where they read as clean misses.
//
// The package deliberately imports only the certificate layer
// (internal/proof, for scrub re-verification), the term layer, the
// telemetry registry, and the standard library — never the SAT/SMT
// solvers — so cmd/proofcheck can link it for store spot-checks without
// growing the trusted base (see the import-constraint test in
// internal/proof).
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/term"
)

// Key is the 32-byte content address of an entry — the same SHA-256
// canonical-hash type the VC cache is keyed by.
type Key = term.CanonKey

// KeyFromHex parses a 64-digit lowercase hex content address.
func KeyFromHex(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil {
		return k, fmt.Errorf("store: bad key %q: %v", s, err)
	}
	if len(b) != len(k) {
		return k, fmt.Errorf("store: bad key %q: got %d bytes, want %d", s, len(b), len(k))
	}
	copy(k[:], b)
	return k, nil
}

// FunctionKey derives the content address of a function-level validation
// job from its semantic inputs (source text, options fingerprint, ...).
// Parts are length-prefixed before hashing so no two distinct part lists
// collide by concatenation.
func FunctionKey(parts ...string) Key {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Metric names bumped by the store. store.corrupt and store.badversion
// are the corruption-handling telemetry the operator alerts on.
const (
	MetricHit        = "store.hit"
	MetricMiss       = "store.miss"
	MetricPut        = "store.put"
	MetricPutBytes   = "store.put_bytes"
	MetricCorrupt    = "store.corrupt"
	MetricBadVersion = "store.badversion"
)

// Meta is the verdict half of an entry: what the validator concluded,
// without the evidence.
type Meta struct {
	Function string `json:"function"`
	Class    string `json:"class"`
	Err      string `json:"err,omitempty"`
	CodeSize int    `json:"code_size"`
	Points   int    `json:"points,omitempty"`
	// Certified reports that the entry carries a verified-witness
	// artifact set (Succeeded rows only).
	Certified bool `json:"certified"`
	// CreatedUnixNS is the wall-clock time the entry was recorded.
	CreatedUnixNS int64 `json:"created_unix_ns"`
}

// Artifact is one named certificate file carried by an entry. Names are
// the exact file names a proof directory uses (<base>.certs.json,
// <base>.drat, <base>.witness.json, <base>.terms.jsonl), so Materialize
// is a plain write-out.
type Artifact struct {
	Name string
	Data []byte
}

// Entry is one stored verdict with its certificates.
type Entry struct {
	Meta      Meta
	Artifacts []Artifact
}

// Artifact returns the named artifact's bytes (nil when absent).
func (e *Entry) Artifact(name string) []byte {
	for _, a := range e.Artifacts {
		if a.Name == name {
			return a.Data
		}
	}
	return nil
}

// Store is a handle on one store directory. It is safe for concurrent
// use by any number of goroutines (and, for reads, processes): Get reads
// immutable content-addressed files, Put publishes atomically via
// rename.
type Store struct {
	dir     string
	metrics *telemetry.Metrics
	tmpSeq  atomic.Uint64

	// maxBytes, when > 0, is the byte budget Put enforces by running a
	// synchronous LRU GC on overflow; curBytes is the approximate usage
	// gauge behind the overflow check (GC re-walks for the exact total).
	maxBytes atomic.Int64
	curBytes atomic.Int64
	// gcMu serializes GC passes (Put-overflow, periodic, explicit).
	gcMu sync.Mutex
}

// Dir layout. Entry files are immutable once renamed into place; the
// per-entry touch file is the one mutable sidecar — a zero-byte file
// whose mtime is the entry's last access time, so LRU eviction never
// rewrites (or even reads) the content-addressed objects themselves.
// Quarantined entries move whole into quarantine/ and are clean misses.
const (
	manifestName  = "MANIFEST.tvs"
	objectsDir    = "objects"
	tmpDir        = "tmp"
	quarantineDir = "quarantine"
	entrySuffix   = ".tve"
	touchSuffix   = ".tvt"
	reasonSuffix  = ".reason"
)

// Open opens (creating if needed) the store at dir. The metrics registry
// receives the store.* counters; nil drops them.
func Open(dir string, m *telemetry.Metrics) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, objectsDir), filepath.Join(dir, tmpDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %v", err)
		}
	}
	s := &Store{dir: dir, metrics: m}
	if err := s.ensureManifest(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store directory path.
func (s *Store) Dir() string { return s.dir }

// entryPath fans entries out under a two-hex-digit prefix directory so
// one flat directory never holds the whole corpus.
func (s *Store) entryPath(k Key) string {
	hx := k.Hex()
	return filepath.Join(s.dir, objectsDir, hx[:2], hx+entrySuffix)
}

// touchPath is the entry's access-time sidecar (see the layout comment).
func (s *Store) touchPath(k Key) string {
	hx := k.Hex()
	return filepath.Join(s.dir, objectsDir, hx[:2], hx+touchSuffix)
}

// touch stamps k's access time to now, best effort: a failed touch
// costs LRU accuracy, never correctness.
func (s *Store) touch(k Key) {
	p := s.touchPath(k)
	now := time.Now()
	if err := os.Chtimes(p, now, now); err != nil {
		_ = os.WriteFile(p, nil, 0o644)
	}
}

// Get returns the entry stored under k. Any defect — missing file,
// truncation, checksum mismatch, unknown future format version — is a
// clean miss: the caller re-validates, and the corresponding store.*
// counter records why. A hit refreshes the entry's access time (the
// LRU clock GC evicts by).
func (s *Store) Get(k Key) (*Entry, bool) {
	e, err := s.Peek(k)
	if err != nil {
		if !os.IsNotExist(err) {
			if isBadVersion(err) {
				s.metrics.Add(MetricBadVersion, 1)
			} else {
				s.metrics.Add(MetricCorrupt, 1)
			}
		}
		s.metrics.Add(MetricMiss, 1)
		return nil, false
	}
	s.touch(k)
	s.metrics.Add(MetricHit, 1)
	return e, true
}

// Peek reads and decodes the entry under k without bumping hit/miss
// counters and without refreshing its access time — the read the
// scrubber and offline verification use, so integrity passes never
// distort the LRU order. A missing entry surfaces as os.IsNotExist.
func (s *Store) Peek(k Key) (*Entry, error) {
	data, err := os.ReadFile(s.entryPath(k))
	if err != nil {
		return nil, err
	}
	return decodeEntry(data)
}

// Contains reports whether a well-formed entry exists under k, without
// touching the hit/miss counters or the access time.
func (s *Store) Contains(k Key) bool {
	_, err := s.Peek(k)
	return err == nil
}

// Put stores e under k, atomically and durably: the encoded entry is
// written to a private temp file, fsynced, and renamed into place, and
// the prefix directory is fsynced after the rename — so concurrent
// readers see either the old entry or the new one, never a torn write,
// and a power cut after Put returns cannot surface a torn entry (the
// rename is only durable once both the file contents and the directory
// entry are). A crash mid-Put leaves only an ignorable temp file.
//
// When a byte budget is configured (SetMaxBytes) and this Put pushes
// usage past it, Put runs a synchronous LRU GC before returning, so the
// store never stays over budget between Puts.
func (s *Store) Put(k Key, e *Entry) error {
	data, err := encodeEntry(e)
	if err != nil {
		return err
	}
	dst := s.entryPath(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	tmp := filepath.Join(s.dir, tmpDir,
		fmt.Sprintf("put-%d-%d%s", os.Getpid(), s.tmpSeq.Add(1), entrySuffix))
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp, dst); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %v", err)
	}
	syncDir(filepath.Dir(dst))
	s.touch(k)
	s.metrics.Add(MetricPut, 1)
	s.metrics.Add(MetricPutBytes, int64(len(data)))
	if max := s.maxBytes.Load(); max > 0 && s.curBytes.Add(int64(len(data))) > max {
		s.GC(max)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it before returning —
// the "contents durable before the rename publishes them" half of the
// crash-safety contract.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a just-renamed entry survives a power
// cut. Best effort: filesystems that cannot sync directories still get
// the file-content sync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// SetMaxBytes configures the store's byte budget: the total size of
// entry payloads Put keeps the store under (0 disables the bound). The
// current usage gauge is initialized by walking the object tree once.
func (s *Store) SetMaxBytes(n int64) {
	s.maxBytes.Store(n)
	if n > 0 {
		s.curBytes.Store(s.Usage())
	}
}

// MaxBytes returns the configured byte budget (0 = unbounded).
func (s *Store) MaxBytes() int64 { return s.maxBytes.Load() }

// Usage walks the object tree and sums entry payload sizes in bytes.
// Touch sidecars are zero bytes and do not count against the budget.
func (s *Store) Usage() int64 {
	var total int64
	_ = filepath.WalkDir(filepath.Join(s.dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, entrySuffix) {
			if info, err := d.Info(); err == nil {
				total += info.Size()
			}
		}
		return nil
	})
	return total
}

// Len walks the object tree and counts entry files (well-formed or not;
// it is a size gauge, not an integrity pass).
func (s *Store) Len() int {
	n := 0
	_ = filepath.WalkDir(filepath.Join(s.dir, objectsDir), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, entrySuffix) {
			n++
		}
		return nil
	})
	return n
}

// Materialize writes the entry's artifacts into dir — the store-backed
// proof-directory path: together with the artifacts of the other served
// functions and a MANIFEST.json, the result is a directory
// cmd/proofcheck verifies exactly like a freshly emitted one.
func (s *Store) Materialize(dir string, e *Entry) error {
	return MaterializeEntry(dir, e)
}

// MaterializeEntry is the Store-independent form of Materialize, usable
// on an Entry obtained elsewhere.
func MaterializeEntry(dir string, e *Entry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %v", err)
	}
	for _, a := range e.Artifacts {
		if !safeArtifactName(a.Name) {
			return fmt.Errorf("store: refusing to materialize artifact with unsafe name %q", a.Name)
		}
		if err := os.WriteFile(filepath.Join(dir, a.Name), a.Data, 0o644); err != nil {
			return fmt.Errorf("store: %v", err)
		}
	}
	return nil
}

// safeArtifactName rejects names that could escape the target directory.
// Entry artifacts are named by this package's own writers, so anything
// else is corruption or tampering.
func safeArtifactName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

// ensureManifest validates an existing store manifest or creates one:
// written to a temp file, fsynced, renamed into place, and the directory
// fsynced — the durability point of store creation.
func (s *Store) ensureManifest() error {
	path := filepath.Join(s.dir, manifestName)
	if data, err := os.ReadFile(path); err == nil {
		return checkManifest(data)
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("store: %v", err)
	}
	data := encodeManifest()
	tmp := filepath.Join(s.dir, tmpDir, fmt.Sprintf("manifest-%d", os.Getpid()))
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %v", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %v", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
