// Package imp implements a small imperative while-language — a second,
// entirely different source language used to demonstrate that the KEQ
// checker in internal/core is genuinely language-parametric (the paper's
// headline claim): the same checker that validates LLVM→x86 instruction
// selection validates the IMP→stack-machine compiler in this package,
// with no changes.
//
// Syntax (one statement per line):
//
//	x := <expr>
//	if <expr> { ... } else { ... }
//	while <expr> { ... }
//	return <expr>
//
// Expressions: integer literals, variables, and binary operators
// + - * & | ^ < (unsigned) == over 32-bit values; comparisons yield 0/1.
package imp

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is an expression tree node.
type Expr struct {
	Op   string // "" for leaf; else "+", "-", "*", "&", "|", "^", "<", "=="
	Var  string // leaf variable
	Lit  uint32 // leaf literal
	IsIt bool   // leaf is a literal
	L, R *Expr
}

// Lit builds a literal expression.
func Lit(v uint32) *Expr { return &Expr{IsIt: true, Lit: v} }

// Var builds a variable reference.
func Var(name string) *Expr { return &Expr{Var: name} }

// Bin builds a binary expression.
func Bin(op string, l, r *Expr) *Expr { return &Expr{Op: op, L: l, R: r} }

func (e *Expr) String() string {
	switch {
	case e.IsIt:
		return strconv.FormatUint(uint64(e.Lit), 10)
	case e.Op == "":
		return e.Var
	}
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// StmtKind discriminates statements.
type StmtKind uint8

// Statement kinds.
const (
	SAssign StmtKind = iota
	SIf
	SWhile
	SReturn
)

// Stmt is a statement node. While statements carry a stable ID used as
// the loop-head cut location.
type Stmt struct {
	Kind   StmtKind
	Var    string
	E      *Expr
	Then   []*Stmt
	Else   []*Stmt
	Body   []*Stmt
	LoopID int
}

// Program is a function: named inputs and a statement list ending (on
// every path) in return.
type Program struct {
	Inputs []string
	Body   []*Stmt
	nLoops int
}

// NumLoops returns the number of while statements.
func (p *Program) NumLoops() int { return p.nLoops }

// Vars returns all variable names (inputs and assigned), sorted.
func (p *Program) Vars() []string {
	set := map[string]bool{}
	for _, in := range p.Inputs {
		set[in] = true
	}
	var walk func(ss []*Stmt)
	walk = func(ss []*Stmt) {
		for _, s := range ss {
			if s.Kind == SAssign {
				set[s.Var] = true
			}
			walk(s.Then)
			walk(s.Else)
			walk(s.Body)
		}
	}
	walk(p.Body)
	var out []string
	for v := range set {
		out = append(out, v)
	}
	sortStrings(out)
	return out
}

func sortStrings(xs []string) {
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[j] < xs[i] {
				xs[i], xs[j] = xs[j], xs[i]
			}
		}
	}
}

// Parse parses a program. The first line must be "input x, y, ...", or
// "input" for none.
func Parse(src string) (*Program, error) {
	lines := []string{}
	for _, l := range strings.Split(src, "\n") {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		lines = append(lines, l)
	}
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "input") {
		return nil, fmt.Errorf("imp: program must start with an input line")
	}
	p := &Program{}
	rest := strings.TrimSpace(strings.TrimPrefix(lines[0], "input"))
	if rest != "" {
		for _, v := range strings.Split(rest, ",") {
			p.Inputs = append(p.Inputs, strings.TrimSpace(v))
		}
	}
	body, pos, err := p.parseBlock(lines, 1)
	if err != nil {
		return nil, err
	}
	if pos != len(lines) {
		return nil, fmt.Errorf("imp: trailing input at line %d: %q", pos+1, lines[pos])
	}
	p.Body = body
	return p, nil
}

func (p *Program) parseBlock(lines []string, pos int) ([]*Stmt, int, error) {
	var out []*Stmt
	for pos < len(lines) {
		l := lines[pos]
		switch {
		case l == "}":
			return out, pos, nil
		case strings.HasPrefix(l, "} else {"):
			return out, pos, nil
		case strings.HasPrefix(l, "return "):
			e, err := parseExpr(strings.TrimPrefix(l, "return "))
			if err != nil {
				return nil, 0, err
			}
			out = append(out, &Stmt{Kind: SReturn, E: e})
			pos++
		case strings.HasPrefix(l, "if ") && strings.HasSuffix(l, "{"):
			cond, err := parseExpr(strings.TrimSuffix(strings.TrimPrefix(l, "if "), "{"))
			if err != nil {
				return nil, 0, err
			}
			thenB, p2, err := p.parseBlock(lines, pos+1)
			if err != nil {
				return nil, 0, err
			}
			st := &Stmt{Kind: SIf, E: cond, Then: thenB}
			if p2 < len(lines) && lines[p2] == "} else {" {
				elseB, p3, err := p.parseBlock(lines, p2+1)
				if err != nil {
					return nil, 0, err
				}
				st.Else = elseB
				p2 = p3
			}
			if p2 >= len(lines) || lines[p2] != "}" {
				return nil, 0, fmt.Errorf("imp: unterminated if")
			}
			out = append(out, st)
			pos = p2 + 1
		case strings.HasPrefix(l, "while ") && strings.HasSuffix(l, "{"):
			cond, err := parseExpr(strings.TrimSuffix(strings.TrimPrefix(l, "while "), "{"))
			if err != nil {
				return nil, 0, err
			}
			body, p2, err := p.parseBlock(lines, pos+1)
			if err != nil {
				return nil, 0, err
			}
			if p2 >= len(lines) || lines[p2] != "}" {
				return nil, 0, fmt.Errorf("imp: unterminated while")
			}
			p.nLoops++
			out = append(out, &Stmt{Kind: SWhile, E: cond, Body: body, LoopID: p.nLoops})
			pos = p2 + 1
		case strings.Contains(l, ":="):
			parts := strings.SplitN(l, ":=", 2)
			e, err := parseExpr(parts[1])
			if err != nil {
				return nil, 0, err
			}
			out = append(out, &Stmt{Kind: SAssign, Var: strings.TrimSpace(parts[0]), E: e})
			pos++
		default:
			return nil, 0, fmt.Errorf("imp: cannot parse line %q", l)
		}
	}
	return out, pos, nil
}

// parseExpr parses fully parenthesized binary expressions plus bare
// leaves: "(a + (b * 2))", "x", "7".
func parseExpr(s string) (*Expr, error) {
	s = strings.TrimSpace(s)
	e, rest, err := parseExprAt(s)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("imp: trailing expression input %q", rest)
	}
	return e, nil
}

func parseExprAt(s string) (*Expr, string, error) {
	s = strings.TrimLeft(s, " ")
	if s == "" {
		return nil, "", fmt.Errorf("imp: empty expression")
	}
	if s[0] == '(' {
		l, rest, err := parseExprAt(s[1:])
		if err != nil {
			return nil, "", err
		}
		rest = strings.TrimLeft(rest, " ")
		var op string
		for _, cand := range []string{"==", "+", "-", "*", "&", "|", "^", "<"} {
			if strings.HasPrefix(rest, cand) {
				op = cand
				break
			}
		}
		if op == "" {
			return nil, "", fmt.Errorf("imp: expected operator at %q", rest)
		}
		r, rest2, err := parseExprAt(rest[len(op):])
		if err != nil {
			return nil, "", err
		}
		rest2 = strings.TrimLeft(rest2, " ")
		if !strings.HasPrefix(rest2, ")") {
			return nil, "", fmt.Errorf("imp: expected ')' at %q", rest2)
		}
		return Bin(op, l, r), rest2[1:], nil
	}
	// Leaf: literal or identifier.
	i := 0
	for i < len(s) && s[i] != ' ' && s[i] != ')' && !strings.ContainsRune("+-*&|^<=", rune(s[i])) {
		i++
	}
	tok := s[:i]
	if tok == "" {
		return nil, "", fmt.Errorf("imp: bad expression at %q", s)
	}
	if tok[0] >= '0' && tok[0] <= '9' {
		v, err := strconv.ParseUint(tok, 10, 32)
		if err != nil {
			return nil, "", fmt.Errorf("imp: bad literal %q", tok)
		}
		return Lit(uint32(v)), s[i:], nil
	}
	return Var(tok), s[i:], nil
}

// Eval runs the program concretely on the given inputs.
func Eval(p *Program, inputs map[string]uint32) (uint32, error) {
	env := make(map[string]uint32, len(inputs))
	for k, v := range inputs {
		env[k] = v
	}
	ret, done, err := evalBlock(p.Body, env, 0)
	if err != nil {
		return 0, err
	}
	if !done {
		return 0, nil // implicit `return 0`, matching the flattened CFG
	}
	return ret, nil
}

func evalBlock(ss []*Stmt, env map[string]uint32, depth int) (uint32, bool, error) {
	if depth > 1<<20 {
		return 0, false, fmt.Errorf("imp: step budget exhausted")
	}
	for _, s := range ss {
		switch s.Kind {
		case SAssign:
			env[s.Var] = evalExpr(s.E, env)
		case SReturn:
			return evalExpr(s.E, env), true, nil
		case SIf:
			var branch []*Stmt
			if evalExpr(s.E, env) != 0 {
				branch = s.Then
			} else {
				branch = s.Else
			}
			ret, done, err := evalBlock(branch, env, depth+1)
			if err != nil || done {
				return ret, done, err
			}
		case SWhile:
			for i := 0; evalExpr(s.E, env) != 0; i++ {
				if i > 1<<20 {
					return 0, false, fmt.Errorf("imp: loop budget exhausted")
				}
				ret, done, err := evalBlock(s.Body, env, depth+1)
				if err != nil || done {
					return ret, done, err
				}
			}
		}
	}
	return 0, false, nil
}

func evalExpr(e *Expr, env map[string]uint32) uint32 {
	switch {
	case e.IsIt:
		return e.Lit
	case e.Op == "":
		return env[e.Var]
	}
	l := evalExpr(e.L, env)
	r := evalExpr(e.R, env)
	switch e.Op {
	case "+":
		return l + r
	case "-":
		return l - r
	case "*":
		return l * r
	case "&":
		return l & r
	case "|":
		return l | r
	case "^":
		return l ^ r
	case "<":
		if l < r {
			return 1
		}
		return 0
	case "==":
		if l == r {
			return 1
		}
		return 0
	}
	panic("imp: bad operator " + e.Op)
}
