package imp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/smt"
)

func parse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseNestedStructure(t *testing.T) {
	p := parse(t, `
input a
x := 0
if (a < 10) {
  if (a < 5) {
    x := 1
  } else {
    x := 2
  }
}
while (x < a) {
  x := (x + 3)
}
return x
`)
	if p.NumLoops() != 1 {
		t.Errorf("loops = %d", p.NumLoops())
	}
	vars := p.Vars()
	if strings.Join(vars, ",") != "a,x" {
		t.Errorf("vars = %v", vars)
	}
	got, err := Eval(p, map[string]uint32{"a": 7})
	if err != nil {
		t.Fatal(err)
	}
	// a=7: x=1 (7<10, 7>=5 → else → x=2... wait 7<5 false → x=2); then
	// while 2<7: 2→5→8; 8<7 false → 8.
	if got != 8 {
		t.Errorf("Eval = %d, want 8", got)
	}
}

func TestImplicitReturnZero(t *testing.T) {
	p := parse(t, "input a\nx := (a + 1)")
	got, err := Eval(p, map[string]uint32{"a": 5})
	if err != nil || got != 0 {
		t.Errorf("implicit return: %d, %v", got, err)
	}
}

func TestFlattenLabels(t *testing.T) {
	p := parse(t, `
input n
i := 0
while (i < n) {
  i := (i + 1)
}
while (i < 100) {
  i := (i + 2)
}
return i
`)
	blocks := Flatten(p)
	labels := map[string]bool{}
	for _, b := range blocks {
		labels[b.Label] = true
	}
	for _, want := range []string{"entry", "loop:1", "loop:2"} {
		if !labels[want] {
			t.Errorf("missing block %q in %v", want, labels)
		}
	}
	if locs := LoopLocs(p); len(locs) != 2 || locs[0] != "loop:1" {
		t.Errorf("LoopLocs = %v", locs)
	}
}

func TestEvalWrapsAt32Bits(t *testing.T) {
	p := parse(t, "input a\nreturn (a * a)")
	got, err := Eval(p, map[string]uint32{"a": 0xFFFFFFFF})
	if err != nil || got != 1 {
		t.Errorf("(-1)*(-1) = %d, %v", got, err)
	}
}

// TestSymbolicMatchesEval: the IMP symbolic semantics agree with the
// concrete evaluator on terminating runs.
func TestSymbolicMatchesEval(t *testing.T) {
	p := parse(t, `
input a, b
c := (a ^ b)
if (c < b) {
  c := (c + 7)
} else {
  c := (c - a)
}
return (c * 3)
`)
	ctx := smt.NewContext()
	sem := NewSem(ctx, p)
	s0, err := sem.Instantiate("entry", map[string]*smt.Term{
		"a": ctx.VarBV("a", 32), "b": ctx.VarBV("b", 32),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var finals []core.State
	work := []core.State{s0}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if cur.IsFinal() {
			finals = append(finals, cur)
			continue
		}
		succs, err := sem.Step(cur)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range succs {
			if !n.PathCond().IsFalse() {
				work = append(work, n)
			}
		}
	}
	if len(finals) != 2 {
		t.Fatalf("%d final states, want 2", len(finals))
	}
	f := func(a, b uint32) bool {
		want, err := Eval(p, map[string]uint32{"a": a, "b": b})
		if err != nil {
			return false
		}
		assign := smt.NewAssign()
		assign.BV["a"] = uint64(a)
		assign.BV["b"] = uint64(b)
		for _, fin := range finals {
			ok, err := assign.EvalBool(fin.PathCond())
			if err != nil {
				return false
			}
			if !ok {
				continue
			}
			ret, err := fin.Observable("ret")
			if err != nil {
				return false
			}
			got, err := assign.EvalBV(ret)
			return err == nil && uint32(got) == want
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"x := 1",                      // missing input line
		"input a\nif (a < 1 {\n}",     // malformed condition
		"input a\nreturn (a +",        // truncated expr
		"input a\nwhile (a) {",        // unterminated
		"input a\nfrobnicate",         // unknown statement
		"input a\nreturn (a ? 1 : 2)", // unknown operator
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}
