package imp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/smt"
)

// This file gives IMP a symbolic semantics implementing core.Semantics.
// The structured program is flattened once into an internal CFG whose
// loop-header blocks carry the cut locations "loop:<id>"; the checker in
// internal/core then treats IMP exactly like any other language.

// TermKind discriminates block terminators of the flattened CFG.
type TermKind uint8

const (
	// TGoto is an unconditional transfer to Tgt.
	TGoto TermKind = iota
	// TBranch transfers to Tgt when Cond is nonzero, else to TgtF.
	TBranch
	// TRet returns Ret.
	TRet
)

// Block is one block of the flattened CFG (used both by the symbolic
// semantics here and by the IMP→stack compiler in internal/stack).
type Block struct {
	Label   string
	Assigns []*Stmt // SAssign only
	Term    TermKind
	Cond    *Expr  // TBranch
	Ret     *Expr  // TRet
	Tgt     string // TGoto / TBranch true target
	TgtF    string // TBranch false target
}

// flatten lowers the structured body into labeled blocks. Loop headers get
// the label "loop:<id>".
type flattener struct {
	blocks []*Block
	n      int
}

func (f *flattener) fresh(stem string) string {
	f.n++
	return fmt.Sprintf("%s.%d", stem, f.n)
}

func (f *flattener) add(b *Block) *Block {
	f.blocks = append(f.blocks, b)
	return b
}

// Flatten builds the internal CFG (exported for the stack compiler, which
// uses the same block structure to stay in sync with the cut locations).
func Flatten(p *Program) []*Block {
	f := &flattener{}
	entry := f.add(&Block{Label: "entry"})
	f.lower(p.Body, entry, "")
	return f.blocks
}

// lower emits ss into cur; after ss, control continues to next (or the
// function must have returned when next == ""). Returns the block that
// needs a terminator to next (nil if all paths returned).
func (f *flattener) lower(ss []*Stmt, cur *Block, next string) {
	for i, s := range ss {
		switch s.Kind {
		case SAssign:
			cur.Assigns = append(cur.Assigns, s)
		case SReturn:
			cur.Term = TRet
			cur.Ret = s.E
			return
		case SIf:
			rest := f.fresh("join")
			thenB := f.add(&Block{Label: f.fresh("then")})
			elseB := f.add(&Block{Label: f.fresh("else")})
			cur.Term = TBranch
			cur.Cond = s.E
			cur.Tgt = thenB.Label
			cur.TgtF = elseB.Label
			f.lower(s.Then, thenB, rest)
			f.lower(s.Else, elseB, rest)
			cont := f.add(&Block{Label: rest})
			f.lower(ss[i+1:], cont, next)
			return
		case SWhile:
			head := f.add(&Block{Label: fmt.Sprintf("loop:%d", s.LoopID)})
			body := f.add(&Block{Label: f.fresh("body")})
			rest := f.fresh("done")
			cur.Term = TGoto
			cur.Tgt = head.Label
			head.Term = TBranch
			head.Cond = s.E
			head.Tgt = body.Label
			head.TgtF = rest
			f.lower(s.Body, body, head.Label)
			cont := f.add(&Block{Label: rest})
			f.lower(ss[i+1:], cont, next)
			return
		}
	}
	// Fell off the statement list: continue to next.
	if next == "" {
		// No return on this path; make it explicit (returns 0).
		cur.Term = TRet
		cur.Ret = Lit(0)
		return
	}
	cur.Term = TGoto
	cur.Tgt = next
}

// Sem is IMP's symbolic semantics.
type Sem struct {
	Ctx    *smt.Context
	Prog   *Program
	blocks map[string]*Block
	instN  int
}

// NewSem builds the semantics for p.
func NewSem(ctx *smt.Context, p *Program) *Sem {
	bs := Flatten(p)
	m := make(map[string]*Block, len(bs))
	for _, b := range bs {
		m[b.Label] = b
	}
	return &Sem{Ctx: ctx, Prog: p, blocks: m}
}

type state struct {
	sem    *Sem
	instID int
	block  *Block
	idx    int
	env    map[string]*smt.Term
	pc     *smt.Term
	final  bool
	ret    *smt.Term
}

var _ core.State = (*state)(nil)

// Loc implements core.State. Cut locations: "entry", "loop:<id>", "exit".
func (s *state) Loc() core.Location {
	if s.final {
		return "exit"
	}
	if s.idx == 0 {
		return core.Location(s.block.Label)
	}
	return core.Location(fmt.Sprintf("at:%s:%d", s.block.Label, s.idx))
}

// PathCond implements core.State.
func (s *state) PathCond() *smt.Term { return s.pc }

// MemTerm implements core.State (IMP has no memory).
func (s *state) MemTerm() *smt.Term { return nil }

// IsFinal implements core.State.
func (s *state) IsFinal() bool { return s.final }

// ErrorKind implements core.State (IMP has no undefined behavior).
func (s *state) ErrorKind() string { return "" }

// Observable implements core.State: variable names and "ret".
func (s *state) Observable(name string) (*smt.Term, error) {
	if name == "ret" {
		if s.ret == nil {
			return nil, fmt.Errorf("imp: no return value at %s", s.Loc())
		}
		return s.ret, nil
	}
	return s.read(name), nil
}

func (s *state) read(name string) *smt.Term {
	if t, ok := s.env[name]; ok {
		return t
	}
	t := s.sem.Ctx.VarBV(fmt.Sprintf("imp!i%d!%s", s.instID, name), 32)
	s.env[name] = t
	return t
}

func (s *state) clone() *state {
	env := make(map[string]*smt.Term, len(s.env))
	for k, v := range s.env {
		env[k] = v
	}
	n := *s
	n.env = env
	return &n
}

// Instantiate implements core.Semantics.
func (sm *Sem) Instantiate(loc core.Location, presets map[string]*smt.Term, memT *smt.Term) (core.State, error) {
	sm.instN++
	b, ok := sm.blocks[string(loc)]
	if !ok {
		return nil, fmt.Errorf("imp: cannot instantiate at %q", loc)
	}
	s := &state{sem: sm, instID: sm.instN, block: b, pc: sm.Ctx.True(),
		env: make(map[string]*smt.Term, len(presets))}
	for k, v := range presets {
		s.env[k] = v
	}
	return s, nil
}

// ObservableWidth implements core.Semantics (all IMP values are 32-bit).
func (sm *Sem) ObservableWidth(loc core.Location, name string) (uint8, error) {
	return 32, nil
}

// Step implements core.Semantics.
func (sm *Sem) Step(cs core.State) ([]core.State, error) {
	s, ok := cs.(*state)
	if !ok {
		return nil, fmt.Errorf("imp: foreign state %T", cs)
	}
	if s.final {
		return nil, nil
	}
	ctx := sm.Ctx
	if s.idx < len(s.block.Assigns) {
		a := s.block.Assigns[s.idx]
		n := s.clone()
		n.env[a.Var] = s.symExpr(a.E)
		n.idx++
		return []core.State{n}, nil
	}
	switch s.block.Term {
	case TGoto:
		n := s.clone()
		n.block = sm.blocks[s.block.Tgt]
		n.idx = 0
		return []core.State{n}, nil
	case TBranch:
		c := ctx.Not(ctx.Eq(s.symExpr(s.block.Cond), ctx.BV(0, 32)))
		nT := s.clone()
		nT.pc = ctx.AndB(s.pc, c)
		nT.block = sm.blocks[s.block.Tgt]
		nT.idx = 0
		nF := s.clone()
		nF.pc = ctx.AndB(s.pc, ctx.Not(c))
		nF.block = sm.blocks[s.block.TgtF]
		nF.idx = 0
		return []core.State{nT, nF}, nil
	case TRet:
		n := s.clone()
		n.final = true
		n.ret = s.symExpr(s.block.Ret)
		return []core.State{n}, nil
	}
	return nil, fmt.Errorf("imp: stuck state at %s", s.Loc())
}

func (s *state) symExpr(e *Expr) *smt.Term {
	ctx := s.sem.Ctx
	switch {
	case e.IsIt:
		return ctx.BV(uint64(e.Lit), 32)
	case e.Op == "":
		return s.read(e.Var)
	}
	l := s.symExpr(e.L)
	r := s.symExpr(e.R)
	switch e.Op {
	case "+":
		return ctx.Add(l, r)
	case "-":
		return ctx.Sub(l, r)
	case "*":
		return ctx.Mul(l, r)
	case "&":
		return ctx.And(l, r)
	case "|":
		return ctx.Or(l, r)
	case "^":
		return ctx.Xor(l, r)
	case "<":
		return ctx.Ite(ctx.Ult(l, r), ctx.BV(1, 32), ctx.BV(0, 32))
	case "==":
		return ctx.Ite(ctx.Eq(l, r), ctx.BV(1, 32), ctx.BV(0, 32))
	}
	panic("imp: bad operator " + e.Op)
}

// LoopLocs returns the cut locations of all loops, for sync-point
// generation.
func LoopLocs(p *Program) []core.Location {
	out := make([]core.Location, 0, p.nLoops)
	for i := 1; i <= p.nLoops; i++ {
		out = append(out, core.Location(fmt.Sprintf("loop:%d", i)))
	}
	return out
}
