// Package cfg provides language-independent control-flow-graph analyses:
// reverse postorder, dominators, natural-loop detection, and backward
// liveness. Both the LLVM IR and Virtual x86 packages expose their function
// bodies through the Graph interface, and the verification-condition
// generator (internal/vcgen) consumes the analyses to place synchronization
// points (paper §4.5: loop entries and live-register constraints).
package cfg

import "sort"

// Graph is a control-flow graph over named basic blocks. The entry block is
// Blocks()[0]. Implementations must return deterministic orderings.
type Graph interface {
	Blocks() []string
	Succs(block string) []string
}

// Preds computes the predecessor map of g, with deterministic ordering.
func Preds(g Graph) map[string][]string {
	preds := make(map[string][]string)
	for _, b := range g.Blocks() {
		preds[b] = nil
	}
	for _, b := range g.Blocks() {
		for _, s := range g.Succs(b) {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// ReversePostorder returns the blocks of g reachable from the entry in
// reverse postorder (entry first).
func ReversePostorder(g Graph) []string {
	seen := make(map[string]bool)
	var post []string
	var dfs func(string)
	dfs = func(b string) {
		seen[b] = true
		for _, s := range g.Succs(b) {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	blocks := g.Blocks()
	if len(blocks) == 0 {
		return nil
	}
	dfs(blocks[0])
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator map using the
// Cooper–Harvey–Kennedy iterative algorithm. The entry block maps to
// itself. Unreachable blocks are absent from the result.
func Dominators(g Graph) map[string]string {
	rpo := ReversePostorder(g)
	if len(rpo) == 0 {
		return nil
	}
	index := make(map[string]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	preds := Preds(g)
	idom := make(map[string]string, len(rpo))
	entry := rpo[0]
	idom[entry] = entry

	intersect := func(a, b string) string {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom string
			for _, p := range preds[b] {
				if _, ok := idom[p]; !ok {
					continue
				}
				if newIdom == "" {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom == "" {
				continue
			}
			if idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the given idom map.
func Dominates(idom map[string]string, a, b string) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// Loop describes a natural loop: its header block and body (including the
// header). Latches are the sources of back edges into the header.
type Loop struct {
	Header  string
	Body    map[string]bool
	Latches []string
}

// NaturalLoops finds all natural loops of g: back edges t→h where h
// dominates t; loops sharing a header are merged. Results are sorted by
// header name for determinism.
func NaturalLoops(g Graph) []Loop {
	idom := Dominators(g)
	preds := Preds(g)
	byHeader := make(map[string]*Loop)
	for _, b := range ReversePostorder(g) {
		for _, s := range g.Succs(b) {
			if !Dominates(idom, s, b) {
				continue
			}
			// Back edge b→s.
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Body: map[string]bool{s: true}}
				byHeader[s] = l
			}
			l.Latches = append(l.Latches, b)
			// Body: all blocks reaching b without passing through s.
			stack := []string{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Body[n] {
					continue
				}
				l.Body[n] = true
				stack = append(stack, preds[n]...)
			}
		}
	}
	headers := make([]string, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Strings(headers)
	loops := make([]Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, *byHeader[h])
	}
	return loops
}

// LivenessInput augments a Graph with per-block use/def information for
// backward liveness. use(b) is the set of names read in b before any
// definition in b (upward-exposed uses); def(b) is the set of names defined
// anywhere in b. EdgeUse(from,to) returns names used by phi-like
// instructions in `to` along the edge from `from` (live at the end of
// `from` only, not at the start of `to`).
type LivenessInput interface {
	Graph
	UseDef(block string) (use, def map[string]bool)
	EdgeUse(from, to string) map[string]bool
}

// Liveness computes live-in sets per block via the standard backward
// dataflow fixpoint, with phi uses attributed to predecessor edges.
func Liveness(g LivenessInput) map[string]map[string]bool {
	blocks := ReversePostorder(g)
	use := make(map[string]map[string]bool, len(blocks))
	def := make(map[string]map[string]bool, len(blocks))
	for _, b := range blocks {
		u, d := g.UseDef(b)
		use[b], def[b] = u, d
	}
	liveIn := make(map[string]map[string]bool, len(blocks))
	for _, b := range blocks {
		liveIn[b] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		// Iterate in postorder (reverse of RPO) for fast convergence.
		for i := len(blocks) - 1; i >= 0; i-- {
			b := blocks[i]
			liveOut := make(map[string]bool)
			for _, s := range g.Succs(b) {
				for v := range liveIn[s] {
					liveOut[v] = true
				}
				for v := range g.EdgeUse(b, s) {
					liveOut[v] = true
				}
			}
			// in = use ∪ (out − def)
			in := make(map[string]bool, len(use[b])+len(liveOut))
			for v := range use[b] {
				in[v] = true
			}
			for v := range liveOut {
				if !def[b][v] {
					in[v] = true
				}
			}
			if !sameSet(in, liveIn[b]) {
				liveIn[b] = in
				changed = true
			}
		}
	}
	return liveIn
}

// LiveOut derives the live-out set of a block from live-in sets.
func LiveOut(g LivenessInput, liveIn map[string]map[string]bool, b string) map[string]bool {
	out := make(map[string]bool)
	for _, s := range g.Succs(b) {
		for v := range liveIn[s] {
			out[v] = true
		}
		for v := range g.EdgeUse(b, s) {
			out[v] = true
		}
	}
	return out
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// SortedKeys returns the keys of a string set in sorted order (helper for
// deterministic output across the repo).
func SortedKeys(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
