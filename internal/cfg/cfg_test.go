package cfg

import (
	"reflect"
	"sort"
	"testing"
)

// mapGraph is a test Graph backed by literal maps.
type mapGraph struct {
	blocks []string
	succs  map[string][]string
	use    map[string][]string
	def    map[string][]string
	edge   map[[2]string][]string
}

func (g *mapGraph) Blocks() []string        { return g.blocks }
func (g *mapGraph) Succs(b string) []string { return g.succs[b] }
func (g *mapGraph) UseDef(b string) (map[string]bool, map[string]bool) {
	return toSet(g.use[b]), toSet(g.def[b])
}
func (g *mapGraph) EdgeUse(from, to string) map[string]bool {
	return toSet(g.edge[[2]string{from, to}])
}

func toSet(xs []string) map[string]bool {
	s := make(map[string]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// diamond: entry → {then, else} → exit
func diamond() *mapGraph {
	return &mapGraph{
		blocks: []string{"entry", "then", "else", "exit"},
		succs: map[string][]string{
			"entry": {"then", "else"},
			"then":  {"exit"},
			"else":  {"exit"},
			"exit":  nil,
		},
	}
}

// loopGraph models: entry → header; header → {body, exit}; body → header.
func loopGraph() *mapGraph {
	return &mapGraph{
		blocks: []string{"entry", "header", "body", "exit"},
		succs: map[string][]string{
			"entry":  {"header"},
			"header": {"body", "exit"},
			"body":   {"header"},
			"exit":   nil,
		},
	}
}

func TestReversePostorder(t *testing.T) {
	rpo := ReversePostorder(diamond())
	if rpo[0] != "entry" {
		t.Errorf("rpo[0] = %q, want entry", rpo[0])
	}
	if rpo[len(rpo)-1] != "exit" {
		t.Errorf("rpo last = %q, want exit", rpo[len(rpo)-1])
	}
	if len(rpo) != 4 {
		t.Errorf("len(rpo) = %d, want 4", len(rpo))
	}
}

func TestReversePostorderSkipsUnreachable(t *testing.T) {
	g := diamond()
	g.blocks = append(g.blocks, "dead")
	g.succs["dead"] = []string{"exit"}
	rpo := ReversePostorder(g)
	for _, b := range rpo {
		if b == "dead" {
			t.Errorf("unreachable block in RPO")
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	idom := Dominators(diamond())
	want := map[string]string{
		"entry": "entry", "then": "entry", "else": "entry", "exit": "entry",
	}
	if !reflect.DeepEqual(idom, want) {
		t.Errorf("idom = %v, want %v", idom, want)
	}
	if !Dominates(idom, "entry", "exit") {
		t.Errorf("entry should dominate exit")
	}
	if Dominates(idom, "then", "exit") {
		t.Errorf("then should not dominate exit")
	}
}

func TestDominatorsLoop(t *testing.T) {
	idom := Dominators(loopGraph())
	if idom["body"] != "header" || idom["exit"] != "header" || idom["header"] != "entry" {
		t.Errorf("idom = %v", idom)
	}
}

func TestNaturalLoops(t *testing.T) {
	loops := NaturalLoops(loopGraph())
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != "header" {
		t.Errorf("header = %q", l.Header)
	}
	if !l.Body["body"] || !l.Body["header"] || l.Body["entry"] || l.Body["exit"] {
		t.Errorf("body = %v", l.Body)
	}
	if len(l.Latches) != 1 || l.Latches[0] != "body" {
		t.Errorf("latches = %v", l.Latches)
	}
}

func TestNestedLoops(t *testing.T) {
	g := &mapGraph{
		blocks: []string{"e", "h1", "h2", "b2", "l1", "x"},
		succs: map[string][]string{
			"e":  {"h1"},
			"h1": {"h2", "x"},
			"h2": {"b2", "l1"},
			"b2": {"h2"},
			"l1": {"h1"},
			"x":  nil,
		},
	}
	loops := NaturalLoops(g)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// Sorted by header: h1 before h2.
	outer, inner := loops[0], loops[1]
	if outer.Header != "h1" || inner.Header != "h2" {
		t.Fatalf("headers = %q, %q", outer.Header, inner.Header)
	}
	if !outer.Body["h2"] || !outer.Body["l1"] || !outer.Body["b2"] {
		t.Errorf("outer body = %v", outer.Body)
	}
	if inner.Body["h1"] || !inner.Body["b2"] {
		t.Errorf("inner body = %v", inner.Body)
	}
}

func TestIrreducibleSelfLoop(t *testing.T) {
	g := &mapGraph{
		blocks: []string{"e", "s"},
		succs:  map[string][]string{"e": {"s"}, "s": {"s"}},
	}
	loops := NaturalLoops(g)
	if len(loops) != 1 || loops[0].Header != "s" {
		t.Fatalf("loops = %v", loops)
	}
	if len(loops[0].Body) != 1 {
		t.Errorf("self-loop body = %v", loops[0].Body)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	// entry: uses a, defines b; exit: uses b.
	g := &mapGraph{
		blocks: []string{"entry", "exit"},
		succs:  map[string][]string{"entry": {"exit"}, "exit": nil},
		use:    map[string][]string{"entry": {"a"}, "exit": {"b"}},
		def:    map[string][]string{"entry": {"b"}},
	}
	live := Liveness(g)
	if got := SortedKeys(live["entry"]); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("live-in(entry) = %v", got)
	}
	if got := SortedKeys(live["exit"]); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("live-in(exit) = %v", got)
	}
}

func TestLivenessLoop(t *testing.T) {
	// header uses i (cond); body defines nothing but uses s; body→header.
	// n used only in header: stays live around the loop.
	g := loopGraph()
	g.use = map[string][]string{"header": {"i", "n"}, "body": {"s"}, "exit": {"s"}}
	g.def = map[string][]string{"body": {"i"}, "entry": {"i", "n", "s"}}
	live := Liveness(g)
	for _, v := range []string{"n", "s"} {
		if !live["header"][v] {
			t.Errorf("%s not live-in at header: %v", v, SortedKeys(live["header"]))
		}
		if !live["body"][v] {
			t.Errorf("%s not live-in at body: %v", v, SortedKeys(live["body"]))
		}
	}
	if live["entry"]["i"] {
		t.Errorf("i live-in at entry despite def")
	}
	if len(live["entry"]) != 0 {
		t.Errorf("live-in(entry) = %v, want empty", SortedKeys(live["entry"]))
	}
}

func TestLivenessPhiEdgeUses(t *testing.T) {
	// Phi in exit reads x along then-edge and y along else-edge. x must be
	// live-out of then only; neither is live-in at exit.
	g := diamond()
	g.def = map[string][]string{"entry": {"x", "y"}}
	g.edge = map[[2]string][]string{
		{"then", "exit"}: {"x"},
		{"else", "exit"}: {"y"},
	}
	live := Liveness(g)
	if !live["then"]["x"] || live["then"]["y"] {
		t.Errorf("live-in(then) = %v", SortedKeys(live["then"]))
	}
	if !live["else"]["y"] || live["else"]["x"] {
		t.Errorf("live-in(else) = %v", SortedKeys(live["else"]))
	}
	if len(live["exit"]) != 0 {
		t.Errorf("live-in(exit) = %v, want empty", SortedKeys(live["exit"]))
	}
	out := LiveOut(g, live, "then")
	if got := SortedKeys(out); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("live-out(then) = %v", got)
	}
}

func TestPredsDeterministic(t *testing.T) {
	g := diamond()
	p1 := Preds(g)
	p2 := Preds(g)
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("Preds not deterministic")
	}
	got := p1["exit"]
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"else", "then"}) {
		t.Errorf("preds(exit) = %v", got)
	}
}
