package proof

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary DRAT container (schema 2). The file starts with an uncompressed
// four-byte magic "BDRT" plus one version byte; everything after the
// header is one DEFLATE stream of records:
//
//	's' uvarint(index)          switch the current session. The first
//	                            record with an index opens that session;
//	                            a repeated index resumes it. Indices may
//	                            first appear in any order: session numbers
//	                            are assigned when a session is created,
//	                            but traces are written when a query is
//	                            decided, and a portfolio racer's session
//	                            (created later) can flush before the
//	                            incremental session it raced (created
//	                            first, flushed lazily) writes anything.
//	'i'/'l'/'d' uvarint(n) lits step of the current session (input, learnt,
//	                            deleted clause), n delta-coded literals.
//
// Literals are sorted by variable (positive polarity first on ties) and
// encoded as uvarint((var - prevVar) << 1 | signBit). Sorting is sound —
// clauses are sets: RUP is insensitive to literal order and the checker's
// deletion matching keys on sorted literals — and it makes the deltas
// small, which together with DEFLATE is what buys the ~8-9x size
// reduction over the textual format.
const (
	binDratMagic = "BDRT"
	// BinDratVersion is the on-disk version byte; readers reject files
	// whose version they do not understand rather than misparse them.
	BinDratVersion = 2
)

const maxClauseLen = 1 << 24 // decoder sanity bound on uvarint clause lengths

// BinWriter incrementally encodes a binary-DRAT stream. It is used by a
// single goroutine (the recorder of one function) and keeps a sticky
// error: after the first write failure every call is a no-op returning
// that error.
type BinWriter struct {
	fw      *flate.Writer
	rec     []byte  // record scratch
	scratch []int32 // sorted-literal scratch (callers keep their slices)
	cur     int     // current session, -1 before the first record
	seen    int     // sessions opened so far
	err     error
}

// NewBinWriter writes the header to w and returns a writer for the body.
func NewBinWriter(w io.Writer) *BinWriter {
	bw := &BinWriter{cur: -1}
	if _, err := io.WriteString(w, binDratMagic); err != nil {
		bw.err = err
		return bw
	}
	if _, err := w.Write([]byte{BinDratVersion}); err != nil {
		bw.err = err
		return bw
	}
	fw, err := flate.NewWriter(w, flate.DefaultCompression)
	if err != nil {
		bw.err = err
		return bw
	}
	bw.fw = fw
	return bw
}

// Err returns the sticky error, if any.
func (bw *BinWriter) Err() error { return bw.err }

// Step appends one trace step of session sess, switching sessions if
// needed. lits is not modified and not retained.
func (bw *BinWriter) Step(sess int, op byte, lits []int32) error {
	if bw.err != nil {
		return bw.err
	}
	if op != OpInput && op != OpLearn && op != OpDelete {
		bw.err = fmt.Errorf("proof: binary drat: bad opcode %q", op)
		return bw.err
	}
	if sess != bw.cur {
		if sess < 0 {
			bw.err = fmt.Errorf("proof: binary drat: negative session %d", sess)
			return bw.err
		}
		if sess >= bw.seen {
			bw.seen = sess + 1
		}
		bw.rec = appendUvarint(append(bw.rec[:0], 's'), uint64(sess))
		if _, err := bw.fw.Write(bw.rec); err != nil {
			bw.err = err
			return err
		}
		bw.cur = sess
	}
	bw.scratch = append(bw.scratch[:0], lits...)
	sortClauseLits(bw.scratch)
	bw.rec = appendUvarint(append(bw.rec[:0], op), uint64(len(bw.scratch)))
	prev := int32(0)
	for _, l := range bw.scratch {
		v, sign := l, uint64(0)
		if v < 0 {
			v, sign = -v, 1
		}
		bw.rec = appendUvarint(bw.rec, uint64(v-prev)<<1|sign)
		prev = v
	}
	if _, err := bw.fw.Write(bw.rec); err != nil {
		bw.err = err
		return err
	}
	return nil
}

// Flush forces buffered records through the compressor to the underlying
// writer, at a small compression-ratio cost at the flush boundary.
func (bw *BinWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if err := bw.fw.Flush(); err != nil {
		bw.err = err
	}
	return bw.err
}

// Close terminates the DEFLATE stream. The underlying writer is not
// closed.
func (bw *BinWriter) Close() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.fw != nil {
		if err := bw.fw.Close(); err != nil {
			bw.err = err
		}
	}
	return bw.err
}

// sortClauseLits orders a clause canonically: by variable, positive
// polarity first on ties.
func sortClauseLits(lits []int32) {
	sort.Slice(lits, func(i, j int) bool {
		vi, vj := abs32(lits[i]), abs32(lits[j])
		if vi != vj {
			return vi < vj
		}
		return lits[i] > lits[j]
	})
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// WalkDrat streams the steps of a .drat file in either format — the
// binary container above, or the line-oriented text format of schema 1 —
// dispatching on the magic bytes. The literal slice passed to fn is
// reused between calls and must not be retained.
func WalkDrat(r io.Reader, fn func(sess int, op byte, lits []int32) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(binDratMagic) + 1)
	if err == nil && len(head) > len(binDratMagic) && string(head[:len(binDratMagic)]) == binDratMagic {
		if head[len(binDratMagic)] != BinDratVersion {
			return fmt.Errorf("proof: binary drat version %d, checker supports %d",
				head[len(binDratMagic)], BinDratVersion)
		}
		if _, err := br.Discard(len(binDratMagic) + 1); err != nil {
			return err
		}
		return walkBinaryDrat(br, fn)
	}
	return walkTextDrat(br, fn)
}

func walkBinaryDrat(r io.Reader, fn func(sess int, op byte, lits []int32) error) error {
	fr := flate.NewReader(r)
	defer fr.Close()
	rd := bufio.NewReaderSize(fr, 1<<15)
	cur := -1
	var lits []int32
	for {
		b, err := rd.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("proof: binary drat: %v", err)
		}
		switch b {
		case 's':
			u, err := binary.ReadUvarint(rd)
			if err != nil {
				return fmt.Errorf("proof: binary drat: truncated session record")
			}
			// Sessions may first appear in any order (see the format note
			// above); only bound the index against absurd values.
			if u > 1<<30 {
				return fmt.Errorf("proof: binary drat: implausible session index %d", u)
			}
			cur = int(u)
		case OpInput, OpLearn, OpDelete:
			if cur < 0 {
				return fmt.Errorf("proof: binary drat: step before session record")
			}
			n, err := binary.ReadUvarint(rd)
			if err != nil {
				return fmt.Errorf("proof: binary drat: truncated step header")
			}
			if n > maxClauseLen {
				return fmt.Errorf("proof: binary drat: implausible clause length %d", n)
			}
			lits = lits[:0]
			prev := int32(0)
			for i := uint64(0); i < n; i++ {
				u, err := binary.ReadUvarint(rd)
				if err != nil {
					return fmt.Errorf("proof: binary drat: truncated clause")
				}
				d := u >> 1
				if d > uint64(math.MaxInt32)-uint64(prev) {
					return fmt.Errorf("proof: binary drat: literal overflow")
				}
				v := prev + int32(d)
				if v == 0 {
					return fmt.Errorf("proof: binary drat: zero literal")
				}
				l := v
				if u&1 == 1 {
					l = -v
				}
				lits = append(lits, l)
				prev = v
			}
			if err := fn(cur, b, lits); err != nil {
				return err
			}
		default:
			return fmt.Errorf("proof: binary drat: unknown record 0x%02x", b)
		}
	}
}

// walkTextDrat streams the schema-1 text format. Unlike ParseSessions it
// tolerates revisiting an earlier session, making it a superset of the
// strict append-only files the buffered writer produces.
func walkTextDrat(br *bufio.Reader, fn func(sess int, op byte, lits []int32) error) error {
	cur := -1
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		lineNo++
		for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
			line = line[:len(line)-1]
		}
		if line == "" {
			if err == io.EOF {
				return nil
			}
			continue
		}
		op := line[0]
		rest := line[1:]
		switch op {
		case 's':
			idx, perr := parseSessionIndex(rest)
			if perr != nil || idx < 0 {
				return fmt.Errorf("proof: line %d: bad session header %q", lineNo, line)
			}
			cur = idx
		case OpInput, OpLearn, OpDelete:
			if cur < 0 {
				return fmt.Errorf("proof: line %d: step before session header", lineNo)
			}
			lits, perr := parseLits(rest)
			if perr != nil {
				return fmt.Errorf("proof: line %d: %v", lineNo, perr)
			}
			if err := fn(cur, op, lits); err != nil {
				return err
			}
		default:
			return fmt.Errorf("proof: line %d: unknown step %q", lineNo, line)
		}
		if err == io.EOF {
			return nil
		}
	}
}

func parseSessionIndex(s string) (int, error) {
	s = trimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty session index")
	}
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' || n > (1<<30) {
			return 0, fmt.Errorf("bad session index %q", s)
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, nil
}
