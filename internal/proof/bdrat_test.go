package proof_test

// Round-trip and rejection tests of the binary DRAT container: seeded
// random streams — arbitrary session interleavings, clause shapes, and
// opcodes — must decode back to exactly the steps written (modulo the
// canonical literal order the encoder imposes), and malformed headers or
// truncated bodies must be rejected rather than misparsed.

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/proof"
)

// canonLits is the canonical clause order the binary encoder imposes:
// by variable, positive polarity first on ties.
func canonLits(lits []int32) []int32 {
	out := append([]int32(nil), lits...)
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i], out[j]
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai < aj
		}
		return out[i] > out[j]
	})
	return out
}

func TestBinDratRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(0xB07A7))
	ops := []byte{proof.OpInput, proof.OpLearn, proof.OpDelete}
	for iter := 0; iter < 300; iter++ {
		nsess := 1 + rng.Intn(4)
		nsteps := rng.Intn(80)
		var want []dratStep
		seen := 0
		for i := 0; i < nsteps; i++ {
			// Pick a session the writer accepts: any already-open index, or
			// the next unopened one while sessions remain — this exercises
			// both interleaved resumption and mid-stream session creation.
			sess := rng.Intn(seen + 1)
			if sess == seen {
				if seen == nsess {
					sess = rng.Intn(seen)
				} else {
					seen++
				}
			}
			width := rng.Intn(9) // empty clauses allowed (global refutation)
			lits := make([]int32, width)
			for j := range lits {
				v := int32(1 + rng.Intn(5000))
				if rng.Intn(2) == 1 {
					v = -v
				}
				lits[j] = v
			}
			want = append(want, dratStep{sess, ops[rng.Intn(len(ops))], lits})
		}

		var buf bytes.Buffer
		bw := proof.NewBinWriter(&buf)
		for _, s := range want {
			if err := bw.Step(s.sess, s.op, s.lits); err != nil {
				t.Fatalf("iter %d: Step: %v", iter, err)
			}
		}
		if err := bw.Close(); err != nil {
			t.Fatalf("iter %d: Close: %v", iter, err)
		}

		var got []dratStep
		err := proof.WalkDrat(bytes.NewReader(buf.Bytes()), func(sess int, op byte, lits []int32) error {
			got = append(got, dratStep{sess, op, append([]int32(nil), lits...)})
			return nil
		})
		if err != nil {
			t.Fatalf("iter %d: WalkDrat: %v", iter, err)
		}
		if len(got) != len(want) {
			t.Fatalf("iter %d: decoded %d steps, wrote %d", iter, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if g.sess != w.sess || g.op != w.op {
				t.Fatalf("iter %d step %d: got session %d op %q, want %d %q",
					iter, i, g.sess, g.op, w.sess, w.op)
			}
			cw := canonLits(w.lits)
			if len(g.lits) != len(cw) {
				t.Fatalf("iter %d step %d: got %d literals, want %d", iter, i, len(g.lits), len(cw))
			}
			for j := range cw {
				if g.lits[j] != cw[j] {
					t.Fatalf("iter %d step %d: literals %v, want %v", iter, i, g.lits, cw)
				}
			}
		}
	}
}

func TestBinDratUnknownVersionRejected(t *testing.T) {
	data := append([]byte("BDRT"), 99, 1, 2, 3)
	err := proof.WalkDrat(bytes.NewReader(data), func(int, byte, []int32) error { return nil })
	if err == nil {
		t.Fatal("unknown version byte accepted")
	}
}

func TestBinDratTruncatedRejected(t *testing.T) {
	var buf bytes.Buffer
	bw := proof.NewBinWriter(&buf)
	for i := 0; i < 50; i++ {
		if err := bw.Step(0, proof.OpInput, []int32{int32(i + 1), -int32(i + 2)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	err := proof.WalkDrat(bytes.NewReader(data), func(int, byte, []int32) error { return nil })
	if err == nil {
		t.Fatal("truncated body accepted")
	}
}

// TestBinDratTextFallback pins the format dispatch: a schema-1 text
// trace walks through the same entry point.
func TestBinDratTextFallback(t *testing.T) {
	text := "s 0\ni 1 -2 0\nl -1 0\ns 1\ni 3 0\ns 0\nd 1 -2 0\n"
	var got []dratStep
	err := proof.WalkDrat(bytes.NewReader([]byte(text)), func(sess int, op byte, lits []int32) error {
		got = append(got, dratStep{sess, op, append([]int32(nil), lits...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []dratStep{
		{0, proof.OpInput, []int32{1, -2}},
		{0, proof.OpLearn, []int32{-1}},
		{1, proof.OpInput, []int32{3}},
		{0, proof.OpDelete, []int32{1, -2}},
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d steps, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].sess != want[i].sess || got[i].op != want[i].op ||
			len(got[i].lits) != len(want[i].lits) {
			t.Fatalf("step %d: got %+v, want %+v", i, got[i], want[i])
		}
		for j := range want[i].lits {
			if got[i].lits[j] != want[i].lits[j] {
				t.Fatalf("step %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
	}
}

// TestBinDratOutOfOrderSessions pins the session-numbering fix: session
// indices are assigned at creation but traces land at decision time, so
// a later-created session (a winning portfolio racer's) may write before
// an earlier one (the lazily-flushed incremental session). Both the
// writer and the walker must accept first appearances in any order.
func TestBinDratOutOfOrderSessions(t *testing.T) {
	steps := []dratStep{
		{2, proof.OpInput, []int32{1, -2}}, // racer session flushes first
		{0, proof.OpInput, []int32{3}},     // primary session flushes later
		{2, proof.OpLearn, []int32{-1}},
		{1, proof.OpInput, []int32{2, 4}},
	}
	var buf bytes.Buffer
	bw := proof.NewBinWriter(&buf)
	for _, s := range steps {
		if err := bw.Step(s.sess, s.op, s.lits); err != nil {
			t.Fatalf("Step(sess=%d): %v", s.sess, err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	var got []dratStep
	err := proof.WalkDrat(bytes.NewReader(buf.Bytes()), func(sess int, op byte, lits []int32) error {
		got = append(got, dratStep{sess, op, append([]int32(nil), lits...)})
		return nil
	})
	if err != nil {
		t.Fatalf("WalkDrat: %v", err)
	}
	if len(got) != len(steps) {
		t.Fatalf("decoded %d steps, wrote %d", len(got), len(steps))
	}
	for i, w := range steps {
		if got[i].sess != w.sess || got[i].op != w.op {
			t.Fatalf("step %d: got session %d op %q, want %d %q",
				i, got[i].sess, got[i].op, w.sess, w.op)
		}
	}
	// The text fallback accepts the same ordering.
	text := "s 2\ni 1 -2 0\ns 0\ni 3 0\n"
	var tsess []int
	if err := proof.WalkDrat(bytes.NewReader([]byte(text)), func(sess int, _ byte, _ []int32) error {
		tsess = append(tsess, sess)
		return nil
	}); err != nil {
		t.Fatalf("text walk: %v", err)
	}
	if len(tsess) != 2 || tsess[0] != 2 || tsess[1] != 0 {
		t.Fatalf("text sessions = %v, want [2 0]", tsess)
	}
	if bw.Step(-1, proof.OpInput, nil) == nil {
		t.Fatal("negative session accepted")
	}
}
