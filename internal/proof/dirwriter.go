package proof

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/term"
)

// TermsName is the shared term-table segment of a schema-2 proof
// directory.
const TermsName = "TERMS.jsonl"

// countWriter counts bytes on their way to the underlying writer, so
// ProofBytes reports what actually lands on disk (post-encoding,
// post-compression), not an in-memory estimate.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// DirWriter owns the run-wide artifacts of a schema-2 proof directory:
// the shared term table with its TERMS.jsonl segment, and the recorders
// of the individual functions. One DirWriter is created per run and
// shared by all workers; NewRecorder is safe to call concurrently, and
// each returned Recorder is confined to its worker like before.
//
// Schema-2 recorders stream: query certificates are appended to the
// certs file as they are recorded, trace steps go straight into the
// binary-DRAT writer, and term rows into the shared segment — peak
// memory is O(largest query), not O(function) or O(run).
type DirWriter struct {
	dir   string
	table *TermTable

	mu     sync.Mutex
	f      *os.File
	bw     *bufio.Writer
	cw     *countWriter
	zw     *zWriter
	closed bool
	err    error
}

// NewDirWriter creates dir if needed, truncates TERMS.jsonl, and
// returns a writer for a schema-2 run.
func NewDirWriter(dir string) (*DirWriter, error) {
	return newDirWriter(dir, TermsName)
}

// NewFunctionDirWriter returns a DirWriter whose term segment is the
// per-function <FileBase(function)>.terms.jsonl instead of the shared
// TERMS.jsonl. The resulting four-file artifact set (certs, drat,
// witness, terms) is self-contained — it verifies no matter which other
// functions' artifacts share the directory — which is what lets a
// result-store entry hold one function's proof without dragging a
// run-wide segment along.
func NewFunctionDirWriter(dir, function string) (*DirWriter, error) {
	return newDirWriter(dir, FileBase(function)+TermsSuffix)
}

func newDirWriter(dir, termsFile string) (*DirWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, termsFile))
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	cw := &countWriter{w: bw}
	zw := newZWriter(cw)
	if zw.err != nil {
		f.Close()
		return nil, zw.err
	}
	return &DirWriter{dir: dir, table: NewTermTable(zw), f: f, bw: bw, cw: cw, zw: zw}, nil
}

// Dir returns the proof directory path.
func (dw *DirWriter) Dir() string { return dw.dir }

// Table returns the shared term table.
func (dw *DirWriter) Table() *TermTable { return dw.table }

// NewRecorder returns a streaming (schema 2) recorder for one function.
func (dw *DirWriter) NewRecorder(function string) *Recorder {
	return &Recorder{function: function, dw: dw, memo: make(map[*term.Term]int32)}
}

// TermBytes returns the bytes written to the term segment so far. Only
// stable after Close (or between functions under external ordering).
func (dw *DirWriter) TermBytes() int64 {
	dw.mu.Lock()
	defer dw.mu.Unlock()
	return dw.cw.n
}

// Close flushes and closes the term segment. Recorders must be closed
// first; the harness closes the DirWriter after all workers join.
func (dw *DirWriter) Close() error {
	dw.mu.Lock()
	defer dw.mu.Unlock()
	if dw.closed {
		return dw.err
	}
	dw.closed = true
	dw.err = dw.table.Err()
	if err := dw.zw.Close(); err != nil && dw.err == nil {
		dw.err = err
	}
	if err := dw.bw.Flush(); err != nil && dw.err == nil {
		dw.err = err
	}
	if err := dw.f.Close(); err != nil && dw.err == nil {
		dw.err = err
	}
	return dw.err
}

// certsHeader is the first JSON value of a schema-2 certs file.
type certsHeader struct {
	Schema   int    `json:"schema"`
	Function string `json:"function"`
}

// certsTrailer is the last JSON value of a schema-2 certs file: the
// per-session variable maps, known only once the function finishes.
type certsTrailer struct {
	Sessions []SessionInfo `json:"sessions"`
}

// streamState holds the open per-function files of a streaming recorder.
type streamState struct {
	cf  *os.File
	cbw *bufio.Writer
	ccw *countWriter
	czw *zWriter
	enc *json.Encoder

	df  *os.File
	dbw *bufio.Writer
	dcw *countWriter
	bin *BinWriter

	err    error
	closed bool
	bytes  int64
}

// ensureCerts lazily opens the certs file and writes its header.
func (r *Recorder) ensureCerts() *streamState {
	if r.st == nil {
		r.st = &streamState{}
	}
	st := r.st
	if st.cf == nil && st.err == nil && !st.closed {
		base := filepath.Join(r.dw.dir, FileBase(r.function))
		f, err := os.Create(base + CertsSuffix)
		if err != nil {
			st.err = err
			return st
		}
		st.cf = f
		st.cbw = bufio.NewWriterSize(f, 1<<15)
		st.ccw = &countWriter{w: st.cbw}
		st.czw = newZWriter(st.ccw)
		st.enc = json.NewEncoder(st.czw)
		st.err = st.czw.err
		if st.err == nil {
			st.err = st.enc.Encode(certsHeader{Schema: SchemaStreaming, Function: r.function})
		}
	}
	return st
}

// ensureDrat lazily opens the binary trace file.
func (r *Recorder) ensureDrat() *streamState {
	st := r.ensureCerts()
	if st.df == nil && st.err == nil && !st.closed {
		base := filepath.Join(r.dw.dir, FileBase(r.function))
		f, err := os.Create(base + DratSuffix)
		if err != nil {
			st.err = err
			return st
		}
		st.df = f
		st.dbw = bufio.NewWriterSize(f, 1<<16)
		st.dcw = &countWriter{w: st.dbw}
		st.bin = NewBinWriter(st.dcw)
		st.err = st.bin.Err()
	}
	return st
}

func (r *Recorder) writeQuery(q QueryCert) {
	st := r.ensureCerts()
	if st.err != nil || st.closed {
		return
	}
	st.err = st.enc.Encode(&q)
}

func (r *Recorder) writeStep(sess int, op byte, lits []int32) {
	st := r.ensureDrat()
	if st.err != nil || st.closed {
		return
	}
	st.err = st.bin.Step(sess, op, lits)
}

// Close finalizes a streaming recorder: it writes the session trailer,
// flushes and closes the certs and trace files, and — when certified —
// writes the bisimulation witness. It returns the bytes this function's
// artifacts occupy on disk and the first error encountered anywhere in
// the stream (a certificate written after an I/O error must not be
// trusted silently). Close is idempotent.
func (r *Recorder) Close(certified bool) (int64, error) {
	if r.dw == nil {
		return 0, fmt.Errorf("proof: Close on a buffered (schema 1) recorder")
	}
	st := r.ensureCerts() // an empty function still gets a certs file, like schema 1
	if st.closed {
		return st.bytes, st.err
	}
	st.closed = true
	if st.err == nil {
		tr := certsTrailer{Sessions: make([]SessionInfo, 0, len(r.sessions))}
		for _, s := range r.sessions {
			vars := append([]VarMap(nil), s.vars...)
			sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
			tr.Sessions = append(tr.Sessions, SessionInfo{Index: s.index, Vars: vars})
		}
		st.err = st.enc.Encode(&tr)
	}
	if st.cf != nil {
		if err := st.czw.Close(); err != nil && st.err == nil {
			st.err = err
		}
		if err := st.cbw.Flush(); err != nil && st.err == nil {
			st.err = err
		}
		if err := st.cf.Close(); err != nil && st.err == nil {
			st.err = err
		}
		st.bytes += st.ccw.n
	}
	if st.bin != nil {
		if err := st.bin.Close(); err != nil && st.err == nil {
			st.err = err
		}
		if err := st.dbw.Flush(); err != nil && st.err == nil {
			st.err = err
		}
		if err := st.df.Close(); err != nil && st.err == nil {
			st.err = err
		}
		st.bytes += st.dcw.n
	}
	if certified && st.err == nil {
		n, err := WriteWitness(r.dw.dir, r)
		st.bytes += n
		if err != nil {
			st.err = err
		}
	}
	return st.bytes, st.err
}
