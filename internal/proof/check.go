package proof

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/term"
)

// CheckReport is the outcome of replaying a proof directory.
type CheckReport struct {
	Functions  int            // certificate files checked
	Witnesses  int            // witnesses verified
	Queries    int            // query certificates verified
	Steps      int            // trace steps replayed
	ByKind     map[string]int // verified certificates per kind
	Certified  []string       // functions with a verified witness
	Rejections []string       // empty means the whole directory verified
}

func (r *CheckReport) reject(format string, args ...interface{}) {
	r.Rejections = append(r.Rejections, fmt.Sprintf(format, args...))
}

// certStatus tracks one query certificate through verification.
type certStatus struct {
	QueryCert
	verified bool
}

// fnCerts is the verified certificate set of one function.
type fnCerts struct {
	name string
	byID map[string]*certStatus
	refs []*certStatus
}

// dratCheckpoint is one RUP obligation against a session trace.
type dratCheckpoint struct {
	pos int
	cs  *certStatus
}

// CheckDir verifies every certificate artifact in dir: DRAT traces by
// reverse unit propagation, Sat models by direct term evaluation,
// cache references against the verified certificate with the same
// canonical key, and bisimulation witnesses for structural
// well-formedness with every cited query verified. The returned report
// lists every rejection; an error is returned only for directory-level
// I/O failures.
//
// Both on-disk formats are checked: schema-1 files (per-function term
// tables, textual DRAT) are loaded whole as before; schema-2 files
// (global term ids into the shared TERMS.jsonl segment, binary DRAT)
// are replayed streamingly — certificates decode value by value and the
// trace in a single forward pass — so peak memory is bounded by the
// shared table plus the largest single session, not the directory.
func CheckDir(dir string) (*CheckReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var certBases []string
	witnessBases := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, CertsSuffix) {
			certBases = append(certBases, strings.TrimSuffix(name, CertsSuffix))
		}
		if strings.HasSuffix(name, WitnessSuffix) {
			witnessBases[strings.TrimSuffix(name, WitnessSuffix)] = true
		}
	}
	sort.Strings(certBases)

	report := &CheckReport{ByKind: make(map[string]int)}
	// Term segments: a per-function <base>.terms.jsonl wins over the
	// run-wide TERMS.jsonl, so a directory materialized from
	// self-contained store entries verifies exactly like a freshly
	// emitted run (and the two layouts may coexist).
	shared := loadTermSegmentFile(dir, TermsName, report)
	perFn := map[string]*termLoader{}
	loaderFor := func(base string) *termLoader {
		if l, ok := perFn[base]; ok {
			return l
		}
		l := loadTermSegmentFile(dir, base+TermsSuffix, report)
		if l == nil {
			l = shared
		}
		perFn[base] = l
		return l
	}
	byFunction := map[string]*fnCerts{}
	for _, base := range certBases {
		fc := checkFunctionCerts(dir, base, loaderFor(base), report)
		if fc != nil {
			byFunction[fc.name] = fc
		}
	}

	// Content-addressed index of verified concrete certificates, for
	// resolving "ref" (cache hit) certificates. Conflicting verdicts for
	// one key mean the pipeline contradicted itself — reject loudly.
	type indexed struct {
		result string
		where  string
	}
	index := map[string]indexed{}
	names := make([]string, 0, len(byFunction))
	for name := range byFunction {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fc := byFunction[name]
		ids := make([]string, 0, len(fc.byID))
		for id := range fc.byID {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			cs := fc.byID[id]
			if !cs.verified || cs.Kind == KindRef || cs.Key == "" {
				continue
			}
			where := name + "/" + id
			if prev, ok := index[cs.Key]; ok {
				if prev.result != cs.Result {
					report.reject("%s: key %s verified %s here but %s at %s",
						where, cs.Key, cs.Result, prev.result, prev.where)
				}
				continue
			}
			index[cs.Key] = indexed{result: cs.Result, where: where}
		}
	}
	for _, name := range names {
		fc := byFunction[name]
		for _, cs := range fc.refs {
			got, ok := index[cs.Key]
			switch {
			case !ok:
				report.reject("%s/%s: ref to key %s but no verified certificate has that key",
					name, cs.ID, cs.Key)
			case got.result != cs.Result:
				report.reject("%s/%s: ref claims %s but key %s verified %s at %s",
					name, cs.ID, cs.Result, cs.Key, got.result, got.where)
			default:
				cs.verified = true
				report.Queries++
				report.ByKind[KindRef]++
			}
		}
	}

	// Witnesses.
	wbases := make([]string, 0, len(witnessBases))
	for b := range witnessBases {
		wbases = append(wbases, b)
	}
	sort.Strings(wbases)
	for _, base := range wbases {
		var wf WitnessFile
		if !loadJSON(dir, base+WitnessSuffix, &wf, report) {
			continue
		}
		fc := byFunction[wf.Function]
		if fc == nil {
			report.reject("%s: witness for %q has no certificate file", base+WitnessSuffix, wf.Function)
			continue
		}
		var termAt func(int) (*term.Term, error)
		switch wf.Schema {
		case Schema:
			ctx := term.NewContext()
			terms, err := DecodeTerms(ctx, wf.Terms)
			if err != nil {
				report.reject("%s: witness terms: %v", wf.Function, err)
				continue
			}
			termAt = func(i int) (*term.Term, error) {
				if i < 0 || i >= len(terms) {
					return nil, fmt.Errorf("pc index out of range")
				}
				return terms[i], nil
			}
		case SchemaStreaming:
			loader := loaderFor(base)
			if loader == nil {
				report.reject("%s: schema-2 witness but no term segment (%s or %s)",
					wf.Function, base+TermsSuffix, TermsName)
				continue
			}
			termAt = loader.Term
		default:
			report.reject("%s: witness has unsupported schema %d", wf.Function, wf.Schema)
			continue
		}
		before := len(report.Rejections)
		verifyWitness(&wf, fc, termAt, report)
		if len(report.Rejections) == before {
			report.Witnesses++
			report.Certified = append(report.Certified, wf.Function)
		}
	}

	// Manifest, when present: every row the run recorded as certified
	// must have a verified witness, and no succeeded row may be silently
	// uncertified.
	manifest, err := ReadManifest(dir)
	if err != nil {
		report.reject("%v", err)
	}
	if manifest != nil {
		certified := map[string]bool{}
		for _, fn := range report.Certified {
			certified[fn] = true
		}
		for _, row := range manifest.Functions {
			if row.Certified && !certified[row.Name] {
				report.reject("manifest: %s recorded as certified but its witness did not verify", row.Name)
			}
			if row.Class == "Succeeded" && !row.Certified {
				report.reject("manifest: %s succeeded but was not certified", row.Name)
			}
		}
	}
	return report, nil
}

func loadJSON(dir, name string, v interface{}, report *CheckReport) bool {
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		report.reject("%s: %v", name, err)
		return false
	}
	zr, err := maybeInflate(bytes.NewReader(raw))
	if err != nil {
		report.reject("%s: %v", name, err)
		return false
	}
	data, err := io.ReadAll(zr)
	if err != nil {
		report.reject("%s: bad compressed data: %v", name, err)
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		report.reject("%s: bad JSON: %v", name, err)
		return false
	}
	return true
}

// loadTermSegmentFile reads one term-table segment (the shared
// TERMS.jsonl or a per-function <base>.terms.jsonl), if present.
// Absence is not an error: schema-1 directories have no segment, and
// most functions have no per-function one.
func loadTermSegmentFile(dir, name string, report *CheckReport) *termLoader {
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		if !os.IsNotExist(err) {
			report.reject("%s: %v", name, err)
		}
		return nil
	}
	defer f.Close()
	zr, err := maybeInflate(f)
	if err != nil {
		report.reject("%s: %v", name, err)
		return nil
	}
	sc := bufio.NewScanner(zr)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	var nodes []TNode
	ln := 0
	for sc.Scan() {
		ln++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var n TNode
		if err := json.Unmarshal(line, &n); err != nil {
			report.reject("%s line %d: %v", name, ln, err)
			return nil
		}
		nodes = append(nodes, n)
	}
	if err := sc.Err(); err != nil {
		report.reject("%s: %v", name, err)
		return nil
	}
	return newTermLoader(nodes)
}

// checkFunctionCerts verifies one function's certificate file plus its
// DRAT companion and returns the per-query status map (nil when the
// file itself is unreadable). The first JSON value carries the schema;
// it selects the buffered (v1) or streaming (v2) decoder.
func checkFunctionCerts(dir, base string, loader *termLoader, report *CheckReport) *fnCerts {
	f, err := os.Open(filepath.Join(dir, base+CertsSuffix))
	if err != nil {
		report.reject("%s: %v", base+CertsSuffix, err)
		return nil
	}
	defer f.Close()
	zr, err := maybeInflate(f)
	if err != nil {
		report.reject("%s: %v", base+CertsSuffix, err)
		return nil
	}
	dec := json.NewDecoder(zr)
	var head certsHeader
	if err := dec.Decode(&head); err != nil {
		report.reject("%s: bad JSON: %v", base+CertsSuffix, err)
		return nil
	}
	report.Functions++
	switch head.Schema {
	case Schema:
		return checkFunctionCertsV1(dir, base, report)
	case SchemaStreaming:
		return checkFunctionCertsV2(dir, base, head.Function, dec, loader, report)
	default:
		report.reject("%s: unsupported schema %d", base+CertsSuffix, head.Schema)
		return nil
	}
}

// verifyQueryKind performs the trace-independent verification of one
// query certificate: trivial and simplified certificates re-read the
// decoded term, model certificates re-evaluate the recorded assignment,
// refs are queued for global resolution. It returns true when the
// certificate is a DRAT obligation the caller must discharge against
// the session trace.
func verifyQueryKind(fc *fnCerts, cs *certStatus, termOf func(*certStatus) *term.Term, report *CheckReport) bool {
	if cs.Result != ResSat && cs.Result != ResUnsat {
		report.reject("%s/%s: bad result %q", fc.name, cs.ID, cs.Result)
		return false
	}
	switch cs.Kind {
	case KindTrivial:
		t := termOf(cs)
		if t == nil {
			return false
		}
		want := cs.Result == ResSat
		if t.Kind != term.KConstBool || (t.Val == 1) != want {
			report.reject("%s/%s: trivial certificate term is not the constant %v", fc.name, cs.ID, want)
			return false
		}
		cs.verified = true
	case KindSimplified:
		// The verdict came from the (trusted) simplification pipeline;
		// the checker validates shape only and counts these separately.
		t := termOf(cs)
		if t == nil {
			return false
		}
		if t.SortKind() != term.SortBool {
			report.reject("%s/%s: simplified certificate term is not Bool-sorted", fc.name, cs.ID)
			return false
		}
		cs.verified = true
	case KindModel:
		t := termOf(cs)
		if t == nil {
			return false
		}
		if cs.Result != ResSat {
			report.reject("%s/%s: model certificate with result %s", fc.name, cs.ID, cs.Result)
			return false
		}
		if cs.Model == nil {
			report.reject("%s/%s: model certificate without model", fc.name, cs.ID)
			return false
		}
		a, err := AssignFromModel(cs.Model)
		if err != nil {
			report.reject("%s/%s: %v", fc.name, cs.ID, err)
			return false
		}
		v, err := a.EvalBool(t)
		if err != nil {
			report.reject("%s/%s: model evaluation failed: %v", fc.name, cs.ID, err)
			return false
		}
		if !v {
			report.reject("%s/%s: recorded model does not satisfy the term", fc.name, cs.ID)
			return false
		}
		cs.verified = true
	case KindDRAT:
		if cs.Result != ResUnsat {
			report.reject("%s/%s: drat certificate with result %s", fc.name, cs.ID, cs.Result)
			return false
		}
		return true
	case KindRef:
		if cs.Key == "" {
			report.reject("%s/%s: ref certificate without key", fc.name, cs.ID)
			return false
		}
		fc.refs = append(fc.refs, cs)
		return false // resolved globally after all functions verify
	default:
		report.reject("%s/%s: unknown certificate kind %q", fc.name, cs.ID, cs.Kind)
		return false
	}
	if cs.verified {
		report.Queries++
		report.ByKind[cs.Kind]++
	}
	return false
}

// checkFunctionCertsV1 verifies a schema-1 certificate file: the whole
// document is loaded, terms decode from its embedded table, and the
// textual DRAT trace is parsed per session.
func checkFunctionCertsV1(dir, base string, report *CheckReport) *fnCerts {
	var cf CertsFile
	if !loadJSON(dir, base+CertsSuffix, &cf, report) {
		return nil
	}
	fc := &fnCerts{name: cf.Function, byID: make(map[string]*certStatus, len(cf.Queries))}

	ctx := term.NewContext()
	terms, err := DecodeTerms(ctx, cf.Terms)
	if err != nil {
		report.reject("%s: %v", base+CertsSuffix, err)
		return fc
	}

	var sessions [][]ParsedStep
	if f, err := os.Open(filepath.Join(dir, base+DratSuffix)); err == nil {
		sessions, err = ParseSessions(f)
		f.Close()
		if err != nil {
			report.reject("%s: %v", base+DratSuffix, err)
			return fc
		}
	} else if !os.IsNotExist(err) {
		report.reject("%s: %v", base+DratSuffix, err)
		return fc
	}

	// Group the DRAT obligations per session, ordered by trace position.
	bySess := map[int][]dratCheckpoint{}

	termOf := func(cs *certStatus) *term.Term {
		if cs.Term < 0 || cs.Term >= len(terms) {
			report.reject("%s/%s: term index %d out of range", fc.name, cs.ID, cs.Term)
			return nil
		}
		return terms[cs.Term]
	}

	for i := range cf.Queries {
		cs := &certStatus{QueryCert: cf.Queries[i]}
		if _, dup := fc.byID[cs.ID]; dup {
			report.reject("%s: duplicate query id %s", fc.name, cs.ID)
			continue
		}
		fc.byID[cs.ID] = cs
		if verifyQueryKind(fc, cs, termOf, report) {
			if cs.Sess < 0 || cs.Sess >= len(sessions) {
				report.reject("%s/%s: session %d not in trace", fc.name, cs.ID, cs.Sess)
				continue
			}
			bySess[cs.Sess] = append(bySess[cs.Sess], dratCheckpoint{pos: cs.Pos, cs: cs})
		}
	}

	// Replay each session once, verifying learnt clauses as they appear
	// and each query's final clause at its recorded position.
	for si, steps := range sessions {
		cps := bySess[si]
		sort.SliceStable(cps, func(i, j int) bool { return cps[i].pos < cps[j].pos })
		ck := NewSessionChecker()
		next := 0
		fail := func(cs *certStatus, err error) {
			report.reject("%s/%s: %v", fc.name, cs.ID, err)
		}
		for i := 0; i <= len(steps); i++ {
			for next < len(cps) && cps[next].pos == i {
				cp := cps[next]
				next++
				if err := ck.CheckFinal(int32Slice(cp.cs.Final)); err != nil {
					fail(cp.cs, err)
					continue
				}
				cp.cs.verified = true
				report.Queries++
				report.ByKind[KindDRAT]++
			}
			if i == len(steps) {
				break
			}
			st := steps[i]
			report.Steps++
			var err error
			switch st.Op {
			case OpInput:
				err = ck.AddInput(st.Lits)
			case OpLearn:
				err = ck.AddLearnt(st.Lits)
			case OpDelete:
				err = ck.Delete(st.Lits)
			}
			if err != nil {
				report.reject("%s: session %d step %d: %v", fc.name, si, i, err)
				// The trace is broken from here on; obligations at later
				// positions cannot be trusted.
				for ; next < len(cps); next++ {
					report.reject("%s/%s: unverifiable, trace broken at step %d", fc.name, cps[next].cs.ID, i)
				}
				break
			}
		}
		for ; next < len(cps); next++ {
			report.reject("%s/%s: position %d beyond end of session %d (%d steps)",
				fc.name, cps[next].cs.ID, cps[next].pos, si, len(steps))
		}
	}
	return fc
}

// v2CertValue is one JSON value of a schema-2 certs stream after the
// header: either a query certificate or the session-metadata trailer.
type v2CertValue struct {
	QueryCert
	Sessions []SessionInfo `json:"sessions"`
}

// checkFunctionCertsV2 verifies a schema-2 certificate stream: query
// certificates decode one value at a time, terms resolve against the
// shared segment, and the binary DRAT trace replays in one forward pass.
func checkFunctionCertsV2(dir, base, fnName string, dec *json.Decoder, loader *termLoader, report *CheckReport) *fnCerts {
	fc := &fnCerts{name: fnName, byID: make(map[string]*certStatus)}
	termOf := func(cs *certStatus) *term.Term {
		if loader == nil {
			report.reject("%s/%s: schema-2 certificate but no %s segment", fc.name, cs.ID, TermsName)
			return nil
		}
		t, err := loader.Term(cs.Term)
		if err != nil {
			report.reject("%s/%s: %v", fc.name, cs.ID, err)
			return nil
		}
		return t
	}
	bySess := map[int][]dratCheckpoint{}
	for {
		var v v2CertValue
		err := dec.Decode(&v)
		if err == io.EOF {
			break
		}
		if err != nil {
			report.reject("%s: bad JSON value: %v", base+CertsSuffix, err)
			break
		}
		if v.Sessions != nil {
			continue // session variable maps; informational
		}
		cs := &certStatus{QueryCert: v.QueryCert}
		if _, dup := fc.byID[cs.ID]; dup {
			report.reject("%s: duplicate query id %s", fc.name, cs.ID)
			continue
		}
		fc.byID[cs.ID] = cs
		if verifyQueryKind(fc, cs, termOf, report) {
			if cs.Sess < 0 {
				report.reject("%s/%s: session %d not in trace", fc.name, cs.ID, cs.Sess)
				continue
			}
			bySess[cs.Sess] = append(bySess[cs.Sess], dratCheckpoint{pos: cs.Pos, cs: cs})
		}
	}
	replayDratStreaming(dir, base, fc, bySess, report)
	return fc
}

// replayDratStreaming walks the (binary) trace once, maintaining one RUP
// checker per session — sessions interleave in a streaming trace — and
// discharging each obligation when its session reaches the recorded
// position.
func replayDratStreaming(dir, base string, fc *fnCerts, bySess map[int][]dratCheckpoint, report *CheckReport) {
	type sessState struct {
		ck     *SessionChecker
		cps    []dratCheckpoint
		next   int
		pos    int
		broken bool
	}
	states := map[int]*sessState{}
	for si, cps := range bySess {
		sort.SliceStable(cps, func(i, j int) bool { return cps[i].pos < cps[j].pos })
		states[si] = &sessState{ck: NewSessionChecker(), cps: cps}
	}
	discharge := func(ss *sessState) {
		for ss.next < len(ss.cps) && ss.cps[ss.next].pos == ss.pos {
			cp := ss.cps[ss.next]
			ss.next++
			if err := ss.ck.CheckFinal(int32Slice(cp.cs.Final)); err != nil {
				report.reject("%s/%s: %v", fc.name, cp.cs.ID, err)
				continue
			}
			cp.cs.verified = true
			report.Queries++
			report.ByKind[KindDRAT]++
		}
	}
	df, err := os.Open(filepath.Join(dir, base+DratSuffix))
	if err != nil && !os.IsNotExist(err) {
		report.reject("%s: %v", base+DratSuffix, err)
	}
	if err == nil {
		werr := WalkDrat(df, func(si int, op byte, lits []int32) error {
			ss := states[si]
			if ss == nil {
				ss = &sessState{ck: NewSessionChecker()}
				states[si] = ss
			}
			if ss.broken {
				return nil // obligations already rejected; skip the rest
			}
			discharge(ss)
			report.Steps++
			var serr error
			switch op {
			case OpInput:
				serr = ss.ck.AddInput(lits)
			case OpLearn:
				serr = ss.ck.AddLearnt(lits)
			case OpDelete:
				serr = ss.ck.Delete(lits)
			}
			if serr != nil {
				report.reject("%s: session %d step %d: %v", fc.name, si, ss.pos, serr)
				ss.broken = true
				for ; ss.next < len(ss.cps); ss.next++ {
					report.reject("%s/%s: unverifiable, trace broken at step %d",
						fc.name, ss.cps[ss.next].cs.ID, ss.pos)
				}
				return nil
			}
			ss.pos++
			return nil
		})
		df.Close()
		if werr != nil {
			report.reject("%s: %v", base+DratSuffix, werr)
		}
	}
	sis := make([]int, 0, len(states))
	for si := range states {
		sis = append(sis, si)
	}
	sort.Ints(sis)
	for _, si := range sis {
		ss := states[si]
		if ss.broken {
			continue
		}
		discharge(ss)
		for ; ss.next < len(ss.cps); ss.next++ {
			report.reject("%s/%s: position %d beyond end of session %d (%d steps)",
				fc.name, ss.cps[ss.next].cs.ID, ss.cps[ss.next].pos, si, ss.pos)
		}
	}
}

func int32Slice(v []int) []int32 {
	out := make([]int32, len(v))
	for i, x := range v {
		out[i] = int32(x)
	}
	return out
}

// verifyWitness checks the structural well-formedness of a bisimulation
// witness: entry and exit points present, every non-exiting point
// explored, every cut successor covered by a pair, and every pair's
// obligations discharged by verified certificates. termAt resolves path
// conditions — against the witness's own table (schema 1) or the shared
// segment (schema 2).
func verifyWitness(wf *WitnessFile, fc *fnCerts, termAt func(int) (*term.Term, error), report *CheckReport) {
	name := wf.Function
	if wf.Mode != "equivalence" && wf.Mode != "refinement" {
		report.reject("%s: witness has unknown mode %q", name, wf.Mode)
		return
	}

	cert := func(qid, role string) *certStatus {
		cs, ok := fc.byID[qid]
		if !ok {
			report.reject("%s: %s cites unknown query %q", name, role, qid)
			return nil
		}
		if !cs.verified {
			report.reject("%s: %s cites unverified query %s", name, role, qid)
			return nil
		}
		return cs
	}
	requireResult := func(qid, role, want string) bool {
		cs := cert(qid, role)
		if cs == nil {
			return false
		}
		if cs.Result != want {
			report.reject("%s: %s cites query %s with result %s, need %s", name, role, qid, cs.Result, want)
			return false
		}
		return true
	}

	points := map[string]PointInfo{}
	entries, exits, nonExiting := 0, 0, 0
	for _, p := range wf.Points {
		if _, dup := points[p.ID]; dup {
			report.reject("%s: duplicate sync point %s", name, p.ID)
			return
		}
		points[p.ID] = p
		if p.Exiting {
			exits++
		} else {
			nonExiting++
			if p.Left == "entry" {
				entries++
			}
		}
	}
	if entries == 0 {
		report.reject("%s: witness has no entry sync point", name)
	}
	if exits == 0 {
		report.reject("%s: witness has no exiting sync point", name)
	}

	checked := map[string]bool{}
	for ci := range wf.Checked {
		cp := &wf.Checked[ci]
		p, ok := points[cp.Point]
		if !ok {
			report.reject("%s: checked record for unknown point %q", name, cp.Point)
			continue
		}
		if p.Exiting {
			report.reject("%s: checked record for exiting point %s", name, cp.Point)
			continue
		}
		if checked[cp.Point] {
			report.reject("%s: duplicate checked record for point %s", name, cp.Point)
			continue
		}
		checked[cp.Point] = true

		role := func(what string, i int) string {
			return fmt.Sprintf("point %s %s %d", cp.Point, what, i)
		}
		okSucc := func(side string, succs []SuccState) bool {
			for i, s := range succs {
				pc, err := termAt(s.PC)
				if err != nil {
					report.reject("%s: %s: %v", name, role(side, i), err)
					return false
				}
				if s.FeasQ == "" {
					if pc.Kind != term.KConstBool || pc.Val != 1 {
						report.reject("%s: %s has no feasibility query and a non-trivial path condition",
							name, role(side, i))
						return false
					}
				} else if !requireResult(s.FeasQ, role(side+" successor", i), ResSat) {
					return false
				}
			}
			return true
		}
		if !okSucc("left successor", cp.Left) || !okSucc("right successor", cp.Right) {
			continue
		}
		for i, pr := range cp.PrunedLeft {
			if pr.Q != "" {
				requireResult(pr.Q, role("pruned left", i), ResUnsat)
			}
		}
		for i, pr := range cp.PrunedRight {
			if pr.Q != "" {
				requireResult(pr.Q, role("pruned right", i), ResUnsat)
			}
		}

		leftErrors := false
		for _, s := range cp.Left {
			if s.Error != "" {
				leftErrors = true
			}
		}

		coveredL := make([]bool, len(cp.Left))
		coveredR := make([]bool, len(cp.Right))
		for pi, pair := range cp.Pairs {
			prole := fmt.Sprintf("point %s pair %d", cp.Point, pi)
			if pair.L < 0 || pair.L >= len(cp.Left) || pair.R < 0 || pair.R >= len(cp.Right) {
				report.reject("%s: %s references successors out of range", name, prole)
				continue
			}
			okPair := false
			switch pair.How {
			case HowExcuse:
				// Left UB excuses any overlapping right behavior (§4.6):
				// the left successor must be an error state and the overlap
				// of the two path conditions satisfiable.
				if cp.Left[pair.L].Error == "" {
					report.reject("%s: %s claims UB excuse but the left successor is not an error state", name, prole)
					break
				}
				if len(pair.PairQs) != 1 {
					report.reject("%s: %s excuse needs exactly one overlap query", name, prole)
					break
				}
				okPair = requireResult(pair.PairQs[0], prole+" overlap", ResSat)
			case HowFastPath:
				// Syntactic path-condition equality: valid only when both
				// pcs decode to the same node and no left error state could
				// widen the excuse disjunction.
				if cp.Left[pair.L].PC != cp.Right[pair.R].PC {
					report.reject("%s: %s claims syntactic pc equality but the conditions differ", name, prole)
					break
				}
				if leftErrors {
					report.reject("%s: %s fast path invalid: left error successors present", name, prole)
					break
				}
				okPair = verifySyncPair(wf, fc, points, cp, pair, prole, name, report, requireResult)
			case HowQueries:
				if len(pair.PairQs) != 2 {
					report.reject("%s: %s needs two pairing queries", name, prole)
					break
				}
				if !requireResult(pair.PairQs[0], prole+" pairing", ResUnsat) ||
					!requireResult(pair.PairQs[1], prole+" pairing", ResUnsat) {
					break
				}
				okPair = verifySyncPair(wf, fc, points, cp, pair, prole, name, report, requireResult)
			default:
				report.reject("%s: %s has unknown kind %q", name, prole, pair.How)
			}
			if okPair {
				coveredL[pair.L] = true
				coveredR[pair.R] = true
			}
		}
		for i, c := range coveredL {
			if !c {
				report.reject("%s: point %s left successor %d (%s) is not covered by any pair",
					name, cp.Point, i, cp.Left[i].Loc)
			}
		}
		if wf.Mode == "equivalence" {
			for i, c := range coveredR {
				if !c {
					report.reject("%s: point %s right successor %d (%s) is not covered by any pair",
						name, cp.Point, i, cp.Right[i].Loc)
				}
			}
		}
	}

	for _, p := range wf.Points {
		if !p.Exiting && !checked[p.ID] {
			report.reject("%s: non-exiting point %s has no checked record", name, p.ID)
		}
	}
}

// verifySyncPair checks the sync-point citation and obligation query of
// a queries/fastpath pair.
func verifySyncPair(wf *WitnessFile, fc *fnCerts, points map[string]PointInfo,
	cp *CheckedPoint, pair PairWitness, prole, name string, report *CheckReport,
	requireResult func(qid, role, want string) bool) bool {
	q, ok := points[pair.Sync]
	if !ok {
		report.reject("%s: %s cites unknown sync point %q", name, prole, pair.Sync)
		return false
	}
	if q.Left != cp.Left[pair.L].Loc || q.Right != cp.Right[pair.R].Loc {
		report.reject("%s: %s sync point %s is at (%s,%s) but the successors are at (%s,%s)",
			name, prole, pair.Sync, q.Left, q.Right, cp.Left[pair.L].Loc, cp.Right[pair.R].Loc)
		return false
	}
	if pair.ObligQ == "" {
		report.reject("%s: %s has no obligation query", name, prole)
		return false
	}
	return requireResult(pair.ObligQ, prole+" obligation", ResUnsat)
}
