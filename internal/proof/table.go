package proof

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/term"
)

// TermTable is the run-wide shared term table of a schema-2 proof
// directory: one append-only, mutex-striped intern table serving every
// worker of a run, replacing the per-function tables of schema 1.
// Certificates reference nodes by global id and the directory carries a
// single TERMS.jsonl segment, one TNode per line in id order.
//
// Nodes are keyed structurally — kind, width, value, name, and the
// global ids of the children — never by *term.Term pointer. Pointer
// keying would pin every recorded term for the whole run (exactly the
// O(run) memory this refactor removes) and would break once term
// contexts recycle their node storage between functions. Structural
// keying also dedups across the per-function term contexts, which is
// where most of the run-level sharing comes from: child ids are assigned
// before their parents, so ids are topological and a reader can
// materialize the table in one forward pass.
//
// Lookups take one stripe lock (the idiom of the VC cache in
// internal/smt); id assignment and row emission take a second global
// lock so rows land in the segment in id order. Per-recorder pointer
// memos (see Recorder) keep the common case — re-encoding a term the
// function already encoded — entirely lock-free.
type TermTable struct {
	shards [tableShards]tableShard

	mu  sync.Mutex // id assignment + row emission, in id order
	n   int32
	w   io.Writer // row sink; nil for an in-memory table
	buf []byte
	err error
}

const tableShards = 64

type tableShard struct {
	mu sync.Mutex
	m  map[nodeKey]int32
}

// nodeKey is the structural identity of one node. Absent children are
// -1: 0 is a valid global id.
type nodeKey struct {
	kind       term.Kind
	width      uint8
	hi, lo     uint8
	val        uint64
	name       string
	a0, a1, a2 int32
}

func (k *nodeKey) shard() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(uint64(k.kind))
	mix(uint64(k.width) | uint64(k.hi)<<8 | uint64(k.lo)<<16)
	mix(k.val)
	for i := 0; i < len(k.name); i++ {
		h ^= uint64(k.name[i])
		h *= prime
	}
	mix(uint64(uint32(k.a0)))
	mix(uint64(uint32(k.a1)))
	mix(uint64(uint32(k.a2)))
	return h
}

// NewTermTable returns an empty shared table writing rows to w (which
// may be nil for an in-memory table, used by tests).
func NewTermTable(w io.Writer) *TermTable {
	tt := &TermTable{w: w}
	for i := range tt.shards {
		tt.shards[i].m = make(map[nodeKey]int32)
	}
	return tt
}

// Len returns the number of interned nodes.
func (tt *TermTable) Len() int {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return int(tt.n)
}

// Err returns the first row-emission error, if any.
func (tt *TermTable) Err() error {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.err
}

// Intern interns t (and its subterms) and returns its global id. memo is
// the caller's private pointer memo — within one term context,
// hash-consing makes structurally equal terms pointer-equal, so the memo
// short-circuits both the walk and the locks.
func (tt *TermTable) Intern(t *term.Term, memo map[*term.Term]int32) int {
	if id, ok := memo[t]; ok {
		return int(id)
	}
	type frame struct {
		t    *term.Term
		next int
	}
	stack := []frame{{t: t}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.Args) {
			arg := f.t.Args[f.next]
			f.next++
			if _, ok := memo[arg]; !ok {
				stack = append(stack, frame{t: arg})
			}
			continue
		}
		if _, ok := memo[f.t]; !ok {
			memo[f.t] = tt.intern(f.t, memo)
		}
		stack = stack[:len(stack)-1]
	}
	return int(memo[t])
}

// intern resolves one node whose children are already in memo.
func (tt *TermTable) intern(t *term.Term, memo map[*term.Term]int32) int32 {
	k := nodeKey{kind: t.Kind, width: t.Width, hi: t.Hi, lo: t.Lo, val: t.Val, name: t.Name,
		a0: -1, a1: -1, a2: -1}
	for i, a := range t.Args {
		switch i {
		case 0:
			k.a0 = memo[a]
		case 1:
			k.a1 = memo[a]
		case 2:
			k.a2 = memo[a]
		default:
			panic("proof: term with more than 3 args")
		}
	}
	sh := &tt.shards[k.shard()%tableShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.m[k]; ok {
		return id
	}
	tt.mu.Lock()
	id := tt.n
	tt.n++
	if tt.w != nil && tt.err == nil {
		tt.err = tt.emitRow(t, &k)
	}
	tt.mu.Unlock()
	sh.m[k] = id
	return id
}

// emitRow appends the TNode JSON line for a freshly assigned id. Called
// with tt.mu held, so rows are written in id order.
func (tt *TermTable) emitRow(t *term.Term, k *nodeKey) error {
	n := TNode{
		K:  term.KindName(t.Kind),
		W:  t.Width,
		N:  t.Name,
		Hi: t.Hi,
		Lo: t.Lo,
	}
	if t.Val != 0 {
		n.V = fmt.Sprintf("%d", t.Val)
	}
	for i := 0; i < len(t.Args); i++ {
		switch i {
		case 0:
			n.A = append(n.A, int(k.a0))
		case 1:
			n.A = append(n.A, int(k.a1))
		case 2:
			n.A = append(n.A, int(k.a2))
		}
	}
	data, err := json.Marshal(&n)
	if err != nil {
		return err
	}
	tt.buf = append(append(tt.buf[:0], data...), '\n')
	_, err = tt.w.Write(tt.buf)
	return err
}
