package proof

import "testing"

// TestRUPChain verifies the basic RUP discipline: a clause implied by
// unit propagation is accepted, an unsupported clause is rejected.
func TestRUPChain(t *testing.T) {
	ck := NewSessionChecker()
	for _, cl := range [][]int32{{1, 2}, {-1, 2}} {
		if err := ck.AddInput(cl); err != nil {
			t.Fatal(err)
		}
	}
	// {2} is RUP: asserting ¬2 propagates 1 from the first clause and
	// conflicts with the second.
	if err := ck.AddLearnt([]int32{2}); err != nil {
		t.Fatalf("RUP clause rejected: %v", err)
	}
	// {1} is not implied (x1=false, x2=true satisfies both inputs).
	if err := ck.AddLearnt([]int32{1}); err == nil {
		t.Fatal("non-RUP clause accepted")
	}
}

// TestRUPRefutation checks that contradictory units refute the session
// at root and that the empty-clause final obligation then verifies.
func TestRUPRefutation(t *testing.T) {
	ck := NewSessionChecker()
	if err := ck.AddInput([]int32{3}); err != nil {
		t.Fatal(err)
	}
	if ck.RootConflict() {
		t.Fatal("premature root conflict")
	}
	if err := ck.CheckFinal(nil); err == nil {
		t.Fatal("empty clause verified without a refutation")
	}
	if err := ck.AddInput([]int32{-3}); err != nil {
		t.Fatal(err)
	}
	if !ck.RootConflict() {
		t.Fatal("contradictory units did not refute at root")
	}
	if err := ck.CheckFinal(nil); err != nil {
		t.Fatalf("empty clause not RUP after refutation: %v", err)
	}
}

// TestRUPAssumptionFinal models the incremental certificate: the
// negated-assumption clause must be RUP when root propagation falsifies
// the assumption.
func TestRUPAssumptionFinal(t *testing.T) {
	ck := NewSessionChecker()
	// x1 → x2, x1 → ¬x2: root has no forced values, but assuming x1
	// propagates a conflict, so {-1} is RUP.
	for _, cl := range [][]int32{{-1, 2}, {-1, -2}} {
		if err := ck.AddInput(cl); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.CheckFinal([]int32{-1}); err != nil {
		t.Fatalf("negated assumption not RUP: %v", err)
	}
	// The complementary assumption is satisfiable; its negation must not
	// verify.
	if err := ck.CheckFinal([]int32{-2}); err == nil {
		t.Fatal("satisfiable assumption's negation verified")
	}
}

// TestDeleteStrictMatch checks that deletions require an exact live
// clause — a tampered trace deleting a clause that was never added (or
// twice) is rejected.
func TestDeleteStrictMatch(t *testing.T) {
	ck := NewSessionChecker()
	if err := ck.AddInput([]int32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Delete([]int32{1, 2}); err == nil {
		t.Fatal("delete of absent clause accepted")
	}
	// Literal order must not matter: the clause key is canonical.
	if err := ck.Delete([]int32{3, 1, 2}); err != nil {
		t.Fatalf("delete of live clause rejected: %v", err)
	}
	if err := ck.Delete([]int32{1, 2, 3}); err == nil {
		t.Fatal("double delete accepted")
	}
}

// TestDeletionDoesNotUnsoundlyKeepPropagating checks the documented
// deletion semantics: a deleted clause leaves already-derived root
// literals in place but stops participating in later propagation.
func TestDeletionDoesNotUnsoundlyKeepPropagating(t *testing.T) {
	ck := NewSessionChecker()
	for _, cl := range [][]int32{{1, 2}, {-1, 2}} {
		if err := ck.AddInput(cl); err != nil {
			t.Fatal(err)
		}
	}
	if err := ck.Delete([]int32{1, 2}); err != nil {
		t.Fatal(err)
	}
	// With {1,2} gone, {2} is no longer RUP.
	if err := ck.AddLearnt([]int32{2}); err == nil {
		t.Fatal("learnt clause verified against a deleted clause")
	}
}
