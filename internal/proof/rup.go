package proof

import (
	"fmt"
	"sort"
)

// SessionChecker replays one SAT session trace forward, verifying every
// learnt clause by reverse unit propagation (RUP): asserting the
// negation of the clause and running unit propagation over the clauses
// live at that point must yield a conflict. It is a propagation-only
// engine — no decisions, no learning, no heuristics — so it shares no
// code path with the CDCL solver it checks.
//
// Soundness under deletion: deleting a clause only shrinks the live set
// used for later propagation; root literals already derived remain
// logical consequences of the input clauses plus previously verified
// lemmas, so they are kept (exactly as DRAT checkers do).
type SessionChecker struct {
	nvars  int
	assign []int8 // 1 true, -1 false, 0 unassigned
	trail  []int32
	qhead  int

	clauses []*rclause
	watches [][]int32 // indexed by internal literal; clause indices
	byKey   map[string][]int32

	rootConflict bool
	rootTrail    int // length of the persistent prefix of trail
}

type rclause struct {
	lits    []int32 // internal encoding: 2*var + sign
	deleted bool
}

// NewSessionChecker returns an empty checker.
func NewSessionChecker() *SessionChecker {
	return &SessionChecker{byKey: make(map[string][]int32)}
}

// internal literal encoding, mirroring DIMACS input: variable v (1-based
// in DIMACS) becomes 0-based; low bit set means negated.
func (c *SessionChecker) internLit(d int32) (int32, error) {
	if d == 0 {
		return 0, fmt.Errorf("proof: zero literal in clause")
	}
	v := d
	neg := int32(0)
	if v < 0 {
		v = -v
		neg = 1
	}
	v-- // 0-based
	for int(v) >= c.nvars {
		c.assign = append(c.assign, 0)
		c.watches = append(c.watches, nil, nil)
		c.nvars++
	}
	return v<<1 | neg, nil
}

func (c *SessionChecker) value(l int32) int8 {
	a := c.assign[l>>1]
	if l&1 == 1 {
		return -a
	}
	return a
}

func (c *SessionChecker) enqueue(l int32) {
	if l&1 == 1 {
		c.assign[l>>1] = -1
	} else {
		c.assign[l>>1] = 1
	}
	c.trail = append(c.trail, l)
}

// propagate runs unit propagation to fixpoint; it reports whether a
// conflict was reached.
func (c *SessionChecker) propagate() bool {
	for c.qhead < len(c.trail) {
		p := c.trail[c.qhead]
		c.qhead++
		// watches[p] holds the clauses watching literal ¬p, which p's
		// assertion has just falsified.
		notP := p ^ 1
		ws := c.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			ci := ws[i]
			cl := c.clauses[ci]
			if cl.deleted {
				continue // drop lazily
			}
			lits := cl.lits
			if lits[0] == notP {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if c.value(first) == 1 {
				ws[j] = ci
				j++
				continue
			}
			for k := 2; k < len(lits); k++ {
				if c.value(lits[k]) != -1 {
					lits[1], lits[k] = lits[k], lits[1]
					// The clause now watches lits[1]; index it under the
					// literal whose assertion falsifies it.
					nw := lits[1] ^ 1
					c.watches[nw] = append(c.watches[nw], ci)
					continue nextWatcher
				}
			}
			ws[j] = ci
			j++
			if c.value(first) == -1 {
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				c.watches[p] = ws[:j]
				c.qhead = len(c.trail)
				return true
			}
			c.enqueue(first)
		}
		c.watches[p] = ws[:j]
	}
	return false
}

// backtrack unassigns every literal beyond the persistent root prefix.
func (c *SessionChecker) backtrack() {
	for i := len(c.trail) - 1; i >= c.rootTrail; i-- {
		c.assign[c.trail[i]>>1] = 0
	}
	c.trail = c.trail[:c.rootTrail]
	c.qhead = c.rootTrail
}

func clauseKey(lits []int32) string {
	s := append([]int32(nil), lits...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	b := make([]byte, 0, len(s)*5)
	for _, l := range s {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24), ',')
	}
	return string(b)
}

// AddInput adds an original clause (no RUP obligation) to the live set.
func (c *SessionChecker) AddInput(dimacs []int32) error {
	lits, err := c.internAll(dimacs)
	if err != nil {
		return err
	}
	c.install(lits)
	return nil
}

// AddLearnt verifies the clause by RUP against the current live set and,
// on success, adds it.
func (c *SessionChecker) AddLearnt(dimacs []int32) error {
	lits, err := c.internAll(dimacs)
	if err != nil {
		return err
	}
	if !c.rup(lits) {
		return fmt.Errorf("proof: learnt clause %v is not RUP", dimacs)
	}
	c.install(lits)
	return nil
}

// Delete removes a clause from the live set. The clause must be present
// (strict matching catches tampered traces).
func (c *SessionChecker) Delete(dimacs []int32) error {
	lits, err := c.internAll(dimacs)
	if err != nil {
		return err
	}
	key := clauseKey(lits)
	ids := c.byKey[key]
	if len(ids) == 0 {
		return fmt.Errorf("proof: delete of absent clause %v", dimacs)
	}
	ci := ids[len(ids)-1]
	c.byKey[key] = ids[:len(ids)-1]
	c.clauses[ci].deleted = true
	return nil
}

// CheckFinal verifies that the clause is RUP against the current live
// set — the per-query Unsat obligation (empty = global refutation) —
// and, on success, installs it as a proven lemma.
func (c *SessionChecker) CheckFinal(dimacs []int32) error {
	lits, err := c.internAll(dimacs)
	if err != nil {
		return err
	}
	if !c.rup(lits) {
		return fmt.Errorf("proof: final clause %v is not RUP", dimacs)
	}
	c.install(lits)
	return nil
}

// RootConflict reports whether the live set has been refuted at the root
// level (the empty clause is derivable by propagation alone).
func (c *SessionChecker) RootConflict() bool { return c.rootConflict }

func (c *SessionChecker) internAll(dimacs []int32) ([]int32, error) {
	lits := make([]int32, len(dimacs))
	for i, d := range dimacs {
		l, err := c.internLit(d)
		if err != nil {
			return nil, err
		}
		lits[i] = l
	}
	return lits, nil
}

// rup reports whether asserting the negation of lits propagates to a
// conflict. The trail is restored to the persistent root prefix.
func (c *SessionChecker) rup(lits []int32) bool {
	if c.rootConflict {
		return true
	}
	for _, l := range lits {
		if c.value(l) == 1 {
			return true // some literal already true at root: ¬C conflicts immediately
		}
	}
	for _, l := range lits {
		if c.value(l) == 0 {
			c.enqueue(l ^ 1)
		}
	}
	conflict := c.propagate()
	c.backtrack()
	return conflict
}

// install adds a clause to the live set and extends the persistent root
// state: empty clauses set the root conflict, unit (or effectively unit)
// clauses are propagated at root.
func (c *SessionChecker) install(lits []int32) {
	ci := int32(len(c.clauses))
	c.clauses = append(c.clauses, &rclause{lits: lits})
	key := clauseKey(lits)
	c.byKey[key] = append(c.byKey[key], ci)
	if c.rootConflict {
		return
	}
	// Classify under the current root assignment.
	var nonFalse []int32
	sat := false
	for _, l := range lits {
		switch c.value(l) {
		case 1:
			sat = true
		case 0:
			nonFalse = append(nonFalse, l)
		}
	}
	switch {
	case sat:
		// Root-satisfied: can never propagate (root assignments persist).
	case len(nonFalse) == 0:
		c.rootConflict = true
	case len(nonFalse) == 1:
		c.enqueue(nonFalse[0])
		if c.propagate() {
			c.rootConflict = true
		}
		c.rootTrail = len(c.trail)
	default:
		// Watch two currently-non-false literals: reorder so they are in
		// front, then attach.
		cl := c.clauses[ci]
		c.moveToFront(cl.lits, nonFalse[0], nonFalse[1])
		c.watches[cl.lits[0]^1] = append(c.watches[cl.lits[0]^1], ci)
		c.watches[cl.lits[1]^1] = append(c.watches[cl.lits[1]^1], ci)
	}
}

func (c *SessionChecker) moveToFront(lits []int32, a, b int32) {
	for i, l := range lits {
		if l == a {
			lits[0], lits[i] = lits[i], lits[0]
			break
		}
	}
	for i := 1; i < len(lits); i++ {
		if lits[i] == b {
			lits[1], lits[i] = lits[i], lits[1]
			break
		}
	}
}
