package proof

import (
	"bufio"
	"bytes"
	"compress/flate"
	"fmt"
	"io"
)

// Schema-2 JSON artifacts (certs streams, the TERMS.jsonl segment,
// witnesses) are written through a small compressed container: the
// 4-byte magic "BJSN", one version byte, then a single DEFLATE stream
// holding the exact bytes the schema-1 format would have written.
// Readers sniff the magic, so plain schema-1 artifacts keep decoding
// through the same code paths. Models and term rows are where the
// redundancy lives — the container takes the certificate side of a
// proof directory down roughly 10x.
const (
	zjsonMagic   = "BJSN"
	zjsonVersion = 1
)

// zWriter chains payload -> DEFLATE -> w. Everything below it sees
// compressed bytes, so a countWriter underneath keeps counting what
// actually lands on disk.
type zWriter struct {
	fw  *flate.Writer
	err error
}

func newZWriter(w io.Writer) *zWriter {
	z := &zWriter{}
	if _, err := io.WriteString(w, zjsonMagic+string(rune(zjsonVersion))); err != nil {
		z.err = err
		return z
	}
	fw, err := flate.NewWriter(w, flate.DefaultCompression)
	if err != nil {
		z.err = err
		return z
	}
	z.fw = fw
	return z
}

func (z *zWriter) Write(p []byte) (int, error) {
	if z.err != nil {
		return 0, z.err
	}
	n, err := z.fw.Write(p)
	if err != nil {
		z.err = err
	}
	return n, err
}

// Close terminates the DEFLATE stream (without it the final block never
// flushes and the artifact is truncated). It does not close the
// underlying writer.
func (z *zWriter) Close() error {
	if z.err != nil {
		return z.err
	}
	if err := z.fw.Close(); err != nil {
		z.err = err
	}
	return z.err
}

// maybeInflate sniffs r: the container magic selects DEFLATE decoding,
// anything else passes through unchanged (plain schema-1 JSON). An
// unknown container version is an error, not a passthrough — decoding
// a future format as JSON would produce a misleading rejection.
func maybeInflate(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, _ := br.Peek(len(zjsonMagic) + 1)
	if len(head) >= len(zjsonMagic) && string(head[:len(zjsonMagic)]) == zjsonMagic {
		if len(head) < len(zjsonMagic)+1 || head[len(zjsonMagic)] != zjsonVersion {
			return nil, fmt.Errorf("proof: unsupported compressed-JSON container version")
		}
		br.Discard(len(zjsonMagic) + 1)
		return flate.NewReader(br), nil
	}
	return br, nil
}

// deflateJSON wraps one whole marshalled document in the container
// (used for witnesses, which are written in a single shot).
func deflateJSON(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	zw := newZWriter(&buf)
	if zw.err != nil {
		return nil, zw.err
	}
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
