package proof_test

// End-to-end tests of the certificate chain: a real corpus run emits
// certificates and witnesses, the independent checker verifies them with
// zero rejections, and targeted tampering with every artifact class —
// DRAT clauses, witness pairs, Sat models — must be caught. The final
// test pins the trust-base claim: cmd/proofcheck must never link the SAT
// or SMT solver.

import (
	"bytes"
	"compress/flate"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/proof"
	"repro/internal/tv"
)

var (
	e2eOnce sync.Once
	e2eDir  string
	e2eSum  *harness.Summary
	e2eErr  error

	legacyOnce sync.Once
	legacyDir  string
	legacySum  *harness.Summary
	legacyErr  error
)

// e2eConfig is the shared corpus configuration of the cached runs, so the
// streaming and legacy directories describe the same validation work.
func e2eConfig(dir string) harness.Config {
	return harness.Config{
		Profile:  corpus.GCCLike(8),
		Budget:   tv.Budget{MaxTermNodes: 3_000_000},
		Workers:  2,
		ProofDir: dir,
	}
}

// emitProofDir runs a small corpus once with (streaming, schema 2) proof
// emission on and caches the directory for every test in this file.
func emitProofDir(t *testing.T) (string, *harness.Summary) {
	t.Helper()
	e2eOnce.Do(func() {
		dir, err := os.MkdirTemp("", "proofdir")
		if err != nil {
			e2eErr = err
			return
		}
		e2eDir = dir
		e2eSum = harness.Run(e2eConfig(dir))
		e2eErr = e2eSum.ProofErr
	})
	if e2eErr != nil {
		t.Fatal(e2eErr)
	}
	return e2eDir, e2eSum
}

// emitLegacyProofDir is emitProofDir with the schema-1 buffered writers
// (the -proof-legacy ablation) over the identical corpus.
func emitLegacyProofDir(t *testing.T) (string, *harness.Summary) {
	t.Helper()
	legacyOnce.Do(func() {
		dir, err := os.MkdirTemp("", "proofdir-legacy")
		if err != nil {
			legacyErr = err
			return
		}
		legacyDir = dir
		cfg := e2eConfig(dir)
		cfg.ProofLegacy = true
		legacySum = harness.Run(cfg)
		legacyErr = legacySum.ProofErr
	})
	if legacyErr != nil {
		t.Fatal(legacyErr)
	}
	return legacyDir, legacySum
}

func TestMain(m *testing.M) {
	code := m.Run()
	if e2eDir != "" {
		os.RemoveAll(e2eDir)
	}
	if legacyDir != "" {
		os.RemoveAll(legacyDir)
	}
	os.Exit(code)
}

// copyProofDir clones the emitted proof directory so tamper tests can
// mutate their own copy.
func copyProofDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		out.Close()
	}
	return dst
}

// TestEndToEndProofsVerify is the pipeline acceptance test: corpus run →
// emitted certificates → CheckDir with zero rejections, and the run must
// actually exercise the interesting certificate kinds.
func TestEndToEndProofsVerify(t *testing.T) {
	dir, sum := emitProofDir(t)
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) != 0 {
		t.Fatalf("%d rejections, first: %s", len(report.Rejections), report.Rejections[0])
	}
	if report.Functions != 8 {
		t.Fatalf("checked %d functions, want 8", report.Functions)
	}
	if report.Witnesses == 0 || report.Witnesses != sum.Certified {
		t.Fatalf("verified %d witnesses, harness certified %d", report.Witnesses, sum.Certified)
	}
	for _, kind := range []string{proof.KindDRAT, proof.KindModel} {
		if report.ByKind[kind] == 0 {
			t.Errorf("corpus run produced no %q certificates — test corpus too small to be meaningful", kind)
		}
	}
	if report.Queries != int(sum.SMTStats.Certificates) {
		t.Errorf("checker saw %d query certs, solver recorded %d", report.Queries, sum.SMTStats.Certificates)
	}
}

// findFile returns a file in dir with the given suffix for which accept
// (on its contents) returns true.
func findFile(t *testing.T, dir, suffix string, accept func([]byte) bool) (string, []byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if accept == nil || accept(data) {
			return path, data
		}
	}
	t.Fatalf("no %s file matching predicate in %s", suffix, dir)
	return "", nil
}

// inflate undoes the schema-2 compressed-JSON container ("BJSN" magic,
// version byte, DEFLATE body); plain schema-1 bytes pass through and a
// broken body comes back nil (predicates treat that as a non-match).
func inflate(data []byte) []byte {
	if len(data) < 5 || string(data[:4]) != "BJSN" {
		return data
	}
	out, err := io.ReadAll(flate.NewReader(bytes.NewReader(data[5:])))
	if err != nil {
		return nil
	}
	return out
}

// deflate re-wraps tampered JSON in the container, so the checker takes
// the same decode path it takes on untampered artifacts.
func deflate(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("BJSN\x01")
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// dratStep is one decoded trace step, for tamper tests that re-encode.
type dratStep struct {
	sess int
	op   byte
	lits []int32
}

// decodeDrat decodes a .drat file (either format) into its step list,
// returning nil on any decode error.
func decodeDrat(data []byte) []dratStep {
	var steps []dratStep
	err := proof.WalkDrat(bytes.NewReader(data), func(sess int, op byte, lits []int32) error {
		steps = append(steps, dratStep{sess, op, append([]int32(nil), lits...)})
		return nil
	})
	if err != nil {
		return nil
	}
	return steps
}

// TestTamperedDRATClauseRejected flips a literal inside a learnt clause
// of a binary DRAT trace and re-encodes it — a well-formed container
// whose RUP obligation no longer holds; the replay must reject the
// session and the certificates pointing into it.
func TestTamperedDRATClauseRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	path, data := findFile(t, dir, proof.DratSuffix, func(b []byte) bool {
		for _, s := range decodeDrat(b) {
			if s.op == proof.OpLearn && len(s.lits) > 0 {
				return true
			}
		}
		return false
	})
	steps := decodeDrat(data)
	tampered := false
	for _, s := range steps {
		if s.op == proof.OpLearn && len(s.lits) > 0 {
			s.lits[0] = -s.lits[0]
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no learnt clause found to tamper with")
	}
	var buf bytes.Buffer
	bw := proof.NewBinWriter(&buf)
	for _, s := range steps {
		if err := bw.Step(s.sess, s.op, s.lits); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) == 0 {
		t.Fatalf("tampered DRAT clause in %s was not rejected", filepath.Base(path))
	}
}

// TestTamperedDRATByteFlipRejected flips a raw byte inside the
// compressed body of a binary DRAT trace; the checker must report the
// broken file rather than silently verifying a truncated prefix.
func TestTamperedDRATByteFlipRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	path, data := findFile(t, dir, proof.DratSuffix, func(b []byte) bool {
		return len(b) > 64 && len(decodeDrat(b)) > 0
	})
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) == 0 {
		t.Fatalf("byte-flipped DRAT file %s was not rejected", filepath.Base(path))
	}
}

// TestTamperedWitnessPairRejected drops one blackened pair from a
// bisimulation witness; the coverage check must reject the witness.
func TestTamperedWitnessPairRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	path, data := findFile(t, dir, proof.WitnessSuffix, func(b []byte) bool {
		var w proof.WitnessFile
		if err := json.Unmarshal(inflate(b), &w); err != nil {
			return false
		}
		for _, cp := range w.Checked {
			if len(cp.Pairs) > 0 {
				return true
			}
		}
		return false
	})
	var w proof.WitnessFile
	if err := json.Unmarshal(inflate(data), &w); err != nil {
		t.Fatal(err)
	}
	for i := range w.Checked {
		if len(w.Checked[i].Pairs) > 0 {
			w.Checked[i].Pairs = w.Checked[i].Pairs[1:]
			break
		}
	}
	out, err := json.Marshal(&w)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, deflate(t, out), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) == 0 {
		t.Fatalf("witness %s with a dropped sync pair was not rejected", filepath.Base(path))
	}
}

// TestUnknownContainerVersionRejected bumps the version byte of a
// compressed certs container; the checker must report an unsupported
// version, not attempt to parse the DEFLATE body as JSON.
func TestUnknownContainerVersionRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	path, data := findFile(t, dir, proof.CertsSuffix, func(b []byte) bool {
		return len(b) > 5 && string(b[:4]) == "BJSN"
	})
	data[4] = 99
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range report.Rejections {
		if strings.Contains(r, "unsupported compressed-JSON container version") {
			found = true
		}
	}
	if !found {
		t.Fatalf("future container version was not rejected as such; rejections: %v", report.Rejections)
	}
}

// certValues splits a schema-2 certs file (a stream of concatenated
// JSON values) into its raw values, or nil when the stream is malformed.
func certValues(data []byte) []json.RawMessage {
	dec := json.NewDecoder(bytes.NewReader(data))
	var vals []json.RawMessage
	for {
		var raw json.RawMessage
		err := dec.Decode(&raw)
		if err == io.EOF {
			return vals
		}
		if err != nil {
			return nil
		}
		vals = append(vals, raw)
	}
}

// TestTamperedModelRejected corrupts a Sat model value in a streamed
// certificate file; re-evaluating the term DAG under the broken model
// must fail.
func TestTamperedModelRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	hasModel := func(b []byte) bool {
		for _, raw := range certValues(inflate(b)) {
			var q proof.QueryCert
			if json.Unmarshal(raw, &q) != nil {
				continue
			}
			if q.Kind == proof.KindModel && q.Model != nil && len(q.Model.BV) > 0 {
				return true
			}
		}
		return false
	}
	path, data := findFile(t, dir, proof.CertsSuffix, hasModel)
	vals := certValues(inflate(data))
	tampered := 0
	for i, raw := range vals {
		var q proof.QueryCert
		if json.Unmarshal(raw, &q) != nil {
			continue
		}
		if q.Kind != proof.KindModel || q.Model == nil || len(q.Model.BV) == 0 {
			continue
		}
		// Flipping the low bit of every bitvector assignment breaks at
		// least one model in the file (a model where no variable matters
		// would have been a trivial certificate instead). Tamper all of
		// them so the test does not depend on which query is load-bearing.
		for j := range q.Model.BV {
			v, err := strconv.ParseUint(q.Model.BV[j].Val, 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			q.Model.BV[j].Val = strconv.FormatUint(v^1, 10)
		}
		out, err := json.Marshal(&q)
		if err != nil {
			t.Fatal(err)
		}
		vals[i] = out
		tampered++
	}
	if tampered == 0 {
		t.Fatal("no model certificate found to tamper with")
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, raw := range vals {
		if err := enc.Encode(raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, deflate(t, buf.Bytes()), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) == 0 {
		t.Fatalf("tampered models in %s were not rejected", filepath.Base(path))
	}
}

// TestLegacyStreamingParity pins the refactor's behavioral neutrality:
// the schema-1 buffered writers and the schema-2 streaming writers must
// produce identical validation classes over the identical corpus, both
// directories must verify with zero rejections, and the streaming
// artifacts must be substantially smaller.
func TestLegacyStreamingParity(t *testing.T) {
	sdir, ssum := emitProofDir(t)
	ldir, lsum := emitLegacyProofDir(t)

	if len(ssum.Rows) != len(lsum.Rows) {
		t.Fatalf("row counts differ: streaming %d, legacy %d", len(ssum.Rows), len(lsum.Rows))
	}
	for i := range ssum.Rows {
		if ssum.Rows[i].Class != lsum.Rows[i].Class {
			t.Errorf("row %d (%s): streaming %s, legacy %s",
				i, ssum.Rows[i].Fn, ssum.Rows[i].Class, lsum.Rows[i].Class)
		}
	}

	sreport, err := proof.CheckDir(sdir)
	if err != nil {
		t.Fatal(err)
	}
	lreport, err := proof.CheckDir(ldir)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*proof.CheckReport{"streaming": sreport, "legacy": lreport} {
		if len(r.Rejections) != 0 {
			t.Fatalf("%s: %d rejections, first: %s", name, len(r.Rejections), r.Rejections[0])
		}
	}
	if sreport.Queries != lreport.Queries || sreport.Witnesses != lreport.Witnesses {
		t.Errorf("verified work differs: streaming %d queries/%d witnesses, legacy %d/%d",
			sreport.Queries, sreport.Witnesses, lreport.Queries, lreport.Witnesses)
	}

	sbytes, lbytes := ssum.SMTStats.ProofBytes, lsum.SMTStats.ProofBytes
	if sbytes >= lbytes {
		t.Errorf("streaming artifacts (%d B) not smaller than legacy (%d B)", sbytes, lbytes)
	}
}

// proofDirSize sums the artifact files of a proof directory — everything
// ProofBytes accounts for, i.e. all files except the manifest.
func proofDirSize(t *testing.T, dir string) int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, e := range entries {
		if e.Name() == proof.ManifestName {
			continue
		}
		fi, err := os.Stat(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	return total
}

// TestProofBytesMatchesDisk pins the ProofBytes fix: the stat must count
// bytes actually written to disk, for both emission paths.
func TestProofBytesMatchesDisk(t *testing.T) {
	sdir, ssum := emitProofDir(t)
	if got, want := ssum.SMTStats.ProofBytes, proofDirSize(t, sdir); got != want {
		t.Errorf("streaming ProofBytes = %d, on-disk artifacts = %d", got, want)
	}
	ldir, lsum := emitLegacyProofDir(t)
	if got, want := lsum.SMTStats.ProofBytes, proofDirSize(t, ldir); got != want {
		t.Errorf("legacy ProofBytes = %d, on-disk artifacts = %d", got, want)
	}
}

// TestCrossFormatDratIdentical transcodes every binary DRAT trace of the
// streaming run into the schema-1 text format in place; RUP verification
// must accept the directory identically — same verified queries, same
// step counts, zero rejections — pinning that the two containers encode
// the same proof.
func TestCrossFormatDratIdentical(t *testing.T) {
	src, _ := emitProofDir(t)
	before, err := proof.CheckDir(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := copyProofDir(t, src)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	transcoded := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), proof.DratSuffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		cur := -1
		werr := proof.WalkDrat(bytes.NewReader(data), func(sess int, op byte, lits []int32) error {
			if sess != cur {
				fmt.Fprintf(&buf, "s %d\n", sess)
				cur = sess
			}
			fmt.Fprintf(&buf, "%c", op)
			for _, l := range lits {
				fmt.Fprintf(&buf, " %d", l)
			}
			buf.WriteString(" 0\n")
			return nil
		})
		if werr != nil {
			t.Fatal(werr)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		transcoded++
	}
	if transcoded == 0 {
		t.Fatal("no DRAT traces to transcode")
	}
	after, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rejections) != 0 {
		t.Fatalf("transcoded text traces rejected: %s", after.Rejections[0])
	}
	if after.Queries != before.Queries || after.Steps != before.Steps ||
		after.ByKind[proof.KindDRAT] != before.ByKind[proof.KindDRAT] {
		t.Errorf("verification differs across formats: binary %d queries/%d steps/%d drat, text %d/%d/%d",
			before.Queries, before.Steps, before.ByKind[proof.KindDRAT],
			after.Queries, after.Steps, after.ByKind[proof.KindDRAT])
	}
}

// TestScratchParity pins the arena refactor's behavioral neutrality:
// validating the identical corpus with per-worker scratch reuse disabled
// must produce the identical per-row classes.
func TestScratchParity(t *testing.T) {
	_, ssum := emitProofDir(t)
	cfg := e2eConfig("")
	cfg.DisableScratch = true
	nsum := harness.Run(cfg)
	if len(nsum.Rows) != len(ssum.Rows) {
		t.Fatalf("row counts differ: scratch %d, no-scratch %d", len(ssum.Rows), len(nsum.Rows))
	}
	for i := range ssum.Rows {
		if ssum.Rows[i].Class != nsum.Rows[i].Class {
			t.Errorf("row %d (%s): scratch %s, no-scratch %s",
				i, ssum.Rows[i].Fn, ssum.Rows[i].Class, nsum.Rows[i].Class)
		}
	}
}

// TestMemTelemetryRecorded pins the mem.* series: a corpus run must
// record per-phase allocation histograms for every function.
func TestMemTelemetryRecorded(t *testing.T) {
	_, sum := emitProofDir(t)
	for _, name := range []string{"mem.parse", "mem.isel", "mem.vcgen", "mem.check", "mem.peak"} {
		if sum.Metrics.Hist(name).Count == 0 {
			t.Errorf("no %s observations recorded", name)
		}
	}
}

// TestProofcheckImportConstraint pins the trust-base claim with the build
// graph itself: the transitive dependencies of cmd/proofcheck must
// include the certificate package but never the SAT solver or the SMT
// facade.
func TestProofcheckImportConstraint(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	out, err := exec.Command(goBin, "list", "-deps", "repro/cmd/proofcheck").CombinedOutput()
	if err != nil {
		t.Fatalf("go list -deps: %v\n%s", err, out)
	}
	deps := strings.Fields(string(out))
	has := func(pkg string) bool {
		for _, d := range deps {
			if d == pkg {
				return true
			}
		}
		return false
	}
	if !has("repro/internal/proof") {
		t.Fatal("proofcheck does not depend on repro/internal/proof — wrong package listed?")
	}
	for _, forbidden := range []string{"repro/internal/sat", "repro/internal/smt", "repro/internal/core"} {
		if has(forbidden) {
			t.Errorf("cmd/proofcheck links %s — the checker must not share solving code with the validator", forbidden)
		}
	}
}

// TestPerFunctionSegmentsVerify pins the self-contained per-function
// layout result-store entries use: a directory whose term ids resolve
// against <base>.terms.jsonl segments instead of the shared TERMS.jsonl
// must verify identically, and the per-function segment must win when
// both are present.
func TestPerFunctionSegmentsVerify(t *testing.T) {
	src, _ := emitProofDir(t)
	before, err := proof.CheckDir(src)
	if err != nil {
		t.Fatal(err)
	}
	dir := copyProofDir(t, src)
	shared, err := os.ReadFile(filepath.Join(dir, proof.TermsName))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segments := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), proof.CertsSuffix) {
			continue
		}
		base := strings.TrimSuffix(e.Name(), proof.CertsSuffix)
		// The run-wide segment is a superset of every function's terms,
		// so it doubles as each function's own segment here.
		if err := os.WriteFile(filepath.Join(dir, base+proof.TermsSuffix), shared, 0o644); err != nil {
			t.Fatal(err)
		}
		segments++
	}
	if segments == 0 {
		t.Fatal("no certificate files to convert")
	}
	if err := os.Remove(filepath.Join(dir, proof.TermsName)); err != nil {
		t.Fatal(err)
	}
	after, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rejections) != 0 {
		t.Fatalf("per-function layout rejected: %s", after.Rejections[0])
	}
	if after.Queries != before.Queries || after.Witnesses != before.Witnesses {
		t.Errorf("verification differs: shared %d queries/%d witnesses, per-function %d/%d",
			before.Queries, before.Witnesses, after.Queries, after.Witnesses)
	}

	// Precedence: restore a shared segment that is present but empty; the
	// per-function segments must still carry verification.
	if err := os.WriteFile(filepath.Join(dir, proof.TermsName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	both, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Rejections) != 0 {
		t.Fatalf("per-function segment did not take precedence: %s", both.Rejections[0])
	}
	if both.Queries != before.Queries {
		t.Errorf("queries differ with empty shared segment present: %d vs %d", both.Queries, before.Queries)
	}
}
