package proof_test

// End-to-end tests of the certificate chain: a real corpus run emits
// certificates and witnesses, the independent checker verifies them with
// zero rejections, and targeted tampering with every artifact class —
// DRAT clauses, witness pairs, Sat models — must be caught. The final
// test pins the trust-base claim: cmd/proofcheck must never link the SAT
// or SMT solver.

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/proof"
	"repro/internal/tv"
)

var (
	e2eOnce sync.Once
	e2eDir  string
	e2eSum  *harness.Summary
	e2eErr  error
)

// emitProofDir runs a small corpus once with proof emission on and caches
// the directory for every test in this file.
func emitProofDir(t *testing.T) (string, *harness.Summary) {
	t.Helper()
	e2eOnce.Do(func() {
		dir, err := os.MkdirTemp("", "proofdir")
		if err != nil {
			e2eErr = err
			return
		}
		e2eDir = dir
		e2eSum = harness.Run(harness.Config{
			Profile:  corpus.GCCLike(8),
			Budget:   tv.Budget{MaxTermNodes: 3_000_000},
			Workers:  2,
			ProofDir: dir,
		})
		e2eErr = e2eSum.ProofErr
	})
	if e2eErr != nil {
		t.Fatal(e2eErr)
	}
	return e2eDir, e2eSum
}

func TestMain(m *testing.M) {
	code := m.Run()
	if e2eDir != "" {
		os.RemoveAll(e2eDir)
	}
	os.Exit(code)
}

// copyProofDir clones the emitted proof directory so tamper tests can
// mutate their own copy.
func copyProofDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		out.Close()
	}
	return dst
}

// TestEndToEndProofsVerify is the pipeline acceptance test: corpus run →
// emitted certificates → CheckDir with zero rejections, and the run must
// actually exercise the interesting certificate kinds.
func TestEndToEndProofsVerify(t *testing.T) {
	dir, sum := emitProofDir(t)
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) != 0 {
		t.Fatalf("%d rejections, first: %s", len(report.Rejections), report.Rejections[0])
	}
	if report.Functions != 8 {
		t.Fatalf("checked %d functions, want 8", report.Functions)
	}
	if report.Witnesses == 0 || report.Witnesses != sum.Certified {
		t.Fatalf("verified %d witnesses, harness certified %d", report.Witnesses, sum.Certified)
	}
	for _, kind := range []string{proof.KindDRAT, proof.KindModel} {
		if report.ByKind[kind] == 0 {
			t.Errorf("corpus run produced no %q certificates — test corpus too small to be meaningful", kind)
		}
	}
	if report.Queries != int(sum.SMTStats.Certificates) {
		t.Errorf("checker saw %d query certs, solver recorded %d", report.Queries, sum.SMTStats.Certificates)
	}
}

// findFile returns a file in dir with the given suffix for which accept
// (on its contents) returns true.
func findFile(t *testing.T, dir, suffix string, accept func([]byte) bool) (string, []byte) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), suffix) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if accept == nil || accept(data) {
			return path, data
		}
	}
	t.Fatalf("no %s file matching predicate in %s", suffix, dir)
	return "", nil
}

// TestTamperedDRATClauseRejected flips a literal inside a learnt clause
// of a DRAT trace; the RUP replay must reject the session and the
// certificates pointing into it.
func TestTamperedDRATClauseRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	path, data := findFile(t, dir, proof.DratSuffix, func(b []byte) bool {
		return strings.Contains(string(b), "\nl ")
	})
	lines := strings.Split(string(data), "\n")
	tampered := false
	for i, line := range lines {
		if !strings.HasPrefix(line, "l ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 { // "l <lit> 0" at minimum
			continue
		}
		// Flip the sign of the first literal of the learnt clause.
		if strings.HasPrefix(fields[1], "-") {
			fields[1] = fields[1][1:]
		} else {
			fields[1] = "-" + fields[1]
		}
		lines[i] = strings.Join(fields, " ")
		tampered = true
		break
	}
	if !tampered {
		t.Fatal("no learnt clause found to tamper with")
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) == 0 {
		t.Fatalf("tampered DRAT clause in %s was not rejected", filepath.Base(path))
	}
}

// TestTamperedWitnessPairRejected drops one blackened pair from a
// bisimulation witness; the coverage check must reject the witness.
func TestTamperedWitnessPairRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	path, data := findFile(t, dir, proof.WitnessSuffix, func(b []byte) bool {
		var w proof.WitnessFile
		if err := json.Unmarshal(b, &w); err != nil {
			return false
		}
		for _, cp := range w.Checked {
			if len(cp.Pairs) > 0 {
				return true
			}
		}
		return false
	})
	var w proof.WitnessFile
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	for i := range w.Checked {
		if len(w.Checked[i].Pairs) > 0 {
			w.Checked[i].Pairs = w.Checked[i].Pairs[1:]
			break
		}
	}
	out, err := json.Marshal(&w)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) == 0 {
		t.Fatalf("witness %s with a dropped sync pair was not rejected", filepath.Base(path))
	}
}

// TestTamperedModelRejected corrupts a Sat model value in a certificate
// file; re-evaluating the term DAG under the broken model must fail.
func TestTamperedModelRejected(t *testing.T) {
	src, _ := emitProofDir(t)
	dir := copyProofDir(t, src)
	path, data := findFile(t, dir, proof.CertsSuffix, func(b []byte) bool {
		var f proof.CertsFile
		if err := json.Unmarshal(b, &f); err != nil {
			return false
		}
		for _, q := range f.Queries {
			if q.Kind == proof.KindModel && q.Model != nil && len(q.Model.BV) > 0 {
				return true
			}
		}
		return false
	})
	var f proof.CertsFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	rejections := 0
	for i := range f.Queries {
		q := &f.Queries[i]
		if q.Kind != proof.KindModel || q.Model == nil || len(q.Model.BV) == 0 {
			continue
		}
		// Flipping the low bit of every bitvector assignment breaks at
		// least one model in the file (a model where no variable matters
		// would have been a trivial certificate instead). Tamper all of
		// them so the test does not depend on which query is load-bearing.
		for j := range q.Model.BV {
			v, err := strconv.ParseUint(q.Model.BV[j].Val, 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			q.Model.BV[j].Val = strconv.FormatUint(v^1, 10)
		}
		rejections++
	}
	if rejections == 0 {
		t.Fatal("no model certificate found to tamper with")
	}
	out, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rejections) == 0 {
		t.Fatalf("tampered models in %s were not rejected", filepath.Base(path))
	}
}

// TestProofcheckImportConstraint pins the trust-base claim with the build
// graph itself: the transitive dependencies of cmd/proofcheck must
// include the certificate package but never the SAT solver or the SMT
// facade.
func TestProofcheckImportConstraint(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	out, err := exec.Command(goBin, "list", "-deps", "repro/cmd/proofcheck").CombinedOutput()
	if err != nil {
		t.Fatalf("go list -deps: %v\n%s", err, out)
	}
	deps := strings.Fields(string(out))
	has := func(pkg string) bool {
		for _, d := range deps {
			if d == pkg {
				return true
			}
		}
		return false
	}
	if !has("repro/internal/proof") {
		t.Fatal("proofcheck does not depend on repro/internal/proof — wrong package listed?")
	}
	for _, forbidden := range []string{"repro/internal/sat", "repro/internal/smt", "repro/internal/core"} {
		if has(forbidden) {
			t.Errorf("cmd/proofcheck links %s — the checker must not share solving code with the validator", forbidden)
		}
	}
}
