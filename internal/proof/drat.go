package proof

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// The .drat companion file is a line-oriented text format, one step per
// line, DIMACS-style literals terminated by 0:
//
//	s <index>          start of session <index>
//	i <lits...> 0      input clause (as handed to the SAT solver)
//	l <lits...> 0      learnt clause (RUP obligation)
//	d <lits...> 0      deleted clause
//
// Certificates of kind "drat" reference a session index and a step
// position within it.

// WriteSessions serializes the sessions of a recorder to w.
func WriteSessions(w io.Writer, sessions []*Session) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var buf []byte
	for _, s := range sessions {
		buf = buf[:0]
		buf = append(buf, 's', ' ')
		buf = strconv.AppendInt(buf, int64(s.index), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
		for i := 0; i < s.Len(); i++ {
			op, lits := s.step(i)
			buf = buf[:0]
			buf = append(buf, op)
			for _, l := range lits {
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, int64(l), 10)
			}
			buf = append(buf, ' ', '0', '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ParsedStep is one step of a parsed session trace.
type ParsedStep struct {
	Op   byte
	Lits []int32
}

// ParseSessions parses a .drat stream back into per-session step lists,
// indexed by session number.
func ParseSessions(r io.Reader) ([][]ParsedStep, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var sessions [][]ParsedStep
	cur := -1
	lineNo := 0
	for {
		line, err := br.ReadString('\n')
		if line == "" && err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		lineNo++
		// Trim the trailing newline; tolerate a missing one on the last line.
		for len(line) > 0 && (line[len(line)-1] == '\n' || line[len(line)-1] == '\r') {
			line = line[:len(line)-1]
		}
		if line == "" {
			continue
		}
		op := line[0]
		rest := line[1:]
		switch op {
		case 's':
			idx, perr := strconv.Atoi(trimSpace(rest))
			if perr != nil || idx != len(sessions) {
				return nil, fmt.Errorf("proof: line %d: bad session header %q", lineNo, line)
			}
			sessions = append(sessions, nil)
			cur = idx
		case OpInput, OpLearn, OpDelete:
			if cur < 0 {
				return nil, fmt.Errorf("proof: line %d: step before session header", lineNo)
			}
			lits, perr := parseLits(rest)
			if perr != nil {
				return nil, fmt.Errorf("proof: line %d: %v", lineNo, perr)
			}
			sessions[cur] = append(sessions[cur], ParsedStep{Op: op, Lits: lits})
		default:
			return nil, fmt.Errorf("proof: line %d: unknown step %q", lineNo, line)
		}
		if err == io.EOF {
			break
		}
	}
	return sessions, nil
}

func trimSpace(s string) string {
	for len(s) > 0 && s[0] == ' ' {
		s = s[1:]
	}
	for len(s) > 0 && s[len(s)-1] == ' ' {
		s = s[:len(s)-1]
	}
	return s
}

func parseLits(s string) ([]int32, error) {
	var lits []int32
	i := 0
	for {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) {
			return nil, fmt.Errorf("clause not terminated by 0")
		}
		j := i
		for j < len(s) && s[j] != ' ' {
			j++
		}
		v, err := strconv.ParseInt(s[i:j], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad literal %q", s[i:j])
		}
		if v == 0 {
			return lits, nil
		}
		lits = append(lits, int32(v))
		i = j
	}
}
