package proof

import (
	"fmt"

	"repro/internal/term"
)

// TNode is one serialized term-DAG node. Nodes are stored in
// topological order: argument indices always point at earlier nodes, so
// a single forward pass decodes the table. Kinds are named by mnemonic
// (see term.KindName) so the format is independent of ordinal values.
type TNode struct {
	K  string `json:"k"`
	W  uint8  `json:"w,omitempty"`
	V  string `json:"v,omitempty"`
	N  string `json:"n,omitempty"`
	Hi uint8  `json:"hi,omitempty"`
	Lo uint8  `json:"lo,omitempty"`
	A  []int  `json:"a,omitempty"`
}

// termEncoder interns term DAGs into a per-function node list (schema 1
// certificates carry their own table). Hash-consing in the source
// Context makes structurally equal terms pointer-equal, so interning by
// pointer both deduplicates shared subterms and gives syntactically
// identical terms identical node indices — the witness checker verifies
// "fastpath" pairs (syntactic path-condition equality) by comparing
// indices. Schema-2 runs use the run-wide shared TermTable instead.
type termEncoder struct {
	nodes []TNode
	index map[*term.Term]int
}

func newTermEncoder() *termEncoder {
	return &termEncoder{index: make(map[*term.Term]int)}
}

// Nodes returns the serialized node list.
func (tt *termEncoder) Nodes() []TNode { return tt.nodes }

// Add interns t (and its subterms) and returns its node index. The DAG
// is walked iteratively so deep terms cannot overflow the stack.
func (tt *termEncoder) Add(t *term.Term) int {
	if i, ok := tt.index[t]; ok {
		return i
	}
	type frame struct {
		t    *term.Term
		next int
	}
	stack := []frame{{t: t}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.t.Args) {
			arg := f.t.Args[f.next]
			f.next++
			if _, ok := tt.index[arg]; !ok {
				stack = append(stack, frame{t: arg})
			}
			continue
		}
		if _, ok := tt.index[f.t]; !ok {
			n := TNode{
				K:  term.KindName(f.t.Kind),
				W:  f.t.Width,
				N:  f.t.Name,
				Hi: f.t.Hi,
				Lo: f.t.Lo,
			}
			if f.t.Val != 0 {
				n.V = fmt.Sprintf("%d", f.t.Val)
			}
			for _, a := range f.t.Args {
				n.A = append(n.A, tt.index[a])
			}
			tt.index[f.t] = len(tt.nodes)
			tt.nodes = append(tt.nodes, n)
		}
		stack = stack[:len(stack)-1]
	}
	return tt.index[t]
}

// decodeNode rebuilds node i of a serialized table; resolved holds the
// terms of all earlier nodes.
func decodeNode(ctx *term.Context, i int, n *TNode, resolved []*term.Term) (*term.Term, error) {
	k, ok := term.KindByName(n.K)
	if !ok {
		return nil, fmt.Errorf("proof: node %d has unknown kind %q", i, n.K)
	}
	var val uint64
	if n.V != "" {
		if _, err := fmt.Sscanf(n.V, "%d", &val); err != nil {
			return nil, fmt.Errorf("proof: node %d has bad value %q: %v", i, n.V, err)
		}
	}
	args := make([]*term.Term, len(n.A))
	for j, ai := range n.A {
		if ai < 0 || ai >= i {
			return nil, fmt.Errorf("proof: node %d references node %d (not topologically ordered)", i, ai)
		}
		args[j] = resolved[ai]
	}
	return ctx.Raw(k, n.W, val, n.N, n.Hi, n.Lo, args...), nil
}

// DecodeTerms rebuilds a serialized node table into terms of ctx using
// the raw (non-simplifying) constructor, so the checker evaluates
// exactly the DAG that was certified: re-simplifying during decode would
// let a constructor bug mask itself. Returns one term per node.
func DecodeTerms(ctx *term.Context, nodes []TNode) ([]*term.Term, error) {
	out := make([]*term.Term, len(nodes))
	for i := range nodes {
		t, err := decodeNode(ctx, i, &nodes[i], out)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// termLoader lazily materializes the shared TERMS.jsonl segment of a
// schema-2 directory into one term context. Nodes decode in a monotonic
// prefix (ids are topological), memoized across every function the
// checker replays, so the segment is read and decoded once per CheckDir.
type termLoader struct {
	nodes []TNode
	ctx   *term.Context
	terms []*term.Term
	next  int
}

func newTermLoader(nodes []TNode) *termLoader {
	return &termLoader{nodes: nodes, ctx: term.NewContext(), terms: make([]*term.Term, len(nodes))}
}

// Term returns the term with global id i, decoding the table prefix up
// to i on first use.
func (l *termLoader) Term(i int) (*term.Term, error) {
	if i < 0 || i >= len(l.nodes) {
		return nil, fmt.Errorf("term id %d out of range (table has %d nodes)", i, len(l.nodes))
	}
	for ; l.next <= i; l.next++ {
		t, err := decodeNode(l.ctx, l.next, &l.nodes[l.next], l.terms)
		if err != nil {
			return nil, err
		}
		l.terms[l.next] = t
	}
	return l.terms[i], nil
}
