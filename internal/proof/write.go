package proof

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// File suffixes of the per-function artifacts.
const (
	CertsSuffix   = ".certs.json"
	DratSuffix    = ".drat"
	WitnessSuffix = ".witness.json"
	ManifestName  = "MANIFEST.json"
	// TermsSuffix names a per-function term segment. A run-wide proof
	// directory shares one TERMS.jsonl; a self-contained per-function
	// artifact set (a result-store entry) instead carries
	// <base>.terms.jsonl, and the checker prefers the per-function
	// segment when both exist.
	TermsSuffix = ".terms.jsonl"
)

// FileBase returns the sanitized per-function artifact base name.
func FileBase(function string) string {
	b := []byte(function)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

func writeJSON(path string, v interface{}) (int64, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// WriteCerts writes <fn>.certs.json and, when any session recorded
// steps, <fn>.drat. It returns the number of bytes written. Buffered
// (schema 1) recorders only; streaming recorders flush through Close.
func WriteCerts(dir string, rec *Recorder) (int64, error) {
	if rec.dw != nil {
		return 0, fmt.Errorf("proof: WriteCerts on a streaming recorder (use Close)")
	}
	base := filepath.Join(dir, FileBase(rec.function))
	n, err := writeJSON(base+CertsSuffix, rec.CertsFile())
	if err != nil {
		return n, err
	}
	steps := 0
	for _, s := range rec.sessions {
		steps += s.Len()
	}
	if steps > 0 {
		f, err := os.Create(base + DratSuffix)
		if err != nil {
			return n, err
		}
		if err := WriteSessions(f, rec.sessions); err != nil {
			f.Close()
			return n, err
		}
		st, _ := f.Stat()
		if st != nil {
			n += st.Size()
		}
		if err := f.Close(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// WriteWitness writes <fn>.witness.json. Call it only for functions
// whose validation succeeded: the witness of a failed run is not a
// bisimulation witness. Streaming (schema 2) recorders write the
// compressed container; buffered recorders keep the plain schema-1
// bytes. The checker sniffs, so both verify.
func WriteWitness(dir string, rec *Recorder) (int64, error) {
	base := filepath.Join(dir, FileBase(rec.function))
	if rec.dw == nil {
		return writeJSON(base+WitnessSuffix, rec.WitnessFile())
	}
	data, err := json.Marshal(rec.WitnessFile())
	if err != nil {
		return 0, err
	}
	zdata, err := deflateJSON(append(data, '\n'))
	if err != nil {
		return 0, err
	}
	if err := os.WriteFile(base+WitnessSuffix, zdata, 0o644); err != nil {
		return 0, err
	}
	return int64(len(zdata)), nil
}

// WriteManifest writes MANIFEST.json for a corpus run. The caller sets
// m.Schema for streaming runs; an unset schema defaults to the buffered
// format version.
func WriteManifest(dir string, m *Manifest) error {
	if m.Schema == 0 {
		m.Schema = Schema
	}
	_, err := writeJSON(filepath.Join(dir, ManifestName), m)
	return err
}

// ReadManifest loads MANIFEST.json from dir; it returns (nil, nil) when
// the file does not exist (single-file runs write no manifest).
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("proof: bad manifest: %v", err)
	}
	return &m, nil
}
