// Package proof defines the certificate format emitted by the
// translation-validation pipeline and implements the independent checker
// that replays it.
//
// A validated function produces up to three artifacts in the proof
// directory:
//
//   - <fn>.certs.json — one record per SMT query the validator ran, in
//     execution order: the verdict, the certificate kind, and for Sat
//     verdicts the model plus the original term DAG it must satisfy.
//   - <fn>.drat — the SAT session traces backing the Unsat verdicts:
//     every input clause the bit-blaster emitted, every clause the CDCL
//     solver learnt, and every clause database reduction deleted, in
//     order. Unsat certificates point at a position in this trace and
//     name a final clause that must follow by reverse unit propagation.
//   - <fn>.witness.json — the bisimulation witness: the synchronization
//     points, and for each non-exiting point the cut successors explored
//     by Algorithm 1 together with the pairing decisions and the query
//     certificates that discharge each pair's obligations. Written only
//     for functions whose validation succeeded.
//
// The checker (CheckDir, driven by cmd/proofcheck) verifies Unsat
// verdicts by reverse unit propagation — no CDCL, no heuristics — and
// Sat verdicts by decoding the term DAG with the raw (non-simplifying)
// constructor and evaluating it under the recorded model. It deliberately
// imports only the term layer (internal/term), never internal/sat or the
// internal/smt solver facade, so a bug in the solver cannot also hide in
// the checker.
//
// Soundness rules for certificate kinds:
//
//   - "drat":       Unsat backed by a RUP-checked trace position.
//   - "model":      Sat backed by direct evaluation of the recorded model.
//   - "trivial":    the queried term itself is the constant true/false;
//     the checker re-reads the constant.
//   - "simplified": the verdict came from the term simplifier / array
//     reducer before any CNF existed; recorded and counted separately —
//     these remain inside the trust base (see DESIGN.md §6).
//   - "ref":        the verdict came from the shared VC cache. The record
//     names the canonical key of the original entry; the checker resolves
//     it against the verified certificate with that key ("certified by
//     reference") and rejects the run if none exists or the verdicts
//     disagree. A cache hit is never silently certified.
//
// Cube-and-conquer verdicts need no certificate kind of their own.
// When cubes are conquered on stolen portfolio slots and every cube
// comes back Unsat, the solver composes an ordinary DRAT session: the
// snapshot clauses and activation units appear once as inputs, each
// cube's learnt clauses are replayed in order followed by the negation
// of that cube (RUP, because the cube's assumptions acted as
// decisions), and the splitting tree is collapsed by post-order
// prefix-negation clauses that are each RUP from their two children,
// ending in the empty clause. When every slot is busy the conquest
// instead runs in place on the query's own solver: each cube is solved
// under the query's assumptions extended with the cube's literals, and
// each refutation is learned back into the session log as the clause
// ¬assumptions ∨ ¬cube — RUP at that log position for the same reason —
// so the collapse clauses land on the query's ordinary final obligation
// and the certificate is indistinguishable from a solo session's. In
// both shapes the checker verifies the result exactly like any other
// "drat" certificate — dropping any cube's trace makes its negation
// clause non-RUP and the session is rejected — so cubing adds nothing
// to the trust base.
package proof

import (
	"fmt"
	"sort"

	"repro/internal/term"
)

// Schema is the buffered (legacy) certificate format version: one JSON
// document per function carrying its own term table, plus a textual
// .drat companion.
const Schema = 1

// SchemaStreaming is the streaming certificate format version written by
// DirWriter: the certs file is a stream of concatenated JSON values
// (header, one value per query certificate, session trailer), term ids
// reference the run-wide shared TERMS.jsonl segment, and the .drat
// companion uses the binary container (see bdrat.go).
const SchemaStreaming = 2

// Result strings used in certificates.
const (
	ResSat   = "sat"
	ResUnsat = "unsat"
)

// Certificate kinds.
const (
	KindDRAT       = "drat"
	KindModel      = "model"
	KindTrivial    = "trivial"
	KindSimplified = "simplified"
	KindRef        = "ref"
)

// Pair justification kinds in a witness.
const (
	HowQueries  = "queries"  // pairing + obligation discharged by Unsat queries
	HowFastPath = "fastpath" // path conditions syntactically identical
	HowExcuse   = "excuse"   // left-side UB excuses the right behavior (§4.6)
)

// QueryCert is the certificate of one SMT query.
type QueryCert struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Result string `json:"result"`
	// Key is the alpha-invariant canonical hash of the queried term (hex).
	// It is the content address "ref" certificates resolve against.
	Key string `json:"key,omitempty"`
	// Term indexes the terms table for kinds trivial/model/simplified
	// (-1 otherwise).
	Term int `json:"term"`
	// Model is the satisfying assignment for kind "model".
	Model *Model `json:"model,omitempty"`
	// Sess/Pos/Final locate the RUP obligation for kind "drat": after Pos
	// steps of session Sess, clause Final must be RUP (empty = the empty
	// clause, i.e. a global refutation; otherwise the negated-assumption
	// clause of the incremental query).
	Sess  int   `json:"sess,omitempty"`
	Pos   int   `json:"pos,omitempty"`
	Final []int `json:"final,omitempty"`
}

// Model is a deterministic serialization of a satisfying assignment.
// Entries are sorted by name; bitvector values are decimal strings so
// 64-bit values survive JSON number precision.
type Model struct {
	BV   []BVAssign   `json:"bv,omitempty"`
	Bool []BoolAssign `json:"bool,omitempty"`
	Mem  []MemAssign  `json:"mem,omitempty"`
}

// BVAssign is one bitvector variable assignment.
type BVAssign struct {
	Name string `json:"n"`
	Val  string `json:"v"`
}

// BoolAssign is one boolean variable assignment.
type BoolAssign struct {
	Name string `json:"n"`
	Val  bool   `json:"v"`
}

// MemAssign is the byte contents of one memory base array.
type MemAssign struct {
	Base  string    `json:"n"`
	Bytes []MemByte `json:"b,omitempty"`
}

// MemByte is one byte of a memory assignment.
type MemByte struct {
	Addr string `json:"a"`
	Val  uint8  `json:"v"`
}

// VarMap records the CNF variables backing one free term variable of a
// SAT session: DIMACS literals, LSB first for bitvectors.
type VarMap struct {
	Name string `json:"n"`
	Sort string `json:"sort"` // "bv" | "bool"
	Bits []int  `json:"bits"`
}

// SessionInfo is the per-session metadata stored in the certs file; the
// clause trace itself lives in the .drat companion file.
type SessionInfo struct {
	Index int      `json:"index"`
	Vars  []VarMap `json:"vars,omitempty"`
}

// CertsFile is the on-disk <fn>.certs.json document.
type CertsFile struct {
	Schema   int           `json:"schema"`
	Function string        `json:"function"`
	Sessions []SessionInfo `json:"sessions,omitempty"`
	Terms    []TNode       `json:"terms,omitempty"`
	Queries  []QueryCert   `json:"queries"`
}

// PointInfo describes one synchronization point in a witness.
type PointInfo struct {
	ID           string `json:"id"`
	Left         string `json:"left"`
	Right        string `json:"right"`
	Exiting      bool   `json:"exiting,omitempty"`
	MemEqual     bool   `json:"mem,omitempty"`
	NConstraints int    `json:"nconstraints"`
}

// SuccState describes one feasible cut successor of a checked point.
type SuccState struct {
	Loc   string `json:"loc"`
	Error string `json:"error,omitempty"`
	// PC indexes the witness terms table: the successor's path condition.
	PC int `json:"pc"`
	// FeasQ names the Sat query certifying the path condition feasible;
	// empty when the condition is the constant true (no query was run).
	FeasQ string `json:"feasq,omitempty"`
}

// Pruned records a cut successor dropped for an unsatisfiable path
// condition, with the Unsat query justifying the prune (empty when the
// condition was the constant false).
type Pruned struct {
	Loc string `json:"loc"`
	Q   string `json:"q,omitempty"`
}

// PairWitness records one blackened pair (left successor L, right
// successor R) and the evidence for it.
type PairWitness struct {
	L   int    `json:"l"`
	R   int    `json:"r"`
	How string `json:"how"`
	// Sync names the point whose constraints were discharged (queries and
	// fastpath kinds).
	Sync string `json:"sync,omitempty"`
	// PairQs are the two Unsat pairing queries (kind queries), or the one
	// Sat overlap query (kind excuse); empty for fastpath.
	PairQs []string `json:"pairqs,omitempty"`
	// ObligQ is the Unsat query discharging the sync point's constraint
	// obligations (queries and fastpath kinds).
	ObligQ string `json:"obligq,omitempty"`
}

// CheckedPoint is the exploration record of one non-exiting point.
type CheckedPoint struct {
	Point       string        `json:"point"`
	Left        []SuccState   `json:"left"`
	Right       []SuccState   `json:"right"`
	PrunedLeft  []Pruned      `json:"pruned_left,omitempty"`
	PrunedRight []Pruned      `json:"pruned_right,omitempty"`
	Pairs       []PairWitness `json:"pairs"`
}

// WitnessFile is the on-disk <fn>.witness.json document.
type WitnessFile struct {
	Schema   int            `json:"schema"`
	Function string         `json:"function"`
	Mode     string         `json:"mode"` // "equivalence" | "refinement"
	Points   []PointInfo    `json:"points"`
	Checked  []CheckedPoint `json:"checked"`
	Terms    []TNode        `json:"terms,omitempty"`
}

// ManifestRow is one corpus row in the manifest.
type ManifestRow struct {
	Name      string `json:"name"`
	Class     string `json:"class"`
	Certified bool   `json:"certified"`
}

// Manifest is the on-disk MANIFEST.json document of a corpus run. For
// schema-2 runs, Terms names the shared term-table segment.
type Manifest struct {
	Schema    int           `json:"schema"`
	Terms     string        `json:"terms,omitempty"`
	TermCount int           `json:"term_count,omitempty"`
	Functions []ManifestRow `json:"functions"`
}

// Session accumulates one SAT instance's trace during recording. Steps
// are stored in two append-only flat pools (opcode array plus literal
// pool), mirroring sat.ProofLog, so long incremental sessions do not
// allocate per step.
type Session struct {
	index int
	rec   *Recorder // owner; streaming recorders write steps through
	count int
	ops   []byte
	offs  []int32
	pool  []int32
	vars  []VarMap
}

// Step opcodes (shared with the .drat text format).
const (
	OpInput  = byte('i')
	OpLearn  = byte('l')
	OpDelete = byte('d')
)

// AddStep appends one trace step with DIMACS-encoded literals. Under a
// streaming recorder the step goes straight to the binary trace writer;
// otherwise it is buffered in the flat pools.
func (s *Session) AddStep(op byte, lits []int32) {
	s.count++
	if s.rec != nil && s.rec.dw != nil {
		s.rec.writeStep(s.index, op, lits)
		return
	}
	s.ops = append(s.ops, op)
	s.offs = append(s.offs, int32(len(s.pool)))
	s.pool = append(s.pool, lits...)
}

// Len returns the number of steps recorded.
func (s *Session) Len() int { return s.count }

// step returns opcode and literals of step i.
func (s *Session) step(i int) (byte, []int32) {
	end := int32(len(s.pool))
	if i+1 < len(s.offs) {
		end = s.offs[i+1]
	}
	return s.ops[i], s.pool[s.offs[i]:end]
}

// MapVar records the CNF variables backing a free term variable.
func (s *Session) MapVar(name, sort string, bits []int) {
	s.vars = append(s.vars, VarMap{Name: name, Sort: sort, Bits: bits})
}

// Recorder accumulates the certificates and the bisimulation witness of
// one function under validation. It is used by a single goroutine (the
// harness worker validating the function) and needs no locking of its
// own; a streaming recorder shares only the run-wide term table, which
// locks internally.
//
// Buffered mode (NewRecorder, schema 1) holds everything in memory until
// WriteCerts/WriteWitness. Streaming mode (DirWriter.NewRecorder, schema
// 2) writes certificates, trace steps, and term rows as they are
// recorded and is finalized by Close.
type Recorder struct {
	function string
	table    *termEncoder // buffered mode
	queries  []QueryCert  // buffered mode
	nq       int
	sessions []*Session

	dw   *DirWriter // streaming mode
	memo map[*term.Term]int32
	st   *streamState

	mode    string
	points  []PointInfo
	checked []CheckedPoint
}

// NewRecorder returns a buffered (schema 1) Recorder for the named
// function.
func NewRecorder(function string) *Recorder {
	return &Recorder{function: function, table: newTermEncoder()}
}

// Function returns the function name the recorder was created for.
func (r *Recorder) Function() string { return r.function }

// NumQueries returns the number of query certificates recorded so far.
// Callers use it as a watermark: record it before issuing solver queries,
// then QueriesSince(w) names the certificates those queries produced.
func (r *Recorder) NumQueries() int { return r.nq }

// QueriesSince returns the IDs of certificates recorded at index w and
// later. IDs are assigned densely ("q0", "q1", ...) so they are derived
// from the indices; a streaming recorder retains no certificate bodies.
func (r *Recorder) QueriesSince(w int) []string {
	ids := make([]string, 0, r.nq-w)
	for i := w; i < r.nq; i++ {
		ids = append(ids, fmt.Sprintf("q%d", i))
	}
	return ids
}

// NewSession starts a new SAT session trace and returns it.
func (r *Recorder) NewSession() *Session {
	s := &Session{index: len(r.sessions), rec: r}
	r.sessions = append(r.sessions, s)
	return s
}

// EncodeTerm interns t and returns its node id: into the run-wide shared
// table (global id) for a streaming recorder, into the per-function
// table otherwise.
func (r *Recorder) EncodeTerm(t *term.Term) int {
	if r.dw != nil {
		return r.dw.table.Intern(t, r.memo)
	}
	return r.table.Add(t)
}

func (r *Recorder) addQuery(q QueryCert) string {
	q.ID = fmt.Sprintf("q%d", r.nq)
	r.nq++
	if r.dw != nil {
		r.writeQuery(q)
	} else {
		r.queries = append(r.queries, q)
	}
	return q.ID
}

// RecordTrivial records a verdict read off a constant-true/false query
// term.
func (r *Recorder) RecordTrivial(t *term.Term, result string, key string) string {
	return r.addQuery(QueryCert{Kind: KindTrivial, Result: result, Key: key, Term: r.EncodeTerm(t)})
}

// RecordSimplified records a verdict produced by the simplification
// pipeline after array reduction, before any CNF existed.
func (r *Recorder) RecordSimplified(t *term.Term, result string, key string) string {
	return r.addQuery(QueryCert{Kind: KindSimplified, Result: result, Key: key, Term: r.EncodeTerm(t)})
}

// RecordRef records a verdict answered by the shared VC cache,
// certified by reference to the original entry's certificate.
func (r *Recorder) RecordRef(key string, result string) string {
	return r.addQuery(QueryCert{Kind: KindRef, Result: result, Key: key, Term: -1})
}

// RecordModel records a Sat verdict with its satisfying model.
func (r *Recorder) RecordModel(t *term.Term, m *Model, key string) string {
	return r.addQuery(QueryCert{Kind: KindModel, Result: ResSat, Key: key, Term: r.EncodeTerm(t), Model: m})
}

// RecordUnsat records an Unsat verdict backed by the DRAT trace of
// session sess: after pos steps, final must be RUP.
func (r *Recorder) RecordUnsat(sess *Session, pos int, final []int, key string) string {
	return r.addQuery(QueryCert{Kind: KindDRAT, Result: ResUnsat, Key: key, Term: -1, Sess: sess.index, Pos: pos, Final: final})
}

// SetMode records the checking mode ("equivalence" or "refinement").
func (r *Recorder) SetMode(mode string) { r.mode = mode }

// SetPoints records the synchronization points of the relation.
func (r *Recorder) SetPoints(points []PointInfo) { r.points = points }

// AddChecked appends the exploration record of one non-exiting point.
func (r *Recorder) AddChecked(cp CheckedPoint) { r.checked = append(r.checked, cp) }

// CertsFile assembles the certificate document.
func (r *Recorder) CertsFile() *CertsFile {
	f := &CertsFile{
		Schema:   Schema,
		Function: r.function,
		Terms:    r.table.Nodes(),
		Queries:  r.queries,
	}
	for _, s := range r.sessions {
		vars := append([]VarMap(nil), s.vars...)
		sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
		f.Sessions = append(f.Sessions, SessionInfo{Index: s.index, Vars: vars})
	}
	return f
}

// WitnessFile assembles the witness document. A streaming recorder's
// witness references global term ids and carries no table of its own.
func (r *Recorder) WitnessFile() *WitnessFile {
	w := &WitnessFile{
		Schema:   Schema,
		Function: r.function,
		Mode:     r.mode,
		Points:   r.points,
		Checked:  r.checked,
	}
	if r.dw != nil {
		w.Schema = SchemaStreaming
	} else {
		w.Terms = r.table.Nodes()
	}
	return w
}

// ModelFromAssign converts an evaluator assignment into its
// deterministic serialized form.
func ModelFromAssign(a *term.Assign) *Model {
	m := &Model{}
	for name, v := range a.BV {
		m.BV = append(m.BV, BVAssign{Name: name, Val: fmt.Sprintf("%d", v)})
	}
	sort.Slice(m.BV, func(i, j int) bool { return m.BV[i].Name < m.BV[j].Name })
	for name, v := range a.Bool {
		m.Bool = append(m.Bool, BoolAssign{Name: name, Val: v})
	}
	sort.Slice(m.Bool, func(i, j int) bool { return m.Bool[i].Name < m.Bool[j].Name })
	for base, bytes := range a.Mem {
		ma := MemAssign{Base: base}
		for addr, v := range bytes {
			ma.Bytes = append(ma.Bytes, MemByte{Addr: fmt.Sprintf("%d", addr), Val: v})
		}
		sort.Slice(ma.Bytes, func(i, j int) bool { return ma.Bytes[i].Addr < ma.Bytes[j].Addr })
		m.Mem = append(m.Mem, ma)
	}
	sort.Slice(m.Mem, func(i, j int) bool { return m.Mem[i].Base < m.Mem[j].Base })
	return m
}

// AssignFromModel converts a serialized model back into an evaluator
// assignment.
func AssignFromModel(m *Model) (*term.Assign, error) {
	a := term.NewAssign()
	for _, e := range m.BV {
		var v uint64
		if _, err := fmt.Sscanf(e.Val, "%d", &v); err != nil {
			return nil, fmt.Errorf("proof: bad bv value %q for %s: %v", e.Val, e.Name, err)
		}
		a.BV[e.Name] = v
	}
	for _, e := range m.Bool {
		a.Bool[e.Name] = e.Val
	}
	for _, e := range m.Mem {
		bytes := make(map[uint64]uint8, len(e.Bytes))
		for _, b := range e.Bytes {
			var addr uint64
			if _, err := fmt.Sscanf(b.Addr, "%d", &addr); err != nil {
				return nil, fmt.Errorf("proof: bad mem address %q in %s: %v", b.Addr, e.Base, err)
			}
			bytes[addr] = b.Val
		}
		a.Mem[e.Base] = bytes
	}
	return a, nil
}
