// Package paperprogs holds the LLVM IR programs that appear in the paper,
// shared by tests, examples, and the benchmark harness.
package paperprogs

// ArithmSeqSum is Figure 1/2(a): the sum of the first n elements of an
// arithmetic sequence with first element a0 and step d, in LLVM IR at -O0.
const ArithmSeqSum = `
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond

for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end

for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc

for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond

for.end:
  ret i32 %s.0
}
`

// WAWStores is Figure 8: three 2-byte stores into a global byte array with
// a write-after-write dependency between the first two (they overlap at
// offset 3). The buggy store-merge peephole of Figure 9(b) reverses that
// dependency.
const WAWStores = `
@b = external global [8 x i8]

define void @waw_foo() {
entry:
  store i16 0, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 2) to i16*)
  store i16 2, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 3) to i16*)
  store i16 1, i16* bitcast (i8* getelementptr inbounds ([8 x i8], [8 x i8]* @b, i64 0, i64 0) to i16*)
  ret void
}
`

// LoadNarrow is Figure 10 scaled from i96/lshr 64/i64 to i48/lshr 32/i32
// (the repository's bitvector solver works at widths up to 64; the scaled
// version preserves the bug shape exactly: a narrowing of a load of a
// non-power-of-two-width integer where the buggy peephole widens the
// narrowed access past the end of the object).
const LoadNarrow = `
@a = external global i48, align 4
@b = external global i32, align 8

define void @narrow_foo() {
entry:
  %srcval = load i48, i48* @a, align 4
  %tmp48 = lshr i48 %srcval, 32
  %tmp32 = trunc i48 %tmp48 to i32
  store i32 %tmp32, i32* @b, align 8
  ret void
}
`

// CallExample exercises the call-site synchronization points of §4.5.
const CallExample = `
declare i32 @callee(i32, i32)

define i32 @call_example(i32 %x, i32 %y) {
entry:
  %sum = add i32 %x, %y
  %r = call i32 @callee(i32 %sum, i32 %x)
  %out = add i32 %r, %y
  ret i32 %out
}
`

// MemSwap loads two globals and stores them swapped: exercises load/store
// equality of memories with symbolic contents.
const MemSwap = `
@p = external global i32
@q = external global i32

define void @mem_swap() {
entry:
  %a = load i32, i32* @p
  %b = load i32, i32* @q
  store i32 %b, i32* @p
  store i32 %a, i32* @q
  ret void
}
`

// NSWExample has signed-overflow UB on one path (paper §4.6): the checker
// must validate the translation by silently degrading to refinement on the
// overflowing inputs.
const NSWExample = `
define i32 @nsw_example(i32 %x) {
entry:
  %r = add nsw i32 %x, 1
  ret i32 %r
}
`

// AllocaExample exercises stack slots through the common layout.
const AllocaExample = `
define i32 @alloca_example(i32 %x) {
entry:
  %slot = alloca i32
  store i32 %x, i32* %slot
  %v = load i32, i32* %slot
  %r = add i32 %v, 7
  ret i32 %r
}
`
