// Package term implements the term layer of the SMT stand-in: hash-consed
// QF_ABV terms (fixed-width bitvectors plus a byte-addressed memory array
// restricted to store-chains over named base arrays), simplifying smart
// constructors, a direct evaluator, and alpha-invariant canonical hashing.
//
// The package deliberately contains no solver: it is shared between
// internal/smt (which decides satisfiability by array reduction,
// Ackermann expansion and bit-blasting onto the CDCL solver in
// internal/sat) and the independent proof checker internal/proof +
// cmd/proofcheck, which must be able to evaluate models against the
// original term DAG without linking any solver code.
package term

import (
	"fmt"
	"strings"
)

// Kind identifies the operator of a term node.
type Kind uint8

// Term kinds. BV terms carry a width 1..64; Bool terms have width 0;
// Mem terms are arrays BV64 -> BV8.
const (
	KConstBV Kind = iota // value in Val, width in Width
	KConstBool
	KVarBV
	KVarBool
	KVarMem

	// Bitvector operations.
	KAdd
	KSub
	KMul
	KUDiv
	KURem
	KNeg
	KAnd
	KOr
	KXor
	KNot
	KShl
	KLShr
	KAShr
	KConcat  // args[0] is high part, args[1] is low part
	KExtract // Hi, Lo fields
	KZExt
	KSExt
	KIte // cond, then, else (BV or Bool or Mem branches)

	// Predicates (Bool-sorted).
	KEq // over BV, Bool, or Mem
	KUlt
	KUle
	KSlt
	KSle

	// Boolean connectives.
	KBAnd
	KBOr
	KBNot

	// Memory.
	KSelect // mem, addr -> BV8
	KStore  // mem, addr, val -> Mem
)

// KindName returns the concrete-syntax mnemonic of k ("bvadd", "select",
// ...), as used in diagnostics and in serialized proof certificates.
func KindName(k Kind) string { return kindNames[k] }

// KindByName is the inverse of KindName; ok is false for unknown
// mnemonics. Serialized certificates name kinds by mnemonic rather than
// ordinal so the format survives renumbering.
func KindByName(name string) (Kind, bool) {
	k, ok := kindsByName[name]
	return k, ok
}

var kindsByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

var kindNames = map[Kind]string{
	KConstBV: "const", KConstBool: "bconst", KVarBV: "var", KVarBool: "bvar",
	KVarMem: "mvar", KAdd: "bvadd", KSub: "bvsub", KMul: "bvmul",
	KUDiv: "bvudiv", KURem: "bvurem", KNeg: "bvneg", KAnd: "bvand",
	KOr: "bvor", KXor: "bvxor", KNot: "bvnot", KShl: "bvshl",
	KLShr: "bvlshr", KAShr: "bvashr", KConcat: "concat", KExtract: "extract",
	KZExt: "zext", KSExt: "sext", KIte: "ite", KEq: "=", KUlt: "bvult",
	KUle: "bvule", KSlt: "bvslt", KSle: "bvsle", KBAnd: "and", KBOr: "or",
	KBNot: "not", KSelect: "select", KStore: "store",
}

// SortKind classifies term sorts.
type SortKind uint8

// Sort kinds.
const (
	SortBool SortKind = iota
	SortBV
	SortMem
)

// Term is a hash-consed term node. Terms must be created through a Context;
// two structurally equal terms created in the same Context are pointer-equal.
type Term struct {
	Kind  Kind
	Width uint8 // BV width (1..64); 0 for Bool and Mem
	Val   uint64
	Name  string
	Hi    uint8 // Extract upper bit index
	Lo    uint8 // Extract lower bit index
	Args  []*Term

	id uint64
}

// ID returns the unique identifier of the term within its Context.
func (t *Term) ID() uint64 { return t.id }

// SortKind returns the sort class of t.
func (t *Term) SortKind() SortKind {
	switch t.Kind {
	case KConstBool, KVarBool, KEq, KUlt, KUle, KSlt, KSle, KBAnd, KBOr, KBNot:
		return SortBool
	case KVarMem, KStore:
		return SortMem
	case KIte:
		return t.Args[1].SortKind()
	default:
		return SortBV
	}
}

// IsConst reports whether t is a constant (Bool or BV).
func (t *Term) IsConst() bool { return t.Kind == KConstBV || t.Kind == KConstBool }

// IsTrue reports whether t is the Bool constant true.
func (t *Term) IsTrue() bool { return t.Kind == KConstBool && t.Val == 1 }

// IsFalse reports whether t is the Bool constant false.
func (t *Term) IsFalse() bool { return t.Kind == KConstBool && t.Val == 0 }

// String renders the term in SMT-LIB-like prefix syntax.
func (t *Term) String() string {
	var b strings.Builder
	t.write(&b, 0)
	return b.String()
}

func (t *Term) write(b *strings.Builder, depth int) {
	if depth > 40 {
		b.WriteString("...")
		return
	}
	switch t.Kind {
	case KConstBV:
		fmt.Fprintf(b, "#x%0*x", (int(t.Width)+3)/4, t.Val)
	case KConstBool:
		if t.Val == 1 {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case KVarBV, KVarBool, KVarMem:
		b.WriteString(t.Name)
	case KExtract:
		fmt.Fprintf(b, "((_ extract %d %d) ", t.Hi, t.Lo)
		t.Args[0].write(b, depth+1)
		b.WriteByte(')')
	case KZExt, KSExt:
		fmt.Fprintf(b, "((_ %s %d) ", kindNames[t.Kind], t.Width)
		t.Args[0].write(b, depth+1)
		b.WriteByte(')')
	default:
		b.WriteByte('(')
		b.WriteString(kindNames[t.Kind])
		for _, a := range t.Args {
			b.WriteByte(' ')
			a.write(b, depth+1)
		}
		b.WriteByte(')')
	}
}

// mask returns a bitmask of w low bits.
func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// signBit reports the sign bit of v at width w.
func signBit(v uint64, w uint8) bool { return v>>(w-1)&1 == 1 }

// sextVal sign-extends a w-bit value to 64 bits.
func sextVal(v uint64, w uint8) uint64 {
	if w >= 64 || !signBit(v, w) {
		return v & mask(w)
	}
	return v | ^mask(w)
}
