package term

// Storage is reusable backing memory for a Context: the hash-consing
// table and slab-allocated term nodes. A worker that validates many
// functions in sequence creates one Storage, and for each function
// resets it and builds a fresh Context on top — the map keeps its
// buckets and the slabs their memory, so steady-state validation stops
// growing the heap between functions.
//
// Contract: Reset invalidates every *Term handed out by any Context
// backed by this Storage. The caller must Reset before NewContextWith
// and must not retain terms across the reset (the harness's per-function
// lifecycle guarantees this: certificates encode terms to disk before
// the next function starts). A Storage is not safe for concurrent use;
// each worker owns one.
type Storage struct {
	table map[termKey]*Term
	slabs [][]Term
	slab  int // index of the slab currently being filled
	used  int // nodes handed out from that slab
}

// slabTerms is the node count per slab: large enough to amortize the
// slice append, small enough that a mostly-idle worker wastes little.
const slabTerms = 1 << 10

// NewStorage returns empty reusable context storage.
func NewStorage() *Storage {
	return &Storage{table: make(map[termKey]*Term, 1<<10)}
}

// Reset rewinds the storage for reuse: the table is emptied (keeping
// its buckets) and every slab node becomes available again. All terms
// previously allocated from this storage are invalidated.
func (s *Storage) Reset() {
	clear(s.table)
	s.slab, s.used = 0, 0
}

// alloc returns the next free slab node. The node's previous contents
// are irrelevant: intern overwrites the whole struct.
func (s *Storage) alloc() *Term {
	if s.slab == len(s.slabs) {
		s.slabs = append(s.slabs, make([]Term, slabTerms))
	}
	sl := s.slabs[s.slab]
	t := &sl[s.used]
	s.used++
	if s.used == len(sl) {
		s.slab++
		s.used = 0
	}
	return t
}
