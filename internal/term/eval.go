package term

import "fmt"

// Assign is a concrete assignment to the free variables of a term, used by
// the concrete evaluator (for property tests and model reporting).
type Assign struct {
	BV   map[string]uint64
	Bool map[string]bool
	// Mem maps a memory variable name to its byte contents; absent
	// addresses read as zero.
	Mem map[string]map[uint64]uint8
}

// NewAssign returns an empty assignment.
func NewAssign() *Assign {
	return &Assign{
		BV:   make(map[string]uint64),
		Bool: make(map[string]bool),
		Mem:  make(map[string]map[uint64]uint8),
	}
}

// memVal is an evaluated memory: a base variable plus an overlay of
// evaluated stores.
type memVal struct {
	base    string
	overlay map[uint64]uint8
}

func (a *Assign) memRead(m memVal, addr uint64) uint8 {
	if v, ok := m.overlay[addr]; ok {
		return v
	}
	return a.Mem[m.base][addr]
}

// EvalBV evaluates a BV-sorted term to its numeric value under a.
func (a *Assign) EvalBV(t *Term) (uint64, error) {
	switch t.SortKind() {
	case SortBV:
	default:
		return 0, fmt.Errorf("smt: EvalBV on non-BV term %v", t)
	}
	v, err := a.eval(t, make(map[*Term]interface{}))
	if err != nil {
		return 0, err
	}
	return v.(uint64), nil
}

// EvalBool evaluates a Bool-sorted term under a.
func (a *Assign) EvalBool(t *Term) (bool, error) {
	if t.SortKind() != SortBool {
		return false, fmt.Errorf("smt: EvalBool on non-Bool term %v", t)
	}
	v, err := a.eval(t, make(map[*Term]interface{}))
	if err != nil {
		return false, err
	}
	return v.(bool), nil
}

func (a *Assign) eval(t *Term, cache map[*Term]interface{}) (interface{}, error) {
	if v, ok := cache[t]; ok {
		return v, nil
	}
	v, err := a.eval1(t, cache)
	if err != nil {
		return nil, err
	}
	cache[t] = v
	return v, nil
}

func (a *Assign) eval1(t *Term, cache map[*Term]interface{}) (interface{}, error) {
	switch t.Kind {
	case KConstBV:
		return t.Val, nil
	case KConstBool:
		return t.Val == 1, nil
	case KVarBV:
		return a.BV[t.Name] & mask(t.Width), nil
	case KVarBool:
		return a.Bool[t.Name], nil
	case KVarMem:
		return memVal{base: t.Name, overlay: map[uint64]uint8{}}, nil
	}

	args := make([]interface{}, len(t.Args))
	for i, arg := range t.Args {
		v, err := a.eval(arg, cache)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	bv := func(i int) uint64 { return args[i].(uint64) }

	switch t.Kind {
	case KAdd:
		return (bv(0) + bv(1)) & mask(t.Width), nil
	case KSub:
		return (bv(0) - bv(1)) & mask(t.Width), nil
	case KMul:
		return (bv(0) * bv(1)) & mask(t.Width), nil
	case KUDiv:
		if bv(1) == 0 {
			return mask(t.Width), nil
		}
		return bv(0) / bv(1), nil
	case KURem:
		if bv(1) == 0 {
			return bv(0), nil
		}
		return bv(0) % bv(1), nil
	case KNeg:
		return (-bv(0)) & mask(t.Width), nil
	case KAnd:
		return bv(0) & bv(1), nil
	case KOr:
		return bv(0) | bv(1), nil
	case KXor:
		return bv(0) ^ bv(1), nil
	case KNot:
		return ^bv(0) & mask(t.Width), nil
	case KShl:
		if bv(1) >= uint64(t.Width) {
			return uint64(0), nil
		}
		return (bv(0) << bv(1)) & mask(t.Width), nil
	case KLShr:
		if bv(1) >= uint64(t.Width) {
			return uint64(0), nil
		}
		return bv(0) >> bv(1), nil
	case KAShr:
		sh := bv(1)
		sv := int64(sextVal(bv(0), t.Args[0].Width))
		if sh >= 63 {
			sh = 63
		}
		return uint64(sv>>sh) & mask(t.Width), nil
	case KConcat:
		return (bv(0)<<t.Args[1].Width | bv(1)) & mask(t.Width), nil
	case KExtract:
		return (bv(0) >> t.Lo) & mask(t.Width), nil
	case KZExt:
		return bv(0), nil
	case KSExt:
		return sextVal(bv(0), t.Args[0].Width) & mask(t.Width), nil
	case KIte:
		if args[0].(bool) {
			return args[1], nil
		}
		return args[2], nil
	case KEq:
		switch t.Args[0].SortKind() {
		case SortBV:
			return bv(0) == bv(1), nil
		case SortBool:
			return args[0].(bool) == args[1].(bool), nil
		case SortMem:
			m1 := args[0].(memVal)
			m2 := args[1].(memVal)
			if m1.base != m2.base {
				return nil, fmt.Errorf("smt: eval of memory equality with different bases %q, %q", m1.base, m2.base)
			}
			keys := map[uint64]struct{}{}
			for k := range m1.overlay {
				keys[k] = struct{}{}
			}
			for k := range m2.overlay {
				keys[k] = struct{}{}
			}
			for k := range keys {
				if a.memRead(m1, k) != a.memRead(m2, k) {
					return false, nil
				}
			}
			return true, nil
		}
	case KUlt:
		return bv(0) < bv(1), nil
	case KUle:
		return bv(0) <= bv(1), nil
	case KSlt:
		w := t.Args[0].Width
		return int64(sextVal(bv(0), w)) < int64(sextVal(bv(1), w)), nil
	case KSle:
		w := t.Args[0].Width
		return int64(sextVal(bv(0), w)) <= int64(sextVal(bv(1), w)), nil
	case KBAnd:
		return args[0].(bool) && args[1].(bool), nil
	case KBOr:
		return args[0].(bool) || args[1].(bool), nil
	case KBNot:
		return !args[0].(bool), nil
	case KSelect:
		m := args[0].(memVal)
		return uint64(a.memRead(m, bv(1))), nil
	case KStore:
		m := args[0].(memVal)
		ov := make(map[uint64]uint8, len(m.overlay)+1)
		for k, v := range m.overlay {
			ov[k] = v
		}
		ov[bv(1)] = uint8(bv(2))
		return memVal{base: m.base, overlay: ov}, nil
	}
	return nil, fmt.Errorf("smt: eval of unsupported kind %v", kindNames[t.Kind])
}
