package term

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// CanonKey is the alpha-invariant canonical hash of a term: two terms have
// the same key iff they are identical up to a bijective renaming of their
// free variables (modulo SHA-256 collisions). Because hash-consing is
// deterministic in term structure, the key is stable across Contexts, so it
// can index a cache shared by solvers that never exchanged a term.
type CanonKey [sha256.Size]byte

// Hex returns the key as a lowercase hex string — the content address
// proof certificates use to resolve cache references.
func (k CanonKey) Hex() string { return hex.EncodeToString(k[:]) }

// CanonicalHash computes the CanonKey of t plus the number of serialized
// bytes fed to the hash (the cache-accounting metric in Stats.CacheBytes).
//
// The serialization walks the term DAG iteratively in deterministic
// post-order, numbering each distinct node once. Variable nodes do not
// contribute their names: each is replaced by an alpha index assigned at
// its first occurrence in the traversal. Equal serializations therefore
// pin down a variable bijection, giving alpha-invariance in both
// directions: renamed formulas collide, while collapsing two distinct
// variables onto one (a non-bijective renaming) changes the index pattern
// and separates the keys.
func CanonicalHash(t *Term) (CanonKey, int64) {
	h := sha256.New()
	var rec [40]byte
	num := make(map[*Term]uint64)
	nextNode := uint64(1)
	nextVar := uint64(1)
	written := int64(0)

	type frame struct {
		t *Term
		i int // next arg to descend into
	}
	stack := []frame{{t, 0}}
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if _, done := num[fr.t]; done {
			stack = stack[:len(stack)-1]
			continue
		}
		if fr.i < len(fr.t.Args) {
			child := fr.t.Args[fr.i]
			fr.i++
			if _, done := num[child]; !done {
				stack = append(stack, frame{child, 0})
			}
			continue
		}
		// All children numbered: emit this node's record. The node may sit
		// on the stack twice (DAG sharing); only the first emission counts.
		cur := fr.t
		stack = stack[:len(stack)-1]
		if _, done := num[cur]; done {
			continue
		}
		n := 0
		rec[n] = byte(cur.Kind)
		rec[n+1] = cur.Width
		rec[n+2] = cur.Hi
		rec[n+3] = cur.Lo
		n += 4
		switch cur.Kind {
		case KConstBV, KConstBool:
			binary.LittleEndian.PutUint64(rec[n:], cur.Val)
			n += 8
		case KVarBV, KVarBool, KVarMem:
			binary.LittleEndian.PutUint64(rec[n:], nextVar)
			nextVar++
			n += 8
		default:
			rec[n] = byte(len(cur.Args))
			n++
			for _, a := range cur.Args {
				binary.LittleEndian.PutUint64(rec[n:], num[a])
				n += 8
			}
		}
		h.Write(rec[:n])
		written += int64(n)
		num[cur] = nextNode
		nextNode++
	}

	var key CanonKey
	h.Sum(key[:0])
	return key, written
}
