package term

import (
	"fmt"
	"math/bits"
)

// Context owns the hash-consing table for terms. All terms combined in one
// formula must come from the same Context. A Context is not safe for
// concurrent use.
type Context struct {
	table  map[termKey]*Term
	store  *Storage // non-nil when backed by reusable storage
	nextID uint64

	// MaxNodes, when non-zero, bounds the number of live term nodes; hitting
	// the bound makes constructors panic with ErrNodeBudget (recovered by
	// Solver entry points). It models the memory budget of the paper's
	// evaluation harness.
	MaxNodes uint64

	trueT  *Term
	falseT *Term
}

// ErrNodeBudget is the panic value raised when MaxNodes is exceeded.
// Solver and checker entry points convert it into an error.
var ErrNodeBudget = fmt.Errorf("smt: term node budget exhausted")

type termKey struct {
	kind       Kind
	width      uint8
	hi, lo     uint8
	val        uint64
	name       string
	a0, a1, a2 uint64 // arg ids (0 = absent; ids start at 1)
}

// NewContext returns a fresh empty Context.
func NewContext() *Context {
	c := &Context{table: make(map[termKey]*Term), nextID: 1}
	c.trueT = c.intern(&Term{Kind: KConstBool, Val: 1})
	c.falseT = c.intern(&Term{Kind: KConstBool, Val: 0})
	return c
}

// NewContextWith returns a fresh Context backed by st: the hash-consing
// table and term nodes reuse st's memory. The caller must Reset st
// first; terms from any earlier Context backed by st are invalidated.
func NewContextWith(st *Storage) *Context {
	c := &Context{table: st.table, store: st, nextID: 1}
	c.trueT = c.intern(&Term{Kind: KConstBool, Val: 1})
	c.falseT = c.intern(&Term{Kind: KConstBool, Val: 0})
	return c
}

// NumNodes returns the number of distinct term nodes created so far.
func (c *Context) NumNodes() uint64 { return c.nextID - 1 }

func (c *Context) intern(t *Term) *Term {
	k := termKey{kind: t.Kind, width: t.Width, hi: t.Hi, lo: t.Lo, val: t.Val, name: t.Name}
	for i, a := range t.Args {
		switch i {
		case 0:
			k.a0 = a.id
		case 1:
			k.a1 = a.id
		case 2:
			k.a2 = a.id
		default:
			panic("smt: term with more than 3 args")
		}
	}
	if old, ok := c.table[k]; ok {
		return old
	}
	if c.MaxNodes != 0 && c.nextID > c.MaxNodes {
		panic(ErrNodeBudget)
	}
	if c.store != nil {
		// Copy the candidate into a slab node before publishing it, so
		// the stack- or heap-allocated temporary never escapes into the
		// table and slab memory is what every later pointer aliases.
		n := c.store.alloc()
		*n = *t
		t = n
	}
	t.id = c.nextID
	c.nextID++
	c.table[k] = t
	return t
}

// --- Constants and variables ---

// True returns the Bool constant true.
func (c *Context) True() *Term { return c.trueT }

// False returns the Bool constant false.
func (c *Context) False() *Term { return c.falseT }

// Bool returns the Bool constant for v.
func (c *Context) Bool(v bool) *Term {
	if v {
		return c.trueT
	}
	return c.falseT
}

// BV returns the BV constant of the given width (1..64); the value is
// truncated to the width.
func (c *Context) BV(val uint64, width uint8) *Term {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("smt: bad bitvector width %d", width))
	}
	return c.intern(&Term{Kind: KConstBV, Width: width, Val: val & mask(width)})
}

// VarBV returns the BV variable with the given name and width. Names are
// global within the Context: same name+width yields the same term.
func (c *Context) VarBV(name string, width uint8) *Term {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("smt: bad bitvector width %d", width))
	}
	return c.intern(&Term{Kind: KVarBV, Width: width, Name: name})
}

// VarBool returns the Bool variable with the given name.
func (c *Context) VarBool(name string) *Term {
	return c.intern(&Term{Kind: KVarBool, Name: name})
}

// VarMem returns the memory-array variable with the given name.
func (c *Context) VarMem(name string) *Term {
	return c.intern(&Term{Kind: KVarMem, Name: name})
}

func (c *Context) mk(kind Kind, width uint8, args ...*Term) *Term {
	return c.intern(&Term{Kind: kind, Width: width, Args: args})
}

// Raw interns a term node verbatim, bypassing the simplifying
// constructors. It is used by the proof checker to rebuild a serialized
// term DAG exactly as certified (re-simplifying during decode would let a
// constructor bug mask itself), and by tests that need a specific node
// shape. The caller is responsible for sort/width discipline.
func (c *Context) Raw(kind Kind, width uint8, val uint64, name string, hi, lo uint8, args ...*Term) *Term {
	return c.intern(&Term{Kind: kind, Width: width, Val: val, Name: name, Hi: hi, Lo: lo, Args: args})
}

func checkBV2(op string, a, b *Term) {
	if a.SortKind() != SortBV || b.SortKind() != SortBV || a.Width != b.Width {
		panic(fmt.Sprintf("smt: %s operand sort mismatch: %v vs %v", op, a, b))
	}
}

// orderComm orders a commutative pair canonically (constants first, then by id).
func orderComm(a, b *Term) (*Term, *Term) {
	if b.Kind == KConstBV && a.Kind != KConstBV {
		return b, a
	}
	if a.Kind == KConstBV && b.Kind != KConstBV {
		return a, b
	}
	if b.id < a.id {
		return b, a
	}
	return a, b
}

// --- Bitvector arithmetic ---

// Add returns a + b (wrapping at the common width).
func (c *Context) Add(a, b *Term) *Term {
	checkBV2("bvadd", a, b)
	w := a.Width
	a, b = orderComm(a, b)
	if a.Kind == KConstBV {
		if b.Kind == KConstBV {
			return c.BV(a.Val+b.Val, w)
		}
		if a.Val == 0 {
			return b
		}
		// (c1 + (c2 + x)) -> (c1+c2) + x
		if b.Kind == KAdd && b.Args[0].Kind == KConstBV {
			return c.Add(c.BV(a.Val+b.Args[0].Val, w), b.Args[1])
		}
	}
	return c.mk(KAdd, w, a, b)
}

// Sub returns a - b.
func (c *Context) Sub(a, b *Term) *Term {
	checkBV2("bvsub", a, b)
	w := a.Width
	if a == b {
		return c.BV(0, w)
	}
	if a.Kind == KConstBV && b.Kind == KConstBV {
		return c.BV(a.Val-b.Val, w)
	}
	if b.Kind == KConstBV {
		if b.Val == 0 {
			return a
		}
		return c.Add(c.BV(-b.Val, w), a)
	}
	return c.mk(KSub, w, a, b)
}

// Neg returns -a (two's complement).
func (c *Context) Neg(a *Term) *Term {
	if a.Kind == KConstBV {
		return c.BV(-a.Val, a.Width)
	}
	if a.Kind == KNeg {
		return a.Args[0]
	}
	return c.mk(KNeg, a.Width, a)
}

// Mul returns a * b (wrapping).
func (c *Context) Mul(a, b *Term) *Term {
	checkBV2("bvmul", a, b)
	w := a.Width
	a, b = orderComm(a, b)
	if a.Kind == KConstBV {
		if b.Kind == KConstBV {
			return c.BV(a.Val*b.Val, w)
		}
		switch a.Val {
		case 0:
			return c.BV(0, w)
		case 1:
			return b
		}
	}
	return c.mk(KMul, w, a, b)
}

// UDiv returns a /u b; division by zero yields all-ones per SMT-LIB.
func (c *Context) UDiv(a, b *Term) *Term {
	checkBV2("bvudiv", a, b)
	w := a.Width
	if a.Kind == KConstBV && b.Kind == KConstBV {
		if b.Val == 0 {
			return c.BV(mask(w), w)
		}
		return c.BV(a.Val/b.Val, w)
	}
	if b.Kind == KConstBV && b.Val == 1 {
		return a
	}
	return c.mk(KUDiv, w, a, b)
}

// URem returns a %u b; remainder by zero yields a per SMT-LIB.
func (c *Context) URem(a, b *Term) *Term {
	checkBV2("bvurem", a, b)
	w := a.Width
	if a.Kind == KConstBV && b.Kind == KConstBV {
		if b.Val == 0 {
			return a
		}
		return c.BV(a.Val%b.Val, w)
	}
	if b.Kind == KConstBV && b.Val == 1 {
		return c.BV(0, w)
	}
	return c.mk(KURem, w, a, b)
}

// --- Bitwise operations ---

// And returns a & b.
func (c *Context) And(a, b *Term) *Term {
	checkBV2("bvand", a, b)
	w := a.Width
	if a == b {
		return a
	}
	a, b = orderComm(a, b)
	if a.Kind == KConstBV {
		if b.Kind == KConstBV {
			return c.BV(a.Val&b.Val, w)
		}
		if a.Val == 0 {
			return c.BV(0, w)
		}
		if a.Val == mask(w) {
			return b
		}
	}
	return c.mk(KAnd, w, a, b)
}

// Or returns a | b.
func (c *Context) Or(a, b *Term) *Term {
	checkBV2("bvor", a, b)
	w := a.Width
	if a == b {
		return a
	}
	a, b = orderComm(a, b)
	if a.Kind == KConstBV {
		if b.Kind == KConstBV {
			return c.BV(a.Val|b.Val, w)
		}
		if a.Val == 0 {
			return b
		}
		if a.Val == mask(w) {
			return c.BV(mask(w), w)
		}
	}
	return c.mk(KOr, w, a, b)
}

// Xor returns a ^ b.
func (c *Context) Xor(a, b *Term) *Term {
	checkBV2("bvxor", a, b)
	w := a.Width
	if a == b {
		return c.BV(0, w)
	}
	a, b = orderComm(a, b)
	if a.Kind == KConstBV {
		if b.Kind == KConstBV {
			return c.BV(a.Val^b.Val, w)
		}
		if a.Val == 0 {
			return b
		}
	}
	return c.mk(KXor, w, a, b)
}

// NotBV returns ^a (bitwise complement).
func (c *Context) NotBV(a *Term) *Term {
	if a.Kind == KConstBV {
		return c.BV(^a.Val, a.Width)
	}
	if a.Kind == KNot {
		return a.Args[0]
	}
	return c.mk(KNot, a.Width, a)
}

// --- Shifts ---

// Shl returns a << b; shifts ≥ width yield 0 (SMT-LIB semantics).
func (c *Context) Shl(a, b *Term) *Term {
	checkBV2("bvshl", a, b)
	w := a.Width
	if b.Kind == KConstBV {
		if b.Val == 0 {
			return a
		}
		if b.Val >= uint64(w) {
			return c.BV(0, w)
		}
		if a.Kind == KConstBV {
			return c.BV(a.Val<<b.Val, w)
		}
	}
	return c.mk(KShl, w, a, b)
}

// LShr returns a >>u b.
func (c *Context) LShr(a, b *Term) *Term {
	checkBV2("bvlshr", a, b)
	w := a.Width
	if b.Kind == KConstBV {
		if b.Val == 0 {
			return a
		}
		if b.Val >= uint64(w) {
			return c.BV(0, w)
		}
		if a.Kind == KConstBV {
			return c.BV((a.Val&mask(w))>>b.Val, w)
		}
	}
	return c.mk(KLShr, w, a, b)
}

// AShr returns a >>s b (arithmetic).
func (c *Context) AShr(a, b *Term) *Term {
	checkBV2("bvashr", a, b)
	w := a.Width
	if b.Kind == KConstBV {
		if b.Val == 0 {
			return a
		}
		if a.Kind == KConstBV {
			sh := b.Val
			if sh > uint64(w) {
				sh = uint64(w)
			}
			sv := int64(sextVal(a.Val, w))
			if sh >= 64 {
				sh = 63
			}
			return c.BV(uint64(sv>>sh), w)
		}
	}
	return c.mk(KAShr, w, a, b)
}

// --- Width changes ---

// Concat returns hi ∘ lo with width hi.Width+lo.Width (must be ≤ 64).
func (c *Context) Concat(hi, lo *Term) *Term {
	if hi.SortKind() != SortBV || lo.SortKind() != SortBV {
		panic("smt: concat of non-BV")
	}
	w := hi.Width + lo.Width
	if w > 64 || w < hi.Width {
		panic("smt: concat width exceeds 64")
	}
	if hi.Kind == KConstBV && lo.Kind == KConstBV {
		return c.BV(hi.Val<<lo.Width|lo.Val, w)
	}
	if hi.Kind == KConstBV && hi.Val == 0 {
		return c.ZExt(lo, w)
	}
	// concat(extract(hi..m+1, x), extract(m..lo, x)) -> extract(hi..lo, x)
	if hi.Kind == KExtract && lo.Kind == KExtract && hi.Args[0] == lo.Args[0] &&
		hi.Lo == lo.Hi+1 {
		return c.Extract(hi.Args[0], hi.Hi, lo.Lo)
	}
	return c.mk(KConcat, w, hi, lo)
}

// Extract returns bits hi..lo of a (inclusive), width hi-lo+1.
func (c *Context) Extract(a *Term, hi, lo uint8) *Term {
	if a.SortKind() != SortBV || hi >= a.Width || lo > hi {
		panic(fmt.Sprintf("smt: bad extract [%d:%d] of width %d", hi, lo, a.Width))
	}
	w := hi - lo + 1
	if w == a.Width {
		return a
	}
	switch a.Kind {
	case KConstBV:
		return c.BV(a.Val>>lo, w)
	case KExtract:
		return c.Extract(a.Args[0], a.Lo+hi, a.Lo+lo)
	case KConcat:
		hiPart, loPart := a.Args[0], a.Args[1]
		if hi < loPart.Width {
			return c.Extract(loPart, hi, lo)
		}
		if lo >= loPart.Width {
			return c.Extract(hiPart, hi-loPart.Width, lo-loPart.Width)
		}
	case KZExt:
		inner := a.Args[0]
		if hi < inner.Width {
			return c.Extract(inner, hi, lo)
		}
		if lo >= inner.Width {
			return c.BV(0, w)
		}
		if lo == 0 && hi >= inner.Width {
			return c.ZExt(inner, w)
		}
	case KSExt:
		inner := a.Args[0]
		if hi < inner.Width {
			return c.Extract(inner, hi, lo)
		}
		if lo == 0 {
			return c.SExt(inner, w)
		}
	}
	t := c.intern(&Term{Kind: KExtract, Width: w, Hi: hi, Lo: lo, Args: []*Term{a}})
	return t
}

// ZExt zero-extends a to the given width.
func (c *Context) ZExt(a *Term, width uint8) *Term {
	if a.SortKind() != SortBV || width < a.Width || width > 64 {
		panic(fmt.Sprintf("smt: bad zext to %d from %d", width, a.Width))
	}
	if width == a.Width {
		return a
	}
	if a.Kind == KConstBV {
		return c.BV(a.Val, width)
	}
	if a.Kind == KZExt {
		return c.ZExt(a.Args[0], width)
	}
	return c.mk(KZExt, width, a)
}

// SExt sign-extends a to the given width.
func (c *Context) SExt(a *Term, width uint8) *Term {
	if a.SortKind() != SortBV || width < a.Width || width > 64 {
		panic(fmt.Sprintf("smt: bad sext to %d from %d", width, a.Width))
	}
	if width == a.Width {
		return a
	}
	if a.Kind == KConstBV {
		return c.BV(sextVal(a.Val, a.Width), width)
	}
	if a.Kind == KSExt {
		return c.SExt(a.Args[0], width)
	}
	if a.Kind == KZExt && a.Args[0].Width < a.Width {
		// The top bit of a zext is 0: sign extension degenerates.
		return c.ZExt(a.Args[0], width)
	}
	return c.mk(KSExt, width, a)
}

// --- Predicates ---

// Eq returns a = b; operands must share a sort.
func (c *Context) Eq(a, b *Term) *Term {
	if a.SortKind() != b.SortKind() ||
		(a.SortKind() == SortBV && a.Width != b.Width) {
		panic(fmt.Sprintf("smt: eq sort mismatch: %v vs %v", a, b))
	}
	if a == b {
		return c.trueT
	}
	switch a.SortKind() {
	case SortBool:
		if a.IsConst() && b.IsConst() {
			return c.Bool(a.Val == b.Val)
		}
		if a.IsTrue() {
			return b
		}
		if b.IsTrue() {
			return a
		}
		if a.IsFalse() {
			return c.Not(b)
		}
		if b.IsFalse() {
			return c.Not(a)
		}
	case SortBV:
		if a.Kind == KConstBV && b.Kind == KConstBV {
			return c.Bool(a.Val == b.Val)
		}
		// Normalize ite-encoded booleans: (ite c k1 k0) = k reduces to c,
		// ¬c, true or false. This lets branch conditions materialized as
		// 0/1 values (LLVM i1) compare syntactically equal to conditions
		// kept as predicates (x86 flags), feeding the checker's
		// path-condition fast path.
		if b.Kind == KIte && a.Kind != KIte {
			a, b = b, a
		}
		if a.Kind == KIte && a.Args[1].Kind == KConstBV && a.Args[2].Kind == KConstBV &&
			b.Kind == KConstBV {
			t, e := a.Args[1].Val, a.Args[2].Val
			switch {
			case t == b.Val && e == b.Val:
				return c.trueT
			case t == b.Val:
				return a.Args[0]
			case e == b.Val:
				return c.Not(a.Args[0])
			default:
				return c.falseT
			}
		}
	}
	if b.id < a.id {
		a, b = b, a
	}
	return c.mk(KEq, 0, a, b)
}

// Ult returns a <u b.
func (c *Context) Ult(a, b *Term) *Term {
	checkBV2("bvult", a, b)
	if a == b {
		return c.falseT
	}
	if a.Kind == KConstBV && b.Kind == KConstBV {
		return c.Bool(a.Val < b.Val)
	}
	if b.Kind == KConstBV && b.Val == 0 {
		return c.falseT
	}
	return c.mk(KUlt, 0, a, b)
}

// Ule returns a ≤u b.
func (c *Context) Ule(a, b *Term) *Term {
	checkBV2("bvule", a, b)
	if a == b {
		return c.trueT
	}
	if a.Kind == KConstBV && b.Kind == KConstBV {
		return c.Bool(a.Val <= b.Val)
	}
	return c.mk(KUle, 0, a, b)
}

// Slt returns a <s b.
func (c *Context) Slt(a, b *Term) *Term {
	checkBV2("bvslt", a, b)
	if a == b {
		return c.falseT
	}
	if a.Kind == KConstBV && b.Kind == KConstBV {
		return c.Bool(int64(sextVal(a.Val, a.Width)) < int64(sextVal(b.Val, b.Width)))
	}
	return c.mk(KSlt, 0, a, b)
}

// Sle returns a ≤s b.
func (c *Context) Sle(a, b *Term) *Term {
	checkBV2("bvsle", a, b)
	if a == b {
		return c.trueT
	}
	if a.Kind == KConstBV && b.Kind == KConstBV {
		return c.Bool(int64(sextVal(a.Val, a.Width)) <= int64(sextVal(b.Val, b.Width)))
	}
	return c.mk(KSle, 0, a, b)
}

// --- Boolean connectives ---

// Not returns ¬a.
func (c *Context) Not(a *Term) *Term {
	if a.SortKind() != SortBool {
		panic("smt: not of non-Bool")
	}
	if a.IsConst() {
		return c.Bool(a.Val == 0)
	}
	if a.Kind == KBNot {
		return a.Args[0]
	}
	return c.mk(KBNot, 0, a)
}

// AndB returns a ∧ b.
func (c *Context) AndB(a, b *Term) *Term {
	if a.SortKind() != SortBool || b.SortKind() != SortBool {
		panic("smt: and of non-Bool")
	}
	if a.IsFalse() || b.IsFalse() {
		return c.falseT
	}
	if a.IsTrue() {
		return b
	}
	if b.IsTrue() {
		return a
	}
	if a == b {
		return a
	}
	if (a.Kind == KBNot && a.Args[0] == b) || (b.Kind == KBNot && b.Args[0] == a) {
		return c.falseT
	}
	if b.id < a.id {
		a, b = b, a
	}
	return c.mk(KBAnd, 0, a, b)
}

// OrB returns a ∨ b.
func (c *Context) OrB(a, b *Term) *Term {
	if a.SortKind() != SortBool || b.SortKind() != SortBool {
		panic("smt: or of non-Bool")
	}
	if a.IsTrue() || b.IsTrue() {
		return c.trueT
	}
	if a.IsFalse() {
		return b
	}
	if b.IsFalse() {
		return a
	}
	if a == b {
		return a
	}
	if (a.Kind == KBNot && a.Args[0] == b) || (b.Kind == KBNot && b.Args[0] == a) {
		return c.trueT
	}
	if b.id < a.id {
		a, b = b, a
	}
	return c.mk(KBOr, 0, a, b)
}

// Implies returns a → b.
func (c *Context) Implies(a, b *Term) *Term { return c.OrB(c.Not(a), b) }

// AndN returns the conjunction of all given terms (true when empty).
func (c *Context) AndN(ts ...*Term) *Term {
	acc := c.trueT
	for _, t := range ts {
		acc = c.AndB(acc, t)
	}
	return acc
}

// OrN returns the disjunction of all given terms (false when empty).
func (c *Context) OrN(ts ...*Term) *Term {
	acc := c.falseT
	for _, t := range ts {
		acc = c.OrB(acc, t)
	}
	return acc
}

// --- Ite ---

// Ite returns if cond then a else b; a and b must share a sort.
func (c *Context) Ite(cond, a, b *Term) *Term {
	if cond.SortKind() != SortBool {
		panic("smt: ite condition not Bool")
	}
	if a.SortKind() != b.SortKind() ||
		(a.SortKind() == SortBV && a.Width != b.Width) {
		panic("smt: ite branch sort mismatch")
	}
	if cond.IsTrue() {
		return a
	}
	if cond.IsFalse() {
		return b
	}
	if a == b {
		return a
	}
	if a.SortKind() == SortBool {
		if a.IsTrue() && b.IsFalse() {
			return cond
		}
		if a.IsFalse() && b.IsTrue() {
			return c.Not(cond)
		}
	}
	if cond.Kind == KBNot {
		return c.Ite(cond.Args[0], b, a)
	}
	w := uint8(0)
	if a.SortKind() == SortBV {
		w = a.Width
	}
	return c.mk(KIte, w, cond, a, b)
}

// --- Memory ---

// Select returns the byte stored in mem at addr (BV64 address).
func (c *Context) Select(memT, addr *Term) *Term {
	if memT.SortKind() != SortMem || addr.Width != 64 {
		panic("smt: bad select operands")
	}
	// select(store(m, i, v), j): resolve when i = j or i ≠ j is syntactically
	// decidable; otherwise keep the select node (the solver expands lazily).
	cur := memT
	for cur.Kind == KStore {
		i := cur.Args[1]
		if i == addr {
			return cur.Args[2]
		}
		if i.Kind == KConstBV && addr.Kind == KConstBV {
			// distinct constants: skip this store
			cur = cur.Args[0]
			continue
		}
		break
	}
	return c.mk(KSelect, 8, cur, addr)
}

// Store returns mem with the byte at addr replaced by val (BV8).
func (c *Context) Store(memT, addr, val *Term) *Term {
	if memT.SortKind() != SortMem || addr.Width != 64 || val.Width != 8 {
		panic("smt: bad store operands")
	}
	// store(store(m, i, v1), i, v2) -> store(m, i, v2)
	if memT.Kind == KStore && memT.Args[1] == addr {
		return c.Store(memT.Args[0], addr, val)
	}
	return c.mk(KStore, 0, memT, addr, val)
}

// --- Helpers used by the language semantics ---

// AddOverflowSigned returns a Bool term that is true iff a + b overflows
// in signed arithmetic at the operands' width (used for LLVM nsw).
func (c *Context) AddOverflowSigned(a, b *Term) *Term {
	w := a.Width
	sum := c.Add(a, b)
	sa := c.Extract(a, w-1, w-1)
	sb := c.Extract(b, w-1, w-1)
	ss := c.Extract(sum, w-1, w-1)
	// overflow iff sign(a)=sign(b) and sign(sum)≠sign(a)
	return c.AndB(c.Eq(sa, sb), c.Not(c.Eq(ss, sa)))
}

// SubOverflowSigned returns a Bool term true iff a - b overflows signed.
func (c *Context) SubOverflowSigned(a, b *Term) *Term {
	w := a.Width
	diff := c.Sub(a, b)
	sa := c.Extract(a, w-1, w-1)
	sb := c.Extract(b, w-1, w-1)
	sd := c.Extract(diff, w-1, w-1)
	// overflow iff sign(a)≠sign(b) and sign(diff)≠sign(a)
	return c.AndB(c.Not(c.Eq(sa, sb)), c.Not(c.Eq(sd, sa)))
}

// MulOverflowSigned returns a Bool term true iff a*b overflows signed.
// Encoded by widening: requires width ≤ 32 for exact doubling, otherwise
// falls back to a conservative check via division.
func (c *Context) MulOverflowSigned(a, b *Term) *Term {
	w := a.Width
	if w <= 32 {
		wa := c.SExt(a, 2*w)
		wb := c.SExt(b, 2*w)
		p := c.Mul(wa, wb)
		lo := c.Extract(p, w-1, 0)
		// no overflow iff p == sext(lo)
		return c.Not(c.Eq(p, c.SExt(lo, 2*w)))
	}
	// Width > 32: check via magnitude comparison on 64-bit operands. Use the
	// identity: overflow iff b ≠ 0 ∧ (a*b)/b ≠ a in signed arithmetic is not
	// expressible without sdiv; approximate with the standard sign test on
	// the 64-bit product high bits using a 64x64→64 multiply plus a widened
	// check on 32-bit halves. For this reproduction, 64-bit nsw mul is rare;
	// treat as never-overflowing (sound for equivalence since both sides use
	// the same semantics).
	return c.falseT
}

// Abs returns |a| in two's complement (INT_MIN maps to itself).
func (c *Context) Abs(a *Term) *Term {
	w := a.Width
	return c.Ite(c.Slt(a, c.BV(0, w)), c.Neg(a), a)
}

// SDiv returns the truncated signed division a /s b (LLVM sdiv / x86 idiv
// semantics), derived from unsigned division with sign correction. The
// caller is responsible for guarding b = 0 and INT_MIN / -1 (both UB).
func (c *Context) SDiv(a, b *Term) *Term {
	w := a.Width
	q := c.UDiv(c.Abs(a), c.Abs(b))
	sa := c.Slt(a, c.BV(0, w))
	sb := c.Slt(b, c.BV(0, w))
	return c.Ite(c.Not(c.Eq(sa, sb)), c.Neg(q), q)
}

// SRem returns the truncated signed remainder a %s b (sign follows the
// dividend). Same guarding obligations as SDiv.
func (c *Context) SRem(a, b *Term) *Term {
	w := a.Width
	r := c.URem(c.Abs(a), c.Abs(b))
	return c.Ite(c.Slt(a, c.BV(0, w)), c.Neg(r), r)
}

// SDivOverflow returns the Bool term for the only overflowing signed
// division: INT_MIN / -1.
func (c *Context) SDivOverflow(a, b *Term) *Term {
	w := a.Width
	minInt := c.BV(1<<(w-1), w)
	return c.AndB(c.Eq(a, minInt), c.Eq(b, c.BV(mask(w), w)))
}

// PopCount is a helper for tests: number of set bits in a constant.
func PopCount(v uint64) int { return bits.OnesCount64(v) }
