package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyFormulaIsSat(t *testing.T) {
	s := New()
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
}

func TestUnitClauses(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(b, true))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	if !s.Value(a) {
		t.Errorf("Value(a) = false, want true")
	}
	if s.Value(b) {
		t.Errorf("Value(b) = true, want false")
	}
}

func TestContradictoryUnits(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(MkLit(a, false))
	if ok := s.AddClause(MkLit(a, true)); ok {
		t.Fatalf("AddClause of contradiction returned true")
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve() = %v, want Unsat", got)
	}
}

func TestSimpleImplicationChain(t *testing.T) {
	// (a) ∧ (¬a ∨ b) ∧ (¬b ∨ c) forces a=b=c=true.
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	for i, v := range []int{a, b, c} {
		if !s.Value(v) {
			t.Errorf("var %d = false, want true", i)
		}
	}
}

func TestPigeonhole3in2(t *testing.T) {
	// 3 pigeons, 2 holes: unsat. p[i][j] = pigeon i in hole j.
	s := New()
	var p [3][2]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < 3; i++ {
		s.AddClause(MkLit(p[i][0], false), MkLit(p[i][1], false))
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < 3; i++ {
			for k := i + 1; k < 3; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole Solve() = %v, want Unsat", got)
	}
}

func TestPigeonhole5in4(t *testing.T) {
	const pigeons, holes = 5, 4
	s := New()
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unsat {
		t.Fatalf("pigeonhole Solve() = %v, want Unsat", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, true), MkLit(b, false)) // a → b
	if got := s.Solve(MkLit(a, false), MkLit(b, true)); got != Unsat {
		t.Fatalf("Solve(a, ¬b) = %v, want Unsat", got)
	}
	// Incremental: same solver, different assumptions.
	if got := s.Solve(MkLit(a, false)); got != Sat {
		t.Fatalf("Solve(a) = %v, want Sat", got)
	}
	if !s.Value(b) {
		t.Errorf("b = false under assumption a, want true")
	}
	if got := s.Solve(MkLit(b, true)); got != Sat {
		t.Fatalf("Solve(¬b) = %v, want Sat", got)
	}
	if s.Value(a) {
		t.Errorf("a = true under assumption ¬b, want false")
	}
}

func TestXorChainSat(t *testing.T) {
	// x1 ⊕ x2 ⊕ ... ⊕ xn = 1 encoded with intermediate vars; satisfiable.
	const n = 20
	s := New()
	xs := make([]int, n)
	for i := range xs {
		xs[i] = s.NewVar()
	}
	acc := xs[0]
	for i := 1; i < n; i++ {
		out := s.NewVar()
		addXor(s, acc, xs[i], out)
		acc = out
	}
	s.AddClause(MkLit(acc, false))
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	// Verify parity in the model.
	parity := false
	for _, x := range xs {
		parity = parity != s.Value(x)
	}
	if !parity {
		t.Errorf("model parity = even, want odd")
	}
}

// addXor adds clauses forcing out = a ⊕ b.
func addXor(s *Solver, a, b, out int) {
	s.AddClause(MkLit(a, true), MkLit(b, true), MkLit(out, true))
	s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(out, true))
	s.AddClause(MkLit(a, true), MkLit(b, false), MkLit(out, false))
	s.AddClause(MkLit(a, false), MkLit(b, true), MkLit(out, false))
}

// bruteForce checks satisfiability of cnf over nVars variables by
// enumeration (nVars must be small).
func bruteForce(nVars int, cnf [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, cl := range cnf {
			clauseSat := false
			for _, l := range cl {
				val := m&(1<<l.Var()) != 0
				if l.Neg() {
					val = !val
				}
				if val {
					clauseSat = true
					break
				}
			}
			if !clauseSat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandomCNFAgainstBruteForce is a property test: on random small CNFs,
// the CDCL verdict must agree with exhaustive enumeration, and Sat models
// must actually satisfy the formula.
func TestRandomCNFAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(8) // 3..10
		nClauses := rng.Intn(40) // 0..39
		cnf := make([][]Lit, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			cnf = append(cnf, cl)
		}
		s := New()
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Logf("seed %d: got %v want sat=%v", seed, got, want)
			return false
		}
		if got == Sat {
			// Model must satisfy every clause.
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					v := s.Value(l.Var())
					if l.Neg() {
						v = !v
					}
					if v {
						ok = true
						break
					}
				}
				if !ok {
					t.Logf("seed %d: model does not satisfy %v", seed, cl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard pigeonhole instance with a tiny budget must return Unknown.
	const pigeons, holes = 9, 8
	s := New()
	s.ConflictBudget = 10
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
	if got := s.Solve(); got != Unknown {
		t.Fatalf("Solve() with tiny budget = %v, want Unknown", got)
	}
}

func TestLitAccessors(t *testing.T) {
	l := MkLit(7, true)
	if l.Var() != 7 || !l.Neg() {
		t.Errorf("MkLit(7,true): Var=%d Neg=%v", l.Var(), l.Neg())
	}
	if l.Not().Neg() {
		t.Errorf("Not() of negated literal is still negated")
	}
	if l.String() != "-8" || l.Not().String() != "8" {
		t.Errorf("String() = %q / %q", l.String(), l.Not().String())
	}
}
