package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// pigeonholeSolver builds the (pigeons into holes) instance on s.
func pigeonholeSolver(s *Solver, pigeons, holes int) {
	p := make([][]int, pigeons)
	for i := range p {
		p[i] = make([]int, holes)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i < pigeons; i++ {
		lits := make([]Lit, holes)
		for j := 0; j < holes; j++ {
			lits[j] = MkLit(p[i][j], false)
		}
		s.AddClause(lits...)
	}
	for j := 0; j < holes; j++ {
		for i := 0; i < pigeons; i++ {
			for k := i + 1; k < pigeons; k++ {
				s.AddClause(MkLit(p[i][j], true), MkLit(p[k][j], true))
			}
		}
	}
}

// TestLBDPigeonholeUnsat: a conflict-heavy instance with an aggressive
// reduction schedule must still be proved Unsat, and the reductions must
// actually fire and delete clauses — soundness under clause deletion.
func TestLBDPigeonholeUnsat(t *testing.T) {
	s := New()
	s.LBD = true
	s.ReduceInterval = 50
	pigeonholeSolver(s, 8, 7)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve() = %v, want Unsat", got)
	}
	if s.Reduces == 0 {
		t.Fatalf("no LBD reductions fired (conflicts=%d)", s.Conflicts)
	}
	if s.Removed == 0 {
		t.Fatalf("reductions fired but removed nothing")
	}
	t.Logf("conflicts=%d reduces=%d removed=%d", s.Conflicts, s.Reduces, s.Removed)
}

// TestLBDDisabledByDefault: the zero-value solver must never run the LBD
// schedule — legacy behavior is reproduced bit for bit.
func TestLBDDisabledByDefault(t *testing.T) {
	s := New()
	pigeonholeSolver(s, 7, 6)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("Solve() = %v, want Unsat", got)
	}
	if s.Reduces != 0 || s.Removed != 0 {
		t.Fatalf("LBD reduction ran with LBD=false: reduces=%d removed=%d", s.Reduces, s.Removed)
	}
}

// TestLBDSatInstanceFindsModel: clause deletion must not lose solutions.
// A satisfiable instance (pigeons == holes) under an aggressive schedule
// still yields a valid assignment.
func TestLBDSatInstanceFindsModel(t *testing.T) {
	s := New()
	s.LBD = true
	s.ReduceInterval = 50
	const n = 8
	pigeonholeSolver(s, n, n)
	if got := s.Solve(); got != Sat {
		t.Fatalf("Solve() = %v, want Sat", got)
	}
	// Each pigeon in some hole; no hole double-booked. Vars were created
	// row-major: pigeon i, hole j -> var i*n+j.
	for i := 0; i < n; i++ {
		placed := false
		for j := 0; j < n; j++ {
			if s.Value(i*n + j) {
				placed = true
			}
		}
		if !placed {
			t.Fatalf("pigeon %d unplaced in model", i)
		}
	}
	for j := 0; j < n; j++ {
		count := 0
		for i := 0; i < n; i++ {
			if s.Value(i*n + j) {
				count++
			}
		}
		if count > 1 {
			t.Fatalf("hole %d holds %d pigeons", j, count)
		}
	}
}

// TestLBDRandomCNFAgainstBruteForce: with LBD reduction on and an
// aggressive interval, verdicts on random small CNFs must still agree
// with exhaustive enumeration.
func TestLBDRandomCNFAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 3 + rng.Intn(8)
		nClauses := rng.Intn(40)
		cnf := make([][]Lit, 0, nClauses)
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			cl := make([]Lit, width)
			for j := range cl {
				cl[j] = MkLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			cnf = append(cnf, cl)
		}
		s := New()
		s.LBD = true
		s.ReduceInterval = 5 // fire constantly on these tiny instances
		for i := 0; i < nVars; i++ {
			s.NewVar()
		}
		for _, cl := range cnf {
			s.AddClause(cl...)
		}
		got := s.Solve()
		want := bruteForce(nVars, cnf)
		if (got == Sat) != want {
			t.Logf("seed %d: got %v want sat=%v", seed, got, want)
			return false
		}
		if got == Sat {
			for _, cl := range cnf {
				ok := false
				for _, l := range cl {
					v := s.Value(l.Var())
					if l.Neg() {
						v = !v
					}
					if v {
						ok = true
						break
					}
				}
				if !ok {
					t.Logf("seed %d: model does not satisfy %v", seed, cl)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLBDIncrementalAssumptions: reduction across repeated assumption-based
// Solve calls (the incremental SMT usage pattern) must preserve verdicts.
func TestLBDIncrementalAssumptions(t *testing.T) {
	s := New()
	s.LBD = true
	s.ReduceInterval = 20

	// XOR chain x0 ^ x1 ^ ... ^ x7 = parity; selector a activates a unit
	// forcing parity true, selector b forcing parity false.
	n := 8
	xs := make([]int, n)
	for i := range xs {
		xs[i] = s.NewVar()
	}
	acc := xs[0]
	for i := 1; i < n; i++ {
		out := s.NewVar()
		addXor(s, acc, xs[i], out)
		acc = out
	}
	selTrue := s.NewVar()
	selFalse := s.NewVar()
	s.AddClause(MkLit(selTrue, true), MkLit(acc, false))
	s.AddClause(MkLit(selFalse, true), MkLit(acc, true))

	for round := 0; round < 20; round++ {
		if got := s.Solve(MkLit(selTrue, false)); got != Sat {
			t.Fatalf("round %d: parity=true got %v, want Sat", round, got)
		}
		if got := s.Solve(MkLit(selFalse, false)); got != Sat {
			t.Fatalf("round %d: parity=false got %v, want Sat", round, got)
		}
		if got := s.Solve(MkLit(selTrue, false), MkLit(selFalse, false)); got != Unsat {
			t.Fatalf("round %d: both selectors got %v, want Unsat", round, got)
		}
	}
}
