package sat

import "sort"

// Cube-and-conquer support: the escalation tier above portfolio racing.
//
// A query that survives probing and a full portfolio race is not stuck on
// an unlucky restart schedule — it is structurally hard, and restarting
// the same search under yet another configuration buys nothing. Cubing
// splits the instance instead: a lookahead pass over a Snapshot picks the
// k variables whose assignment propagates the most on both polarities,
// and the 2^k leaves of the resulting decision tree become independent
// subproblems ("cubes") solved under assumptions. A satisfiable cube
// satisfies the whole instance; refuting every cube refutes it, and the
// per-cube DRAT traces compose into one certificate (ComposeCubeProof)
// the unchanged RUP checker verifies.
//
// The cuber is deterministic for a fixed seed: candidate scores are
// computed from the clause set alone and ties are broken by a seeded
// splitmix64 hash, so the same snapshot always yields the same cubes.

// CubeOptions configures BuildCubes.
type CubeOptions struct {
	// MaxVars is the branching depth k: up to 2^k cubes (0 = default 4).
	MaxVars int
	// Candidates bounds the occurrence-prefiltered pool of variables that
	// receive a full two-sided lookahead probe (0 = default 64).
	Candidates int
	// Seed drives the deterministic tie-breaks between equally scored
	// variables (0 = a fixed default).
	Seed uint64
}

// CubeSet is the output of BuildCubes: the leaves of the cube tree in
// depth-first order, plus the tree structure the proof composition needs.
type CubeSet struct {
	// Vars are the chosen branching variables, root split first.
	Vars []int
	// Cubes are the leaves in DFS order. Each cube is a set of assumption
	// literals; a leaf whose prefix already conflicted under unit
	// propagation is emitted at its (shorter) collapse depth.
	Cubes [][]Lit
	// Internal holds the expanded internal-node prefixes in post-order,
	// root (the empty prefix) excluded. For every internal node p with
	// branch literal d, the clause ¬p is RUP once the clauses ¬(p∧d) and
	// ¬(p∧¬d) of its two children are present — the collapse steps that
	// let the composed certificate derive the empty clause at the root.
	Internal [][]Lit
}

// splitmix64 is the SplitMix64 mixing function — a cheap, well-distributed
// deterministic hash used for tie-breaking and seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Splitmix64 exposes the mixer for callers deriving per-index solver
// seeds (portfolio racers, cube workers) deterministically.
func Splitmix64(x uint64) uint64 { return splitmix64(x) }

// BuildCubes runs the lookahead cuber over an instance exported by
// Solver.Snapshot (clauses over nvars variables) plus extra unit literals
// (an incremental query's activation assumptions). It returns nil when
// the instance is not worth splitting: refuted by unit propagation or
// lookahead alone, or with fewer than two live leaves.
func BuildCubes(nvars int, clauses [][]Lit, units []Lit, opt CubeOptions) *CubeSet {
	k := opt.MaxVars
	if k <= 0 {
		k = 4
	}
	pool := opt.Candidates
	if pool <= 0 {
		pool = 64
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}

	sc := New()
	for v := 0; v < nvars; v++ {
		sc.NewVar()
	}
	for _, cl := range clauses {
		if !sc.AddClause(cl...) {
			return nil // refuted by unit propagation alone: nothing to split
		}
	}
	for _, u := range units {
		if !sc.AddClause(u) {
			return nil
		}
	}

	// Occurrence-weighted prefilter: each literal occurrence contributes
	// 2^-len, so variables in many short clauses — the ones whose
	// assignment constrains the most — rise to the top without a probe.
	occ := make([]float64, nvars)
	for _, c := range sc.clauses {
		if c.deleted {
			continue
		}
		w := len(c.lits)
		if w > 24 {
			w = 24
		}
		weight := 1.0 / float64(uint64(1)<<uint(w))
		for _, l := range c.lits {
			occ[l.Var()] += weight
		}
	}
	type cand struct {
		v     int
		score float64
		tie   uint64
	}
	byScore := func(cs []cand) {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].score != cs[j].score {
				return cs[i].score > cs[j].score
			}
			if cs[i].tie != cs[j].tie {
				return cs[i].tie < cs[j].tie
			}
			return cs[i].v < cs[j].v
		})
	}
	var cands []cand
	for v := 0; v < nvars; v++ {
		if sc.assigns[v] != lUndef || sc.isEliminated(v) || occ[v] == 0 {
			continue
		}
		cands = append(cands, cand{v: v, score: occ[v], tie: splitmix64(seed + uint64(v))})
	}
	if len(cands) == 0 {
		return nil
	}
	byScore(cands)
	if len(cands) > pool {
		cands = cands[:pool]
	}

	// Two-sided lookahead: assert each polarity at a fresh decision level,
	// propagate, and score by the product of the trail growths — the
	// classic march-style measure favoring balanced splitters. A polarity
	// that conflicts is a failed literal: its complement is asserted at
	// the root (strengthening later probes) and the variable is dropped.
	scored := make([]cand, 0, len(cands))
	for _, c := range cands {
		if sc.assigns[c.v] != lUndef {
			continue // assigned by an earlier failed-literal propagation
		}
		var growth [2]int
		failed := false
		for pol := 0; pol < 2; pol++ {
			lit := MkLit(c.v, pol == 1)
			sc.trailLim = append(sc.trailLim, int32(len(sc.trail)))
			before := len(sc.trail)
			sc.uncheckedEnqueue(lit, nil)
			confl := sc.propagate()
			growth[pol] = len(sc.trail) - before
			sc.cancelUntil(0)
			if confl != nil {
				sc.uncheckedEnqueue(lit.Not(), nil)
				if sc.propagate() != nil {
					return nil // both polarities fail: refuted by lookahead
				}
				failed = true
				break
			}
		}
		if failed {
			continue
		}
		c.score = float64(growth[0]) * float64(growth[1])
		scored = append(scored, c)
	}
	if len(scored) == 0 {
		return nil
	}
	byScore(scored)
	if len(scored) > k {
		scored = scored[:k]
	}
	vars := make([]int, len(scored))
	for i, c := range scored {
		vars[i] = c.v
	}

	// DFS over the decision tree: positive branch first at every node.
	// A prefix whose unit-propagation closure conflicts (or that branches
	// on an already-falsified literal) collapses into a leaf right there —
	// the conquering solver refutes it in one cheap conflict, and the
	// composition needs a clause for every leaf, so it is still emitted.
	cs := &CubeSet{Vars: vars}
	prefix := make([]Lit, 0, len(vars))
	var dfs func(depth int)
	dfs = func(depth int) {
		if depth == len(vars) {
			cs.Cubes = append(cs.Cubes, append([]Lit(nil), prefix...))
			return
		}
		for pol := 0; pol < 2; pol++ {
			lit := MkLit(vars[depth], pol == 1)
			prefix = append(prefix, lit)
			switch sc.valueLit(lit) {
			case lFalse:
				cs.Cubes = append(cs.Cubes, append([]Lit(nil), prefix...))
			case lTrue:
				dfs(depth + 1) // already implied: same state, one level deeper
			default:
				lv := sc.decisionLevel()
				sc.trailLim = append(sc.trailLim, int32(len(sc.trail)))
				sc.uncheckedEnqueue(lit, nil)
				if sc.propagate() != nil {
					cs.Cubes = append(cs.Cubes, append([]Lit(nil), prefix...))
				} else {
					dfs(depth + 1)
				}
				sc.cancelUntil(lv)
			}
			prefix = prefix[:len(prefix)-1]
		}
		if depth > 0 {
			cs.Internal = append(cs.Internal, append([]Lit(nil), prefix...))
		}
	}
	dfs(0)
	if len(cs.Cubes) < 2 {
		return nil
	}
	return cs
}

// CubeTrace is one conquering solver's contribution to a composed
// certificate: its proof log, the cubes it refuted in verdict order, and
// for each the log length at the moment of the verdict — the position at
// which the cube's negation clause becomes RUP.
type CubeTrace struct {
	Log   *ProofLog
	Cubes [][]Lit
	Marks []int
}

// ComposeCubeProof assembles one self-contained refutation trace from the
// per-cube traces of an all-cubes-unsat verdict:
//
//  1. the snapshot clauses and activation units, logged once as inputs
//     (every conquering solver imported this exact sequence);
//  2. each trace's learnt and delete steps — its own input steps are
//     skipped, they duplicate (1) — with the negation clause ¬C of each
//     refuted cube C appended at its verdict mark. ¬C is RUP there: a
//     CDCL refutation under assumptions means unit propagation from the
//     cube literals over the clauses live at the verdict reaches a
//     conflict. RUP is monotone under added clauses, so interleaving the
//     other workers' clauses preserves every step;
//  3. the internal-node collapse clauses in post-order — each RUP from
//     its two children's clauses — down to the root, whose two child
//     clauses are complementary units: the empty clause is RUP, which is
//     exactly the final obligation the unchanged checker discharges.
//
// Deletions are safe to interleave: a conquering solver only ever deletes
// its own learnt clauses, and the checker's LIFO multiset matching pairs
// each deletion with that solver's copy, never another's.
func ComposeCubeProof(clauses [][]Lit, units []Lit, traces []CubeTrace, internal [][]Lit) *ProofLog {
	out := &ProofLog{}
	for _, cl := range clauses {
		out.append(OpInput, cl)
	}
	for _, u := range units {
		out.append(OpInput, []Lit{u})
	}
	var neg []Lit
	negate := func(c []Lit) []Lit {
		neg = neg[:0]
		for _, l := range c {
			neg = append(neg, l.Not())
		}
		return neg
	}
	for _, tr := range traces {
		n := tr.Log.Len()
		j := 0
		for i := 0; i <= n; i++ {
			for j < len(tr.Marks) && tr.Marks[j] == i {
				out.append(OpLearn, negate(tr.Cubes[j]))
				j++
			}
			if i == n {
				break
			}
			op, lits := tr.Log.Step(i)
			if op == OpInput {
				continue
			}
			out.append(op, lits)
		}
	}
	for _, p := range internal {
		out.append(OpLearn, negate(p))
	}
	return out
}
