package sat_test

// Differential validation of the cube-and-conquer layer: cubes must
// partition the search space (a Sat cube ⇔ the instance is Sat, all
// cubes Unsat ⇔ the instance is Unsat, cross-checked against brute
// force), the cuber must be deterministic for a fixed seed, and every
// all-cubes-unsat verdict's composed certificate must replay through the
// independent RUP checker — including a tamper check that dropping one
// cube's trace is rejected.

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/proof"
	"repro/internal/sat"
)

// litsOf converts DIMACS clauses to solver literals.
func litsOf(clauses [][]int32) [][]sat.Lit {
	out := make([][]sat.Lit, len(clauses))
	for i, cl := range clauses {
		lits := make([]sat.Lit, len(cl))
		for j, d := range cl {
			v := d
			if v < 0 {
				v = -v
			}
			lits[j] = sat.MkLit(int(v-1), d < 0)
		}
		out[i] = lits
	}
	return out
}

// conquer mirrors the smt layer's cube worker: one logged solver imports
// the instance once and drains every cube under assumptions, recording
// the trace mark at each refutation. Returns the Sat-winning cube index
// (-1 if none) and the worker's composed-trace contribution.
func conquer(t *testing.T, nvars int, clauses [][]sat.Lit, units []sat.Lit, cs *sat.CubeSet) (int, sat.CubeTrace) {
	t.Helper()
	w := sat.New()
	w.LBD = true
	w.Proof = &sat.ProofLog{}
	for v := 0; v < nvars; v++ {
		w.NewVar()
	}
	for _, cl := range clauses {
		w.AddClause(cl...)
	}
	for _, u := range units {
		w.AddClause(u)
	}
	tr := sat.CubeTrace{Log: w.Proof}
	for i, cube := range cs.Cubes {
		switch w.Solve(cube...) {
		case sat.Sat:
			return i, tr
		case sat.Unsat:
			tr.Cubes = append(tr.Cubes, cube)
			tr.Marks = append(tr.Marks, w.Proof.Len())
		default:
			t.Fatalf("cube %d: Unknown verdict with no budget set", i)
		}
	}
	return -1, tr
}

// random3CNF generates a random 3-CNF near the satisfiability threshold:
// no unit clauses, so unit propagation and lookahead alone cannot refute
// it and the unsat instances genuinely exercise cube-and-conquer.
func random3CNF(rng *rand.Rand, nvars int) [][]int32 {
	nclauses := 4*nvars + rng.Intn(2*nvars)
	clauses := make([][]int32, nclauses)
	for i := range clauses {
		perm := rng.Perm(nvars)[:3]
		cl := make([]int32, 3)
		for j, v := range perm {
			cl[j] = int32(v + 1)
			if rng.Intn(2) == 1 {
				cl[j] = -cl[j]
			}
		}
		clauses[i] = cl
	}
	return clauses
}

// replayErr replays a composed trace and the final empty-clause
// obligation, returning the first rejection instead of failing the test.
func replayErr(log *sat.ProofLog) error {
	ck := proof.NewSessionChecker()
	for i := 0; i < log.Len(); i++ {
		op, lits := log.Step(i)
		d := make([]int32, len(lits))
		for j, l := range lits {
			d[j] = dimacs(l)
		}
		var err error
		switch op {
		case sat.OpInput:
			err = ck.AddInput(d)
		case sat.OpLearn:
			err = ck.AddLearnt(d)
		case sat.OpDelete:
			err = ck.Delete(d)
		default:
			return fmt.Errorf("step %d: unknown opcode %q", i, op)
		}
		if err != nil {
			return fmt.Errorf("step %d (op %q): %w", i, op, err)
		}
	}
	return ck.CheckFinal(nil)
}

// TestCubeDeterministic: the cuber is a pure function of (instance, seed).
func TestCubeDeterministic(t *testing.T) {
	nvars, clauses := pigeonhole(6, 5)
	lits := litsOf(clauses)
	opt := sat.CubeOptions{MaxVars: 3, Seed: 7}
	a := sat.BuildCubes(nvars, lits, nil, opt)
	b := sat.BuildCubes(nvars, lits, nil, opt)
	if a == nil || b == nil {
		t.Fatal("PHP(6,5) did not cube")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different cube sets:\n%v\n%v", a, b)
	}
	if len(a.Cubes) < 2 || len(a.Cubes) > 8 {
		t.Fatalf("depth-3 cube count out of range: %d", len(a.Cubes))
	}
}

// TestDifferentialCubeCompose: seeded random CNFs are cubed and
// conquered; verdicts must match brute force, and every all-cubes-unsat
// run's composed certificate must be RUP-verified end to end.
func TestDifferentialCubeCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0BE))
	cubed, refuted := 0, 0
	for iter := 0; iter < 300; iter++ {
		nvars := 5 + rng.Intn(4)
		clauses := random3CNF(rng, nvars)
		lits := litsOf(clauses)
		want := bruteForce(nvars, clauses, nil)
		cs := sat.BuildCubes(nvars, lits, nil, sat.CubeOptions{MaxVars: 2, Seed: uint64(iter + 1)})
		if cs == nil {
			continue // UP/lookahead-refuted or too small to split: fine
		}
		cubed++
		winner, tr := conquer(t, nvars, lits, nil, cs)
		if winner >= 0 {
			if !want {
				t.Fatalf("iter %d: cube %v satisfiable but brute force says unsat\ncnf: %v",
					iter, cs.Cubes[winner], clauses)
			}
			continue
		}
		if want {
			t.Fatalf("iter %d: all %d cubes refuted but brute force says sat\ncnf: %v",
				iter, len(cs.Cubes), clauses)
		}
		refuted++
		log := sat.ComposeCubeProof(lits, nil, []sat.CubeTrace{tr}, cs.Internal)
		if err := replayErr(log); err != nil {
			t.Fatalf("iter %d: composed certificate rejected: %v\ncnf: %v", iter, err, clauses)
		}
	}
	if cubed < 50 || refuted < 10 {
		t.Fatalf("suite too weak: only %d instances cubed, %d all-cubes-unsat", cubed, refuted)
	}
	t.Logf("%d instances cubed, %d all-cubes-unsat certificates verified", cubed, refuted)
}

// TestCubeComposeUnderAssumptions mirrors the incremental path: the
// activation literal is an input unit of the composed session, and the
// final obligation is still the empty clause. Instances are gated
// pigeonhole formulas — every PHP clause is extended with ¬act, so the
// formula is satisfiable globally (set act false), unsat under the unit
// act, and not refutable by unit propagation or lookahead alone.
func TestCubeComposeUnderAssumptions(t *testing.T) {
	verified := 0
	for _, ph := range [][2]int{{5, 4}, {6, 5}, {7, 6}} {
		phVars, phClauses := pigeonhole(ph[0], ph[1])
		nvars := phVars + 1
		act := sat.MkLit(phVars, false)
		gated := make([][]int32, len(phClauses))
		for i, cl := range phClauses {
			gated[i] = append(append([]int32(nil), cl...), -dimacs(act))
		}
		lits := litsOf(gated)
		units := []sat.Lit{act}
		if bruteForce(nvars, gated, nil) != true {
			t.Fatalf("gated PHP(%d,%d) should be sat with act free", ph[0], ph[1])
		}
		for seed := uint64(1); seed <= 4; seed++ {
			cs := sat.BuildCubes(nvars, lits, units, sat.CubeOptions{MaxVars: 2, Seed: seed})
			if cs == nil {
				t.Fatalf("gated PHP(%d,%d) seed %d did not cube", ph[0], ph[1], seed)
			}
			winner, tr := conquer(t, nvars, lits, units, cs)
			if winner >= 0 {
				t.Fatalf("gated PHP(%d,%d): cube %v satisfiable under %v",
					ph[0], ph[1], cs.Cubes[winner], act)
			}
			log := sat.ComposeCubeProof(lits, units, []sat.CubeTrace{tr}, cs.Internal)
			if err := replayErr(log); err != nil {
				t.Fatalf("gated PHP(%d,%d) seed %d: composed certificate rejected: %v",
					ph[0], ph[1], seed, err)
			}
			verified++
		}
	}
	if verified < 10 {
		t.Fatalf("suite too weak: only %d assumption-mode certificates verified", verified)
	}
	t.Logf("%d assumption-mode certificates verified", verified)
}

// TestCubeComposeWithDeletions forces LBD database reductions inside the
// conquering solver so the composed trace interleaves deletions, which
// must still replay (each deletion matches the worker's own copy).
func TestCubeComposeWithDeletions(t *testing.T) {
	nvars, clauses := pigeonhole(7, 6)
	lits := litsOf(clauses)
	cs := sat.BuildCubes(nvars, lits, nil, sat.CubeOptions{MaxVars: 2})
	if cs == nil {
		t.Fatal("PHP(7,6) did not cube")
	}
	w := sat.New()
	w.LBD = true
	w.ReduceInterval = 1
	w.Proof = &sat.ProofLog{}
	for v := 0; v < nvars; v++ {
		w.NewVar()
	}
	for _, cl := range lits {
		w.AddClause(cl...)
	}
	tr := sat.CubeTrace{Log: w.Proof}
	for i, cube := range cs.Cubes {
		if st := w.Solve(cube...); st != sat.Unsat {
			t.Fatalf("cube %d of PHP(7,6) solved as %v, want unsat", i, st)
		}
		tr.Cubes = append(tr.Cubes, cube)
		tr.Marks = append(tr.Marks, w.Proof.Len())
	}
	deletions := 0
	for i := 0; i < w.Proof.Len(); i++ {
		if op, _ := w.Proof.Step(i); op == sat.OpDelete {
			deletions++
		}
	}
	log := sat.ComposeCubeProof(lits, nil, []sat.CubeTrace{tr}, cs.Internal)
	if err := replayErr(log); err != nil {
		t.Fatalf("composed certificate with %d deletions rejected: %v", deletions, err)
	}
	t.Logf("PHP(7,6): %d cubes, %d trace deletions, composed refutation verified",
		len(cs.Cubes), deletions)
}

// TestCubeComposeTamper: a composed certificate missing one cube's trace
// (its learnt steps and its negation clause) no longer covers that leaf
// of the tree, and the checker must reject the composition — the
// exhaustiveness check is what makes all-cubes-unsat trustworthy.
func TestCubeComposeTamper(t *testing.T) {
	nvars, clauses := pigeonhole(5, 4)
	lits := litsOf(clauses)
	cs := sat.BuildCubes(nvars, lits, nil, sat.CubeOptions{MaxVars: 2})
	if cs == nil {
		t.Fatal("PHP(5,4) did not cube")
	}
	// One worker per cube, so each cube's contribution is a separable trace.
	var traces []sat.CubeTrace
	for i, cube := range cs.Cubes {
		w := sat.New()
		w.LBD = true
		w.Proof = &sat.ProofLog{}
		for v := 0; v < nvars; v++ {
			w.NewVar()
		}
		for _, cl := range lits {
			w.AddClause(cl...)
		}
		if st := w.Solve(cube...); st != sat.Unsat {
			t.Fatalf("cube %d solved as %v, want unsat", i, st)
		}
		traces = append(traces, sat.CubeTrace{
			Log:   w.Proof,
			Cubes: [][]sat.Lit{cube},
			Marks: []int{w.Proof.Len()},
		})
	}
	if err := replayErr(sat.ComposeCubeProof(lits, nil, traces, cs.Internal)); err != nil {
		t.Fatalf("untampered composition rejected: %v", err)
	}
	for drop := range traces {
		tampered := append(append([]sat.CubeTrace(nil), traces[:drop]...), traces[drop+1:]...)
		if err := replayErr(sat.ComposeCubeProof(lits, nil, tampered, cs.Internal)); err == nil {
			t.Fatalf("composition missing cube %d's trace verified — exhaustiveness not checked", drop)
		}
	}
}
