package sat

import "testing"

// TestDeletedWatcherDropped is the regression test for the stale-watcher
// bug: propagate must check c.deleted before the blocker shortcut, or a
// deleted clause whose blocker happens to be true keeps its watcher
// forever, defeating lazy detachment.
func TestDeletedWatcherDropped(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	la := MkLit(a, false)
	lb := MkLit(b, false)
	s.AddClause(la, lb) // watchers under ¬a (blocker b) and ¬b (blocker a)
	s.AddClause(lb)     // make the blocker of the ¬a watcher true
	s.clauses[0].deleted = true
	s.AddClause(la.Not()) // enqueue ¬a: propagate scans the ¬a watch list
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if n := len(s.watches[la.Not()]); n != 0 {
		t.Fatalf("deleted clause kept %d stale watcher(s) behind a true blocker", n)
	}
}

// TestFreezePreventsElimination: (a ∨ b) ∧ (¬b ∨ c) makes b a textbook
// elimination candidate (one resolvent replaces two clauses); Freeze must
// veto it while the unfrozen run eliminates it.
func TestFreezePreventsElimination(t *testing.T) {
	build := func() *Solver {
		s := New()
		a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
		s.AddClause(MkLit(a, false), MkLit(b, false))
		s.AddClause(MkLit(b, true), MkLit(c, false))
		s.Inprocess = true
		s.InprocessMin = 1
		s.InprocessElim = true
		return s
	}

	s := build()
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if s.Eliminated == 0 {
		t.Fatal("expected at least one eliminated variable in the unfrozen run")
	}

	s = build()
	s.Freeze(0)
	s.Freeze(1)
	s.Freeze(2)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if s.Eliminated != 0 {
		t.Fatalf("froze every variable, yet %d were eliminated", s.Eliminated)
	}
}

// TestEliminatedAssumptionPanics: assuming an eliminated variable is a
// caller bug (Freeze exists for that) and must fail loudly, not corrupt
// the search.
func TestEliminatedAssumptionPanics(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	s.Inprocess = true
	s.InprocessMin = 1
	s.InprocessElim = true
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if !s.eliminated[b] {
		t.Skipf("variable b not eliminated (heuristics changed); nothing to assert")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Solve accepted an assumption on an eliminated variable")
		}
	}()
	s.Solve(MkLit(b, false))
}

// TestPureLiteralGatedByProof: with a proof log attached, pure-literal
// elimination (the one non-RUP rewrite) must stay off unless the caller
// opts in via ElimUnchecked.
func TestPureLiteralGatedByProof(t *testing.T) {
	build := func() *Solver {
		s := New()
		a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
		// a is pure (only positive). The clauses differ in two flipped
		// literals so self-subsumption cannot collapse them first, and b,
		// c are frozen so pure-literal elimination of a is the only
		// rewrite elimPass has available.
		s.AddClause(MkLit(a, false), MkLit(b, false), MkLit(c, false))
		s.AddClause(MkLit(a, false), MkLit(b, true), MkLit(c, true))
		s.Freeze(b)
		s.Freeze(c)
		s.Inprocess = true
		s.InprocessMin = 1
		s.InprocessElim = true
		return s
	}

	s := build()
	s.Proof = &ProofLog{}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if s.Eliminated != 0 {
		t.Fatalf("pure-literal elimination ran under proof logging without ElimUnchecked (%d vars)", s.Eliminated)
	}

	s = build()
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	if s.Eliminated == 0 {
		t.Fatal("expected pure-literal elimination without a proof log")
	}
}
