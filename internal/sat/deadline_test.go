package sat

import (
	"testing"
	"time"
)

// TestDeadlinePolledInsideSearch is the regression test for the
// timeout-overrun bug: the deadline used to be polled only at restart
// boundaries, so one long search segment (restart budgets grow with the
// Luby sequence) could blow past the per-function budget without bound.
// A hard query must now return Unknown close to its deadline — within
// one ~256-conflict poll interval — not at the next restart, however far
// away that is.
func TestDeadlinePolledInsideSearch(t *testing.T) {
	s := New()
	// PHP(10, 9) takes far longer than the deadline below to refute; the
	// verdict must therefore be Unknown, promptly.
	pigeonholeSolver(s, 10, 9)
	const budget = 100 * time.Millisecond
	s.Deadline = time.Now().Add(budget)
	start := time.Now()
	st := s.Solve()
	elapsed := time.Since(start)
	if st != Unknown {
		t.Fatalf("Solve() = %v, want Unknown (deadline exhausted)", st)
	}
	// 256 conflicts take well under a second even with the race detector
	// on; a bound this loose only fails if the in-search poll is gone.
	if elapsed > budget+time.Second {
		t.Fatalf("Solve overran its deadline: ran %v against a %v budget", elapsed, budget)
	}
	t.Logf("returned after %v (budget %v, conflicts %d)", elapsed, budget, s.Conflicts)
}

// TestDeadlineAlreadyPast: a query whose deadline has already elapsed
// must give up within one poll interval and must not report a verdict.
func TestDeadlineAlreadyPast(t *testing.T) {
	s := New()
	pigeonholeSolver(s, 10, 9)
	s.Deadline = time.Now().Add(-time.Second)
	start := time.Now()
	if st := s.Solve(); st != Unknown {
		t.Fatalf("Solve() = %v, want Unknown", st)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("past-deadline query still ran %v", elapsed)
	}
}

// TestDeadlineZeroStillSolves: the zero deadline means unbounded; the
// poll must not misfire on it.
func TestDeadlineZeroStillSolves(t *testing.T) {
	s := New()
	pigeonholeSolver(s, 6, 5)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("Solve() = %v, want Unsat", st)
	}
}
