package sat_test

// Differential validation of SatELite-style inprocessing (preprocess.go)
// against brute-force enumeration, mirroring difftest_test.go: every
// verdict on a random small CNF must survive subsumption, vivification,
// and bounded variable elimination unchanged; Sat models must satisfy the
// *original* clauses (exercising model reconstruction through the
// elimination stack); and every Unsat trace — now containing inprocessing
// adds and deletes — must still replay through the independent RUP
// checker. Also covers the PR's satellite fixes: per-call PropBudget
// accounting and cancellation-token polling.

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sat"
)

// checkModel asserts the solver's model satisfies the original CNF.
func checkModel(t *testing.T, iter int, s *sat.Solver, clauses [][]int32) {
	t.Helper()
	for _, cl := range clauses {
		ok := false
		for _, d := range cl {
			v := d
			if v < 0 {
				v = -v
			}
			if s.Value(int(v-1)) == (d > 0) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("iter %d: model does not satisfy clause %v", iter, cl)
		}
	}
}

// TestDifferentialInprocessed runs the one-shot random-CNF differential
// suite with full inprocessing (elimination included) and proof logging:
// verdicts against brute force, reconstructed models against the original
// clauses, Unsat traces through the RUP checker.
func TestDifferentialInprocessed(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1224))
	for iter := 0; iter < 400; iter++ {
		nvars := 3 + rng.Intn(6)
		clauses := randomCNF(rng, nvars)
		s := newLoggedSolver(nvars, clauses)
		s.Inprocess = true
		s.InprocessMin = 1
		s.InprocessElim = true
		if iter%2 == 1 {
			s.SeedShuffle = uint64(iter)
		}
		got := s.Solve()
		want := bruteForce(nvars, clauses, nil)
		if (got == sat.Sat) != want {
			t.Fatalf("iter %d: inprocessed solver says %v, brute force says sat=%v\ncnf: %v",
				iter, got, want, clauses)
		}
		if got == sat.Sat {
			checkModel(t, iter, s, clauses)
			continue
		}
		ck := replayTrace(t, s.Proof, s.Proof.Len())
		if err := ck.CheckFinal(nil); err != nil {
			t.Fatalf("iter %d: empty clause not RUP after inprocessed trace: %v\ncnf: %v",
				iter, err, clauses)
		}
	}
}

// TestDifferentialInprocessedUnchecked covers the proof-free
// configuration where the non-RUP rewrite (pure-literal elimination) is
// allowed: verdicts and reconstructed models must still be exact.
func TestDifferentialInprocessedUnchecked(t *testing.T) {
	rng := rand.New(rand.NewSource(0x2448))
	for iter := 0; iter < 400; iter++ {
		nvars := 3 + rng.Intn(6)
		clauses := randomCNF(rng, nvars)
		s := newLoggedSolver(nvars, clauses)
		s.Proof = nil
		s.Inprocess = true
		s.InprocessMin = 1
		s.InprocessElim = true
		s.ElimUnchecked = true
		got := s.Solve()
		want := bruteForce(nvars, clauses, nil)
		if (got == sat.Sat) != want {
			t.Fatalf("iter %d: unchecked-elim solver says %v, brute force says sat=%v\ncnf: %v",
				iter, got, want, clauses)
		}
		if got == sat.Sat {
			checkModel(t, iter, s, clauses)
		}
	}
}

// TestDifferentialInprocessedIncremental mirrors the SMT layer's
// incremental usage — shared instance, one assumption per query — with
// inprocessing on (elimination stays off, as in production): verdicts
// against brute force and per-query certificate obligations at their
// recorded trace positions.
func TestDifferentialInprocessedIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(0x3663))
	for iter := 0; iter < 60; iter++ {
		nvars := 4 + rng.Intn(5)
		clauses := randomCNF(rng, nvars)
		s := newLoggedSolver(nvars, clauses)
		s.Inprocess = true
		s.InprocessMin = 1
		type obligation struct {
			pos   int
			final []int32
		}
		var obligations []obligation
		for q := 0; q < 8; q++ {
			v := rng.Intn(nvars)
			root := sat.MkLit(v, rng.Intn(2) == 1)
			got := s.Solve(root)
			want := bruteForce(nvars, clauses, []int32{dimacs(root)})
			if (got == sat.Sat) != want {
				t.Fatalf("iter %d query %d: solver says %v under %v, brute force says sat=%v",
					iter, q, got, root, want)
			}
			if got != sat.Unsat {
				continue
			}
			final := []int32{}
			if s.Okay() {
				final = []int32{-dimacs(root)}
			}
			obligations = append(obligations, obligation{pos: s.Proof.Len(), final: final})
			if !s.Okay() {
				break
			}
		}
		ck := replayTrace(t, s.Proof, 0)
		step := 0
		for oi, ob := range obligations {
			for ; step < ob.pos; step++ {
				op, lits := s.Proof.Step(step)
				d := make([]int32, len(lits))
				for j, l := range lits {
					d[j] = dimacs(l)
				}
				var err error
				switch op {
				case sat.OpInput:
					err = ck.AddInput(d)
				case sat.OpLearn:
					err = ck.AddLearnt(d)
				case sat.OpDelete:
					err = ck.Delete(d)
				}
				if err != nil {
					t.Fatalf("iter %d: step %d: %v", iter, step, err)
				}
			}
			if err := ck.CheckFinal(ob.final); err != nil {
				t.Fatalf("iter %d obligation %d: final %v not RUP at pos %d: %v",
					iter, oi, ob.final, ob.pos, err)
			}
		}
	}
}

// TestSnapshotEquisatisfiable checks the CNF Snapshot exports after an
// inprocessed solve (deleted parents included) is satisfiable exactly
// when the original formula is — the property portfolio racers rely on.
func TestSnapshotEquisatisfiable(t *testing.T) {
	rng := rand.New(rand.NewSource(0x55AA))
	for iter := 0; iter < 120; iter++ {
		nvars := 3 + rng.Intn(5)
		clauses := randomCNF(rng, nvars)
		s := newLoggedSolver(nvars, clauses)
		s.Proof = nil
		s.Inprocess = true
		s.InprocessMin = 1
		s.InprocessElim = true
		got := s.Solve()
		if got == sat.Unsat && !s.Okay() {
			continue // no level-0 state worth exporting
		}
		nv, snap := s.Snapshot(true)
		if nv != nvars {
			t.Fatalf("iter %d: snapshot has %d vars, want %d", iter, nv, nvars)
		}
		dim := make([][]int32, len(snap))
		for i, cl := range snap {
			d := make([]int32, len(cl))
			for j, l := range cl {
				d[j] = dimacs(l)
			}
			dim[i] = d
		}
		if bruteForce(nv, dim, nil) != bruteForce(nvars, clauses, nil) {
			t.Fatalf("iter %d: snapshot not equisatisfiable with original\ncnf: %v\nsnap: %v",
				iter, clauses, dim)
		}
	}
}

// TestPropBudgetPerCall is the regression test for the cumulative-counter
// bug: PropBudget must bound each Solve call, not the instance lifetime.
// A long implication chain costs ~n propagations per query; with the old
// cumulative comparison the budget is exhausted after a handful of
// queries and every later query degrades to Unknown.
func TestPropBudgetPerCall(t *testing.T) {
	s := sat.New()
	const n = 50
	for i := 0; i < n; i++ {
		s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(sat.MkLit(i, true), sat.MkLit(i+1, false))
	}
	s.PropBudget = 4 * n
	for q := 0; q < 100; q++ {
		if st := s.Solve(sat.MkLit(0, false)); st != sat.Sat {
			t.Fatalf("query %d: got %v, want Sat — PropBudget charged cumulatively?", q, st)
		}
	}
}

// TestCancelPreStopped: a solver whose cancellation token is already
// stopped must abandon a conflict-heavy instance at the first poll and
// report Unknown instead of grinding through the refutation.
func TestCancelPreStopped(t *testing.T) {
	nvars, clauses := pigeonhole(9, 8)
	s := newLoggedSolver(nvars, clauses)
	s.Proof = nil
	s.Cancel = &sat.Stop{}
	s.Cancel.Stop()
	if st := s.Solve(); st != sat.Unknown {
		t.Fatalf("got %v, want Unknown under a stopped cancellation token", st)
	}
}

// TestCancelStopsRunningSolve stops a solve from another goroutine — the
// exact shape of a portfolio race loss — and requires prompt Unknown.
// Run under -race this also vouches for the token's synchronization.
func TestCancelStopsRunningSolve(t *testing.T) {
	nvars, clauses := pigeonhole(10, 9)
	s := newLoggedSolver(nvars, clauses)
	s.Proof = nil
	s.Cancel = &sat.Stop{}
	done := make(chan sat.Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(20 * time.Millisecond)
	s.Cancel.Stop()
	select {
	case st := <-done:
		if st != sat.Unknown && st != sat.Unsat {
			t.Fatalf("got %v, want Unknown (cancelled) or Unsat (won the race)", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("solver did not notice cancellation")
	}
}
