package sat

import "time"

// SatELite-style inprocessing (Eén & Biere, SAT 2005): clause subsumption,
// self-subsuming resolution, vivification, and bounded variable
// elimination, run before search and again at restart boundaries. Every
// rewrite is expressed as clause additions and deletions in the DRAT
// trace, and every addition is a resolvent or a probe-derived shortening —
// both RUP against the live clause set at the time it is logged — so an
// inprocessed run certifies exactly like a plain one. The single rewrite
// with no RUP justification, pure-literal elimination, is automatically
// disabled while proof logging is on unless ElimUnchecked is set.
//
// Subsumption, strengthening, and vivification only add implied clauses
// and delete redundant ones, so they are sound for incremental instances.
// Variable elimination rewrites the formula to a merely equisatisfiable
// one: Solve repairs models through the reconstruction stack, but clauses
// added after elimination must not mention eliminated variables (AddClause
// panics) — so elimination is reserved for one-shot instances, with
// assumption variables protected by Freeze.

// Inprocessing bounds. Subsumption scans are capped by subsumer length,
// vivification by clause length and a propagation budget per pass, and
// elimination by per-polarity occurrence counts, parent clause length, and
// zero clause growth (resolvent count must not exceed parent count).
const (
	subsumeMaxLen    = 30
	vivifyMaxLen     = 40
	vivifyPropBudget = 300_000
	elimMaxOcc       = 12
	elimMaxLen       = 20
	// defaultInprocessMin is the instance size below which no pass runs
	// (overridable via Solver.InprocessMin): scans over small instances
	// cost more wall clock than the search time they could save.
	defaultInprocessMin = 2000
)

// inprocMin resolves the effective minimum instance size for
// inprocessing.
func (s *Solver) inprocMin() int {
	if s.InprocessMin > 0 {
		return s.InprocessMin
	}
	return defaultInprocessMin
}

// elimEntry remembers one eliminated variable and the clauses removed on
// its behalf, for model reconstruction.
type elimEntry struct {
	v       int32
	clauses [][]Lit
}

// Freeze marks v as not eliminable by inprocessing. Callers that will use
// v as an assumption, or add clauses over it after Solve, must freeze it
// first.
func (s *Solver) Freeze(v int) {
	for v >= len(s.frozen) {
		s.frozen = append(s.frozen, false)
	}
	s.frozen[v] = true
}

func (s *Solver) isFrozen(v int) bool { return v < len(s.frozen) && s.frozen[v] }

func (s *Solver) isEliminated(v int) bool { return v < len(s.eliminated) && s.eliminated[v] }

// shuffle applies the SeedShuffle diversification: a deterministic
// xorshift stream adds sub-unit activity noise (breaking ties in the
// VSIDS order without overriding real conflict activity) and flips the
// saved phase of a pseudo-random subset of variables.
func (s *Solver) shuffle() {
	s.shuffled = true
	x := s.SeedShuffle
	for v := range s.assigns {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		s.activity[v] += float64(x&0xffff) / (1 << 26)
		if x&0x10000 != 0 {
			s.polarity[v] = !s.polarity[v]
		}
		s.order.update(v)
	}
}

// removeClause marks c deleted — watchers drop lazily in propagate — and
// logs the deletion when the stored literals match a logged step (see
// clause.logged). The object stays in its list so Snapshot still exports
// the original formula.
func (s *Solver) removeClause(c *clause) {
	c.deleted = true
	if c.logged {
		s.logDelete(c.lits)
	}
}

// addDerived installs a derived problem clause — an elimination resolvent
// or a strengthened/vivified shortening — logging it as a learnt step:
// every derived clause is RUP against the clauses live when it is added.
// Root-falsified literals are dropped first (the shrunken clause is RUP
// whenever the full one is, since the checker holds the same root units);
// a root-satisfied derivation is skipped entirely. Returns the installed
// clause, or nil when the result was satisfied, unit, or empty; a unit is
// enqueued and propagated, and a conflict makes the solver unsatisfiable.
// Must be called at decision level 0.
func (s *Solver) addDerived(lits []Lit) *clause {
	out := make([]Lit, 0, len(lits))
	for _, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			return nil
		case lFalse:
			continue
		}
		out = append(out, l)
	}
	s.logLearnt(out)
	switch len(out) {
	case 0:
		s.ok = false
		return nil
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
		}
		return nil
	}
	c := &clause{lits: out, logged: true}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return c
}

// inprocessDue gates the pass that runs at Solve entry: always the first
// time, afterwards only when the problem database grew enough (at least
// 256 clauses and 25%) to make a rescan worthwhile — an incremental
// instance issuing thousands of small queries must not pay a full pass
// per query.
func (s *Solver) inprocessDue() bool {
	if len(s.clauses) < s.inprocMin() {
		return false
	}
	if s.inprocRuns == 0 {
		return true
	}
	grown := len(s.clauses) - s.inprocClauses
	return grown >= 256 && grown*4 >= s.inprocClauses
}

// inprocess runs one simplification round: subsumption and self-
// subsumption always; budget-bounded vivification and — when enabled —
// bounded variable elimination in initial (Solve-entry) rounds only.
// Restart-boundary rounds stay cheap on purpose: a vivification scan
// mid-search spends wall clock a query near its deadline cannot spare,
// while signature-pruned subsumption pays for itself. Returns false when
// the instance became unsatisfiable. Must run at decision level 0.
func (s *Solver) inprocess(initial bool) bool {
	if s.decisionLevel() != 0 || !s.ok {
		return s.ok
	}
	s.subsumePass()
	if s.ok && initial && !s.inprocStopped() {
		s.vivifyPass()
	}
	if s.ok && initial && s.InprocessElim && !s.inprocStopped() {
		s.elimPass()
	}
	s.inprocRuns++
	s.inprocClauses = len(s.clauses)
	s.nextInproc = s.Conflicts + 4000 + 2000*s.inprocRuns
	return s.ok
}

// inprocStopped polls the external stop conditions — the cancellation
// token and the wall-clock deadline — inside simplification passes. The
// passes run before the search loop's own polling starts, so without this
// a long subsume or vivify scan could overrun a per-query deadline by the
// full pass duration.
func (s *Solver) inprocStopped() bool {
	if s.Cancel.Stopped() {
		return true
	}
	return !s.Deadline.IsZero() && time.Now().After(s.Deadline)
}

// Subsumption relations.
const (
	subNone = iota
	subSubsumes
	subStrengthens
)

// subsumes classifies c against d: subSubsumes when every literal of c
// occurs in d, subStrengthens (returning the pivot literal of c) when all
// but exactly one occur and that one occurs negated — resolving c and d
// on the pivot then yields d minus the negated pivot.
func subsumes(c, d []Lit) (Lit, int) {
	pivot := Lit(-1)
	for _, lc := range c {
		found := false
		for _, ld := range d {
			if ld == lc {
				found = true
				break
			}
			if ld == lc.Not() {
				if pivot != -1 {
					return -1, subNone
				}
				pivot = lc
				found = true
				break
			}
		}
		if !found {
			return -1, subNone
		}
	}
	if pivot != -1 {
		return pivot, subStrengthens
	}
	return -1, subSubsumes
}

// subsumePass deletes root-satisfied and subsumed problem clauses and
// applies self-subsuming resolution. Candidate pairs are pruned by
// per-variable occurrence lists and 64-bit variable signatures, MiniSat/
// SatELite style: a clause can only subsume along its least-occurring
// variable, and sig(c) ⊄ sig(d) rules a pair out in one AND.
func (s *Solver) subsumePass() {
	n := len(s.clauses)
	occ := make([][]int32, len(s.assigns))
	sig := make([]uint64, n)
scan:
	for i := 0; i < n; i++ {
		c := s.clauses[i]
		if c.deleted {
			continue
		}
		var g uint64
		for _, l := range c.lits {
			if s.valueLit(l) == lTrue {
				// Satisfied at root: permanently redundant (root
				// assignments never backtrack), so drop it now.
				s.removeClause(c)
				s.Subsumed++
				continue scan
			}
			g |= 1 << (uint(l.Var()) & 63)
			occ[l.Var()] = append(occ[l.Var()], int32(i))
		}
		sig[i] = g
	}
	for i := 0; i < n && s.ok; i++ {
		if i&63 == 0 && s.inprocStopped() {
			return
		}
		c := s.clauses[i]
		if c.deleted || len(c.lits) > subsumeMaxLen {
			continue
		}
		best := c.lits[0].Var()
		for _, l := range c.lits[1:] {
			if len(occ[l.Var()]) < len(occ[best]) {
				best = l.Var()
			}
		}
		for _, dj := range occ[best] {
			d := s.clauses[dj]
			if int(dj) == i || d.deleted || len(d.lits) < len(c.lits) || sig[i]&^sig[dj] != 0 {
				continue
			}
			pivot, rel := subsumes(c.lits, d.lits)
			switch rel {
			case subSubsumes:
				s.removeClause(d)
				s.Subsumed++
			case subStrengthens:
				// Self-subsuming resolution: the resolvent of c and d on
				// the pivot is d without the negated pivot — a resolvent
				// of two live clauses, hence RUP. Add it before deleting
				// d so the checker verifies it against the right live set.
				lits := make([]Lit, 0, len(d.lits)-1)
				for _, l := range d.lits {
					if l != pivot.Not() {
						lits = append(lits, l)
					}
				}
				s.addDerived(lits)
				s.removeClause(d)
				s.Strengthened++
				if !s.ok {
					return
				}
			}
		}
	}
}

// vivifyPass probes problem clauses (budget-bounded) for shortenings.
func (s *Solver) vivifyPass() {
	n := len(s.clauses)
	start := s.Propagations
	for i := 0; i < n && s.ok; i++ {
		if s.Propagations-start > vivifyPropBudget || s.inprocStopped() {
			break
		}
		c := s.clauses[i]
		if c.deleted || len(c.lits) > vivifyMaxLen {
			continue
		}
		s.vivifyClause(c)
	}
}

// vivifyClause asserts the negation of c's literals one decision level at
// a time. Three outcomes shorten the clause: a propagation conflict (the
// prefix alone is contradictory), a literal implied true (the prefix plus
// that literal covers the clause), and a literal implied false (it is
// redundant in c). In each case the shortened clause is RUP: asserting
// its negation replays the probe's propagations against the live set —
// which still includes c itself — to the same contradiction. The clause
// is replaced, never mutated, so the trace sees a checkable add+delete.
func (s *Solver) vivifyClause(c *clause) {
	// Probe over a copy: c stays attached, and propagate reorders the
	// literals of clauses it visits (watched-literal swaps) — iterating
	// c.lits directly would skip or repeat literals mid-probe.
	lits := append([]Lit(nil), c.lits...)
	kept := make([]Lit, 0, len(lits))
	shrunk := false
probe:
	for idx, l := range lits {
		switch s.valueLit(l) {
		case lTrue:
			if s.level[l.Var()] == 0 {
				// Root-satisfied (by a unit derived earlier in this very
				// pass): permanently redundant.
				s.cancelUntil(0)
				s.removeClause(c)
				s.Subsumed++
				return
			}
			kept = append(kept, l)
			if idx < len(lits)-1 {
				shrunk = true
			}
			break probe
		case lFalse:
			// Root-false or implied false by the probed prefix: redundant
			// in c either way.
			shrunk = true
		default:
			s.trailLim = append(s.trailLim, int32(len(s.trail)))
			s.uncheckedEnqueue(l.Not(), nil)
			kept = append(kept, l)
			if s.propagate() != nil {
				if idx < len(lits)-1 {
					shrunk = true
				}
				break probe
			}
		}
	}
	s.cancelUntil(0)
	if !shrunk {
		return
	}
	s.Vivified++
	s.addDerived(kept)
	s.removeClause(c)
}

// elimPass performs bounded variable elimination (the SatELite rewrite):
// an unfrozen, unassigned variable whose resolvent set is no larger than
// the clause set it replaces is resolved away. Resolvents are added (each
// one RUP — its negation makes both parents propagate the pivot in
// opposite polarities) before the parents are deleted, and the parents
// are saved on the reconstruction stack so Sat models extend back to the
// original variable set.
func (s *Solver) elimPass() {
	nv := len(s.assigns)
	for len(s.eliminated) < nv {
		s.eliminated = append(s.eliminated, false)
	}
	occ := make([][]*clause, 2*nv)
	for _, c := range s.clauses {
		if c.deleted {
			continue
		}
		for _, l := range c.lits {
			occ[l] = append(occ[l], c)
		}
	}
	gather := func(ws []*clause) []*clause {
		out := make([]*clause, 0, len(ws))
		for _, c := range ws {
			if !c.deleted {
				out = append(out, c)
			}
		}
		return out
	}
	short := func(cs []*clause) bool {
		for _, c := range cs {
			if len(c.lits) > elimMaxLen {
				return false
			}
		}
		return true
	}
	for v := 0; v < nv && s.ok; v++ {
		if v&63 == 0 && s.inprocStopped() {
			break
		}
		if s.assigns[v] != lUndef || s.eliminated[v] || s.isFrozen(v) {
			continue
		}
		pos := gather(occ[MkLit(v, false)])
		neg := gather(occ[MkLit(v, true)])
		if len(pos) == 0 && len(neg) == 0 {
			continue
		}
		if len(pos) == 0 || len(neg) == 0 {
			// Pure literal: zero resolvents, but the implicit unit that
			// justifies deleting the clauses is satisfiability-preserving,
			// not implied — there is no RUP step for it, so with proof
			// logging on this rewrite needs an explicit opt-in.
			if s.Proof != nil && !s.ElimUnchecked {
				continue
			}
			s.eliminateVar(v, pos, neg, nil, occ)
			continue
		}
		if len(pos) > elimMaxOcc || len(neg) > elimMaxOcc || !short(pos) || !short(neg) {
			continue
		}
		res, ok := resolveAll(pos, neg, v, len(pos)+len(neg))
		if !ok {
			continue
		}
		s.eliminateVar(v, pos, neg, res, occ)
	}
}

// eliminateVar performs one elimination: resolvents in, parents out,
// parents saved for reconstruction. New resolvents join the occurrence
// index so later eliminations see them — missing one would silently drop
// a constraint and break soundness.
func (s *Solver) eliminateVar(v int, pos, neg []*clause, res [][]Lit, occ [][]*clause) {
	saved := make([][]Lit, 0, len(pos)+len(neg))
	for _, c := range pos {
		saved = append(saved, append([]Lit(nil), c.lits...))
	}
	for _, c := range neg {
		saved = append(saved, append([]Lit(nil), c.lits...))
	}
	for _, r := range res {
		c := s.addDerived(r)
		if !s.ok {
			return
		}
		if c != nil {
			for _, l := range c.lits {
				occ[l] = append(occ[l], c)
			}
		}
	}
	for _, c := range pos {
		s.removeClause(c)
	}
	for _, c := range neg {
		s.removeClause(c)
	}
	s.elimStack = append(s.elimStack, elimEntry{v: int32(v), clauses: saved})
	s.eliminated[v] = true
	s.Eliminated++
}

// resolveAll builds the non-tautological resolvents of pos × neg on v,
// failing when they would outnumber maxRes (the growth bound).
func resolveAll(pos, neg []*clause, v int, maxRes int) ([][]Lit, bool) {
	var out [][]Lit
	for _, cp := range pos {
		for _, cn := range neg {
			r, taut := resolve(cp.lits, cn.lits, v)
			if taut {
				continue
			}
			out = append(out, r)
			if len(out) > maxRes {
				return nil, false
			}
		}
	}
	return out, true
}

// resolve returns the resolvent of p and n on pivot variable v, deduped,
// reporting tautology.
func resolve(p, n []Lit, v int) ([]Lit, bool) {
	out := make([]Lit, 0, len(p)+len(n)-2)
	for _, l := range p {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range n {
		if l.Var() == v {
			continue
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return nil, true
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	return out, false
}

// reconstructModel extends a satisfying assignment of the post-
// elimination formula to the original variable set: eliminated variables
// are assigned in reverse elimination order so every clause removed on
// their behalf is satisfied (always possible when the resolvents are —
// the standard SatELite reconstruction invariant). Later-eliminated
// variables may appear in earlier entries' saved clauses, so the reverse
// order resolves them first.
func (s *Solver) reconstructModel() {
	for i := len(s.elimStack) - 1; i >= 0; i-- {
		e := s.elimStack[i]
		val := lFalse
		for _, cl := range e.clauses {
			satisfied := false
			var vl Lit = -1
			for _, l := range cl {
				if l.Var() == int(e.v) {
					vl = l
					continue
				}
				m := s.model[l.Var()]
				if m < lUndef && m^lbool(l&1) == lTrue {
					satisfied = true
					break
				}
			}
			if satisfied || vl == -1 {
				continue
			}
			if vl.Neg() {
				val = lFalse
			} else {
				val = lTrue
			}
		}
		s.model[e.v] = val
	}
}

// Snapshot exports the instance's CNF at decision level 0: every root-
// assigned literal as a unit clause, then every live problem clause,
// then the parent clauses of every eliminated variable — those are
// required for model correctness on the importing side, which has no
// reconstruction stack; clauses deleted by subsumption or vivification
// are implied by the live set (every deletion happened while the
// remaining clauses subsumed or covered the deleted one) and are
// excluded, keeping the export lean — and optionally the live learnt
// clauses. Learnt clauses are implied, so including them preserves
// equivalence, but an importer logs everything as input axioms: callers
// recording proofs must exclude them.
func (s *Solver) Snapshot(withLearnts bool) (nvars int, clauses [][]Lit) {
	if s.decisionLevel() != 0 {
		panic("sat: Snapshot above decision level 0")
	}
	out := make([][]Lit, 0, len(s.trail)+len(s.clauses))
	for _, l := range s.trail {
		out = append(out, []Lit{l})
	}
	for _, c := range s.clauses {
		if !c.deleted {
			out = append(out, append([]Lit(nil), c.lits...))
		}
	}
	for _, e := range s.elimStack {
		for _, lits := range e.clauses {
			out = append(out, append([]Lit(nil), lits...))
		}
	}
	if withLearnts {
		for _, c := range s.learnts {
			if !c.deleted {
				out = append(out, append([]Lit(nil), c.lits...))
			}
		}
	}
	return len(s.assigns), out
}
