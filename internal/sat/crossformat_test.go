package sat_test

// Cross-format certificate check over the differential CNF suite: every
// Unsat verdict's trace, serialized once in the schema-1 text format and
// once in the schema-2 binary container, must RUP-verify identically —
// the two encodings are alternative containers for the same proof, and a
// divergence would mean one of them drops or distorts steps.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/proof"
	"repro/internal/sat"
)

// encodeText serializes the proof log as a single-session schema-1 text
// trace.
func encodeText(log *sat.ProofLog) []byte {
	var buf bytes.Buffer
	buf.WriteString("s 0\n")
	for i := 0; i < log.Len(); i++ {
		op, lits := log.Step(i)
		fmt.Fprintf(&buf, "%c", op)
		for _, l := range lits {
			fmt.Fprintf(&buf, " %d", dimacs(l))
		}
		buf.WriteString(" 0\n")
	}
	return buf.Bytes()
}

// encodeBinary serializes the proof log as a single-session binary
// container.
func encodeBinary(t *testing.T, log *sat.ProofLog) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := proof.NewBinWriter(&buf)
	for i := 0; i < log.Len(); i++ {
		op, lits := log.Step(i)
		d := make([]int32, len(lits))
		for j, l := range lits {
			d[j] = dimacs(l)
		}
		if err := bw.Step(0, op, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// replayEncoded walks an encoded trace through a fresh RUP checker and
// returns the step count and the final empty-clause verdict.
func replayEncoded(t *testing.T, data []byte) (steps int, err error) {
	t.Helper()
	ck := proof.NewSessionChecker()
	werr := proof.WalkDrat(bytes.NewReader(data), func(sess int, op byte, lits []int32) error {
		steps++
		switch op {
		case sat.OpInput:
			return ck.AddInput(lits)
		case sat.OpLearn:
			return ck.AddLearnt(lits)
		case sat.OpDelete:
			return ck.Delete(lits)
		}
		return fmt.Errorf("unknown opcode %q", op)
	})
	if werr != nil {
		return steps, werr
	}
	return steps, ck.CheckFinal(nil)
}

func TestDifferentialCrossFormatDrat(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1FF))
	unsat := 0
	for iter := 0; iter < 300; iter++ {
		nvars := 3 + rng.Intn(6)
		clauses := randomCNF(rng, nvars)
		s := newLoggedSolver(nvars, clauses)
		if s.Solve() == sat.Sat {
			continue
		}
		unsat++
		text := encodeText(s.Proof)
		bin := encodeBinary(t, s.Proof)
		tSteps, tErr := replayEncoded(t, text)
		bSteps, bErr := replayEncoded(t, bin)
		if (tErr == nil) != (bErr == nil) {
			t.Fatalf("iter %d: formats disagree: text err=%v, binary err=%v\ncnf: %v",
				iter, tErr, bErr, clauses)
		}
		if tErr != nil {
			t.Fatalf("iter %d: refutation did not verify: %v\ncnf: %v", iter, tErr, clauses)
		}
		if tSteps != bSteps {
			t.Fatalf("iter %d: text replayed %d steps, binary %d", iter, tSteps, bSteps)
		}
	}
	if unsat < 20 {
		t.Fatalf("only %d unsat instances — suite too small to be meaningful", unsat)
	}
}
