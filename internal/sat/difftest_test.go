package sat_test

// Differential validation of the CDCL solver against brute-force
// enumeration, with proof logging enabled throughout: every verdict on a
// random small CNF must match exhaustive search, every Sat model must
// evaluate the formula to true, and every Unsat verdict's DRAT trace must
// replay through the independent RUP checker in internal/proof. This is
// the cross-check that the solver and the certificate chain agree on
// formulas where ground truth is computable.

import (
	"math/rand"
	"testing"

	"repro/internal/proof"
	"repro/internal/sat"
)

// dimacs converts a solver literal to its DIMACS encoding.
func dimacs(l sat.Lit) int32 {
	v := int32(l.Var()) + 1
	if l.Neg() {
		return -v
	}
	return v
}

// replayTrace feeds the first n steps of a proof log into a fresh RUP
// checker, failing the test on any step the checker rejects.
func replayTrace(t *testing.T, log *sat.ProofLog, n int) *proof.SessionChecker {
	t.Helper()
	ck := proof.NewSessionChecker()
	for i := 0; i < n; i++ {
		op, lits := log.Step(i)
		d := make([]int32, len(lits))
		for j, l := range lits {
			d[j] = dimacs(l)
		}
		var err error
		switch op {
		case sat.OpInput:
			err = ck.AddInput(d)
		case sat.OpLearn:
			err = ck.AddLearnt(d)
		case sat.OpDelete:
			err = ck.Delete(d)
		default:
			t.Fatalf("step %d: unknown opcode %q", i, op)
		}
		if err != nil {
			t.Fatalf("step %d (op %q): %v", i, op, err)
		}
	}
	return ck
}

// bruteForce reports whether the CNF (DIMACS-style clauses over nvars
// variables) is satisfiable under the extra unit assumptions.
func bruteForce(nvars int, clauses [][]int32, assumptions []int32) bool {
	total := 1 << nvars
next:
	for m := 0; m < total; m++ {
		holds := func(lit int32) bool {
			v := lit
			if v < 0 {
				v = -v
			}
			bit := m>>(v-1)&1 == 1
			return bit == (lit > 0)
		}
		for _, a := range assumptions {
			if !holds(a) {
				continue next
			}
		}
		for _, cl := range clauses {
			sat := false
			for _, lit := range cl {
				if holds(lit) {
					sat = true
					break
				}
			}
			if !sat {
				continue next
			}
		}
		return true
	}
	return false
}

// randomCNF generates a small random CNF with distinct variables per
// clause (no tautologies, so brute force and the solver see the same
// problem shape the bit-blaster produces).
func randomCNF(rng *rand.Rand, nvars int) [][]int32 {
	nclauses := 1 + rng.Intn(4*nvars)
	clauses := make([][]int32, nclauses)
	for i := range clauses {
		width := 1 + rng.Intn(3)
		if width > nvars {
			width = nvars
		}
		perm := rng.Perm(nvars)[:width]
		cl := make([]int32, width)
		for j, v := range perm {
			cl[j] = int32(v + 1)
			if rng.Intn(2) == 1 {
				cl[j] = -cl[j]
			}
		}
		clauses[i] = cl
	}
	return clauses
}

// newLoggedSolver builds a solver over the DIMACS clauses with proof
// logging attached from the start.
func newLoggedSolver(nvars int, clauses [][]int32) *sat.Solver {
	s := sat.New()
	s.Proof = &sat.ProofLog{}
	for i := 0; i < nvars; i++ {
		s.NewVar()
	}
	for _, cl := range clauses {
		lits := make([]sat.Lit, len(cl))
		for j, d := range cl {
			v := d
			if v < 0 {
				v = -v
			}
			lits[j] = sat.MkLit(int(v-1), d < 0)
		}
		s.AddClause(lits...)
	}
	return s
}

// TestDifferentialRandomCNF cross-checks several hundred seeded random
// CNFs: CDCL verdict vs brute force, Sat models re-evaluated, Unsat DRAT
// traces RUP-verified end to end (global refutation: the empty clause
// must be RUP at the end of the trace).
func TestDifferentialRandomCNF(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	for iter := 0; iter < 400; iter++ {
		nvars := 3 + rng.Intn(6)
		clauses := randomCNF(rng, nvars)
		s := newLoggedSolver(nvars, clauses)
		got := s.Solve()
		want := bruteForce(nvars, clauses, nil)
		if (got == sat.Sat) != want {
			t.Fatalf("iter %d: solver says %v, brute force says sat=%v\ncnf: %v",
				iter, got, want, clauses)
		}
		if got == sat.Sat {
			for _, cl := range clauses {
				ok := false
				for _, d := range cl {
					v := d
					if v < 0 {
						v = -v
					}
					if s.Value(int(v-1)) == (d > 0) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("iter %d: model does not satisfy clause %v", iter, cl)
				}
			}
			continue
		}
		ck := replayTrace(t, s.Proof, s.Proof.Len())
		if err := ck.CheckFinal(nil); err != nil {
			t.Fatalf("iter %d: empty clause not RUP after full trace: %v\ncnf: %v",
				iter, err, clauses)
		}
	}
}

// TestDifferentialIncremental exercises the incremental pattern the SMT
// layer uses — one long-lived solver, one assumption literal per query —
// and checks each Unsat verdict's certificate semantics: while the solver
// is still Okay, the negated-assumption clause must be RUP at the
// verdict's trace position; after a global refutation, the empty clause.
func TestDifferentialIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(0xCAFE))
	for iter := 0; iter < 60; iter++ {
		nvars := 4 + rng.Intn(5)
		clauses := randomCNF(rng, nvars)
		s := newLoggedSolver(nvars, clauses)
		type obligation struct {
			pos   int
			final []int32
		}
		var obligations []obligation
		for q := 0; q < 8; q++ {
			v := rng.Intn(nvars)
			root := sat.MkLit(v, rng.Intn(2) == 1)
			got := s.Solve(root)
			want := bruteForce(nvars, clauses, []int32{dimacs(root)})
			if (got == sat.Sat) != want {
				t.Fatalf("iter %d query %d: solver says %v under %v, brute force says sat=%v",
					iter, q, got, root, want)
			}
			if got != sat.Unsat {
				continue
			}
			final := []int32{} // empty clause: global refutation
			if s.Okay() {
				final = []int32{-dimacs(root)}
			}
			obligations = append(obligations, obligation{pos: s.Proof.Len(), final: final})
			if !s.Okay() {
				break
			}
		}
		// Replay the shared session once, discharging each obligation at
		// its recorded position — exactly what CheckDir does per function.
		ck := proof.NewSessionChecker()
		step := 0
		for oi, ob := range obligations {
			for ; step < ob.pos; step++ {
				op, lits := s.Proof.Step(step)
				d := make([]int32, len(lits))
				for j, l := range lits {
					d[j] = dimacs(l)
				}
				var err error
				switch op {
				case sat.OpInput:
					err = ck.AddInput(d)
				case sat.OpLearn:
					err = ck.AddLearnt(d)
				case sat.OpDelete:
					err = ck.Delete(d)
				}
				if err != nil {
					t.Fatalf("iter %d: step %d: %v", iter, step, err)
				}
			}
			if err := ck.CheckFinal(ob.final); err != nil {
				t.Fatalf("iter %d obligation %d: final %v not RUP at pos %d: %v",
					iter, oi, ob.final, ob.pos, err)
			}
		}
	}
}

// pigeonhole builds the classic unsatisfiable PHP(p, h) instance: p
// pigeons into h < p holes. Variable p*h + hole + 1 ... encoded as
// pigeon*h + hole (0-based).
func pigeonhole(pigeons, holes int) (int, [][]int32) {
	v := func(pigeon, hole int) int32 { return int32(pigeon*holes + hole + 1) }
	var clauses [][]int32
	for p := 0; p < pigeons; p++ {
		cl := make([]int32, holes)
		for h := 0; h < holes; h++ {
			cl[h] = v(p, h)
		}
		clauses = append(clauses, cl)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				clauses = append(clauses, []int32{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return pigeons * holes, clauses
}

// TestDifferentialPigeonholeWithDeletions forces the LBD clause-database
// reduction to fire mid-proof (tiny reduce interval on a conflict-heavy
// instance) so the trace contains deletion steps, then verifies the
// refutation still replays: deleted clauses must be strictly matched and
// must not be needed by later RUP checks.
func TestDifferentialPigeonholeWithDeletions(t *testing.T) {
	nvars, clauses := pigeonhole(6, 5)
	s := newLoggedSolver(nvars, clauses)
	s.LBD = true
	s.ReduceInterval = 1
	if got := s.Solve(); got != sat.Unsat {
		t.Fatalf("PHP(6,5) solved as %v, want unsat", got)
	}
	deletions := 0
	for i := 0; i < s.Proof.Len(); i++ {
		if op, _ := s.Proof.Step(i); op == sat.OpDelete {
			deletions++
		}
	}
	if deletions == 0 {
		t.Fatalf("no deletion steps in trace (%d conflicts, %d reduces) — reduce interval did not fire",
			s.Conflicts, s.Reduces)
	}
	ck := replayTrace(t, s.Proof, s.Proof.Len())
	if err := ck.CheckFinal(nil); err != nil {
		t.Fatalf("empty clause not RUP after trace with %d deletions: %v", deletions, err)
	}
	t.Logf("PHP(6,5): %d conflicts, %d trace steps, %d deletions, refutation verified",
		s.Conflicts, s.Proof.Len(), deletions)
}
