package sat

import "testing"

// TestProofLogTrim pins the index-stability contract of Trim: after
// trimming a flushed prefix, Len still counts trimmed steps and Step(i)
// returns the same data for every surviving absolute index, including
// across further appends and repeated or out-of-range trims.
func TestProofLogTrim(t *testing.T) {
	p := &ProofLog{}
	var want [][]Lit
	var wantOp []byte
	add := func(n int) {
		for i := 0; i < n; i++ {
			k := len(want)
			lits := make([]Lit, 1+k%4)
			for j := range lits {
				lits[j] = Lit(10*k + j + 1)
			}
			op := byte('i')
			if k%3 == 1 {
				op = 'l'
			} else if k%3 == 2 {
				op = 'd'
			}
			p.append(op, lits)
			want = append(want, lits)
			wantOp = append(wantOp, op)
		}
	}
	checkFrom := func(base int) {
		t.Helper()
		if p.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", p.Len(), len(want))
		}
		if p.Base() != base {
			t.Fatalf("Base = %d, want %d", p.Base(), base)
		}
		for i := base; i < p.Len(); i++ {
			op, lits := p.Step(i)
			if op != wantOp[i] {
				t.Fatalf("Step(%d) op = %q, want %q", i, op, wantOp[i])
			}
			if len(lits) != len(want[i]) {
				t.Fatalf("Step(%d) has %d lits, want %d", i, len(lits), len(want[i]))
			}
			for j := range lits {
				if lits[j] != want[i][j] {
					t.Fatalf("Step(%d) lits = %v, want %v", i, lits, want[i])
				}
			}
		}
	}

	add(10)
	checkFrom(0)

	p.Trim(4)
	checkFrom(4)

	p.Trim(4) // repeated trim is a no-op
	checkFrom(4)
	p.Trim(2) // below base is a no-op
	checkFrom(4)

	add(5) // appends after a trim keep absolute indexing
	checkFrom(4)

	p.Trim(12)
	checkFrom(12)

	p.Trim(p.Len() + 100) // clamped to Len: empties the live tail
	checkFrom(p.Len())
	if len(p.steps) != 0 || len(p.lits) != 0 {
		t.Fatalf("full trim left %d steps, %d lits in memory", len(p.steps), len(p.lits))
	}

	add(3) // the log keeps working after being fully drained
	checkFrom(15)
}
