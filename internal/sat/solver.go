// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the style of MiniSat: two-watched-literal propagation, VSIDS
// branching, first-UIP clause learning, and Luby restarts.
//
// The solver is the decision-procedure backend for the bit-blasting SMT
// layer in internal/smt, which in turn discharges the verification
// conditions produced by the KEQ equivalence checker.
package sat

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Lit is a literal: variable index shifted left once, low bit is the sign
// (1 = negated). Variables are numbered from 0.
type Lit int32

// MkLit builds a literal for variable v, negated when neg is true.
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether l is a negated literal.
func (l Lit) Neg() bool { return l&1 == 1 }

// Not returns the complement literal.
func (l Lit) Not() Lit { return l ^ 1 }

func (l Lit) String() string {
	if l.Neg() {
		return fmt.Sprintf("-%d", l.Var()+1)
	}
	return fmt.Sprintf("%d", l.Var()+1)
}

// lbool is a variable assignment encoded so that the value of a literal is
// assigns[var] XOR sign-bit — a single branchless operation in the unit
// propagation hot loop (values ≥ 2 mean unassigned).
type lbool uint8

const (
	lTrue  lbool = 0
	lFalse lbool = 1
	lUndef lbool = 2
)

func (b lbool) not() lbool {
	if b >= lUndef {
		return lUndef
	}
	return b ^ 1
}

type clause struct {
	lits    []Lit
	learnt  bool
	act     float64
	lbd     int32 // literal block distance at learning time (LBD mode only)
	deleted bool
	// logged records that lits matches a clause step in the proof trace
	// verbatim (learnt and derived clauses always; input clauses only when
	// AddClause normalization changed nothing). Deleting an unlogged
	// clause must not emit a trace deletion — the checker's strict
	// matching would reject it — so the checker just keeps it live, which
	// is sound: deletions only ever shrink the live set.
	logged bool
}

// Stop is a shared cancellation token. A portfolio race sets it once some
// solver wins; every other solver sharing it observes the flag at its next
// search-loop poll (every 256 conflicts and at restart boundaries) and
// returns Unknown. A nil *Stop is never stopped.
type Stop struct{ flag atomic.Bool }

// Stop requests cancellation.
func (t *Stop) Stop() { t.flag.Store(true) }

// Stopped reports whether cancellation was requested.
func (t *Stop) Stopped() bool { return t != nil && t.flag.Load() }

// Status is the result of a Solve call.
type Status int8

const (
	// Unknown means the solver gave up (budget exhausted).
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable.
	Unsat
)

func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	}
	return "unknown"
}

// ErrBudget is returned by Solve when the conflict or propagation budget is
// exhausted before a verdict was reached.
var ErrBudget = errors.New("sat: budget exhausted")

type watcher struct {
	c       *clause
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; call New.
type Solver struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	assigns  []lbool
	level    []int32
	reason   []*clause
	trail    []Lit
	trailLim []int32
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap
	polarity []bool // saved phases

	claInc float64

	seen     []byte
	analyzeT []Lit

	// Budgets: 0 means unlimited.
	ConflictBudget int64
	PropBudget     int64
	// Deadline, when non-zero, makes Solve return Unknown once passed.
	// It is polled inside the search loop every 256 conflicts (and at
	// restart boundaries), so a long search segment can overrun the
	// deadline by at most one poll interval — not by a whole Luby
	// restart budget.
	Deadline time.Time
	// Cancel, when non-nil, is a shared cancellation token polled at the
	// same points as Deadline: once stopped, Solve returns Unknown. A
	// portfolio race hands the same token to every competing solver so
	// the first winner cancels the rest.
	Cancel *Stop

	// PhasePositive makes fresh variables start with a positive saved
	// phase (the MiniSat default is negative). Portfolio diversification
	// knob; must be set before variables are allocated.
	PhasePositive bool
	// SeedShuffle, when non-zero, perturbs variable activities and saved
	// phases with a deterministic xorshift stream seeded by it before the
	// first search, diversifying the branching order across portfolio
	// racers. Zero (the default) leaves the ordering untouched.
	SeedShuffle uint64
	// RestartBase scales the Luby restart sequence (0 = default 100
	// conflicts per unit).
	RestartBase int64

	// Inprocess enables SatELite-style inprocessing — clause subsumption,
	// self-subsuming resolution, and vivification — before search and at
	// restart boundaries (see preprocess.go). Every rewrite it performs
	// is logged as a RUP-checkable trace step, so it is proof-safe, and
	// it only adds/deletes implied clauses, so it is sound on incremental
	// instances too.
	Inprocess bool
	// InprocessElim additionally enables bounded variable elimination in
	// the initial inprocessing pass. Elimination preserves satisfiability
	// but not equivalence — models are repaired by reconstruction, and
	// clauses added later may not mention eliminated variables — so it
	// must only be enabled on one-shot instances. Assumption variables
	// must be frozen with Freeze. Requires Inprocess.
	InprocessElim bool
	// ElimUnchecked permits the elimination rewrite that is not
	// RUP-checkable (pure-literal elimination: its unit is justified by
	// satisfiability preservation, not implication, so no trace step can
	// certify it). Off by default: with Proof != nil only resolution-
	// based elimination — whose added resolvents are RUP — runs.
	ElimUnchecked bool
	// InprocessMin is the minimum problem-clause count before any
	// inprocessing pass runs (0 = a built-in default, see
	// defaultInprocessMin). A subsume/vivify scan over a tiny instance
	// costs more than it can possibly save, and most corpus queries are
	// tiny — the threshold keeps them on the plain search path while the
	// pathological instances that motivate inprocessing (thousands of
	// clauses) still get the full treatment. Tests lower it to exercise
	// the passes on small formulas.
	InprocessMin int

	// LBD enables Glucose-style learned-clause database management: each
	// learnt clause is tagged with its literal block distance (number of
	// distinct decision levels among its literals), clauses touched during
	// conflict analysis are bumped and their LBD refreshed downward, and
	// the database is reduced periodically at restart boundaries keeping
	// the glue set (LBD ≤ 2), binary, and locked clauses. This is what
	// keeps a long-lived incremental instance from drowning in stale
	// learnt clauses over thousands of queries. Off by default so the
	// zero-value solver reproduces the legacy activity-threshold policy
	// bit for bit.
	LBD bool
	// ReduceInterval is the conflict gap between LBD database reductions
	// (0 = default 2000). The gap grows by 300 per reduction performed.
	ReduceInterval int64

	// Proof, when non-nil, receives a DRAT-style trace of the run: input
	// clauses, learnt clauses, and database deletions (see proof.go).
	// Nil by default: proof logging is opt-in and costs nothing when off.
	Proof *ProofLog

	// Stats
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Reduces      int64 // LBD database reductions performed
	Removed      int64 // learnt clauses deleted by LBD reductions
	Subsumed     int64 // clauses deleted as subsumed or root-satisfied
	Strengthened int64 // clauses shortened by self-subsuming resolution
	Vivified     int64 // clauses shortened by vivification
	Eliminated   int64 // variables removed by bounded variable elimination

	lbdSeen    []int64 // per-level stamp array for computeLBD
	lbdStamp   int64
	nextReduce int64

	// inprocessing state (see preprocess.go)
	frozen        []bool
	eliminated    []bool
	elimStack     []elimEntry
	shuffled      bool
	inprocRuns    int64
	inprocClauses int
	nextInproc    int64

	model []lbool
	ok    bool
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		varInc: 1.0,
		claInc: 1.0,
		ok:     true,
	}
	s.order = &varHeap{act: &s.activity}
	return s
}

// NumVars returns the number of allocated variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NumClauses returns the number of problem clauses added.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	// Decision levels range 0..NumVars, so lbdSeen needs NumVars+1 slots.
	if len(s.lbdSeen) == 0 {
		s.lbdSeen = append(s.lbdSeen, 0)
	}
	s.lbdSeen = append(s.lbdSeen, 0)
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	// Default phase: false (negated); positive under PhasePositive.
	s.polarity = append(s.polarity, !s.PhasePositive)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assigns[l>>1] ^ lbool(l&1)
	if v >= lUndef {
		return lUndef
	}
	return v
}

// AddClause adds a clause over the given literals. It returns false when the
// solver is already in an unsatisfiable state (e.g. after adding conflicting
// unit clauses).
func (s *Solver) AddClause(lits ...Lit) bool {
	return s.addClause(lits, false)
}

// LearnClause adds a clause the caller has derived as a consequence of the
// current clause database — e.g. the negation of a refuted cube during an
// in-place cube-and-conquer conquest. Unlike AddClause it is recorded as a
// learnt step, so the proof checker re-derives it by reverse unit
// propagation instead of granting it as an axiom; the clause then joins
// the database like any other and strengthens every later Solve call.
func (s *Solver) LearnClause(lits ...Lit) bool {
	return s.addClause(lits, true)
}

func (s *Solver) addClause(lits []Lit, learnt bool) bool {
	if !s.ok {
		return false
	}
	if s.decisionLevel() != 0 {
		panic("sat: AddClause above decision level 0")
	}
	if len(s.elimStack) > 0 {
		for _, l := range lits {
			if s.isEliminated(l.Var()) {
				panic("sat: clause mentions eliminated variable (Freeze it before Solve)")
			}
		}
	}
	// Log the clause as given: the proof checker replays the original
	// formula, so normalization below must not be reflected in the trace.
	if learnt {
		s.logLearnt(lits)
	} else {
		s.logInput(lits)
	}
	// Normalize: sort-free dedup, drop false lits, detect tautology/sat.
	out := lits[:0:0]
	for _, l := range lits {
		if l.Var() >= len(s.assigns) {
			panic(fmt.Sprintf("sat: clause mentions unallocated variable %d", l.Var()))
		}
		switch s.valueLit(l) {
		case lTrue:
			return true // clause already satisfied at level 0
		case lFalse:
			continue // drop
		}
		dup := false
		for _, o := range out {
			if o == l {
				dup = true
				break
			}
			if o == l.Not() {
				return true // tautology
			}
		}
		if !dup {
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	// The stored clause matches the logged input step exactly when
	// normalization dropped nothing (sorted-multiset delete matching makes
	// literal order irrelevant).
	c := &clause{lits: out, logged: len(out) == len(lits)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Not()] = append(s.watches[l0.Not()], watcher{c, l1})
	s.watches[l1.Not()] = append(s.watches[l1.Not()], watcher{c, l0})
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

// propagate performs unit propagation; returns the conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		ws := s.watches[p]
		j := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			c := w.c
			// Deleted clauses must be dropped before the blocker shortcut:
			// a deleted clause whose blocker happens to be true would
			// otherwise keep its watcher forever, defeating lazy
			// detachment and bloating hot watch lists.
			if c.deleted {
				continue
			}
			if s.valueLit(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			// Make sure the false literal is lits[1].
			notP := p.Not()
			if c.lits[0] == notP {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.valueLit(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new watch.
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := c.lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.valueLit(first) == lFalse {
				// Conflict: copy back remaining watchers.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

// analyze produces a learnt clause (first UIP) and a backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := s.analyzeT[:0]
	learnt = append(learnt, 0) // placeholder for the asserting literal
	pathC := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		if s.LBD && confl.learnt {
			// Reward clauses that keep participating in conflicts and let
			// their LBD improve: a clause that has become glue is worth
			// keeping regardless of the level pattern it was learnt at.
			s.bumpClause(confl)
			if nl := s.computeLBD(confl.lits); nl < confl.lbd {
				confl.lbd = nl
			}
		}
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.bumpVar(v)
				s.seen[v] = 1
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal to look at.
		for s.seen[s.trail[idx].Var()] == 0 {
			idx--
		}
		p = s.trail[idx]
		idx--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Conflict-clause minimization (local: remove literals implied by
	// others). Clear seen flags of removed literals as we go; the kept ones
	// are cleared below.
	out := learnt[:1]
	for _, l := range learnt[1:] {
		if s.redundant(l) {
			s.seen[l.Var()] = 0
		} else {
			out = append(out, l)
		}
	}
	learnt = out

	// Find backtrack level.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	for _, l := range learnt {
		s.seen[l.Var()] = 0
	}
	s.analyzeT = learnt[:0]
	res := make([]Lit, len(learnt))
	copy(res, learnt)
	return res, btLevel
}

// redundant reports whether literal l in a learnt clause is implied by the
// remaining literals through its reason clause (cheap one-level check).
func (s *Solver) redundant(l Lit) bool {
	r := s.reason[l.Var()]
	if r == nil {
		return false
	}
	for _, q := range r.lits {
		if q.Var() == l.Var() {
			continue
		}
		if s.seen[q.Var()] == 0 && s.level[q.Var()] > 0 {
			return false
		}
	}
	return true
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, cl := range s.learnts {
			cl.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	lim := int(s.trailLim[level])
	for i := len(s.trail) - 1; i >= lim; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.assigns[v] == lFalse
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:lim]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchLit() Lit {
	for {
		v, ok := s.order.pop()
		if !ok {
			return -1
		}
		if s.assigns[v] == lUndef && !s.isEliminated(v) {
			s.Decisions++
			return MkLit(v, s.polarity[v])
		}
	}
}

// computeLBD returns the literal block distance of lits: the number of
// distinct non-root decision levels among them. Must be called while the
// literals' levels are current (before backtracking past them).
func (s *Solver) computeLBD(lits []Lit) int32 {
	s.lbdStamp++
	var n int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if lv == 0 {
			continue
		}
		if s.lbdSeen[lv] != s.lbdStamp {
			s.lbdSeen[lv] = s.lbdStamp
			n++
		}
	}
	return n
}

// reduceDBLBD is the LBD-mode database reduction: glue clauses (LBD ≤ 2),
// binary clauses, and locked clauses are kept unconditionally; of the
// rest, the worse half — highest LBD first, lowest activity as tiebreak —
// is deleted. Deleted clauses are detached lazily by propagate.
func (s *Solver) reduceDBLBD() {
	var removable []*clause
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || c.lbd <= 2 || s.locked(c) {
			continue
		}
		removable = append(removable, c)
	}
	if len(removable) < 2 {
		return
	}
	sort.Slice(removable, func(i, j int) bool {
		if removable[i].lbd != removable[j].lbd {
			return removable[i].lbd > removable[j].lbd
		}
		return removable[i].act < removable[j].act
	})
	for _, c := range removable[:len(removable)/2] {
		c.deleted = true
		s.Removed++
		s.logDelete(c.lits)
	}
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if !c.deleted {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
	s.Reduces++
}

// maybeReduceLBD runs the periodic LBD reduction schedule; called at
// restart boundaries (decision level 0), mirroring Glucose: reduce every
// ReduceInterval conflicts, with the interval stretching by 300 per
// reduction so a long-lived incremental instance settles into a steady
// clause budget instead of thrashing.
func (s *Solver) maybeReduceLBD() {
	interval := s.ReduceInterval
	if interval <= 0 {
		interval = 2000
	}
	if s.nextReduce == 0 {
		s.nextReduce = interval
	}
	if s.Conflicts >= s.nextReduce {
		s.reduceDBLBD()
		s.nextReduce = s.Conflicts + interval + 300*s.Reduces
	}
}

// reduceDB removes half of the learnt clauses with lowest activity.
func (s *Solver) reduceDB() {
	if len(s.learnts) < 2 {
		return
	}
	// Partial selection: find median activity by sampling (simple full sort
	// avoided; use nth-element style two-pass threshold).
	sum := 0.0
	for _, c := range s.learnts {
		sum += c.act
	}
	threshold := sum / float64(len(s.learnts))
	kept := s.learnts[:0]
	for _, c := range s.learnts {
		if len(c.lits) > 2 && c.act < threshold && !s.locked(c) {
			c.deleted = true
			s.logDelete(c.lits)
		} else {
			kept = append(kept, c)
		}
	}
	s.learnts = kept
}

func (s *Solver) locked(c *clause) bool {
	l := c.lits[0]
	return s.reason[l.Var()] == c && s.valueLit(l) == lTrue
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (int64(1)<<k)-1 {
			return int64(1) << (k - 1)
		}
		if i < (int64(1)<<k)-1 {
			return luby(i - (int64(1) << (k - 1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if !s.ok {
		return Unsat
	}
	s.model = nil
	defer s.cancelUntil(0)
	for _, a := range assumptions {
		if s.isEliminated(a.Var()) {
			panic("sat: assumption on eliminated variable (Freeze it before Solve)")
		}
	}

	if s.SeedShuffle != 0 && !s.shuffled {
		s.shuffle()
	}
	if s.Inprocess && s.inprocessDue() {
		if !s.inprocess(true) {
			return Unsat
		}
	}
	if s.nextInproc == 0 {
		// No pass has run yet (instance below the size threshold, or
		// inprocessing just enabled): earn some conflicts before the
		// first restart-boundary pass instead of firing immediately.
		s.nextInproc = s.Conflicts + 4000
	}

	restartIdx := int64(1)
	conflictsAtStart := s.Conflicts
	// Like ConflictBudget, PropBudget bounds one Solve call, not the
	// instance lifetime: a long-lived incremental instance issuing many
	// cheap queries must not exhaust it cumulatively.
	propsAtStart := s.Propagations
	maxLearnts := float64(len(s.clauses))/3 + 100
	restartBase := s.RestartBase
	if restartBase <= 0 {
		restartBase = 100
	}

	for {
		budget := luby(restartIdx) * restartBase
		restartIdx++
		st := s.search(budget, assumptions, &maxLearnts)
		if st == Sat {
			s.model = make([]lbool, len(s.assigns))
			copy(s.model, s.assigns)
			s.reconstructModel()
			return Sat
		}
		if st == Unsat {
			return Unsat
		}
		// Restart or budget exhausted?
		if s.ConflictBudget > 0 && s.Conflicts-conflictsAtStart >= s.ConflictBudget {
			return Unknown
		}
		if s.PropBudget > 0 && s.Propagations-propsAtStart >= s.PropBudget {
			return Unknown
		}
		if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
			return Unknown
		}
		if s.Cancel.Stopped() {
			return Unknown
		}
		s.Restarts++
		s.cancelUntil(0)
		if s.LBD {
			s.maybeReduceLBD()
		}
		if s.Inprocess && s.Conflicts >= s.nextInproc && len(s.clauses) >= s.inprocMin() {
			if !s.inprocess(false) {
				return Unsat
			}
		}
	}
}

// search runs CDCL until a verdict, a restart budget expiry (returns
// Unknown), or conflict exhaustion.
func (s *Solver) search(conflBudget int64, assumptions []Lit, maxLearnts *float64) Status {
	var conflicts int64
	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflicts++
			// Poll the deadline and the cancellation token inside the
			// search, not only at restart boundaries: restart budgets grow
			// with the Luby sequence, so one long segment could otherwise
			// overrun the per-function budget without bound. Solve
			// re-checks both when we return Unknown and converts them into
			// the final verdict.
			if s.Conflicts&255 == 0 {
				if !s.Deadline.IsZero() && time.Now().After(s.Deadline) {
					return Unknown
				}
				if s.Cancel.Stopped() {
					return Unknown
				}
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.logLearnt(learnt)
			var lbd int32
			if s.LBD {
				// Levels are only valid before backtracking.
				lbd = s.computeLBD(learnt)
			}
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, lbd: lbd, logged: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.bumpClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			continue
		}
		if conflicts >= conflBudget {
			return Unknown
		}
		// LBD mode reduces at restart boundaries (see Solve); the in-search
		// activity-threshold policy is the legacy fallback.
		if !s.LBD && float64(len(s.learnts)) > *maxLearnts+float64(len(s.trail)) {
			s.reduceDB()
			*maxLearnts *= 1.1
		}
		// Establish pending assumptions one level at a time, propagating
		// each before the next (the outer loop runs propagate first).
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
			case lFalse:
				return Unsat
			default:
				s.trailLim = append(s.trailLim, int32(len(s.trail)))
				s.uncheckedEnqueue(a, nil)
			}
			continue
		}
		l := s.pickBranchLit()
		if l == -1 {
			return Sat
		}
		s.trailLim = append(s.trailLim, int32(len(s.trail)))
		s.uncheckedEnqueue(l, nil)
	}
}

// Value returns the model value of variable v after a Sat verdict: true,
// false. Calling it without a model panics.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: Value called without a model")
	}
	return s.model[v] == lTrue
}

// varHeap is a max-heap over variable activities.
type varHeap struct {
	act     *[]float64
	heap    []int
	indices []int // var -> heap position+1, 0 = absent
}

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i + 1
	h.indices[h.heap[j]] = j + 1
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, 0)
	}
	if h.indices[v] != 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap)
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() (int, bool) {
	if len(h.heap) == 0 {
		return 0, false
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.indices[h.heap[0]] = 1
	h.heap = h.heap[:last]
	h.indices[v] = 0
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v, true
}

func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] != 0 {
		h.up(h.indices[v] - 1)
	}
}
