package sat

// Proof-trace support: when Solver.Proof is non-nil the solver appends an
// in-memory DRAT-style trace of its run — every input clause as given to
// AddClause, every learnt clause produced by conflict analysis, and every
// clause deleted by database reduction. The trace is sufficient for an
// independent checker to re-derive each Unsat verdict by reverse unit
// propagation (RUP) alone, with no CDCL heuristics: each learnt clause C
// must be refutable by asserting ¬C and running unit propagation over the
// clauses live at the time C was learnt, and the per-query final clause
// (the empty clause, or the negated assumptions in incremental mode) must
// be RUP against the trace prefix at the verdict position.
//
// Logging is off by default (Proof == nil costs one predictable branch per
// event) and allocation-light: the trace is two append-only flat slices —
// a literal pool and fixed-size step headers indexing into it — so steady
// state logging performs no per-step allocations beyond amortized slice
// growth.

// Proof-step opcodes.
const (
	// OpInput records a clause added through AddClause, pre-normalization.
	OpInput = byte('i')
	// OpLearn records a clause learnt by conflict analysis. Learnt
	// clauses must be RUP with respect to the preceding live clause set.
	OpLearn = byte('l')
	// OpDelete records a learnt clause removed by database reduction.
	OpDelete = byte('d')
)

type proofStep struct {
	off int32
	n   int32
	op  byte
}

// ProofLog is an append-only in-memory DRAT-style trace. The zero value
// is an empty trace ready for use.
type ProofLog struct {
	steps []proofStep
	lits  []Lit
}

// Len returns the number of steps recorded so far. A step index below the
// current Len is a stable position marker: incremental users snapshot it
// at each verdict so per-query certificates can point into the shared
// session trace.
func (p *ProofLog) Len() int { return len(p.steps) }

// Step returns the opcode and literal slice of step i. The returned slice
// aliases the trace pool and must not be modified.
func (p *ProofLog) Step(i int) (op byte, lits []Lit) {
	st := p.steps[i]
	return st.op, p.lits[st.off : st.off+int32(st.n)]
}

// Bytes returns the approximate in-memory size of the trace, counting the
// literal pool and the step headers.
func (p *ProofLog) Bytes() int64 {
	return int64(len(p.lits))*4 + int64(len(p.steps))*9
}

func (p *ProofLog) append(op byte, lits []Lit) {
	off := int32(len(p.lits))
	p.lits = append(p.lits, lits...)
	p.steps = append(p.steps, proofStep{off: off, n: int32(len(lits)), op: op})
}

// logInput records an original clause when proof logging is enabled.
func (s *Solver) logInput(lits []Lit) {
	if s.Proof != nil {
		s.Proof.append(OpInput, lits)
	}
}

// logLearnt records a learnt clause when proof logging is enabled.
func (s *Solver) logLearnt(lits []Lit) {
	if s.Proof != nil {
		s.Proof.append(OpLearn, lits)
	}
}

// logDelete records a deleted learnt clause when proof logging is enabled.
func (s *Solver) logDelete(lits []Lit) {
	if s.Proof != nil {
		s.Proof.append(OpDelete, lits)
	}
}

// Okay reports whether the solver is still globally consistent: false once
// the input clauses alone (no assumptions) have been refuted at decision
// level 0. After an Unsat verdict, Okay distinguishes a global refutation
// (certificate: the empty clause is RUP) from an assumption failure
// (certificate: the negated-assumption clause is RUP).
func (s *Solver) Okay() bool { return s.ok }
