package sat

// Proof-trace support: when Solver.Proof is non-nil the solver appends an
// in-memory DRAT-style trace of its run — every input clause as given to
// AddClause, every learnt clause produced by conflict analysis, and every
// clause deleted by database reduction. The trace is sufficient for an
// independent checker to re-derive each Unsat verdict by reverse unit
// propagation (RUP) alone, with no CDCL heuristics: each learnt clause C
// must be refutable by asserting ¬C and running unit propagation over the
// clauses live at the time C was learnt, and the per-query final clause
// (the empty clause, or the negated assumptions in incremental mode) must
// be RUP against the trace prefix at the verdict position.
//
// Logging is off by default (Proof == nil costs one predictable branch per
// event) and allocation-light: the trace is two append-only flat slices —
// a literal pool and fixed-size step headers indexing into it — so steady
// state logging performs no per-step allocations beyond amortized slice
// growth.

// Proof-step opcodes.
const (
	// OpInput records a clause added through AddClause, pre-normalization.
	OpInput = byte('i')
	// OpLearn records a clause learnt by conflict analysis. Learnt
	// clauses must be RUP with respect to the preceding live clause set.
	OpLearn = byte('l')
	// OpDelete records a learnt clause removed by database reduction.
	OpDelete = byte('d')
)

type proofStep struct {
	off int32
	n   int32
	op  byte
}

// ProofLog is an append-only in-memory DRAT-style trace. The zero value
// is an empty trace ready for use. A streaming consumer that has durably
// flushed a prefix can reclaim its memory with Trim; step indices remain
// stable across trims (they count from the start of the full trace), so
// verdict position markers taken before a trim stay valid.
type ProofLog struct {
	steps []proofStep
	lits  []Lit

	base    int   // steps trimmed off the front
	litBase int32 // literal-pool offset of steps[0]
}

// Len returns the number of steps recorded so far, including trimmed
// ones. A step index below the current Len is a stable position marker:
// incremental users snapshot it at each verdict so per-query
// certificates can point into the shared session trace.
func (p *ProofLog) Len() int { return p.base + len(p.steps) }

// Base returns the index of the first step still held in memory; steps
// below Base have been trimmed and can no longer be read.
func (p *ProofLog) Base() int { return p.base }

// Step returns the opcode and literal slice of step i. The returned slice
// aliases the trace pool and must not be modified. Step panics for
// indices below Base (trimmed) or at/above Len.
func (p *ProofLog) Step(i int) (op byte, lits []Lit) {
	st := p.steps[i-p.base]
	off := st.off - p.litBase
	return st.op, p.lits[off : off+int32(st.n)]
}

// Trim discards steps [Base, upTo) from memory after the consumer has
// flushed them. Indices keep counting from the original start of the
// trace. Trimming beyond Len is clamped; trimming below Base is a no-op.
func (p *ProofLog) Trim(upTo int) {
	if upTo > p.Len() {
		upTo = p.Len()
	}
	if upTo <= p.base {
		return
	}
	k := upTo - p.base
	var newLitBase int32
	if k < len(p.steps) {
		newLitBase = p.steps[k].off
	} else {
		newLitBase = p.litBase + int32(len(p.lits))
	}
	nlits := copy(p.lits, p.lits[newLitBase-p.litBase:])
	p.lits = p.lits[:nlits]
	nsteps := copy(p.steps, p.steps[k:])
	p.steps = p.steps[:nsteps]
	p.base = upTo
	p.litBase = newLitBase
}

// Bytes returns the approximate in-memory size of the live trace,
// counting the literal pool and the step headers still held.
func (p *ProofLog) Bytes() int64 {
	return int64(len(p.lits))*4 + int64(len(p.steps))*9
}

func (p *ProofLog) append(op byte, lits []Lit) {
	off := p.litBase + int32(len(p.lits))
	p.lits = append(p.lits, lits...)
	p.steps = append(p.steps, proofStep{off: off, n: int32(len(lits)), op: op})
}

// logInput records an original clause when proof logging is enabled.
func (s *Solver) logInput(lits []Lit) {
	if s.Proof != nil {
		s.Proof.append(OpInput, lits)
	}
}

// logLearnt records a learnt clause when proof logging is enabled.
func (s *Solver) logLearnt(lits []Lit) {
	if s.Proof != nil {
		s.Proof.append(OpLearn, lits)
	}
}

// logDelete records a deleted learnt clause when proof logging is enabled.
func (s *Solver) logDelete(lits []Lit) {
	if s.Proof != nil {
		s.Proof.append(OpDelete, lits)
	}
}

// Okay reports whether the solver is still globally consistent: false once
// the input clauses alone (no assumptions) have been refuted at decision
// level 0. After an Unsat verdict, Okay distinguishes a global refutation
// (certificate: the empty clause is RUP) from an assumption failure
// (certificate: the negated-assumption clause is RUP).
func (s *Solver) Okay() bool { return s.ok }
