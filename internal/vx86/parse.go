package vx86

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

var vregPat = regexp.MustCompile(`^vr[0-9]+_(1|8|16|32|64)$`)

// Parse parses a Virtual x86 program in the textual form produced by
// Program.String (and by the isel package). Function labels start at a
// name without a leading dot; block labels start with a dot (".LBB0:").
// Lines starting with '#' or ';' are comments.
func Parse(src string) (*Program, error) {
	p := &Program{}
	var fn *Function
	var blk *Block
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.Contains(line, " ") {
			name := strings.TrimSuffix(line, ":")
			if strings.HasPrefix(name, ".") {
				if fn == nil {
					return nil, fmt.Errorf("vx86: line %d: block label outside function", lineNo+1)
				}
				blk = &Block{Name: name}
				fn.Blocks = append(fn.Blocks, blk)
			} else {
				fn = &Function{Name: name}
				p.Funcs = append(p.Funcs, fn)
				blk = nil
			}
			continue
		}
		if blk == nil {
			return nil, fmt.Errorf("vx86: line %d: instruction outside block", lineNo+1)
		}
		in, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("vx86: line %d: %w", lineNo+1, err)
		}
		blk.Instrs = append(blk.Instrs, in)
	}
	return p, nil
}

// ParseFunction parses a program containing exactly one function.
func ParseFunction(src string) (*Function, error) {
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(p.Funcs) != 1 {
		return nil, fmt.Errorf("vx86: expected 1 function, found %d", len(p.Funcs))
	}
	return p.Funcs[0], nil
}

func parseReg(tok string) (Reg, error) {
	if strings.HasPrefix(tok, "%") {
		body := tok[1:]
		if !vregPat.MatchString(body) {
			return Reg{}, fmt.Errorf("bad virtual register %q", tok)
		}
		us := strings.LastIndexByte(body, '_')
		w, _ := strconv.Atoi(body[us+1:])
		return Reg{Virtual: true, Name: body[:us], Width: uint8(w)}, nil
	}
	r, ok := PhysReg(tok)
	if !ok {
		return Reg{}, fmt.Errorf("unknown register %q", tok)
	}
	return r, nil
}

func parseOperand(tok string) (Operand, error) {
	if tok == "" {
		return Operand{}, fmt.Errorf("empty operand")
	}
	if tok[0] == '-' || tok[0] >= '0' && tok[0] <= '9' {
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(tok, 10, 64)
			if uerr != nil {
				return Operand{}, fmt.Errorf("bad immediate %q", tok)
			}
			v = int64(u)
		}
		return ImmOp(v), nil
	}
	r, err := parseReg(tok)
	if err != nil {
		return Operand{}, err
	}
	return RegOp(r), nil
}

// parseAddr parses "[base]", "[base+off]", "[@sym+off]", "[%fn.slot+off]".
func parseAddr(tok string) (*Addr, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return nil, fmt.Errorf("bad address %q", tok)
	}
	body := tok[1 : len(tok)-1]
	off := int64(0)
	// Find a +/- that splits base and offset (not the leading char).
	for i := 1; i < len(body); i++ {
		if body[i] == '+' || body[i] == '-' {
			v, err := strconv.ParseInt(body[i:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad address offset in %q", tok)
			}
			off = v
			body = body[:i]
			break
		}
	}
	if strings.HasPrefix(body, "@") {
		return &Addr{Sym: body, Off: off}, nil
	}
	if strings.HasPrefix(body, "%") && !vregPat.MatchString(body[1:]) {
		// Frame slot symbol (e.g. %f.slot).
		return &Addr{Sym: body, Off: off}, nil
	}
	r, err := parseReg(body)
	if err != nil {
		return nil, err
	}
	return &Addr{Base: &r, Off: off}, nil
}

// tokenize splits an instruction line on spaces and commas, keeping
// bracketed address operands intact.
func tokenize(line string) []string {
	var out []string
	cur := strings.Builder{}
	depth := 0
	flush := func() {
		if cur.Len() > 0 {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	for _, r := range line {
		switch {
		case r == '[':
			depth++
			cur.WriteRune(r)
		case r == ']':
			depth--
			cur.WriteRune(r)
		case (r == ' ' || r == '\t' || r == ',') && depth == 0:
			flush()
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return out
}

var textOp = map[string]Op{
	"copy": OpCopy, "mov": OpMov, "lea": OpLea, "phi": OpPhi,
	"add": OpAdd, "sub": OpSub, "imul": OpIMul, "and": OpAnd, "or": OpOr,
	"xor": OpXor, "shl": OpShl, "shr": OpShr, "sar": OpSar, "inc": OpInc,
	"dec": OpDec, "neg": OpNeg, "not": OpNot, "udiv": OpUDiv, "urem": OpURem,
	"idiv": OpIDiv, "irem": OpIRem,
	"movzx": OpMovzx, "movsx": OpMovsx, "trunc": OpTruncR,
	"cmp": OpCmp, "test": OpTest, "jmp": OpJmp, "call": OpCall, "ret": OpRet,
	"spill": OpSpill, "reload": OpReload,
}

func parseInstr(line string) (*Instr, error) {
	toks := tokenize(line)
	if len(toks) == 0 {
		return nil, fmt.Errorf("empty instruction")
	}

	in := &Instr{}
	// Destination form: "<reg> = op ..."
	if len(toks) >= 2 && toks[1] == "=" {
		dst, err := parseReg(toks[0])
		if err != nil {
			return nil, err
		}
		in.Dst = dst
		in.HasDst = true
		toks = toks[2:]
		if len(toks) == 0 {
			return nil, fmt.Errorf("missing opcode after '='")
		}
	}
	mn := toks[0]
	args := toks[1:]

	// Sized load/store: loadN / storeN.
	if strings.HasPrefix(mn, "load") && len(mn) > 4 {
		n, err := strconv.Atoi(mn[4:])
		if err != nil || !validSize(n) {
			return nil, fmt.Errorf("bad load size in %q", mn)
		}
		if !in.HasDst || len(args) != 1 {
			return nil, fmt.Errorf("load needs a destination and one address")
		}
		a, err := parseAddr(args[0])
		if err != nil {
			return nil, err
		}
		in.Op, in.Size, in.Addr = OpLoad, n, a
		return in, checkWidth(in.Dst, 8*n)
	}
	if strings.HasPrefix(mn, "store") && len(mn) > 5 {
		n, err := strconv.Atoi(mn[5:])
		if err != nil || !validSize(n) {
			return nil, fmt.Errorf("bad store size in %q", mn)
		}
		if in.HasDst || len(args) != 2 {
			return nil, fmt.Errorf("store takes an address and a source")
		}
		a, err := parseAddr(args[0])
		if err != nil {
			return nil, err
		}
		src, err := parseOperand(args[1])
		if err != nil {
			return nil, err
		}
		in.Op, in.Size, in.Addr, in.Srcs = OpStore, n, a, []Operand{src}
		return in, nil
	}
	// setcc / jcc.
	if strings.HasPrefix(mn, "set") && len(mn) > 3 {
		cc := CC(mn[3:])
		if !allCCs[cc] {
			return nil, fmt.Errorf("unknown condition %q", mn)
		}
		if !in.HasDst || len(args) != 0 {
			return nil, fmt.Errorf("set%s takes no operands and needs a destination", cc)
		}
		in.Op, in.CC = OpSetcc, cc
		return in, nil
	}
	if strings.HasPrefix(mn, "j") && mn != "jmp" {
		cc := CC(mn[1:])
		if !allCCs[cc] {
			return nil, fmt.Errorf("unknown jump %q", mn)
		}
		if len(args) != 1 {
			return nil, fmt.Errorf("j%s takes one label", cc)
		}
		in.Op, in.CC, in.Label = OpJcc, cc, args[0]
		return in, nil
	}

	op, ok := textOp[mn]
	if !ok {
		return nil, fmt.Errorf("unknown opcode %q", mn)
	}
	in.Op = op
	switch op {
	case OpCopy, OpMovzx, OpMovsx, OpTruncR, OpInc, OpDec, OpNeg, OpNot:
		if !in.HasDst || len(args) != 1 {
			return nil, fmt.Errorf("%s takes one source and needs a destination", mn)
		}
		src, err := parseOperand(args[0])
		if err != nil {
			return nil, err
		}
		in.Srcs = []Operand{src}
	case OpMov:
		if !in.HasDst || len(args) != 1 {
			return nil, fmt.Errorf("mov takes one immediate")
		}
		src, err := parseOperand(args[0])
		if err != nil {
			return nil, err
		}
		if src.Kind != OImm {
			return nil, fmt.Errorf("mov source must be an immediate (use copy for registers)")
		}
		in.Srcs = []Operand{src}
	case OpLea:
		if !in.HasDst || len(args) != 1 {
			return nil, fmt.Errorf("lea takes one address")
		}
		a, err := parseAddr(args[0])
		if err != nil {
			return nil, err
		}
		in.Addr = a
		if in.Dst.Width != 64 {
			return nil, fmt.Errorf("lea destination must be 64-bit")
		}
	case OpPhi:
		if !in.HasDst || len(args) == 0 || len(args)%2 != 0 {
			return nil, fmt.Errorf("phi takes value,label pairs")
		}
		for i := 0; i < len(args); i += 2 {
			v, err := parseOperand(args[i])
			if err != nil {
				return nil, err
			}
			in.Phi = append(in.Phi, PhiIn{Val: v, Pred: args[i+1]})
		}
	case OpAdd, OpSub, OpIMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpUDiv, OpURem, OpIDiv, OpIRem:
		if !in.HasDst || len(args) != 2 {
			return nil, fmt.Errorf("%s takes two sources and needs a destination", mn)
		}
		a, err := parseOperand(args[0])
		if err != nil {
			return nil, err
		}
		b, err := parseOperand(args[1])
		if err != nil {
			return nil, err
		}
		in.Srcs = []Operand{a, b}
	case OpCmp, OpTest:
		if in.HasDst || len(args) != 2 {
			return nil, fmt.Errorf("%s takes two sources and no destination", mn)
		}
		a, err := parseOperand(args[0])
		if err != nil {
			return nil, err
		}
		b, err := parseOperand(args[1])
		if err != nil {
			return nil, err
		}
		in.Srcs = []Operand{a, b}
	case OpSpill:
		if in.HasDst || len(args) != 2 || !strings.HasPrefix(args[0], "!") {
			return nil, fmt.Errorf("spill takes !slot and a register source")
		}
		src, err := parseOperand(args[1])
		if err != nil {
			return nil, err
		}
		if src.Kind != OReg {
			return nil, fmt.Errorf("spill source must be a register")
		}
		in.Slot = args[0][1:]
		in.Srcs = []Operand{src}
	case OpReload:
		if !in.HasDst || len(args) != 1 || !strings.HasPrefix(args[0], "!") {
			return nil, fmt.Errorf("reload takes a destination and !slot")
		}
		in.Slot = args[0][1:]
	case OpJmp:
		if len(args) != 1 {
			return nil, fmt.Errorf("jmp takes one label")
		}
		in.Label = args[0]
	case OpCall:
		if len(args) != 1 || !strings.HasPrefix(args[0], "@") {
			return nil, fmt.Errorf("call takes one @function")
		}
		in.Callee = args[0][1:]
	case OpRet:
		if len(args) != 0 {
			return nil, fmt.Errorf("ret takes no operands")
		}
	}
	return in, nil
}

func validSize(n int) bool { return n == 1 || n == 2 || n == 4 || n == 8 }

func checkWidth(r Reg, bits int) error {
	if int(r.Width) != bits {
		return fmt.Errorf("register %s width %d does not match access width %d", r, r.Width, bits)
	}
	return nil
}
