package vx86

import (
	"errors"
	"fmt"

	"repro/internal/mem"
)

// ArgRegs lists the integer argument registers of the modeled calling
// convention (System V order), as 64-bit base names.
var ArgRegs = []string{"rdi", "rsi", "rdx", "rcx", "r8", "r9"}

// UBError reports undefined behavior (same taxonomy as internal/llvmir).
type UBError struct {
	Kind   string
	Detail string
}

func (e *UBError) Error() string {
	return fmt.Sprintf("vx86: undefined behavior (%s): %s", e.Kind, e.Detail)
}

// flags is the concrete eflags subset.
type flags struct{ zf, sf, cf, of bool }

// Interp is a concrete Virtual x86 interpreter over the common memory
// model. Physical registers are shared across calls; virtual registers are
// per-activation (Machine IR semantics before register allocation).
type Interp struct {
	Prog   *Program
	Mem    *mem.Concrete
	Layout *mem.Layout
	// Phys holds the 64-bit base registers.
	Phys map[string]uint64
	// MaxSteps bounds total executed instructions (0 = 1<<20).
	MaxSteps int
	// Externals supplies behavior for functions not in Prog: the handler
	// reads argument registers from the interpreter and returns the value
	// to place in rax.
	Externals map[string]func(in *Interp) uint64

	flags flags
	steps int
}

// NewInterp builds an interpreter over an existing layout/memory pair
// (shared with the LLVM side in differential tests).
func NewInterp(p *Program, layout *mem.Layout, m *mem.Concrete) *Interp {
	return &Interp{Prog: p, Mem: m, Layout: layout, Phys: make(map[string]uint64), MaxSteps: 1 << 20}
}

// SetReg writes a register view (for test setup).
func (in *Interp) SetReg(name string, v uint64) error {
	r, ok := PhysReg(name)
	if !ok {
		return fmt.Errorf("vx86: unknown register %q", name)
	}
	in.writePhys(r, v)
	return nil
}

// GetReg reads a register view.
func (in *Interp) GetReg(name string) (uint64, error) {
	r, ok := PhysReg(name)
	if !ok {
		return 0, fmt.Errorf("vx86: unknown register %q", name)
	}
	return in.readPhys(r), nil
}

func maskW(v uint64, w uint8) uint64 {
	if w >= 64 {
		return v
	}
	return v & ((1 << w) - 1)
}

func (in *Interp) readPhys(r Reg) uint64 { return maskW(in.Phys[r.Name], r.Width) }

func (in *Interp) writePhys(r Reg, v uint64) {
	switch r.Width {
	case 64:
		in.Phys[r.Name] = v
	case 32:
		in.Phys[r.Name] = maskW(v, 32) // 32-bit writes zero the upper half
	default:
		old := in.Phys[r.Name]
		m := uint64(1)<<r.Width - 1
		in.Phys[r.Name] = old&^m | v&m
	}
}

// Call runs the named function and returns the rax value afterwards.
// Arguments must already be in the argument registers (use CallWithArgs
// for convenience).
func (in *Interp) Call(name string) (uint64, error) {
	f := in.Prog.Func(name)
	if f == nil {
		if ext, ok := in.Externals[name]; ok {
			in.Phys["rax"] = ext(in)
			return in.Phys["rax"], nil
		}
		return 0, fmt.Errorf("vx86: call to unavailable function %q", name)
	}
	virt := make(map[string]uint64)
	frame := make(map[string]uint64)
	if err := in.run(f, virt, frame); err != nil {
		return 0, err
	}
	return in.Phys["rax"], nil
}

// CallWithArgs places 32- or 64-bit args in the argument registers and
// calls the function. widths[i] gives each argument's bit width.
func (in *Interp) CallWithArgs(name string, args []uint64, widths []uint8) (uint64, error) {
	if len(args) > len(ArgRegs) {
		return 0, fmt.Errorf("vx86: too many arguments (%d)", len(args))
	}
	for i, a := range args {
		w := uint8(64)
		if i < len(widths) {
			w = widths[i]
		}
		if w == 1 {
			w = 8
		}
		in.writePhys(Reg{Name: ArgRegs[i], Width: w}, a)
	}
	return in.Call(name)
}

func (in *Interp) run(f *Function, virt, frame map[string]uint64) error {
	blk := f.Entry()
	prev := ""
	idx := 0
	for {
		if in.steps++; in.steps > in.maxSteps() {
			return errors.New("vx86: step budget exhausted")
		}
		if idx >= len(blk.Instrs) {
			return fmt.Errorf("vx86: fell off block %s", blk.Name)
		}
		ins := blk.Instrs[idx]

		if ins.Op == OpPhi {
			updates := make(map[string]uint64)
			for idx < len(blk.Instrs) && blk.Instrs[idx].Op == OpPhi {
				phi := blk.Instrs[idx]
				found := false
				for _, inc := range phi.Phi {
					if inc.Pred == prev {
						v, err := in.operand(virt, inc.Val)
						if err != nil {
							return err
						}
						updates[phi.Dst.Name] = maskW(v, phi.Dst.Width)
						found = true
						break
					}
				}
				if !found {
					return fmt.Errorf("vx86: phi %s has no incoming for %s", phi.Dst, prev)
				}
				idx++
			}
			for k, v := range updates {
				virt[k] = v
			}
			continue
		}

		switch ins.Op {
		case OpJmp:
			prev, blk, idx = blk.Name, f.BlockByName(ins.Label), 0
			if blk == nil {
				return fmt.Errorf("vx86: jmp to unknown block %s", ins.Label)
			}
			continue
		case OpJcc:
			if in.cond(ins.CC) {
				prev, blk, idx = blk.Name, f.BlockByName(ins.Label), 0
				if blk == nil {
					return fmt.Errorf("vx86: j%s to unknown block %s", ins.CC, ins.Label)
				}
			} else {
				idx++
			}
			continue
		case OpRet:
			return nil
		case OpCall:
			if _, err := in.Call(ins.Callee); err != nil {
				return err
			}
			idx++
			continue
		}

		if err := in.exec(virt, frame, ins); err != nil {
			return err
		}
		idx++
	}
}

func (in *Interp) maxSteps() int {
	if in.MaxSteps == 0 {
		return 1 << 20
	}
	return in.MaxSteps
}

func (in *Interp) operand(virt map[string]uint64, o Operand) (uint64, error) {
	switch o.Kind {
	case OImm:
		return uint64(o.Imm), nil
	case OReg:
		return in.regRead(virt, o.Reg), nil
	}
	return 0, fmt.Errorf("vx86: bad operand")
}

func (in *Interp) regRead(virt map[string]uint64, r Reg) uint64 {
	if r.Virtual {
		return maskW(virt[r.Name], r.Width)
	}
	return in.readPhys(r)
}

func (in *Interp) regWrite(virt map[string]uint64, r Reg, v uint64) {
	if r.Virtual {
		virt[r.Name] = maskW(v, r.Width)
		return
	}
	in.writePhys(r, v)
}

func (in *Interp) addr(virt map[string]uint64, a *Addr) (uint64, error) {
	if a.Base != nil {
		return in.regRead(virt, *a.Base) + uint64(a.Off), nil
	}
	o, ok := in.Layout.Find(a.Sym)
	if !ok {
		return 0, fmt.Errorf("vx86: unknown symbol %q", a.Sym)
	}
	return o.Base + uint64(a.Off), nil
}

func sextW(v uint64, w uint8) int64 {
	if w >= 64 {
		return int64(v)
	}
	if v&(1<<(w-1)) != 0 {
		return int64(v | ^uint64(0)<<w)
	}
	return int64(v)
}

func signBitW(v uint64, w uint8) bool { return maskW(v, w)>>(w-1)&1 == 1 }

func (in *Interp) setArith(a, b, r uint64, w uint8, sub bool) {
	in.flags.zf = maskW(r, w) == 0
	in.flags.sf = signBitW(r, w)
	sa, sb, sr := signBitW(a, w), signBitW(b, w), signBitW(r, w)
	if sub {
		in.flags.cf = maskW(a, w) < maskW(b, w)
		in.flags.of = sa != sb && sr != sa
	} else {
		in.flags.cf = maskW(r, w) < maskW(a, w)
		in.flags.of = sa == sb && sr != sa
	}
}

func (in *Interp) setLogic(r uint64, w uint8) {
	in.flags.zf = maskW(r, w) == 0
	in.flags.sf = maskW(r, w)>>(w-1)&1 == 1
	in.flags.cf = false
	in.flags.of = false
}

func (in *Interp) cond(cc CC) bool {
	f := in.flags
	switch cc {
	case CCE:
		return f.zf
	case CCNE:
		return !f.zf
	case CCB:
		return f.cf
	case CCAE:
		return !f.cf
	case CCBE:
		return f.cf || f.zf
	case CCA:
		return !(f.cf || f.zf)
	case CCL:
		return f.sf != f.of
	case CCGE:
		return f.sf == f.of
	case CCLE:
		return f.zf || f.sf != f.of
	case CCG:
		return !f.zf && f.sf == f.of
	case CCS:
		return f.sf
	case CCNS:
		return !f.sf
	}
	return false
}

func (in *Interp) exec(virt, frame map[string]uint64, ins *Instr) error {
	get := func(i int) (uint64, error) { return in.operand(virt, ins.Srcs[i]) }
	switch ins.Op {
	case OpCopy:
		v, err := get(0)
		if err != nil {
			return err
		}
		in.regWrite(virt, ins.Dst, v)
	case OpMov:
		in.regWrite(virt, ins.Dst, uint64(ins.Srcs[0].Imm))
	case OpLea:
		a, err := in.addr(virt, ins.Addr)
		if err != nil {
			return err
		}
		in.regWrite(virt, ins.Dst, a)
	case OpMovzx:
		v, err := get(0)
		if err != nil {
			return err
		}
		in.regWrite(virt, ins.Dst, maskW(v, ins.Srcs[0].Reg.Width))
	case OpMovsx:
		v, err := get(0)
		if err != nil {
			return err
		}
		in.regWrite(virt, ins.Dst, uint64(sextW(v, ins.Srcs[0].Reg.Width)))
	case OpTruncR:
		v, err := get(0)
		if err != nil {
			return err
		}
		in.regWrite(virt, ins.Dst, maskW(v, ins.Dst.Width))
	case OpAdd, OpSub, OpIMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpUDiv, OpURem, OpIDiv, OpIRem:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		w := ins.Dst.Width
		var r uint64
		switch ins.Op {
		case OpAdd:
			r = a + b
			in.setArith(a, b, r, w, false)
		case OpSub:
			r = a - b
			in.setArith(a, b, r, w, true)
		case OpIMul:
			r = a * b
			in.setLogic(r, w) // CF/OF modeled as cleared; ISel never branches on them
		case OpAnd:
			r = a & b
			in.setLogic(r, w)
		case OpOr:
			r = a | b
			in.setLogic(r, w)
		case OpXor:
			r = a ^ b
			in.setLogic(r, w)
		case OpShl:
			if b >= uint64(w) {
				r = 0
			} else {
				r = a << b
			}
			in.setLogic(r, w)
		case OpShr:
			if b >= uint64(w) {
				r = 0
			} else {
				r = maskW(a, w) >> b
			}
			in.setLogic(r, w)
		case OpSar:
			sh := b
			if sh >= uint64(w) {
				sh = uint64(w) - 1
			}
			r = uint64(sextW(a, w) >> sh)
			in.setLogic(r, w)
		case OpUDiv:
			if maskW(b, w) == 0 {
				return &UBError{Kind: "divzero", Detail: ins.String()}
			}
			r = maskW(a, w) / maskW(b, w)
		case OpURem:
			if maskW(b, w) == 0 {
				return &UBError{Kind: "divzero", Detail: ins.String()}
			}
			r = maskW(a, w) % maskW(b, w)
		case OpIDiv, OpIRem:
			if maskW(b, w) == 0 {
				return &UBError{Kind: "divzero", Detail: ins.String()}
			}
			sa, sb := sextW(a, w), sextW(b, w)
			if sa == -(int64(1)<<(w-1)) && sb == -1 {
				return &UBError{Kind: "overflow", Detail: ins.String()}
			}
			if ins.Op == OpIDiv {
				r = uint64(sa / sb)
			} else {
				r = uint64(sa % sb)
			}
		}
		in.regWrite(virt, ins.Dst, r)
	case OpInc, OpDec:
		a, err := get(0)
		if err != nil {
			return err
		}
		w := ins.Dst.Width
		var r uint64
		savedCF := in.flags.cf
		if ins.Op == OpInc {
			r = a + 1
			in.setArith(a, 1, r, w, false)
		} else {
			r = a - 1
			in.setArith(a, 1, r, w, true)
		}
		in.flags.cf = savedCF // inc/dec preserve CF
		in.regWrite(virt, ins.Dst, r)
	case OpNeg:
		a, err := get(0)
		if err != nil {
			return err
		}
		w := ins.Dst.Width
		r := -a
		in.setArith(0, a, r, w, true)
		in.flags.cf = maskW(a, w) != 0
		in.regWrite(virt, ins.Dst, r)
	case OpNot:
		a, err := get(0)
		if err != nil {
			return err
		}
		in.regWrite(virt, ins.Dst, ^a)
	case OpCmp:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		in.setArith(a, b, a-b, cmpWidth(ins), true)
	case OpTest:
		a, err := get(0)
		if err != nil {
			return err
		}
		b, err := get(1)
		if err != nil {
			return err
		}
		in.setLogic(a&b, cmpWidth(ins))
	case OpSetcc:
		v := uint64(0)
		if in.cond(ins.CC) {
			v = 1
		}
		in.regWrite(virt, ins.Dst, v)
	case OpSpill:
		v, err := get(0)
		if err != nil {
			return err
		}
		frame[ins.Slot] = v
	case OpReload:
		in.regWrite(virt, ins.Dst, frame[ins.Slot])
	case OpLoad:
		a, err := in.addr(virt, ins.Addr)
		if err != nil {
			return err
		}
		v, err := in.Mem.Load(a, ins.Size)
		if err != nil {
			var oob *mem.ErrOOB
			if errors.As(err, &oob) {
				return &UBError{Kind: "oob", Detail: err.Error()}
			}
			return err
		}
		in.regWrite(virt, ins.Dst, v)
	case OpStore:
		a, err := in.addr(virt, ins.Addr)
		if err != nil {
			return err
		}
		v, err := get(0)
		if err != nil {
			return err
		}
		if err := in.Mem.Store(a, ins.Size, maskW(v, uint8(8*ins.Size))); err != nil {
			var oob *mem.ErrOOB
			if errors.As(err, &oob) {
				return &UBError{Kind: "oob", Detail: err.Error()}
			}
			return err
		}
	default:
		return fmt.Errorf("vx86: exec of unsupported op %q", opText[ins.Op])
	}
	return nil
}

// cmpWidth infers the comparison width from the first register operand
// (immediates adopt the register's width).
func cmpWidth(ins *Instr) uint8 {
	for _, s := range ins.Srcs {
		if s.Kind == OReg {
			return s.Reg.Width
		}
	}
	return 64
}
