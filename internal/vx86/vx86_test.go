package vx86

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/smt"
)

// fig2b is the paper's Figure 2(b) — the ISel output for arithm_seq_sum —
// in this package's textual syntax.
const fig2b = `
arithm_seq_sum:
.LBB0:
  %vr8_32 = copy edx
  %vr7_32 = copy esi
  %vr6_32 = copy edi
  %vr9_32 = mov 1
  jmp .LBB1
.LBB1:
  %vr0_32 = phi %vr6_32, .LBB0, %vr4_32, .LBB3
  %vr1_32 = phi %vr6_32, .LBB0, %vr3_32, .LBB3
  %vr2_32 = phi %vr9_32, .LBB0, %vr5_32, .LBB3
  %vr10_32 = sub %vr2_32, %vr8_32
  jae .LBB4
  jmp .LBB2
.LBB2:
  %vr3_32 = add %vr1_32, %vr7_32
  %vr4_32 = add %vr0_32, %vr3_32
  jmp .LBB3
.LBB3:
  %vr5_32 = inc %vr2_32
  jmp .LBB1
.LBB4:
  eax = copy %vr0_32
  ret
`

func parseOne(t *testing.T, src string) *Function {
	t.Helper()
	f, err := ParseFunction(src)
	if err != nil {
		t.Fatalf("ParseFunction: %v", err)
	}
	return f
}

func TestParseFig2b(t *testing.T) {
	f := parseOne(t, fig2b)
	if f.Name != "arithm_seq_sum" || len(f.Blocks) != 5 {
		t.Fatalf("parsed %q with %d blocks", f.Name, len(f.Blocks))
	}
	b1 := f.BlockByName(".LBB1")
	if b1 == nil || b1.Instrs[0].Op != OpPhi || len(b1.Instrs[0].Phi) != 2 {
		t.Fatalf(".LBB1 phi malformed")
	}
	if b1.Instrs[3].Op != OpSub || b1.Instrs[4].Op != OpJcc || b1.Instrs[4].CC != CCAE {
		t.Fatalf(".LBB1 tail: %v %v", b1.Instrs[3], b1.Instrs[4])
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := parseOne(t, fig2b)
	p := &Program{Funcs: []*Function{f}}
	f2 := parseOne(t, p.String())
	p2 := &Program{Funcs: []*Function{f2}}
	if p.String() != p2.String() {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", p, p2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"f:\n.B0:\n  %vr0_32 = frob 1\n",
		"f:\n.B0:\n  %vr0_32 = mov %vr1_32\n", // mov wants an immediate
		"f:\n.B0:\n  %vr0_99 = copy edi\n",    // bad width
		"f:\n.B0:\n  jxx .B0\n",
		"f:\n.B0:\n  %vr0_32 = load8 [@g]\n", // width mismatch 32 vs 64
		"  %vr0_32 = copy edi\n",             // instruction outside block
		"f:\n.B0:\n  store4 [@g]\n",          // store missing source
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestPhysRegViews(t *testing.T) {
	r, ok := PhysReg("eax")
	if !ok || r.Name != "rax" || r.Width != 32 {
		t.Fatalf("eax = %+v", r)
	}
	if got := PhysName("rax", 8); got != "al" {
		t.Errorf("PhysName(rax,8) = %q", got)
	}
	if _, ok := PhysReg("xmm0"); ok {
		t.Errorf("xmm0 resolved")
	}
}

func newInterp(t *testing.T, src string) *Interp {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	layout := mem.NewLayout()
	return NewInterp(p, layout, mem.NewConcrete(layout))
}

func TestInterpFig2b(t *testing.T) {
	in := newInterp(t, fig2b)
	for _, tc := range []struct{ a0, d, n, want uint64 }{
		{1, 1, 5, 15},
		{2, 3, 4, 26},
		{5, 0, 3, 15},
		{7, 2, 1, 7},
		{7, 2, 0, 7}, // loop body never runs but first term still returned
	} {
		got, err := in.CallWithArgs("arithm_seq_sum",
			[]uint64{tc.a0, tc.d, tc.n}, []uint8{32, 32, 32})
		if err != nil {
			t.Fatal(err)
		}
		if maskW(got, 32) != tc.want {
			t.Errorf("arithm_seq_sum(%d,%d,%d) = %d, want %d", tc.a0, tc.d, tc.n, got, tc.want)
		}
	}
}

func TestInterpSubregisterWrites(t *testing.T) {
	in := newInterp(t, "f:\n.B0:\n  ret\n")
	in.SetReg("rax", 0xFFFFFFFFFFFFFFFF)
	in.SetReg("eax", 0x12345678) // 32-bit write zeroes upper half
	if got := in.Phys["rax"]; got != 0x12345678 {
		t.Errorf("rax after eax write = %#x", got)
	}
	in.SetReg("rax", 0xFFFFFFFFFFFFFFFF)
	in.SetReg("ax", 0x1234) // 16-bit write merges
	if got := in.Phys["rax"]; got != 0xFFFFFFFFFFFF1234 {
		t.Errorf("rax after ax write = %#x", got)
	}
	in.SetReg("al", 0x99)
	if got := in.Phys["rax"]; got != 0xFFFFFFFFFFFF1299 {
		t.Errorf("rax after al write = %#x", got)
	}
}

func TestInterpMemoryAndLea(t *testing.T) {
	src := `
f:
.B0:
  %vr0_64 = lea [@g+4]
  %vr1_32 = mov 305419896
  store4 [%vr0_64], %vr1_32
  %vr2_32 = load4 [@g+4]
  eax = copy %vr2_32
  ret
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	layout := mem.NewLayout()
	layout.Alloc("@g", 16)
	in := NewInterp(p, layout, mem.NewConcrete(layout))
	got, err := in.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if maskW(got, 32) != 305419896 {
		t.Errorf("f() = %d", got)
	}
}

func TestInterpOOB(t *testing.T) {
	src := `
f:
.B0:
  %vr0_64 = load8 [@a+4]
  ret
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	layout := mem.NewLayout()
	layout.Alloc("@a", 6) // the scaled load-narrowing shape: 8 bytes at +4 overruns
	in := NewInterp(p, layout, mem.NewConcrete(layout))
	_, err = in.Call("f")
	ub, ok := err.(*UBError)
	if !ok || ub.Kind != "oob" {
		t.Fatalf("err = %v, want oob UBError", err)
	}
}

func TestInterpConditionCodes(t *testing.T) {
	// For each cc, build a function that compares edi, esi and returns 1
	// if the jump is taken.
	ccSem := map[CC]func(a, b uint32) bool{
		CCE:  func(a, b uint32) bool { return a == b },
		CCNE: func(a, b uint32) bool { return a != b },
		CCB:  func(a, b uint32) bool { return a < b },
		CCAE: func(a, b uint32) bool { return a >= b },
		CCBE: func(a, b uint32) bool { return a <= b },
		CCA:  func(a, b uint32) bool { return a > b },
		CCL:  func(a, b uint32) bool { return int32(a) < int32(b) },
		CCGE: func(a, b uint32) bool { return int32(a) >= int32(b) },
		CCLE: func(a, b uint32) bool { return int32(a) <= int32(b) },
		CCG:  func(a, b uint32) bool { return int32(a) > int32(b) },
	}
	for cc, want := range ccSem {
		src := `
f:
.B0:
  cmp edi, esi
  j` + string(cc) + ` .B1
  jmp .B2
.B1:
  eax = mov 1
  ret
.B2:
  eax = mov 0
  ret
`
		in := newInterp(t, src)
		f := func(a, b uint32) bool {
			got, err := in.CallWithArgs("f", []uint64{uint64(a), uint64(b)}, []uint8{32, 32})
			if err != nil {
				return false
			}
			return (maskW(got, 32) == 1) == want(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("cc %s: %v", cc, err)
		}
	}
}

func TestInterpIncPreservesCF(t *testing.T) {
	src := `
f:
.B0:
  cmp edi, esi
  %vr0_32 = inc edx
  jb .B1
  jmp .B2
.B1:
  eax = mov 1
  ret
.B2:
  eax = mov 0
  ret
`
	in := newInterp(t, src)
	got, err := in.CallWithArgs("f", []uint64{1, 2, 7}, []uint8{32, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if maskW(got, 32) != 1 {
		t.Errorf("CF not preserved across inc: got %d", got)
	}
}

// --- Symbolic vs concrete differential test ---

func symTerminals(t *testing.T, f *Function, layout *mem.Layout, ctx *smt.Context,
	presets map[string]*smt.Term) []*state {
	t.Helper()
	sem := NewSem(ctx, f, layout)
	s0, err := sem.Instantiate("entry", presets, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []*state
	work := []core.State{s0}
	steps := 0
	for len(work) > 0 {
		cur := work[len(work)-1].(*state)
		work = work[:len(work)-1]
		if cur.final || cur.errKind != "" {
			out = append(out, cur)
			continue
		}
		if steps++; steps > 10000 {
			t.Fatalf("symbolic execution did not terminate")
		}
		succs, err := sem.Step(cur)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		for _, n := range succs {
			if !n.PathCond().IsFalse() {
				work = append(work, n)
			}
		}
	}
	return out
}

func TestSymbolicMatchesInterp(t *testing.T) {
	src := `
f:
.B0:
  %vr0_32 = copy edi
  %vr1_32 = copy esi
  cmp %vr0_32, %vr1_32
  jl .B1
  jmp .B2
.B1:
  %vr2_32 = sub %vr1_32, %vr0_32
  %vr3_32 = shl %vr2_32, 2
  eax = copy %vr3_32
  ret
.B2:
  %vr4_32 = xor %vr0_32, %vr1_32
  %vr5_32 = or %vr4_32, 257
  eax = copy %vr5_32
  ret
`
	f := parseOne(t, src)
	ctx := smt.NewContext()
	layout := mem.NewLayout()
	presets := map[string]*smt.Term{
		"edi": ctx.VarBV("a", 32),
		"esi": ctx.VarBV("b", 32),
	}
	terminals := symTerminals(t, f, layout, ctx, presets)
	if len(terminals) != 2 {
		t.Fatalf("%d terminals, want 2", len(terminals))
	}
	check := func(a, b uint32) bool {
		p := &Program{Funcs: []*Function{f}}
		l2 := mem.NewLayout()
		in := NewInterp(p, l2, mem.NewConcrete(l2))
		want, err := in.CallWithArgs("f", []uint64{uint64(a), uint64(b)}, []uint8{32, 32})
		if err != nil {
			return false
		}
		assign := smt.NewAssign()
		assign.BV["a"] = uint64(a)
		assign.BV["b"] = uint64(b)
		var hits int
		var got uint64
		for _, s := range terminals {
			ok, err := assign.EvalBool(s.pc)
			if err != nil {
				t.Fatalf("eval pc: %v", err)
			}
			if !ok {
				continue
			}
			hits++
			eax, err := s.Observable("eax")
			if err != nil {
				t.Fatal(err)
			}
			got, err = assign.EvalBV(eax)
			if err != nil {
				t.Fatal(err)
			}
		}
		return hits == 1 && got == maskW(want, 32)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicFig2bBoundedLoop(t *testing.T) {
	f := parseOne(t, fig2b)
	ctx := smt.NewContext()
	layout := mem.NewLayout()
	presets := map[string]*smt.Term{
		"edi": ctx.VarBV("a0", 32),
		"esi": ctx.VarBV("d", 32),
		"edx": ctx.BV(3, 32), // concrete n: loop unrolls fully
	}
	terminals := symTerminals(t, f, layout, ctx, presets)
	if len(terminals) != 1 {
		t.Fatalf("%d terminals, want 1", len(terminals))
	}
	eax, err := terminals[0].Observable("eax")
	if err != nil {
		t.Fatal(err)
	}
	assign := smt.NewAssign()
	assign.BV["a0"] = 10
	assign.BV["d"] = 4
	got, err := assign.EvalBV(eax)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10+14+18 {
		t.Errorf("eax = %d, want 42", got)
	}
}

func TestSymbolicCallBoundary(t *testing.T) {
	src := `
f:
.B0:
  %vr0_32 = copy edi
  edi = copy %vr0_32
  call @g
  %vr1_32 = copy eax
  eax = copy %vr1_32
  ret
`
	f := parseOne(t, src)
	ctx := smt.NewContext()
	layout := mem.NewLayout()
	sem := NewSem(ctx, f, layout)
	s0, err := sem.Instantiate("entry", map[string]*smt.Term{"edi": ctx.VarBV("x", 32)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Step three times (arrival + two copies) to sit at the call.
	cur := s0
	for i := 0; i < 3; i++ {
		succs, err := sem.Step(cur)
		if err != nil || len(succs) != 1 {
			t.Fatalf("step %d: %v", i, err)
		}
		cur = succs[0]
	}
	if got := cur.Loc(); got != "call:g:0:before" {
		t.Fatalf("loc = %q", got)
	}
	if _, err := sem.Step(cur); err == nil {
		t.Fatalf("stepping through a call succeeded")
	}
	after, err := sem.Instantiate("call:g:0:after", map[string]*smt.Term{"eax": ctx.VarBV("r", 32)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := after.Loc(); got != "call:g:0:after" {
		t.Fatalf("after-call loc = %q", got)
	}
	succs := []core.State{after}
	for i := 0; i < 3; i++ { // commit, copy vr1, copy eax
		succs, err = sem.Step(succs[0])
		if err != nil || len(succs) != 1 {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	succs, err = sem.Step(succs[0])
	if err != nil || len(succs) != 1 || !succs[0].IsFinal() {
		t.Fatalf("did not reach exit: %v", err)
	}
	eax, err := succs[0].Observable("eax")
	if err != nil {
		t.Fatal(err)
	}
	assign := smt.NewAssign()
	assign.BV["r"] = 77
	got, err := assign.EvalBV(eax)
	if err != nil || got != 77 {
		t.Fatalf("eax after call = %d, %v", got, err)
	}
}

func TestObservableWidth(t *testing.T) {
	f := parseOne(t, fig2b)
	sem := NewSem(smt.NewContext(), f, mem.NewLayout())
	for name, want := range map[string]uint8{
		"%vr0_32": 32, "%vr5_8": 8, "eax": 32, "rdi": 64, "al": 8,
	} {
		got, err := sem.ObservableWidth("entry", name)
		if err != nil || got != want {
			t.Errorf("ObservableWidth(%s) = %d, %v; want %d", name, got, err, want)
		}
	}
	if _, err := sem.ObservableWidth("entry", "xmm1"); err == nil {
		t.Errorf("unknown observable accepted")
	}
}
