package vx86

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/smt"
)

// TestEveryOpSymbolicMatchesConcrete builds, for each opcode, a tiny
// function exercising it, and checks the symbolic semantics against the
// concrete interpreter on random inputs — per-opcode differential
// coverage for the whole instruction set.
func TestEveryOpSymbolicMatchesConcrete(t *testing.T) {
	progs := map[string]string{
		"add":    "f:\n.B0:\n  %vr0_32 = add edi, esi\n  eax = copy %vr0_32\n  ret\n",
		"sub":    "f:\n.B0:\n  %vr0_32 = sub edi, esi\n  eax = copy %vr0_32\n  ret\n",
		"imul":   "f:\n.B0:\n  %vr0_32 = imul edi, esi\n  eax = copy %vr0_32\n  ret\n",
		"and":    "f:\n.B0:\n  %vr0_32 = and edi, esi\n  eax = copy %vr0_32\n  ret\n",
		"or":     "f:\n.B0:\n  %vr0_32 = or edi, esi\n  eax = copy %vr0_32\n  ret\n",
		"xor":    "f:\n.B0:\n  %vr0_32 = xor edi, esi\n  eax = copy %vr0_32\n  ret\n",
		"shl":    "f:\n.B0:\n  %vr0_32 = shl edi, 5\n  eax = copy %vr0_32\n  ret\n",
		"shr":    "f:\n.B0:\n  %vr0_32 = shr edi, 9\n  eax = copy %vr0_32\n  ret\n",
		"sar":    "f:\n.B0:\n  %vr0_32 = sar edi, 3\n  eax = copy %vr0_32\n  ret\n",
		"inc":    "f:\n.B0:\n  %vr0_32 = inc edi\n  eax = copy %vr0_32\n  ret\n",
		"dec":    "f:\n.B0:\n  %vr0_32 = dec edi\n  eax = copy %vr0_32\n  ret\n",
		"neg":    "f:\n.B0:\n  %vr0_32 = neg edi\n  eax = copy %vr0_32\n  ret\n",
		"not":    "f:\n.B0:\n  %vr0_32 = not edi\n  eax = copy %vr0_32\n  ret\n",
		"mov":    "f:\n.B0:\n  %vr0_32 = mov 12345\n  %vr1_32 = add %vr0_32, edi\n  eax = copy %vr1_32\n  ret\n",
		"movzx":  "f:\n.B0:\n  %vr0_8 = trunc edi\n  %vr1_32 = movzx %vr0_8\n  eax = copy %vr1_32\n  ret\n",
		"movsx":  "f:\n.B0:\n  %vr0_8 = trunc edi\n  %vr1_32 = movsx %vr0_8\n  eax = copy %vr1_32\n  ret\n",
		"setcc":  "f:\n.B0:\n  cmp edi, esi\n  %vr0_8 = setbe\n  %vr1_32 = movzx %vr0_8\n  eax = copy %vr1_32\n  ret\n",
		"test":   "f:\n.B0:\n  test edi, esi\n  %vr0_8 = sete\n  %vr1_32 = movzx %vr0_8\n  eax = copy %vr1_32\n  ret\n",
		"spill":  "f:\n.B0:\n  spill !s0, edi\n  %vr0_32 = reload !s0\n  eax = copy %vr0_32\n  ret\n",
		"mem":    "f:\n.B0:\n  store4 [@g+4], edi\n  %vr0_32 = load4 [@g+4]\n  eax = copy %vr0_32\n  ret\n",
		"lea":    "f:\n.B0:\n  %vr0_64 = lea [@g+8]\n  store4 [%vr0_64], edi\n  %vr1_32 = load4 [@g+8]\n  eax = copy %vr1_32\n  ret\n",
		"subreg": "f:\n.B0:\n  %vr0_16 = trunc edi\n  ax = copy %vr0_16\n  %vr1_32 = movzx ax\n  eax = copy %vr1_32\n  ret\n",
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			f := parseOne(t, src)
			ctx := smt.NewContext()
			layout := mem.NewLayout()
			layout.Alloc("@g", 16)
			terminals := symTerminals(t, f, layout, ctx, map[string]*smt.Term{
				"edi": ctx.VarBV("a", 32),
				"esi": ctx.VarBV("b", 32),
			})
			check := func(a, b uint32) bool {
				l2 := mem.NewLayout()
				l2.Alloc("@g", 16)
				in := NewInterp(&Program{Funcs: []*Function{f}}, l2, mem.NewConcrete(l2))
				want, err := in.CallWithArgs("f", []uint64{uint64(a), uint64(b)}, []uint8{32, 32})
				if err != nil {
					t.Fatalf("concrete: %v", err)
				}
				assign := smt.NewAssign()
				assign.BV["a"] = uint64(a)
				assign.BV["b"] = uint64(b)
				hits := 0
				var got uint64
				for _, s := range terminals {
					ok, err := assign.EvalBool(s.pc)
					if err != nil {
						t.Fatalf("pc eval: %v", err)
					}
					if !ok {
						continue
					}
					hits++
					eax, err := s.Observable("eax")
					if err != nil {
						t.Fatal(err)
					}
					got, err = assign.EvalBV(eax)
					if err != nil {
						t.Fatal(err)
					}
				}
				if hits != 1 {
					t.Fatalf("%d feasible terminals", hits)
				}
				return got == maskW(want, 32)
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDivOpsSymbolicMatchesConcrete covers the division pseudo-ops whose
// error branches need feasible-path filtering.
func TestDivOpsSymbolicMatchesConcrete(t *testing.T) {
	for _, op := range []string{"udiv", "urem", "idiv", "irem"} {
		t.Run(op, func(t *testing.T) {
			src := fmt.Sprintf("f:\n.B0:\n  %%vr0_32 = %s edi, esi\n  eax = copy %%vr0_32\n  ret\n", op)
			f := parseOne(t, src)
			ctx := smt.NewContext()
			layout := mem.NewLayout()
			terminals := symTerminals(t, f, layout, ctx, map[string]*smt.Term{
				"edi": ctx.VarBV("a", 32),
				"esi": ctx.VarBV("b", 32),
			})
			check := func(a, b uint32) bool {
				l2 := mem.NewLayout()
				in := NewInterp(&Program{Funcs: []*Function{f}}, l2, mem.NewConcrete(l2))
				want, cerr := in.CallWithArgs("f", []uint64{uint64(a), uint64(b)}, []uint8{32, 32})
				assign := smt.NewAssign()
				assign.BV["a"] = uint64(a)
				assign.BV["b"] = uint64(b)
				for _, s := range terminals {
					ok, err := assign.EvalBool(s.pc)
					if err != nil || !ok {
						continue
					}
					if s.errKind != "" {
						// Concrete run must have trapped with the same kind.
						ub, isUB := cerr.(*UBError)
						return isUB && ub.Kind == s.errKind
					}
					eax, err := s.Observable("eax")
					if err != nil {
						t.Fatal(err)
					}
					got, err := assign.EvalBV(eax)
					if err != nil {
						t.Fatal(err)
					}
					return cerr == nil && got == maskW(want, 32)
				}
				t.Fatalf("no feasible terminal for a=%d b=%d", a, b)
				return false
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
				t.Fatal(err)
			}
			// Pin the two trap conditions explicitly.
			if !check(5, 0) {
				t.Errorf("divide by zero disagreement")
			}
			if op == "idiv" || op == "irem" {
				if !check(0x80000000, 0xFFFFFFFF) {
					t.Errorf("INT_MIN/-1 disagreement")
				}
			}
		})
	}
}
