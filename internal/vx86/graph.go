package vx86

// FuncGraph adapts a Function to the analyses in internal/cfg.
type FuncGraph struct{ F *Function }

// Blocks returns block labels, entry first.
func (g FuncGraph) Blocks() []string {
	out := make([]string, len(g.F.Blocks))
	for i, b := range g.F.Blocks {
		out[i] = b.Name
	}
	return out
}

// Succs returns the control-flow successors of a block: jcc targets plus
// the trailing jmp target (ret ends the function).
func (g FuncGraph) Succs(name string) []string {
	b := g.F.BlockByName(name)
	if b == nil {
		return nil
	}
	var out []string
	for _, in := range b.Instrs {
		switch in.Op {
		case OpJcc, OpJmp:
			out = append(out, in.Label)
		}
	}
	return out
}

// readRegs appends the virtual registers read by in (phi operands are
// edge uses and excluded here).
func readRegs(in *Instr, add func(string)) {
	for _, o := range in.Srcs {
		if o.Kind == OReg && o.Reg.Virtual {
			add(o.Reg.Name)
		}
	}
	if in.Addr != nil && in.Addr.Base != nil && in.Addr.Base.Virtual {
		add(in.Addr.Base.Name)
	}
}

// UseDef returns the upward-exposed virtual-register uses and the defs of
// a block. Physical registers are excluded: they do not survive block
// boundaries in ISel output.
func (g FuncGraph) UseDef(name string) (use, def map[string]bool) {
	use = make(map[string]bool)
	def = make(map[string]bool)
	b := g.F.BlockByName(name)
	if b == nil {
		return use, def
	}
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			readRegs(in, func(r string) {
				if !def[r] {
					use[r] = true
				}
			})
		}
		if in.HasDst && in.Dst.Virtual {
			def[in.Dst.Name] = true
		}
	}
	return use, def
}

// EdgeUse returns the virtual registers consumed by PHIs in `to` along the
// edge from `from`.
func (g FuncGraph) EdgeUse(from, to string) map[string]bool {
	out := make(map[string]bool)
	b := g.F.BlockByName(to)
	if b == nil {
		return out
	}
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		for _, inc := range in.Phi {
			if inc.Pred == from && inc.Val.Kind == OReg && inc.Val.Reg.Virtual {
				out[inc.Val.Reg.Name] = true
			}
		}
	}
	return out
}

// RegWidths maps every virtual register of f to its width.
func RegWidths(f *Function) map[string]uint8 {
	out := make(map[string]uint8)
	visit := func(r Reg) {
		if r.Virtual {
			out[r.Name] = r.Width
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasDst {
				visit(in.Dst)
			}
			for _, o := range in.Srcs {
				if o.Kind == OReg {
					visit(o.Reg)
				}
			}
			for _, p := range in.Phi {
				if p.Val.Kind == OReg {
					visit(p.Val.Reg)
				}
			}
			if in.Addr != nil && in.Addr.Base != nil {
				visit(*in.Addr.Base)
			}
		}
	}
	return out
}
