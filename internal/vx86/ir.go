// Package vx86 implements "Virtual x86" (paper §4.3): the LLVM Machine IR
// specialized to the x86-64 instruction set as it exists right after
// instruction selection — x86 opcodes and physical registers together with
// Machine IR's higher-level features: an unlimited supply of typed virtual
// registers, COPY and PHI pseudo-instructions, and a frame abstraction
// whose slots live in the common memory model's layout.
//
// The package provides a textual parser/printer, a concrete interpreter,
// and symbolic semantics implementing the language-parametric interfaces
// of internal/core (the right side of the ISel validation instance).
package vx86

import (
	"fmt"
	"strings"
)

// Program is a translation unit of Virtual x86 functions.
type Program struct {
	Funcs []*Function
}

// Func returns the function with the given name.
func (p *Program) Func(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Function is a Virtual x86 function body.
type Function struct {
	Name   string
	Blocks []*Block
}

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// BlockByName returns the block with the given label.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NumInstrs returns the total instruction count.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Block is a basic block of instructions; the last one is a terminator
// (jmp/jcc pair ending, or ret).
type Block struct {
	Name   string
	Instrs []*Instr
}

// Reg is a register reference: a virtual register of a fixed width, or a
// view of a physical 64-bit register (eax is the 32-bit view of rax, etc).
type Reg struct {
	Virtual bool
	Name    string // virtual: "vr0"...; physical: 64-bit base name "rax"
	Width   uint8  // access width in bits: 8, 16, 32, 64 (virtual: 1 allowed)
}

// physViews maps an assembly register name to its base register and width.
var physViews = map[string]struct {
	base  string
	width uint8
}{
	"rax": {"rax", 64}, "eax": {"rax", 32}, "ax": {"rax", 16}, "al": {"rax", 8},
	"rbx": {"rbx", 64}, "ebx": {"rbx", 32}, "bx": {"rbx", 16}, "bl": {"rbx", 8},
	"rcx": {"rcx", 64}, "ecx": {"rcx", 32}, "cx": {"rcx", 16}, "cl": {"rcx", 8},
	"rdx": {"rdx", 64}, "edx": {"rdx", 32}, "dx": {"rdx", 16}, "dl": {"rdx", 8},
	"rsi": {"rsi", 64}, "esi": {"rsi", 32}, "si": {"rsi", 16}, "sil": {"rsi", 8},
	"rdi": {"rdi", 64}, "edi": {"rdi", 32}, "di": {"rdi", 16}, "dil": {"rdi", 8},
	"r8": {"r8", 64}, "r8d": {"r8", 32}, "r8w": {"r8", 16}, "r8b": {"r8", 8},
	"r9": {"r9", 64}, "r9d": {"r9", 32}, "r9w": {"r9", 16}, "r9b": {"r9", 8},
	"r10": {"r10", 64}, "r10d": {"r10", 32},
	"r11": {"r11", 64}, "r11d": {"r11", 32},
}

// PhysReg resolves an assembly register name ("eax") to a Reg, reporting
// whether the name is known.
func PhysReg(name string) (Reg, bool) {
	v, ok := physViews[name]
	if !ok {
		return Reg{}, false
	}
	return Reg{Name: v.base, Width: v.width}, true
}

// PhysName renders a physical register reference in assembly syntax.
func PhysName(base string, width uint8) string {
	for name, v := range physViews {
		if v.base == base && v.width == width {
			return name
		}
	}
	return fmt.Sprintf("%s:%d", base, width)
}

// VReg builds a virtual register reference.
func VReg(n int, width uint8) Reg {
	return Reg{Virtual: true, Name: fmt.Sprintf("vr%d", n), Width: width}
}

func (r Reg) String() string {
	if r.Virtual {
		return fmt.Sprintf("%%%s_%d", r.Name, r.Width)
	}
	return PhysName(r.Name, r.Width)
}

// OpKind classifies operands.
type OpKind uint8

// Operand kinds.
const (
	OReg OpKind = iota
	OImm
)

// Operand is a register or immediate instruction operand.
type Operand struct {
	Kind OpKind
	Reg  Reg
	Imm  int64
}

// RegOp wraps a register as an operand.
func RegOp(r Reg) Operand { return Operand{Kind: OReg, Reg: r} }

// ImmOp wraps an immediate as an operand.
func ImmOp(v int64) Operand { return Operand{Kind: OImm, Imm: v} }

func (o Operand) String() string {
	if o.Kind == OImm {
		return fmt.Sprintf("%d", o.Imm)
	}
	return o.Reg.String()
}

// Addr is a memory or lea operand: either base-register-relative or
// symbol-relative. Sym names a layout object: "@global" or a frame slot
// ("%fn.reg", the alloca naming convention shared with internal/llvmir).
type Addr struct {
	Base *Reg // nil when symbol-based
	Sym  string
	Off  int64
}

func (a Addr) String() string {
	var b strings.Builder
	b.WriteByte('[')
	if a.Base != nil {
		b.WriteString(a.Base.String())
	} else {
		b.WriteString(a.Sym)
	}
	if a.Off != 0 {
		fmt.Fprintf(&b, "%+d", a.Off)
	}
	b.WriteByte(']')
	return b.String()
}

// PhiIn is one incoming (operand, predecessor) pair of a PHI.
type PhiIn struct {
	Val  Operand
	Pred string
}

// Op enumerates Virtual x86 opcodes.
type Op uint8

// Virtual x86 opcodes.
const (
	OpCopy Op = iota // dst = copy src
	OpMov            // dst = mov imm
	OpLea            // dst = lea [addr]
	OpPhi            // dst = phi v, B, v, B

	// Flag-setting ALU (three-address virtual form, as in Figure 2).
	OpAdd
	OpSub
	OpIMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSar
	OpInc // dst = inc src (CF preserved)
	OpDec
	OpNeg
	OpNot // no flags
	OpUDiv
	OpURem
	OpIDiv // truncated signed division (traps on 0 and INT_MIN/-1)
	OpIRem

	OpMovzx // dst = movzx src (widths from registers)
	OpMovsx
	OpTruncR // dst = trunc src (Machine IR subregister copy)

	OpLoad  // dst = load<n> [addr]
	OpStore // store<n> [addr], src

	OpCmp  // cmp a, b (flags of a-b)
	OpTest // test a, b (flags of a&b)
	OpSetcc

	OpJmp
	OpJcc
	OpCall
	OpRet

	// Frame-slot pseudo-ops (the Machine IR frame abstraction before
	// prologue insertion): slots are named storage cells outside the
	// common memory model. Used by the register-allocation pass of
	// internal/regalloc. Neither op touches eflags.
	OpSpill  // spill !slot, src
	OpReload // dst = reload !slot
)

var opText = map[Op]string{
	OpCopy: "copy", OpMov: "mov", OpLea: "lea", OpPhi: "phi",
	OpAdd: "add", OpSub: "sub", OpIMul: "imul", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpSar: "sar", OpInc: "inc",
	OpDec: "dec", OpNeg: "neg", OpNot: "not", OpUDiv: "udiv", OpURem: "urem",
	OpIDiv: "idiv", OpIRem: "irem",
	OpMovzx: "movzx", OpMovsx: "movsx", OpTruncR: "trunc",
	OpLoad: "load", OpStore: "store", OpCmp: "cmp", OpTest: "test",
	OpSetcc: "set", OpJmp: "jmp", OpJcc: "j", OpCall: "call", OpRet: "ret",
	OpSpill: "spill", OpReload: "reload",
}

// CC is an x86 condition code (for jcc/setcc/cmovcc).
type CC string

// Condition codes.
const (
	CCE  CC = "e"
	CCNE CC = "ne"
	CCB  CC = "b"
	CCAE CC = "ae"
	CCBE CC = "be"
	CCA  CC = "a"
	CCL  CC = "l"
	CCGE CC = "ge"
	CCLE CC = "le"
	CCG  CC = "g"
	CCS  CC = "s"
	CCNS CC = "ns"
)

var allCCs = map[CC]bool{
	CCE: true, CCNE: true, CCB: true, CCAE: true, CCBE: true, CCA: true,
	CCL: true, CCGE: true, CCLE: true, CCG: true, CCS: true, CCNS: true,
}

// Instr is one Virtual x86 instruction.
type Instr struct {
	Op     Op
	Dst    Reg // valid when HasDst
	HasDst bool
	Srcs   []Operand
	Addr   *Addr
	Size   int // load/store bytes
	CC     CC
	Label  string // jmp/jcc target
	Callee string
	Phi    []PhiIn
	Slot   string // spill/reload frame slot name
}

// IsTerminator reports whether the instruction unconditionally leaves the
// block (jmp, ret). jcc is a conditional terminator and is always followed
// by a jmp in well-formed code (as ISel emits).
func (in *Instr) IsTerminator() bool {
	return in.Op == OpJmp || in.Op == OpRet
}

func (in *Instr) String() string {
	var b strings.Builder
	if in.HasDst {
		fmt.Fprintf(&b, "%s = ", in.Dst)
	}
	switch in.Op {
	case OpCopy, OpMov, OpMovzx, OpMovsx, OpTruncR, OpInc, OpDec, OpNeg, OpNot:
		fmt.Fprintf(&b, "%s %s", opText[in.Op], in.Srcs[0])
	case OpLea:
		fmt.Fprintf(&b, "lea %s", in.Addr)
	case OpPhi:
		b.WriteString("phi ")
		for i, p := range in.Phi {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s, %s", p.Val, p.Pred)
		}
	case OpAdd, OpSub, OpIMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar, OpUDiv, OpURem, OpIDiv, OpIRem:
		fmt.Fprintf(&b, "%s %s, %s", opText[in.Op], in.Srcs[0], in.Srcs[1])
	case OpLoad:
		fmt.Fprintf(&b, "load%d %s", in.Size, in.Addr)
	case OpStore:
		fmt.Fprintf(&b, "store%d %s, %s", in.Size, in.Addr, in.Srcs[0])
	case OpCmp, OpTest:
		fmt.Fprintf(&b, "%s %s, %s", opText[in.Op], in.Srcs[0], in.Srcs[1])
	case OpSetcc:
		fmt.Fprintf(&b, "set%s", in.CC)
	case OpSpill:
		fmt.Fprintf(&b, "spill !%s, %s", in.Slot, in.Srcs[0])
	case OpReload:
		fmt.Fprintf(&b, "reload !%s", in.Slot)
	case OpJmp:
		fmt.Fprintf(&b, "jmp %s", in.Label)
	case OpJcc:
		fmt.Fprintf(&b, "j%s %s", in.CC, in.Label)
	case OpCall:
		fmt.Fprintf(&b, "call @%s", in.Callee)
	case OpRet:
		b.WriteString("ret")
	}
	return b.String()
}

// String renders the program in parseable textual syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, f := range p.Funcs {
		fmt.Fprintf(&b, "%s:\n", f.Name)
		for _, blk := range f.Blocks {
			fmt.Fprintf(&b, "%s:\n", blk.Name)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", in)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
