package vx86

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/smt"
)

// CallSite identifies a static call site.
type CallSite struct {
	Block  string
	Index  int
	Callee string
}

// CallSites returns the function's call sites in layout order; indices
// align with the LLVM side's call sites because ISel preserves call order.
func CallSites(f *Function) []CallSite {
	var out []CallSite
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == OpCall {
				out = append(out, CallSite{Block: b.Name, Index: i, Callee: in.Callee})
			}
		}
	}
	return out
}

// Sem is the symbolic semantics of one Virtual x86 function, implementing
// core.Semantics (the right side of the ISel validation instance).
type Sem struct {
	Ctx    *smt.Context
	Fn     *Function
	Layout *mem.Layout

	sites []CallSite
	instN int

	// State slab: the symbolic search clones states at every branch, and
	// a long function allocates tens of thousands of them. Chunked slab
	// allocation (stable pointers — chunks are never moved or reused
	// while the Sem lives) cuts that to one allocation per chunk.
	slabs    [][]state
	slabUsed int
}

// stateChunk is the slab chunk size; see Sem.slabs.
const stateChunk = 256

// newState returns a pointer to a fresh zeroed state from the slab.
func (sm *Sem) newState() *state {
	if len(sm.slabs) == 0 || sm.slabUsed == stateChunk {
		sm.slabs = append(sm.slabs, make([]state, stateChunk))
		sm.slabUsed = 0
	}
	st := &sm.slabs[len(sm.slabs)-1][sm.slabUsed]
	sm.slabUsed++
	return st
}

// NewSem builds the symbolic semantics of f against the shared layout.
func NewSem(ctx *smt.Context, f *Function, layout *mem.Layout) *Sem {
	return &Sem{Ctx: ctx, Fn: f, Layout: layout, sites: CallSites(f)}
}

// symFlags is the symbolic eflags subset; nil fields materialize lazily.
type symFlags struct {
	zf, sf, cf, of *smt.Term
}

type state struct {
	sem    *Sem
	instID int

	block     *Block
	prev      string
	idx       int
	arrived   bool // at block start, phis not yet executed
	afterCall int  // ≥0: just past call site #afterCall, not yet committed

	virt  map[string]*smt.Term // exact-width values
	frame map[string]*smt.Term // frame-slot values (Machine IR FrameIndex)
	phys  map[string]*smt.Term // 64-bit base values
	flags symFlags
	mem   *mem.Symbolic
	pc    *smt.Term

	final   bool
	errKind string
}

var _ core.State = (*state)(nil)

// Loc implements core.State.
func (s *state) Loc() core.Location {
	switch {
	case s.errKind != "":
		return core.ErrorLoc(s.errKind)
	case s.final:
		return "exit"
	case s.afterCall >= 0:
		return core.Location(fmt.Sprintf("call:%s:%d:after",
			s.sem.sites[s.afterCall].Callee, s.afterCall))
	case s.arrived && s.prev == "" && s.block == s.sem.Fn.Entry():
		return "entry"
	case s.arrived:
		return core.Location("block:" + s.block.Name + ":from:" + s.prev)
	}
	if s.idx < len(s.block.Instrs) && s.block.Instrs[s.idx].Op == OpCall {
		if k := s.sem.siteIndex(s.block.Name, s.idx); k >= 0 {
			return core.Location(fmt.Sprintf("call:%s:%d:before", s.sem.sites[k].Callee, k))
		}
	}
	return core.Location(fmt.Sprintf("at:%s:%d:from:%s", s.block.Name, s.idx, s.prev))
}

func (sm *Sem) siteIndex(block string, idx int) int {
	for k, st := range sm.sites {
		if st.Block == block && st.Index == idx {
			return k
		}
	}
	return -1
}

// PathCond implements core.State.
func (s *state) PathCond() *smt.Term { return s.pc }

// MemTerm implements core.State.
func (s *state) MemTerm() *smt.Term { return s.mem.Term() }

// IsFinal implements core.State.
func (s *state) IsFinal() bool { return s.final }

// ErrorKind implements core.State.
func (s *state) ErrorKind() string { return s.errKind }

// Observable implements core.State: virtual registers ("%vr3_32") and
// physical register views ("eax", "rdi", ...).
func (s *state) Observable(name string) (*smt.Term, error) {
	if strings.HasPrefix(name, "!") {
		slot, w, err := parseSlotObs(name)
		if err != nil {
			return nil, err
		}
		return s.readSlot(slot, w)
	}
	if strings.HasPrefix(name, "%") {
		r, err := parseReg(name)
		if err != nil {
			return nil, err
		}
		return s.readVirt(r), nil
	}
	r, ok := PhysReg(name)
	if !ok {
		return nil, fmt.Errorf("vx86: unknown observable %q", name)
	}
	return s.readPhys(r), nil
}

func (s *state) readVirt(r Reg) *smt.Term {
	if t, ok := s.virt[r.Name]; ok {
		return t
	}
	t := s.sem.Ctx.VarBV(fmt.Sprintf("vx86!i%d!%s", s.instID, r.Name), r.Width)
	s.virt[r.Name] = t
	return t
}

// readSlot reads a frame slot, materializing a fresh variable of the
// given width on first read.
func (s *state) readSlot(name string, width uint8) (*smt.Term, error) {
	if t, ok := s.frame[name]; ok {
		if t.Width != width {
			return nil, fmt.Errorf("vx86: slot %s holds %d bits, read as %d", name, t.Width, width)
		}
		return t, nil
	}
	t := s.sem.Ctx.VarBV(fmt.Sprintf("vx86!i%d!slot!%s", s.instID, name), width)
	s.frame[name] = t
	return t, nil
}

func (s *state) physBase(name string) *smt.Term {
	if t, ok := s.phys[name]; ok {
		return t
	}
	t := s.sem.Ctx.VarBV(fmt.Sprintf("vx86!i%d!%s", s.instID, name), 64)
	s.phys[name] = t
	return t
}

func (s *state) readPhys(r Reg) *smt.Term {
	base := s.physBase(r.Name)
	if r.Width == 64 {
		return base
	}
	return s.sem.Ctx.Extract(base, r.Width-1, 0)
}

func (s *state) writeReg(r Reg, v *smt.Term) {
	ctx := s.sem.Ctx
	if v.Width != r.Width {
		panic(fmt.Sprintf("vx86: write width %d to %s", v.Width, r))
	}
	if r.Virtual {
		s.virt[r.Name] = v
		return
	}
	switch r.Width {
	case 64:
		s.phys[r.Name] = v
	case 32:
		// 32-bit writes zero the upper half (x86-64).
		s.phys[r.Name] = ctx.ZExt(v, 64)
	default:
		old := s.physBase(r.Name)
		s.phys[r.Name] = ctx.Concat(ctx.Extract(old, 63, r.Width), v)
	}
}

// flag reads with lazy materialization.
func (s *state) flag(which string) *smt.Term {
	var p **smt.Term
	switch which {
	case "zf":
		p = &s.flags.zf
	case "sf":
		p = &s.flags.sf
	case "cf":
		p = &s.flags.cf
	default:
		p = &s.flags.of
	}
	if *p == nil {
		*p = s.sem.Ctx.VarBool(fmt.Sprintf("vx86!i%d!%s", s.instID, which))
	}
	return *p
}

func (s *state) clone() *state {
	n := s.sem.newState()
	*n = *s
	n.virt = make(map[string]*smt.Term, len(s.virt))
	for k, v := range s.virt {
		n.virt[k] = v
	}
	n.frame = make(map[string]*smt.Term, len(s.frame))
	for k, v := range s.frame {
		n.frame[k] = v
	}
	n.phys = make(map[string]*smt.Term, len(s.phys))
	for k, v := range s.phys {
		n.phys[k] = v
	}
	return n
}

func (s *state) operand(o Operand, width uint8) (*smt.Term, error) {
	switch o.Kind {
	case OImm:
		return s.sem.Ctx.BV(uint64(o.Imm), width), nil
	case OReg:
		var t *smt.Term
		if o.Reg.Virtual {
			t = s.readVirt(o.Reg)
		} else {
			t = s.readPhys(o.Reg)
		}
		if t.Width != width {
			return nil, fmt.Errorf("vx86: operand %s has width %d, want %d", o, t.Width, width)
		}
		return t, nil
	}
	return nil, fmt.Errorf("vx86: bad operand kind")
}

func (s *state) addrTerm(a *Addr) (*smt.Term, error) {
	ctx := s.sem.Ctx
	if a.Base != nil {
		var t *smt.Term
		if a.Base.Virtual {
			t = s.readVirt(*a.Base)
		} else {
			t = s.readPhys(*a.Base)
		}
		if t.Width != 64 {
			return nil, fmt.Errorf("vx86: address base %s is not 64-bit", a.Base)
		}
		return ctx.Add(t, ctx.BV(uint64(a.Off), 64)), nil
	}
	o, ok := s.sem.Layout.Find(a.Sym)
	if !ok {
		return nil, fmt.Errorf("vx86: unknown symbol %q", a.Sym)
	}
	return ctx.BV(o.Base+uint64(a.Off), 64), nil
}

// Instantiate implements core.Semantics.
func (sm *Sem) Instantiate(loc core.Location, presets map[string]*smt.Term, memT *smt.Term) (core.State, error) {
	sm.instN++
	s := sm.newState()
	*s = state{
		sem:       sm,
		instID:    sm.instN,
		afterCall: -1,
		virt:      make(map[string]*smt.Term),
		frame:     make(map[string]*smt.Term),
		phys:      make(map[string]*smt.Term),
		pc:        sm.Ctx.True(),
	}
	if memT == nil {
		memT = sm.Ctx.VarMem(fmt.Sprintf("Mvx86!%d", sm.instN))
	}
	s.mem = mem.NewSymbolic(sm.Ctx, "unused", sm.Layout).WithTerm(memT)

	for name, t := range presets {
		if strings.HasPrefix(name, "!") {
			slot, w, err := parseSlotObs(name)
			if err != nil {
				return nil, err
			}
			if t.Width != w {
				return nil, fmt.Errorf("vx86: preset width %d for %s", t.Width, name)
			}
			s.frame[slot] = t
			continue
		}
		if strings.HasPrefix(name, "%") {
			r, err := parseReg(name)
			if err != nil {
				return nil, err
			}
			if t.Width != r.Width {
				return nil, fmt.Errorf("vx86: preset width %d for %s", t.Width, name)
			}
			s.virt[r.Name] = t
			continue
		}
		r, ok := PhysReg(name)
		if !ok {
			return nil, fmt.Errorf("vx86: cannot preset observable %q", name)
		}
		if t.Width != r.Width {
			return nil, fmt.Errorf("vx86: preset width %d for %s (want %d)", t.Width, name, r.Width)
		}
		// Write through the view: upper bits of the base are unconstrained
		// (32-bit views zero them, matching the ABI).
		s.writeReg(r, t)
	}

	ls := string(loc)
	switch {
	case ls == "entry":
		s.block = sm.Fn.Entry()
		s.arrived = true
	case strings.HasPrefix(ls, "block:"):
		rest := ls[len("block:"):]
		i := strings.Index(rest, ":from:")
		if i < 0 {
			return nil, fmt.Errorf("vx86: malformed block location %q", ls)
		}
		b := sm.Fn.BlockByName(rest[:i])
		if b == nil {
			return nil, fmt.Errorf("vx86: no block %q", rest[:i])
		}
		s.block = b
		s.prev = rest[i+len(":from:"):]
		s.arrived = true
	case strings.HasPrefix(ls, "call:") && strings.HasSuffix(ls, ":after"):
		parts := strings.Split(ls, ":")
		k, err := strconv.Atoi(parts[2])
		if err != nil || k < 0 || k >= len(sm.sites) {
			return nil, fmt.Errorf("vx86: bad call location %q", ls)
		}
		site := sm.sites[k]
		s.block = sm.Fn.BlockByName(site.Block)
		s.idx = site.Index + 1
		s.afterCall = k
		s.prev = "?after-call"
	default:
		return nil, fmt.Errorf("vx86: cannot instantiate at location %q", ls)
	}
	return s, nil
}

// ObservableWidth implements core.Semantics.
func (sm *Sem) ObservableWidth(loc core.Location, name string) (uint8, error) {
	if strings.HasPrefix(name, "!") {
		_, w, err := parseSlotObs(name)
		return w, err
	}
	if strings.HasPrefix(name, "%") {
		r, err := parseReg(name)
		if err != nil {
			return 0, err
		}
		return r.Width, nil
	}
	r, ok := PhysReg(name)
	if !ok {
		return 0, fmt.Errorf("vx86: unknown observable %q", name)
	}
	return r.Width, nil
}

// parseSlotObs parses a frame-slot observable "!name_width".
func parseSlotObs(obs string) (string, uint8, error) {
	body := obs[1:]
	us := strings.LastIndexByte(body, '_')
	if us < 1 {
		return "", 0, fmt.Errorf("vx86: bad slot observable %q (want !name_width)", obs)
	}
	w, err := strconv.Atoi(body[us+1:])
	if err != nil || w < 1 || w > 64 {
		return "", 0, fmt.Errorf("vx86: bad slot width in %q", obs)
	}
	return body[:us], uint8(w), nil
}

// condTerm builds the Bool term of a condition code over the state flags.
func (s *state) condTerm(cc CC) *smt.Term {
	ctx := s.sem.Ctx
	switch cc {
	case CCE:
		return s.flag("zf")
	case CCNE:
		return ctx.Not(s.flag("zf"))
	case CCB:
		return s.flag("cf")
	case CCAE:
		return ctx.Not(s.flag("cf"))
	case CCBE:
		return ctx.OrB(s.flag("cf"), s.flag("zf"))
	case CCA:
		return ctx.Not(ctx.OrB(s.flag("cf"), s.flag("zf")))
	case CCL:
		return ctx.Not(ctx.Eq(s.flag("sf"), s.flag("of")))
	case CCGE:
		return ctx.Eq(s.flag("sf"), s.flag("of"))
	case CCLE:
		return ctx.OrB(s.flag("zf"), ctx.Not(ctx.Eq(s.flag("sf"), s.flag("of"))))
	case CCG:
		return ctx.AndB(ctx.Not(s.flag("zf")), ctx.Eq(s.flag("sf"), s.flag("of")))
	case CCS:
		return s.flag("sf")
	case CCNS:
		return ctx.Not(s.flag("sf"))
	}
	panic("vx86: unknown condition " + string(cc))
}

func (s *state) setArithFlags(a, b, r *smt.Term, sub bool) {
	ctx := s.sem.Ctx
	w := r.Width
	s.flags.zf = ctx.Eq(r, ctx.BV(0, w))
	s.flags.sf = ctx.Eq(ctx.Extract(r, w-1, w-1), ctx.BV(1, 1))
	if sub {
		s.flags.cf = ctx.Ult(a, b)
		s.flags.of = ctx.SubOverflowSigned(a, b)
	} else {
		s.flags.cf = ctx.Ult(r, a)
		s.flags.of = ctx.AddOverflowSigned(a, b)
	}
}

func (s *state) setLogicFlags(r *smt.Term) {
	ctx := s.sem.Ctx
	w := r.Width
	s.flags.zf = ctx.Eq(r, ctx.BV(0, w))
	s.flags.sf = ctx.Eq(ctx.Extract(r, w-1, w-1), ctx.BV(1, 1))
	s.flags.cf = ctx.False()
	s.flags.of = ctx.False()
}

// Step implements core.Semantics.
func (sm *Sem) Step(cs core.State) ([]core.State, error) {
	s, ok := cs.(*state)
	if !ok {
		return nil, fmt.Errorf("vx86: foreign state %T", cs)
	}
	if s.final || s.errKind != "" {
		return nil, nil
	}
	if s.idx >= len(s.block.Instrs) {
		return nil, fmt.Errorf("vx86: fell off block %s", s.block.Name)
	}
	ctx := sm.Ctx
	_ = ctx

	// After-call arrival: commit the position (zero-instruction step) so
	// that an immediately following call site gets its own cut location.
	if s.afterCall >= 0 {
		n := s.clone()
		n.afterCall = -1
		return []core.State{n}, nil
	}

	// Arrival step: commit block entry and execute the leading PHI group.
	if s.arrived {
		n := s.clone()
		n.arrived = false
		updates := make(map[string]*smt.Term)
		for n.idx < len(s.block.Instrs) && s.block.Instrs[n.idx].Op == OpPhi {
			phi := s.block.Instrs[n.idx]
			found := false
			for _, inc := range phi.Phi {
				if inc.Pred == s.prev {
					v, err := s.operand(inc.Val, phi.Dst.Width)
					if err != nil {
						return nil, err
					}
					updates[phi.Dst.Name] = v
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("vx86: phi %s has no incoming for %s", phi.Dst, s.prev)
			}
			n.idx++
		}
		for k, v := range updates {
			n.virt[k] = v
		}
		return []core.State{n}, nil
	}
	ins := s.block.Instrs[s.idx]

	switch ins.Op {
	case OpJmp:
		n := s.clone()
		n.prev = s.block.Name
		n.block = sm.Fn.BlockByName(ins.Label)
		if n.block == nil {
			return nil, fmt.Errorf("vx86: jmp to unknown block %s", ins.Label)
		}
		n.idx = 0
		n.arrived = true
		return []core.State{n}, nil
	case OpJcc:
		cond := s.condTerm(ins.CC)
		taken := s.clone()
		taken.pc = ctx.AndB(s.pc, cond)
		taken.prev = s.block.Name
		taken.block = sm.Fn.BlockByName(ins.Label)
		if taken.block == nil {
			return nil, fmt.Errorf("vx86: j%s to unknown block %s", ins.CC, ins.Label)
		}
		taken.idx = 0
		taken.arrived = true
		fall := s.clone()
		fall.pc = ctx.AndB(s.pc, ctx.Not(cond))
		fall.idx++
		return []core.State{taken, fall}, nil
	case OpRet:
		n := s.clone()
		n.final = true
		return []core.State{n}, nil
	case OpCall:
		return nil, fmt.Errorf("vx86: call site @%s not covered by a synchronization point", ins.Callee)
	}

	return sm.execSym(s, ins)
}

func (sm *Sem) execSym(s *state, ins *Instr) ([]core.State, error) {
	ctx := sm.Ctx
	done := func(n *state) []core.State { n.idx++; return []core.State{n} }

	switch ins.Op {
	case OpCopy:
		v, err := s.operand(ins.Srcs[0], ins.Dst.Width)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		n.writeReg(ins.Dst, v)
		return done(n), nil
	case OpMov:
		n := s.clone()
		n.writeReg(ins.Dst, ctx.BV(uint64(ins.Srcs[0].Imm), ins.Dst.Width))
		return done(n), nil
	case OpLea:
		a, err := s.addrTerm(ins.Addr)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		n.writeReg(ins.Dst, a)
		return done(n), nil
	case OpMovzx, OpMovsx, OpTruncR:
		src := ins.Srcs[0]
		if src.Kind != OReg {
			return nil, fmt.Errorf("vx86: %s needs a register source", opText[ins.Op])
		}
		var v *smt.Term
		if src.Reg.Virtual {
			v = s.readVirt(src.Reg)
		} else {
			v = s.readPhys(src.Reg)
		}
		var out *smt.Term
		switch ins.Op {
		case OpMovzx:
			out = ctx.ZExt(v, ins.Dst.Width)
		case OpMovsx:
			out = ctx.SExt(v, ins.Dst.Width)
		default:
			out = ctx.Extract(v, ins.Dst.Width-1, 0)
		}
		n := s.clone()
		n.writeReg(ins.Dst, out)
		return done(n), nil

	case OpAdd, OpSub, OpIMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSar:
		w := ins.Dst.Width
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		b, err := s.operand(ins.Srcs[1], w)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		var r *smt.Term
		switch ins.Op {
		case OpAdd:
			r = ctx.Add(a, b)
			n.setArithFlags(a, b, r, false)
		case OpSub:
			r = ctx.Sub(a, b)
			n.setArithFlags(a, b, r, true)
		case OpIMul:
			r = ctx.Mul(a, b)
			n.setLogicFlags(r)
		case OpAnd:
			r = ctx.And(a, b)
			n.setLogicFlags(r)
		case OpOr:
			r = ctx.Or(a, b)
			n.setLogicFlags(r)
		case OpXor:
			r = ctx.Xor(a, b)
			n.setLogicFlags(r)
		case OpShl:
			r = ctx.Shl(a, b)
			n.setLogicFlags(r)
		case OpShr:
			r = ctx.LShr(a, b)
			n.setLogicFlags(r)
		default:
			r = ctx.AShr(a, b)
			n.setLogicFlags(r)
		}
		n.writeReg(ins.Dst, r)
		return done(n), nil

	case OpUDiv, OpURem:
		w := ins.Dst.Width
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		b, err := s.operand(ins.Srcs[1], w)
		if err != nil {
			return nil, err
		}
		bad := ctx.Eq(b, ctx.BV(0, w))
		n := s.clone()
		if ins.Op == OpUDiv {
			n.writeReg(ins.Dst, ctx.UDiv(a, b))
		} else {
			n.writeReg(ins.Dst, ctx.URem(a, b))
		}
		n.pc = ctx.AndB(s.pc, ctx.Not(bad))
		n.idx++
		out := []core.State{n}
		if !bad.IsFalse() {
			e := s.clone()
			e.pc = ctx.AndB(s.pc, bad)
			e.errKind = "divzero"
			out = append(out, e)
		}
		return out, nil

	case OpIDiv, OpIRem:
		// Signed division traps (#DE) on divisor 0 and on INT_MIN / -1 —
		// the same two conditions the LLVM side marks as UB, so the error
		// states pair up by kind.
		w := ins.Dst.Width
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		b, err := s.operand(ins.Srcs[1], w)
		if err != nil {
			return nil, err
		}
		bz := ctx.Eq(b, ctx.BV(0, w))
		ov := ctx.SDivOverflow(a, b)
		n := s.clone()
		if ins.Op == OpIDiv {
			n.writeReg(ins.Dst, ctx.SDiv(a, b))
		} else {
			n.writeReg(ins.Dst, ctx.SRem(a, b))
		}
		n.pc = ctx.AndB(s.pc, ctx.AndB(ctx.Not(bz), ctx.Not(ov)))
		n.idx++
		out := []core.State{n}
		if !bz.IsFalse() {
			e := s.clone()
			e.pc = ctx.AndB(s.pc, bz)
			e.errKind = "divzero"
			out = append(out, e)
		}
		if !ov.IsFalse() {
			e := s.clone()
			e.pc = ctx.AndB(s.pc, ctx.AndB(ctx.Not(bz), ov))
			e.errKind = "overflow"
			out = append(out, e)
		}
		return out, nil

	case OpInc, OpDec:
		w := ins.Dst.Width
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		one := ctx.BV(1, w)
		n := s.clone()
		savedCF := s.flag("cf")
		var r *smt.Term
		if ins.Op == OpInc {
			r = ctx.Add(a, one)
			n.setArithFlags(a, one, r, false)
		} else {
			r = ctx.Sub(a, one)
			n.setArithFlags(a, one, r, true)
		}
		n.flags.cf = savedCF
		n.writeReg(ins.Dst, r)
		return done(n), nil

	case OpNeg:
		w := ins.Dst.Width
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		r := ctx.Neg(a)
		n.setArithFlags(ctx.BV(0, w), a, r, true)
		n.flags.cf = ctx.Not(ctx.Eq(a, ctx.BV(0, w)))
		n.writeReg(ins.Dst, r)
		return done(n), nil
	case OpNot:
		w := ins.Dst.Width
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		n.writeReg(ins.Dst, ctx.NotBV(a))
		return done(n), nil

	case OpCmp:
		w := cmpWidth(ins)
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		b, err := s.operand(ins.Srcs[1], w)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		n.setArithFlags(a, b, ctx.Sub(a, b), true)
		return done(n), nil
	case OpTest:
		w := cmpWidth(ins)
		a, err := s.operand(ins.Srcs[0], w)
		if err != nil {
			return nil, err
		}
		b, err := s.operand(ins.Srcs[1], w)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		n.setLogicFlags(ctx.And(a, b))
		return done(n), nil
	case OpSetcc:
		n := s.clone()
		n.writeReg(ins.Dst, ctx.Ite(s.condTerm(ins.CC), ctx.BV(1, ins.Dst.Width), ctx.BV(0, ins.Dst.Width)))
		return done(n), nil

	case OpSpill:
		src := ins.Srcs[0]
		var v *smt.Term
		if src.Reg.Virtual {
			v = s.readVirt(src.Reg)
		} else {
			v = s.readPhys(src.Reg)
		}
		n := s.clone()
		n.frame[ins.Slot] = v
		return done(n), nil
	case OpReload:
		v, err := s.readSlot(ins.Slot, ins.Dst.Width)
		if err != nil {
			return nil, err
		}
		n := s.clone()
		n.writeReg(ins.Dst, v)
		return done(n), nil

	case OpLoad:
		a, err := s.addrTerm(ins.Addr)
		if err != nil {
			return nil, err
		}
		inb := s.mem.InBoundsCond(a, ins.Size)
		bad := ctx.Not(inb)
		v := s.mem.Load(a, ins.Size)
		n := s.clone()
		n.writeReg(ins.Dst, v)
		n.pc = ctx.AndB(s.pc, ctx.Not(bad))
		n.idx++
		out := []core.State{n}
		if !bad.IsFalse() {
			e := s.clone()
			e.pc = ctx.AndB(s.pc, bad)
			e.errKind = "oob"
			out = append(out, e)
		}
		return out, nil
	case OpStore:
		a, err := s.addrTerm(ins.Addr)
		if err != nil {
			return nil, err
		}
		v, err := s.operand(ins.Srcs[0], uint8(8*ins.Size))
		if err != nil {
			return nil, err
		}
		inb := s.mem.InBoundsCond(a, ins.Size)
		bad := ctx.Not(inb)
		n := s.clone()
		n.mem = s.mem.Store(a, ins.Size, v)
		n.pc = ctx.AndB(s.pc, ctx.Not(bad))
		n.idx++
		out := []core.State{n}
		if !bad.IsFalse() {
			e := s.clone()
			e.pc = ctx.AndB(s.pc, bad)
			e.errKind = "oob"
			out = append(out, e)
		}
		return out, nil
	}
	return nil, fmt.Errorf("vx86: symbolic execution of unsupported op %q", opText[ins.Op])
}
