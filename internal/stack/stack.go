// Package stack implements a small stack machine and a compiler from the
// IMP while-language of internal/imp. Together with internal/imp it forms
// the second language pair of this repository: the same language-parametric
// checker (internal/core) that validates LLVM→x86 instruction selection
// validates this compiler unchanged, demonstrating the paper's central
// claim.
package stack

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/imp"
	"repro/internal/smt"
)

// Op enumerates stack-machine opcodes.
type Op uint8

// Opcodes. Binary operators pop right then left and push the result.
const (
	OpPush  Op = iota // push Imm
	OpLoad            // push vars[Var]
	OpStore           // vars[Var] = pop
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpLt // unsigned; pushes 0/1
	OpEq
	OpJz  // pop; jump to Label when zero
	OpJmp // jump to Label
	OpRet // pop return value, halt
)

var opNames = map[Op]string{
	OpPush: "push", OpLoad: "load", OpStore: "store", OpAdd: "add",
	OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpLt: "lt", OpEq: "eq", OpJz: "jz", OpJmp: "jmp", OpRet: "ret",
}

// Instr is one stack-machine instruction.
type Instr struct {
	Op    Op
	Imm   uint32
	Var   string
	Label string
}

func (in Instr) String() string {
	switch in.Op {
	case OpPush:
		return fmt.Sprintf("push %d", in.Imm)
	case OpLoad, OpStore:
		return fmt.Sprintf("%s %s", opNames[in.Op], in.Var)
	case OpJz, OpJmp:
		return fmt.Sprintf("%s %s", opNames[in.Op], in.Label)
	}
	return opNames[in.Op]
}

// Block is a labeled straight-line instruction sequence ending in a
// control transfer. The stack is empty at every block boundary by
// construction of the compiler.
type Block struct {
	Label  string
	Instrs []Instr
}

// Program is a compiled stack program; Blocks[0] is the entry.
type Program struct {
	Blocks []*Block
}

// BlockByLabel returns the named block.
func (p *Program) BlockByLabel(l string) *Block {
	for _, b := range p.Blocks {
		if b.Label == l {
			return b
		}
	}
	return nil
}

func (p *Program) String() string {
	var b strings.Builder
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "%s:\n", blk.Label)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  %s\n", in)
		}
	}
	return b.String()
}

// Options controls the compiler; the bug switches give the cross-language
// examples a miscompilation for KEQ to catch.
type Options struct {
	// BugSwapSub compiles `a - b` as `b - a`.
	BugSwapSub bool
	// BugSkipLoopStore drops the LAST store of every loop body — a
	// "forgotten writeback" bug.
	BugSkipLoopStore bool
}

// Compile lowers an IMP program via the same flattened CFG the IMP
// symbolic semantics use, so block labels (and hence cut locations)
// coincide on both sides.
func Compile(p *imp.Program, opts Options) *Program {
	out := &Program{}
	for _, ib := range imp.Flatten(p) {
		blk := &Block{Label: ib.Label}
		inLoop := strings.HasPrefix(ib.Label, "body")
		for i, a := range ib.Assigns {
			blk.Instrs = append(blk.Instrs, compileExpr(a.E, opts)...)
			if opts.BugSkipLoopStore && inLoop && i == len(ib.Assigns)-1 {
				// Forgotten writeback: discard instead of storing. The
				// value must still be popped to keep the stack balanced.
				blk.Instrs = append(blk.Instrs, Instr{Op: OpStore, Var: "!scratch"})
				continue
			}
			blk.Instrs = append(blk.Instrs, Instr{Op: OpStore, Var: a.Var})
		}
		switch ib.Term {
		case imp.TGoto:
			blk.Instrs = append(blk.Instrs, Instr{Op: OpJmp, Label: ib.Tgt})
		case imp.TBranch:
			blk.Instrs = append(blk.Instrs, compileExpr(ib.Cond, opts)...)
			blk.Instrs = append(blk.Instrs, Instr{Op: OpJz, Label: ib.TgtF})
			blk.Instrs = append(blk.Instrs, Instr{Op: OpJmp, Label: ib.Tgt})
		case imp.TRet:
			blk.Instrs = append(blk.Instrs, compileExpr(ib.Ret, opts)...)
			blk.Instrs = append(blk.Instrs, Instr{Op: OpRet})
		}
		out.Blocks = append(out.Blocks, blk)
	}
	return out
}

var binOpcode = map[string]Op{
	"+": OpAdd, "-": OpSub, "*": OpMul, "&": OpAnd, "|": OpOr, "^": OpXor,
	"<": OpLt, "==": OpEq,
}

func compileExpr(e *imp.Expr, opts Options) []Instr {
	switch {
	case e.IsIt:
		return []Instr{{Op: OpPush, Imm: e.Lit}}
	case e.Op == "":
		return []Instr{{Op: OpLoad, Var: e.Var}}
	}
	l := compileExpr(e.L, opts)
	r := compileExpr(e.R, opts)
	if e.Op == "-" && opts.BugSwapSub {
		l, r = r, l
	}
	return append(append(l, r...), Instr{Op: binOpcode[e.Op]})
}

// Eval runs the program concretely.
func Eval(p *Program, inputs map[string]uint32) (uint32, error) {
	vars := make(map[string]uint32, len(inputs))
	for k, v := range inputs {
		vars[k] = v
	}
	var stk []uint32
	pop := func() uint32 {
		v := stk[len(stk)-1]
		stk = stk[:len(stk)-1]
		return v
	}
	blk := p.Blocks[0]
	idx := 0
	for steps := 0; ; steps++ {
		if steps > 1<<22 {
			return 0, fmt.Errorf("stack: step budget exhausted")
		}
		if idx >= len(blk.Instrs) {
			return 0, fmt.Errorf("stack: fell off block %s", blk.Label)
		}
		in := blk.Instrs[idx]
		switch in.Op {
		case OpPush:
			stk = append(stk, in.Imm)
		case OpLoad:
			stk = append(stk, vars[in.Var])
		case OpStore:
			vars[in.Var] = pop()
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpLt, OpEq:
			r := pop()
			l := pop()
			var v uint32
			switch in.Op {
			case OpAdd:
				v = l + r
			case OpSub:
				v = l - r
			case OpMul:
				v = l * r
			case OpAnd:
				v = l & r
			case OpOr:
				v = l | r
			case OpXor:
				v = l ^ r
			case OpLt:
				if l < r {
					v = 1
				}
			case OpEq:
				if l == r {
					v = 1
				}
			}
			stk = append(stk, v)
		case OpJz:
			if pop() == 0 {
				blk = p.BlockByLabel(in.Label)
				idx = 0
				continue
			}
		case OpJmp:
			blk = p.BlockByLabel(in.Label)
			idx = 0
			continue
		case OpRet:
			return pop(), nil
		}
		idx++
	}
}

// --- Symbolic semantics (core.Semantics) ---

// Sem is the stack machine's symbolic semantics.
type Sem struct {
	Ctx   *smt.Context
	Prog  *Program
	instN int
}

// NewSem builds the semantics for p.
func NewSem(ctx *smt.Context, p *Program) *Sem {
	return &Sem{Ctx: ctx, Prog: p}
}

type state struct {
	sem    *Sem
	instID int
	block  *Block
	idx    int
	stk    []*smt.Term
	vars   map[string]*smt.Term
	pc     *smt.Term
	final  bool
	ret    *smt.Term
}

var _ core.State = (*state)(nil)

// Loc implements core.State: block labels at block start (the compiler
// keeps IMP's labels, so cut locations coincide across the pair).
func (s *state) Loc() core.Location {
	if s.final {
		return "exit"
	}
	if s.idx == 0 {
		return core.Location(s.block.Label)
	}
	return core.Location(fmt.Sprintf("at:%s:%d", s.block.Label, s.idx))
}

// PathCond implements core.State.
func (s *state) PathCond() *smt.Term { return s.pc }

// MemTerm implements core.State (no memory).
func (s *state) MemTerm() *smt.Term { return nil }

// IsFinal implements core.State.
func (s *state) IsFinal() bool { return s.final }

// ErrorKind implements core.State.
func (s *state) ErrorKind() string { return "" }

// Observable implements core.State: variable names and "ret".
func (s *state) Observable(name string) (*smt.Term, error) {
	if name == "ret" {
		if s.ret == nil {
			return nil, fmt.Errorf("stack: no return value at %s", s.Loc())
		}
		return s.ret, nil
	}
	return s.read(name), nil
}

func (s *state) read(name string) *smt.Term {
	if t, ok := s.vars[name]; ok {
		return t
	}
	t := s.sem.Ctx.VarBV(fmt.Sprintf("stk!i%d!%s", s.instID, name), 32)
	s.vars[name] = t
	return t
}

func (s *state) clone() *state {
	vars := make(map[string]*smt.Term, len(s.vars))
	for k, v := range s.vars {
		vars[k] = v
	}
	stk := append([]*smt.Term(nil), s.stk...)
	n := *s
	n.vars = vars
	n.stk = stk
	return &n
}

// Instantiate implements core.Semantics.
func (sm *Sem) Instantiate(loc core.Location, presets map[string]*smt.Term, memT *smt.Term) (core.State, error) {
	sm.instN++
	b := sm.Prog.BlockByLabel(string(loc))
	if b == nil {
		return nil, fmt.Errorf("stack: cannot instantiate at %q", loc)
	}
	s := &state{sem: sm, instID: sm.instN, block: b, pc: sm.Ctx.True(),
		vars: make(map[string]*smt.Term, len(presets))}
	for k, v := range presets {
		s.vars[k] = v
	}
	return s, nil
}

// ObservableWidth implements core.Semantics.
func (sm *Sem) ObservableWidth(loc core.Location, name string) (uint8, error) {
	return 32, nil
}

// Step implements core.Semantics.
func (sm *Sem) Step(cs core.State) ([]core.State, error) {
	s, ok := cs.(*state)
	if !ok {
		return nil, fmt.Errorf("stack: foreign state %T", cs)
	}
	if s.final {
		return nil, nil
	}
	if s.idx >= len(s.block.Instrs) {
		return nil, fmt.Errorf("stack: fell off block %s", s.block.Label)
	}
	ctx := sm.Ctx
	in := s.block.Instrs[s.idx]
	n := s.clone()
	n.idx++
	pop := func() (*smt.Term, error) {
		if len(n.stk) == 0 {
			return nil, fmt.Errorf("stack: underflow at %s", s.Loc())
		}
		t := n.stk[len(n.stk)-1]
		n.stk = n.stk[:len(n.stk)-1]
		return t, nil
	}
	switch in.Op {
	case OpPush:
		n.stk = append(n.stk, ctx.BV(uint64(in.Imm), 32))
	case OpLoad:
		n.stk = append(n.stk, n.read(in.Var))
	case OpStore:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		n.vars[in.Var] = v
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpLt, OpEq:
		r, err := pop()
		if err != nil {
			return nil, err
		}
		l, err := pop()
		if err != nil {
			return nil, err
		}
		var v *smt.Term
		switch in.Op {
		case OpAdd:
			v = ctx.Add(l, r)
		case OpSub:
			v = ctx.Sub(l, r)
		case OpMul:
			v = ctx.Mul(l, r)
		case OpAnd:
			v = ctx.And(l, r)
		case OpOr:
			v = ctx.Or(l, r)
		case OpXor:
			v = ctx.Xor(l, r)
		case OpLt:
			v = ctx.Ite(ctx.Ult(l, r), ctx.BV(1, 32), ctx.BV(0, 32))
		default:
			v = ctx.Ite(ctx.Eq(l, r), ctx.BV(1, 32), ctx.BV(0, 32))
		}
		n.stk = append(n.stk, v)
	case OpJz:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		zero := ctx.Eq(v, ctx.BV(0, 32))
		nz := n // taken when zero
		nz.pc = ctx.AndB(s.pc, zero)
		nz.block = sm.Prog.BlockByLabel(in.Label)
		if nz.block == nil {
			return nil, fmt.Errorf("stack: jz to unknown label %s", in.Label)
		}
		nz.idx = 0
		fall := s.clone()
		fall.stk = append([]*smt.Term(nil), nz.stk...)
		fall.pc = ctx.AndB(s.pc, ctx.Not(zero))
		fall.idx = s.idx + 1
		return []core.State{nz, fall}, nil
	case OpJmp:
		n.block = sm.Prog.BlockByLabel(in.Label)
		if n.block == nil {
			return nil, fmt.Errorf("stack: jmp to unknown label %s", in.Label)
		}
		n.idx = 0
	case OpRet:
		v, err := pop()
		if err != nil {
			return nil, err
		}
		n.final = true
		n.ret = v
	}
	return []core.State{n}, nil
}

// SyncPoints builds the synchronization relation for an IMP→stack
// translation instance: entry (inputs equal), every loop head (all program
// variables equal), and exit (return values equal). The labels coincide on
// both sides by construction of the compiler.
func SyncPoints(p *imp.Program) []*core.SyncPoint {
	vars := p.Vars()
	varCons := make([]core.Constraint, len(vars))
	for i, v := range vars {
		varCons[i] = core.Constraint{Left: v, Right: v}
	}
	inCons := make([]core.Constraint, len(p.Inputs))
	for i, v := range p.Inputs {
		inCons[i] = core.Constraint{Left: v, Right: v}
	}
	points := []*core.SyncPoint{
		{ID: "p0", LocLeft: "entry", LocRight: "entry", Constraints: inCons},
		{ID: "pexit", LocLeft: "exit", LocRight: "exit", Exiting: true,
			Constraints: []core.Constraint{{Left: "ret", Right: "ret"}}},
	}
	for i, loc := range imp.LoopLocs(p) {
		points = append(points, &core.SyncPoint{
			ID: fmt.Sprintf("p_loop%d", i+1), LocLeft: loc, LocRight: loc,
			Constraints: varCons,
		})
	}
	return points
}
