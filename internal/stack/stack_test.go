package stack

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/imp"
	"repro/internal/smt"
)

// gcdProg computes gcd by repeated subtraction — loops plus branching.
const gcdProg = `
input a, b
a := (a | 1)
b := (b | 1)
while ((a == b) == 0) {
  if (a < b) {
    b := (b - a)
  } else {
    a := (a - b)
  }
}
return a
`

const sumProg = `
input n, k
n := (n & 63)
s := 0
i := 0
while (i < n) {
  s := (s + (i * k))
  i := (i + 1)
}
return s
`

const straightProg = `
input x, y
t := ((x + y) * 3)
u := (t ^ 255)
return (u - y)
`

func mustParse(t *testing.T, src string) *imp.Program {
	t.Helper()
	p, err := imp.Parse(src)
	if err != nil {
		t.Fatalf("imp.Parse: %v", err)
	}
	return p
}

func TestCompileAndEvalMatchIMP(t *testing.T) {
	for _, src := range []string{gcdProg, sumProg, straightProg} {
		p := mustParse(t, src)
		sp := Compile(p, Options{})
		f := func(a, b uint32) bool {
			inputs := map[string]uint32{}
			for i, name := range p.Inputs {
				inputs[name] = []uint32{a, b}[i%2]
			}
			want, err := imp.Eval(p, inputs)
			if err != nil {
				return false
			}
			got, err := Eval(sp, inputs)
			if err != nil {
				return false
			}
			return got == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%q: %v", src[:20], err)
		}
	}
}

func TestBuggyCompilersMiscompile(t *testing.T) {
	p := mustParse(t, gcdProg)
	bug := Compile(p, Options{BugSwapSub: true})
	inputs := map[string]uint32{"a": 12, "b": 18}
	want, _ := imp.Eval(p, inputs)
	got, err := Eval(bug, inputs)
	if err == nil && got == want {
		t.Fatalf("BugSwapSub produced a correct result (%d); expected miscompilation", got)
	}
}

// validatePair runs the SAME core checker used for LLVM/x86 on an
// IMP/stack pair.
func validatePair(t *testing.T, p *imp.Program, sp *Program, mode core.Mode) *core.Report {
	t.Helper()
	ctx := smt.NewContext()
	solver := smt.NewSolver(ctx)
	left := imp.NewSem(ctx, p)
	right := NewSem(ctx, sp)
	ck := core.NewChecker(solver, left, right, core.Options{Mode: mode})
	rep, err := ck.Run(SyncPoints(p))
	if err != nil {
		t.Fatalf("checker error: %v", err)
	}
	return rep
}

func TestKEQValidatesCrossLanguagePair(t *testing.T) {
	// The paper's language-parametricity claim: the identical checker
	// validates a totally different language pair.
	for _, src := range []string{gcdProg, sumProg, straightProg} {
		p := mustParse(t, src)
		rep := validatePair(t, p, Compile(p, Options{}), core.Equivalence)
		if rep.Verdict != core.Validated {
			t.Errorf("%q: verdict %v, failures %v", src[:20], rep.Verdict, rep.Failures)
		}
	}
}

func TestKEQCatchesBuggyCompilers(t *testing.T) {
	p := mustParse(t, gcdProg)
	rep := validatePair(t, p, Compile(p, Options{BugSwapSub: true}), core.Equivalence)
	if rep.Verdict != core.NotValidated {
		t.Errorf("BugSwapSub: verdict %v", rep.Verdict)
	}
	p2 := mustParse(t, sumProg)
	rep = validatePair(t, p2, Compile(p2, Options{BugSkipLoopStore: true}), core.Equivalence)
	if rep.Verdict != core.NotValidated {
		t.Errorf("BugSkipLoopStore: verdict %v", rep.Verdict)
	}
}

func TestStackProgramStructure(t *testing.T) {
	p := mustParse(t, sumProg)
	sp := Compile(p, Options{})
	if sp.Blocks[0].Label != "entry" {
		t.Errorf("entry label = %q", sp.Blocks[0].Label)
	}
	if sp.BlockByLabel("loop:1") == nil {
		t.Errorf("no loop:1 block:\n%s", sp)
	}
	// Round-trip sanity of the printer (no parser for stack programs; just
	// check determinism).
	if sp.String() != Compile(p, Options{}).String() {
		t.Errorf("compiler not deterministic")
	}
}

func TestIMPParser(t *testing.T) {
	p := mustParse(t, gcdProg)
	if len(p.Inputs) != 2 || p.NumLoops() != 1 {
		t.Fatalf("inputs=%v loops=%d", p.Inputs, p.NumLoops())
	}
	vars := p.Vars()
	if len(vars) != 2 { // a, b
		t.Errorf("vars = %v", vars)
	}
	got, err := imp.Eval(p, map[string]uint32{"a": 12, "b": 18})
	if err != nil {
		t.Fatal(err)
	}
	// gcd over odd-ified inputs: a|1=13, b|1=19, coprime → 1.
	if got != 1 {
		t.Errorf("gcd(13,19) = %d, want 1", got)
	}
	if _, err := imp.Parse("x := 1"); err == nil {
		t.Errorf("program without input line parsed")
	}
	if _, err := imp.Parse("input a\nwhile (a < 3 {\n}"); err == nil {
		t.Errorf("malformed while parsed")
	}
}

func TestIMPEvalLoopsAndIfs(t *testing.T) {
	p := mustParse(t, sumProg)
	got, err := imp.Eval(p, map[string]uint32{"n": 5, "k": 3})
	if err != nil {
		t.Fatal(err)
	}
	// sum i*3 for i in 0..4 = 30
	if got != 30 {
		t.Errorf("sum = %d, want 30", got)
	}
}

// TestRandomIMPPrograms: generated IMP programs all validate against their
// compilations, and all fail against a compiler with the sub-swap bug
// whenever the program contains a subtraction.
func TestRandomIMPPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := []string{"+", "-", "*", "&", "|", "^"}
	for trial := 0; trial < 12; trial++ {
		// Build a random structured program: a few assignments, one
		// conditional, one bounded loop.
		var b strings.Builder
		b.WriteString("input a, b\n")
		vars := []string{"a", "b"}
		pick := func() string { return vars[rng.Intn(len(vars))] }
		hasSub := false
		expr := func() string {
			op := ops[rng.Intn(len(ops))]
			if op == "-" {
				hasSub = true
			}
			return fmt.Sprintf("(%s %s %s)", pick(), op, pick())
		}
		for i := 0; i < 2+rng.Intn(3); i++ {
			v := fmt.Sprintf("t%d", i)
			fmt.Fprintf(&b, "%s := %s\n", v, expr())
			vars = append(vars, v)
		}
		fmt.Fprintf(&b, "if (%s < %s) {\n%s := %s\n} else {\n%s := %s\n}\n",
			pick(), pick(), vars[2], expr(), vars[2], expr())
		fmt.Fprintf(&b, "n := (%s & 15)\ni := 0\nwhile (i < n) {\n%s := %s\ni := (i + 1)\n}\n",
			pick(), vars[2], expr())
		fmt.Fprintf(&b, "return %s\n", vars[2])

		p, err := imp.Parse(b.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, b.String())
		}
		rep := validatePair(t, p, Compile(p, Options{}), core.Equivalence)
		if rep.Verdict != core.Validated {
			t.Fatalf("trial %d not validated: %v\n%s", trial, rep.Failures, b.String())
		}
		if hasSub {
			rep = validatePair(t, p, Compile(p, Options{BugSwapSub: true}), core.Equivalence)
			if rep.Verdict != core.NotValidated {
				// A swapped subtraction may coincidentally be equivalent
				// (e.g. x - x); only fail when operands differ — accept
				// Validated here but log it.
				t.Logf("trial %d: swapped sub still equivalent (degenerate operands)", trial)
			}
		}
	}
}
