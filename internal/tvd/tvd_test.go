package tvd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/proof"
	"repro/internal/telemetry"
)

// testCorpus is a small deterministic corpus shared by the e2e tests.
func testCorpus(n int) []corpus.Function {
	return corpus.Generate(corpus.Profile{
		Seed: 7, Functions: n, MeanSize: 2.0, SizeSigma: 0.5,
		LoopWeight: 0.3, BranchWeight: 0.5,
	})
}

func testBatch(fns []corpus.Function) *BatchRequest {
	req := &BatchRequest{MaxTermNodes: 3_000_000, Proofs: true}
	for _, f := range fns {
		req.Jobs = append(req.Jobs, JobRequest{Fn: f.Name, IR: f.Src})
	}
	return req
}

func newTestServer(t *testing.T, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// TestDaemonWarmStart is the tentpole e2e: a cold batch misses the
// store, the identical warm batch is served entirely from it with
// byte-identical class counts, the store-backed artifacts proofcheck
// clean, and the store survives a daemon restart.
func TestDaemonWarmStart(t *testing.T) {
	storeDir := t.TempDir()
	fns := testCorpus(6)
	req := testBatch(fns)

	s, hs := newTestServer(t, ServerConfig{Workers: 2, StoreDir: storeDir, WorkDir: t.TempDir()})
	c := NewClient(hs.URL)
	if err := c.Health(); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	var coldRows int
	cold, err := c.Validate(req, func(telemetry.Record) { coldRows++ })
	if err != nil {
		t.Fatalf("cold batch: %v", err)
	}
	if coldRows != len(fns) {
		t.Errorf("cold run streamed %d row records, want %d", coldRows, len(fns))
	}
	if cold.StoreHits != 0 || cold.StoreMisses != len(fns) {
		t.Errorf("cold run: %d hits / %d misses, want 0 / %d",
			cold.StoreHits, cold.StoreMisses, len(fns))
	}
	for i, row := range cold.Rows {
		if row.Cached {
			t.Errorf("cold row %d (%s) claims cached", i, row.Fn)
		}
		if row.ProofErr != "" {
			t.Errorf("cold row %d (%s): proof error: %s", i, row.Fn, row.ProofErr)
		}
		if row.Key == "" {
			t.Errorf("cold row %d (%s): no content key", i, row.Fn)
		}
		if row.StartedNS < row.SubmittedNS || row.FinishedNS < row.StartedNS {
			t.Errorf("cold row %d (%s): timestamps out of order: %d/%d/%d",
				i, row.Fn, row.SubmittedNS, row.StartedNS, row.FinishedNS)
		}
	}

	warmCached := 0
	warm, err := c.Validate(req, func(rec telemetry.Record) {
		if cached, _ := rec.Attrs["cached"].(bool); cached {
			warmCached++
		}
	})
	if err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	if hitRate := float64(warm.StoreHits) / float64(len(fns)); hitRate < 0.95 {
		t.Fatalf("warm run hit rate %.2f (%d/%d), want >= 0.95",
			hitRate, warm.StoreHits, len(fns))
	}
	if warmCached != warm.StoreHits {
		t.Errorf("warm run streamed %d cached rows, summary says %d hits", warmCached, warm.StoreHits)
	}
	// Byte-identical class counts: the acceptance criterion for the
	// certified-by-reference path.
	coldClasses, _ := json.Marshal(cold.Stats.Classes)
	warmClasses, _ := json.Marshal(warm.Stats.Classes)
	if !bytes.Equal(coldClasses, warmClasses) {
		t.Errorf("class counts diverge: cold %s warm %s", coldClasses, warmClasses)
	}
	for i := range warm.Rows {
		if warm.Rows[i].Class != cold.Rows[i].Class {
			t.Errorf("row %d (%s): cold class %q, warm class %q",
				i, cold.Rows[i].Fn, cold.Rows[i].Class, warm.Rows[i].Class)
		}
		if warm.Rows[i].Certified != cold.Rows[i].Certified {
			t.Errorf("row %d (%s): certified flips cold %t -> warm %t",
				i, cold.Rows[i].Fn, cold.Rows[i].Certified, warm.Rows[i].Certified)
		}
		if warm.Rows[i].Key != cold.Rows[i].Key {
			t.Errorf("row %d: content key unstable: %s vs %s",
				i, cold.Rows[i].Key, warm.Rows[i].Key)
		}
	}

	// The store-served artifacts must stand on their own: materialize the
	// warm batch into a directory and replay every certificate.
	proofDir := t.TempDir()
	if err := MaterializeProofs(proofDir, warm); err != nil {
		t.Fatalf("MaterializeProofs: %v", err)
	}
	report, err := proof.CheckDir(proofDir)
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	if len(report.Rejections) != 0 {
		t.Fatalf("store-backed proofs rejected (%d), first: %s",
			len(report.Rejections), report.Rejections[0])
	}
	if report.Functions != len(fns) {
		t.Errorf("proofcheck saw %d certificate files, want %d", report.Functions, len(fns))
	}

	snap, err := c.Metricsz()
	if err != nil {
		t.Fatalf("metricsz: %v", err)
	}
	if snap.StoreLen != len(fns) {
		t.Errorf("store holds %d entries, want %d", snap.StoreLen, len(fns))
	}
	if snap.Counters["store.hit"] < int64(warm.StoreHits) {
		t.Errorf("store.hit counter %d < %d warm hits", snap.Counters["store.hit"], warm.StoreHits)
	}
	if snap.Counters["tvd.batches"] != 2 {
		t.Errorf("tvd.batches = %d, want 2", snap.Counters["tvd.batches"])
	}
	s.Close()

	// The store is persistent: a fresh daemon on the same directory is
	// warm from its first request.
	s2, hs2 := newTestServer(t, ServerConfig{Workers: 2, StoreDir: storeDir, WorkDir: t.TempDir()})
	defer s2.Close()
	restart, err := NewClient(hs2.URL).Validate(req, nil)
	if err != nil {
		t.Fatalf("post-restart batch: %v", err)
	}
	if restart.StoreHits != len(fns) {
		t.Errorf("post-restart: %d hits, want %d", restart.StoreHits, len(fns))
	}
	restartClasses, _ := json.Marshal(restart.Stats.Classes)
	if !bytes.Equal(coldClasses, restartClasses) {
		t.Errorf("post-restart class counts diverge: cold %s restart %s", coldClasses, restartClasses)
	}
}

// TestDaemonTrace: a traced batch returns server-side spans that lint
// clean.
func TestDaemonTrace(t *testing.T) {
	s, hs := newTestServer(t, ServerConfig{Workers: 1, WorkDir: t.TempDir()})
	defer s.Close()
	req := testBatch(testCorpus(2))
	req.Proofs = false
	req.Trace = true
	res, err := NewClient(hs.URL).Validate(req, nil)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("Trace requested but summary carries no spans")
	}
	if err := telemetry.Lint(res.Trace); err != nil {
		t.Fatalf("trace lint: %v", err)
	}
}

// TestDaemonBackpressure: a batch larger than workers+queue is refused
// whole with 429 and a Retry-After header.
func TestDaemonBackpressure(t *testing.T) {
	s, hs := newTestServer(t, ServerConfig{Workers: 1, Queue: 1, WorkDir: t.TempDir()})
	defer s.Close()
	req := testBatch(testCorpus(3)) // maxInflight = 2

	body, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+PathValidate, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After header %q, want \"1\"", ra)
	}
	var ej ErrorJSON
	if err := json.NewDecoder(resp.Body).Decode(&ej); err != nil {
		t.Fatalf("error body: %v", err)
	}
	if ej.Error == "" || ej.RetryAfterSeconds != 1 {
		t.Errorf("error body %+v, want message and retry_after_seconds=1", ej)
	}

	// The client surfaces the refusal as ErrBusy when its retry budget is
	// exhausted (zero here).
	if _, err := NewClient(hs.URL).Validate(req, nil); err == nil {
		t.Fatal("client accepted a refused batch")
	} else if _, ok := err.(*ErrBusy); !ok {
		t.Fatalf("client error %T (%v), want *ErrBusy", err, err)
	}
}

// TestDaemonTenantBudget: per-tenant token budgets refuse a batch even
// when the global queue has room.
func TestDaemonTenantBudget(t *testing.T) {
	s, hs := newTestServer(t, ServerConfig{
		Workers: 2, Queue: 8, TenantBudget: 2, WorkDir: t.TempDir(),
	})
	defer s.Close()
	req := testBatch(testCorpus(3)) // 3 > TenantBudget 2, but < maxInflight 10
	req.Tenant = "small"
	_, err := NewClient(hs.URL).Validate(req, nil)
	busy, ok := err.(*ErrBusy)
	if !ok {
		t.Fatalf("error %T (%v), want *ErrBusy", err, err)
	}
	if busy.RetryAfter != time.Second {
		t.Errorf("RetryAfter %v, want 1s", busy.RetryAfter)
	}

	// A batch within the budget goes through.
	req2 := testBatch(testCorpus(2))
	req2.Tenant = "small"
	req2.Proofs = false
	if _, err := NewClient(hs.URL).Validate(req2, nil); err != nil {
		t.Fatalf("in-budget batch refused: %v", err)
	}
}

// TestClientChunking: ValidateAll splits a job list larger than the
// daemon's admission capacity into admissible batches and merges the
// results seamlessly — including warm-start store hits on the rerun.
func TestClientChunking(t *testing.T) {
	s, hs := newTestServer(t, ServerConfig{
		Workers: 1, Queue: 1, StoreDir: t.TempDir(), WorkDir: t.TempDir(),
	}) // MaxBatch = 2
	defer s.Close()
	fns := testCorpus(5)
	req := testBatch(fns)
	req.Proofs = false
	c := NewClient(hs.URL)

	// The whole list in one Validate call must be refused...
	if _, err := c.Validate(req, nil); err == nil {
		t.Fatal("oversized batch accepted whole")
	}
	// ...but ValidateAll chunks it through.
	rows := 0
	res, err := c.ValidateAll(req, func(telemetry.Record) { rows++ })
	if err != nil {
		t.Fatalf("ValidateAll: %v", err)
	}
	if rows != len(fns) {
		t.Errorf("streamed %d rows, want %d", rows, len(fns))
	}
	if len(res.Rows) != len(fns) || res.Stats.Functions != len(fns) {
		t.Fatalf("merged %d rows / %d stats functions, want %d",
			len(res.Rows), res.Stats.Functions, len(fns))
	}
	for i, row := range res.Rows {
		if row.Index != i || row.Fn != fns[i].Name {
			t.Errorf("row %d: index %d fn %s, want %d %s", i, row.Index, row.Fn, i, fns[i].Name)
		}
	}
	if res.StoreMisses != len(fns) {
		t.Errorf("cold chunked run: %d misses, want %d", res.StoreMisses, len(fns))
	}
	warm, err := c.ValidateAll(req, nil)
	if err != nil {
		t.Fatalf("warm ValidateAll: %v", err)
	}
	if warm.StoreHits != len(fns) {
		t.Errorf("warm chunked run: %d hits, want %d", warm.StoreHits, len(fns))
	}
	total := 0
	for _, n := range warm.Stats.Classes {
		total += n
	}
	if total != len(fns) {
		t.Errorf("merged class counts sum to %d, want %d", total, len(fns))
	}
}

// TestDaemonDrain: draining turns /healthz and /v1/validate into 503s,
// and Close joins the pool.
func TestDaemonDrain(t *testing.T) {
	s, hs := newTestServer(t, ServerConfig{Workers: 1, WorkDir: t.TempDir()})
	c := NewClient(hs.URL)
	if err := c.Health(); err != nil {
		t.Fatalf("healthz before drain: %v", err)
	}
	s.BeginDrain()
	if err := c.Health(); err == nil {
		t.Fatal("healthz still OK while draining")
	}
	req := testBatch(testCorpus(1))
	if _, err := c.Validate(req, nil); err == nil {
		t.Fatal("batch accepted while draining")
	}
	snap, err := c.Metricsz()
	if err != nil {
		t.Fatalf("metricsz while draining: %v", err)
	}
	if !snap.Draining {
		t.Error("metricsz does not report draining")
	}
	s.Close()
	s.Close() // idempotent
}

// TestJobKey: the content address tracks every semantic input and
// nothing else.
func TestJobKey(t *testing.T) {
	base := JobRequest{Fn: "f", IR: "module"}
	k := JobKey(base, 1000, 50)
	if k != JobKey(base, 1000, 50) {
		t.Fatal("JobKey not deterministic")
	}
	diff := []struct {
		name string
		key  interface{ Hex() string }
	}{
		{"fn", JobKey(JobRequest{Fn: "g", IR: "module"}, 1000, 50)},
		{"ir", JobKey(JobRequest{Fn: "f", IR: "module2"}, 1000, 50)},
		{"merge_stores", JobKey(JobRequest{Fn: "f", IR: "module", MergeStores: true}, 1000, 50)},
		{"nodes", JobKey(base, 2000, 50)},
		{"conflicts", JobKey(base, 1000, 51)},
	}
	seen := map[string]string{k.Hex(): "base"}
	for _, d := range diff {
		if prev, dup := seen[d.key.Hex()]; dup {
			t.Errorf("changing %s collides with %s", d.name, prev)
		}
		seen[d.key.Hex()] = d.name
	}
}
