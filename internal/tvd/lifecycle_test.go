package tvd

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/proof"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// entryFileFor locates the raw on-disk entry file for a row's content
// key — the byte-level tampering point for scrub tests.
func entryFileFor(t *testing.T, storeDir, keyHex string) string {
	t.Helper()
	var found string
	filepath.WalkDir(filepath.Join(storeDir, "objects"), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(filepath.Base(path), keyHex) &&
			strings.HasSuffix(path, ".tve") {
			found = path
		}
		return nil
	})
	if found == "" {
		t.Fatalf("no entry file for key %s under %s", keyHex, storeDir)
	}
	return found
}

// TestDaemonStoreLifecycle is the lifecycle e2e: a GC'd store still
// serves only intact entries with identical verdicts, and a
// semantically tampered entry (valid CRCs, broken certificates — the
// rot only end-to-end replay can catch) is quarantined by ScrubOnce and
// revalidated to the same class afterwards.
func TestDaemonStoreLifecycle(t *testing.T) {
	storeDir := t.TempDir()
	fns := testCorpus(6)
	req := testBatch(fns)

	// Scrub runs in the background throughout (CRC-only, so it cannot
	// quarantine intact entries); the end-to-end pass below is explicit.
	s, hs := newTestServer(t, ServerConfig{
		Workers: 2, StoreDir: storeDir, WorkDir: t.TempDir(),
		ScrubInterval: 20 * time.Millisecond, ScrubSample: 64,
	})
	defer s.Close()
	c := NewClient(hs.URL)

	cold, err := c.Validate(req, nil)
	if err != nil {
		t.Fatalf("cold batch: %v", err)
	}
	coldClasses, _ := json.Marshal(cold.Stats.Classes)
	if s.store.Len() != len(fns) {
		t.Fatalf("store holds %d entries after cold run, want %d", s.store.Len(), len(fns))
	}

	// GC to two thirds of current usage: some entries must go, the rest
	// must stay whole.
	budget := s.store.Usage() * 2 / 3
	res := s.store.GC(budget)
	if res.Evicted == 0 || res.BytesAfter > budget {
		t.Fatalf("GC: %+v under budget %d", res, budget)
	}
	survivors := s.store.Len()
	if survivors == 0 || survivors >= len(fns) {
		t.Fatalf("GC left %d of %d entries; the test needs a partial eviction", survivors, len(fns))
	}

	// Warm run over the GC'd store: exactly the survivors hit, evicted
	// keys revalidate, and the class counts are byte-identical.
	warm, err := c.Validate(req, nil)
	if err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	if warm.StoreHits != survivors {
		t.Fatalf("warm run: %d hits, want %d (the GC survivors)", warm.StoreHits, survivors)
	}
	if warmClasses, _ := json.Marshal(warm.Stats.Classes); !bytes.Equal(coldClasses, warmClasses) {
		t.Fatalf("classes diverge after GC: cold %s warm %s", coldClasses, warmClasses)
	}
	// The mixed hit/revalidated artifact set still replays with zero
	// rejections — GC and scrub never trade away re-checkability.
	proofDir := t.TempDir()
	if err := MaterializeProofs(proofDir, warm); err != nil {
		t.Fatalf("MaterializeProofs: %v", err)
	}
	report, err := proof.CheckDir(proofDir)
	if err != nil {
		t.Fatalf("CheckDir: %v", err)
	}
	if len(report.Rejections) != 0 {
		t.Fatalf("warm-over-GC'd-store proofs rejected (%d), first: %s",
			len(report.Rejections), report.Rejections[0])
	}

	// Semantic tamper: re-encode one entry with a corrupted artifact.
	// The CRCs are freshly computed over the damaged bytes, so Get still
	// hits — only certificate replay can catch this.
	keys := s.store.Keys()
	var tampered store.Key
	var hadArtifacts bool
	for _, k := range keys {
		e, err := s.store.Peek(k)
		if err != nil || len(e.Artifacts) == 0 {
			continue
		}
		for i := range e.Artifacts {
			e.Artifacts[i].Data = []byte("certificate rot")
		}
		if err := s.store.Put(k, e); err != nil {
			t.Fatal(err)
		}
		tampered, hadArtifacts = k, true
		break
	}
	if !hadArtifacts {
		t.Fatal("no stored entry carries artifacts; cannot exercise end-to-end scrub")
	}
	if _, ok := s.store.Get(tampered); !ok {
		t.Fatal("semantic tamper must survive the CRC check (that is the point)")
	}
	st := s.store.ScrubOnce(store.ScrubConfig{Fraction: 1})
	if st.Quarantined != 1 {
		t.Fatalf("ScrubOnce over semantically tampered store: %+v, want 1 quarantined", st)
	}
	if _, ok := s.store.Get(tampered); ok {
		t.Fatal("quarantined entry still served")
	}

	// The quarantined key revalidates on the next run and the batch ends
	// at the same verdicts as the cold run.
	final, err := c.Validate(req, nil)
	if err != nil {
		t.Fatalf("post-scrub batch: %v", err)
	}
	if finalClasses, _ := json.Marshal(final.Stats.Classes); !bytes.Equal(coldClasses, finalClasses) {
		t.Fatalf("classes diverge after quarantine: cold %s final %s", coldClasses, finalClasses)
	}
	snap, err := c.Metricsz()
	if err != nil {
		t.Fatal(err)
	}
	if snap.StoreQuarantined != 1 || snap.StoreBytes <= 0 {
		t.Fatalf("metricsz lifecycle gauges: quarantined=%d bytes=%d", snap.StoreQuarantined, snap.StoreBytes)
	}
}

// TestDaemonStoreBudget: a daemon with -store-max-bytes keeps the store
// under budget across batches via synchronous overflow GC.
func TestDaemonStoreBudget(t *testing.T) {
	storeDir := t.TempDir()
	fns := testCorpus(6)
	req := testBatch(fns)

	// First learn how big the full corpus is on disk.
	s0, hs0 := newTestServer(t, ServerConfig{Workers: 2, StoreDir: storeDir, WorkDir: t.TempDir()})
	if _, err := NewClient(hs0.URL).Validate(req, nil); err != nil {
		t.Fatal(err)
	}
	full := s0.store.Usage()
	s0.Close()

	// A budgeted daemon over the same directory enforces the bound at
	// startup and on every overflowing Put.
	budget := full / 2
	s, hs := newTestServer(t, ServerConfig{
		Workers: 2, StoreDir: storeDir, WorkDir: t.TempDir(),
		StoreMaxBytes: budget, GCInterval: time.Hour, // periodic GC out of the picture
	})
	defer s.Close()
	if u := s.store.Usage(); u > budget {
		t.Fatalf("startup GC left usage %d over budget %d", u, budget)
	}
	if _, err := NewClient(hs.URL).Validate(req, nil); err != nil {
		t.Fatal(err)
	}
	if u := s.store.Usage(); u > budget {
		t.Fatalf("usage %d over budget %d after a refilling batch", u, budget)
	}
	snap, err := NewClient(hs.URL).Metricsz()
	if err != nil {
		t.Fatal(err)
	}
	if snap.StoreMaxBytes != budget || snap.Counters["store.gc.runs"] == 0 {
		t.Fatalf("lifecycle metrics: max_bytes=%d gc.runs=%d", snap.StoreMaxBytes, snap.Counters["store.gc.runs"])
	}
}

// TestDaemonBackgroundScrub: the daemon's background scrubber finds a
// byte-tampered entry on its own and pulls it from service, and Close
// stops the scrubber cleanly.
func TestDaemonBackgroundScrub(t *testing.T) {
	storeDir := t.TempDir()
	s, hs := newTestServer(t, ServerConfig{
		Workers: 2, StoreDir: storeDir, WorkDir: t.TempDir(),
		ScrubInterval: 2 * time.Millisecond, ScrubSample: 64,
	})
	c := NewClient(hs.URL)
	req := testBatch(testCorpus(4))
	res, err := c.Validate(req, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the tail of a stored entry (an artifact body).
	path := entryFileFor(t, storeDir, res.Rows[0].Key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for s.store.QuarantineLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never quarantined the tampered entry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	snap, err := c.Metricsz()
	if err != nil {
		t.Fatal(err)
	}
	if snap.StoreQuarantined != 1 || snap.Counters["store.scrub.quarantined"] != 1 {
		t.Fatalf("scrub metrics: gauge=%d counter=%d", snap.StoreQuarantined, snap.Counters["store.scrub.quarantined"])
	}
	s.Close() // must stop the scrubber goroutine and return

	k, err := store.KeyFromHex(res.Rows[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	if s.store.Contains(k) {
		t.Fatal("tampered key still readable after quarantine")
	}
}

// TestProofDirFailure: when per-job proof directories cannot be
// created, the batch still validates (uncertified) and every row
// surfaces the creation error in proof_err — the operator-visible
// signal that certificates are silently missing.
func TestProofDirFailure(t *testing.T) {
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s, hs := newTestServer(t, ServerConfig{Workers: 1, WorkDir: notADir})
	defer s.Close()
	fns := testCorpus(2)
	res, err := NewClient(hs.URL).Validate(testBatch(fns), nil)
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i, row := range res.Rows {
		if row.Class == "" {
			t.Errorf("row %d (%s): no verdict — proof-dir failure must not fail validation", i, row.Fn)
		}
		if row.Certified {
			t.Errorf("row %d (%s): certified without a proof dir", i, row.Fn)
		}
		if row.ProofErr == "" {
			t.Errorf("row %d (%s): proof-dir creation failure not surfaced in proof_err", i, row.Fn)
		}
	}
	if res.Stats.CertFailed != len(fns) {
		t.Errorf("CertFailed = %d, want %d", res.Stats.CertFailed, len(fns))
	}
	snap, err := NewClient(hs.URL).Metricsz()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["tvd.proofdir_fail"] != int64(len(fns)) {
		t.Errorf("tvd.proofdir_fail = %d, want %d", snap.Counters["tvd.proofdir_fail"], len(fns))
	}
}

// TestDrainAdmissionRace hammers the Close/admission ordering: every
// request either completes normally or is refused with 503 — never
// admitted into a pool that Close already joined. handleValidate
// registers with the in-flight group before reading the drain flag,
// which is what makes Close's wait cover late-arriving batches.
func TestDrainAdmissionRace(t *testing.T) {
	s, hs := newTestServer(t, ServerConfig{Workers: 2, WorkDir: t.TempDir()})
	req := testBatch(testCorpus(1))
	req.Proofs = false
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			_, err := NewClient(hs.URL).Validate(req, nil)
			done <- err
		}()
	}
	time.Sleep(time.Millisecond)
	s.Close()
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil && !strings.Contains(err.Error(), "draining") {
			t.Errorf("request during drain: %v (want success or a draining 503)", err)
		}
	}
}

// TestMergeStatsCoversEverySMTField sets every numeric field of
// StatsJSON.SMT to a distinct value and checks mergeStats carries each
// one. Adding a field to SMTStatsJSON without a merge line in client.go
// (or a mapping in summary.go — same family of bug) fails this test by
// construction.
func TestMergeStatsCoversEverySMTField(t *testing.T) {
	var src harness.StatsJSON
	sv := reflect.ValueOf(&src.SMT).Elem()
	st := sv.Type()
	for i := 0; i < sv.NumField(); i++ {
		switch f := sv.Field(i); f.Kind() {
		case reflect.Int64:
			f.SetInt(int64(1000 + i))
		case reflect.Float64:
			f.SetFloat(float64(1000 + i))
		default:
			t.Fatalf("SMTStatsJSON.%s has kind %s — teach this test (and mergeStats) about it",
				st.Field(i).Name, f.Kind())
		}
	}
	dst := &harness.StatsJSON{Classes: map[string]int{}}
	mergeStats(dst, &src)
	dv := reflect.ValueOf(dst.SMT)
	wv := reflect.ValueOf(src.SMT)
	for i := 0; i < dv.NumField(); i++ {
		if !reflect.DeepEqual(dv.Field(i).Interface(), wv.Field(i).Interface()) {
			t.Errorf("mergeStats drops SMTStatsJSON.%s: got %v, want %v — add its merge line in client.go",
				st.Field(i).Name, dv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
	// Merging a second chunk must sum, not overwrite.
	mergeStats(dst, &src)
	dv = reflect.ValueOf(dst.SMT)
	for i := 0; i < dv.NumField(); i++ {
		var want any
		switch f := wv.Field(i); f.Kind() {
		case reflect.Int64:
			want = f.Int() * 2
			if dv.Field(i).Int() != want {
				t.Errorf("SMTStatsJSON.%s after two chunks: got %d, want %d (assignment instead of +=?)",
					st.Field(i).Name, dv.Field(i).Int(), want)
			}
		case reflect.Float64:
			want = f.Float() * 2
			if dv.Field(i).Float() != want {
				t.Errorf("SMTStatsJSON.%s after two chunks: got %v, want %v",
					st.Field(i).Name, dv.Field(i).Float(), want)
			}
		}
	}
}

// TestChunkedTraceLint: a traced ValidateAll over multiple batches
// yields one merged trace with globally unique, properly nested span
// IDs — the concatenation re-bases every batch's IDs. Streamed row
// records share the re-based ID space and must not collide either.
func TestChunkedTraceLint(t *testing.T) {
	s, hs := newTestServer(t, ServerConfig{
		Workers: 1, Queue: 1, WorkDir: t.TempDir(),
	}) // MaxBatch = 2 -> 5 jobs = 3 batches
	defer s.Close()
	req := testBatch(testCorpus(5))
	req.Proofs = false
	req.Trace = true

	seen := map[telemetry.SpanID]bool{}
	res, err := NewClient(hs.URL).ValidateAll(req, func(rec telemetry.Record) {
		if seen[rec.ID] {
			t.Errorf("streamed row span id %d duplicated across batches", rec.ID)
		}
		seen[rec.ID] = true
	})
	if err != nil {
		t.Fatalf("ValidateAll: %v", err)
	}
	if len(seen) != 5 {
		t.Errorf("streamed %d distinct row ids, want 5", len(seen))
	}
	if len(res.Trace) == 0 {
		t.Fatal("traced chunked run returned no spans")
	}
	if err := telemetry.Lint(res.Trace); err != nil {
		t.Fatalf("merged multi-batch trace fails lint: %v", err)
	}
}

// TestMergeStatsChunkParity: merging two half-batches equals the
// one-batch totals on every summed field, cube/race statistics
// included.
func TestMergeStatsChunkParity(t *testing.T) {
	mk := func(scale int64) *harness.StatsJSON {
		s := &harness.StatsJSON{
			Functions: int(scale), WallSeconds: float64(scale), CPUSeconds: float64(2 * scale),
			Classes:   map[string]int{"Succeeded": int(scale)},
			Certified: int(scale), CertFailed: 0,
			Counters: map[string]int64{"tvd.jobs": scale},
		}
		sv := reflect.ValueOf(&s.SMT).Elem()
		for i := 0; i < sv.NumField(); i++ {
			switch f := sv.Field(i); f.Kind() {
			case reflect.Int64:
				f.SetInt(scale * int64(i+1))
			case reflect.Float64:
				f.SetFloat(float64(scale * int64(i+1)))
			}
		}
		return s
	}
	chunked := &harness.StatsJSON{Classes: map[string]int{}}
	mergeStats(chunked, mk(3))
	mergeStats(chunked, mk(4))
	whole := mk(7)
	if !reflect.DeepEqual(chunked.SMT, whole.SMT) {
		t.Fatalf("chunked SMT stats diverge from unchunked:\nchunked: %+v\nwhole:   %+v", chunked.SMT, whole.SMT)
	}
	if chunked.Functions != whole.Functions || chunked.Certified != whole.Certified ||
		chunked.Classes["Succeeded"] != whole.Classes["Succeeded"] ||
		chunked.Counters["tvd.jobs"] != whole.Counters["tvd.jobs"] {
		t.Fatalf("chunked batch-level stats diverge: %+v vs %+v", chunked, whole)
	}
}
