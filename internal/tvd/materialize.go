package tvd

import (
	"repro/internal/proof"
	"repro/internal/store"
)

// MaterializeProofs writes the batch's certificate artifacts into dir
// as a proofcheck-able directory: every row's artifact files plus a
// MANIFEST.json recording each function's class and certification. The
// rows must have been requested with BatchRequest.Proofs. Store-served
// rows materialize their stored artifacts, so a fully warm batch still
// produces a directory cmd/proofcheck verifies from scratch — the
// certified-by-reference path.
func MaterializeProofs(dir string, result *BatchResult) error {
	manifest := proof.Manifest{Schema: proof.SchemaStreaming}
	for _, row := range result.Rows {
		arts := make([]store.Artifact, 0, len(row.Artifacts))
		for _, a := range row.Artifacts {
			arts = append(arts, store.Artifact{Name: a.Name, Data: a.Data})
		}
		if err := store.MaterializeEntry(dir, &store.Entry{Artifacts: arts}); err != nil {
			return err
		}
		manifest.Functions = append(manifest.Functions, proof.ManifestRow{
			Name: row.Fn, Class: row.Class, Certified: row.Certified,
		})
	}
	return proof.WriteManifest(dir, &manifest)
}
