package tvd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/telemetry"
)

// Client talks to one tvd daemon.
type Client struct {
	base string
	hc   *http.Client
	// RetryBudget bounds how long Validate keeps retrying 429 responses
	// (honoring Retry-After) before giving up; 0 disables retries.
	RetryBudget time.Duration
}

// NewClient returns a client for addr ("host:port" or a full
// "http://..." base URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// ErrBusy is returned when the daemon refused the batch with 429 and
// the retry budget (if any) ran out.
type ErrBusy struct {
	Message    string
	RetryAfter time.Duration
}

func (e *ErrBusy) Error() string {
	return fmt.Sprintf("tvd: server busy: %s (retry after %s)", e.Message, e.RetryAfter)
}

// Health checks /healthz.
func (c *Client) Health() error {
	resp, err := c.hc.Get(c.base + PathHealthz)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tvd: health: %s", resp.Status)
	}
	return nil
}

// Metricsz fetches the daemon's metrics snapshot.
func (c *Client) Metricsz() (*MetricsSnapshot, error) {
	resp, err := c.hc.Get(c.base + PathMetricsz)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("tvd: metricsz: %v", err)
	}
	return &snap, nil
}

// ValidateAll validates an arbitrarily large job list by splitting it
// into batches the daemon's admission control can accept (its
// advertised max_batch, from /metricsz) and merging the per-batch
// results into one: rows keep their original indices, store traffic and
// statistics are summed, traces concatenate. Batches run sequentially —
// inside each one the daemon's pool provides the parallelism.
func (c *Client) ValidateAll(req *BatchRequest, onRow func(telemetry.Record)) (*BatchResult, error) {
	chunk := len(req.Jobs)
	if snap, err := c.Metricsz(); err == nil && snap.MaxBatch > 0 && snap.MaxBatch < chunk {
		chunk = snap.MaxBatch
	}
	if len(req.Jobs) <= chunk {
		return c.Validate(req, onRow)
	}
	merged := &BatchResult{Stats: &harness.StatsJSON{Classes: map[string]int{}}}
	// Each batch's records carry span IDs from a fresh per-batch tracer
	// (1, 2, 3, ...), so concatenating them verbatim would duplicate IDs
	// and fail tracelint. Every batch's IDs — streamed rows and the
	// trace in the summary alike — are offset by the running maximum.
	var maxSpanID telemetry.SpanID
	for start := 0; start < len(req.Jobs); start += chunk {
		end := start + chunk
		if end > len(req.Jobs) {
			end = len(req.Jobs)
		}
		sub := *req
		sub.Jobs = req.Jobs[start:end]
		offset := start
		idOffset := maxSpanID
		var batchMax telemetry.SpanID
		rebase := func(rec *telemetry.Record) {
			rec.ID += idOffset
			if rec.Parent != 0 {
				rec.Parent += idOffset
			}
			if rec.ID > batchMax {
				batchMax = rec.ID
			}
		}
		res, err := c.Validate(&sub, func(rec telemetry.Record) {
			rebase(&rec)
			if onRow == nil {
				return
			}
			// Re-base the per-batch row index onto the whole job list.
			if i, ok := rec.Attrs["index"].(float64); ok {
				rec.Attrs["index"] = i + float64(offset)
			}
			onRow(rec)
		})
		if err != nil {
			return nil, fmt.Errorf("tvd: batch %d-%d: %w", start, end-1, err)
		}
		for _, row := range res.Rows {
			row.Index += offset
			merged.Rows = append(merged.Rows, row)
		}
		merged.StoreHits += res.StoreHits
		merged.StoreMisses += res.StoreMisses
		for i := range res.Trace {
			rebase(&res.Trace[i])
			merged.Trace = append(merged.Trace, res.Trace[i])
		}
		mergeStats(merged.Stats, res.Stats)
		if batchMax > maxSpanID {
			maxSpanID = batchMax
		}
	}
	return merged, nil
}

// mergeStats accumulates src into dst. Wall times add (batches run one
// after another) and the speedup is recomputed; latency quantiles do
// not compose across batches and are dropped.
func mergeStats(dst, src *harness.StatsJSON) {
	if src == nil {
		return
	}
	dst.Functions += src.Functions
	if src.Workers > dst.Workers {
		dst.Workers = src.Workers
	}
	dst.WallSeconds += src.WallSeconds
	dst.CPUSeconds += src.CPUSeconds
	if dst.WallSeconds > 0 {
		dst.Speedup = dst.CPUSeconds / dst.WallSeconds
	}
	for class, n := range src.Classes {
		dst.Classes[class] += n
	}
	dst.Certified += src.Certified
	dst.CertFailed += src.CertFailed
	for name, v := range src.Counters {
		if dst.Counters == nil {
			dst.Counters = map[string]int64{}
		}
		dst.Counters[name] += v
	}
	a, b := &dst.SMT, &src.SMT
	a.Queries += b.Queries
	a.FastQueries += b.FastQueries
	a.CacheHits += b.CacheHits
	a.CacheMisses += b.CacheMisses
	a.CacheBytes += b.CacheBytes
	a.Conflicts += b.Conflicts
	a.Decisions += b.Decisions
	a.Clauses += b.Clauses
	a.SolveSeconds += b.SolveSeconds
	a.ProofBytes += b.ProofBytes
	a.Certificates += b.Certificates
	a.SubsumedClauses += b.SubsumedClauses
	a.StrengthenedClauses += b.StrengthenedClauses
	a.VivifiedClauses += b.VivifiedClauses
	a.EliminatedVars += b.EliminatedVars
	a.Races += b.Races
	a.RaceRacerWins += b.RaceRacerWins
	a.RaceTokens += b.RaceTokens
	a.RaceWastedConflicts += b.RaceWastedConflicts
	a.RaceWastedProps += b.RaceWastedProps
	a.CubeEscalations += b.CubeEscalations
	a.CubesGenerated += b.CubesGenerated
	a.CubesRefuted += b.CubesRefuted
	a.CubesSat += b.CubesSat
	a.CubeSteals += b.CubeSteals
}

// Validate submits one batch and consumes the streaming response.
// onRow, when non-nil, is called for each tvd.row progress record as it
// arrives (in completion order). The returned BatchResult carries every
// row in request order. 429 responses are retried within RetryBudget,
// sleeping the server-provided Retry-After between attempts.
func (c *Client) Validate(req *BatchRequest, onRow func(telemetry.Record)) (*BatchResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.RetryBudget)
	for {
		res, retry, err := c.validateOnce(body, onRow)
		if err == nil {
			return res, nil
		}
		if _, ok := err.(*ErrBusy); ok && c.RetryBudget > 0 && time.Now().Add(retry).Before(deadline) {
			time.Sleep(retry)
			continue
		}
		return nil, err
	}
}

// validateOnce performs one POST attempt. On 429 it returns an *ErrBusy
// and the server's suggested wait.
func (c *Client) validateOnce(body []byte, onRow func(telemetry.Record)) (*BatchResult, time.Duration, error) {
	resp, err := c.hc.Post(c.base+PathValidate, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		wait := time.Second
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
			wait = time.Duration(ra) * time.Second
		}
		var ej ErrorJSON
		json.NewDecoder(resp.Body).Decode(&ej)
		return nil, wait, &ErrBusy{Message: ej.Error, RetryAfter: wait}
	}
	if resp.StatusCode != http.StatusOK {
		var ej ErrorJSON
		json.NewDecoder(resp.Body).Decode(&ej)
		if ej.Error == "" {
			ej.Error = resp.Status
		}
		return nil, 0, fmt.Errorf("tvd: %s", ej.Error)
	}

	// The stream is JSONL telemetry records; the summary line can carry
	// megabytes of base64 artifacts, so the scanner buffer is generous.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<28)
	var result *BatchResult
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec telemetry.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, 0, fmt.Errorf("tvd: bad stream line: %v", err)
		}
		switch rec.Name {
		case RecordRow:
			if onRow != nil {
				onRow(rec)
			}
		case RecordSummary:
			raw, _ := rec.Attrs[AttrResult].(string)
			if raw == "" {
				return nil, 0, fmt.Errorf("tvd: summary record without %s", AttrResult)
			}
			var br BatchResult
			if err := json.Unmarshal([]byte(raw), &br); err != nil {
				return nil, 0, fmt.Errorf("tvd: bad summary payload: %v", err)
			}
			result = &br
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("tvd: reading stream: %v", err)
	}
	if result == nil {
		return nil, 0, fmt.Errorf("tvd: stream ended without a summary record")
	}
	return result, 0, nil
}
