// Package tvd is validation-as-a-service: a long-running HTTP daemon
// that validates batches of (IR, function, hints) jobs on a warm
// harness.Pool and remembers every verdict — with its certificate
// artifacts — in a content-addressed result store (internal/store).
//
// The wire protocol is deliberately small. One POST /v1/validate call
// carries a BatchRequest and streams back newline-delimited JSON in the
// telemetry span format (telemetry.Record): one "tvd.row" record per
// completed function, in completion order, then one final "tvd.summary"
// record whose result_json attribute carries the BatchResult. A client
// that only wants progress tails the rows; a client that wants the
// verdicts parses the last line. GET /healthz and GET /metricsz serve
// liveness and the metrics snapshot.
//
// Admission control is upfront: a request is either rejected whole with
// 429 (tenant token budget exhausted, or the daemon's bounded job queue
// full — the Retry-After header says when to come back) or accepted
// whole, so a caller never learns mid-stream that half its batch was
// refused.
package tvd

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/tv"
)

// Wire constants.
const (
	// PathValidate accepts BatchRequest POSTs.
	PathValidate = "/v1/validate"
	// PathHealthz reports liveness (503 while draining).
	PathHealthz = "/healthz"
	// PathMetricsz serves the MetricsSnapshot.
	PathMetricsz = "/metricsz"

	// RecordRow names the per-function progress record of a response
	// stream; its start/duration place the function on the batch
	// timeline (nanosecond offsets from the batch epoch).
	RecordRow = "tvd.row"
	// RecordSummary names the final record; its result_json attribute
	// holds the marshaled BatchResult.
	RecordSummary = "tvd.summary"
	// AttrResult is the summary-record attribute carrying the
	// JSON-encoded BatchResult.
	AttrResult = "result_json"
)

// JobRequest is one function validation job.
type JobRequest struct {
	// Fn is the name of the function to validate inside IR.
	Fn string `json:"fn"`
	// IR is the full LLVM IR module text.
	IR string `json:"ir"`
	// MergeStores is the instruction-selection hint (isel.Options); it is
	// part of the job's content address.
	MergeStores bool `json:"merge_stores,omitempty"`
}

// BatchRequest is the body of POST /v1/validate.
type BatchRequest struct {
	// Tenant names the client for token budgeting ("" is the shared
	// default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Jobs is the batch; admission is all-or-nothing.
	Jobs []JobRequest `json:"jobs"`

	// Budget, applied per function. TimeoutSeconds bounds wall clock and
	// is deliberately NOT part of the content address (see JobKey);
	// MaxTermNodes and ConflictBudget are deterministic and are.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	MaxTermNodes   uint64  `json:"max_term_nodes,omitempty"`
	ConflictBudget int64   `json:"conflict_budget,omitempty"`

	// Proofs asks for each row's certificate artifacts in the response,
	// so the client can materialize a proofcheck-able directory.
	Proofs bool `json:"proofs,omitempty"`
	// Trace asks for the server-side span trace of the batch in the
	// response summary.
	Trace bool `json:"trace,omitempty"`
}

// ArtifactJSON is one certificate file of a row ([]byte marshals as
// base64).
type ArtifactJSON struct {
	Name string `json:"name"`
	Data []byte `json:"data"`
}

// RowJSON is one function's result. Timestamps are nanosecond offsets
// from the batch epoch (integer offsets survive JSON exactly; absolute
// float seconds would not).
type RowJSON struct {
	Index     int    `json:"index"`
	Fn        string `json:"fn"`
	Class     string `json:"class"`
	Err       string `json:"err,omitempty"`
	CodeSize  int    `json:"code_size"`
	Certified bool   `json:"certified"`
	ProofErr  string `json:"proof_err,omitempty"`
	// Cached reports the row was served from the result store without
	// re-validating; its certificates are the stored ones.
	Cached bool `json:"cached"`
	// Key is the job's content address in the store (hex).
	Key string `json:"key"`

	SubmittedNS int64 `json:"submitted_ns"`
	StartedNS   int64 `json:"started_ns"`
	FinishedNS  int64 `json:"finished_ns"`
	DurationNS  int64 `json:"duration_ns"`

	// Artifacts carries the row's certificate files when the request set
	// Proofs.
	Artifacts []ArtifactJSON `json:"artifacts,omitempty"`
}

// BatchResult is the final payload of a batch: every row (in request
// order), the run statistics, and the store traffic the batch caused.
type BatchResult struct {
	Rows  []RowJSON          `json:"rows"`
	Stats *harness.StatsJSON `json:"stats"`
	// StoreHits/StoreMisses count this batch's jobs served from /
	// missing the result store (both zero when the daemon runs without
	// a store).
	StoreHits   int `json:"store_hits"`
	StoreMisses int `json:"store_misses"`
	// Trace is the server-side span trace (only when requested).
	Trace []telemetry.Record `json:"trace,omitempty"`
}

// ErrorJSON is the body of a non-200 response.
type ErrorJSON struct {
	Error string `json:"error"`
	// RetryAfterSeconds mirrors the Retry-After header on 429s.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// MetricsSnapshot is the body of GET /metricsz.
type MetricsSnapshot struct {
	Counters map[string]int64                `json:"counters"`
	Hists    map[string]*harness.LatencyJSON `json:"hists"`
	// StoreLen is the number of entries in the result store (-1 without
	// a store). StoreBytes is the total entry-payload size and
	// StoreMaxBytes the configured GC budget (0 = unbounded);
	// StoreQuarantined counts entries the scrubber has moved into
	// quarantine/ (served as clean misses).
	StoreLen         int   `json:"store_len"`
	StoreBytes       int64 `json:"store_bytes,omitempty"`
	StoreMaxBytes    int64 `json:"store_max_bytes,omitempty"`
	StoreQuarantined int   `json:"store_quarantined,omitempty"`
	Draining         bool  `json:"draining"`
	// Workers is the validation pool size; MaxBatch is the largest batch
	// admission can ever accept (min of queue capacity and tenant
	// budget). Clients with more jobs than MaxBatch split them into
	// MaxBatch-sized requests (Client.ValidateAll does this).
	Workers  int `json:"workers"`
	MaxBatch int `json:"max_batch"`
}

// keyVersion stamps the content-address derivation; bump it whenever
// the validator's semantics change incompatibly (old entries then
// simply miss).
const keyVersion = "tvd/v1"

// JobKey derives the content address of one job from its semantic
// inputs: the pipeline version, the function, the module text, the ISel
// hints, and the deterministic budget knobs. The wall-clock timeout is
// excluded — it cannot change a deterministic verdict, only produce
// Timeout rows, and those are never stored (see storableClass).
func JobKey(j JobRequest, maxTermNodes uint64, conflictBudget int64) store.Key {
	return store.FunctionKey(
		keyVersion,
		j.Fn,
		j.IR,
		fmt.Sprintf("merge_stores=%t", j.MergeStores),
		fmt.Sprintf("nodes=%d;conflicts=%d", maxTermNodes, conflictBudget),
	)
}

// storableClass reports whether a verdict class is deterministic enough
// to remember. Timeout depends on wall clock and machine load; caching
// it would let a slow day poison every future run.
func storableClass(c tv.Class) bool {
	return c != tv.ClassTimeout
}
