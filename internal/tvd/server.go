package tvd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/harness"
	"repro/internal/isel"
	"repro/internal/proof"
	"repro/internal/smt"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/tv"
)

// ServerConfig sizes the daemon.
type ServerConfig struct {
	// Workers is the validation pool size (0 = 1... callers usually pass
	// runtime.GOMAXPROCS(0)).
	Workers int
	// Queue is the pool's bounded job-queue capacity (default 2×Workers).
	Queue int
	// StoreDir, when non-empty, enables the persistent result store.
	StoreDir string
	// StoreMaxBytes, when > 0, byte-bounds the store: Put overflow runs
	// a synchronous LRU GC (oldest access evicted first, whole entries
	// only) and the daemon re-runs GC every GCInterval as a backstop
	// against growth the gauge missed (other writers, manual copies).
	StoreMaxBytes int64
	// GCInterval paces the periodic GC (default 30s; only used when
	// StoreMaxBytes > 0).
	GCInterval time.Duration
	// ScrubInterval, when > 0, starts the background scrubber: every
	// interval it samples ScrubSample entries, decode/CRC-checks them,
	// re-verifies ScrubFraction of them end to end with the proofcheck
	// core, and quarantines failures (served afterwards as clean
	// misses). The scrubber stops on Close.
	ScrubInterval time.Duration
	// ScrubSample is entries per scrub round (default 32).
	ScrubSample int
	// ScrubFraction in [0,1] is the share of scanned entries re-verified
	// end to end (default 0 = decode/CRC only).
	ScrubFraction float64
	// TenantBudget is the per-tenant token budget: the number of jobs a
	// tenant may have admitted at once (default 4×Workers). A batch
	// needing more tokens than the tenant has free is refused with 429.
	TenantBudget int
	// MaxBodyBytes bounds a request body (default 64 MB).
	MaxBodyBytes int64
	// Metrics receives the daemon's counters and histograms; nil creates
	// a private registry.
	Metrics *telemetry.Metrics
	// WorkDir holds the per-job scratch proof directories (default
	// os.TempDir()).
	WorkDir string
}

// Server is the daemon: an http.Handler plus the warm pool and store
// behind it. Create with NewServer, serve via Handler, stop with Close.
type Server struct {
	cfg      ServerConfig
	pool     *harness.Pool
	store    *store.Store // nil without a store
	metrics  *telemetry.Metrics
	mux      *http.ServeMux
	draining atomic.Bool

	// scrubber/gcStop are the store-lifecycle background halves; both
	// stop before the pool joins in Close.
	scrubber  *store.Scrubber // nil when scrubbing is off
	gcStop    chan struct{}   // nil when periodic GC is off
	gcDone    chan struct{}
	closeOnce sync.Once

	// inflight is the global admitted-job count, bounded by maxInflight
	// (workers + queue): the "bounded request queue" half of admission.
	inflight    atomic.Int64
	maxInflight int64

	// tenants tracks per-tenant admitted-job counts (token budgets).
	tenantMu sync.Mutex
	tenants  map[string]int

	// active counts in-flight HTTP batch requests so Close can wait for
	// them after the listener stops accepting.
	active sync.WaitGroup
}

// NewServer opens the store (if configured), starts the pool, and
// returns the daemon.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 2 * cfg.Workers
	}
	if cfg.TenantBudget <= 0 {
		cfg.TenantBudget = 4 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.WorkDir == "" {
		cfg.WorkDir = os.TempDir()
	}
	m := cfg.Metrics
	if m == nil {
		m = telemetry.NewMetrics()
	}
	s := &Server{
		cfg:         cfg,
		metrics:     m,
		maxInflight: int64(cfg.Workers + cfg.Queue),
		tenants:     map[string]int{},
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, m)
		if err != nil {
			return nil, err
		}
		s.store = st
		if cfg.StoreMaxBytes > 0 {
			st.SetMaxBytes(cfg.StoreMaxBytes)
			st.GC(cfg.StoreMaxBytes) // enforce the bound over what a prior run left
			interval := cfg.GCInterval
			if interval <= 0 {
				interval = 30 * time.Second
			}
			s.gcStop = make(chan struct{})
			s.gcDone = make(chan struct{})
			go func() {
				defer close(s.gcDone)
				for {
					select {
					case <-s.gcStop:
						return
					case <-time.After(interval):
						st.GC(cfg.StoreMaxBytes)
					}
				}
			}()
		}
		if cfg.ScrubInterval > 0 {
			s.scrubber = st.StartScrubber(store.ScrubberConfig{
				ScrubConfig: store.ScrubConfig{Fraction: cfg.ScrubFraction},
				Interval:    cfg.ScrubInterval,
				Sample:      cfg.ScrubSample,
			})
		}
	}
	s.pool = harness.NewPool(harness.PoolConfig{Workers: cfg.Workers, Queue: cfg.Queue})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc(PathValidate, s.handleValidate)
	s.mux.HandleFunc(PathHealthz, s.handleHealthz)
	s.mux.HandleFunc(PathMetricsz, s.handleMetricsz)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the daemon's registry.
func (s *Server) Metrics() *telemetry.Metrics { return s.metrics }

// MaxBatch is the largest batch admission can accept: the smaller of
// the global inflight bound (workers + queue) and the tenant budget.
func (s *Server) MaxBatch() int {
	if int(s.maxInflight) < s.cfg.TenantBudget {
		return int(s.maxInflight)
	}
	return s.cfg.TenantBudget
}

// BeginDrain flips the daemon into draining mode: /healthz turns 503
// (load balancers stop routing here) and new batches are refused with
// 503. Already-admitted batches keep running.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close drains gracefully: no new batches, every admitted job finishes
// (and lands in the store), the store-lifecycle goroutines (periodic GC
// and the background scrubber) stop, and the pool joins. Call after the
// HTTP server stopped accepting connections (http.Server.Shutdown).
// Idempotent.
func (s *Server) Close() {
	s.BeginDrain()
	s.active.Wait()
	s.closeOnce.Do(func() {
		if s.gcStop != nil {
			close(s.gcStop)
			<-s.gcDone
		}
		if s.scrubber != nil {
			s.scrubber.Close()
		}
	})
	s.pool.Close()
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	counters, hists := s.metrics.Snapshot()
	snap := MetricsSnapshot{
		Counters: counters,
		Hists:    map[string]*harness.LatencyJSON{},
		StoreLen: -1,
		Draining: s.draining.Load(),
		Workers:  s.cfg.Workers,
		MaxBatch: s.MaxBatch(),
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := hists[name]
		snap.Hists[name] = &harness.LatencyJSON{
			Count: h.Count,
			P50NS: int64(h.Quantile(0.5)),
			P90NS: int64(h.Quantile(0.9)),
			P99NS: int64(h.Quantile(0.99)),
			MaxNS: h.Max,
		}
	}
	if s.store != nil {
		snap.StoreLen = s.store.Len()
		snap.StoreBytes = s.store.Usage()
		snap.StoreMaxBytes = s.store.MaxBytes()
		snap.StoreQuarantined = s.store.QuarantineLen()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&snap)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, retryAfter int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&ErrorJSON{
		Error:             fmt.Sprintf(format, args...),
		RetryAfterSeconds: retryAfter,
	})
}

// admit reserves n job tokens for tenant against both the global
// inflight bound and the tenant's budget. It is all-or-nothing.
func (s *Server) admit(tenant string, n int) (release func(k int), err error) {
	if int64(n) > s.maxInflight {
		return nil, fmt.Errorf("batch of %d jobs exceeds the daemon's queue capacity %d; split it",
			n, s.maxInflight)
	}
	if n > s.cfg.TenantBudget {
		return nil, fmt.Errorf("batch of %d jobs exceeds tenant budget %d; split it",
			n, s.cfg.TenantBudget)
	}
	for {
		cur := s.inflight.Load()
		if cur+int64(n) > s.maxInflight {
			return nil, fmt.Errorf("job queue full (%d/%d in flight)", cur, s.maxInflight)
		}
		if s.inflight.CompareAndSwap(cur, cur+int64(n)) {
			break
		}
	}
	s.tenantMu.Lock()
	if s.tenants[tenant]+n > s.cfg.TenantBudget {
		used := s.tenants[tenant]
		s.tenantMu.Unlock()
		s.inflight.Add(int64(-n))
		return nil, fmt.Errorf("tenant %q budget exhausted (%d/%d tokens in use)",
			tenant, used, s.cfg.TenantBudget)
	}
	s.tenants[tenant] += n
	s.tenantMu.Unlock()
	// release returns k of the reserved tokens (call per completed job,
	// or once with the remainder on early exit).
	return func(k int) {
		if k <= 0 {
			return
		}
		s.inflight.Add(int64(-k))
		s.tenantMu.Lock()
		s.tenants[tenant] -= k
		if s.tenants[tenant] <= 0 {
			delete(s.tenants, tenant)
		}
		s.tenantMu.Unlock()
	}, nil
}

// pendingJob is one admitted job on its way through the pool.
type pendingJob struct {
	req JobRequest
	key store.Key
	// dir/dw are the per-job scratch proof directory and its writer
	// (self-contained per-function artifact set).
	dir string
	dw  *proof.DirWriter
	// proofErr records a proof-dir/writer creation failure so finishJob
	// can surface it on the row (the job itself still validates,
	// uncertified).
	proofErr error
}

func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, 0, "POST only")
		return
	}
	// Register with the in-flight group BEFORE checking the drain flag:
	// Close sets the flag and then waits on the group, so a batch that
	// registered first is waited for, and a batch that registered after
	// the flag flipped sees it here and refuses. Checking before Add
	// left a window where Close's active.Wait() could return while a
	// batch between the check and the Add proceeded into a closed pool.
	s.active.Add(1)
	defer s.active.Done()
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, 0, "draining")
		return
	}

	var req BatchRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, 0, "bad request body: %v", err)
		return
	}
	if len(req.Jobs) == 0 {
		httpError(w, http.StatusBadRequest, 0, "empty batch")
		return
	}
	for i, j := range req.Jobs {
		if j.Fn == "" || j.IR == "" {
			httpError(w, http.StatusBadRequest, 0, "job %d: fn and ir are required", i)
			return
		}
	}

	// Resolve store hits before admission: hits cost no pool capacity,
	// so only the misses need tokens.
	hits := make([]*store.Entry, len(req.Jobs))
	keys := make([]store.Key, len(req.Jobs))
	misses := 0
	for i, j := range req.Jobs {
		keys[i] = JobKey(j, req.MaxTermNodes, req.ConflictBudget)
		if s.store != nil {
			if e, ok := s.store.Get(keys[i]); ok {
				hits[i] = e
				continue
			}
		}
		misses++
	}

	release, err := s.admit(req.Tenant, misses)
	if err != nil {
		s.metrics.Add("tvd.rejected", 1)
		httpError(w, http.StatusTooManyRequests, 1, "%v", err)
		return
	}
	outstanding := misses
	defer func() { release(outstanding) }()

	s.metrics.Add("tvd.batches", 1)
	s.metrics.Add("tvd.jobs", int64(len(req.Jobs)))

	var tracer *telemetry.Tracer
	if req.Trace {
		tracer = telemetry.NewTracer()
	}
	budget := tv.Budget{
		Timeout:        time.Duration(req.TimeoutSeconds * float64(time.Second)),
		MaxTermNodes:   req.MaxTermNodes,
		ConflictBudget: req.ConflictBudget,
	}

	epoch := time.Now()
	w.Header().Set("Content-Type", "application/jsonl")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	batchM := telemetry.NewMetrics()
	result := &BatchResult{Rows: make([]RowJSON, len(req.Jobs))}
	var stats smt.Stats
	var cpu time.Duration

	streamRow := func(row *RowJSON) {
		rec := telemetry.Record{
			ID:      telemetry.SpanID(row.Index + 1),
			Name:    RecordRow,
			StartNS: row.StartedNS,
			DurNS:   row.FinishedNS - row.StartedNS,
			Attrs: map[string]any{
				"fn":     row.Fn,
				"index":  int64(row.Index),
				"class":  row.Class,
				"cached": row.Cached,
			},
		}
		enc.Encode(&rec)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Serve the hits first: they are ready now, and streaming them before
	// the misses start lands warm verdicts with zero queue latency.
	for i := range req.Jobs {
		if hits[i] == nil {
			continue
		}
		row := s.rowFromEntry(i, keys[i], hits[i], req.Proofs, epoch)
		result.Rows[i] = row
		result.StoreHits++
		batchM.Add("tvd.batch.store_hit", 1)
		streamRow(&row)
	}
	result.StoreMisses = misses

	// Submit the misses. Done callbacks only forward to the channel —
	// artifact collection and store writes happen on this goroutine, so
	// pool workers never block on the store.
	results := make(chan harness.JobResult, misses)
	pending := make(map[int]*pendingJob, misses)
	for i := range req.Jobs {
		if hits[i] != nil {
			continue
		}
		pj := &pendingJob{req: req.Jobs[i], key: keys[i]}
		dir, err := os.MkdirTemp(s.cfg.WorkDir, "tvd-job-")
		if err == nil {
			pj.dir = dir
			pj.dw, err = proof.NewFunctionDirWriter(dir, req.Jobs[i].Fn)
		}
		if err != nil {
			// Degrade to uncertified validation rather than failing the
			// batch; finishJob surfaces the recorded error on the row.
			s.metrics.Add("tvd.proofdir_fail", 1)
			pj.dw = nil
			pj.proofErr = err
		}
		pending[i] = pj
		s.pool.Submit(harness.Job{
			Fn:    corpus.Function{Name: req.Jobs[i].Fn, Src: req.Jobs[i].IR},
			Index: i,
			ISel:  isel.Options{MergeStores: req.Jobs[i].MergeStores},
			// A fresh per-job VC cache keeps ref certificates resolvable
			// within the job's own artifact set — the property that makes
			// a store entry independently checkable (proofcheck -store).
			Checker: core.Options{VCCache: smt.NewCache()},
			Budget:  budget,
			DW:      pj.dw,
			Tracer:  tracer,
			Done:    func(res harness.JobResult) { results <- res },
		})
	}
	for done := 0; done < misses; done++ {
		res := <-results
		pj := pending[res.Index]
		row := s.finishJob(pj, res, req.Proofs, epoch)
		result.Rows[res.Index] = row
		if d := res.Row.Started.Sub(res.Row.Submitted); d >= 0 {
			batchM.Observe("tvd.queue", d)
		}
		batchM.Merge(res.Metrics)
		stats.Add(res.Stats)
		cpu += res.Row.Duration
		release(1)
		outstanding--
		streamRow(&row)
	}

	// Batch summary: the same StatsJSON a local run prints.
	sum := &harness.Summary{
		Total:    len(req.Jobs),
		Workers:  s.pool.Workers(),
		WallTime: time.Since(epoch),
		CPUTime:  cpu,
		SMTStats: stats,
		Metrics:  batchM,
	}
	for _, row := range result.Rows {
		c, _ := tv.ParseClass(row.Class)
		sum.Rows = append(sum.Rows, harness.ResultRow{
			Fn: row.Fn, Class: c, CodeSize: row.CodeSize,
			Duration: time.Duration(row.DurationNS), Certified: row.Certified,
		})
		if row.Certified {
			sum.Certified++
		}
		if row.ProofErr != "" {
			sum.CertFailed++
		}
	}
	result.Stats = sum.StatsJSON()
	if tracer != nil {
		result.Trace = tracer.Records()
	}
	s.metrics.Merge(batchM)
	s.metrics.Observe("tvd.batch.wall", sum.WallTime)

	payload, err := json.Marshal(result)
	if err != nil {
		payload = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	enc.Encode(&telemetry.Record{
		ID:      telemetry.SpanID(len(req.Jobs) + 1),
		Name:    RecordSummary,
		StartNS: time.Since(epoch).Nanoseconds(),
		Attrs:   map[string]any{AttrResult: string(payload)},
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// rowFromEntry turns a store hit into a response row. The verdict is
// trusted only as far as its certificates: Certified comes from the
// entry, and with Proofs the caller gets the artifacts to re-check it.
func (s *Server) rowFromEntry(index int, k store.Key, e *store.Entry, withArtifacts bool, epoch time.Time) RowJSON {
	now := time.Since(epoch).Nanoseconds()
	row := RowJSON{
		Index:       index,
		Fn:          e.Meta.Function,
		Class:       e.Meta.Class,
		Err:         e.Meta.Err,
		CodeSize:    e.Meta.CodeSize,
		Certified:   e.Meta.Certified,
		Cached:      true,
		Key:         k.Hex(),
		SubmittedNS: now,
		StartedNS:   now,
		FinishedNS:  now,
	}
	if withArtifacts {
		for _, a := range e.Artifacts {
			row.Artifacts = append(row.Artifacts, ArtifactJSON{Name: a.Name, Data: a.Data})
		}
	}
	return row
}

// finishJob closes the job's proof writer, collects its artifact set,
// stores the verdict, and builds the response row.
func (s *Server) finishJob(pj *pendingJob, res harness.JobResult, withArtifacts bool, epoch time.Time) RowJSON {
	row := RowJSON{
		Index:       res.Index,
		Fn:          res.Row.Fn,
		Class:       res.Row.Class.String(),
		CodeSize:    res.Row.CodeSize,
		Certified:   res.Row.Certified,
		Key:         pj.key.Hex(),
		SubmittedNS: res.Row.Submitted.Sub(epoch).Nanoseconds(),
		StartedNS:   res.Row.Started.Sub(epoch).Nanoseconds(),
		FinishedNS:  res.Row.Finished.Sub(epoch).Nanoseconds(),
		DurationNS:  res.Row.Duration.Nanoseconds(),
	}
	if res.Row.Err != nil {
		row.Err = res.Row.Err.Error()
	}
	if res.Row.ProofErr != nil {
		row.ProofErr = res.Row.ProofErr.Error()
	}
	if pj.proofErr != nil && row.ProofErr == "" {
		row.ProofErr = pj.proofErr.Error()
	}
	if pj.dw != nil {
		if err := pj.dw.Close(); err != nil && row.ProofErr == "" {
			row.ProofErr = err.Error()
		}
		arts := collectArtifacts(pj.dir, pj.req.Fn)
		if row.ProofErr == "" && s.store != nil && storableClass(res.Row.Class) {
			entry := &store.Entry{
				Meta: store.Meta{
					Function:      res.Row.Fn,
					Class:         row.Class,
					Err:           row.Err,
					CodeSize:      res.Row.CodeSize,
					Certified:     res.Row.Certified,
					CreatedUnixNS: time.Now().UnixNano(),
				},
				Artifacts: arts,
			}
			if err := s.store.Put(pj.key, entry); err != nil {
				s.metrics.Add("tvd.store_put_fail", 1)
			}
		}
		if withArtifacts {
			for _, a := range arts {
				row.Artifacts = append(row.Artifacts, ArtifactJSON{Name: a.Name, Data: a.Data})
			}
		}
	}
	if pj.dir != "" {
		os.RemoveAll(pj.dir)
	}
	return row
}

// collectArtifacts reads the four per-function artifact files of a
// self-contained proof set (certs, drat, witness, terms); absent files
// (no trace, no witness) are simply omitted.
func collectArtifacts(dir, function string) []store.Artifact {
	base := proof.FileBase(function)
	var out []store.Artifact
	for _, suffix := range []string{
		proof.CertsSuffix, proof.DratSuffix, proof.WitnessSuffix, proof.TermsSuffix,
	} {
		name := base + suffix
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		out = append(out, store.Artifact{Name: name, Data: data})
	}
	return out
}
