package tvd

import (
	"time"

	"repro/internal/harness"
	"repro/internal/smt"
	"repro/internal/telemetry"
	"repro/internal/tv"
)

// Summary reconstructs a harness.Summary from a batch result, so a
// remote run renders through the exact same Figure6/Figure7/RenderStats
// code as a local one. Latency histograms do not cross the wire (only
// their quantiles do, in Stats.Latency), so Figure7 falls back to its
// per-row duration path and RenderStats omits the latency line.
func (r *BatchResult) Summary() *harness.Summary {
	sum := &harness.Summary{
		Total:   len(r.Rows),
		Metrics: telemetry.NewMetrics(),
	}
	for _, row := range r.Rows {
		c, _ := tv.ParseClass(row.Class)
		sum.Rows = append(sum.Rows, harness.ResultRow{
			Fn:        row.Fn,
			Class:     c,
			CodeSize:  row.CodeSize,
			Duration:  time.Duration(row.DurationNS),
			Certified: row.Certified,
		})
	}
	if s := r.Stats; s != nil {
		sum.Workers = s.Workers
		sum.WallTime = time.Duration(s.WallSeconds * float64(time.Second))
		sum.CPUTime = time.Duration(s.CPUSeconds * float64(time.Second))
		sum.Certified = s.Certified
		sum.CertFailed = s.CertFailed
		sum.SMTStats = smt.Stats{
			Queries:       s.SMT.Queries,
			FastQueries:   s.SMT.FastQueries,
			CacheHits:     s.SMT.CacheHits,
			CacheMisses:   s.SMT.CacheMisses,
			CacheBytes:    s.SMT.CacheBytes,
			SATConflicts:  s.SMT.Conflicts,
			SATDecisions:  s.SMT.Decisions,
			CNFClauses:    s.SMT.Clauses,
			SolveDuration: time.Duration(s.SMT.SolveSeconds * float64(time.Second)),
			ProofBytes:    s.SMT.ProofBytes,
			Certificates:  s.SMT.Certificates,

			SubsumedClauses:     s.SMT.SubsumedClauses,
			StrengthenedClauses: s.SMT.StrengthenedClauses,
			VivifiedClauses:     s.SMT.VivifiedClauses,
			EliminatedVars:      s.SMT.EliminatedVars,

			Races:               s.SMT.Races,
			RaceRacerWins:       s.SMT.RaceRacerWins,
			RaceTokens:          s.SMT.RaceTokens,
			RaceWastedConflicts: s.SMT.RaceWastedConflicts,
			RaceWastedProps:     s.SMT.RaceWastedProps,

			CubeEscalations: s.SMT.CubeEscalations,
			CubesGenerated:  s.SMT.CubesGenerated,
			CubesRefuted:    s.SMT.CubesRefuted,
			CubesSat:        s.SMT.CubesSat,
			CubeSteals:      s.SMT.CubeSteals,
		}
	}
	return sum
}
