package smt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/proof"
	"repro/internal/sat"
)

// drainedPortfolio returns a pool whose tokens are all held, so the race
// stage starves and the ladder falls through to cube-and-conquer — which
// always has the query's own thread as a worker and so runs regardless.
// CubeAfter 1 makes any query with at least one probe conflict eligible.
func drainedPortfolio() *Portfolio {
	pf := NewPortfolio(1)
	pf.After = 1
	pf.CubeAfter = 1
	pf.Acquire()
	return pf
}

// TestCubeMatchesPlain: with the race starved and every non-trivial query
// escalating to cube-and-conquer, verdicts must match a plain solver's
// exactly, on both the one-shot and the incremental paths — the same
// row-parity guarantee the portfolio race is held to.
func TestCubeMatchesPlain(t *testing.T) {
	var escalations int64
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := NewContext()
		cubed := NewSolver(ctx)
		cubed.Portfolio = drainedPortfolio()
		cubed.Inprocess = true
		inc := NewSolver(ctx)
		inc.Incremental = true
		inc.Portfolio = drainedPortfolio()
		inc.Inprocess = true

		queries := []*Term{
			distinctUnder(ctx, "u", 6, 3, 5), // unsat
			distinctUnder(ctx, "s", 5, 3, 5), // sat
		}
		for q := 0; q < 3; q++ {
			form := ctx.Eq(randomTerm(ctx, rng, 4, 3), randomTerm(ctx, rng, 4, 3))
			if rng.Intn(2) == 0 {
				form = ctx.Not(form)
			}
			queries = append(queries, form)
		}
		for q, form := range queries {
			cold := NewSolver(ctx)
			want, _, errCold := cold.CheckSat(form)
			got, _, errCubed := cubed.CheckSat(form)
			gotInc, _, errInc := inc.CheckSat(form)
			if (errCold == nil) != (errCubed == nil) || (errCold == nil) != (errInc == nil) {
				t.Logf("seed %d q %d: error mismatch cold=%v cubed=%v inc=%v",
					seed, q, errCold, errCubed, errInc)
				return false
			}
			if errCold != nil {
				continue
			}
			if got != want || gotInc != want {
				t.Logf("seed %d q %d: cold=%v cubed=%v inc=%v", seed, q, want, got, gotInc)
				return false
			}
		}
		escalations += cubed.Stats.CubeEscalations + inc.Stats.CubeEscalations
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if escalations == 0 {
		t.Fatal("no query ever escalated to cube-and-conquer")
	}
}

// TestCubeDisabledMatchesPlain: the -no-cube ablation must fall back to
// solo search with identical verdicts and zero cube activity.
func TestCubeDisabledMatchesPlain(t *testing.T) {
	ctx := NewContext()
	s := NewSolver(ctx)
	s.Portfolio = drainedPortfolio()
	s.DisableCube = true
	queries := []struct {
		form *Term
		want Result
	}{
		{distinctUnder(ctx, "u", 6, 3, 5), ResultUnsat},
		{distinctUnder(ctx, "s", 5, 3, 5), ResultSat},
	}
	for i, q := range queries {
		res, _, err := s.CheckSat(q.form)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res != q.want {
			t.Fatalf("query %d: got %v, want %v", i, res, q.want)
		}
	}
	if s.Stats.CubeEscalations != 0 || s.Stats.CubesGenerated != 0 {
		t.Fatalf("cube stats nonzero with DisableCube: %+v", s.Stats)
	}
}

// TestCubeCertsVerify: every certificate a cube-escalated run emits —
// including the composed all-cubes-unsat refutations, on both the
// one-shot (empty-clause obligation) and incremental (activation-literal
// input) paths — must verify from scratch with CheckDir.
func TestCubeCertsVerify(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", incremental), func(t *testing.T) {
			ctx := NewContext()
			rec := proof.NewRecorder(fmt.Sprintf("cube-inc-%v", incremental))
			s := NewSolver(ctx)
			s.Recorder = rec
			s.Portfolio = drainedPortfolio()
			s.Inprocess = true
			s.Incremental = incremental

			queries := []struct {
				form *Term
				want Result
			}{
				{distinctUnder(ctx, "a", 7, 3, 6), ResultUnsat},
				{distinctUnder(ctx, "b", 6, 3, 6), ResultSat},
				{distinctUnder(ctx, "c", 8, 3, 7), ResultUnsat},
				{distinctUnder(ctx, "d", 6, 3, 5), ResultUnsat},
			}
			for i, q := range queries {
				res, _, err := s.CheckSat(q.form)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if res != q.want {
					t.Fatalf("query %d: got %v, want %v", i, res, q.want)
				}
			}
			if s.Stats.CubeEscalations == 0 {
				t.Fatal("no query escalated to cube-and-conquer")
			}
			if s.Stats.CubesRefuted == 0 {
				t.Fatal("no cube was ever refuted: composition path not exercised")
			}
			t.Logf("escalations=%d generated=%d refuted=%d sat=%d",
				s.Stats.CubeEscalations, s.Stats.CubesGenerated,
				s.Stats.CubesRefuted, s.Stats.CubesSat)

			dir := t.TempDir()
			if _, err := proof.WriteCerts(dir, rec); err != nil {
				t.Fatal(err)
			}
			report, err := proof.CheckDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range report.Rejections {
				t.Errorf("rejection: %s", r)
			}
			if report.ByKind[proof.KindDRAT] < 3 {
				t.Errorf("expected at least 3 DRAT certificates, got %d", report.ByKind[proof.KindDRAT])
			}
		})
	}
}

// TestSolveCubedWorkStealing drives solveCubed directly with idle slots
// available, so stolen workers drain the shared queue alongside the
// query's own thread; the all-cubes-unsat verdict must hold whatever the
// interleaving, and its composed certificate must replay.
func TestSolveCubedWorkStealing(t *testing.T) {
	ctx := NewContext()
	rec := proof.NewRecorder("cube-steal")
	s := NewSolver(ctx)
	s.Recorder = rec
	pf := NewPortfolio(3)
	pf.CubeVars = 4
	s.Portfolio = pf

	// Build a primary SAT instance directly: pigeonhole 7 into 6.
	const pigeons, holes = 7, 6
	primary := sat.New()
	va := func(p, h int) sat.Lit { return sat.MkLit(p*holes+h, false) }
	for v := 0; v < pigeons*holes; v++ {
		primary.NewVar()
	}
	for p := 0; p < pigeons; p++ {
		row := make([]sat.Lit, holes)
		for h := 0; h < holes; h++ {
			row[h] = va(p, h)
		}
		primary.AddClause(row...)
	}
	for h := 0; h < holes; h++ {
		for p := 0; p < pigeons; p++ {
			for q := p + 1; q < pigeons; q++ {
				primary.AddClause(va(p, h).Not(), va(q, h).Not())
			}
		}
	}

	st, winner, ran := s.solveCubed(primary, 0)
	if !ran {
		t.Fatal("PHP(7,6) did not cube")
	}
	if st != sat.Unsat {
		t.Fatalf("PHP(7,6) cubed verdict = %v, want Unsat", st)
	}
	if s.Stats.CubesRefuted != s.Stats.CubesGenerated {
		t.Fatalf("refuted %d of %d cubes", s.Stats.CubesRefuted, s.Stats.CubesGenerated)
	}
	if winner.Proof == nil {
		t.Fatal("all-cubes-unsat winner carries no composed certificate")
	}
	ck := proof.NewSessionChecker()
	for i := 0; i < winner.Proof.Len(); i++ {
		op, lits := winner.Proof.Step(i)
		d := make([]int32, len(lits))
		for j, l := range lits {
			if l.Neg() {
				d[j] = -int32(l.Var() + 1)
			} else {
				d[j] = int32(l.Var() + 1)
			}
		}
		var err error
		switch op {
		case sat.OpInput:
			err = ck.AddInput(d)
		case sat.OpLearn:
			err = ck.AddLearnt(d)
		case sat.OpDelete:
			err = ck.Delete(d)
		}
		if err != nil {
			t.Fatalf("composed step %d (op %q): %v", i, op, err)
		}
	}
	if err := ck.CheckFinal(nil); err != nil {
		t.Fatalf("composed certificate rejected: %v", err)
	}
	t.Logf("generated=%d refuted=%d steals=%d",
		s.Stats.CubesGenerated, s.Stats.CubesRefuted, s.Stats.CubeSteals)
}

// TestRacerConfigsDistinct: every racer index yields a distinct
// configuration — previously index 3 wrapped to racer 0's exact config
// and burned its slot on a duplicate search.
func TestRacerConfigsDistinct(t *testing.T) {
	seen := map[raceConfig]int{}
	for i := 0; i < 12; i++ {
		cfg := racerConfig(i)
		if j, dup := seen[cfg]; dup {
			t.Fatalf("racer %d and racer %d share a config: %+v", j, i, cfg)
		}
		seen[cfg] = i
	}
}

// TestRaceWastedAccounting: losing racers' CPU must show up in the
// wasted counters instead of vanishing from the phase reports.
func TestRaceWastedAccounting(t *testing.T) {
	ctx := NewContext()
	pf := NewPortfolio(3)
	pf.After = 1
	s := NewSolver(ctx)
	s.Portfolio = pf
	for i, tag := range []string{"a", "b", "c"} {
		res, _, err := s.CheckSat(distinctUnder(ctx, tag, 8, 3, 7))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res != ResultUnsat {
			t.Fatalf("query %d: got %v, want unsat", i, res)
		}
	}
	if s.Stats.Races == 0 {
		t.Fatal("no query raced despite After=1")
	}
	if s.Stats.RaceWastedProps == 0 {
		t.Fatalf("races ran but zero wasted propagations accounted: %+v", s.Stats)
	}
	t.Logf("races=%d wasted conflicts=%d wasted props=%d",
		s.Stats.Races, s.Stats.RaceWastedConflicts, s.Stats.RaceWastedProps)
}
