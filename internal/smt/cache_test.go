package smt

import (
	"testing"
)

func TestCachePutGetRoundtrip(t *testing.T) {
	c := NewContext()
	cache := NewCache()
	k1, _ := CanonicalHash(c.Eq(c.VarBV("x", 8), c.BV(1, 8)))
	k2, _ := CanonicalHash(c.Eq(c.VarBV("y", 8), c.BV(2, 8)))

	if _, ok := cache.Get(k1); ok {
		t.Fatalf("empty cache reported a hit")
	}
	cache.Put(k1, ResultUnsat)
	cache.Put(k2, ResultSat)
	if r, ok := cache.Get(k1); !ok || r != ResultUnsat {
		t.Fatalf("Get(k1) = %v, %v; want Unsat hit", r, ok)
	}
	if r, ok := cache.Get(k2); !ok || r != ResultSat {
		t.Fatalf("Get(k2) = %v, %v; want Sat hit", r, ok)
	}
	if cache.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cache.Len())
	}
}

func TestCacheRejectsUnknownOnPut(t *testing.T) {
	c := NewContext()
	cache := NewCache()
	k, _ := CanonicalHash(c.Eq(c.VarBV("x", 8), c.BV(1, 8)))
	cache.Put(k, ResultUnknown)
	if cache.Len() != 0 {
		t.Fatalf("Put(Unknown) was stored; Len = %d", cache.Len())
	}
	if _, ok := cache.Get(k); ok {
		t.Fatalf("Get returned a hit for an Unknown Put")
	}
}

// TestCachePoisonedSentinel plants an Unknown entry directly into the
// shard map — bypassing Put's filter — and proves both that Get refuses
// to serve it and that a solver consulting the poisoned cache still
// solves the query itself and reaches the correct verdict. No verdict
// may ever come from an Unknown entry.
func TestCachePoisonedSentinel(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 8)
	f := c.AndB(c.Eq(x, c.BV(1, 8)), c.Eq(x, c.BV(2, 8))) // unsat
	if f.IsFalse() {
		t.Skip("simplifier decided the formula; pick a harder sentinel")
	}
	k, _ := CanonicalHash(f)

	cache := NewCache()
	sh := cache.shard(k)
	sh.mu.Lock()
	sh.m[k] = ResultUnknown // poison
	sh.mu.Unlock()

	if _, ok := cache.Get(k); ok {
		t.Fatalf("Get served a poisoned Unknown entry")
	}

	s := NewSolver(c)
	s.Cache = cache
	res, _, err := s.CheckSat(f)
	if err != nil {
		t.Fatal(err)
	}
	if res != ResultUnsat {
		t.Fatalf("CheckSat = %v, want Unsat", res)
	}
	if s.Stats.CacheHits != 0 {
		t.Fatalf("poisoned entry counted as a cache hit")
	}
	if s.Stats.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1", s.Stats.CacheMisses)
	}
	// The real verdict must have overwritten the poison.
	if r, ok := cache.Get(k); !ok || r != ResultUnsat {
		t.Fatalf("solved verdict not stored over poison: %v, %v", r, ok)
	}
}

// TestCacheCrossContextHit: two solvers over DIFFERENT contexts with
// alpha-renamed variables share one cache; the second query is answered
// without solving and the verdicts agree.
func TestCacheCrossContextHit(t *testing.T) {
	cache := NewCache()

	// (x+1)*(x-1) == x*x - 1 is a theorem at any width, but not one the
	// construction-time simplifier can see — its negation reaches the SAT
	// solver and comes back Unsat.
	mkNegTheorem := func(c *Context, name string) *Term {
		x := c.VarBV(name, 8)
		one := c.BV(1, 8)
		lhs := c.Mul(c.Add(x, one), c.Sub(x, one))
		rhs := c.Sub(c.Mul(x, x), one)
		return c.Not(c.Eq(lhs, rhs))
	}

	c1 := NewContext()
	f1 := mkNegTheorem(c1, "x")

	s1 := NewSolver(c1)
	s1.Cache = cache
	res1, _, err := s1.CheckSat(f1)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != ResultUnsat {
		t.Fatalf("first solve = %v, want Unsat", res1)
	}
	if s1.Stats.CacheMisses != 1 || s1.Stats.CacheHits != 0 {
		t.Fatalf("first solve stats: hits=%d misses=%d", s1.Stats.CacheHits, s1.Stats.CacheMisses)
	}

	c2 := NewContext()
	f2 := mkNegTheorem(c2, "vreg!0")

	s2 := NewSolver(c2)
	s2.Cache = cache
	res2, model, err := s2.CheckSat(f2)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != res1 {
		t.Fatalf("cached verdict %v differs from solved verdict %v", res2, res1)
	}
	if s2.Stats.CacheHits != 1 || s2.Stats.CacheMisses != 0 {
		t.Fatalf("second solve stats: hits=%d misses=%d", s2.Stats.CacheHits, s2.Stats.CacheMisses)
	}
	if model != nil {
		t.Fatalf("Unsat hit returned a model")
	}
	if s2.Stats.SATConflicts != 0 && s2.Stats.CNFClauses != 0 {
		t.Fatalf("cache hit still ran the SAT solver")
	}
}

// TestCacheSatHitReturnsNilModel: a Sat verdict served from the cache
// carries no model — callers that need counterexamples must solve
// uncached, and the checker never reads models from cached paths.
func TestCacheSatHitReturnsNilModel(t *testing.T) {
	cache := NewCache()

	c1 := NewContext()
	f1 := c1.Eq(c1.Mul(c1.VarBV("x", 8), c1.BV(3, 8)), c1.BV(9, 8))
	s1 := NewSolver(c1)
	s1.Cache = cache
	res1, model1, err := s1.CheckSat(f1)
	if err != nil {
		t.Fatal(err)
	}
	if res1 != ResultSat || model1 == nil {
		t.Fatalf("first solve = %v model=%v, want Sat with model", res1, model1)
	}

	c2 := NewContext()
	f2 := c2.Eq(c2.Mul(c2.VarBV("q", 8), c2.BV(3, 8)), c2.BV(9, 8))
	s2 := NewSolver(c2)
	s2.Cache = cache
	res2, model2, err := s2.CheckSat(f2)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != ResultSat {
		t.Fatalf("cached solve = %v, want Sat", res2)
	}
	if model2 != nil {
		t.Fatalf("Sat cache hit returned a model; hits must return nil")
	}
	if s2.Stats.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", s2.Stats.CacheHits)
	}
}

// TestCacheUnknownResultNotCached: a query killed by the conflict budget
// yields Unknown and must leave no cache entry behind.
func TestCacheUnknownResultNotCached(t *testing.T) {
	c := NewContext()
	// Negated 10-bit theorem (x+1)*(x-1) == x*x - 1: proving Unsat needs
	// real search, far more than a 1-conflict budget allows.
	x := c.VarBV("x", 10)
	one := c.BV(1, 10)
	f := c.Not(c.Eq(
		c.Mul(c.Add(x, one), c.Sub(x, one)),
		c.Sub(c.Mul(x, x), one),
	))

	cache := NewCache()
	s := NewSolver(c)
	s.Cache = cache
	s.ConflictBudget = 1
	res, _, err := s.CheckSat(f)
	if res != ResultUnknown || err == nil {
		t.Skipf("query decided within 1 conflict (res=%v); cannot exercise Unknown path", res)
	}
	if cache.Len() != 0 {
		t.Fatalf("Unknown result was cached; Len = %d", cache.Len())
	}
	// A fresh unbudgeted solver must still be able to decide and cache it.
	s2 := NewSolver(c)
	s2.Cache = cache
	res2, _, err := s2.CheckSat(f)
	if err != nil {
		t.Fatal(err)
	}
	if res2 == ResultUnknown {
		t.Fatalf("unbudgeted solve still Unknown")
	}
	if cache.Len() != 1 {
		t.Fatalf("decided verdict not cached; Len = %d", cache.Len())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	cache := NewCache()
	c := NewContext()
	keys := make([]CanonKey, 256)
	for i := range keys {
		keys[i], _ = CanonicalHash(c.Eq(c.VarBV("x", 16), c.BV(uint64(i), 16)))
	}
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i, k := range keys {
				if (i+w)%2 == 0 {
					cache.Put(k, ResultUnsat)
				} else {
					cache.Get(k)
				}
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if cache.Len() == 0 {
		t.Fatalf("no entries after concurrent writes")
	}
}
