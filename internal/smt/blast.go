package smt

import (
	"fmt"

	"repro/internal/sat"
)

// blaster lowers array-free terms to CNF over a sat.Solver using Tseitin
// encoding with structural sharing.
type blaster struct {
	ctx *Context
	s   *sat.Solver

	litTrue  sat.Lit
	boolMemo map[*Term]sat.Lit
	bvMemo   map[*Term][]sat.Lit
	gateMemo map[gateKey]sat.Lit

	// arena, when non-nil, backs every literal vector the blaster
	// allocates. The memos above alias arena memory, so the arena must
	// outlive the blaster and only Reset once both are discarded.
	arena *LitArena

	// varHook, when non-nil, is invoked once per free variable as it is
	// assigned SAT variables (bit literals, LSB first for BV). Proof
	// emission uses it to record the CNF variable map in certificates.
	varHook func(t *Term, lits []sat.Lit)
}

type gateKey struct {
	op   uint8
	a, b sat.Lit
}

const (
	gAnd uint8 = iota
	gOr
	gXor
)

func newBlaster(ctx *Context, s *sat.Solver, arena *LitArena) *blaster {
	b := &blaster{
		ctx:      ctx,
		s:        s,
		boolMemo: make(map[*Term]sat.Lit),
		bvMemo:   make(map[*Term][]sat.Lit),
		gateMemo: make(map[gateKey]sat.Lit),
		arena:    arena,
	}
	v := s.NewVar()
	b.litTrue = sat.MkLit(v, false)
	s.AddClause(b.litTrue)
	return b
}

func (b *blaster) litFalse() sat.Lit { return b.litTrue.Not() }

// lits allocates a zeroed literal vector from the arena (or the heap
// when no arena is attached).
func (b *blaster) lits(n int) []sat.Lit { return b.arena.alloc(n) }

func (b *blaster) constLit(v bool) sat.Lit {
	if v {
		return b.litTrue
	}
	return b.litFalse()
}

func (b *blaster) fresh() sat.Lit { return sat.MkLit(b.s.NewVar(), false) }

// mkAnd returns a literal equivalent to x ∧ y.
func (b *blaster) mkAnd(x, y sat.Lit) sat.Lit {
	if x == b.litTrue {
		return y
	}
	if y == b.litTrue {
		return x
	}
	if x == b.litFalse() || y == b.litFalse() {
		return b.litFalse()
	}
	if x == y {
		return x
	}
	if x == y.Not() {
		return b.litFalse()
	}
	if y < x {
		x, y = y, x
	}
	k := gateKey{gAnd, x, y}
	if l, ok := b.gateMemo[k]; ok {
		return l
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x)
	b.s.AddClause(out.Not(), y)
	b.s.AddClause(out, x.Not(), y.Not())
	b.gateMemo[k] = out
	return out
}

func (b *blaster) mkOr(x, y sat.Lit) sat.Lit {
	return b.mkAnd(x.Not(), y.Not()).Not()
}

func (b *blaster) mkXor(x, y sat.Lit) sat.Lit {
	if x == b.litTrue {
		return y.Not()
	}
	if x == b.litFalse() {
		return y
	}
	if y == b.litTrue {
		return x.Not()
	}
	if y == b.litFalse() {
		return x
	}
	if x == y {
		return b.litFalse()
	}
	if x == y.Not() {
		return b.litTrue
	}
	if y < x {
		x, y = y, x
	}
	k := gateKey{gXor, x, y}
	if l, ok := b.gateMemo[k]; ok {
		return l
	}
	out := b.fresh()
	b.s.AddClause(out.Not(), x, y)
	b.s.AddClause(out.Not(), x.Not(), y.Not())
	b.s.AddClause(out, x.Not(), y)
	b.s.AddClause(out, x, y.Not())
	b.gateMemo[k] = out
	return out
}

func (b *blaster) mkXnor(x, y sat.Lit) sat.Lit { return b.mkXor(x, y).Not() }

// mkMux returns c ? t : e.
func (b *blaster) mkMux(c, t, e sat.Lit) sat.Lit {
	if c == b.litTrue {
		return t
	}
	if c == b.litFalse() {
		return e
	}
	if t == e {
		return t
	}
	return b.mkOr(b.mkAnd(c, t), b.mkAnd(c.Not(), e))
}

// fullAdder returns (sum, carryOut).
func (b *blaster) fullAdder(x, y, cin sat.Lit) (sat.Lit, sat.Lit) {
	sum := b.mkXor(b.mkXor(x, y), cin)
	cout := b.mkOr(b.mkAnd(x, y), b.mkAnd(cin, b.mkXor(x, y)))
	return sum, cout
}

// addBits returns x + y + cin over equal-width bit slices (LSB first).
func (b *blaster) addBits(x, y []sat.Lit, cin sat.Lit) []sat.Lit {
	out := b.lits(len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negBits(x []sat.Lit) []sat.Lit {
	inv := b.lits(len(x))
	for i, l := range x {
		inv[i] = l.Not()
	}
	zero := b.lits(len(x))
	for i := range zero {
		zero[i] = b.litFalse()
	}
	return b.addBits(inv, zero, b.litTrue)
}

// ultBits returns the literal for x <u y.
func (b *blaster) ultBits(x, y []sat.Lit) sat.Lit {
	lt := b.litFalse()
	for i := 0; i < len(x); i++ { // LSB to MSB; MSB dominates
		bitLt := b.mkAnd(x[i].Not(), y[i])
		bitEq := b.mkXnor(x[i], y[i])
		lt = b.mkOr(bitLt, b.mkAnd(bitEq, lt))
	}
	return lt
}

func (b *blaster) eqBits(x, y []sat.Lit) sat.Lit {
	acc := b.litTrue
	for i := range x {
		acc = b.mkAnd(acc, b.mkXnor(x[i], y[i]))
	}
	return acc
}

func (b *blaster) isZero(x []sat.Lit) sat.Lit {
	acc := b.litTrue
	for _, l := range x {
		acc = b.mkAnd(acc, l.Not())
	}
	return acc
}

func (b *blaster) muxBits(c sat.Lit, t, e []sat.Lit) []sat.Lit {
	out := b.lits(len(t))
	for i := range t {
		out[i] = b.mkMux(c, t[i], e[i])
	}
	return out
}

// blastBool lowers a Bool term to a literal.
func (b *blaster) blastBool(t *Term) (sat.Lit, error) {
	if l, ok := b.boolMemo[t]; ok {
		return l, nil
	}
	l, err := b.blastBool1(t)
	if err != nil {
		return 0, err
	}
	b.boolMemo[t] = l
	if b.varHook != nil && t.Kind == KVarBool {
		b.varHook(t, []sat.Lit{l})
	}
	return l, nil
}

func (b *blaster) blastBool1(t *Term) (sat.Lit, error) {
	switch t.Kind {
	case KConstBool:
		return b.constLit(t.Val == 1), nil
	case KVarBool:
		l := b.fresh()
		return l, nil
	case KBNot:
		x, err := b.blastBool(t.Args[0])
		if err != nil {
			return 0, err
		}
		return x.Not(), nil
	case KBAnd, KBOr:
		x, err := b.blastBool(t.Args[0])
		if err != nil {
			return 0, err
		}
		y, err := b.blastBool(t.Args[1])
		if err != nil {
			return 0, err
		}
		if t.Kind == KBAnd {
			return b.mkAnd(x, y), nil
		}
		return b.mkOr(x, y), nil
	case KIte: // Bool-sorted ite
		c, err := b.blastBool(t.Args[0])
		if err != nil {
			return 0, err
		}
		x, err := b.blastBool(t.Args[1])
		if err != nil {
			return 0, err
		}
		y, err := b.blastBool(t.Args[2])
		if err != nil {
			return 0, err
		}
		return b.mkMux(c, x, y), nil
	case KEq:
		switch t.Args[0].SortKind() {
		case SortBool:
			x, err := b.blastBool(t.Args[0])
			if err != nil {
				return 0, err
			}
			y, err := b.blastBool(t.Args[1])
			if err != nil {
				return 0, err
			}
			return b.mkXnor(x, y), nil
		case SortBV:
			x, err := b.blastBV(t.Args[0])
			if err != nil {
				return 0, err
			}
			y, err := b.blastBV(t.Args[1])
			if err != nil {
				return 0, err
			}
			return b.eqBits(x, y), nil
		default:
			return 0, fmt.Errorf("smt: memory equality survived array reduction: %v", t)
		}
	case KUlt, KUle, KSlt, KSle:
		x, err := b.blastBV(t.Args[0])
		if err != nil {
			return 0, err
		}
		y, err := b.blastBV(t.Args[1])
		if err != nil {
			return 0, err
		}
		switch t.Kind {
		case KUlt:
			return b.ultBits(x, y), nil
		case KUle:
			return b.ultBits(y, x).Not(), nil
		case KSlt:
			return b.sltBits(x, y), nil
		default:
			return b.sltBits(y, x).Not(), nil
		}
	}
	return 0, fmt.Errorf("smt: cannot blast Bool term kind %s", kindName(t.Kind))
}

func (b *blaster) sltBits(x, y []sat.Lit) sat.Lit {
	n := len(x)
	sx, sy := x[n-1], y[n-1]
	if n == 1 {
		// 1-bit signed: 1 (=-1) < 0
		return b.mkAnd(sx, sy.Not())
	}
	ltLow := b.ultBits(x[:n-1], y[:n-1])
	// x <s y  iff  (sx ∧ ¬sy) ∨ ((sx ↔ sy) ∧ low(x) <u low(y))
	return b.mkOr(b.mkAnd(sx, sy.Not()), b.mkAnd(b.mkXnor(sx, sy), ltLow))
}

// blastBV lowers a BV term to its bit literals, LSB first.
func (b *blaster) blastBV(t *Term) ([]sat.Lit, error) {
	if ls, ok := b.bvMemo[t]; ok {
		return ls, nil
	}
	ls, err := b.blastBV1(t)
	if err != nil {
		return nil, err
	}
	if len(ls) != int(t.Width) {
		return nil, fmt.Errorf("smt: internal width mismatch blasting %v: got %d want %d", t, len(ls), t.Width)
	}
	b.bvMemo[t] = ls
	if b.varHook != nil && t.Kind == KVarBV {
		b.varHook(t, ls)
	}
	return ls, nil
}

func (b *blaster) args2(t *Term) (x, y []sat.Lit, err error) {
	x, err = b.blastBV(t.Args[0])
	if err != nil {
		return nil, nil, err
	}
	y, err = b.blastBV(t.Args[1])
	return x, y, err
}

func (b *blaster) blastBV1(t *Term) ([]sat.Lit, error) {
	w := int(t.Width)
	switch t.Kind {
	case KConstBV:
		out := b.lits(w)
		for i := 0; i < w; i++ {
			out[i] = b.constLit(t.Val>>i&1 == 1)
		}
		return out, nil
	case KVarBV:
		out := b.lits(w)
		for i := range out {
			out[i] = b.fresh()
		}
		return out, nil
	case KAdd:
		x, y, err := b.args2(t)
		if err != nil {
			return nil, err
		}
		return b.addBits(x, y, b.litFalse()), nil
	case KSub:
		x, y, err := b.args2(t)
		if err != nil {
			return nil, err
		}
		inv := b.lits(len(y))
		for i, l := range y {
			inv[i] = l.Not()
		}
		return b.addBits(x, inv, b.litTrue), nil
	case KNeg:
		x, err := b.blastBV(t.Args[0])
		if err != nil {
			return nil, err
		}
		return b.negBits(x), nil
	case KMul:
		x, y, err := b.args2(t)
		if err != nil {
			return nil, err
		}
		acc := b.lits(w)
		for i := range acc {
			acc[i] = b.litFalse()
		}
		for i := 0; i < w; i++ {
			// acc += (x << i) masked by y[i]
			addend := b.lits(w)
			for j := 0; j < w; j++ {
				if j < i {
					addend[j] = b.litFalse()
				} else {
					addend[j] = b.mkAnd(x[j-i], y[i])
				}
			}
			acc = b.addBits(acc, addend, b.litFalse())
		}
		return acc, nil
	case KUDiv, KURem:
		x, y, err := b.args2(t)
		if err != nil {
			return nil, err
		}
		q, r := b.divRem(x, y)
		bz := b.isZero(y)
		if t.Kind == KUDiv {
			ones := b.lits(w)
			for i := range ones {
				ones[i] = b.litTrue
			}
			return b.muxBits(bz, ones, q), nil
		}
		return b.muxBits(bz, x, r), nil
	case KAnd, KOr, KXor:
		x, y, err := b.args2(t)
		if err != nil {
			return nil, err
		}
		out := b.lits(w)
		for i := 0; i < w; i++ {
			switch t.Kind {
			case KAnd:
				out[i] = b.mkAnd(x[i], y[i])
			case KOr:
				out[i] = b.mkOr(x[i], y[i])
			default:
				out[i] = b.mkXor(x[i], y[i])
			}
		}
		return out, nil
	case KNot:
		x, err := b.blastBV(t.Args[0])
		if err != nil {
			return nil, err
		}
		out := b.lits(w)
		for i := range out {
			out[i] = x[i].Not()
		}
		return out, nil
	case KShl, KLShr, KAShr:
		x, y, err := b.args2(t)
		if err != nil {
			return nil, err
		}
		return b.shift(t.Kind, x, y), nil
	case KConcat:
		hi, err := b.blastBV(t.Args[0])
		if err != nil {
			return nil, err
		}
		lo, err := b.blastBV(t.Args[1])
		if err != nil {
			return nil, err
		}
		out := b.lits(w)[:0]
		out = append(out, lo...)
		out = append(out, hi...)
		return out, nil
	case KExtract:
		x, err := b.blastBV(t.Args[0])
		if err != nil {
			return nil, err
		}
		return x[t.Lo : t.Hi+1], nil
	case KZExt:
		x, err := b.blastBV(t.Args[0])
		if err != nil {
			return nil, err
		}
		out := b.lits(w)
		copy(out, x)
		for i := len(x); i < w; i++ {
			out[i] = b.litFalse()
		}
		return out, nil
	case KSExt:
		x, err := b.blastBV(t.Args[0])
		if err != nil {
			return nil, err
		}
		out := b.lits(w)
		copy(out, x)
		sign := x[len(x)-1]
		for i := len(x); i < w; i++ {
			out[i] = sign
		}
		return out, nil
	case KIte:
		c, err := b.blastBool(t.Args[0])
		if err != nil {
			return nil, err
		}
		x, err := b.blastBV(t.Args[1])
		if err != nil {
			return nil, err
		}
		y, err := b.blastBV(t.Args[2])
		if err != nil {
			return nil, err
		}
		return b.muxBits(c, x, y), nil
	}
	return nil, fmt.Errorf("smt: cannot blast BV term kind %s", kindName(t.Kind))
}

// shift implements barrel shifters for shl/lshr/ashr with SMT-LIB
// out-of-range semantics.
func (b *blaster) shift(kind Kind, x, amt []sat.Lit) []sat.Lit {
	w := len(x)
	fill := b.litFalse()
	if kind == KAShr {
		fill = x[w-1]
	}
	acc := b.lits(w)
	copy(acc, x)
	big := b.litFalse() // any shift-amount bit representing ≥ w
	for k := 0; k < len(amt); k++ {
		if k >= 7 || 1<<k >= w { // 2^k ≥ w: this amount bit alone overshoots
			big = b.mkOr(big, amt[k])
			continue
		}
		sh := 1 << k
		shifted := b.lits(w)
		switch kind {
		case KShl:
			for i := 0; i < w; i++ {
				if i < sh {
					shifted[i] = b.litFalse()
				} else {
					shifted[i] = acc[i-sh]
				}
			}
		default: // LShr, AShr
			for i := 0; i < w; i++ {
				if i+sh < w {
					shifted[i] = acc[i+sh]
				} else {
					shifted[i] = fill
				}
			}
		}
		acc = b.muxBits(amt[k], shifted, acc)
	}
	// Out-of-range amounts: shl/lshr yield 0, ashr yields all sign bits.
	fillVec := b.lits(w)
	for i := range fillVec {
		fillVec[i] = fill
	}
	return b.muxBits(big, fillVec, acc)
}

// divRem builds a restoring divider; returns (quotient, remainder) for a
// nonzero divisor (zero divisor handled by the caller).
func (b *blaster) divRem(x, y []sat.Lit) (q, r []sat.Lit) {
	w := len(x)
	q = b.lits(w)
	r = b.lits(w)
	for i := range r {
		r[i] = b.litFalse()
	}
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | x[i]
		nr := b.lits(w)
		nr[0] = x[i]
		copy(nr[1:], r[:w-1])
		// if nr >= y: nr -= y, q[i] = 1
		ge := b.ultBits(nr, y).Not()
		inv := b.lits(w)
		for j, l := range y {
			inv[j] = l.Not()
		}
		sub := b.addBits(nr, inv, b.litTrue)
		r = b.muxBits(ge, sub, nr)
		q[i] = ge
	}
	return q, r
}
