package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIncrementalMatchesCold: an incremental solver answering a SEQUENCE
// of queries must agree with fresh cold solvers answering each query
// independently — including queries over shared memory terms (which
// exercise the persistent Ackermann-constraint bookkeeping).
func TestIncrementalMatchesCold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := NewContext()
		inc := NewSolver(ctx)
		inc.Incremental = true

		m := ctx.VarMem("M")
		for q := 0; q < 6; q++ {
			var form *Term
			switch rng.Intn(3) {
			case 0: // pure bitvector query
				a := randomTerm(ctx, rng, 4, 3)
				b := randomTerm(ctx, rng, 4, 3)
				form = ctx.Eq(a, b)
			case 1: // memory select/store query
				addr1 := ctx.VarBV("p", 64)
				addr2 := ctx.BV(uint64(rng.Intn(4)), 64)
				v := ctx.VarBV("v", 8)
				chain := ctx.Store(m, addr1, v)
				if rng.Intn(2) == 0 {
					chain = ctx.Store(chain, addr2, ctx.BV(uint64(rng.Intn(256)), 8))
				}
				form = ctx.Eq(ctx.Select(chain, addr2), ctx.VarBV("w", 8))
			default: // memory equality query
				a1 := ctx.BV(uint64(rng.Intn(3)), 64)
				a2 := ctx.BV(uint64(rng.Intn(3)), 64)
				v1 := ctx.VarBV("v1", 8)
				v2 := ctx.VarBV("v2", 8)
				m1 := ctx.Store(ctx.Store(m, a1, v1), a2, v2)
				m2 := ctx.Store(ctx.Store(m, a2, v2), a1, v1)
				form = ctx.Eq(m1, m2)
			}
			if rng.Intn(2) == 0 {
				form = ctx.Not(form)
			}

			gotInc, _, errInc := inc.CheckSat(form)
			cold := NewSolver(ctx)
			gotCold, _, errCold := cold.CheckSat(form)
			if (errInc == nil) != (errCold == nil) {
				t.Logf("seed %d q %d: error mismatch inc=%v cold=%v", seed, q, errInc, errCold)
				return false
			}
			if errInc != nil {
				continue
			}
			if gotInc != gotCold {
				t.Logf("seed %d q %d: inc=%v cold=%v form=%v", seed, q, gotInc, gotCold, form)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalModelValidity: Sat models from the incremental path must
// satisfy the formula.
func TestIncrementalModelValidity(t *testing.T) {
	ctx := NewContext()
	s := NewSolver(ctx)
	s.Incremental = true
	x := ctx.VarBV("x", 16)
	y := ctx.VarBV("y", 16)
	// A sequence of queries narrowing the space.
	queries := []*Term{
		ctx.Ult(x, ctx.BV(100, 16)),
		ctx.AndB(ctx.Ult(x, y), ctx.Ult(y, ctx.BV(50, 16))),
		ctx.Eq(ctx.Add(x, y), ctx.BV(77, 16)),
	}
	for i, q := range queries {
		res, model, err := s.CheckSat(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res != ResultSat {
			t.Fatalf("query %d: %v, want sat", i, res)
		}
		ok, err := model.EvalBool(q)
		if err != nil || !ok {
			t.Fatalf("query %d: model invalid (err=%v)", i, err)
		}
	}
	// And an unsat query on the same instance.
	res, _, err := s.CheckSat(ctx.AndB(ctx.Ult(x, y), ctx.Ult(y, x)))
	if err != nil || res != ResultUnsat {
		t.Fatalf("unsat query: %v %v", res, err)
	}
	// The instance is still usable afterwards.
	res, _, err = s.CheckSat(ctx.Eq(x, ctx.BV(1, 16)))
	if err != nil || res != ResultSat {
		t.Fatalf("post-unsat query: %v %v", res, err)
	}
}
