package smt

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/proof"
)

// distinctUnder builds the pigeonhole-flavored constraint "n distinct
// values, each below bound". Unsat iff n > bound, and resolution-hard
// enough near the boundary to guarantee real CDCL conflicts — which is
// what forces a portfolio race when After is tiny.
func distinctUnder(ctx *Context, tag string, n int, width uint8, bound uint64) *Term {
	vars := make([]*Term, n)
	form := ctx.True()
	for i := range vars {
		vars[i] = ctx.VarBV(fmt.Sprintf("%s%d", tag, i), width)
		form = ctx.AndB(form, ctx.Ult(vars[i], ctx.BV(bound, width)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			form = ctx.AndB(form, ctx.Not(ctx.Eq(vars[i], vars[j])))
		}
	}
	return form
}

// TestPortfolioMatchesPlain: a solver racing every query that survives a
// one-conflict probe must return exactly the verdicts of a plain solver,
// on both the one-shot and the incremental paths. This is the row-parity
// guarantee the harness relies on when it lends idle worker slots.
func TestPortfolioMatchesPlain(t *testing.T) {
	var races int64
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := NewContext()
		pf := NewPortfolio(3)
		pf.After = 1 // race everything non-trivial
		raced := NewSolver(ctx)
		raced.Portfolio = pf
		raced.Inprocess = true
		inc := NewSolver(ctx)
		inc.Incremental = true
		inc.Portfolio = pf
		inc.Inprocess = true

		queries := []*Term{
			// Guaranteed-conflict queries on both sides of the boundary.
			distinctUnder(ctx, "u", 6, 3, 5), // unsat
			distinctUnder(ctx, "s", 5, 3, 5), // sat
		}
		for q := 0; q < 3; q++ {
			form := ctx.Eq(randomTerm(ctx, rng, 4, 3), randomTerm(ctx, rng, 4, 3))
			if rng.Intn(2) == 0 {
				form = ctx.Not(form)
			}
			queries = append(queries, form)
		}
		for q, form := range queries {
			cold := NewSolver(ctx)
			want, _, errCold := cold.CheckSat(form)
			got, _, errRaced := raced.CheckSat(form)
			gotInc, _, errInc := inc.CheckSat(form)
			if (errCold == nil) != (errRaced == nil) || (errCold == nil) != (errInc == nil) {
				t.Logf("seed %d q %d: error mismatch cold=%v raced=%v inc=%v",
					seed, q, errCold, errRaced, errInc)
				return false
			}
			if errCold != nil {
				continue
			}
			if got != want || gotInc != want {
				t.Logf("seed %d q %d: cold=%v raced=%v inc=%v", seed, q, want, got, gotInc)
				return false
			}
		}
		races += raced.Stats.Races + inc.Stats.Races
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if races == 0 {
		t.Fatal("no query ever raced: the portfolio path was not exercised")
	}
}

// TestPortfolioCertsVerify: with a Recorder attached, every certificate a
// portfolio run emits — including traces recorded from a winning racer's
// self-contained refutation — must verify from scratch with CheckDir.
func TestPortfolioCertsVerify(t *testing.T) {
	for _, incremental := range []bool{false, true} {
		t.Run(fmt.Sprintf("incremental=%v", incremental), func(t *testing.T) {
			ctx := NewContext()
			rec := proof.NewRecorder(fmt.Sprintf("portfolio-inc-%v", incremental))
			pf := NewPortfolio(3)
			pf.After = 1
			s := NewSolver(ctx)
			s.Recorder = rec
			s.Portfolio = pf
			s.Inprocess = true
			s.Incremental = incremental

			queries := []struct {
				form *Term
				want Result
			}{
				{distinctUnder(ctx, "a", 7, 3, 6), ResultUnsat},
				{distinctUnder(ctx, "b", 6, 3, 6), ResultSat},
				{distinctUnder(ctx, "c", 8, 3, 7), ResultUnsat},
				{distinctUnder(ctx, "d", 6, 3, 5), ResultUnsat},
			}
			for i, q := range queries {
				res, _, err := s.CheckSat(q.form)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if res != q.want {
					t.Fatalf("query %d: got %v, want %v", i, res, q.want)
				}
			}
			if s.Stats.Races == 0 {
				t.Fatal("no query raced despite After=1 on pigeonhole instances")
			}
			t.Logf("races=%d racer wins=%d", s.Stats.Races, s.Stats.RaceRacerWins)

			dir := t.TempDir()
			if _, err := proof.WriteCerts(dir, rec); err != nil {
				t.Fatal(err)
			}
			report, err := proof.CheckDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range report.Rejections {
				t.Errorf("rejection: %s", r)
			}
			if report.ByKind[proof.KindDRAT] < 3 {
				t.Errorf("expected at least 3 DRAT certificates, got %d", report.ByKind[proof.KindDRAT])
			}
		})
	}
}

// TestBudgetVsDeadlineAttribution: Unknown must be blamed on the budget
// that actually ran out. Before PR 6 every sat.Unknown was reported as
// ErrBudget, so wall-clock starvation was misfiled in the tail reports.
func TestBudgetVsDeadlineAttribution(t *testing.T) {
	hard := func(ctx *Context, tag string) *Term { return distinctUnder(ctx, tag, 12, 4, 11) }

	t.Run("budget", func(t *testing.T) {
		ctx := NewContext()
		s := NewSolver(ctx)
		s.ConflictBudget = 3
		res, _, err := s.CheckSat(hard(ctx, "p"))
		if res != ResultUnknown || err != ErrBudget {
			t.Fatalf("got (%v, %v), want (Unknown, ErrBudget)", res, err)
		}
	})
	t.Run("deadline-expired", func(t *testing.T) {
		ctx := NewContext()
		s := NewSolver(ctx)
		s.ConflictBudget = 3 // both budgets constrained: deadline must win the blame
		s.Deadline = time.Now().Add(-time.Second)
		res, _, err := s.CheckSat(hard(ctx, "p"))
		if res != ResultUnknown || err != ErrDeadline {
			t.Fatalf("got (%v, %v), want (Unknown, ErrDeadline)", res, err)
		}
	})
	t.Run("deadline-mid-solve", func(t *testing.T) {
		ctx := NewContext()
		s := NewSolver(ctx)
		// Unlimited conflicts: the only way this hard instance stops early
		// is the deadline expiring inside the search loop, and that must
		// surface as ErrDeadline even though sat.Solve returned Unknown.
		s.Deadline = time.Now().Add(30 * time.Millisecond)
		res, _, err := s.CheckSat(distinctUnder(ctx, "q", 16, 4, 15))
		if res != ResultUnknown || err != ErrDeadline {
			t.Fatalf("got (%v, %v), want (Unknown, ErrDeadline)", res, err)
		}
	})
}

// TestCacheHitServedPastDeadline: an expired deadline gates solving, not
// answering. A shared-cache hit costs nothing, so it must be served (and
// certified by reference) even when the per-function budget is gone.
func TestCacheHitServedPastDeadline(t *testing.T) {
	ctx := NewContext()
	cache := NewCache()
	x := ctx.VarBV("x", 8)
	y := ctx.VarBV("y", 8)
	satQ := ctx.Eq(ctx.Add(x, y), ctx.BV(5, 8))
	unsatQ := distinctUnder(ctx, "z", 4, 2, 3)

	warm := NewSolver(ctx)
	warm.Cache = cache
	if res, _, err := warm.CheckSat(satQ); err != nil || res != ResultSat {
		t.Fatalf("warm sat query: (%v, %v)", res, err)
	}
	if res, _, err := warm.CheckSat(unsatQ); err != nil || res != ResultUnsat {
		t.Fatalf("warm unsat query: (%v, %v)", res, err)
	}

	late := NewSolver(ctx)
	late.Cache = cache
	late.Deadline = time.Now().Add(-time.Hour)
	if res, _, err := late.CheckSat(satQ); err != nil || res != ResultSat {
		t.Fatalf("cached sat query past deadline: (%v, %v), want (Sat, nil)", res, err)
	}
	if res, _, err := late.CheckSat(unsatQ); err != nil || res != ResultUnsat {
		t.Fatalf("cached unsat query past deadline: (%v, %v), want (Unsat, nil)", res, err)
	}
	if late.Stats.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", late.Stats.CacheHits)
	}
	// An uncached query still hits the deadline gate.
	if res, _, err := late.CheckSat(ctx.Eq(x, ctx.BV(1, 8))); res != ResultUnknown || err != ErrDeadline {
		t.Fatalf("uncached query past deadline: (%v, %v), want (Unknown, ErrDeadline)", res, err)
	}
}
