package smt

import "fmt"

// arrayReducer eliminates the theory of arrays from a Bool term:
//
//  1. Memory equalities between store-chains over the *same* base variable
//     are rewritten by extensionality into a finite conjunction of byte
//     equalities over the union of touched indices (all untouched indices
//     trivially agree because the chains share the base).
//  2. select(store(m,i,v), j) is expanded to ite(i=j, v, select(m,j)).
//  3. Residual select(base, addr) applications are Ackermannized: each
//     distinct (base, addr) pair becomes a fresh BV8 variable, and
//     functional-consistency constraints (addr_i = addr_j → v_i = v_j)
//     are conjoined onto the formula.
//
// This is a complete decision procedure for the fragment KEQ generates,
// where both programs execute against a shared initial memory.
type arrayReducer struct {
	ctx   *Context
	memo  map[*Term]*Term
	sel   map[*Term][]ackEntry // base mem var -> entries
	selID int
	// consEmitted marks Ackermann pairs whose functional-consistency
	// constraint has already been returned (incremental mode re-uses the
	// reducer across queries and must emit each constraint once).
	consEmitted map[[2]*Term]bool
}

type ackEntry struct {
	addr *Term
	v    *Term // fresh BV8 variable standing for select(base, addr)
}

func newArrayReducer(ctx *Context) *arrayReducer {
	return &arrayReducer{
		ctx:         ctx,
		memo:        make(map[*Term]*Term),
		sel:         make(map[*Term][]ackEntry),
		consEmitted: make(map[[2]*Term]bool),
	}
}

// reduce rewrites t (Bool) and returns the array-free formula together with
// the Ackermann consistency constraints to conjoin.
func (r *arrayReducer) reduce(t *Term) (*Term, *Term, error) {
	out, err := r.walk(t)
	if err != nil {
		return nil, nil, err
	}
	cons := r.ctx.True()
	for _, entries := range r.sel {
		for i := 0; i < len(entries); i++ {
			for j := i + 1; j < len(entries); j++ {
				ei, ej := entries[i], entries[j]
				key := [2]*Term{ei.v, ej.v}
				if r.consEmitted[key] {
					continue
				}
				r.consEmitted[key] = true
				cons = r.ctx.AndB(cons,
					r.ctx.Implies(r.ctx.Eq(ei.addr, ej.addr), r.ctx.Eq(ei.v, ej.v)))
			}
		}
	}
	return out, cons, nil
}

func (r *arrayReducer) walk(t *Term) (*Term, error) {
	if out, ok := r.memo[t]; ok {
		return out, nil
	}
	out, err := r.walk1(t)
	if err != nil {
		return nil, err
	}
	r.memo[t] = out
	return out, nil
}

func (r *arrayReducer) walk1(t *Term) (*Term, error) {
	switch t.Kind {
	case KConstBV, KConstBool, KVarBV, KVarBool:
		return t, nil
	case KVarMem, KStore:
		// Memory-sorted terms are only legal under Eq/Select, which are
		// handled by their parents; reaching one directly is a usage error.
		return nil, fmt.Errorf("smt: memory-sorted term in non-array position: %v", t)
	case KSelect:
		addr, err := r.walk(t.Args[1])
		if err != nil {
			return nil, err
		}
		return r.reduceSelect(t.Args[0], addr)
	case KEq:
		if t.Args[0].SortKind() == SortMem {
			return r.reduceMemEq(t.Args[0], t.Args[1])
		}
	case KIte:
		if t.Args[1].SortKind() == SortMem {
			return nil, fmt.Errorf("smt: memory-sorted ite unsupported: %v", t)
		}
	}
	// Generic recursion.
	changed := false
	args := make([]*Term, len(t.Args))
	for i, a := range t.Args {
		na, err := r.walk(a)
		if err != nil {
			return nil, err
		}
		args[i] = na
		if na != a {
			changed = true
		}
	}
	if !changed {
		return t, nil
	}
	return r.rebuild(t, args)
}

// rebuild re-invokes the smart constructor for t with new arguments.
func (r *arrayReducer) rebuild(t *Term, a []*Term) (*Term, error) {
	c := r.ctx
	switch t.Kind {
	case KAdd:
		return c.Add(a[0], a[1]), nil
	case KSub:
		return c.Sub(a[0], a[1]), nil
	case KMul:
		return c.Mul(a[0], a[1]), nil
	case KUDiv:
		return c.UDiv(a[0], a[1]), nil
	case KURem:
		return c.URem(a[0], a[1]), nil
	case KNeg:
		return c.Neg(a[0]), nil
	case KAnd:
		return c.And(a[0], a[1]), nil
	case KOr:
		return c.Or(a[0], a[1]), nil
	case KXor:
		return c.Xor(a[0], a[1]), nil
	case KNot:
		return c.NotBV(a[0]), nil
	case KShl:
		return c.Shl(a[0], a[1]), nil
	case KLShr:
		return c.LShr(a[0], a[1]), nil
	case KAShr:
		return c.AShr(a[0], a[1]), nil
	case KConcat:
		return c.Concat(a[0], a[1]), nil
	case KExtract:
		return c.Extract(a[0], t.Hi, t.Lo), nil
	case KZExt:
		return c.ZExt(a[0], t.Width), nil
	case KSExt:
		return c.SExt(a[0], t.Width), nil
	case KIte:
		return c.Ite(a[0], a[1], a[2]), nil
	case KEq:
		return c.Eq(a[0], a[1]), nil
	case KUlt:
		return c.Ult(a[0], a[1]), nil
	case KUle:
		return c.Ule(a[0], a[1]), nil
	case KSlt:
		return c.Slt(a[0], a[1]), nil
	case KSle:
		return c.Sle(a[0], a[1]), nil
	case KBAnd:
		return c.AndB(a[0], a[1]), nil
	case KBOr:
		return c.OrB(a[0], a[1]), nil
	case KBNot:
		return c.Not(a[0]), nil
	}
	return nil, fmt.Errorf("smt: rebuild of unsupported kind %s", kindName(t.Kind))
}

// reduceSelect turns select(chain, addr) into an ite cascade over the
// chain's stores, bottoming out in an Ackermann variable for the base.
func (r *arrayReducer) reduceSelect(memT, addr *Term) (*Term, error) {
	c := r.ctx
	switch memT.Kind {
	case KStore:
		idx, err := r.walk(memT.Args[1])
		if err != nil {
			return nil, err
		}
		val, err := r.walk(memT.Args[2])
		if err != nil {
			return nil, err
		}
		rest, err := r.reduceSelect(memT.Args[0], addr)
		if err != nil {
			return nil, err
		}
		return c.Ite(c.Eq(idx, addr), val, rest), nil
	case KVarMem:
		return r.ackermann(memT, addr), nil
	}
	return nil, fmt.Errorf("smt: select from unsupported memory term %v", memT)
}

func (r *arrayReducer) ackermann(base, addr *Term) *Term {
	for _, e := range r.sel[base] {
		if e.addr == addr {
			return e.v
		}
	}
	r.selID++
	v := r.ctx.VarBV(fmt.Sprintf("sel!%s!%d", base.Name, r.selID), 8)
	r.sel[base] = append(r.sel[base], ackEntry{addr: addr, v: v})
	return v
}

// chainInfo decomposes a memory term into its base variable and the list
// of (index, value) stores, outermost first.
func chainInfo(t *Term) (base *Term, stores []*Term, err error) {
	for t.Kind == KStore {
		stores = append(stores, t)
		t = t.Args[0]
	}
	if t.Kind != KVarMem {
		return nil, nil, fmt.Errorf("smt: memory chain with non-variable base: %v", t)
	}
	return t, stores, nil
}

// reduceMemEq rewrites m1 = m2 by extensionality over touched indices.
func (r *arrayReducer) reduceMemEq(m1, m2 *Term) (*Term, error) {
	c := r.ctx
	b1, s1, err := chainInfo(m1)
	if err != nil {
		return nil, err
	}
	b2, s2, err := chainInfo(m2)
	if err != nil {
		return nil, err
	}
	if b1 != b2 {
		return nil, fmt.Errorf("smt: memory equality over distinct bases %q and %q", b1.Name, b2.Name)
	}
	// Union of store indices, deduplicated syntactically.
	seen := make(map[*Term]bool)
	var idxs []*Term
	for _, st := range append(append([]*Term{}, s1...), s2...) {
		i := st.Args[1]
		if !seen[i] {
			seen[i] = true
			idxs = append(idxs, i)
		}
	}
	acc := c.True()
	for _, i := range idxs {
		l, err := r.reduceSelectWalked(m1, i)
		if err != nil {
			return nil, err
		}
		rr, err := r.reduceSelectWalked(m2, i)
		if err != nil {
			return nil, err
		}
		acc = c.AndB(acc, c.Eq(l, rr))
	}
	return acc, nil
}

// reduceSelectWalked is reduceSelect with the address walked first.
func (r *arrayReducer) reduceSelectWalked(memT, addr *Term) (*Term, error) {
	a, err := r.walk(addr)
	if err != nil {
		return nil, err
	}
	return r.reduceSelect(memT, a)
}
