package smt

import (
	"repro/internal/sat"
	"repro/internal/term"
)

// LitArena is a slab allocator for the bit-blaster's literal vectors.
// The blaster allocates thousands of short []sat.Lit slices per
// function (one per bit-vector node, plus temporaries inside adders,
// shifters, and dividers); under a long corpus run those allocations
// dominate the garbage the interpreter phase produces. An arena turns
// them into pointer bumps inside reused slabs, with one Reset between
// functions returning all of it at once.
//
// Safety: arena-allocated slices are valid until the next Reset. The
// blaster's memos (bvMemo values, KExtract subslices) alias arena
// memory, so Reset must only happen between functions — when the
// blaster, solver, and all terms are discarded together. The SAT layer
// never retains an arena slice: sat.AddClause copies its literals.
// A LitArena is not safe for concurrent use; each worker owns one.
type LitArena struct {
	slabs [][]sat.Lit
	slab  int
	used  int
}

// litSlabSize is the literal count per slab. Vectors wider than a slab
// bypass the arena entirely (a 64-bit multiplier's temporaries stay well
// below this).
const litSlabSize = 1 << 14

// NewLitArena returns an empty literal arena.
func NewLitArena() *LitArena {
	return &LitArena{}
}

// alloc returns a zeroed literal slice of length n with no spare
// capacity shared with later allocations. A nil arena, and any request
// larger than a slab, falls back to the ordinary allocator.
func (a *LitArena) alloc(n int) []sat.Lit {
	if a == nil || n > litSlabSize {
		return make([]sat.Lit, n)
	}
	if a.slab < len(a.slabs) && a.used+n > litSlabSize {
		a.slab++
		a.used = 0
	}
	if a.slab == len(a.slabs) {
		a.slabs = append(a.slabs, make([]sat.Lit, litSlabSize))
	}
	sl := a.slabs[a.slab]
	out := sl[a.used : a.used+n : a.used+n]
	a.used += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// Reset makes every slab available again. All slices handed out since
// the previous Reset are invalidated; see the type comment for when
// that is safe.
func (a *LitArena) Reset() {
	if a == nil {
		return
	}
	a.slab, a.used = 0, 0
}

// Scratch bundles the per-worker reusable memory of the validation
// pipeline: the blaster's literal arena and the term context's
// hash-consing storage. One Scratch is created per worker and Reset
// between functions; everything it backs (terms, literal vectors,
// blaster memos) has per-function lifetime.
type Scratch struct {
	Lits  *LitArena
	Terms *term.Storage
}

// NewScratch returns empty per-worker scratch memory.
func NewScratch() *Scratch {
	return &Scratch{Lits: NewLitArena(), Terms: term.NewStorage()}
}

// Reset rewinds both arenas. Call only between functions, after every
// term and literal vector of the previous function is dead.
func (s *Scratch) Reset() {
	if s == nil {
		return
	}
	s.Lits.Reset()
	s.Terms.Reset()
}

// NewContextWith returns a term context backed by reusable storage; see
// term.NewContextWith. The caller must Reset the scratch first.
func NewContextWith(st *term.Storage) *Context {
	return term.NewContextWith(st)
}

// litArena returns the solver's literal arena, or nil (heap fallback)
// when no scratch is attached.
func (s *Solver) litArena() *LitArena {
	if s.Scratch == nil {
		return nil
	}
	return s.Scratch.Lits
}
