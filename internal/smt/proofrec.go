package smt

import (
	"repro/internal/proof"
	"repro/internal/sat"
)

// This file is the glue between the solver and the certificate recorder:
// every decided query (and only decided queries — budget and deadline
// errors emit nothing) produces exactly one proof.QueryCert, and every
// SAT instance that runs with a recorder attached streams its clause
// trace into a proof.Session.

// litDimacs converts a solver literal to DIMACS encoding (1-based
// variable, negative when negated).
func litDimacs(l sat.Lit) int {
	v := l.Var() + 1
	if l.Neg() {
		return -v
	}
	return v
}

// flushProof converts the proof-log steps at index from and later into
// session steps, returning the new watermark. Literal buffers are reused
// across steps; Session.AddStep copies into its flat pools (or streams
// straight to disk under a streaming recorder). The flushed prefix is
// trimmed from the log so a long incremental session holds only its
// unflushed tail in memory. ProofBytes is NOT estimated here: it counts
// bytes actually written to disk, accounted by the artifact writers.
func (s *Solver) flushProof(log *sat.ProofLog, from int, sess *proof.Session) int {
	var dim []int32
	for i := from; i < log.Len(); i++ {
		op, lits := log.Step(i)
		dim = dim[:0]
		for _, l := range lits {
			v := int32(l.Var()) + 1
			if l.Neg() {
				v = -v
			}
			dim = append(dim, v)
		}
		sess.AddStep(op, dim)
	}
	n := log.Len()
	log.Trim(n)
	return n
}

// hookVars returns a blaster varHook that records the CNF variables
// backing each free term variable into sess.
func (s *Solver) hookVars(sess *proof.Session) func(t *Term, lits []sat.Lit) {
	return func(t *Term, lits []sat.Lit) {
		bits := make([]int, len(lits))
		for i, l := range lits {
			bits[i] = litDimacs(l)
		}
		sort := "bool"
		if t.Kind == KVarBV {
			sort = "bv"
		}
		sess.MapVar(t.Name, sort, bits)
	}
}

// mapBlasterVars registers every free term variable already encoded by b
// into sess — the after-the-fact equivalent of hookVars for sessions
// created once the blaster exists (a portfolio racer's session: the racer
// shares the blaster's variable numbering via the snapshot).
func (s *Solver) mapBlasterVars(sess *proof.Session, b *blaster) {
	hook := s.hookVars(sess)
	for t, lits := range b.bvMemo {
		if t.Kind == KVarBV {
			hook(t, lits)
		}
	}
	for t, l := range b.boolMemo {
		if t.Kind == KVarBool {
			hook(t, []sat.Lit{l})
		}
	}
}

func (s *Solver) recordTrivial(f *Term, result string) {
	if s.Recorder == nil {
		return
	}
	s.Recorder.RecordTrivial(f, result, "")
	s.lastCert = "trivial"
	s.Stats.Certificates++
}

func (s *Solver) recordSimplified(f *Term, result string, key string) {
	if s.Recorder == nil {
		return
	}
	s.Recorder.RecordSimplified(f, result, key)
	s.lastCert = "simplified"
	s.Stats.Certificates++
}

func (s *Solver) recordRef(key string, result string) {
	if s.Recorder == nil {
		return
	}
	s.Recorder.RecordRef(key, result)
	s.lastCert = "ref"
	s.Stats.Certificates++
}

func (s *Solver) recordModel(f *Term, m *Assign, key string) {
	if s.Recorder == nil {
		return
	}
	s.Recorder.RecordModel(f, proof.ModelFromAssign(m), key)
	s.lastCert = "model"
	s.Stats.Certificates++
}

// recordUnsat flushes the pending trace steps and records the Unsat
// certificate at the resulting position. final is the RUP obligation in
// DIMACS encoding: nil for a global refutation (empty clause), or the
// negated activation assumption of an incremental query.
func (s *Solver) recordUnsat(log *sat.ProofLog, from int, sess *proof.Session, final []int, key string) int {
	if s.Recorder == nil {
		return from
	}
	from = s.flushProof(log, from, sess)
	s.Recorder.RecordUnsat(sess, sess.Len(), final, key)
	s.lastCert = "drat"
	s.Stats.Certificates++
	return from
}
