package smt

import (
	"repro/internal/sat"
)

// Portfolio racing: an SMT query whose SAT search survives a probe budget
// of conflicts is raced across idle harness workers with diversified
// solver configurations (LBD on/off, restart cadence, phase polarity,
// activity seed); the first solver to decide cancels the rest through a
// shared sat.Stop token polled in the search loop alongside the deadline.
// The pool holds one token per harness worker: a worker lends its slot
// while it blocks in pipeline phases (parsing, ISel, symbolic stepping)
// and takes it back before solving, so racers only ever consume capacity
// the run was wasting. The winner's solver — primary or racer — supplies
// the model or the DRAT trace, so certification is unchanged.

// Portfolio is a pool of solve slots shared by every solver of a run.
// One Portfolio is created per harness run (or per single-file tv
// invocation) and attached to each worker's Solver.
type Portfolio struct {
	tokens chan struct{}
	// After is the probe conflict budget: a query races only after its
	// primary search exceeds this many conflicts (0 = default 2000).
	After int64
	// MaxRacers bounds the slots one query may borrow (0 = default 3).
	MaxRacers int
}

// NewPortfolio returns a pool with one token per worker slot.
func NewPortfolio(slots int) *Portfolio {
	if slots < 1 {
		slots = 1
	}
	p := &Portfolio{tokens: make(chan struct{}, slots)}
	for i := 0; i < slots; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Acquire blocks until a slot is free. Workers call it before compute-
// bound validation work; racers never block (TryAcquire).
func (p *Portfolio) Acquire() { <-p.tokens }

// Release returns a slot taken by Acquire or TryAcquire.
func (p *Portfolio) Release() { p.tokens <- struct{}{} }

// TryAcquire takes a slot only if one is idle right now.
func (p *Portfolio) TryAcquire() bool {
	select {
	case <-p.tokens:
		return true
	default:
		return false
	}
}

func (p *Portfolio) afterConflicts() int64 {
	if p.After > 0 {
		return p.After
	}
	return 2000
}

func (p *Portfolio) maxRacers() int {
	if p.MaxRacers > 0 {
		return p.MaxRacers
	}
	return 3
}

// raceConfig is one diversified solver configuration. The seeds are
// arbitrary odd 64-bit constants (golden-ratio family); what matters is
// that each racer explores a genuinely different search order than the
// primary, which keeps its default configuration and its learnt clauses.
type raceConfig struct {
	lbd      bool
	phasePos bool
	seed     uint64
	restart  int64
}

var raceConfigs = []raceConfig{
	{lbd: true, phasePos: true, seed: 0x9e3779b97f4a7c15, restart: 100},
	{lbd: true, phasePos: false, seed: 0xd1b54a32d192ed03, restart: 512},
	{lbd: false, phasePos: false, seed: 0x94d049bb133111eb, restart: 100},
}

// solveRaced runs primary.Solve with portfolio racing. The primary first
// searches alone under the probe budget; if it comes back Unknown with
// budget and deadline to spare, the query is raced: up to maxRacers fresh
// solvers are built from a level-0 snapshot of the primary's instance
// (assumptions become input units) and run concurrently with the
// continuing primary — which keeps its learnt clauses — until the first
// decision stops the rest. Returns the verdict and the solver that
// produced it; the caller extracts the model or flushes the proof from
// the winner. All goroutines are joined before returning, so the primary
// is never shared with a live racer.
func (s *Solver) solveRaced(primary *sat.Solver, assumps ...sat.Lit) (sat.Status, *sat.Solver) {
	pf := s.Portfolio
	if pf == nil {
		return primary.Solve(assumps...), primary
	}
	user := primary.ConflictBudget
	probe := pf.afterConflicts()
	if user > 0 && user <= probe {
		// The whole budget fits in the probe: racing could never trigger.
		return primary.Solve(assumps...), primary
	}
	primary.ConflictBudget = probe
	st := primary.Solve(assumps...)
	primary.ConflictBudget = user
	if st != sat.Unknown || s.pastDeadline() {
		return st, primary
	}
	var remaining int64
	if user > 0 {
		remaining = user - probe
	}
	lent := 0
	for lent < pf.maxRacers() && pf.TryAcquire() {
		lent++
	}
	if lent == 0 {
		// Every worker is busy: no spare capacity, continue solo with the
		// remaining budget.
		s.Metrics.Add("portfolio.starved", 1)
		primary.ConflictBudget = remaining
		st = primary.Solve(assumps...)
		primary.ConflictBudget = user
		return st, primary
	}
	s.Stats.Races++
	s.Stats.RaceTokens += int64(lent)
	s.Metrics.Add("portfolio.race", 1)

	cancel := &sat.Stop{}
	// With a recorder attached the snapshot must exclude learnt clauses: a
	// racer logs every snapshot clause as a DRAT input axiom, and inputs
	// must be consequences the certificate consumer grants — problem
	// clauses and root units are, arbitrary learnts are not re-derivable
	// from the trace alone.
	nv, cnf := primary.Snapshot(s.Recorder == nil)
	type finished struct {
		st     sat.Status
		solver *sat.Solver
	}
	results := make(chan finished, lent+1)
	for i := 0; i < lent; i++ {
		cfg := raceConfigs[i%len(raceConfigs)]
		racer := sat.New()
		racer.LBD = cfg.lbd
		racer.PhasePositive = cfg.phasePos
		racer.SeedShuffle = cfg.seed
		racer.RestartBase = cfg.restart
		// Racers deliberately do NOT inprocess: the snapshot already
		// carries the primary's simplification (derived clauses live,
		// subsumed ones dropped), and a racer joins the query late — its
		// edge is a diverse search trajectory, so it must spend its time
		// searching, not re-scanning a large instance it just imported.
		racer.ConflictBudget = remaining
		racer.Deadline = primary.Deadline
		racer.Cancel = cancel
		if s.Recorder != nil {
			racer.Proof = &sat.ProofLog{}
		}
		for v := 0; v < nv; v++ {
			racer.NewVar()
		}
		for _, cl := range cnf {
			racer.AddClause(cl...)
		}
		for _, a := range assumps {
			racer.AddClause(a)
		}
		go func(r *sat.Solver) { results <- finished{r.Solve(), r} }(racer)
	}
	primary.Cancel = cancel
	primary.ConflictBudget = remaining
	go func() { results <- finished{primary.Solve(assumps...), primary} }()

	winSt, winner := sat.Unknown, primary
	for i := 0; i < lent+1; i++ {
		r := <-results
		if winSt == sat.Unknown && r.st != sat.Unknown {
			winSt, winner = r.st, r.solver
			cancel.Stop()
		}
	}
	for i := 0; i < lent; i++ {
		pf.Release()
	}
	primary.Cancel = nil
	primary.ConflictBudget = user
	if winSt != sat.Unknown {
		if winner == primary {
			s.Metrics.Add("portfolio.win.primary", 1)
		} else {
			s.Stats.RaceRacerWins++
			s.Metrics.Add("portfolio.win.racer", 1)
		}
	}
	return winSt, winner
}
