package smt

import (
	"time"

	"repro/internal/sat"
)

// Portfolio racing and the adaptive escalation ladder. An SMT query whose
// SAT search survives a probe budget of conflicts climbs a ladder of
// escalations, each stage gated so it only fires when the cheaper stage
// below it has demonstrably failed:
//
//	stage 1 — solo probes: the primary searches alone under the probe
//	  budget. Until half of the wall-clock budget has been burned, an
//	  Unknown probe is answered with another solo probe at double the
//	  conflict budget — most queries that outlive one probe finish under
//	  the next, and racing them would burn idle slots for nothing (the
//	  regression that made the portfolio a net cost at generous budgets).
//	stage 2 — portfolio race: the query is raced across idle harness
//	  workers with diversified solver configurations (LBD on/off, restart
//	  cadence, phase polarity, activity seed), each derived from the
//	  racer index so every racer is distinct; the first decision cancels
//	  the rest through a shared sat.Stop token.
//	stage 3 — cube-and-conquer: a query that survives the race (or whose
//	  first probe overran its own budget inside giant restarts) is past
//	  the conflict watermark and structurally hard; restarting the same
//	  search again buys nothing, so the instance is split instead — see
//	  cube.go and sat.BuildCubes.
//
// The pool holds one token per harness worker: a worker lends its slot
// while it blocks in pipeline phases (parsing, ISel, symbolic stepping)
// and takes it back before solving, so racers and cube workers only ever
// consume capacity the run was wasting. The winner's solver — primary,
// racer, or cube worker — supplies the model or the DRAT trace, so
// certification is unchanged.

// Portfolio is a pool of solve slots shared by every solver of a run.
// One Portfolio is created per harness run (or per single-file tv
// invocation) and attached to each worker's Solver.
type Portfolio struct {
	tokens chan struct{}
	// After is the probe conflict budget: a query races only after its
	// primary search exceeds this many conflicts (0 = default 2000).
	After int64
	// MaxRacers bounds the slots one query may borrow (0 = default 3).
	MaxRacers int
	// CubeVars is the branching depth of the cube-and-conquer stage: up
	// to 2^CubeVars cubes per escalated query (0 = default 4).
	CubeVars int
	// CubeAfter is the conflict watermark for cubing: a query escalates
	// to cube-and-conquer only after its probes and race have spent this
	// many conflicts without a verdict (0 = default 4000).
	CubeAfter int64
}

// NewPortfolio returns a pool with one token per worker slot.
func NewPortfolio(slots int) *Portfolio {
	if slots < 1 {
		slots = 1
	}
	p := &Portfolio{tokens: make(chan struct{}, slots)}
	for i := 0; i < slots; i++ {
		p.tokens <- struct{}{}
	}
	return p
}

// Acquire blocks until a slot is free. Workers call it before compute-
// bound validation work; racers never block (TryAcquire).
func (p *Portfolio) Acquire() { <-p.tokens }

// Release returns a slot taken by Acquire or TryAcquire.
func (p *Portfolio) Release() { p.tokens <- struct{}{} }

// TryAcquire takes a slot only if one is idle right now.
func (p *Portfolio) TryAcquire() bool {
	select {
	case <-p.tokens:
		return true
	default:
		return false
	}
}

func (p *Portfolio) afterConflicts() int64 {
	if p.After > 0 {
		return p.After
	}
	return 2000
}

func (p *Portfolio) maxRacers() int {
	if p.MaxRacers > 0 {
		return p.MaxRacers
	}
	return 3
}

func (p *Portfolio) cubeVars() int {
	if p.CubeVars > 0 {
		return p.CubeVars
	}
	return 4
}

func (p *Portfolio) cubeAfter() int64 {
	if p.CubeAfter > 0 {
		return p.CubeAfter
	}
	return 4000
}

// minCubeWindow is the least remaining wall time worth starting a cube
// escalation in: below it the lookahead build cost cannot be recouped
// before the deadline, so the window is left to the solo fallback.
const minCubeWindow = 500 * time.Millisecond

// raceConfig is one diversified solver configuration. The seeds are
// arbitrary odd 64-bit constants (golden-ratio family); what matters is
// that each racer explores a genuinely different search order than the
// primary, which keeps its default configuration and its learnt clauses.
type raceConfig struct {
	lbd      bool
	phasePos bool
	seed     uint64
	restart  int64
}

var raceConfigs = []raceConfig{
	{lbd: true, phasePos: true, seed: 0x9e3779b97f4a7c15, restart: 100},
	{lbd: true, phasePos: false, seed: 0xd1b54a32d192ed03, restart: 512},
	{lbd: false, phasePos: false, seed: 0x94d049bb133111eb, restart: 100},
}

// racerConfig is racer i's configuration: the base triple supplies the
// qualitative diversity (clause-database policy, phase polarity), while
// the shuffle seed and restart cadence are derived from the racer index.
// Previously racers beyond len(raceConfigs) wrapped to an identical
// config and burned their slot on a duplicate search.
func racerConfig(i int) raceConfig {
	cfg := raceConfigs[i%len(raceConfigs)]
	cfg.seed = sat.Splitmix64(cfg.seed + uint64(i))
	cfg.restart += int64(i/len(raceConfigs)) * 64
	return cfg
}

// raceGateOpen reports whether the ladder should stop probing solo and
// race now. Without a wall-clock budget there is nothing to adapt to and
// the gate is always open — the pre-adaptive behavior the parity tests
// pin. With one, racing waits until half of the budget has been
// burned: a query early in its window is overwhelmingly likely to finish
// under a doubled solo probe, and burning idle slots on it is what made
// the portfolio a net cost at generous budgets — while a query that has
// already probed away half of the whole window needs the stronger
// stages while there is still window left for them to win in.
func (s *Solver) raceGateOpen() bool {
	if s.Budget <= 0 || s.Deadline.IsZero() {
		return true
	}
	return time.Until(s.Deadline) < s.Budget/2
}

func (s *Solver) cubeEnabled() bool {
	return !s.DisableCube
}

// solveRaced runs primary.Solve under the escalation ladder described in
// the package comment above. Returns the verdict and the solver that
// produced it; the caller extracts the model or flushes the proof from
// the winner (for an all-cubes-unsat verdict the winner is a fresh
// solver carrying only the composed certificate). All goroutines are
// joined before returning, so the primary is never shared with a live
// racer or cube worker.
func (s *Solver) solveRaced(primary *sat.Solver, assumps ...sat.Lit) (sat.Status, *sat.Solver) {
	pf := s.Portfolio
	if pf == nil {
		return primary.Solve(assumps...), primary
	}
	user := primary.ConflictBudget
	probe := pf.afterConflicts()
	if user > 0 && user <= probe {
		// The whole budget fits in the probe: escalation could never trigger.
		return primary.Solve(assumps...), primary
	}

	// Stage 1: solo probes, doubling while the race gate is closed. Probe
	// budgets are conflict counts, and on a slow instance one doubled
	// probe can run wall-clock straight into the deadline — so with a
	// wall budget the probe phase is additionally capped at the gate-open
	// instant, guaranteeing the later stages the half-window the gate
	// promised them.
	var stageCap time.Time
	userDeadline := primary.Deadline
	if s.Budget > 0 && !userDeadline.IsZero() {
		stageCap = userDeadline.Add(-s.Budget / 2)
	}
	var spent int64
	skipRace, slowProbe := false, false
	slowBar := time.Duration(0)
	if s.Budget > 0 {
		slowBar = s.Budget / 8
	}
	for esc := uint(0); ; esc++ {
		b := probe << esc
		if user > 0 {
			rem := user - spent
			if rem <= 0 {
				return sat.Unknown, primary
			}
			if b > rem {
				b = rem
			}
		}
		primary.ConflictBudget = b
		if !stageCap.IsZero() && time.Now().Before(stageCap) {
			primary.Deadline = stageCap
		}
		before := primary.Conflicts
		start := time.Now()
		st := primary.Solve(assumps...)
		used := primary.Conflicts - before
		spent += used
		primary.ConflictBudget = user
		primary.Deadline = userDeadline
		if st != sat.Unknown || s.pastDeadline() {
			return st, primary
		}
		if esc == 0 && used-b > b && s.cubeEnabled() && spent >= pf.cubeAfter() {
			// The budget is only polled at restart boundaries, so a probe
			// that overshot its own budget is inside enormous restarts.
			// Restarting that search under other configurations is
			// hopeless — skip the race and split the instance instead.
			s.Metrics.Add("cube.overrun", 1)
			skipRace = true
			break
		}
		if esc == 0 && slowBar > 0 && time.Since(start) > slowBar {
			// The first probe alone ate an eighth of the whole wall budget:
			// the instance's conflict rate is so low that solo CDCL cannot
			// possibly finish inside the window, and every further probe
			// just shrinks what the race and the cubes have left to win in.
			// Escalate now, while most of the window remains.
			s.Metrics.Add("portfolio.probe.slow", 1)
			slowProbe = true
			break
		}
		if s.raceGateOpen() {
			break
		}
		s.Metrics.Add("portfolio.probe.extend", 1)
	}

	// Stage 2: portfolio race, with half of what's left reserved for the
	// cube stage whenever that stage might still run.
	if !skipRace {
		raceBudget := int64(0)
		if user > 0 {
			raceBudget = user - spent
			if raceBudget <= 0 {
				return sat.Unknown, primary
			}
		}
		raceDeadline := primary.Deadline
		if s.cubeEnabled() {
			if raceBudget > 0 {
				raceBudget = (raceBudget + 1) / 2
			}
			if !raceDeadline.IsZero() {
				if half := time.Until(raceDeadline) / 2; half > 0 {
					raceDeadline = time.Now().Add(half)
				}
			}
		}
		st, winner, used, raced := s.raceStage(primary, raceBudget, raceDeadline, assumps...)
		spent += used
		if raced {
			if st != sat.Unknown {
				return st, winner
			}
			if s.pastDeadline() {
				return sat.Unknown, primary
			}
		}
	}

	// Stage 3: cube-and-conquer, gated on the conflict watermark. The
	// watermark is a hardness proxy, and on a slow instance conflicts
	// accrue slowly — a query that probed away its entire solo window
	// (the stage-1 cap has passed) is past the bar the conflict count
	// proxies for, whatever its spend says. The cube stage gets the whole
	// remaining window — halving it for a solo reserve was tried and cost
	// more cube conversions than the reserve recovered — but an Unknown
	// cube verdict still falls through to the solo leg below, which is
	// what finishes the query when a conflict-budgeted run outlives an
	// unsplittable instance.
	watermarkMet := spent >= pf.cubeAfter() || slowProbe
	if !watermarkMet && !stageCap.IsZero() && time.Now().After(stageCap) {
		watermarkMet = true
	}
	if s.cubeEnabled() {
		switch {
		case s.pastDeadline():
			s.Metrics.Add("cube.skip.deadline", 1)
		case !primary.Deadline.IsZero() && time.Until(primary.Deadline) < minCubeWindow:
			// Splitting pays a lookahead build (~100ms on corpus-sized
			// snapshots) before the first cube is solved; in a sliver of
			// window the build alone would eat the solo fallback's last
			// chance. Short windows go straight to the fallback.
			s.Metrics.Add("cube.skip.window", 1)
		case !watermarkMet:
			s.Metrics.Add("cube.skip.watermark", 1)
		default:
			var rem int64
			if user > 0 {
				rem = user - spent
				if rem <= 0 {
					return sat.Unknown, primary
				}
			}
			if st, winner, ran := s.solveCubed(primary, rem, assumps...); ran && st != sat.Unknown {
				return st, winner
			}
		}
	}

	// Fallback: nothing escalated (race starved, cube disabled or not
	// splittable, watermark unmet) — finish solo with what remains.
	if user > 0 {
		rem := user - spent
		if rem <= 0 {
			return sat.Unknown, primary
		}
		primary.ConflictBudget = rem
	} else {
		primary.ConflictBudget = 0
	}
	st := primary.Solve(assumps...)
	primary.ConflictBudget = user
	return st, primary
}

// raceStage races the query across idle worker slots. Returns the
// verdict, the winning solver, the primary's conflict spend during the
// race leg, and whether a race actually ran (false when every slot was
// busy — the caller falls through to the later stages).
func (s *Solver) raceStage(primary *sat.Solver, budget int64, deadline time.Time, assumps ...sat.Lit) (sat.Status, *sat.Solver, int64, bool) {
	pf := s.Portfolio
	lent := 0
	for lent < pf.maxRacers() && pf.TryAcquire() {
		lent++
	}
	if lent == 0 {
		// Every worker is busy: no spare capacity to race with.
		s.Metrics.Add("portfolio.starved", 1)
		return sat.Unknown, primary, 0, false
	}
	s.Stats.Races++
	s.Stats.RaceTokens += int64(lent)
	s.Metrics.Add("portfolio.race", 1)

	cancel := &sat.Stop{}
	// With a recorder attached the snapshot must exclude learnt clauses: a
	// racer logs every snapshot clause as a DRAT input axiom, and inputs
	// must be consequences the certificate consumer grants — problem
	// clauses and root units are, arbitrary learnts are not re-derivable
	// from the trace alone.
	nv, cnf := primary.Snapshot(s.Recorder == nil)
	type finished struct {
		st     sat.Status
		solver *sat.Solver
	}
	results := make(chan finished, lent+1)
	for i := 0; i < lent; i++ {
		cfg := racerConfig(i)
		racer := sat.New()
		racer.LBD = cfg.lbd
		racer.PhasePositive = cfg.phasePos
		racer.SeedShuffle = cfg.seed
		racer.RestartBase = cfg.restart
		// Racers deliberately do NOT inprocess: the snapshot already
		// carries the primary's simplification (derived clauses live,
		// subsumed ones dropped), and a racer joins the query late — its
		// edge is a diverse search trajectory, so it must spend its time
		// searching, not re-scanning a large instance it just imported.
		racer.ConflictBudget = budget
		racer.Deadline = deadline
		racer.Cancel = cancel
		if s.Recorder != nil {
			racer.Proof = &sat.ProofLog{}
		}
		for v := 0; v < nv; v++ {
			racer.NewVar()
		}
		for _, cl := range cnf {
			racer.AddClause(cl...)
		}
		for _, a := range assumps {
			racer.AddClause(a)
		}
		go func(r *sat.Solver) { results <- finished{r.Solve(), r} }(racer)
	}
	confBefore, propBefore := primary.Conflicts, primary.Propagations
	userBudget, userDeadline := primary.ConflictBudget, primary.Deadline
	primary.Cancel = cancel
	primary.ConflictBudget = budget
	primary.Deadline = deadline
	go func() { results <- finished{primary.Solve(assumps...), primary} }()

	winSt, winner := sat.Unknown, primary
	all := make([]finished, 0, lent+1)
	for i := 0; i < lent+1; i++ {
		r := <-results
		all = append(all, r)
		if winSt == sat.Unknown && r.st != sat.Unknown {
			winSt, winner = r.st, r.solver
			cancel.Stop()
		}
	}
	for i := 0; i < lent; i++ {
		pf.Release()
	}
	primary.Cancel = nil
	primary.ConflictBudget = userBudget
	primary.Deadline = userDeadline
	// Loser-side accounting: racers whose result was discarded — and the
	// primary's race leg, when a racer beat it — spent CPU the verdict
	// never used. SATConflicts counts only the primary, so without this
	// the phase reports undercount what racing actually cost.
	var wastedC, wastedP int64
	for _, r := range all {
		if r.solver == winner {
			continue
		}
		if r.solver == primary {
			wastedC += primary.Conflicts - confBefore
			wastedP += primary.Propagations - propBefore
		} else {
			wastedC += r.solver.Conflicts
			wastedP += r.solver.Propagations
		}
	}
	s.Stats.RaceWastedConflicts += wastedC
	s.Stats.RaceWastedProps += wastedP
	s.Metrics.Add("portfolio.wasted.conflicts", wastedC)
	s.Metrics.Add("portfolio.wasted.props", wastedP)
	if winSt != sat.Unknown {
		if winner == primary {
			s.Metrics.Add("portfolio.win.primary", 1)
		} else {
			s.Stats.RaceRacerWins++
			s.Metrics.Add("portfolio.win.racer", 1)
		}
	}
	return winSt, winner, primary.Conflicts - confBefore, true
}
