package smt

import "sync"

// cacheShards stripes the cache mutexes; keys distribute uniformly (they
// are SHA-256 outputs), so shard pressure stays even under a full worker
// pool hammering the cache.
const cacheShards = 64

// Cache is a run-wide verification-condition result cache keyed by
// CanonKey. It is safe for concurrent use by any number of Solvers: the
// harness creates one Cache per corpus run and every worker's solver
// consults it, so an obligation proved once — in any function, by any
// worker — is never re-proved.
//
// Only sound, budget-independent entries are admitted: ResultSat and
// ResultUnsat verdicts. ResultUnknown outcomes depend on the querying
// solver's conflict budget and deadline and are rejected by Put (and
// filtered again by Get, so even a corrupted entry can never decide a
// query). Sat entries carry no model; a cache hit on a Sat query returns a
// nil assignment (see Solver.Cache).
type Cache struct {
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[CanonKey]Result
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[CanonKey]Result)
	}
	return c
}

func (c *Cache) shard(k CanonKey) *cacheShard {
	return &c.shards[k[0]%cacheShards]
}

// Get returns the cached verdict for k. Unknown entries are never served:
// a stored Result that is not Sat or Unsat reports a miss.
func (c *Cache) Get(k CanonKey) (Result, bool) {
	s := c.shard(k)
	s.mu.Lock()
	r, ok := s.m[k]
	s.mu.Unlock()
	if !ok || (r != ResultSat && r != ResultUnsat) {
		return ResultUnknown, false
	}
	return r, true
}

// Put stores the verdict for k. Anything other than Sat or Unsat is
// silently dropped — Unknown is budget-dependent and caching it would let
// one worker's tight budget decide another's query.
func (c *Cache) Put(k CanonKey, r Result) {
	if r != ResultSat && r != ResultUnsat {
		return
	}
	s := c.shard(k)
	s.mu.Lock()
	s.m[k] = r
	s.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}
