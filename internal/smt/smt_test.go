package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestConstFolding(t *testing.T) {
	c := NewContext()
	tests := []struct {
		name string
		got  *Term
		want *Term
	}{
		{"add", c.Add(c.BV(3, 8), c.BV(4, 8)), c.BV(7, 8)},
		{"add wrap", c.Add(c.BV(255, 8), c.BV(1, 8)), c.BV(0, 8)},
		{"sub", c.Sub(c.BV(3, 8), c.BV(4, 8)), c.BV(255, 8)},
		{"mul", c.Mul(c.BV(16, 8), c.BV(17, 8)), c.BV(16, 8)},
		{"udiv", c.UDiv(c.BV(7, 8), c.BV(2, 8)), c.BV(3, 8)},
		{"udiv0", c.UDiv(c.BV(7, 8), c.BV(0, 8)), c.BV(255, 8)},
		{"urem", c.URem(c.BV(7, 8), c.BV(2, 8)), c.BV(1, 8)},
		{"urem0", c.URem(c.BV(7, 8), c.BV(0, 8)), c.BV(7, 8)},
		{"and", c.And(c.BV(0xF0, 8), c.BV(0x3C, 8)), c.BV(0x30, 8)},
		{"or", c.Or(c.BV(0xF0, 8), c.BV(0x3C, 8)), c.BV(0xFC, 8)},
		{"xor", c.Xor(c.BV(0xF0, 8), c.BV(0x3C, 8)), c.BV(0xCC, 8)},
		{"not", c.NotBV(c.BV(0xF0, 8)), c.BV(0x0F, 8)},
		{"shl", c.Shl(c.BV(1, 8), c.BV(3, 8)), c.BV(8, 8)},
		{"shl big", c.Shl(c.BV(1, 8), c.BV(8, 8)), c.BV(0, 8)},
		{"lshr", c.LShr(c.BV(0x80, 8), c.BV(3, 8)), c.BV(0x10, 8)},
		{"ashr", c.AShr(c.BV(0x80, 8), c.BV(3, 8)), c.BV(0xF0, 8)},
		{"concat", c.Concat(c.BV(0xAB, 8), c.BV(0xCD, 8)), c.BV(0xABCD, 16)},
		{"extract", c.Extract(c.BV(0xABCD, 16), 15, 8), c.BV(0xAB, 8)},
		{"zext", c.ZExt(c.BV(0x80, 8), 16), c.BV(0x80, 16)},
		{"sext", c.SExt(c.BV(0x80, 8), 16), c.BV(0xFF80, 16)},
		{"neg", c.Neg(c.BV(1, 8)), c.BV(255, 8)},
	}
	for _, tc := range tests {
		if tc.got != tc.want {
			t.Errorf("%s: got %v want %v", tc.name, tc.got, tc.want)
		}
	}
}

func TestPredicateFolding(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 8)
	if got := c.Eq(x, x); !got.IsTrue() {
		t.Errorf("Eq(x,x) = %v", got)
	}
	if got := c.Ult(x, x); !got.IsFalse() {
		t.Errorf("Ult(x,x) = %v", got)
	}
	if got := c.Ule(x, x); !got.IsTrue() {
		t.Errorf("Ule(x,x) = %v", got)
	}
	if got := c.Slt(c.BV(0xFF, 8), c.BV(0, 8)); !got.IsTrue() {
		t.Errorf("Slt(-1,0) = %v", got)
	}
	if got := c.Ult(c.BV(0xFF, 8), c.BV(0, 8)); !got.IsFalse() {
		t.Errorf("Ult(255,0) = %v", got)
	}
}

func TestHashConsing(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 32)
	y := c.VarBV("y", 32)
	a := c.Add(x, y)
	b := c.Add(y, x) // commutative normalization ⇒ same node
	if a != b {
		t.Errorf("Add(x,y) and Add(y,x) are distinct nodes")
	}
	if c.VarBV("x", 32) != x {
		t.Errorf("re-created variable is a distinct node")
	}
}

func TestAddConstantReassociation(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 64)
	a := c.Add(c.Add(x, c.BV(8, 64)), c.BV(4, 64))
	b := c.Add(x, c.BV(12, 64))
	if a != b {
		t.Errorf("(x+8)+4 != x+12: %v vs %v", a, b)
	}
}

func TestSelectOverStore(t *testing.T) {
	c := NewContext()
	m := c.VarMem("M")
	a := c.VarBV("a", 64)
	v := c.VarBV("v", 8)
	// select(store(m,a,v), a) = v
	if got := c.Select(c.Store(m, a, v), a); got != v {
		t.Errorf("select-over-store same addr: %v", got)
	}
	// distinct constant addresses resolve through
	m2 := c.Store(m, c.BV(8, 64), v)
	got := c.Select(m2, c.BV(16, 64))
	want := c.Select(m, c.BV(16, 64))
	if got != want {
		t.Errorf("select skipping distinct const store: %v vs %v", got, want)
	}
}

func TestStoreOverStoreSameAddr(t *testing.T) {
	c := NewContext()
	m := c.VarMem("M")
	a := c.VarBV("a", 64)
	v1 := c.VarBV("v1", 8)
	v2 := c.VarBV("v2", 8)
	got := c.Store(c.Store(m, a, v1), a, v2)
	want := c.Store(m, a, v2)
	if got != want {
		t.Errorf("store-over-store: %v vs %v", got, want)
	}
}

func solveOne(t *testing.T, f *Term, c *Context) (Result, *Assign) {
	t.Helper()
	s := NewSolver(c)
	res, m, err := s.CheckSat(f)
	if err != nil {
		t.Fatalf("CheckSat(%v): %v", f, err)
	}
	return res, m
}

func TestCheckSatBasics(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 8)
	y := c.VarBV("y", 8)

	// x + 1 = y ∧ y = 5 is sat with x=4.
	f := c.AndB(c.Eq(c.Add(x, c.BV(1, 8)), y), c.Eq(y, c.BV(5, 8)))
	res, m := solveOne(t, f, c)
	if res != ResultSat {
		t.Fatalf("res = %v, want sat", res)
	}
	if ok, _ := m.EvalBool(f); !ok {
		t.Fatalf("model %v does not satisfy formula", m.BV)
	}
	if m.BV["x"] != 4 {
		t.Errorf("x = %d, want 4", m.BV["x"])
	}

	// x <u y ∧ y <u x is unsat.
	g := c.AndB(c.Ult(x, y), c.Ult(y, x))
	if res, _ := solveOne(t, g, c); res != ResultUnsat {
		t.Errorf("Ult antisymmetry: %v, want unsat", res)
	}
}

func TestProveCommutativity(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 16)
	y := c.VarBV("y", 16)
	s := NewSolver(c)
	// These normalize to the same node, so the fast path should fire.
	proved, _, err := s.Prove(c.Eq(c.Add(x, y), c.Add(y, x)))
	if err != nil || !proved {
		t.Fatalf("x+y = y+x: proved=%v err=%v", proved, err)
	}
	if s.Stats.FastQueries == 0 {
		t.Errorf("commutativity was not decided by the fast path")
	}
}

func TestProveNontrivial(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 8)
	s := NewSolver(c)
	// (x << 1) = x + x
	proved, counter, err := s.Prove(c.Eq(c.Shl(x, c.BV(1, 8)), c.Add(x, x)))
	if err != nil {
		t.Fatal(err)
	}
	if !proved {
		t.Fatalf("x<<1 = x+x not proved; counter x=%d", counter.BV["x"])
	}
	// x - 1 ≠ x
	proved, _, err = s.Prove(c.Not(c.Eq(c.Sub(x, c.BV(1, 8)), x)))
	if err != nil || !proved {
		t.Fatalf("x-1 ≠ x: proved=%v err=%v", proved, err)
	}
	// x &u 0x0F <u 0x10
	proved, _, err = s.Prove(c.Ult(c.And(x, c.BV(0x0F, 8)), c.BV(0x10, 8)))
	if err != nil || !proved {
		t.Fatalf("x&0x0F < 0x10: proved=%v err=%v", proved, err)
	}
	// NOT provable: x + 1 >u x (wraps at 255)
	proved, counter, err = s.Prove(c.Ult(x, c.Add(x, c.BV(1, 8))))
	if err != nil {
		t.Fatal(err)
	}
	if proved {
		t.Fatalf("x < x+1 proved despite wraparound")
	}
	if counter.BV["x"] != 255 {
		t.Errorf("counterexample x = %d, want 255", counter.BV["x"])
	}
}

func TestSignedComparisonViaSub(t *testing.T) {
	// The ISel pattern: `icmp ult a b` vs `sub` + carry flag. The x86 side
	// computes the condition as ult directly, but signed compares use
	// SF≠OF; verify the identity slt(a,b) = (a-b) has SF≠OF.
	c := NewContext()
	a := c.VarBV("a", 32)
	b := c.VarBV("b", 32)
	diff := c.Sub(a, b)
	sf := c.Eq(c.Extract(diff, 31, 31), c.BV(1, 1))
	of := c.SubOverflowSigned(a, b)
	xorSfOf := c.Not(c.Eq(sf, of))
	s := NewSolver(c)
	proved, counter, err := s.Prove(c.Eq(c.Slt(a, b), xorSfOf))
	if err != nil {
		t.Fatal(err)
	}
	if !proved {
		t.Fatalf("slt = SF≠OF not proved; counter a=%d b=%d", counter.BV["a"], counter.BV["b"])
	}
}

func TestMemoryEqualityExtensionality(t *testing.T) {
	c := NewContext()
	m := c.VarMem("M")
	s := NewSolver(c)

	// Writing the same bytes in different order at distinct constant
	// addresses yields equal memories.
	v1 := c.VarBV("v1", 8)
	v2 := c.VarBV("v2", 8)
	m1 := c.Store(c.Store(m, c.BV(0, 64), v1), c.BV(1, 64), v2)
	m2 := c.Store(c.Store(m, c.BV(1, 64), v2), c.BV(0, 64), v1)
	proved, _, err := s.Prove(c.Eq(m1, m2))
	if err != nil || !proved {
		t.Fatalf("reordered distinct stores: proved=%v err=%v", proved, err)
	}

	// Overlapping write-after-write order matters: store(a,1);store(a,2)
	// vs store(a,2);store(a,1) differ.
	a := c.BV(100, 64)
	mA := c.Store(c.Store(m, a, c.BV(1, 8)), a, c.BV(2, 8))
	mB := c.Store(c.Store(m, a, c.BV(2, 8)), a, c.BV(1, 8))
	proved, _, err = s.Prove(c.Eq(mA, mB))
	if err != nil {
		t.Fatal(err)
	}
	if proved {
		t.Fatalf("WAW-reordered stores proved equal")
	}

	// Symbolic address vs constant address: equal only if values match
	// when addresses collide — not valid in general.
	sa := c.VarBV("sa", 64)
	mC := c.Store(m, sa, c.BV(1, 8))
	mD := c.Store(m, c.BV(100, 64), c.BV(1, 8))
	proved, _, err = s.Prove(c.Eq(mC, mD))
	if err != nil {
		t.Fatal(err)
	}
	if proved {
		t.Fatalf("stores at unrelated addresses proved equal")
	}
	// But it becomes valid under the premise sa = 100.
	proved, _, err = s.ProveImplies(c.Eq(sa, c.BV(100, 64)), c.Eq(mC, mD))
	if err != nil || !proved {
		t.Fatalf("conditional store equality: proved=%v err=%v", proved, err)
	}
}

func TestMemEqualityDifferentBasesRejected(t *testing.T) {
	c := NewContext()
	m1 := c.VarMem("M1")
	m2 := c.VarMem("M2")
	s := NewSolver(c)
	_, _, err := s.CheckSat(c.Eq(m1, m2))
	if err == nil {
		t.Fatalf("memory equality over distinct bases did not error")
	}
}

func TestSelectStoreSymbolicAliasing(t *testing.T) {
	c := NewContext()
	m := c.VarMem("M")
	i := c.VarBV("i", 64)
	j := c.VarBV("j", 64)
	v := c.VarBV("v", 8)
	s := NewSolver(c)
	// select(store(M,i,v), j) = v is NOT valid (i may differ from j)...
	f := c.Eq(c.Select(c.Store(m, i, v), j), v)
	proved, _, err := s.Prove(f)
	if err != nil {
		t.Fatal(err)
	}
	if proved {
		t.Fatalf("aliasing-sensitive select proved unconditionally")
	}
	// ...but valid under i = j.
	proved, _, err = s.ProveImplies(c.Eq(i, j), f)
	if err != nil || !proved {
		t.Fatalf("select under aliasing premise: proved=%v err=%v", proved, err)
	}
}

func TestNodeBudget(t *testing.T) {
	c := NewContext()
	c.MaxNodes = 50
	defer func() {
		if r := recover(); r != ErrNodeBudget {
			t.Fatalf("recover() = %v, want ErrNodeBudget", r)
		}
	}()
	x := c.VarBV("x", 64)
	for i := 0; i < 100; i++ {
		x = c.Add(x, c.VarBV(varName(i), 64))
	}
	t.Fatalf("node budget never tripped")
}

func varName(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

// randomTerm builds a random BV term of the given width over vars x,y,z.
func randomTerm(c *Context, rng *rand.Rand, width uint8, depth int) *Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return c.BV(rng.Uint64(), width)
		case 1:
			return c.VarBV("x", width)
		default:
			return c.VarBV("y", width)
		}
	}
	a := randomTerm(c, rng, width, depth-1)
	b := randomTerm(c, rng, width, depth-1)
	switch rng.Intn(12) {
	case 0:
		return c.Add(a, b)
	case 1:
		return c.Sub(a, b)
	case 2:
		return c.Mul(a, b)
	case 3:
		return c.And(a, b)
	case 4:
		return c.Or(a, b)
	case 5:
		return c.Xor(a, b)
	case 6:
		return c.NotBV(a)
	case 7:
		return c.Shl(a, b)
	case 8:
		return c.LShr(a, b)
	case 9:
		return c.AShr(a, b)
	case 10:
		return c.UDiv(a, b)
	default:
		return c.URem(a, b)
	}
}

// TestSolverAgreesWithEvaluator: for random formulas over 4-bit vectors,
// CheckSat must agree with exhaustive evaluation over all assignments.
func TestSolverAgreesWithEvaluator(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewContext()
		const w = 4
		a := randomTerm(c, rng, w, 3)
		b := randomTerm(c, rng, w, 3)
		var form *Term
		switch rng.Intn(4) {
		case 0:
			form = c.Eq(a, b)
		case 1:
			form = c.Ult(a, b)
		case 2:
			form = c.Slt(a, b)
		default:
			form = c.AndB(c.Ule(a, b), c.Not(c.Eq(a, b)))
		}
		s := NewSolver(c)
		res, model, err := s.CheckSat(form)
		if err != nil {
			t.Logf("seed %d: error %v", seed, err)
			return false
		}
		// Exhaustive ground truth.
		want := false
		assign := NewAssign()
		for x := uint64(0); x < 1<<w; x++ {
			for y := uint64(0); y < 1<<w; y++ {
				assign.BV["x"] = x
				assign.BV["y"] = y
				v, err := assign.EvalBool(form)
				if err != nil {
					t.Logf("seed %d: eval error %v", seed, err)
					return false
				}
				if v {
					want = true
				}
			}
		}
		if (res == ResultSat) != want {
			t.Logf("seed %d: solver=%v exhaustive sat=%v formula=%v", seed, res, want, form)
			return false
		}
		if res == ResultSat {
			ok, err := model.EvalBool(form)
			if err != nil || !ok {
				t.Logf("seed %d: returned model invalid (err=%v)", seed, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBlasterMatchesEvaluator64: spot-check wider widths with random
// concrete inputs pinned via equality premises.
func TestBlasterMatchesEvaluator64(t *testing.T) {
	f := func(xv, yv uint64, op uint8) bool {
		c := NewContext()
		x := c.VarBV("x", 64)
		y := c.VarBV("y", 64)
		var expr *Term
		switch op % 8 {
		case 0:
			expr = c.Add(x, y)
		case 1:
			expr = c.Sub(x, y)
		case 2:
			expr = c.Mul(x, y)
		case 3:
			expr = c.And(x, y)
		case 4:
			expr = c.Or(x, y)
		case 5:
			expr = c.Xor(x, y)
		case 6:
			expr = c.Shl(x, c.BV(uint64(op)%64, 64))
		default:
			expr = c.LShr(x, c.BV(uint64(op)%64, 64))
		}
		assign := NewAssign()
		assign.BV["x"] = xv
		assign.BV["y"] = yv
		want, err := assign.EvalBV(expr)
		if err != nil {
			return false
		}
		s := NewSolver(c)
		premise := c.AndB(c.Eq(x, c.BV(xv, 64)), c.Eq(y, c.BV(yv, 64)))
		proved, _, err := s.ProveImplies(premise, c.Eq(expr, c.BV(want, 64)))
		if err != nil {
			t.Logf("error: %v", err)
			return false
		}
		return proved
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUDivURemProperty(t *testing.T) {
	// ∀ x,y (y≠0): x = (x/y)*y + x%y at width 8.
	c := NewContext()
	x := c.VarBV("x", 8)
	y := c.VarBV("y", 8)
	s := NewSolver(c)
	f := c.Implies(c.Not(c.Eq(y, c.BV(0, 8))),
		c.Eq(x, c.Add(c.Mul(c.UDiv(x, y), y), c.URem(x, y))))
	proved, counter, err := s.Prove(f)
	if err != nil {
		t.Fatal(err)
	}
	if !proved {
		t.Fatalf("division identity failed: x=%d y=%d", counter.BV["x"], counter.BV["y"])
	}
}

func TestOverflowPredicates(t *testing.T) {
	c := NewContext()
	s := NewSolver(c)
	x := c.VarBV("x", 8)
	y := c.VarBV("y", 8)
	// AddOverflowSigned matches the widened-comparison definition.
	wide := c.Add(c.SExt(x, 16), c.SExt(y, 16))
	narrow := c.SExt(c.Add(x, y), 16)
	want := c.Not(c.Eq(wide, narrow))
	proved, counter, err := s.Prove(c.Eq(c.AddOverflowSigned(x, y), want))
	if err != nil {
		t.Fatal(err)
	}
	if !proved {
		t.Fatalf("add overflow mismatch at x=%d y=%d", counter.BV["x"], counter.BV["y"])
	}
	wideS := c.Sub(c.SExt(x, 16), c.SExt(y, 16))
	narrowS := c.SExt(c.Sub(x, y), 16)
	wantS := c.Not(c.Eq(wideS, narrowS))
	proved, counter, err = s.Prove(c.Eq(c.SubOverflowSigned(x, y), wantS))
	if err != nil {
		t.Fatal(err)
	}
	if !proved {
		t.Fatalf("sub overflow mismatch at x=%d y=%d", counter.BV["x"], counter.BV["y"])
	}
}

func TestDeadline(t *testing.T) {
	c := NewContext()
	s := NewSolver(c)
	s.Deadline = timePast()
	_, _, err := s.CheckSat(c.Eq(c.VarBV("x", 8), c.BV(1, 8)))
	if err != ErrDeadline {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

func timePast() (t time.Time) { return time.Now().Add(-time.Second) }
