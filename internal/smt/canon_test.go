package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// namedRandomTerm mirrors randomTerm but draws variables from the given
// name list, so the same rng sequence builds structurally identical terms
// over different variable names (and in different Contexts).
func namedRandomTerm(c *Context, rng *rand.Rand, width uint8, depth int, names []string) *Term {
	if depth == 0 || rng.Intn(4) == 0 {
		switch rng.Intn(len(names) + 1) {
		case 0:
			return c.BV(rng.Uint64(), width)
		default:
			return c.VarBV(names[rng.Intn(len(names))], width)
		}
	}
	a := namedRandomTerm(c, rng, width, depth-1, names)
	b := namedRandomTerm(c, rng, width, depth-1, names)
	switch rng.Intn(8) {
	case 0:
		return c.Add(a, b)
	case 1:
		return c.Sub(a, b)
	case 2:
		return c.Mul(a, b)
	case 3:
		return c.And(a, b)
	case 4:
		return c.Or(a, b)
	case 5:
		return c.Xor(a, b)
	case 6:
		return c.NotBV(a)
	default:
		return c.Shl(a, b)
	}
}

// TestCanonicalHashAlphaInvariant: a bijective renaming of variables across
// two independent Contexts must not change the key.
func TestCanonicalHashAlphaInvariant(t *testing.T) {
	f := func(seed int64) bool {
		c1, c2 := NewContext(), NewContext()
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))
		t1 := c1.Eq(namedRandomTerm(c1, rng1, 8, 4, []string{"x", "y", "z"}),
			namedRandomTerm(c1, rng1, 8, 4, []string{"x", "y", "z"}))
		t2 := c2.Eq(namedRandomTerm(c2, rng2, 8, 4, []string{"r12!a", "tmp", "sp!p0!7"}),
			namedRandomTerm(c2, rng2, 8, 4, []string{"r12!a", "tmp", "sp!p0!7"}))
		k1, n1 := CanonicalHash(t1)
		k2, n2 := CanonicalHash(t2)
		if k1 != k2 {
			t.Logf("seed %d: keys differ for alpha-equivalent terms\n  %v\n  %v", seed, t1, t2)
			return false
		}
		if n1 != n2 || n1 <= 0 {
			t.Logf("seed %d: serialized byte counts %d vs %d", seed, n1, n2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCanonicalHashNonBijectiveRenamingDiffers: collapsing two distinct
// variables onto one is NOT alpha-equivalence and must change the key —
// the property that makes serving a cached verdict for the collapsed
// formula unsound.
func TestCanonicalHashNonBijectiveRenamingDiffers(t *testing.T) {
	c := NewContext()
	x, y := c.VarBV("x", 16), c.VarBV("y", 16)
	two := c.Raw(KAdd, 16, 0, "", 0, 0, x, y)       // x + y (raw node: no simplification reordering)
	collapsed := c.Raw(KAdd, 16, 0, "", 0, 0, x, x) // x + x
	k1, _ := CanonicalHash(c.Eq(two, c.BV(0, 16)))
	k2, _ := CanonicalHash(c.Eq(collapsed, c.BV(0, 16)))
	if k1 == k2 {
		t.Fatalf("x+y and x+x hash identically: cache would conflate them")
	}
}

// TestCanonicalHashSharingPattern: repeated use of ONE variable pair must
// hash differently from the same shape over two disjoint pairs. The DAG
// serialization encodes sharing, which is exactly what separates them.
func TestCanonicalHashSharingPattern(t *testing.T) {
	c := NewContext()
	mk := func(a, b *Term) *Term { return c.Ult(a, b) }
	ab := mk(c.VarBV("a", 8), c.VarBV("b", 8))
	cd := mk(c.VarBV("cc", 8), c.VarBV("d", 8))
	shared := c.AndB(ab, c.OrB(ab, c.False()))
	distinct := c.AndB(ab, c.OrB(cd, c.False()))
	// Simplification may collapse trivially; rebuild with raw nodes.
	sharedRaw := c.Raw(KBAnd, 0, 0, "", 0, 0, ab, ab)
	distinctRaw := c.Raw(KBAnd, 0, 0, "", 0, 0, ab, cd)
	k1, _ := CanonicalHash(sharedRaw)
	k2, _ := CanonicalHash(distinctRaw)
	if k1 == k2 {
		t.Fatalf("(p∧p) and (p∧q) hash identically")
	}
	_ = shared
	_ = distinct
}

// TestCanonicalHashSensitivity: keys must react to width, constant value,
// kind, and extract bounds.
func TestCanonicalHashSensitivity(t *testing.T) {
	c := NewContext()
	x16, y16 := c.VarBV("x", 16), c.VarBV("y", 16)
	x8, y8 := c.VarBV("x8", 8), c.VarBV("y8", 8)
	terms := []*Term{
		c.Eq(c.Add(x16, y16), c.BV(0, 16)),
		c.Eq(c.Sub(x16, y16), c.BV(0, 16)),
		c.Eq(c.Add(x8, y8), c.BV(0, 8)),
		c.Eq(c.Add(x16, y16), c.BV(1, 16)),
		c.Ult(x16, y16),
		c.Eq(c.Extract(x16, 7, 0), c.BV(0, 8)),
		c.Eq(c.Extract(x16, 15, 8), c.BV(0, 8)),
	}
	seen := map[CanonKey]int{}
	for i, tm := range terms {
		k, _ := CanonicalHash(tm)
		if j, dup := seen[k]; dup {
			t.Errorf("terms %d and %d hash identically: %v vs %v", i, j, terms[i], terms[j])
		}
		seen[k] = i
	}
}

// TestCanonicalHashStableAcrossCalls: hashing is a pure function of the
// term (and the solver memo returns the identical key).
func TestCanonicalHashStableAcrossCalls(t *testing.T) {
	c := NewContext()
	f := c.Eq(c.Add(c.VarBV("x", 32), c.VarBV("y", 32)), c.BV(7, 32))
	k1, n1 := CanonicalHash(f)
	k2, n2 := CanonicalHash(f)
	if k1 != k2 || n1 != n2 {
		t.Fatalf("CanonicalHash not deterministic: %x/%d vs %x/%d", k1, n1, k2, n2)
	}
	s := NewSolver(c)
	s.Cache = NewCache()
	if got := s.canonKey(f); got != k1 {
		t.Fatalf("solver memoized key differs from direct hash")
	}
	bytesAfterFirst := s.Stats.CacheBytes
	if got := s.canonKey(f); got != k1 || s.Stats.CacheBytes != bytesAfterFirst {
		t.Fatalf("memoized rehash re-charged bytes: %d -> %d", bytesAfterFirst, s.Stats.CacheBytes)
	}
}

// TestCanonicalHashDeepTerm: the iterative traversal must survive terms
// far deeper than any recursion limit.
func TestCanonicalHashDeepTerm(t *testing.T) {
	c := NewContext()
	x := c.VarBV("x", 64)
	acc := x
	for i := 0; i < 200_000; i++ {
		acc = c.Raw(KNot, 64, 0, "", 0, 0, acc)
	}
	k, n := CanonicalHash(c.Eq(acc, x))
	if n <= 0 {
		t.Fatalf("no bytes hashed")
	}
	var zero CanonKey
	if k == zero {
		t.Fatalf("zero key")
	}
}
