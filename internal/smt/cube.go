package smt

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sat"
)

// Cube-and-conquer: the top of the escalation ladder (see portfolio.go).
// A query that survives its probes and a full portfolio race is not stuck
// on an unlucky restart schedule — it is structurally hard, so instead of
// restarting the same search under yet another configuration the instance
// is split: sat.BuildCubes runs a lookahead pass over a snapshot and
// emits the leaves of a small decision tree as assumption sets, and the
// cubes are conquered across the query's own thread plus any idle
// portfolio slots, drained from a shared queue (work-stealing). A Sat
// cube decides the query instantly; refuting every cube refutes it, and
// the per-cube DRAT traces compose into one certificate
// (sat.ComposeCubeProof) that the unchanged RUP checker verifies — no new
// code enters the trust base.

// solveCubed splits the primary's instance and conquers the cubes.
// budget bounds each worker's total conflicts (0 = unlimited). Returns
// ran=false when the instance was not worth splitting — refuted by unit
// propagation or lookahead alone, or with fewer than two live leaves —
// in which case the caller falls back to solo search. On an
// all-cubes-unsat verdict the returned winner is a fresh solver whose
// Proof is the composed certificate, which the callers' racer-win
// recording paths consume unchanged.
func (s *Solver) solveCubed(primary *sat.Solver, budget int64, assumps ...sat.Lit) (sat.Status, *sat.Solver, bool) {
	pf := s.Portfolio
	// As with racers, a recording run must snapshot without learnt
	// clauses: every snapshot clause becomes a DRAT input axiom of the
	// composed certificate, and only problem clauses and root units are
	// granted by the certificate consumer.
	nv, cnf := primary.Snapshot(s.Recorder == nil)
	units := append([]sat.Lit(nil), assumps...)
	buildStart := time.Now()
	cs := sat.BuildCubes(nv, cnf, units, sat.CubeOptions{MaxVars: pf.cubeVars()})
	s.Metrics.Add("cube.build.ms", time.Since(buildStart).Milliseconds())
	if cs == nil {
		s.Metrics.Add("cube.nosplit", 1)
		return sat.Unknown, primary, false
	}
	s.Stats.CubeEscalations++
	s.Stats.CubesGenerated += int64(len(cs.Cubes))
	s.Metrics.Add("cube.escalation", 1)
	s.Metrics.Add("cube.generated", int64(len(cs.Cubes)))

	// The query's own thread always conquers; idle portfolio slots are
	// stolen for extra workers, never more than there are cubes to share.
	stolen := 0
	for stolen+1 < len(cs.Cubes) && stolen < pf.maxRacers() && pf.TryAcquire() {
		stolen++
	}
	if stolen == 0 {
		// Every slot is busy, so the conquest is sequential anyway — run it
		// on the primary itself instead of a fresh import. The primary
		// already holds the instance and every learnt clause its probes
		// earned; a cube is just an assumption-set Solve, and each refuted
		// cube's negation is learned back (sat.LearnClause, a RUP-checked
		// step in the primary's own session log) so the conquest
		// strengthens every later cube, the solo fallback, and — in
		// incremental sessions — every later query. On an all-cubes-unsat
		// verdict the collapse clauses end at the query's ordinary final
		// obligation, so the unchanged primary-win recording path applies.
		return s.conquerInPlace(primary, cs, budget, assumps)
	}
	workers := stolen + 1

	queue := make(chan int, len(cs.Cubes))
	for i := range cs.Cubes {
		queue <- i
	}
	close(queue)

	cancel := &sat.Stop{}
	var done int64 // cubes resolved across all workers, for the pace check
	type workerResult struct {
		solver  *sat.Solver
		trace   sat.CubeTrace
		sat     int // cube index found satisfiable, -1 if none
		refuted int
		drained int
		unknown bool
	}
	results := make([]workerResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := &results[w]
			r.sat = -1
			solver := sat.New()
			solver.LBD = true
			// Like racers, cube workers never inprocess: the snapshot
			// already carries the primary's simplification, and a cube's
			// edge is the shrunken search space, not rediscovered rewrites.
			solver.SeedShuffle = sat.Splitmix64(0xcb0e5eed + uint64(w))
			solver.Deadline = primary.Deadline
			solver.Cancel = cancel
			if s.Recorder != nil {
				solver.Proof = &sat.ProofLog{}
			}
			for v := 0; v < nv; v++ {
				solver.NewVar()
			}
			for _, cl := range cnf {
				solver.AddClause(cl...)
			}
			for _, u := range units {
				solver.AddClause(u)
			}
			r.solver = solver
			r.trace.Log = solver.Proof
			remaining := budget
			start := time.Now()
			for idx := range queue {
				if budget > 0 && remaining <= 0 {
					r.unknown = true
					return
				}
				if !solver.Deadline.IsZero() && r.drained >= 2 {
					// Pace check: an all-cubes-unsat win needs every cube
					// refuted before the deadline. If this worker's share of
					// what's left projects past it, the conquest cannot win
					// collectively — bail now so the fallback solo search
					// (which kept the primary's learnt clauses) inherits the
					// rest of the window instead of a doomed conquest
					// burning it.
					left := len(cs.Cubes) - int(atomic.LoadInt64(&done))
					avg := time.Since(start) / time.Duration(r.drained)
					if avg*time.Duration(left/workers+1) > time.Until(solver.Deadline) {
						s.Metrics.Add("cube.pace.bail", 1)
						r.unknown = true
						return
					}
				}
				solver.ConflictBudget = remaining
				before := solver.Conflicts
				st := solver.Solve(cs.Cubes[idx]...)
				remaining -= solver.Conflicts - before
				r.drained++
				switch st {
				case sat.Sat:
					r.sat = idx
					cancel.Stop()
					return
				case sat.Unsat:
					r.refuted++
					atomic.AddInt64(&done, 1)
					if solver.Proof != nil {
						r.trace.Cubes = append(r.trace.Cubes, cs.Cubes[idx])
						r.trace.Marks = append(r.trace.Marks, solver.Proof.Len())
					}
				default:
					r.unknown = true
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for i := 0; i < stolen; i++ {
		pf.Release()
	}

	refuted, steals := 0, 0
	unknown := false
	var satWinner *sat.Solver
	for w := range results {
		r := &results[w]
		// Cube workers do the verdict's real search, so their spend is
		// solver work, not portfolio waste — the callers only aggregate
		// the primary's counters, so fold the workers' in here.
		s.Stats.SATConflicts += r.solver.Conflicts
		s.Stats.SATDecisions += r.solver.Decisions
		refuted += r.refuted
		if w > 0 {
			steals += r.drained
		}
		if r.sat >= 0 {
			satWinner = r.solver
		}
		if r.unknown {
			unknown = true
		}
	}
	s.Stats.CubesRefuted += int64(refuted)
	s.Stats.CubeSteals += int64(steals)
	s.Metrics.Add("cube.refuted", int64(refuted))
	s.Metrics.Add("cube.steal", int64(steals))

	if satWinner != nil {
		s.Stats.CubesSat++
		s.Metrics.Add("cube.sat", 1)
		return sat.Sat, satWinner, true
	}
	if !unknown && refuted == len(cs.Cubes) {
		// All cubes refuted: the instance is unsat. Hand back a fresh
		// solver carrying only the composed certificate, so the callers'
		// existing racer-win recording paths flush it unchanged.
		win := sat.New()
		if s.Recorder != nil {
			traces := make([]sat.CubeTrace, 0, workers)
			for w := range results {
				if results[w].refuted > 0 {
					traces = append(traces, results[w].trace)
				}
			}
			win.Proof = sat.ComposeCubeProof(cnf, units, traces, cs.Internal)
		}
		s.Metrics.Add("cube.unsat", 1)
		return sat.Unsat, win, true
	}
	s.Metrics.Add("cube.unknown", 1)
	return sat.Unknown, primary, true
}

// conquerInPlace drains every cube on the primary solver itself: cube i is
// solved under the query's assumptions extended with the cube's literals,
// and each refutation is pinned into the database as the learnt clause
// ¬assumps ∨ ¬cube — RUP at that point of the primary's log, because the
// refuting conflict surfaced while only those assumptions were enqueued.
// When all cubes are refuted the internal tree nodes collapse the same
// way down to ¬assumps (the empty clause for a one-shot query), which is
// exactly the final obligation the caller's recording path checks.
func (s *Solver) conquerInPlace(primary *sat.Solver, cs *sat.CubeSet, budget int64, assumps []sat.Lit) (sat.Status, *sat.Solver, bool) {
	userBudget := primary.ConflictBudget
	defer func() { primary.ConflictBudget = userBudget }()

	var aug, neg []sat.Lit
	negation := func(cube []sat.Lit) []sat.Lit {
		neg = neg[:0]
		for _, a := range assumps {
			neg = append(neg, a.Not())
		}
		for _, l := range cube {
			neg = append(neg, l.Not())
		}
		return neg
	}

	remaining := budget
	start := time.Now()
	refuted, unknown := 0, false
	for i, cube := range cs.Cubes {
		if budget > 0 && remaining <= 0 {
			unknown = true
			break
		}
		if !primary.Deadline.IsZero() && i >= 2 {
			// Same pace check as the stolen-slot workers: if the remaining
			// cubes project past the deadline, the collective win is out of
			// reach — stop and leave the window to the solo fallback.
			avg := time.Since(start) / time.Duration(i)
			if avg*time.Duration(len(cs.Cubes)-i) > time.Until(primary.Deadline) {
				s.Metrics.Add("cube.pace.bail", 1)
				unknown = true
				break
			}
		}
		primary.ConflictBudget = remaining
		aug = append(append(aug[:0], assumps...), cube...)
		before := primary.Conflicts
		st := primary.Solve(aug...)
		if budget > 0 {
			remaining -= primary.Conflicts - before
		}
		if st == sat.Sat {
			s.Stats.CubesRefuted += int64(refuted)
			s.Stats.CubesSat++
			s.Metrics.Add("cube.refuted", int64(refuted))
			s.Metrics.Add("cube.sat", 1)
			return sat.Sat, primary, true
		}
		if st != sat.Unsat {
			unknown = true
			break
		}
		refuted++
		primary.LearnClause(negation(cube)...)
	}
	s.Stats.CubesRefuted += int64(refuted)
	s.Metrics.Add("cube.refuted", int64(refuted))
	if !unknown && refuted == len(cs.Cubes) {
		for _, p := range cs.Internal {
			primary.LearnClause(negation(p)...)
		}
		primary.LearnClause(negation(nil)...)
		s.Metrics.Add("cube.unsat", 1)
		return sat.Unsat, primary, true
	}
	s.Metrics.Add("cube.unknown", 1)
	return sat.Unknown, primary, true
}
