package smt

import (
	"time"

	"repro/internal/telemetry"
)

// This file is the glue between the solver and the telemetry layer: one
// span and one latency observation per CheckSat query, annotated with the
// query's outcome. Everything here is reached only when a Tracer or
// Metrics registry is attached (see CheckSat), so the disabled path never
// pays more than one nil check.

// finishQuery closes the per-query span and records the query's latency.
// before is a snapshot of Stats at query entry; the attribute values are
// the deltas this query contributed.
func (s *Solver) finishQuery(sp *telemetry.Span, start time.Time, before Stats, res Result) {
	d := time.Since(start)
	s.Metrics.Observe("smt.query", d)
	s.Metrics.Add("smt.query."+res.String(), 1)
	// Inprocessing work this query contributed (portfolio.* counters are
	// emitted at race time in solveRaced, where the outcome is known).
	if n := s.Stats.SubsumedClauses - before.SubsumedClauses; n > 0 {
		s.Metrics.Add("inprocess.subsumed", n)
	}
	if n := s.Stats.StrengthenedClauses - before.StrengthenedClauses; n > 0 {
		s.Metrics.Add("inprocess.strengthened", n)
	}
	if n := s.Stats.VivifiedClauses - before.VivifiedClauses; n > 0 {
		s.Metrics.Add("inprocess.vivified", n)
	}
	if n := s.Stats.EliminatedVars - before.EliminatedVars; n > 0 {
		s.Metrics.Add("inprocess.eliminated", n)
	}
	if sp == nil {
		return
	}
	sp.SetAttr("result", res.String())
	sp.SetAttr("conflicts", s.Stats.SATConflicts-before.SATConflicts)
	if s.Cache != nil {
		sp.SetAttr("cache_hit", s.Stats.CacheHits > before.CacheHits)
	}
	if s.Stats.FastQueries > before.FastQueries {
		sp.SetAttr("fast", true)
	}
	if s.Stats.Certificates > before.Certificates && s.lastCert != "" {
		sp.SetAttr("cert", s.lastCert)
	}
	sp.End()
}
