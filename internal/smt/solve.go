package smt

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/proof"
	"repro/internal/sat"
	"repro/internal/telemetry"
)

// Result is the outcome of a satisfiability or validity query.
type Result int8

// Query outcomes.
const (
	// ResultUnknown means the query could not be decided within budget.
	ResultUnknown Result = iota
	// ResultSat / proof failed with a counterexample model.
	ResultSat
	// ResultUnsat / proof succeeded.
	ResultUnsat
)

func (r Result) String() string {
	switch r {
	case ResultSat:
		return "sat"
	case ResultUnsat:
		return "unsat"
	}
	return "unknown"
}

// Stats accumulates solver statistics across queries.
type Stats struct {
	Queries       int64
	FastQueries   int64 // decided by simplification alone, no SAT call
	CacheHits     int64 // decided by the shared VC cache, no SAT call
	CacheMisses   int64 // cache consulted but the query had to be solved
	CacheBytes    int64 // canonical serialization bytes hashed for cache keys
	SATConflicts  int64
	SATDecisions  int64
	CNFClauses    int64
	SolveDuration time.Duration
	ProofBytes    int64 // serialized DRAT trace bytes recorded for certificates
	Certificates  int64 // query certificates emitted

	// Inprocessing counters (see internal/sat/preprocess.go). These count
	// the work done by the primary per-query/per-worker instances; racer
	// instances simplify their own snapshots and are not aggregated.
	SubsumedClauses     int64 // clauses deleted as subsumed or root-satisfied
	StrengthenedClauses int64 // clauses shortened by self-subsuming resolution
	VivifiedClauses     int64 // clauses shortened by vivification probes
	EliminatedVars      int64 // variables removed by bounded elimination

	// Portfolio-racing counters.
	Races         int64 // queries that outlived the probe budget and raced
	RaceRacerWins int64 // races decided by a racer rather than the primary
	RaceTokens    int64 // idle worker slots borrowed across all races
	// Loser-side race accounting: CPU spent by racers whose result was
	// discarded (and by the primary's race leg when a racer won). Kept
	// apart from SATConflicts, which counts only work that produced the
	// verdicts, so phase reports can show the true cost of racing.
	RaceWastedConflicts int64
	RaceWastedProps     int64

	// Cube-and-conquer counters (the escalation tier above racing).
	CubeEscalations int64 // queries escalated to cube-and-conquer
	CubesGenerated  int64 // cubes emitted by the lookahead cuber
	CubesRefuted    int64 // cubes refuted under assumptions
	CubesSat        int64 // cubes found satisfiable (decides the query)
	CubeSteals      int64 // cubes drained by stolen idle slots
}

// Add accumulates o into s. Callers that run many solvers (one per
// harness worker) use it to aggregate per-solver statistics into one
// run-wide total.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.FastQueries += o.FastQueries
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheBytes += o.CacheBytes
	s.SATConflicts += o.SATConflicts
	s.SATDecisions += o.SATDecisions
	s.CNFClauses += o.CNFClauses
	s.SolveDuration += o.SolveDuration
	s.ProofBytes += o.ProofBytes
	s.Certificates += o.Certificates
	s.SubsumedClauses += o.SubsumedClauses
	s.StrengthenedClauses += o.StrengthenedClauses
	s.VivifiedClauses += o.VivifiedClauses
	s.EliminatedVars += o.EliminatedVars
	s.Races += o.Races
	s.RaceRacerWins += o.RaceRacerWins
	s.RaceTokens += o.RaceTokens
	s.RaceWastedConflicts += o.RaceWastedConflicts
	s.RaceWastedProps += o.RaceWastedProps
	s.CubeEscalations += o.CubeEscalations
	s.CubesGenerated += o.CubesGenerated
	s.CubesRefuted += o.CubesRefuted
	s.CubesSat += o.CubesSat
	s.CubeSteals += o.CubeSteals
}

// Solver decides QF_ABV formulas built in a Context. The zero value is not
// usable; use NewSolver.
type Solver struct {
	ctx *Context

	// ConflictBudget bounds CDCL conflicts per query (0 = unlimited).
	ConflictBudget int64
	// Deadline, when non-zero, makes queries return ErrDeadline once passed.
	Deadline time.Time
	// Budget is the wall-clock allowance Deadline was derived from. The
	// adaptive escalation ladder uses it to gate portfolio races on the
	// remaining-deadline fraction: while more than half the budget is
	// left the primary keeps probing solo with doubled budgets, so races
	// fire only for queries that are genuinely running out of time. Zero
	// (or a zero Deadline) leaves races ungated, the pre-adaptive
	// behavior.
	Budget time.Duration
	// DisableCube turns off the cube-and-conquer escalation tier above
	// portfolio racing (ablation; see cube.go and sat.BuildCubes).
	DisableCube bool
	// Incremental keeps one SAT instance, bit-blaster, and array reducer
	// alive across queries: shared subterms are encoded once and learned
	// clauses carry over, the incremental solving the paper's §5.1 names
	// as the missing piece of K's Z3 integration. Each query is solved
	// under an activation assumption, so queries do not pollute each other.
	Incremental bool
	// Cache, when non-nil, is consulted before solving and updated after:
	// queries are keyed by their alpha-invariant CanonKey, so structurally
	// identical obligations — from another function, another worker, or an
	// earlier query of this solver — are answered without touching the SAT
	// layer. A Sat hit returns a nil model (the cache stores verdicts
	// only); callers that need counterexample models must run uncached.
	Cache *Cache
	// DisableClauseDB turns off the LBD-based learned-clause database
	// reduction in the underlying SAT instances, reverting to the legacy
	// activity-threshold policy (ablation; see sat.Solver.LBD).
	DisableClauseDB bool
	// Inprocess enables SatELite-style inprocessing in the SAT instances
	// (subsumption, self-subsumption, vivification, and — for one-shot
	// instances — bounded variable elimination). Certification is
	// preserved: every rewrite is logged into the DRAT trace, and the one
	// non-RUP rewrite is auto-disabled while a Recorder is attached.
	Inprocess bool
	// Portfolio, when non-nil, races queries that outlive the probe
	// budget across idle worker slots with diversified configurations;
	// the first decision cancels the rest. See portfolio.go.
	Portfolio *Portfolio
	// Recorder, when non-nil, makes every decided query emit a proof
	// certificate: Unsat verdicts stream their SAT clause trace into a
	// DRAT session, Sat verdicts record the extracted model against the
	// original term, and cache hits record a reference to the canonical
	// key they resolved to. Off by default; see internal/proof.
	Recorder *proof.Recorder
	// Tracer, when non-nil, records one span per CheckSat query with its
	// result, conflict delta, cache-hit flag, and certificate kind. Nil
	// (the default) costs one nil check per query.
	Tracer *telemetry.Tracer
	// TraceParent is the span query spans nest under; the checker points
	// it at the sync-point or pair span currently being discharged.
	TraceParent telemetry.SpanID
	// Metrics, when non-nil, receives a query-latency observation
	// ("smt.query") and per-result counters for every CheckSat call.
	Metrics *telemetry.Metrics
	// Scratch, when non-nil, supplies reusable per-worker slabs for the
	// bit-blaster's literal vectors. The harness resets it between
	// functions; see Scratch for the lifetime contract.
	Scratch *Scratch

	Stats Stats

	incSAT     *sat.Solver
	incBlaster *blaster
	incReducer *arrayReducer
	incSession *proof.Session
	incFlushed int
	canonMemo  map[*Term]CanonKey
	// lastCert is the kind of the most recently recorded certificate
	// (trivial/simplified/ref/model/drat), surfaced as a span attribute.
	lastCert string
}

// ErrDeadline is returned when the Solver's deadline has passed.
var ErrDeadline = errors.New("smt: deadline exceeded")

// ErrBudget is returned when a query exhausts its conflict budget.
var ErrBudget = errors.New("smt: solver budget exhausted")

// NewSolver returns a Solver for terms of ctx.
func NewSolver(ctx *Context) *Solver {
	return &Solver{ctx: ctx}
}

// Context returns the term context the solver operates on.
func (s *Solver) Context() *Context { return s.ctx }

// CheckSat decides satisfiability of the Bool term f. On ResultSat the
// returned Assign is a satisfying model for the free variables of f.
func (s *Solver) CheckSat(f *Term) (res Result, model *Assign, err error) {
	defer func() {
		if p := recover(); p != nil {
			if p == ErrNodeBudget {
				res, model, err = ResultUnknown, nil, ErrNodeBudget
				return
			}
			panic(p)
		}
	}()
	start := time.Now()
	defer func() { s.Stats.SolveDuration += time.Since(start) }()
	s.Stats.Queries++
	if s.Tracer != nil || s.Metrics != nil {
		before := s.Stats
		sp := s.Tracer.Start(s.TraceParent, "smt.query")
		defer func() { s.finishQuery(sp, start, before, res) }()
	}

	if f.SortKind() != SortBool {
		return ResultUnknown, nil, fmt.Errorf("smt: CheckSat of non-Bool term")
	}
	// Fast path: construction-time simplification may already decide it.
	if f.IsTrue() {
		s.Stats.FastQueries++
		s.recordTrivial(f, proof.ResSat)
		return ResultSat, NewAssign(), nil
	}
	if f.IsFalse() {
		s.Stats.FastQueries++
		s.recordTrivial(f, proof.ResUnsat)
		return ResultUnsat, nil, nil
	}

	// The canonical key doubles as cache index and certificate content
	// address, so compute it when either consumer is present.
	var key CanonKey
	var keyHex string
	if s.Cache != nil || s.Recorder != nil {
		key = s.canonKey(f)
		keyHex = key.Hex()
	}
	if s.Cache != nil {
		if r, ok := s.Cache.Get(key); ok {
			s.Stats.CacheHits++
			s.recordRef(keyHex, r.String())
			if r == ResultUnsat {
				return ResultUnsat, nil, nil
			}
			return ResultSat, nil, nil
		}
		s.Stats.CacheMisses++
	}
	// The deadline gates solving only, and deliberately after the fast
	// paths and the cache lookup above: a trivially-decided query or a
	// shared-cache hit costs no solving, so an expired budget is no reason
	// to withhold (and certify-by-reference) an answer already in hand.
	if s.pastDeadline() {
		return ResultUnknown, nil, ErrDeadline
	}
	res, model, err = s.checkSatSolve(f, keyHex)
	if s.Cache != nil && err == nil {
		s.Cache.Put(key, res) // Put drops anything but Sat/Unsat
	}
	return res, model, err
}

// canonKey returns the cache key of f, memoized per term node: hash-consing
// makes repeat queries over the same formula pointer-equal, so each
// distinct formula is serialized at most once per solver.
func (s *Solver) canonKey(f *Term) CanonKey {
	if k, ok := s.canonMemo[f]; ok {
		return k
	}
	k, n := CanonicalHash(f)
	s.Stats.CacheBytes += n
	if s.canonMemo == nil {
		s.canonMemo = make(map[*Term]CanonKey)
	}
	s.canonMemo[f] = k
	return k
}

// checkSatSolve decides f by actually solving (no cache consultation).
func (s *Solver) checkSatSolve(f *Term, keyHex string) (Result, *Assign, error) {
	if s.Incremental {
		return s.checkSatIncremental(f, keyHex)
	}

	red := newArrayReducer(s.ctx)
	g, cons, err := red.reduce(f)
	if err != nil {
		return ResultUnknown, nil, err
	}
	g = s.ctx.AndB(g, cons)
	if g.IsTrue() {
		s.Stats.FastQueries++
		s.recordSimplified(f, proof.ResSat, keyHex)
		return ResultSat, NewAssign(), nil
	}
	if g.IsFalse() {
		s.Stats.FastQueries++
		s.recordSimplified(f, proof.ResUnsat, keyHex)
		return ResultUnsat, nil, nil
	}

	solver := sat.New()
	solver.LBD = !s.DisableClauseDB
	solver.ConflictBudget = s.ConflictBudget
	solver.Deadline = s.Deadline
	// One-shot instance: no assumptions and no later clauses, so full
	// inprocessing including variable elimination is safe.
	solver.Inprocess = s.Inprocess
	solver.InprocessElim = s.Inprocess
	// The proof log must be attached before the blaster exists: its
	// constructor already asserts the constant-true unit clause.
	var sess *proof.Session
	if s.Recorder != nil {
		sess = s.Recorder.NewSession()
		solver.Proof = &sat.ProofLog{}
	}
	b := newBlaster(s.ctx, solver, s.litArena())
	if sess != nil {
		b.varHook = s.hookVars(sess)
	}
	root, err := b.blastBool(g)
	if err != nil {
		return ResultUnknown, nil, err
	}
	solver.AddClause(root)
	st, winner := s.solveRaced(solver)
	s.Stats.SATConflicts += solver.Conflicts
	s.Stats.SATDecisions += solver.Decisions
	s.Stats.CNFClauses += int64(solver.NumClauses())
	s.Stats.SubsumedClauses += solver.Subsumed
	s.Stats.StrengthenedClauses += solver.Strengthened
	s.Stats.VivifiedClauses += solver.Vivified
	s.Stats.EliminatedVars += solver.Eliminated
	switch st {
	case sat.Unsat:
		if sess != nil {
			// No assumptions here, so Unsat is a global refutation: the
			// obligation is the empty clause. The winner's trace is the
			// one recorded — a racer's is a complete one-shot refutation
			// of the snapshot CNF over the same variable numbering.
			s.recordUnsat(winner.Proof, 0, sess, nil, keyHex)
		}
		return ResultUnsat, nil, nil
	case sat.Unknown:
		// Unknown conflates budget exhaustion, deadline expiry, and a lost
		// race; attribute the deadline truthfully so tail reports do not
		// blame the conflict budget for wall-clock starvation.
		if s.pastDeadline() {
			return ResultUnknown, nil, ErrDeadline
		}
		return ResultUnknown, nil, ErrBudget
	}
	m := s.extractModel(f, red, b, winner)
	s.recordModel(f, m, keyHex)
	return ResultSat, m, nil
}

// pastDeadline reports whether a non-zero deadline has elapsed.
func (s *Solver) pastDeadline() bool {
	return !s.Deadline.IsZero() && time.Now().After(s.Deadline)
}

// checkSatIncremental solves against the persistent SAT instance under an
// activation assumption.
func (s *Solver) checkSatIncremental(f *Term, keyHex string) (Result, *Assign, error) {
	if s.incSAT == nil {
		s.incSAT = sat.New()
		s.incSAT.LBD = !s.DisableClauseDB
		// The persistent instance sees new clauses and assumption
		// variables on every query, so it gets the implication-only
		// inprocessing rewrites; variable elimination stays off
		// (InprocessElim false) — racers spawned from its snapshots are
		// one-shot and run the full set.
		s.incSAT.Inprocess = s.Inprocess
		if s.Recorder != nil {
			// One session for the whole solver lifetime: the trace grows
			// monotonically and each Unsat certificate points at its own
			// position, so the CNF shared across queries is logged once.
			// Attach the proof log before the blaster exists: its
			// constructor already asserts the constant-true unit clause.
			s.incSession = s.Recorder.NewSession()
			s.incSAT.Proof = &sat.ProofLog{}
		}
		s.incBlaster = newBlaster(s.ctx, s.incSAT, s.litArena())
		s.incReducer = newArrayReducer(s.ctx)
		if s.incSession != nil {
			s.incBlaster.varHook = s.hookVars(s.incSession)
		}
	}
	// The persistent instance accumulates counters across queries; charge
	// this query with the deltas only, on every return path (fast-path
	// returns can still have asserted consistency clauses).
	confBefore := s.incSAT.Conflicts
	decBefore := s.incSAT.Decisions
	clausesBefore := int64(s.incSAT.NumClauses())
	subBefore, strBefore := s.incSAT.Subsumed, s.incSAT.Strengthened
	vivBefore, elimBefore := s.incSAT.Vivified, s.incSAT.Eliminated
	defer func() {
		s.Stats.SATConflicts += s.incSAT.Conflicts - confBefore
		s.Stats.SATDecisions += s.incSAT.Decisions - decBefore
		s.Stats.CNFClauses += int64(s.incSAT.NumClauses()) - clausesBefore
		s.Stats.SubsumedClauses += s.incSAT.Subsumed - subBefore
		s.Stats.StrengthenedClauses += s.incSAT.Strengthened - strBefore
		s.Stats.VivifiedClauses += s.incSAT.Vivified - vivBefore
		s.Stats.EliminatedVars += s.incSAT.Eliminated - elimBefore
	}()
	g, cons, err := s.incReducer.reduce(f)
	if err != nil {
		return ResultUnknown, nil, err
	}
	// Consistency constraints are theory facts: assert them permanently.
	if !cons.IsTrue() {
		consLit, err := s.incBlaster.blastBool(cons)
		if err != nil {
			return ResultUnknown, nil, err
		}
		s.incSAT.AddClause(consLit)
	}
	if g.IsTrue() {
		s.Stats.FastQueries++
		s.recordSimplified(f, proof.ResSat, keyHex)
		return ResultSat, NewAssign(), nil
	}
	if g.IsFalse() {
		s.Stats.FastQueries++
		s.recordSimplified(f, proof.ResUnsat, keyHex)
		return ResultUnsat, nil, nil
	}
	root, err := s.incBlaster.blastBool(g)
	if err != nil {
		return ResultUnknown, nil, err
	}
	s.incSAT.ConflictBudget = s.ConflictBudget
	s.incSAT.Deadline = s.Deadline
	st, winner := s.solveRaced(s.incSAT, root)
	switch st {
	case sat.Unsat:
		if s.incSession != nil {
			if winner == s.incSAT {
				// Under an activation assumption, Unsat means the negated
				// assumption follows by unit propagation — unless the instance
				// was refuted outright, in which case the obligation is the
				// empty clause.
				var final []int
				if s.incSAT.Okay() {
					final = []int{-litDimacs(root)}
				}
				s.incFlushed = s.recordUnsat(s.incSAT.Proof, s.incFlushed, s.incSession, final, keyHex)
			} else {
				// A racer won. Its trace is a self-contained one-shot
				// refutation — snapshot clauses plus the activation unit as
				// inputs, empty clause as the obligation — so it gets its
				// own session; the shared incremental session and its flush
				// watermark stay untouched for the next primary-won query.
				sess := s.Recorder.NewSession()
				s.mapBlasterVars(sess, s.incBlaster)
				s.recordUnsat(winner.Proof, 0, sess, nil, keyHex)
			}
		}
		return ResultUnsat, nil, nil
	case sat.Unknown:
		if s.pastDeadline() {
			return ResultUnknown, nil, ErrDeadline
		}
		return ResultUnknown, nil, ErrBudget
	}
	// The snapshot preserves variable numbering, so the blaster memos
	// decode a racer's model exactly like the primary's.
	m := s.extractModel(f, s.incReducer, s.incBlaster, winner)
	s.recordModel(f, m, keyHex)
	return ResultSat, m, nil
}

// Prove decides validity of the Bool term f (true in all models). On
// failure the returned Assign is a countermodel.
func (s *Solver) Prove(f *Term) (proved bool, counter *Assign, err error) {
	res, model, err := s.CheckSat(s.ctx.Not(f))
	if err != nil {
		return false, nil, err
	}
	switch res {
	case ResultUnsat:
		return true, nil, nil
	case ResultSat:
		return false, model, nil
	}
	return false, nil, ErrBudget
}

// ProveImplies decides validity of premise → conclusion.
func (s *Solver) ProveImplies(premise, conclusion *Term) (bool, *Assign, error) {
	return s.Prove(s.ctx.Implies(premise, conclusion))
}

// extractModel reads variable values out of the SAT model. Memory contents
// are reconstructed best-effort from the Ackermann select variables.
func (s *Solver) extractModel(orig *Term, red *arrayReducer, b *blaster, solver *sat.Solver) *Assign {
	m := NewAssign()
	// Free variables appear in the blaster memos keyed by their var terms.
	for t, lits := range b.bvMemo {
		if t.Kind != KVarBV {
			continue
		}
		var v uint64
		for i, l := range lits {
			bit := solver.Value(l.Var())
			if l.Neg() {
				bit = !bit
			}
			if bit {
				v |= 1 << i
			}
		}
		m.BV[t.Name] = v
	}
	for t, l := range b.boolMemo {
		if t.Kind != KVarBool {
			continue
		}
		bit := solver.Value(l.Var())
		if l.Neg() {
			bit = !bit
		}
		m.Bool[t.Name] = bit
	}
	// Memory: evaluate Ackermann select addresses under the model.
	for base, entries := range red.sel {
		bytes := make(map[uint64]uint8)
		for _, e := range entries {
			addr, err := m.EvalBV(e.addr)
			if err != nil {
				continue
			}
			val, ok := m.BV[e.v.Name]
			if !ok {
				continue
			}
			bytes[addr] = uint8(val)
		}
		m.Mem[base.Name] = bytes
	}
	return m
}
