package tv

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/vcgen"
)

func TestValidateSignedDivision(t *testing.T) {
	// sdiv/srem have two UB conditions (divisor 0, INT_MIN/-1) mirrored by
	// x86 #DE traps; the error states pair by kind and the translation
	// validates as full equivalence.
	src := `
define i32 @sd(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  %r = srem i32 %a, %b
  %s = add i32 %q, %r
  ret i32 %s
}`
	mod, err := llvmir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Validate(mod, "sd", isel.Options{}, vcgen.Options{}, core.Options{},
		Budget{Timeout: 3 * time.Minute})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v err = %v report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestSignedDivisionInterpAgreement(t *testing.T) {
	src := `
define i32 @sd(i32 %a, i32 %b) {
entry:
  %q = sdiv i32 %a, %b
  ret i32 %q
}`
	mod, err := llvmir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := llvmir.NewInterp(mod)
	if got, err := in.Call("sd", []uint64{0xFFFFFFF8, 3}); err != nil || int32(got) != -2 {
		t.Fatalf("sdiv(-8,3) = %d, %v (want -2, truncated)", int32(got), err)
	}
	if _, err := in.Call("sd", []uint64{5, 0}); err == nil {
		t.Fatalf("sdiv by zero did not trap")
	}
	if _, err := in.Call("sd", []uint64{0x80000000, 0xFFFFFFFF}); err == nil {
		t.Fatalf("INT_MIN / -1 did not trap")
	}
}
