package tv

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/vcgen"
)

// TestCorpusSmoke pushes a small synthetic corpus through the whole
// pipeline; nearly all functions must validate (the tail may time out
// under the test budget, mirroring Figure 6).
func TestCorpusSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus smoke test is slow")
	}
	fns := corpus.Generate(corpus.GCCLike(12))
	classes := map[Class]int{}
	for _, f := range fns {
		mod, err := llvmir.Parse(f.Src)
		if err != nil {
			t.Fatal(err)
		}
		out := Validate(mod, f.Name, isel.Options{}, vcgen.Options{}, core.Options{}, Budget{Timeout: 20 * time.Second})
		classes[out.Class]++
		if out.Class != ClassSucceeded && out.Class != ClassTimeout {
			t.Errorf("%s: %v err=%v", f.Name, out.Class, out.Err)
			if out.Report != nil {
				for _, fl := range out.Report.Failures {
					t.Logf("  %v", fl)
				}
			}
		}
	}
	t.Logf("classes: %v", classes)
	if classes[ClassSucceeded] < 9 {
		t.Errorf("only %d/12 validated", classes[ClassSucceeded])
	}
}
