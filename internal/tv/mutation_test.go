package tv

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/vcgen"
	"repro/internal/vx86"
)

// TestMutationSoundness is an adversarial soundness test: take a correct
// translation, apply a semantics-changing mutation to the Virtual x86
// side, and assert KEQ never validates the mutant. (The VC is generated
// from the unmutated translation's hints, exactly the situation after a
// miscompilation downstream of hint generation.)
func TestMutationSoundness(t *testing.T) {
	mod, err := llvmir.Parse(paperSumSrc)
	if err != nil {
		t.Fatal(err)
	}
	fn := mod.Func("arithm_seq_sum")

	type mutation struct {
		name  string
		apply func(f *vx86.Function) bool // returns false when not applicable
	}
	mutations := []mutation{
		{"swap sub operands", func(f *vx86.Function) bool {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == vx86.OpSub && len(in.Srcs) == 2 {
						in.Srcs[0], in.Srcs[1] = in.Srcs[1], in.Srcs[0]
						return true
					}
				}
			}
			return false
		}},
		{"add becomes sub", func(f *vx86.Function) bool {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == vx86.OpAdd {
						in.Op = vx86.OpSub
						return true
					}
				}
			}
			return false
		}},
		{"flip jump condition", func(f *vx86.Function) bool {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == vx86.OpJcc && in.CC == vx86.CCAE {
						in.CC = vx86.CCB
						return true
					}
				}
			}
			return false
		}},
		{"off-by-one immediate", func(f *vx86.Function) bool {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == vx86.OpMov && in.Srcs[0].Kind == vx86.OImm {
						in.Srcs[0].Imm++
						return true
					}
				}
			}
			return false
		}},
		{"return wrong register", func(f *vx86.Function) bool {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == vx86.OpCopy && in.HasDst && !in.Dst.Virtual &&
						in.Dst.Name == "rax" && in.Srcs[0].Kind == vx86.OReg {
						// Redirect the return to a different phi result.
						in.Srcs[0].Reg = vx86.Reg{Virtual: true, Name: "vr8", Width: 32}
						return true
					}
				}
			}
			return false
		}},
	}

	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			res, err := isel.Compile(mod, fn, isel.Options{})
			if err != nil {
				t.Fatal(err)
			}
			points, err := vcgen.Generate(fn, res.Fn, res.Hints, vcgen.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !m.apply(res.Fn) {
				t.Skipf("mutation not applicable")
			}
			out := ValidateTranslation(mod, fn, res.Fn, points, core.Options{},
				Budget{Timeout: time.Minute})
			if out.Class == ClassSucceeded {
				t.Fatalf("mutant VALIDATED — soundness violation:\n%s",
					(&vx86.Program{Funcs: []*vx86.Function{res.Fn}}).String())
			}
		})
	}
}

const paperSumSrc = `
define i32 @arithm_seq_sum(i32 %a0, i32 %d, i32 %n) {
entry:
  br label %for.cond

for.cond:
  %s.0 = phi i32 [ %a0, %entry ], [ %add1, %for.inc ]
  %a.0 = phi i32 [ %a0, %entry ], [ %add, %for.inc ]
  %i.0 = phi i32 [ 1, %entry ], [ %inc, %for.inc ]
  %cmp = icmp ult i32 %i.0, %n
  br i1 %cmp, label %for.body, label %for.end

for.body:
  %add = add i32 %a.0, %d
  %add1 = add i32 %s.0, %add
  br label %for.inc

for.inc:
  %inc = add i32 %i.0, 1
  br label %for.cond

for.end:
  ret i32 %s.0
}
`
