// Package tv assembles the full translation-validation pipeline of the
// paper's Figure 5: ISel compiles the LLVM function and emits hints, the
// VC generator produces synchronization points, and KEQ (internal/core)
// checks that they form a cut-bisimulation between the two programs under
// the LLVM and Virtual x86 semantics.
package tv

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/smt"
	"repro/internal/telemetry"
	"repro/internal/vcgen"
	"repro/internal/vx86"
)

// Budget bounds one validation run, mirroring the paper's per-function
// limits (3-hour timeout, 12 GB memory).
type Budget struct {
	// Timeout bounds wall-clock time for the whole pipeline — ISel, VC
	// generation, symbolic stepping, and SMT solving — measured from
	// Validate/ValidateTranslation entry, like the paper's 3-hour
	// per-function limit (0 = none).
	Timeout time.Duration
	// MaxTermNodes bounds solver term allocation — the stand-in for the
	// memory limit (0 = none).
	MaxTermNodes uint64
	// ConflictBudget bounds CDCL conflicts per SMT query (0 = none).
	ConflictBudget int64
}

// deadlineFrom converts the relative Timeout into the absolute deadline
// for a run that started at start (zero when unbounded).
func (b Budget) deadlineFrom(start time.Time) time.Time {
	if b.Timeout <= 0 {
		return time.Time{}
	}
	return start.Add(b.Timeout)
}

// pastDeadline reports whether a non-zero deadline has elapsed.
func pastDeadline(d time.Time) bool {
	return !d.IsZero() && time.Now().After(d)
}

// Class classifies an outcome the way Figure 6 does.
type Class int8

// Outcome classes (the rows of Figure 6).
const (
	ClassSucceeded Class = iota
	ClassNotValidated
	ClassTimeout
	ClassOOM
	ClassOther
	ClassUnsupported
)

func (c Class) String() string {
	switch c {
	case ClassSucceeded:
		return "Succeeded"
	case ClassNotValidated:
		return "Not validated"
	case ClassTimeout:
		return "Failed due to timeout"
	case ClassOOM:
		return "Failed due to out-of-memory"
	case ClassOther:
		return "Other"
	case ClassUnsupported:
		return "Unsupported"
	}
	return "?"
}

// ParseClass maps a Class.String() rendering back to its Class. The
// result-store records classes by their stable string form (an int8
// would silently re-map if the enum were ever reordered); this is the
// decoding side. The second result is false for unknown strings.
func ParseClass(s string) (Class, bool) {
	for c := ClassSucceeded; c <= ClassUnsupported; c++ {
		if c.String() == s {
			return c, true
		}
	}
	return ClassOther, false
}

// PhaseTimes is the wall-clock breakdown of one validation run. Parse is
// zero unless the caller (the harness) parsed the module as part of the
// per-function work. SMT is the portion of Check spent inside solver
// calls, so Check-SMT is the symbolic-stepping overhead.
type PhaseTimes struct {
	Parse time.Duration
	ISel  time.Duration
	VCGen time.Duration
	Check time.Duration
	SMT   time.Duration
}

// MemStats is the allocation breakdown of one validation run, sampled
// from runtime.MemStats at phase boundaries: each phase field is the
// TotalAlloc delta across that phase, and Peak is the largest HeapAlloc
// seen at any boundary. The counters are process-global, so with
// parallel workers a phase is charged with everything allocated while
// it ran, including other workers' allocations — an approximation that
// still localizes which phase an out-of-memory row died in. Parse is
// filled by the harness when module parsing is part of per-function work.
type MemStats struct {
	Parse int64
	ISel  int64
	VCGen int64
	Check int64
	Peak  int64
}

// Outcome is the result of validating one function.
type Outcome struct {
	Fn       string
	Class    Class
	Report   *core.Report
	Err      error
	Duration time.Duration
	Phases   PhaseTimes
	Mem      MemStats
	CodeSize int // LLVM instruction count (the Figure 7 size metric)
	Points   int
	Compiled *isel.Result
	SMTStats smt.Stats

	// memMark is the TotalAlloc reading at the previous phase boundary.
	memMark int64
}

// MarkPhase samples the runtime allocation counters, charges the delta
// since the previous boundary to *phase (nil: establish the baseline
// only), and folds the current heap size into Mem.Peak. Exported so the
// harness can charge its per-function parse phase with the same clock.
func (o *Outcome) MarkPhase(phase *int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	ta := int64(ms.TotalAlloc)
	if phase != nil {
		*phase = ta - o.memMark
	}
	o.memMark = ta
	if ha := int64(ms.HeapAlloc); ha > o.Mem.Peak {
		o.Mem.Peak = ha
	}
}

// Validate runs the whole pipeline for one function of mod.
func Validate(mod *llvmir.Module, fnName string, iopts isel.Options, vopts vcgen.Options,
	copts core.Options, budget Budget) *Outcome {
	start := time.Now()
	deadline := budget.deadlineFrom(start)
	out := &Outcome{Fn: fnName}
	out.MarkPhase(nil)
	root := copts.Trace.Start(copts.TraceParent, "tv.validate",
		telemetry.String("fn", fnName))
	if root != nil {
		copts.TraceParent = root.ID()
	}
	defer func() {
		out.Duration = time.Since(start)
		if root != nil {
			root.SetAttr("class", out.Class.String())
			root.End()
		}
	}()

	fn := mod.Func(fnName)
	if fn == nil || !fn.Defined() {
		out.Class = ClassOther
		out.Err = fmt.Errorf("tv: no definition of @%s", fnName)
		return out
	}
	out.CodeSize = fn.NumInstrs()

	iselStart := time.Now()
	iselSpan := copts.Trace.Start(copts.TraceParent, "tv.isel")
	if iselSpan != nil {
		iopts.Trace = copts.Trace
		iopts.TraceParent = iselSpan.ID()
	}
	res, err := isel.Compile(mod, fn, iopts)
	iselSpan.End()
	out.Phases.ISel = time.Since(iselStart)
	out.MarkPhase(&out.Mem.ISel)
	if err != nil {
		var uns *isel.ErrUnsupported
		if errors.As(err, &uns) {
			out.Class = ClassUnsupported
		} else {
			out.Class = ClassOther
		}
		out.Err = err
		return out
	}
	if pastDeadline(deadline) {
		out.Class = ClassTimeout
		out.Err = fmt.Errorf("tv: instruction selection of @%s: %w", fnName, smt.ErrDeadline)
		return out
	}
	out.Compiled = res
	return validateCompiled(mod, fn, res, vopts, copts, budget, deadline, out)
}

// ValidateTranslation checks an existing (possibly externally produced)
// translation: the cmd/keq entry point.
func ValidateTranslation(mod *llvmir.Module, fn *llvmir.Function, xfn *vx86.Function,
	points []*core.SyncPoint, copts core.Options, budget Budget) *Outcome {
	start := time.Now()
	deadline := budget.deadlineFrom(start)
	out := &Outcome{Fn: fn.Name, CodeSize: fn.NumInstrs(), Points: len(points)}
	out.MarkPhase(nil)
	root := copts.Trace.Start(copts.TraceParent, "tv.validate",
		telemetry.String("fn", fn.Name))
	if root != nil {
		copts.TraceParent = root.ID()
	}
	defer func() {
		out.Duration = time.Since(start)
		if root != nil {
			root.SetAttr("class", out.Class.String())
			root.End()
		}
	}()
	runCheck(mod, fn, xfn, points, copts, budget, deadline, out)
	return out
}

func validateCompiled(mod *llvmir.Module, fn *llvmir.Function, res *isel.Result,
	vopts vcgen.Options, copts core.Options, budget Budget, deadline time.Time, out *Outcome) *Outcome {
	vcStart := time.Now()
	vcSpan := copts.Trace.Start(copts.TraceParent, "tv.vcgen")
	if vcSpan != nil {
		vopts.Trace = copts.Trace
		vopts.TraceParent = vcSpan.ID()
	}
	points, err := vcgen.Generate(fn, res.Fn, res.Hints, vopts)
	vcSpan.End()
	out.Phases.VCGen = time.Since(vcStart)
	out.MarkPhase(&out.Mem.VCGen)
	if err != nil {
		out.Class = ClassOther
		out.Err = err
		return out
	}
	if pastDeadline(deadline) {
		out.Class = ClassTimeout
		out.Err = fmt.Errorf("tv: VC generation for @%s: %w", fn.Name, smt.ErrDeadline)
		return out
	}
	out.Points = len(points)
	runCheck(mod, fn, res.Fn, points, copts, budget, deadline, out)
	return out
}

func runCheck(mod *llvmir.Module, fn *llvmir.Function, xfn *vx86.Function,
	points []*core.SyncPoint, copts core.Options, budget Budget, deadline time.Time, out *Outcome) {
	checkStart := time.Now()
	// Term construction during symbolic execution may trip the node budget
	// outside a solver call; treat it as the same out-of-memory outcome.
	defer func() {
		if p := recover(); p != nil {
			if p == smt.ErrNodeBudget {
				out.Class = ClassOOM
				out.Err = smt.ErrNodeBudget
				return
			}
			panic(p)
		}
	}()
	checkSpan := copts.Trace.Start(copts.TraceParent, "tv.check",
		telemetry.Int("points", int64(len(points))))
	if checkSpan != nil {
		copts.TraceParent = checkSpan.ID()
	}
	// With per-worker scratch attached, the term table and the blaster's
	// literal arena reuse the previous function's memory. Resetting here
	// is safe: every term of the previous function is dead by the time
	// its worker starts the next one (certificates encode terms to disk
	// as they are recorded, and reports retain only strings and values).
	var ctx *smt.Context
	if copts.Scratch != nil {
		copts.Scratch.Reset()
		ctx = smt.NewContextWith(copts.Scratch.Terms)
	} else {
		ctx = smt.NewContext()
	}
	ctx.MaxNodes = budget.MaxTermNodes
	solver := smt.NewSolver(ctx)
	solver.ConflictBudget = budget.ConflictBudget
	// The deadline is absolute, computed at pipeline entry, so the SMT
	// phase only gets whatever the earlier phases left of the budget. The
	// checker's symbolic-stepping loop polls the same deadline.
	solver.Deadline = deadline
	// The original wall-clock allowance, alongside the absolute deadline,
	// is what lets the portfolio's escalation ladder gate races on the
	// remaining-budget fraction (see smt.Solver.Budget).
	solver.Budget = budget.Timeout
	// Runs during panic unwinding too (declared after the recover handler,
	// so it fires first): the phase breakdown and span must survive an OOM
	// abort mid-check.
	defer func() {
		out.Phases.Check = time.Since(checkStart)
		out.Phases.SMT = solver.Stats.SolveDuration
		out.SMTStats = solver.Stats
		out.MarkPhase(&out.Mem.Check)
		checkSpan.End()
	}()

	layout := llvmir.BuildLayout(mod, fn)
	left := llvmir.NewSem(ctx, mod, fn, layout)
	right := vx86.NewSem(ctx, xfn, layout)

	ck := core.NewChecker(solver, left, right, copts)
	report, err := ck.Run(points)
	if err != nil {
		out.Err = err
		switch {
		case errors.Is(err, smt.ErrDeadline), errors.Is(err, smt.ErrBudget):
			out.Class = ClassTimeout
		case errors.Is(err, smt.ErrNodeBudget):
			out.Class = ClassOOM
		default:
			out.Class = ClassOther
		}
		return
	}
	out.Report = report
	if report.Verdict == core.Validated {
		out.Class = ClassSucceeded
	} else {
		out.Class = ClassNotValidated
	}
}
