package tv

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/paperprogs"
	"repro/internal/smt"
	"repro/internal/vcgen"
	"repro/internal/vx86"
)

func validate(t *testing.T, src, fn string, iopts isel.Options) *Outcome {
	t.Helper()
	mod, err := llvmir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := llvmir.Verify(mod); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return Validate(mod, fn, iopts, vcgen.Options{}, core.Options{},
		Budget{Timeout: 120 * time.Second})
}

func TestValidateStraightLine(t *testing.T) {
	out := validate(t, `
define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = xor i32 %a, %x
  ret i32 %b
}`, "f", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestValidateArithmSeqSum(t *testing.T) {
	out := validate(t, paperprogs.ArithmSeqSum, "arithm_seq_sum", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
	// Figure 3: four synchronization points (entry, two loop-header
	// predecessors, exit).
	if out.Points != 4 {
		t.Errorf("points = %d, want 4 (p0, p1, p2, p3 of Figure 3)", out.Points)
	}
}

func TestValidateMemSwap(t *testing.T) {
	out := validate(t, paperprogs.MemSwap, "mem_swap", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestValidateAlloca(t *testing.T) {
	out := validate(t, paperprogs.AllocaExample, "alloca_example", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestValidateCalls(t *testing.T) {
	out := validate(t, paperprogs.CallExample, "call_example", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
	// entry, exit, before-call, after-call.
	if out.Points != 4 {
		t.Errorf("points = %d, want 4", out.Points)
	}
}

func TestValidateNSWRefinesOnUB(t *testing.T) {
	// The x86 add wraps where the LLVM add nsw has UB; the acceptability
	// relation excuses the overflow path (paper §4.6).
	out := validate(t, paperprogs.NSWExample, "nsw_example", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestValidateSelect(t *testing.T) {
	out := validate(t, `
define i32 @sel(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  %r = select i1 %c, i32 %a, i32 %b
  ret i32 %r
}`, "sel", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestValidateWAWStoresCorrectMerge(t *testing.T) {
	// The correct store merge (Figure 9c) must validate.
	out := validate(t, paperprogs.WAWStores, "waw_foo", isel.Options{MergeStores: true})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestRejectWAWBug(t *testing.T) {
	// Figure 8/9(b): the buggy merge reverses a write-after-write
	// dependency; KEQ must fail to prove memory equality at the exit.
	out := validate(t, paperprogs.WAWStores, "waw_foo", isel.Options{BugWAWStoreMerge: true})
	if out.Class != ClassNotValidated {
		t.Fatalf("class = %v (err = %v); the WAW miscompilation was not caught", out.Class, out.Err)
	}
	if len(out.Report.Failures) == 0 {
		t.Fatalf("no failures recorded")
	}
}

func TestValidateLoadNarrowCorrect(t *testing.T) {
	out := validate(t, paperprogs.LoadNarrow, "narrow_foo", isel.Options{})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v, err = %v, report = %+v", out.Class, out.Err, out.Report)
	}
}

func TestRejectLoadNarrowBug(t *testing.T) {
	// Figure 10/11(b): the widened access branches into an out-of-bounds
	// error state with no counterpart in the input program; KEQ cannot
	// even prove refinement (paper footnote 7).
	out := validate(t, paperprogs.LoadNarrow, "narrow_foo", isel.Options{BugLoadNarrow: true})
	if out.Class != ClassNotValidated {
		t.Fatalf("class = %v (err = %v); the load-narrowing miscompilation was not caught", out.Class, out.Err)
	}
	found := false
	for _, f := range out.Report.Failures {
		if f.Loc == core.ErrorLoc("oob") {
			found = true
		}
	}
	if !found {
		t.Errorf("failures do not mention the oob error state: %v", out.Report.Failures)
	}
}

func TestCoarseLivenessStillSound(t *testing.T) {
	// Deliberately coarse x86 liveness adds constraints for registers with
	// no LLVM counterpart at loop headers, making the VC inadequate for
	// some functions (paper Figure 6 "Other"). It must never validate a
	// buggy translation, and KEQ must fail closed.
	mod, err := llvmir.Parse(paperprogs.WAWStores)
	if err != nil {
		t.Fatal(err)
	}
	out := Validate(mod, "waw_foo", isel.Options{BugWAWStoreMerge: true},
		vcgen.Options{CoarseLiveness: true}, core.Options{}, Budget{})
	if out.Class == ClassSucceeded {
		t.Fatalf("coarse liveness validated a miscompilation")
	}
}

func TestBudgetsClassify(t *testing.T) {
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		t.Fatal(err)
	}
	// Absurdly small node budget → OOM class.
	out := Validate(mod, "arithm_seq_sum", isel.Options{}, vcgen.Options{},
		core.Options{}, Budget{MaxTermNodes: 100})
	if out.Class != ClassOOM {
		t.Errorf("tiny node budget: class = %v, want OOM", out.Class)
	}
	// Expired deadline → timeout class.
	out = Validate(mod, "arithm_seq_sum", isel.Options{}, vcgen.Options{},
		core.Options{}, Budget{Timeout: time.Nanosecond})
	if out.Class != ClassTimeout {
		t.Errorf("expired deadline: class = %v, want timeout", out.Class)
	}
}

func TestUnsupportedClassified(t *testing.T) {
	out := validate(t, `
define i48 @f(i48 %x) {
entry:
  ret i48 %x
}`, "f", isel.Options{})
	if out.Class != ClassUnsupported {
		t.Errorf("class = %v, want Unsupported", out.Class)
	}
}

func TestRefinementMode(t *testing.T) {
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		t.Fatal(err)
	}
	out := Validate(mod, "arithm_seq_sum", isel.Options{}, vcgen.Options{},
		core.Options{Mode: core.Refinement}, Budget{})
	if out.Class != ClassSucceeded {
		t.Fatalf("refinement: class = %v, err = %v", out.Class, out.Err)
	}
}

func TestAblationOptionsAgree(t *testing.T) {
	// Both SMT-optimization ablations must reach the same verdicts on a
	// positive and a negative instance.
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []core.Options{
		{},
		{DisablePositiveForm: true},
		{DisablePCFastPath: true},
		{DisablePositiveForm: true, DisablePCFastPath: true},
	} {
		out := Validate(mod, "arithm_seq_sum", isel.Options{}, vcgen.Options{}, opts, Budget{})
		if out.Class != ClassSucceeded {
			t.Errorf("opts %+v: class = %v, err = %v", opts, out.Class, out.Err)
		}
	}
	bug, err := llvmir.Parse(paperprogs.WAWStores)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []core.Options{{}, {DisablePositiveForm: true}} {
		out := Validate(bug, "waw_foo", isel.Options{BugWAWStoreMerge: true},
			vcgen.Options{}, opts, Budget{})
		if out.Class != ClassNotValidated {
			t.Errorf("opts %+v on bug: class = %v", opts, out.Class)
		}
	}
}

func TestValidateStrengthReduction(t *testing.T) {
	// §4.7: strength-reduced divisions/multiplications. The bit-blasting
	// solver proves shift/division equivalences directly.
	src := `
define i32 @sr(i32 %x, i32 %y) {
entry:
  %a = mul i32 %x, 8
  %b = udiv i32 %a, 4
  %c = urem i32 %b, 16
  %d = udiv i32 %y, 3
  %e = add i32 %c, %d
  ret i32 %e
}`
	mod, err := llvmir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Validate(mod, "sr", isel.Options{StrengthReduce: true}, vcgen.Options{},
		core.Options{}, Budget{Timeout: 2 * time.Minute})
	if out.Class != ClassSucceeded {
		t.Fatalf("class = %v err = %v report = %+v", out.Class, out.Err, out.Report)
	}
	// A *wrong* strength reduction (mul by non-power-of-two reduced as if
	// it were one) must be rejected: simulate by compiling with the buggy
	// combination below.
	res, err := isel.Compile(mod, mod.Func("sr"), isel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate: replace the imul by 8 with a shift by 2 (wrong: should be 3).
	for _, b := range res.Fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == vx86.OpIMul && len(in.Srcs) == 2 && in.Srcs[1].Kind == vx86.OImm {
				in.Op = vx86.OpShl
				in.Srcs[1] = vx86.ImmOp(2)
			}
		}
	}
	points, err := vcgen.Generate(mod.Func("sr"), res.Fn, res.Hints, vcgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := ValidateTranslation(mod, mod.Func("sr"), res.Fn, points, core.Options{},
		Budget{Timeout: 2 * time.Minute})
	if bad.Class != ClassNotValidated {
		t.Fatalf("wrong strength reduction: class = %v", bad.Class)
	}
}

// TestTimeoutBoundsWholePipeline: the Timeout budget is measured from
// Validate entry, so a deadline that elapses before the SMT phase (here:
// immediately) is still classified as a timeout, not as some other
// failure — the paper's 3-hour limit covers ISel and VC generation too.
func TestTimeoutBoundsWholePipeline(t *testing.T) {
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		t.Fatal(err)
	}
	out := Validate(mod, "arithm_seq_sum", isel.Options{}, vcgen.Options{},
		core.Options{}, Budget{Timeout: time.Nanosecond})
	if out.Class != ClassTimeout {
		t.Fatalf("class = %v (err = %v), want ClassTimeout", out.Class, out.Err)
	}
	if !errors.Is(out.Err, smt.ErrDeadline) {
		t.Errorf("err = %v, want wrapped smt.ErrDeadline", out.Err)
	}
}

// TestValidateTranslationTimeout: ValidateTranslation computes its
// deadline at entry as well.
func TestValidateTranslationTimeout(t *testing.T) {
	mod, err := llvmir.Parse(paperprogs.ArithmSeqSum)
	if err != nil {
		t.Fatal(err)
	}
	fn := mod.Func("arithm_seq_sum")
	res, err := isel.Compile(mod, fn, isel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	points, err := vcgen.Generate(fn, res.Fn, res.Hints, vcgen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := ValidateTranslation(mod, fn, res.Fn, points, core.Options{},
		Budget{Timeout: time.Nanosecond})
	if out.Class != ClassTimeout {
		t.Fatalf("class = %v (err = %v), want ClassTimeout", out.Class, out.Err)
	}
}
