package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/smt"
)

func TestLayoutAllocation(t *testing.T) {
	l := NewLayout()
	a := l.Alloc("a", 12)
	b := l.Alloc("b", 8)
	if a.Base < GlobalBase {
		t.Errorf("a.Base = %#x below GlobalBase", a.Base)
	}
	if b.Base < a.Base+a.Size+16 {
		t.Errorf("objects not separated by guard gap: a=%+v b=%+v", a, b)
	}
	if b.Base%16 != 0 {
		t.Errorf("b.Base = %#x not 16-aligned", b.Base)
	}
	got, ok := l.Find("a")
	if !ok || got != a {
		t.Errorf("Find(a) = %+v, %v", got, ok)
	}
	if _, ok := l.Find("zzz"); ok {
		t.Errorf("Find of missing object succeeded")
	}
}

func TestLayoutDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate Alloc did not panic")
		}
	}()
	l := NewLayout()
	l.Alloc("x", 4)
	l.Alloc("x", 4)
}

func TestInBounds(t *testing.T) {
	l := NewLayout()
	a := l.Alloc("a", 12)
	tests := []struct {
		addr, size uint64
		want       bool
	}{
		{a.Base, 12, true},
		{a.Base, 1, true},
		{a.Base + 11, 1, true},
		{a.Base + 8, 4, true},
		{a.Base + 8, 8, false}, // the load-narrowing bug's access shape
		{a.Base + 12, 1, false},
		{a.Base - 1, 1, false},
		{0, 1, false},
	}
	for _, tc := range tests {
		if got := l.InBounds(tc.addr, tc.size); got != tc.want {
			t.Errorf("InBounds(%#x, %d) = %v, want %v", tc.addr, tc.size, got, tc.want)
		}
	}
}

func TestConcreteLoadStoreRoundTrip(t *testing.T) {
	l := NewLayout()
	o := l.Alloc("g", 16)
	m := NewConcrete(l)
	for _, size := range []int{1, 2, 4, 8} {
		val := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		if err := m.Store(o.Base, size, val); err != nil {
			t.Fatalf("Store size %d: %v", size, err)
		}
		got, err := m.Load(o.Base, size)
		if err != nil {
			t.Fatalf("Load size %d: %v", size, err)
		}
		if got != val {
			t.Errorf("round trip size %d: got %#x want %#x", size, got, val)
		}
	}
}

func TestConcreteLittleEndian(t *testing.T) {
	l := NewLayout()
	o := l.Alloc("g", 8)
	m := NewConcrete(l)
	if err := m.Store(o.Base, 4, 0x11223344); err != nil {
		t.Fatal(err)
	}
	b0, _ := m.Load(o.Base, 1)
	b3, _ := m.Load(o.Base+3, 1)
	if b0 != 0x44 || b3 != 0x11 {
		t.Errorf("bytes = %#x..%#x, want little-endian 0x44..0x11", b0, b3)
	}
}

func TestConcreteOOB(t *testing.T) {
	l := NewLayout()
	o := l.Alloc("g", 12)
	m := NewConcrete(l)
	_, err := m.Load(o.Base+8, 8)
	var oob *ErrOOB
	if !errors.As(err, &oob) {
		t.Fatalf("Load past end: err = %v, want ErrOOB", err)
	}
	if oob.Addr != o.Base+8 || oob.Size != 8 {
		t.Errorf("oob = %+v", oob)
	}
	if err := m.Store(0, 1, 0); err == nil {
		t.Errorf("store to null succeeded")
	}
}

func TestConcreteEqualAndClone(t *testing.T) {
	l := NewLayout()
	o := l.Alloc("g", 8)
	m1 := NewConcrete(l)
	m1.Store(o.Base, 4, 0xAABBCCDD)
	m2 := m1.Clone()
	if !Equal(m1, m2) {
		t.Fatalf("clone not equal")
	}
	m2.Store(o.Base, 1, 0x00)
	if Equal(m1, m2) {
		t.Fatalf("modified clone still equal")
	}
	// Writing an explicit zero differs from never-written only in the map,
	// not semantically; Equal must treat absent as zero.
	m3 := NewConcrete(l)
	m4 := NewConcrete(l)
	m3.Store(o.Base, 1, 0)
	if !Equal(m3, m4) {
		t.Fatalf("explicit zero != implicit zero")
	}
}

func TestSymbolicLoadStoreRoundTrip(t *testing.T) {
	ctx := smt.NewContext()
	l := NewLayout()
	o := l.Alloc("g", 16)
	m := NewSymbolic(ctx, "M", l)
	addr := ctx.BV(o.Base, 64)
	val := ctx.VarBV("v", 32)
	m2 := m.Store(addr, 4, val)
	got := m2.Load(addr, 4)
	if got != val {
		t.Errorf("symbolic round trip: got %v want %v", got, val)
	}
}

func TestSymbolicLoadMatchesConcrete(t *testing.T) {
	// Property: a symbolic store+load sequence evaluated under a concrete
	// assignment matches the concrete memory.
	f := func(v uint32, off uint8) bool {
		offset := uint64(off % 4)
		ctx := smt.NewContext()
		l := NewLayout()
		o := l.Alloc("g", 16)
		cm := NewConcrete(l)
		if err := cm.Store(o.Base+offset, 4, uint64(v)); err != nil {
			return false
		}
		sm := NewSymbolic(ctx, "M", l)
		sm2 := sm.Store(ctx.BV(o.Base+offset, 64), 4, ctx.BV(uint64(v), 32))
		// Read back 2 bytes at offset+1 (overlapping read).
		sym := sm2.Load(ctx.BV(o.Base+offset+1, 64), 2)
		want, err := cm.Load(o.Base+offset+1, 2)
		if err != nil {
			return false
		}
		assign := smt.NewAssign()
		got, err := assign.EvalBV(sym)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInBoundsCondMatchesConcrete(t *testing.T) {
	ctx := smt.NewContext()
	l := NewLayout()
	a := l.Alloc("a", 12)
	l.Alloc("b", 8)
	m := NewSymbolic(ctx, "M", l)
	assign := smt.NewAssign()
	for _, tc := range []struct {
		addr uint64
		size int
	}{
		{a.Base, 4}, {a.Base + 8, 4}, {a.Base + 8, 8}, {a.Base + 12, 1}, {0, 1},
	} {
		cond := m.InBoundsCond(ctx.BV(tc.addr, 64), tc.size)
		got, err := assign.EvalBool(cond)
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		want := l.InBounds(tc.addr, uint64(tc.size))
		if got != want {
			t.Errorf("InBoundsCond(%#x,%d) = %v, concrete = %v", tc.addr, tc.size, got, want)
		}
	}
}

func TestSymbolicInBoundsProvable(t *testing.T) {
	// For a symbolic address constrained inside an object, the solver must
	// prove the bounds condition.
	ctx := smt.NewContext()
	l := NewLayout()
	o := l.Alloc("a", 12)
	m := NewSymbolic(ctx, "M", l)
	addr := ctx.VarBV("p", 64)
	s := smt.NewSolver(ctx)
	premise := ctx.AndB(
		ctx.Ule(ctx.BV(o.Base, 64), addr),
		ctx.Ule(addr, ctx.BV(o.Base+8, 64)))
	proved, _, err := s.ProveImplies(premise, m.InBoundsCond(addr, 4))
	if err != nil || !proved {
		t.Fatalf("bounds proof: proved=%v err=%v", proved, err)
	}
	// And it must refuse to prove an access that can go out of bounds.
	proved, _, err = s.ProveImplies(premise, m.InBoundsCond(addr, 8))
	if err != nil {
		t.Fatal(err)
	}
	if proved {
		t.Fatalf("proved an overrunning access in bounds")
	}
}

func TestLayoutClone(t *testing.T) {
	l := NewLayout()
	l.Alloc("a", 4)
	c := l.Clone()
	c.Alloc("b", 4)
	if _, ok := l.Find("b"); ok {
		t.Fatalf("clone mutation leaked into original")
	}
	if _, ok := c.Find("a"); !ok {
		t.Fatalf("clone lost object")
	}
}
