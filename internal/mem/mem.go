// Package mem implements the common memory model shared by the LLVM IR and
// Virtual x86 semantics (paper §4.4, common.k): a byte-addressable,
// little-endian, sequentially consistent memory with an object layout.
//
// Using one model on both sides makes the acceptability relation's memory
// constraint a plain equality between the two memories, exactly as in the
// paper's prototype. The package provides a concrete store for the
// reference interpreters and a symbolic store (an smt array term plus the
// shared object layout) for the equivalence checker. Out-of-bounds accesses
// are detected against the layout and surface as error states in the
// language semantics (paper §4.6).
package mem

import (
	"fmt"
	"sort"

	"repro/internal/smt"
)

// Object is a contiguous allocation (a global or a stack slot).
type Object struct {
	Name string
	Base uint64
	Size uint64
}

// Layout assigns concrete base addresses to named objects. Both programs of
// a validation instance share one Layout, so that "the same address" means
// the same thing on both sides.
type Layout struct {
	objects []Object
	byName  map[string]int
	next    uint64
}

// GlobalBase is the address where the first object is placed. Address 0 is
// never valid (it is the null pointer).
const GlobalBase = 0x10000

// NewLayout returns an empty layout.
func NewLayout() *Layout {
	return &Layout{byName: make(map[string]int), next: GlobalBase}
}

// Alloc reserves size bytes (minimum 1) for name and returns the object.
// Objects are 16-byte aligned and separated by a guard gap so that
// out-of-bounds accesses never alias a neighbouring object.
func (l *Layout) Alloc(name string, size uint64) Object {
	if _, dup := l.byName[name]; dup {
		panic(fmt.Sprintf("mem: duplicate object %q", name))
	}
	if size == 0 {
		size = 1
	}
	o := Object{Name: name, Base: l.next, Size: size}
	l.byName[name] = len(l.objects)
	l.objects = append(l.objects, o)
	// Advance with a 16-byte guard gap, then round up to 16.
	l.next += (size + 16 + 15) &^ 15
	return o
}

// Find returns the object named name.
func (l *Layout) Find(name string) (Object, bool) {
	i, ok := l.byName[name]
	if !ok {
		return Object{}, false
	}
	return l.objects[i], true
}

// Objects returns all objects in allocation order.
func (l *Layout) Objects() []Object {
	out := make([]Object, len(l.objects))
	copy(out, l.objects)
	return out
}

// Clone returns a deep copy of the layout (used by interpreters that grow
// the layout with per-activation stack slots).
func (l *Layout) Clone() *Layout {
	n := &Layout{byName: make(map[string]int, len(l.byName)), next: l.next}
	n.objects = append(n.objects, l.objects...)
	for k, v := range l.byName {
		n.byName[k] = v
	}
	return n
}

// InBounds reports whether the access [addr, addr+size) lies entirely
// within a single allocated object.
func (l *Layout) InBounds(addr, size uint64) bool {
	for _, o := range l.objects {
		if addr >= o.Base && addr+size <= o.Base+o.Size && addr+size >= addr {
			return true
		}
	}
	return false
}

// ObjectAt returns the object containing addr, if any.
func (l *Layout) ObjectAt(addr uint64) (Object, bool) {
	for _, o := range l.objects {
		if addr >= o.Base && addr < o.Base+o.Size {
			return o, true
		}
	}
	return Object{}, false
}

// --- Concrete memory ---

// Concrete is a byte store for the reference interpreters.
type Concrete struct {
	layout *Layout
	bytes  map[uint64]uint8
}

// ErrOOB is the error kind for out-of-bounds accesses.
type ErrOOB struct {
	Addr uint64
	Size uint64
}

func (e *ErrOOB) Error() string {
	return fmt.Sprintf("mem: out-of-bounds access of %d bytes at %#x", e.Size, e.Addr)
}

// NewConcrete returns an empty concrete memory over the given layout.
// The layout may keep growing (e.g. new stack slots) after creation.
func NewConcrete(layout *Layout) *Concrete {
	return &Concrete{layout: layout, bytes: make(map[uint64]uint8)}
}

// Layout returns the layout the memory checks accesses against.
func (m *Concrete) Layout() *Layout { return m.layout }

// Load reads size bytes (1,2,4,8) little-endian at addr.
func (m *Concrete) Load(addr uint64, size int) (uint64, error) {
	if !m.layout.InBounds(addr, uint64(size)) {
		return 0, &ErrOOB{Addr: addr, Size: uint64(size)}
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.bytes[addr+uint64(i)]) << (8 * i)
	}
	return v, nil
}

// Store writes size bytes (1,2,4,8) little-endian at addr.
func (m *Concrete) Store(addr uint64, size int, val uint64) error {
	if !m.layout.InBounds(addr, uint64(size)) {
		return &ErrOOB{Addr: addr, Size: uint64(size)}
	}
	for i := 0; i < size; i++ {
		m.bytes[addr+uint64(i)] = uint8(val >> (8 * i))
	}
	return nil
}

// Bytes returns a copy of all written bytes (for state comparison in tests).
func (m *Concrete) Bytes() map[uint64]uint8 {
	out := make(map[uint64]uint8, len(m.bytes))
	for k, v := range m.bytes {
		out[k] = v
	}
	return out
}

// Clone returns an independent copy sharing the layout.
func (m *Concrete) Clone() *Concrete {
	n := NewConcrete(m.layout)
	for k, v := range m.bytes {
		n.bytes[k] = v
	}
	return n
}

// Equal reports whether two concrete memories hold the same contents.
func Equal(a, b *Concrete) bool {
	if len(a.bytes) > len(b.bytes) {
		a, b = b, a
	}
	keys := make(map[uint64]struct{}, len(a.bytes)+len(b.bytes))
	for k := range a.bytes {
		keys[k] = struct{}{}
	}
	for k := range b.bytes {
		keys[k] = struct{}{}
	}
	for k := range keys {
		if a.bytes[k] != b.bytes[k] {
			return false
		}
	}
	return true
}

// DumpObject renders the contents of a named object (for diagnostics).
func (m *Concrete) DumpObject(name string) string {
	o, ok := m.layout.Find(name)
	if !ok {
		return fmt.Sprintf("<no object %q>", name)
	}
	out := fmt.Sprintf("%s[%d] =", name, o.Size)
	for i := uint64(0); i < o.Size; i++ {
		out += fmt.Sprintf(" %02x", m.bytes[o.Base+i])
	}
	return out
}

// --- Symbolic memory ---

// Symbolic is an immutable symbolic memory: an smt array term over the
// shared layout. Store returns a new Symbolic; the original is unchanged,
// which matches the branching structure of symbolic execution.
type Symbolic struct {
	ctx    *smt.Context
	term   *smt.Term
	layout *Layout
}

// NewSymbolic returns a symbolic memory rooted at the array variable name.
func NewSymbolic(ctx *smt.Context, name string, layout *Layout) *Symbolic {
	return &Symbolic{ctx: ctx, term: ctx.VarMem(name), layout: layout}
}

// Term returns the underlying array term.
func (m *Symbolic) Term() *smt.Term { return m.term }

// Layout returns the shared object layout.
func (m *Symbolic) Layout() *Layout { return m.layout }

// Load builds the little-endian read of size bytes at addr (a BV64 term),
// returning a BV term of width 8*size.
func (m *Symbolic) Load(addr *smt.Term, size int) *smt.Term {
	c := m.ctx
	out := c.Select(m.term, addr) // byte 0 (lowest)
	for i := 1; i < size; i++ {
		byteI := c.Select(m.term, c.Add(addr, c.BV(uint64(i), 64)))
		out = c.Concat(byteI, out)
	}
	return out
}

// Store builds the little-endian write of val (width 8*size) at addr and
// returns the new memory.
func (m *Symbolic) Store(addr *smt.Term, size int, val *smt.Term) *Symbolic {
	if int(val.Width) != 8*size {
		panic(fmt.Sprintf("mem: store width %d != 8*%d", val.Width, size))
	}
	c := m.ctx
	t := m.term
	for i := 0; i < size; i++ {
		b := c.Extract(val, uint8(8*i+7), uint8(8*i))
		t = c.Store(t, c.Add(addr, c.BV(uint64(i), 64)), b)
	}
	return &Symbolic{ctx: m.ctx, term: t, layout: m.layout}
}

// InBoundsCond returns the Bool term asserting that [addr, addr+size) lies
// within a single object of the layout. The semantics branch on it to
// produce out-of-bounds error states (paper §4.6).
func (m *Symbolic) InBoundsCond(addr *smt.Term, size int) *smt.Term {
	c := m.ctx
	end := c.Add(addr, c.BV(uint64(size), 64))
	cond := c.False()
	objs := m.layout.Objects()
	sort.Slice(objs, func(i, j int) bool { return objs[i].Base < objs[j].Base })
	for _, o := range objs {
		lo := c.BV(o.Base, 64)
		hi := c.BV(o.Base+o.Size, 64)
		in := c.AndB(c.Ule(lo, addr), c.Ule(end, hi))
		cond = c.OrB(cond, in)
	}
	return cond
}

// WithTerm returns a copy of m rooted at the given array term (used when a
// sync point re-binds memory to a fresh variable).
func (m *Symbolic) WithTerm(t *smt.Term) *Symbolic {
	return &Symbolic{ctx: m.ctx, term: t, layout: m.layout}
}
