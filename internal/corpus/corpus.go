// Package corpus generates synthetic LLVM IR functions for the evaluation
// harness. It is the stand-in for the 4732 supported GCC/SPEC 2006
// functions of the paper's §5.1 (SPEC sources are licensed and clang is
// unavailable in this environment; see DESIGN.md for the substitution
// argument): a seeded, deterministic generator whose functions exercise
// the same ISel → VC-gen → KEQ code paths with a long-tailed size
// distribution mimicking Figure 7.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/llvmir"
)

// Profile tunes generation.
type Profile struct {
	// Seed makes the corpus reproducible.
	Seed int64
	// Functions is the corpus size.
	Functions int
	// MeanSize and SizeSigma shape the log-normal instruction-count
	// distribution (Figure 7's right panel).
	MeanSize  float64
	SizeSigma float64
	// MemoryWeight, LoopWeight, CallWeight and BranchWeight bias the
	// feature mix (0..1 each).
	MemoryWeight float64
	LoopWeight   float64
	CallWeight   float64
	BranchWeight float64
}

// GCCLike is the default profile used by the Figure 6/7 reproduction:
// mostly small functions with a heavy tail, moderate memory traffic.
func GCCLike(functions int) Profile {
	return Profile{
		Seed:         2006,
		Functions:    functions,
		MeanSize:     2.8, // e^2.8 ≈ 16 instructions median
		SizeSigma:    0.9,
		MemoryWeight: 0.5,
		LoopWeight:   0.45,
		CallWeight:   0.3,
		BranchWeight: 0.6,
	}
}

// Function is one generated workload item.
type Function struct {
	Name string
	Src  string // full module text (globals + declarations + definition)
}

// Generate produces the corpus. Every function parses and verifies; the
// generator panics otherwise (it is a bug in the generator, not an input
// condition).
func Generate(p Profile) []Function {
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]Function, 0, p.Functions)
	for i := 0; i < p.Functions; i++ {
		name := fmt.Sprintf("fn%04d", i)
		g := &fgen{
			rng:     rand.New(rand.NewSource(rng.Int63())),
			profile: p,
			name:    name,
		}
		src := g.generate()
		m, err := llvmir.Parse(src)
		if err != nil {
			panic(fmt.Sprintf("corpus: generated function %s does not parse: %v\n%s", name, err, src))
		}
		if err := llvmir.Verify(m); err != nil {
			panic(fmt.Sprintf("corpus: generated function %s does not verify: %v\n%s", name, err, src))
		}
		out = append(out, Function{Name: name, Src: src})
	}
	return out
}

// fgen builds one function as structured code, guaranteeing SSA and
// verifier cleanliness by construction.
type fgen struct {
	rng     *rand.Rand
	profile Profile
	name    string

	b       strings.Builder
	tmpN    int
	blockN  int
	globals []string // emitted global declarations
	decls   map[string]int
	vals    []val // SSA values available in the current scope
	budget  int
}

type val struct {
	name string // with % sigil or literal
	bits int
}

func (g *fgen) fresh() string {
	g.tmpN++
	return fmt.Sprintf("%%t%d", g.tmpN)
}

func (g *fgen) freshBlock(stem string) string {
	g.blockN++
	return fmt.Sprintf("%s%d", stem, g.blockN)
}

func (g *fgen) line(format string, args ...interface{}) {
	fmt.Fprintf(&g.b, "  "+format+"\n", args...)
}

func (g *fgen) label(name string) {
	fmt.Fprintf(&g.b, "%s:\n", name)
}

// pick returns a random available value of the given width, or a literal.
func (g *fgen) pick(bits int) string {
	var cands []string
	for _, v := range g.vals {
		if v.bits == bits {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 || g.rng.Intn(4) == 0 {
		return fmt.Sprintf("%d", g.rng.Intn(1000))
	}
	return cands[g.rng.Intn(len(cands))]
}

// pickReg is like pick but never a literal (for instructions that require
// at least one register operand to stay interesting).
func (g *fgen) pickReg(bits int) (string, bool) {
	var cands []string
	for _, v := range g.vals {
		if v.bits == bits {
			cands = append(cands, v.name)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	return cands[g.rng.Intn(len(cands))], true
}

func (g *fgen) addVal(name string, bits int) {
	g.vals = append(g.vals, val{name: name, bits: bits})
}

var binOps = []string{"add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"}
var cmpPreds = []string{"eq", "ne", "ult", "ule", "slt", "sle", "ugt", "sge"}

func (g *fgen) generate() string {
	size := int(math.Exp(g.rng.NormFloat64()*g.profile.SizeSigma + g.profile.MeanSize))
	if size < 3 {
		size = 3
	}
	if size > 400 {
		size = 400
	}
	g.budget = size
	g.decls = make(map[string]int)

	nParams := 1 + g.rng.Intn(4)
	params := make([]string, nParams)
	for i := range params {
		params[i] = fmt.Sprintf("i32 %%p%d", i)
		g.addVal(fmt.Sprintf("%%p%d", i), 32)
	}
	nGlobals := 0
	if g.rng.Float64() < g.profile.MemoryWeight {
		nGlobals = 1 + g.rng.Intn(3)
	}
	for i := 0; i < nGlobals; i++ {
		n := 4 + g.rng.Intn(8)
		g.globals = append(g.globals,
			fmt.Sprintf("@g%s%d = external global [%d x i32]", g.name, i, n))
	}

	g.label("entry")
	g.stmts(0)
	// Return a combination of whatever is available.
	r := g.pick(32)
	if !strings.HasPrefix(r, "%") {
		t := g.fresh()
		g.line("%s = add i32 %s, 0", t, r)
		r = t
	}
	g.line("ret i32 %s", r)

	var out strings.Builder
	for _, gl := range g.globals {
		out.WriteString(gl + "\n")
	}
	for _, d := range declLines(g.decls) {
		out.WriteString(d + "\n")
	}
	fmt.Fprintf(&out, "define i32 @%s(%s) {\n%s}\n",
		g.name, strings.Join(params, ", "), g.b.String())
	return out.String()
}

func declLines(decls map[string]int) []string {
	var names []string
	for n := range decls {
		names = append(names, n)
	}
	// deterministic order
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		args := make([]string, decls[n])
		for i := range args {
			args[i] = "i32"
		}
		out = append(out, fmt.Sprintf("declare i32 @%s(%s)", n, strings.Join(args, ", ")))
	}
	return out
}

// stmts emits a statement sequence until the budget runs out. depth bounds
// structural nesting.
func (g *fgen) stmts(depth int) {
	for g.budget > 0 {
		g.budget--
		r := g.rng.Float64()
		switch {
		case r < 0.45:
			g.arith()
		case r < 0.45+0.2*g.profile.BranchWeight && depth < 3:
			g.ifElse(depth)
		case r < 0.45+0.2*g.profile.BranchWeight+0.15*g.profile.LoopWeight && depth < 2:
			g.loop(depth)
		case r < 0.45+0.2*g.profile.BranchWeight+0.15*g.profile.LoopWeight+0.2*g.profile.MemoryWeight && len(g.globals) > 0:
			g.memory()
		case g.profile.CallWeight > 0 && r > 1-0.15*g.profile.CallWeight:
			g.call()
		default:
			g.arith()
		}
	}
}

// division emits a guarded signed or unsigned division: the divisor is
// masked and odd-ified into 1..255 so concrete runs never trap, while the
// symbolic side still proves the (infeasible) UB branches away.
func (g *fgen) division() {
	src := g.pick(32)
	if !strings.HasPrefix(src, "%") {
		src = "%p0"
	}
	masked := g.fresh()
	g.line("%s = and i32 %s, 255", masked, g.pick(32))
	div := g.fresh()
	g.line("%s = or i32 %s, 1", div, masked)
	op := []string{"udiv", "urem", "sdiv", "srem"}[g.rng.Intn(4)]
	t := g.fresh()
	g.line("%s = %s i32 %s, %s", t, op, src, div)
	g.addVal(t, 32)
}

func (g *fgen) arith() {
	if g.rng.Intn(12) == 0 {
		g.division()
		return
	}
	op := binOps[g.rng.Intn(len(binOps))]
	a := g.pick(32)
	b := g.pick(32)
	if !strings.HasPrefix(a, "%") && !strings.HasPrefix(b, "%") {
		a = "%p0"
	}
	// Bound shift amounts to keep them meaningful.
	if op == "shl" || op == "lshr" || op == "ashr" {
		b = fmt.Sprintf("%d", g.rng.Intn(31)+1)
	}
	t := g.fresh()
	g.line("%s = %s i32 %s, %s", t, op, a, b)
	g.addVal(t, 32)
}

func (g *fgen) ifElse(depth int) {
	a, ok := g.pickReg(32)
	if !ok {
		g.arith()
		return
	}
	pred := cmpPreds[g.rng.Intn(len(cmpPreds))]
	c := g.fresh()
	g.line("%s = icmp %s i32 %s, %s", c, pred, a, g.pick(32))
	thenB := g.freshBlock("then")
	elseB := g.freshBlock("else")
	joinB := g.freshBlock("join")
	g.line("br i1 %s, label %%%s, label %%%s", c, thenB, elseB)

	// Values defined inside the arms are merged by one phi; the arm-local
	// value pools are discarded afterwards to preserve dominance.
	saved := append([]val(nil), g.vals...)

	g.label(thenB)
	tv := g.armValue()
	g.line("br label %%%s", joinB)
	g.vals = append([]val(nil), saved...)

	g.label(elseB)
	ev := g.armValue()
	g.line("br label %%%s", joinB)
	g.vals = append([]val(nil), saved...)

	g.label(joinB)
	m := g.fresh()
	g.line("%s = phi i32 [ %s, %%%s ], [ %s, %%%s ]", m, tv, thenB, ev, elseB)
	g.addVal(m, 32)
	_ = depth
}

// armValue emits a couple of instructions in a branch arm and returns the
// arm's result value (always a fresh register so the phi is interesting).
func (g *fgen) armValue() string {
	n := 1 + g.rng.Intn(3)
	var last string
	for i := 0; i < n; i++ {
		op := binOps[g.rng.Intn(6)] // no shifts in arms, keep it compact
		t := g.fresh()
		g.line("%s = %s i32 %s, %s", t, op, g.pick(32), g.pick(32))
		g.addVal(t, 32)
		last = t
	}
	return last
}

// loop emits a counted loop with one induction variable and one
// accumulator (the arithm_seq_sum shape).
func (g *fgen) loop(depth int) {
	bound, ok := g.pickReg(32)
	if !ok {
		g.arith()
		return
	}
	// Bound the trip count so the concrete interpreter terminates fast.
	bmask := g.fresh()
	g.line("%s = and i32 %s, 31", bmask, bound)
	accInit := g.pick(32)
	head := g.freshBlock("head")
	body := g.freshBlock("body")
	done := g.freshBlock("done")
	pre := g.curBlockRef()
	g.line("br label %%%s", head)

	iv := g.fresh()
	acc := g.fresh()
	ivNext := g.fresh()
	accNext := g.fresh()
	cond := g.fresh()

	g.label(head)
	g.line("%s = phi i32 [ 0, %%%s ], [ %s, %%%s ]", iv, pre, ivNext, body)
	g.line("%s = phi i32 [ %s, %%%s ], [ %s, %%%s ]", acc, accInit, pre, accNext, body)
	g.line("%s = icmp ult i32 %s, %s", cond, iv, bmask)
	g.line("br i1 %s, label %%%s, label %%%s", cond, body, done)

	g.label(body)
	op := binOps[g.rng.Intn(4)]
	g.line("%s = %s i32 %s, %s", accNext, op, acc, g.pick(32))
	g.line("%s = add i32 %s, 1", ivNext, iv)
	g.line("br label %%%s", head)

	g.label(done)
	// Only loop-independent values plus the phis survive (dominance).
	g.addVal(acc, 32)
	_ = depth
}

// curBlockRef returns the label of the block currently being emitted, by
// scanning backwards for the last label.
func (g *fgen) curBlockRef() string {
	s := g.b.String()
	lines := strings.Split(s, "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		l := lines[i]
		if strings.HasSuffix(l, ":") && !strings.HasPrefix(l, " ") {
			return strings.TrimSuffix(l, ":")
		}
	}
	return "entry"
}

func (g *fgen) memory() {
	gl := g.globals[g.rng.Intn(len(g.globals))]
	name := strings.Fields(gl)[0] // "@gX"
	var n int
	fmt.Sscanf(gl[strings.Index(gl, "[")+1:], "%d", &n)
	arrTy := fmt.Sprintf("[%d x i32]", n)

	if g.rng.Intn(2) == 0 {
		// Constant-index access.
		idx := g.rng.Intn(n)
		p := g.fresh()
		g.line("%s = getelementptr inbounds %s, %s* %s, i64 0, i64 %d", p, arrTy, arrTy, name, idx)
		if g.rng.Intn(2) == 0 {
			v := g.fresh()
			g.line("%s = load i32, i32* %s", v, p)
			g.addVal(v, 32)
		} else {
			g.line("store i32 %s, i32* %s", g.pick(32), p)
		}
		return
	}
	// Guarded symbolic index: idx = (v urem n) keeps the access in bounds
	// but the bounds proof is a real SMT obligation.
	src, ok := g.pickReg(32)
	if !ok {
		src = "%p0"
	}
	m := g.fresh()
	g.line("%s = urem i32 %s, %d", m, src, n)
	w := g.fresh()
	g.line("%s = zext i32 %s to i64", w, m)
	p := g.fresh()
	g.line("%s = getelementptr inbounds %s, %s* %s, i64 0, i64 %s", p, arrTy, arrTy, name, w)
	if g.rng.Intn(2) == 0 {
		v := g.fresh()
		g.line("%s = load i32, i32* %s", v, p)
		g.addVal(v, 32)
	} else {
		g.line("store i32 %s, i32* %s", g.pick(32), p)
	}
}

func (g *fgen) call() {
	arity := 1 + g.rng.Intn(2)
	callee := fmt.Sprintf("ext%d", g.rng.Intn(3))
	if old, ok := g.decls[callee]; ok && old != arity {
		arity = old
	}
	g.decls[callee] = arity
	args := make([]string, arity)
	for i := range args {
		args[i] = "i32 " + g.pick(32)
	}
	t := g.fresh()
	g.line("%s = call i32 @%s(%s)", t, callee, strings.Join(args, ", "))
	g.addVal(t, 32)
}
