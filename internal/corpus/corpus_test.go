package corpus

import (
	"testing"

	"repro/internal/llvmir"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GCCLike(20))
	b := Generate(GCCLike(20))
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Src != b[i].Src {
			t.Fatalf("function %d differs between runs", i)
		}
	}
}

func TestGenerateAllVerify(t *testing.T) {
	// Generate panics internally on verifier failures; also double-check
	// here and exercise a larger sample.
	fns := Generate(GCCLike(150))
	sizes := make([]int, 0, len(fns))
	loops, mems, calls := 0, 0, 0
	for _, f := range fns {
		m, err := llvmir.Parse(f.Src)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if err := llvmir.Verify(m); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		fn := m.Func(f.Name)
		sizes = append(sizes, fn.NumInstrs())
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case llvmir.OpPhi:
					loops++ // phis only come from loops and diamonds
				case llvmir.OpLoad, llvmir.OpStore:
					mems++
				case llvmir.OpCall:
					calls++
				}
			}
		}
	}
	if loops == 0 || mems == 0 || calls == 0 {
		t.Errorf("feature mix degenerate: phis=%d mems=%d calls=%d", loops, mems, calls)
	}
	// Size distribution must be long-tailed: max well above median.
	max, sum := 0, 0
	for _, s := range sizes {
		sum += s
		if s > max {
			max = s
		}
	}
	mean := sum / len(sizes)
	if max < 3*mean {
		t.Errorf("sizes not long-tailed: mean=%d max=%d", mean, max)
	}
}

func TestGeneratedFunctionsRun(t *testing.T) {
	// Every generated function must execute cleanly in the reference
	// interpreter on a couple of inputs (no UB by construction: shifts are
	// bounded, memory accesses guarded, no nsw, no division).
	fns := Generate(GCCLike(60))
	for _, f := range fns {
		m, _ := llvmir.Parse(f.Src)
		fn := m.Func(f.Name)
		for _, seed := range []uint64{0, 1, 0xFFFFFFFF, 12345} {
			in := llvmir.NewInterp(m)
			in.Externals = map[string]func([]uint64) uint64{
				"ext0": func(a []uint64) uint64 { return a[0] + 1 },
				"ext1": func(a []uint64) uint64 { return a[0] * 3 },
				"ext2": func(a []uint64) uint64 { return 42 },
			}
			args := make([]uint64, len(fn.Params))
			for i := range args {
				args[i] = seed + uint64(i)
			}
			if _, err := in.Call(f.Name, args); err != nil {
				t.Fatalf("%s(%v): %v\n%s", f.Name, args, err, f.Src)
			}
		}
	}
}
