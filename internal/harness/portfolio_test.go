package harness

import (
	"testing"

	"repro/internal/core"
	"repro/internal/proof"
	"repro/internal/smt"
	"repro/internal/tv"
)

// TestPortfolioRowsMatchAblation: lending idle worker slots to portfolio
// racers is a pure accelerator — the outcome table must be byte-identical
// to a run with racing and inprocessing disabled. After=1 races every
// query that survives a single conflict, maximizing the chance a racer
// (not the primary) supplies the verdict.
func TestPortfolioRowsMatchAblation(t *testing.T) {
	// Term-node budgets only: wall-clock budgets classify
	// timing-dependently under the race detector's slowdown.
	budget := tv.Budget{MaxTermNodes: 4_000_000}
	baseline := Run(Config{
		Profile: parallelProfile, Budget: budget, Workers: 4,
		DisablePortfolio: true,
		Checker:          core.Options{DisableInprocess: true},
	})
	pf := smt.NewPortfolio(4)
	pf.After = 1
	raced := Run(Config{
		Profile: parallelProfile, Budget: budget, Workers: 4,
		Checker: core.Options{Portfolio: pf},
	})

	if len(baseline.Rows) != len(raced.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(baseline.Rows), len(raced.Rows))
	}
	for i := range baseline.Rows {
		b, r := baseline.Rows[i], raced.Rows[i]
		if b.Fn != r.Fn || b.Class != r.Class || b.CodeSize != r.CodeSize {
			t.Errorf("row %d differs: baseline {%s %v %d} vs portfolio {%s %v %d}",
				i, b.Fn, b.Class, b.CodeSize, r.Fn, r.Class, r.CodeSize)
		}
	}
	// The end-of-corpus tail structurally idles workers (fewer functions
	// left than pool slots), so with After=1 some query must have raced.
	if raced.SMTStats.Races == 0 {
		t.Error("no query raced: idle-worker lending never engaged")
	}
	t.Logf("races=%d racer wins=%d tokens=%d",
		raced.SMTStats.Races, raced.SMTStats.RaceRacerWins, raced.SMTStats.RaceTokens)
}

// TestPortfolioProofsVerify: a proof-emitting run with aggressive racing
// must produce a certificate directory the independent checker accepts
// wholesale — racer-won traces included.
func TestPortfolioProofsVerify(t *testing.T) {
	dir := t.TempDir()
	pf := smt.NewPortfolio(4)
	pf.After = 1
	sum := Run(Config{
		Profile: parallelProfile, Budget: tv.Budget{MaxTermNodes: 4_000_000},
		Workers:  4,
		Checker:  core.Options{Portfolio: pf},
		ProofDir: dir,
	})
	if sum.ProofErr != nil {
		t.Fatalf("proof emission failed: %v", sum.ProofErr)
	}
	report, err := proof.CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range report.Rejections {
		t.Errorf("rejection: %s", r)
	}
	if report.ByKind[proof.KindDRAT] == 0 {
		t.Error("no DRAT certificates emitted")
	}
	if report.Witnesses == 0 {
		t.Error("no bisimulation witnesses verified")
	}
}
