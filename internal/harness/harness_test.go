package harness

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/isel"
	"repro/internal/paperprogs"
	"repro/internal/smt"
	"repro/internal/tv"
)

func smallRun(t *testing.T) *Summary {
	t.Helper()
	return Run(Config{
		Profile: corpus.Profile{
			Seed: 7, Functions: 8, MeanSize: 2.0, SizeSigma: 0.5,
			MemoryWeight: 0.4, LoopWeight: 0.4, CallWeight: 0.2, BranchWeight: 0.5,
		},
		Budget: tv.Budget{Timeout: 15 * time.Second},
	})
}

func TestRunAndFigure6(t *testing.T) {
	sum := smallRun(t)
	if sum.Total != 8 || len(sum.Rows) != 8 {
		t.Fatalf("total=%d rows=%d", sum.Total, len(sum.Rows))
	}
	counts := sum.Counts()
	if counts[tv.ClassSucceeded] < 6 {
		t.Errorf("only %d/8 succeeded: %v", counts[tv.ClassSucceeded], counts)
	}
	var b strings.Builder
	sum.Figure6(&b)
	out := b.String()
	for _, want := range []string{"Succeeded", "Failed due to timeout",
		"Failed due to out-of-memory", "Other", "Total", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7Rendering(t *testing.T) {
	sum := smallRun(t)
	var b strings.Builder
	sum.Figure7(&b)
	out := b.String()
	for _, want := range []string{"Validation time", "median", "Code size", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure7 output missing %q:\n%s", want, out)
		}
	}
}

func TestInadequateEveryProducesOther(t *testing.T) {
	// Coarse liveness may or may not break a given function; the knob just
	// routes functions through the degraded VC generator. Verify it runs
	// end to end without panics and still never misclassifies successes as
	// failures of the harness itself.
	sum := Run(Config{
		Profile: corpus.Profile{
			Seed: 11, Functions: 4, MeanSize: 2.2, SizeSigma: 0.4,
			LoopWeight: 1, BranchWeight: 0.5,
		},
		Budget:          tv.Budget{Timeout: 15 * time.Second},
		InadequateEvery: 2,
	})
	if len(sum.Rows) != 4 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
}

// parallelProfile is a seeded corpus big enough that a 4-worker pool
// actually interleaves completions, with budgets generous enough that
// every class is timing-independent (deterministic across pool sizes).
var parallelProfile = corpus.Profile{
	Seed: 23, Functions: 24, MeanSize: 2.2, SizeSigma: 0.6,
	MemoryWeight: 0.4, LoopWeight: 0.4, CallWeight: 0.2, BranchWeight: 0.5,
}

func TestParallelRowsDeterministic(t *testing.T) {
	// No wall-clock timeout: under the race detector's slowdown a timed
	// budget classifies timing-dependently. The term-node (OOM) budget is
	// exactly reproducible, so every class here is deterministic.
	budget := tv.Budget{MaxTermNodes: 4_000_000}
	serial := Run(Config{Profile: parallelProfile, Budget: budget, InadequateEvery: 7, Workers: 1})
	parallel := Run(Config{Profile: parallelProfile, Budget: budget, InadequateEvery: 7, Workers: 4})

	if serial.Workers != 1 || parallel.Workers != 4 {
		t.Fatalf("workers recorded as %d and %d, want 1 and 4", serial.Workers, parallel.Workers)
	}
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		s, p := serial.Rows[i], parallel.Rows[i]
		if s.Fn != p.Fn || s.Class != p.Class || s.CodeSize != p.CodeSize {
			t.Errorf("row %d differs: serial {%s %v %d} vs parallel {%s %v %d}",
				i, s.Fn, s.Class, s.CodeSize, p.Fn, p.Class, p.CodeSize)
		}
	}
	sc, pc := serial.Counts(), parallel.Counts()
	if fmt.Sprint(sc) != fmt.Sprint(pc) {
		t.Errorf("class counts differ: serial %v vs parallel %v", sc, pc)
	}
	if parallel.CPUTime <= 0 || parallel.WallTime <= 0 {
		t.Errorf("missing time accounting: cpu=%v wall=%v", parallel.CPUTime, parallel.WallTime)
	}
	// Exact query counts are timing-sensitive near the deadline (a query
	// that hits ErrDeadline in one run may never start in another), so
	// only check that aggregation happened on both sides.
	if serial.SMTStats.Queries == 0 || parallel.SMTStats.Queries == 0 {
		t.Errorf("missing aggregated SMT stats: serial %+v parallel %+v",
			serial.SMTStats, parallel.SMTStats)
	}
}

func TestParallelProgressSerialized(t *testing.T) {
	// strings.Builder is not goroutine-safe, so this doubles as a -race
	// check that Progress writes are serialized.
	var b strings.Builder
	sum := Run(Config{
		Profile:  parallelProfile,
		Budget:   tv.Budget{Timeout: time.Minute, MaxTermNodes: 4_000_000},
		Workers:  4,
		Progress: &b,
	})
	lines := strings.Count(b.String(), "\n")
	if lines != sum.Total {
		t.Errorf("progress printed %d lines, want %d:\n%s", lines, sum.Total, b.String())
	}
	if !strings.Contains(b.String(), fmt.Sprintf("%4d/%d", sum.Total, sum.Total)) {
		t.Errorf("progress counter never reached %d/%d:\n%s", sum.Total, sum.Total, b.String())
	}
}

func TestUnparsableFunctionClassifiedOther(t *testing.T) {
	fns := []corpus.Function{
		goodFn("good"),
		{Name: "bad", Src: "define i32 @bad( this does not parse"},
		goodFn("good2"),
	}
	sum := Run(Config{Functions: fns, Budget: tv.Budget{Timeout: time.Minute}, Workers: 2})
	if len(sum.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(sum.Rows))
	}
	bad := sum.Rows[1]
	if bad.Class != tv.ClassOther || bad.Err == nil {
		t.Errorf("bad row: class=%v err=%v, want Other with parse error", bad.Class, bad.Err)
	}
	if bad.Err != nil && !strings.Contains(bad.Err.Error(), "does not parse") {
		t.Errorf("bad row error %q does not mention the parse failure", bad.Err)
	}
	for _, i := range []int{0, 2} {
		if sum.Rows[i].Class != tv.ClassSucceeded {
			t.Errorf("row %d (%s): class=%v err=%v, want Succeeded",
				i, sum.Rows[i].Fn, sum.Rows[i].Class, sum.Rows[i].Err)
		}
	}
}

func TestPanicIsolatedToOneRow(t *testing.T) {
	validateHook = func(i int, f corpus.Function) {
		if f.Name == "poison" {
			panic("injected poison")
		}
	}
	defer func() { validateHook = nil }()

	fns := []corpus.Function{
		goodFn("good"),
		goodFn("poison"),
		goodFn("good2"),
		goodFn("good3"),
	}
	sum := Run(Config{Functions: fns, Budget: tv.Budget{Timeout: time.Minute}, Workers: 4})
	if len(sum.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(sum.Rows))
	}
	counts := sum.Counts()
	if counts[tv.ClassOther] != 1 {
		t.Errorf("want exactly 1 Other row, got %v", counts)
	}
	poison := sum.Rows[1]
	if poison.Fn != "poison" || poison.Class != tv.ClassOther {
		t.Fatalf("poison row = {%s %v}, want {poison Other}", poison.Fn, poison.Class)
	}
	if poison.Err == nil || !strings.Contains(poison.Err.Error(), "injected poison") {
		t.Errorf("poison row error %v does not carry the panic message", poison.Err)
	}
}

// goodFn returns a small corpus function named name that validates
// quickly.
func goodFn(name string) corpus.Function {
	return corpus.Function{Name: name, Src: fmt.Sprintf(`
define i32 @%s(i32 %%a, i32 %%b) {
entry:
  %%cmp = icmp slt i32 %%a, %%b
  br i1 %%cmp, label %%lt, label %%ge

lt:
  %%add = add i32 %%a, %%b
  ret i32 %%add

ge:
  %%sub = sub i32 %%a, %%b
  ret i32 %%sub
}
`, name)}
}

func TestRunBugExperiments(t *testing.T) {
	budget := tv.Budget{Timeout: time.Minute}
	for _, e := range []BugExperiment{
		{
			Name: "waw", Program: paperprogs.WAWStores, Fn: "waw_foo",
			GoodOptions: isel.Options{MergeStores: true},
			BadOptions:  isel.Options{BugWAWStoreMerge: true},
		},
		{
			Name: "narrow", Program: paperprogs.LoadNarrow, Fn: "narrow_foo",
			GoodOptions: isel.Options{},
			BadOptions:  isel.Options{BugLoadNarrow: true},
		},
	} {
		r, err := RunBug(e, budget)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !r.GoodPassed || !r.BugCaught {
			t.Errorf("%s: good=%v caught=%v", e.Name, r.GoodPassed, r.BugCaught)
		}
	}
}

func TestRenderBugTable(t *testing.T) {
	var b strings.Builder
	RenderBugTable(&b, []*BugResult{
		{Name: "x", GoodPassed: true, BugCaught: true},
		{Name: "y", GoodPassed: false, BugCaught: false},
	})
	out := b.String()
	if !strings.Contains(out, "rejected ✓") || !strings.Contains(out, "MISSED ✗") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
}

func TestHistogramEdges(t *testing.T) {
	var b strings.Builder
	histogram(&b, "t", []float64{0.5, 1, 2, 100}, []float64{1, 10},
		func(v float64) string { return "x" })
	lines := strings.Count(b.String(), "\n")
	if lines != 3 {
		t.Errorf("histogram has %d buckets, want 3:\n%s", lines, b.String())
	}
}

// TestVCCacheParity is the cache-correctness acceptance test: a 4-worker
// run sharing the run-wide VC cache must produce row-for-row identical
// results to a cache-disabled serial run. Only the term-node budget is
// set (no wall clock), so every class is exactly reproducible and a
// cache hit can never move a function across a classification boundary.
func TestVCCacheParity(t *testing.T) {
	budget := tv.Budget{MaxTermNodes: 4_000_000}
	serial := Run(Config{
		Profile: parallelProfile, Budget: budget, InadequateEvery: 7,
		Workers: 1, DisableVCCache: true,
	})
	cached := Run(Config{
		Profile: parallelProfile, Budget: budget, InadequateEvery: 7,
		Workers: 4,
	})

	if serial.SMTStats.CacheHits != 0 || serial.SMTStats.CacheMisses != 0 {
		t.Fatalf("DisableVCCache run still consulted a cache: hits=%d misses=%d",
			serial.SMTStats.CacheHits, serial.SMTStats.CacheMisses)
	}
	if cached.SMTStats.CacheHits == 0 {
		t.Errorf("shared-cache run recorded no hits (misses=%d); corpus too diverse or cache not wired",
			cached.SMTStats.CacheMisses)
	}
	if len(serial.Rows) != len(cached.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(cached.Rows))
	}
	for i := range serial.Rows {
		s, p := serial.Rows[i], cached.Rows[i]
		if s.Fn != p.Fn || s.Class != p.Class || s.CodeSize != p.CodeSize {
			t.Errorf("row %d differs: uncached {%s %v %d} vs cached {%s %v %d}",
				i, s.Fn, s.Class, s.CodeSize, p.Fn, p.Class, p.CodeSize)
		}
	}
	sc, pc := serial.Counts(), cached.Counts()
	if fmt.Sprint(sc) != fmt.Sprint(pc) {
		t.Errorf("class counts differ: uncached %v vs cached %v", sc, pc)
	}
}

// TestVCCachePresetNotOverwritten: a caller-provided cache is used as-is,
// so several Run invocations can share hits across whole corpus runs.
func TestVCCachePresetNotOverwritten(t *testing.T) {
	shared := smt.NewCache()
	budget := tv.Budget{MaxTermNodes: 4_000_000}
	cfg := Config{Profile: parallelProfile, Budget: budget, Workers: 2}
	cfg.Checker.VCCache = shared
	first := Run(cfg)
	entries := shared.Len()
	if entries == 0 {
		t.Fatalf("run with preset cache stored nothing")
	}
	second := Run(cfg)
	if second.SMTStats.CacheHits <= first.SMTStats.CacheHits {
		t.Errorf("second run over a warm cache did not hit more: %d then %d",
			first.SMTStats.CacheHits, second.SMTStats.CacheHits)
	}
	for i := range first.Rows {
		if first.Rows[i].Class != second.Rows[i].Class {
			t.Errorf("row %d class changed across warm-cache reruns: %v vs %v",
				i, first.Rows[i].Class, second.Rows[i].Class)
		}
	}
}
