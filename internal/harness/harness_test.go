package harness

import (
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/isel"
	"repro/internal/paperprogs"
	"repro/internal/tv"
)

func smallRun(t *testing.T) *Summary {
	t.Helper()
	return Run(Config{
		Profile: corpus.Profile{
			Seed: 7, Functions: 8, MeanSize: 2.0, SizeSigma: 0.5,
			MemoryWeight: 0.4, LoopWeight: 0.4, CallWeight: 0.2, BranchWeight: 0.5,
		},
		Budget: tv.Budget{Timeout: 15 * time.Second},
	})
}

func TestRunAndFigure6(t *testing.T) {
	sum := smallRun(t)
	if sum.Total != 8 || len(sum.Rows) != 8 {
		t.Fatalf("total=%d rows=%d", sum.Total, len(sum.Rows))
	}
	counts := sum.Counts()
	if counts[tv.ClassSucceeded] < 6 {
		t.Errorf("only %d/8 succeeded: %v", counts[tv.ClassSucceeded], counts)
	}
	var b strings.Builder
	sum.Figure6(&b)
	out := b.String()
	for _, want := range []string{"Succeeded", "Failed due to timeout",
		"Failed due to out-of-memory", "Other", "Total", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure6 output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure7Rendering(t *testing.T) {
	sum := smallRun(t)
	var b strings.Builder
	sum.Figure7(&b)
	out := b.String()
	for _, want := range []string{"Validation time", "median", "Code size", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure7 output missing %q:\n%s", want, out)
		}
	}
}

func TestInadequateEveryProducesOther(t *testing.T) {
	// Coarse liveness may or may not break a given function; the knob just
	// routes functions through the degraded VC generator. Verify it runs
	// end to end without panics and still never misclassifies successes as
	// failures of the harness itself.
	sum := Run(Config{
		Profile: corpus.Profile{
			Seed: 11, Functions: 4, MeanSize: 2.2, SizeSigma: 0.4,
			LoopWeight: 1, BranchWeight: 0.5,
		},
		Budget:          tv.Budget{Timeout: 15 * time.Second},
		InadequateEvery: 2,
	})
	if len(sum.Rows) != 4 {
		t.Fatalf("rows = %d", len(sum.Rows))
	}
}

func TestRunBugExperiments(t *testing.T) {
	budget := tv.Budget{Timeout: time.Minute}
	for _, e := range []BugExperiment{
		{
			Name: "waw", Program: paperprogs.WAWStores, Fn: "waw_foo",
			GoodOptions: isel.Options{MergeStores: true},
			BadOptions:  isel.Options{BugWAWStoreMerge: true},
		},
		{
			Name: "narrow", Program: paperprogs.LoadNarrow, Fn: "narrow_foo",
			GoodOptions: isel.Options{},
			BadOptions:  isel.Options{BugLoadNarrow: true},
		},
	} {
		r, err := RunBug(e, budget)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if !r.GoodPassed || !r.BugCaught {
			t.Errorf("%s: good=%v caught=%v", e.Name, r.GoodPassed, r.BugCaught)
		}
	}
}

func TestRenderBugTable(t *testing.T) {
	var b strings.Builder
	RenderBugTable(&b, []*BugResult{
		{Name: "x", GoodPassed: true, BugCaught: true},
		{Name: "y", GoodPassed: false, BugCaught: false},
	})
	out := b.String()
	if !strings.Contains(out, "rejected ✓") || !strings.Contains(out, "MISSED ✗") {
		t.Errorf("table rendering wrong:\n%s", out)
	}
}

func TestHistogramEdges(t *testing.T) {
	var b strings.Builder
	histogram(&b, "t", []float64{0.5, 1, 2, 100}, []float64{1, 10},
		func(v float64) string { return "x" })
	lines := strings.Count(b.String(), "\n")
	if lines != 3 {
		t.Errorf("histogram has %d buckets, want 3:\n%s", lines, b.String())
	}
}
