package harness

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/isel"
	"repro/internal/proof"
	"repro/internal/smt"
	"repro/internal/telemetry"
	"repro/internal/tv"
	"repro/internal/vcgen"
)

// Pool is a persistent validation worker pool: the long-lived form of
// the worker loop Run spins up per corpus. Each worker owns a private
// scratch arena (term-table storage and blaster literal slabs) that
// persists across jobs — the warm-solver property the tvd daemon is
// built on: request N+1 reuses the memory request N grew, instead of
// re-paying allocation from a cold heap. Batch runs (Run) and the
// daemon submit through the same Pool, so their per-function behavior
// is identical by construction.
//
// Jobs are delivered over a bounded queue. Submit blocks while the
// queue is full; TrySubmit refuses instead — the backpressure primitive
// the daemon's admission control turns into 429 responses.
type Pool struct {
	workers int
	pf      *smt.Portfolio
	jobs    chan Job
	wg      sync.WaitGroup

	mu     sync.RWMutex
	closed bool
}

// PoolConfig sizes a Pool.
type PoolConfig struct {
	// Workers is the number of concurrent validation goroutines
	// (0 or negative = 1).
	Workers int
	// Queue is the job-queue capacity (0 = unbuffered handoff). A full
	// queue makes TrySubmit return false.
	Queue int
	// Portfolio, when non-nil, is used instead of a pool-owned one (the
	// caller tunes probe budgets). With DisablePortfolio unset and this
	// nil, the pool creates one token per worker.
	Portfolio *smt.Portfolio
	// DisablePortfolio turns portfolio racing off (ablation).
	DisablePortfolio bool
	// DisableScratch turns per-worker arena reuse off (ablation).
	DisableScratch bool
}

// NewPool starts the workers and returns the pool. Close joins them.
func NewPool(cfg PoolConfig) *Pool {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	pf := cfg.Portfolio
	if pf == nil && !cfg.DisablePortfolio {
		pf = smt.NewPortfolio(workers)
	}
	p := &Pool{workers: workers, pf: pf, jobs: make(chan Job, cfg.Queue)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			// The worker's scratch lives as long as the pool: reset
			// between jobs, never reallocated, never shared.
			var scratch *smt.Scratch
			if !cfg.DisableScratch {
				scratch = smt.NewScratch()
			}
			for j := range p.jobs {
				p.runJob(j, scratch)
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Portfolio returns the racing pool shared by the workers (nil when
// racing is disabled).
func (p *Pool) Portfolio() *smt.Portfolio { return p.pf }

// Submit enqueues j, blocking while the queue is full. It returns false
// (dropping j) once the pool is closed.
func (p *Pool) Submit(j Job) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	if j.Submitted.IsZero() {
		j.Submitted = time.Now()
	}
	p.jobs <- j
	return true
}

// TrySubmit enqueues j only if queue space is free right now — the
// non-blocking admission check behind the daemon's 429 responses.
func (p *Pool) TrySubmit(j Job) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	if j.Submitted.IsZero() {
		j.Submitted = time.Now()
	}
	select {
	case p.jobs <- j:
		return true
	default:
		return false
	}
}

// Close stops accepting jobs, drains the queue, and joins the workers.
// Every job accepted before Close completes (and its Done callback
// runs) before Close returns — the graceful-drain guarantee the
// daemon's SIGTERM handling relies on.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Job is one function validation submitted to a Pool.
type Job struct {
	// Fn is the function to validate (name + LLVM IR source).
	Fn corpus.Function
	// Index is the caller's row index, passed through to the result.
	Index int
	// ISel, VCGen, Checker, and Budget configure the pipeline exactly as
	// in tv.Validate. The pool attaches its Portfolio and the worker's
	// scratch to Checker when the job has not set its own.
	ISel    isel.Options
	VCGen   vcgen.Options
	Checker core.Options
	Budget  tv.Budget
	// DW, when non-nil, makes the job emit streaming (schema 2) proof
	// artifacts through it. ProofDir set with DW nil selects the
	// buffered schema-1 writers into that directory.
	DW       *proof.DirWriter
	ProofDir string
	// Tracer, when non-nil, receives the job's span tree.
	Tracer *telemetry.Tracer
	// Submitted is when the job entered the queue (stamped by
	// Submit/TrySubmit when zero); the queue-latency baseline.
	Submitted time.Time
	// Done, when non-nil, receives the result on the worker goroutine.
	Done func(JobResult)
}

// JobResult is the outcome of one pool job.
type JobResult struct {
	// Index echoes Job.Index.
	Index int
	Row   ResultRow
	Stats smt.Stats
	// Metrics is the job-private registry (per-phase latency, mem.*,
	// class.* counters); merge it into a run-wide one.
	Metrics *telemetry.Metrics
}

// poolJobHook, when non-nil, observes each job after the pool attached
// the worker's scratch and portfolio; tests use it to assert arena reuse.
var poolJobHook func(j Job)

// runJob prepares the per-job checker options and runs the validation.
func (p *Pool) runJob(j Job, scratch *smt.Scratch) {
	if j.Checker.Scratch == nil {
		j.Checker.Scratch = scratch
	}
	if j.Checker.Portfolio == nil {
		j.Checker.Portfolio = p.pf
	}
	if poolJobHook != nil {
		poolJobHook(j)
	}
	// Hold this worker's portfolio token for the duration of the
	// validation: tokens in the pool are idle workers.
	if p.pf != nil {
		p.pf.Acquire()
	}
	row, stats, m := validateOne(j)
	if p.pf != nil {
		p.pf.Release()
	}
	if j.Done != nil {
		j.Done(JobResult{Index: j.Index, Row: row, Stats: stats, Metrics: m})
	}
}
