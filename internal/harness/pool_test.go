package harness

import (
	"sync"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/smt"
	"repro/internal/tv"
)

// poolCorpus returns a tiny deterministic corpus for pool tests.
func poolCorpus(n int) []corpus.Function {
	return corpus.Generate(corpus.Profile{
		Seed: 3, Functions: n, MeanSize: 1.8, SizeSigma: 0.4,
		LoopWeight: 0.3, BranchWeight: 0.5,
	})
}

func TestPoolTimestamps(t *testing.T) {
	fns := poolCorpus(3)
	p := NewPool(PoolConfig{Workers: 2, Queue: 4})
	var (
		mu   sync.Mutex
		rows []ResultRow
	)
	before := time.Now()
	for i, f := range fns {
		ok := p.Submit(Job{
			Fn: f, Index: i, Budget: tv.Budget{MaxTermNodes: 2_000_000},
			Done: func(res JobResult) {
				mu.Lock()
				rows = append(rows, res.Row)
				mu.Unlock()
			},
		})
		if !ok {
			t.Fatalf("Submit %d refused on an open pool", i)
		}
	}
	p.Close()
	if len(rows) != len(fns) {
		t.Fatalf("Done ran %d times, want %d", len(rows), len(fns))
	}
	for _, r := range rows {
		if r.Submitted.Before(before) || r.Submitted.IsZero() {
			t.Errorf("%s: Submitted %v not stamped by Submit", r.Fn, r.Submitted)
		}
		if r.Started.Before(r.Submitted) {
			t.Errorf("%s: Started %v before Submitted %v", r.Fn, r.Started, r.Submitted)
		}
		if r.Finished.Before(r.Started) {
			t.Errorf("%s: Finished %v before Started %v", r.Fn, r.Finished, r.Started)
		}
		if got := r.Finished.Sub(r.Started); got < r.Duration {
			t.Errorf("%s: Finished-Started %v < Duration %v", r.Fn, got, r.Duration)
		}
	}
}

func TestPoolBackpressure(t *testing.T) {
	// One worker, held busy by a gate; queue of one. The first TrySubmit
	// occupies the worker, the second fills the queue, the third must be
	// refused — that refusal is the daemon's 429.
	fns := poolCorpus(1)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	prev := validateHook
	validateHook = func(i int, f corpus.Function) {
		once.Do(func() { close(entered) })
		<-gate
	}
	defer func() { validateHook = prev }()

	p := NewPool(PoolConfig{Workers: 1, Queue: 1})
	job := Job{Fn: fns[0], Budget: tv.Budget{MaxTermNodes: 1_000_000}}
	if !p.TrySubmit(job) {
		t.Fatal("first TrySubmit refused by an idle pool")
	}
	<-entered // the worker is now inside the gated job
	if !p.TrySubmit(job) {
		t.Fatal("second TrySubmit refused with queue space free")
	}
	if p.TrySubmit(job) {
		t.Fatal("third TrySubmit accepted by a full queue")
	}
	close(gate)
	p.Close()
	if p.TrySubmit(job) || p.Submit(job) {
		t.Fatal("submit accepted after Close")
	}
}

func TestPoolDrain(t *testing.T) {
	// Close must run every accepted job's Done before returning.
	fns := poolCorpus(6)
	p := NewPool(PoolConfig{Workers: 2, Queue: len(fns)})
	var done sync.Map
	for i, f := range fns {
		i := i
		p.Submit(Job{Fn: f, Index: i, Budget: tv.Budget{MaxTermNodes: 2_000_000},
			Done: func(res JobResult) { done.Store(i, res.Row.Class) }})
	}
	p.Close()
	for i := range fns {
		if _, ok := done.Load(i); !ok {
			t.Errorf("job %d not completed by Close", i)
		}
	}
	// Close is idempotent.
	p.Close()
}

func TestPoolScratchPersists(t *testing.T) {
	// The same worker must reuse one scratch arena across jobs — the
	// warm-pool property the daemon is built on. With one worker, every
	// job must see the identical scratch pointer.
	fns := poolCorpus(4)
	var (
		mu       sync.Mutex
		scratchs []*smt.Scratch
	)
	prev := poolJobHook
	poolJobHook = func(j Job) {
		mu.Lock()
		scratchs = append(scratchs, j.Checker.Scratch)
		mu.Unlock()
	}
	defer func() { poolJobHook = prev }()

	p := NewPool(PoolConfig{Workers: 1, Queue: len(fns)})
	for i, f := range fns {
		p.Submit(Job{Fn: f, Index: i, Budget: tv.Budget{MaxTermNodes: 2_000_000}})
	}
	p.Close()
	if len(scratchs) != len(fns) {
		t.Fatalf("hook saw %d jobs, want %d", len(scratchs), len(fns))
	}
	for i, s := range scratchs {
		if s == nil {
			t.Fatalf("job %d ran without a scratch arena", i)
		}
		if s != scratchs[0] {
			t.Fatalf("job %d got a different arena than job 0: reuse broken", i)
		}
	}

	// The DisableScratch ablation reverts to no arena.
	scratchs = nil
	p = NewPool(PoolConfig{Workers: 1, Queue: 1, DisableScratch: true})
	p.Submit(Job{Fn: fns[0], Budget: tv.Budget{MaxTermNodes: 2_000_000}})
	p.Close()
	if len(scratchs) != 1 || scratchs[0] != nil {
		t.Fatalf("DisableScratch: scratch still attached: %v", scratchs)
	}
}
