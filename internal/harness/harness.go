// Package harness drives the paper's evaluation (§5): it validates a
// corpus of functions under per-function budgets and renders the results
// as the paper's tables and figures — the outcome breakdown of Figure 6,
// the validation-time and code-size distributions of Figure 7, and the
// bug-reintroduction experiments of §5.2.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/proof"
	"repro/internal/smt"
	"repro/internal/tv"
	"repro/internal/vcgen"
)

// Config tunes an experiment run.
type Config struct {
	// Corpus profile.
	Profile corpus.Profile
	// Functions, when non-nil, is the explicit corpus to validate and
	// Profile is ignored. Used for externally supplied workloads and
	// fault-injection tests.
	Functions []corpus.Function
	// Budget applied per function (the scaled-down analogue of the
	// paper's 3 h / 12 GB limits).
	Budget tv.Budget
	// InadequateEvery, when > 0, validates every n-th function with the
	// deliberately coarse liveness option, recreating the paper's
	// "Other" failures caused by liveness inaccuracy (16 / 4732).
	InadequateEvery int
	// Checker options (ablations).
	Checker core.Options
	// Progress, when non-nil, receives one line per validated function.
	// Writes are serialized, so any io.Writer is safe here even with
	// Workers > 1; lines arrive in completion order, not corpus order.
	Progress io.Writer
	// Workers is the number of functions validated concurrently
	// (0 or negative = runtime.GOMAXPROCS(0)). Each worker owns a
	// private SMT context and solver, so runs are state-isolated;
	// Summary.Rows is in corpus order regardless of worker count, and a
	// panic while validating one function is recovered into that
	// function's row instead of killing the run.
	Workers int
	// DisableVCCache turns off the run-wide verification-condition result
	// cache (ablation). By default Run creates one smt.Cache shared by all
	// workers, so an obligation that is alpha-equivalent to one already
	// discharged — by any worker, in any function — is answered without
	// solving. Ignored when Checker.VCCache is already set by the caller.
	DisableVCCache bool
	// ProofDir, when non-empty, makes every validated function emit proof
	// certificates into that directory: query certificates plus DRAT
	// traces for all functions (so cache references across functions never
	// dangle), a bisimulation witness for each Succeeded function, and a
	// MANIFEST.json for the run. Verify with cmd/proofcheck.
	ProofDir string
}

// ResultRow is one function's outcome.
type ResultRow struct {
	Fn       string
	Class    tv.Class
	Duration time.Duration
	CodeSize int
	// Err carries the failure detail for non-Succeeded rows, including
	// recovered panic messages (Class Other).
	Err error
	// Certified reports that proof emission was on and the function's
	// certificates and bisimulation witness were written successfully.
	Certified bool
}

// Summary aggregates an experiment.
type Summary struct {
	Rows  []ResultRow
	Total int
	// Workers is the pool size the run actually used.
	Workers int
	// WallTime is the elapsed time of the whole run; CPUTime is the sum
	// of per-function validation durations across all workers. Their
	// ratio is the parallel speedup (see Speedup).
	WallTime time.Duration
	CPUTime  time.Duration
	// SMTStats aggregates solver statistics across all workers.
	SMTStats smt.Stats
	// Certified counts rows whose certificates and witness were written
	// (0 when proof emission was off).
	Certified int
	// ProofErr records a failure writing the run manifest, if any.
	ProofErr error
}

// Run validates the whole corpus across Config.Workers goroutines and
// returns the summary. Results land in Summary.Rows in corpus order
// regardless of completion order, so a parallel run is row-for-row
// comparable with a serial one.
func Run(cfg Config) *Summary {
	fns := cfg.Functions
	if fns == nil {
		fns = corpus.Generate(cfg.Profile)
	}
	if cfg.Checker.VCCache == nil && !cfg.DisableVCCache {
		cfg.Checker.VCCache = smt.NewCache()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fns) && len(fns) > 0 {
		workers = len(fns)
	}
	sum := &Summary{Total: len(fns), Workers: workers, Rows: make([]ResultRow, len(fns))}
	start := time.Now()

	var (
		mu   sync.Mutex // guards sum's aggregates, done, and Progress writes
		done int
		wg   sync.WaitGroup
	)
	indices := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				row, stats := validateOne(cfg, fns[i], i)
				sum.Rows[i] = row // index-disjoint writes: no lock needed
				mu.Lock()
				sum.SMTStats.Add(stats)
				sum.CPUTime += row.Duration
				done++
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%4d/%d %-8s %-28s %8.2fs size=%d\n",
						done, len(fns), row.Fn, row.Class, row.Duration.Seconds(), row.CodeSize)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range fns {
		indices <- i
	}
	close(indices)
	wg.Wait()
	sum.WallTime = time.Since(start)
	if cfg.ProofDir != "" {
		m := &proof.Manifest{}
		for _, r := range sum.Rows {
			if r.Certified {
				sum.Certified++
			}
			m.Functions = append(m.Functions, proof.ManifestRow{
				Name: r.Fn, Class: r.Class.String(), Certified: r.Certified,
			})
		}
		sum.ProofErr = proof.WriteManifest(cfg.ProofDir, m)
	}
	return sum
}

// validateHook, when non-nil, runs at the start of each function's
// validation; tests use it to inject faults (e.g. panics) into the pool.
var validateHook func(i int, f corpus.Function)

// validateOne runs the full pipeline for one corpus function. Parse
// failures and panics are contained here: both become a ClassOther row
// with the cause in Err, so one bad function cannot abort the corpus run.
func validateOne(cfg Config, f corpus.Function, i int) (row ResultRow, stats smt.Stats) {
	start := time.Now()
	var rec *proof.Recorder
	defer func() {
		if p := recover(); p != nil {
			row = ResultRow{
				Fn:       f.Name,
				Class:    tv.ClassOther,
				Duration: time.Since(start),
				Err:      fmt.Errorf("harness: panic validating %s: %v", f.Name, p),
			}
			if rec != nil {
				// Certificates recorded before the panic may already back
				// cache entries other functions reference; keep them.
				proof.WriteCerts(cfg.ProofDir, rec)
			}
		}
	}()
	if validateHook != nil {
		validateHook(i, f)
	}
	mod, err := llvmir.Parse(f.Src)
	if err != nil {
		return ResultRow{
			Fn:       f.Name,
			Class:    tv.ClassOther,
			Duration: time.Since(start),
			Err:      fmt.Errorf("harness: corpus function %s does not parse: %w", f.Name, err),
		}, stats
	}
	if cfg.ProofDir != "" {
		rec = proof.NewRecorder(f.Name)
		cfg.Checker.Proof = rec
	}
	vopts := vcgen.Options{}
	if cfg.InadequateEvery > 0 && i%cfg.InadequateEvery == cfg.InadequateEvery-1 {
		vopts.CoarseLiveness = true
	}
	out := tv.Validate(mod, f.Name, isel.Options{}, vopts, cfg.Checker, cfg.Budget)
	row = ResultRow{Fn: f.Name, Class: out.Class, Duration: out.Duration,
		CodeSize: out.CodeSize, Err: out.Err}
	if rec != nil {
		// Certificates are written for every row — including failures — so
		// a "ref" certificate in another function can always resolve; the
		// witness is written only when validation succeeded.
		_, perr := proof.WriteCerts(cfg.ProofDir, rec)
		if perr == nil && out.Class == tv.ClassSucceeded {
			if _, werr := proof.WriteWitness(cfg.ProofDir, rec); werr == nil {
				row.Certified = true
			} else {
				perr = werr
			}
		}
		if perr != nil && row.Err == nil {
			row.Err = fmt.Errorf("harness: writing proofs for %s: %w", f.Name, perr)
		}
	}
	return row, out.SMTStats
}

// Speedup is the ratio of aggregate validation CPU time to wall-clock
// time — the effective parallelism achieved by the worker pool.
func (s *Summary) Speedup() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return s.CPUTime.Seconds() / s.WallTime.Seconds()
}

// RenderStats prints the run-wide solver totals and the wall-clock vs.
// CPU-time accounting of the worker pool.
func (s *Summary) RenderStats(w io.Writer) {
	fmt.Fprintf(w, "Harness: %d functions, %d workers, wall %.2fs, cpu %.2fs (speedup %.2fx)\n",
		s.Total, s.Workers, s.WallTime.Seconds(), s.CPUTime.Seconds(), s.Speedup())
	fmt.Fprintf(w, "SMT: %d queries (%d fast), %d conflicts, %d decisions, %d clauses, solve time %.2fs\n",
		s.SMTStats.Queries, s.SMTStats.FastQueries, s.SMTStats.SATConflicts,
		s.SMTStats.SATDecisions, s.SMTStats.CNFClauses, s.SMTStats.SolveDuration.Seconds())
	if looked := s.SMTStats.CacheHits + s.SMTStats.CacheMisses; looked > 0 {
		fmt.Fprintf(w, "VC cache: %d hits / %d lookups (%.1f%% hit rate), %d canonical bytes hashed\n",
			s.SMTStats.CacheHits, looked,
			100*float64(s.SMTStats.CacheHits)/float64(looked), s.SMTStats.CacheBytes)
	}
	if s.SMTStats.Certificates > 0 {
		fmt.Fprintf(w, "Proofs: %d query certificates, %d DRAT trace bytes, %d/%d functions certified\n",
			s.SMTStats.Certificates, s.SMTStats.ProofBytes, s.Certified, s.Total)
	}
}

// Counts returns the per-class totals.
func (s *Summary) Counts() map[tv.Class]int {
	out := make(map[tv.Class]int)
	for _, r := range s.Rows {
		out[r.Class]++
	}
	return out
}

// Figure6 renders the outcome table in the layout of the paper's Figure 6.
// NotValidated rows of a bug-free corpus are false alarms and fold into
// "Other", exactly like the paper's inadequate-synchronization-point
// failures.
func (s *Summary) Figure6(w io.Writer) {
	counts := s.Counts()
	succeeded := counts[tv.ClassSucceeded]
	timeout := counts[tv.ClassTimeout]
	oom := counts[tv.ClassOOM]
	other := counts[tv.ClassOther] + counts[tv.ClassNotValidated]
	supported := s.Total - counts[tv.ClassUnsupported]

	fmt.Fprintln(w, "Figure 6: Translation validation results (synthetic GCC-like corpus)")
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	fmt.Fprintln(w, "| Result                       | #Functions |       % |")
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	row := func(name string, n int) {
		pct := 0.0
		if supported > 0 {
			pct = 100 * float64(n) / float64(supported)
		}
		fmt.Fprintf(w, "| %-28s | %10d | %6.2f%% |\n", name, n, pct)
	}
	row("Succeeded", succeeded)
	row("Failed due to timeout", timeout)
	row("Failed due to out-of-memory", oom)
	row("Other", other)
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	row("Total", supported)
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	if un := counts[tv.ClassUnsupported]; un > 0 {
		fmt.Fprintf(w, "(%d additional functions outside the supported fragment, excluded as in the paper)\n", un)
	}
}

// Figure7 renders the two distributions of the paper's Figure 7 as text
// histograms: validation time (log-scale buckets) and code size.
func (s *Summary) Figure7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: Distributions of validation time and code size")
	var times []float64
	var sizes []int
	for _, r := range s.Rows {
		times = append(times, r.Duration.Seconds())
		sizes = append(sizes, r.CodeSize)
	}
	fmt.Fprintf(w, "\nValidation time: mean %.2fs, median %.2fs\n",
		mean(times), median(times))
	histogram(w, "time", times, []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100},
		func(v float64) string { return fmt.Sprintf("%6.2fs", v) })

	sizesF := make([]float64, len(sizes))
	for i, v := range sizes {
		sizesF[i] = float64(v)
	}
	fmt.Fprintf(w, "\nCode size (LLVM instructions): mean %.0f, median %.0f\n",
		mean(sizesF), median(sizesF))
	histogram(w, "size", sizesF, []float64{4, 8, 16, 32, 64, 128, 256, 512},
		func(v float64) string { return fmt.Sprintf("%6.0f", v) })
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// histogram prints counts per bucket with an ASCII bar.
func histogram(w io.Writer, label string, xs []float64, edges []float64,
	fmtEdge func(float64) string) {
	counts := make([]int, len(edges)+1)
	for _, x := range xs {
		i := sort.SearchFloat64s(edges, x)
		if i < len(edges) && x == edges[i] {
			i++
		}
		counts[i]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		var lo, hi string
		switch {
		case i == 0:
			lo, hi = strings.Repeat(" ", len(fmtEdge(0))), "< "+strings.TrimSpace(fmtEdge(edges[0]))
		case i == len(edges):
			lo, hi = "≥ "+strings.TrimSpace(fmtEdge(edges[len(edges)-1])), ""
		default:
			lo, hi = strings.TrimSpace(fmtEdge(edges[i-1])), "– "+strings.TrimSpace(fmtEdge(edges[i]))
		}
		bar := strings.Repeat("#", int(math.Round(40*float64(c)/float64(max))))
		fmt.Fprintf(w, "  %-18s %5d %s\n", strings.TrimSpace(lo+" "+hi), c, bar)
	}
}

// BugExperiment reruns the §5.2 bug-reintroduction study: each bug is
// injected into ISel and the triggering program is validated; the expected
// outcome is rejection, while the bug-free compilation of the same program
// validates.
type BugExperiment struct {
	Name        string
	Program     string
	Fn          string
	BadOptions  isel.Options
	GoodOptions isel.Options
}

// BugResult reports one bug experiment.
type BugResult struct {
	Name        string
	GoodClass   tv.Class
	BuggyClass  tv.Class
	BugCaught   bool
	GoodPassed  bool
	GoodReport  *core.Report
	BuggyReport *core.Report
}

// RunBug executes one bug experiment.
func RunBug(e BugExperiment, budget tv.Budget) (*BugResult, error) {
	mod, err := llvmir.Parse(e.Program)
	if err != nil {
		return nil, err
	}
	good := tv.Validate(mod, e.Fn, e.GoodOptions, vcgen.Options{}, core.Options{}, budget)
	mod2, err := llvmir.Parse(e.Program)
	if err != nil {
		return nil, err
	}
	bad := tv.Validate(mod2, e.Fn, e.BadOptions, vcgen.Options{}, core.Options{}, budget)
	return &BugResult{
		Name:        e.Name,
		GoodClass:   good.Class,
		BuggyClass:  bad.Class,
		GoodPassed:  good.Class == tv.ClassSucceeded,
		BugCaught:   bad.Class == tv.ClassNotValidated,
		GoodReport:  good.Report,
		BuggyReport: bad.Report,
	}, nil
}

// RenderBugTable prints the §5.2 experiment results.
func RenderBugTable(w io.Writer, results []*BugResult) {
	fmt.Fprintln(w, "Section 5.2: Evaluation with real LLVM bugs")
	fmt.Fprintln(w, "+----------------------------------------+-----------------+-----------------+")
	fmt.Fprintln(w, "| Bug                                    | Correct version | Buggy version   |")
	fmt.Fprintln(w, "+----------------------------------------+-----------------+-----------------+")
	for _, r := range results {
		fmt.Fprintf(w, "| %-38s | %-15s | %-15s |\n", r.Name,
			verdictWord(r.GoodPassed, "validated", "NOT VALIDATED"),
			verdictWord(r.BugCaught, "rejected ✓", "MISSED ✗"))
	}
	fmt.Fprintln(w, "+----------------------------------------+-----------------+-----------------+")
}

func verdictWord(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}
