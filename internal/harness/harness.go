// Package harness drives the paper's evaluation (§5): it validates a
// corpus of functions under per-function budgets and renders the results
// as the paper's tables and figures — the outcome breakdown of Figure 6,
// the validation-time and code-size distributions of Figure 7, and the
// bug-reintroduction experiments of §5.2.
package harness

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/isel"
	"repro/internal/llvmir"
	"repro/internal/proof"
	"repro/internal/smt"
	"repro/internal/telemetry"
	"repro/internal/tv"
	"repro/internal/vcgen"
)

// Config tunes an experiment run.
type Config struct {
	// Corpus profile.
	Profile corpus.Profile
	// Functions, when non-nil, is the explicit corpus to validate and
	// Profile is ignored. Used for externally supplied workloads and
	// fault-injection tests.
	Functions []corpus.Function
	// Budget applied per function (the scaled-down analogue of the
	// paper's 3 h / 12 GB limits).
	Budget tv.Budget
	// InadequateEvery, when > 0, validates every n-th function with the
	// deliberately coarse liveness option, recreating the paper's
	// "Other" failures caused by liveness inaccuracy (16 / 4732).
	InadequateEvery int
	// Checker options (ablations).
	Checker core.Options
	// Progress, when non-nil, receives one line per validated function.
	// Writes are serialized, so any io.Writer is safe here even with
	// Workers > 1; lines arrive in completion order, not corpus order.
	Progress io.Writer
	// Workers is the number of functions validated concurrently
	// (0 or negative = runtime.GOMAXPROCS(0)). Each worker owns a
	// private SMT context and solver, so runs are state-isolated;
	// Summary.Rows is in corpus order regardless of worker count, and a
	// panic while validating one function is recovered into that
	// function's row instead of killing the run.
	Workers int
	// DisableVCCache turns off the run-wide verification-condition result
	// cache (ablation). By default Run creates one smt.Cache shared by all
	// workers, so an obligation that is alpha-equivalent to one already
	// discharged — by any worker, in any function — is answered without
	// solving. Ignored when Checker.VCCache is already set by the caller.
	DisableVCCache bool
	// DisablePortfolio turns off portfolio racing (ablation). By default
	// Run creates one smt.Portfolio with a token per worker and attaches
	// it to every checker: a worker holds its token while validating, so
	// the tokens up for grabs are exactly the idle workers' — racing only
	// ever spends capacity the run was wasting (the end-of-corpus tail,
	// where the last stragglers hold the wall clock while the other
	// workers sit idle). Ignored when Checker.Portfolio is already set.
	DisablePortfolio bool
	// ProofDir, when non-empty, makes every validated function emit proof
	// certificates into that directory: query certificates plus DRAT
	// traces for all functions (so cache references across functions never
	// dangle), a bisimulation witness for each Succeeded function, and a
	// MANIFEST.json for the run. Verify with cmd/proofcheck.
	//
	// By default emission streams (schema 2): one run-wide shared term
	// table, binary DRAT traces, and certificates flushed per query, so
	// peak memory is bounded by the largest single query rather than the
	// run. Set ProofLegacy for the buffered schema-1 format.
	ProofDir string
	// ProofLegacy reverts proof emission to the buffered schema-1 format
	// (per-function term tables, textual DRAT). Comparison/ablation only.
	ProofLegacy bool
	// DisableScratch turns off the per-worker arena scratch (reusable
	// term-table storage and blaster literal slabs) and reverts to fresh
	// heap allocations per function (ablation).
	DisableScratch bool
	// Tracer, when non-nil, receives one span tree per validated function
	// — harness.fn > harness.parse + tv.validate > per-phase and per-SMT-
	// query spans. The tracer is shared by all workers (it is
	// goroutine-safe); flush it with telemetry.WriteJSONL after Run.
	Tracer *telemetry.Tracer
}

// ResultRow is one function's outcome.
type ResultRow struct {
	Fn       string
	Class    tv.Class
	Duration time.Duration
	CodeSize int
	// Err carries the failure detail for non-Succeeded rows, including
	// recovered panic messages (Class Other).
	Err error
	// Submitted, Started, and Finished are the row's queue and execution
	// timestamps: Submitted is when the job entered the pool queue (zero
	// when the caller bypassed a Pool), Started is when a worker picked it
	// up, Finished when the worker was done. Started-Submitted is queue
	// latency — the number the daemon's admission control is judged by —
	// and Finished-Started covers validation plus proof emission, a
	// superset of Duration.
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Certified reports that proof emission was on and the function's
	// certificates and bisimulation witness were written successfully.
	Certified bool
	// ProofErr records why certificate or witness emission failed for this
	// row (nil when proof emission was off or succeeded). Unlike Err it is
	// set even when validation itself also failed, so a proof-write
	// failure is never silently folded into Certified=false.
	ProofErr error
}

// Summary aggregates an experiment.
type Summary struct {
	Rows  []ResultRow
	Total int
	// Workers is the pool size the run actually used.
	Workers int
	// WallTime is the elapsed time of the whole run; CPUTime is the sum
	// of per-function validation durations across all workers. Their
	// ratio is the parallel speedup (see Speedup).
	WallTime time.Duration
	CPUTime  time.Duration
	// SMTStats aggregates solver statistics across all workers.
	SMTStats smt.Stats
	// Certified counts rows whose certificates and witness were written
	// (0 when proof emission was off).
	Certified int
	// CertFailed counts rows whose proof emission failed (ProofErr set).
	CertFailed int
	// ProofErr records a failure writing the run manifest, if any.
	ProofErr error
	// Metrics holds the run's per-phase latency histograms and outcome
	// counters, merged across workers. Always non-nil after Run; Figure7,
	// RenderStats, and PhaseReport render from it.
	Metrics *telemetry.Metrics
}

// Run validates the whole corpus across Config.Workers goroutines and
// returns the summary. Results land in Summary.Rows in corpus order
// regardless of completion order, so a parallel run is row-for-row
// comparable with a serial one.
func Run(cfg Config) *Summary {
	fns := cfg.Functions
	if fns == nil {
		fns = corpus.Generate(cfg.Profile)
	}
	if cfg.Checker.VCCache == nil && !cfg.DisableVCCache {
		cfg.Checker.VCCache = smt.NewCache()
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(fns) && len(fns) > 0 {
		workers = len(fns)
	}
	sum := &Summary{Total: len(fns), Workers: workers, Rows: make([]ResultRow, len(fns)),
		Metrics: telemetry.NewMetrics()}
	var dw *proof.DirWriter
	if cfg.ProofDir != "" && !cfg.ProofLegacy {
		var err error
		dw, err = proof.NewDirWriter(cfg.ProofDir)
		if err != nil {
			// Record the run-level failure and leave ProofDir set: the
			// workers fall back to the buffered per-row writers, whose
			// attempts against the broken directory surface the failure on
			// every row instead of silently running uncertified.
			sum.ProofErr = err
			dw = nil
		}
	}
	start := time.Now()

	// The batch run is a Pool fed as fast as Submit accepts: the same
	// worker loop the tvd daemon keeps warm across requests.
	pool := NewPool(PoolConfig{
		Workers:          workers,
		Portfolio:        cfg.Checker.Portfolio,
		DisablePortfolio: cfg.DisablePortfolio,
		DisableScratch:   cfg.DisableScratch,
	})
	var (
		mu   sync.Mutex // guards sum's aggregates, done, and Progress writes
		done int
	)
	for i := range fns {
		vopts := vcgen.Options{}
		if cfg.InadequateEvery > 0 && i%cfg.InadequateEvery == cfg.InadequateEvery-1 {
			vopts.CoarseLiveness = true
		}
		pool.Submit(Job{
			Fn:       fns[i],
			Index:    i,
			VCGen:    vopts,
			Checker:  cfg.Checker,
			Budget:   cfg.Budget,
			DW:       dw,
			ProofDir: cfg.ProofDir,
			Tracer:   cfg.Tracer,
			Done: func(res JobResult) {
				sum.Rows[res.Index] = res.Row // index-disjoint writes: no lock needed
				mu.Lock()
				sum.SMTStats.Add(res.Stats)
				sum.Metrics.Merge(res.Metrics)
				sum.CPUTime += res.Row.Duration
				done++
				if cfg.Progress != nil {
					fmt.Fprintf(cfg.Progress, "%4d/%d %-8s %-28s %8.2fs size=%d\n",
						done, len(fns), res.Row.Fn, res.Row.Class,
						res.Row.Duration.Seconds(), res.Row.CodeSize)
				}
				mu.Unlock()
			},
		})
	}
	pool.Close()
	sum.WallTime = time.Since(start)
	if dw != nil {
		if err := dw.Close(); err != nil && sum.ProofErr == nil {
			sum.ProofErr = err
		}
		// The shared term segment belongs to the whole run, not any row.
		sum.SMTStats.ProofBytes += dw.TermBytes()
	}
	if cfg.ProofDir != "" {
		m := &proof.Manifest{}
		if dw != nil {
			m.Schema = proof.SchemaStreaming
			m.Terms = proof.TermsName
			m.TermCount = dw.Table().Len()
		}
		for _, r := range sum.Rows {
			if r.Certified {
				sum.Certified++
			}
			if r.ProofErr != nil {
				sum.CertFailed++
			}
			m.Functions = append(m.Functions, proof.ManifestRow{
				Name: r.Fn, Class: r.Class.String(), Certified: r.Certified,
			})
		}
		if err := proof.WriteManifest(cfg.ProofDir, m); err != nil && sum.ProofErr == nil {
			sum.ProofErr = err
		}
	}
	return sum
}

// validateHook, when non-nil, runs at the start of each function's
// validation; tests use it to inject faults (e.g. panics) into the pool.
var validateHook func(i int, f corpus.Function)

// validateOne runs the full pipeline for one pool job. Parse failures
// and panics are contained here: both become a ClassOther row with the
// cause in Err, so one bad function cannot abort the corpus run. The
// returned Metrics registry is private to this call — the caller merges
// it into the run-wide one — so recording it needs no cross-worker
// synchronization.
func validateOne(j Job) (row ResultRow, stats smt.Stats, m *telemetry.Metrics) {
	m = telemetry.NewMetrics()
	f := j.Fn
	start := time.Now()
	var rec *proof.Recorder
	var parseDur time.Duration
	var parseAlloc int64
	var out *tv.Outcome
	// Declared first so it runs after every other handler: whatever path
	// produced the row — success, parse failure, panic — it carries the
	// queue and execution timestamps.
	defer func() {
		row.Submitted = j.Submitted
		row.Started = start
		row.Finished = time.Now()
	}()
	fnSpan := j.Tracer.Start(0, "harness.fn", telemetry.String("fn", f.Name))
	if fnSpan != nil {
		j.Checker.Trace = j.Tracer
		j.Checker.TraceParent = fnSpan.ID()
	}
	// The solver observes per-query latency into the private registry
	// whether or not tracing is on; Figure 7 and -stats render from it.
	j.Checker.Metrics = m
	// Declared before the recover handler so it runs after it: on a panic
	// the row is already rewritten by the time the metrics are recorded.
	defer func() {
		if out != nil {
			RecordOutcome(m, parseDur, out)
		} else {
			m.Observe("fn.duration", row.Duration)
			m.Add("class."+row.Class.String(), 1)
		}
		if fnSpan != nil {
			fnSpan.SetAttr("class", row.Class.String())
			fnSpan.End()
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			row = ResultRow{
				Fn:       f.Name,
				Class:    tv.ClassOther,
				Duration: time.Since(start),
				Err:      fmt.Errorf("harness: panic validating %s: %v", f.Name, p),
			}
			out = nil
			if rec != nil {
				// Certificates recorded before the panic may already back
				// cache entries other functions reference; keep them.
				var perr error
				if j.DW != nil {
					var n int64
					n, perr = rec.Close(false)
					stats.ProofBytes += n
				} else {
					_, perr = proof.WriteCerts(j.ProofDir, rec)
				}
				if perr != nil {
					row.ProofErr = perr
				}
			}
		}
	}()
	if validateHook != nil {
		validateHook(j.Index, f)
	}
	parseSpan := j.Tracer.Start(j.Checker.TraceParent, "harness.parse")
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	mod, err := llvmir.Parse(f.Src)
	parseSpan.End()
	parseDur = time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	parseAlloc = int64(msAfter.TotalAlloc - msBefore.TotalAlloc)
	if err != nil {
		return ResultRow{
			Fn:       f.Name,
			Class:    tv.ClassOther,
			Duration: time.Since(start),
			Err:      fmt.Errorf("harness: corpus function %s does not parse: %w", f.Name, err),
		}, stats, m
	}
	if j.ProofDir != "" || j.DW != nil {
		if j.DW != nil {
			rec = j.DW.NewRecorder(f.Name)
		} else {
			rec = proof.NewRecorder(f.Name)
		}
		j.Checker.Proof = rec
	}
	out = tv.Validate(mod, f.Name, j.ISel, j.VCGen, j.Checker, j.Budget)
	out.Phases.Parse = parseDur
	out.Mem.Parse = parseAlloc
	row = ResultRow{Fn: f.Name, Class: out.Class, Duration: out.Duration,
		CodeSize: out.CodeSize, Err: out.Err}
	if rec != nil {
		// Certificates are written for every row — including failures — so
		// a "ref" certificate in another function can always resolve; the
		// witness is written only when validation succeeded. ProofBytes
		// counts what actually landed on disk for this function.
		var perr error
		var bytes int64
		if j.DW != nil {
			bytes, perr = rec.Close(out.Class == tv.ClassSucceeded)
			row.Certified = out.Class == tv.ClassSucceeded && perr == nil
		} else {
			bytes, perr = proof.WriteCerts(j.ProofDir, rec)
			if perr == nil && out.Class == tv.ClassSucceeded {
				var n int64
				if n, perr = proof.WriteWitness(j.ProofDir, rec); perr == nil {
					bytes += n
					row.Certified = true
				}
			}
		}
		out.SMTStats.ProofBytes = bytes
		if perr != nil {
			row.ProofErr = perr
			if row.Err == nil {
				row.Err = fmt.Errorf("harness: writing proofs for %s: %w", f.Name, perr)
			}
		}
	}
	return row, out.SMTStats, m
}

// RecordOutcome folds one validation outcome into m: the per-phase
// latency histograms (phase.*), the whole-run histogram (fn.duration),
// the outcome counter (class.*), and — for Timeout and OOM rows — the
// tail.* phase histograms that explain where the budget went (the
// Figure 6 failure tail). Shared by the harness worker and cmd/tv's
// single-file mode.
func RecordOutcome(m *telemetry.Metrics, parse time.Duration, out *tv.Outcome) {
	if m == nil || out == nil {
		return
	}
	m.Observe("fn.duration", out.Duration)
	m.Add("class."+out.Class.String(), 1)
	obs := func(name string, d time.Duration) {
		if d > 0 {
			m.Observe(name, d)
		}
	}
	obs("phase.parse", parse)
	obs("phase.isel", out.Phases.ISel)
	obs("phase.vcgen", out.Phases.VCGen)
	obs("phase.check", out.Phases.Check)
	obs("phase.smt", out.Phases.SMT)
	obs("phase.step", out.Phases.Check-out.Phases.SMT)
	obsV := func(name string, v int64) {
		if v > 0 {
			m.ObserveVal(name, v)
		}
	}
	obsV("mem.parse", out.Mem.Parse)
	obsV("mem.isel", out.Mem.ISel)
	obsV("mem.vcgen", out.Mem.VCGen)
	obsV("mem.check", out.Mem.Check)
	obsV("mem.peak", out.Mem.Peak)
	if out.Class == tv.ClassTimeout || out.Class == tv.ClassOOM {
		obs("tail.parse", parse)
		obs("tail.isel", out.Phases.ISel)
		obs("tail.vcgen", out.Phases.VCGen)
		obs("tail.check", out.Phases.Check)
		obs("tail.smt", out.Phases.SMT)
		obs("tail.step", out.Phases.Check-out.Phases.SMT)
		obsV("tail.mem.parse", out.Mem.Parse)
		obsV("tail.mem.isel", out.Mem.ISel)
		obsV("tail.mem.vcgen", out.Mem.VCGen)
		obsV("tail.mem.check", out.Mem.Check)
		obsV("tail.mem.peak", out.Mem.Peak)
	}
}

// Speedup is the ratio of aggregate validation CPU time to wall-clock
// time — the effective parallelism achieved by the worker pool.
func (s *Summary) Speedup() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return s.CPUTime.Seconds() / s.WallTime.Seconds()
}

// RenderStats prints the run-wide solver totals and the wall-clock vs.
// CPU-time accounting of the worker pool.
func (s *Summary) RenderStats(w io.Writer) {
	fmt.Fprintf(w, "Harness: %d functions, %d workers, wall %.2fs, cpu %.2fs (speedup %.2fx)\n",
		s.Total, s.Workers, s.WallTime.Seconds(), s.CPUTime.Seconds(), s.Speedup())
	fmt.Fprintf(w, "SMT: %d queries (%d fast), %d conflicts, %d decisions, %d clauses, solve time %.2fs\n",
		s.SMTStats.Queries, s.SMTStats.FastQueries, s.SMTStats.SATConflicts,
		s.SMTStats.SATDecisions, s.SMTStats.CNFClauses, s.SMTStats.SolveDuration.Seconds())
	if looked := s.SMTStats.CacheHits + s.SMTStats.CacheMisses; looked > 0 {
		fmt.Fprintf(w, "VC cache: %d hits / %d lookups (%.1f%% hit rate), %d canonical bytes hashed\n",
			s.SMTStats.CacheHits, looked,
			100*float64(s.SMTStats.CacheHits)/float64(looked), s.SMTStats.CacheBytes)
	}
	if n := s.SMTStats.SubsumedClauses + s.SMTStats.StrengthenedClauses +
		s.SMTStats.VivifiedClauses + s.SMTStats.EliminatedVars; n > 0 {
		fmt.Fprintf(w, "Inprocessing: %d clauses subsumed, %d strengthened, %d vivified, %d vars eliminated\n",
			s.SMTStats.SubsumedClauses, s.SMTStats.StrengthenedClauses,
			s.SMTStats.VivifiedClauses, s.SMTStats.EliminatedVars)
	}
	if s.SMTStats.Races > 0 {
		fmt.Fprintf(w, "Portfolio: %d races, %d racer wins, %d idle slots borrowed, %d conflicts / %d props wasted by losers\n",
			s.SMTStats.Races, s.SMTStats.RaceRacerWins, s.SMTStats.RaceTokens,
			s.SMTStats.RaceWastedConflicts, s.SMTStats.RaceWastedProps)
	}
	if s.SMTStats.CubeEscalations > 0 {
		fmt.Fprintf(w, "Cube: %d escalations, %d cubes (%d refuted, %d sat), %d stolen-slot conquests\n",
			s.SMTStats.CubeEscalations, s.SMTStats.CubesGenerated,
			s.SMTStats.CubesRefuted, s.SMTStats.CubesSat, s.SMTStats.CubeSteals)
	}
	if h := s.Metrics.Hist("smt.query"); h.Count > 0 {
		fmt.Fprintf(w, "SMT latency: p50 %s, p90 %s, p99 %s, max %s over %d observed queries\n",
			fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.9)), fmtDur(h.Quantile(0.99)),
			fmtDur(time.Duration(h.Max)), h.Count)
	}
	if s.SMTStats.Certificates > 0 || s.CertFailed > 0 {
		fmt.Fprintf(w, "Proofs: %d query certificates, %d DRAT trace bytes, %d/%d functions certified\n",
			s.SMTStats.Certificates, s.SMTStats.ProofBytes, s.Certified, s.Total)
	}
	if s.CertFailed > 0 {
		fmt.Fprintf(w, "Proof emission FAILED for %d functions (first: %v)\n",
			s.CertFailed, s.firstProofErr())
	}
}

// firstProofErr returns the first per-row proof-emission error, in corpus
// order (nil when none failed).
func (s *Summary) firstProofErr() error {
	for _, r := range s.Rows {
		if r.ProofErr != nil {
			return r.ProofErr
		}
	}
	return nil
}

// Counts returns the per-class totals.
func (s *Summary) Counts() map[tv.Class]int {
	out := make(map[tv.Class]int)
	for _, r := range s.Rows {
		out[r.Class]++
	}
	return out
}

// ClassCounts returns the per-class totals keyed by class name. This is
// the JSON-marshalable form the BENCH_*.json writers and cross-run
// comparisons use (a map[tv.Class]int marshals its int8 keys uselessly,
// and fmt.Sprint orders it numerically rather than lexically).
func (s *Summary) ClassCounts() map[string]int {
	out := make(map[string]int)
	for _, r := range s.Rows {
		out[r.Class.String()]++
	}
	return out
}

// Figure6 renders the outcome table in the layout of the paper's Figure 6.
// NotValidated rows of a bug-free corpus are false alarms and fold into
// "Other", exactly like the paper's inadequate-synchronization-point
// failures.
func (s *Summary) Figure6(w io.Writer) {
	counts := s.Counts()
	succeeded := counts[tv.ClassSucceeded]
	timeout := counts[tv.ClassTimeout]
	oom := counts[tv.ClassOOM]
	other := counts[tv.ClassOther] + counts[tv.ClassNotValidated]
	supported := s.Total - counts[tv.ClassUnsupported]

	fmt.Fprintln(w, "Figure 6: Translation validation results (synthetic GCC-like corpus)")
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	fmt.Fprintln(w, "| Result                       | #Functions |       % |")
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	row := func(name string, n int) {
		pct := 0.0
		if supported > 0 {
			pct = 100 * float64(n) / float64(supported)
		}
		fmt.Fprintf(w, "| %-28s | %10d | %6.2f%% |\n", name, n, pct)
	}
	row("Succeeded", succeeded)
	row("Failed due to timeout", timeout)
	row("Failed due to out-of-memory", oom)
	row("Other", other)
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	row("Total", supported)
	fmt.Fprintln(w, "+------------------------------+------------+---------+")
	if un := counts[tv.ClassUnsupported]; un > 0 {
		fmt.Fprintf(w, "(%d additional functions outside the supported fragment, excluded as in the paper)\n", un)
	}
}

// Figure7 renders the two distributions of the paper's Figure 7 as text
// histograms: validation time (from the run's fn.duration latency
// histogram when metrics were recorded, per-row otherwise) and code size.
func (s *Summary) Figure7(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: Distributions of validation time and code size")
	if h := s.Metrics.Hist("fn.duration"); h.Count > 0 {
		fmt.Fprintf(w, "\nValidation time: mean %.2fs, median %.2fs (log2 buckets)\n",
			h.Mean().Seconds(), h.Quantile(0.5).Seconds())
		renderHistBuckets(w, &h)
	} else {
		var times []float64
		for _, r := range s.Rows {
			times = append(times, r.Duration.Seconds())
		}
		fmt.Fprintf(w, "\nValidation time: mean %.2fs, median %.2fs\n",
			mean(times), median(times))
		histogram(w, "time", times, []float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100},
			func(v float64) string { return fmt.Sprintf("%6.2fs", v) })
	}

	var sizes []int
	for _, r := range s.Rows {
		sizes = append(sizes, r.CodeSize)
	}
	sizesF := make([]float64, len(sizes))
	for i, v := range sizes {
		sizesF[i] = float64(v)
	}
	fmt.Fprintf(w, "\nCode size (LLVM instructions): mean %.0f, median %.0f\n",
		mean(sizesF), median(sizesF))
	histogram(w, "size", sizesF, []float64{4, 8, 16, 32, 64, 128, 256, 512},
		func(v float64) string { return fmt.Sprintf("%6.0f", v) })
}

// fmtDur renders a duration with 3 significant digits — log2 bucket
// edges stringify unreadably otherwise (1.048576ms).
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.3gµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.3gms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3gs", d.Seconds())
	}
}

// renderHistBuckets prints a telemetry histogram as ASCII bars.
func renderHistBuckets(w io.Writer, h *telemetry.Histogram) {
	bs := h.Buckets()
	max := int64(1)
	for _, b := range bs {
		if b.Count > max {
			max = b.Count
		}
	}
	for _, b := range bs {
		bar := strings.Repeat("#", int(math.Round(40*float64(b.Count)/float64(max))))
		fmt.Fprintf(w, "  %8s – %-8s %5d %s\n", fmtDur(b.Lo), fmtDur(b.Hi), b.Count, bar)
	}
}

// phaseRows is the rendering order of PhaseReport; step and smt are
// sub-phases of check (indented) and excluded from the CPU total.
var phaseRows = []struct {
	label string
	key   string
	sub   bool
}{
	{"parse", "parse", false},
	{"isel", "isel", false},
	{"vcgen", "vcgen", false},
	{"check", "check", false},
	{"step", "step", true},
	{"smt", "smt", true},
}

// PhaseReport prints the per-phase wall-clock breakdown of the run — the
// instrument the paper's §5.1 timeout/OOM discussion calls for: it shows
// where the budget of the failure tail went (symbolic stepping vs. SMT
// solving vs. the pre-check phases).
func (s *Summary) PhaseReport(w io.Writer) {
	RenderPhases(w, s.Metrics)
}

// RenderPhases is the standalone form of PhaseReport, for callers that
// recorded phase metrics without a Summary (cmd/tv's single-file mode).
func RenderPhases(w io.Writer, m *telemetry.Metrics) {
	renderPhaseTable(w, m, "phase", "Per-phase time breakdown (all functions)")
	if m.Hist("mem.check").Count > 0 || m.Hist("mem.parse").Count > 0 {
		fmt.Fprintln(w)
		renderMemTable(w, m, "mem", "Per-phase allocation breakdown (all functions)")
	}
	if tailCount(m) > 0 {
		fmt.Fprintln(w)
		renderPhaseTable(w, m, "tail", "Timeout/OOM tail: where the budget went")
		fmt.Fprintln(w)
		renderMemTable(w, m, "tail.mem", "Timeout/OOM tail: where the memory went")
	}
}

// memRows is the rendering order of the mem.* breakdown; peak is a
// point-in-time heap sample, not an allocation total, so it is excluded
// from the %alloc denominator.
var memRows = []struct {
	label string
	key   string
	peak  bool
}{
	{"parse", "parse", false},
	{"isel", "isel", false},
	{"vcgen", "vcgen", false},
	{"check", "check", false},
	{"peak", "peak", true},
}

// renderMemTable prints the allocation breakdown recorded in the
// prefix.* histograms (byte observations, not durations).
func renderMemTable(w io.Writer, m *telemetry.Metrics, prefix, title string) {
	var allocTotal int64
	for _, p := range memRows {
		if !p.peak {
			h := m.Hist(prefix + "." + p.key)
			allocTotal += h.Sum
		}
	}
	if allocTotal == 0 {
		return
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %-8s %7s %10s %10s %10s %10s %7s"+"\n",
		"phase", "count", "total", "mean", "p50", "max", "%alloc")
	for _, p := range memRows {
		h := m.Hist(prefix + "." + p.key)
		if h.Count == 0 {
			continue
		}
		pctS := "      -"
		if !p.peak && allocTotal > 0 {
			pctS = fmt.Sprintf("%6.1f%%", 100*float64(h.Sum)/float64(allocTotal))
		}
		fmt.Fprintf(w, "  %-8s %7d %10s %10s %10s %10s %s"+"\n",
			p.label, h.Count,
			fmtBytes(h.Sum), fmtBytes(int64(h.Mean())),
			fmtBytes(int64(h.Quantile(0.5))), fmtBytes(h.Max), pctS)
	}
}

// fmtBytes renders a byte count with 3 significant digits.
func fmtBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.3gKB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.3gMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.3gGB", float64(n)/(1<<30))
	}
}

func tailCount(m *telemetry.Metrics) int64 {
	var n int64
	for _, p := range phaseRows {
		h := m.Hist("tail." + p.key)
		if h.Count > n {
			n = h.Count
		}
	}
	return n
}

// renderPhaseTable prints one phase table from the prefix.* histograms of
// m. The %cpu column is relative to the top-level phases' total (check's
// sub-phases overlap it and are excluded from the denominator).
func renderPhaseTable(w io.Writer, m *telemetry.Metrics, prefix, title string) {
	var cpuTotal int64
	for _, p := range phaseRows {
		if !p.sub {
			h := m.Hist(prefix + "." + p.key)
			cpuTotal += h.Sum
		}
	}
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "  %-8s %7s %10s %10s %10s %10s %10s %7s\n",
		"phase", "count", "total", "mean", "p50", "p90", "max", "%cpu")
	for _, p := range phaseRows {
		h := m.Hist(prefix + "." + p.key)
		if h.Count == 0 {
			continue
		}
		label := p.label
		if p.sub {
			label = "  " + label
		}
		pct := 0.0
		if cpuTotal > 0 {
			pct = 100 * float64(h.Sum) / float64(cpuTotal)
		}
		fmt.Fprintf(w, "  %-8s %7d %10s %10s %10s %10s %10s %6.1f%%\n",
			label, h.Count,
			fmtDur(time.Duration(h.Sum)), fmtDur(h.Mean()),
			fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.9)),
			fmtDur(time.Duration(h.Max)), pct)
	}
	if cpuTotal == 0 {
		fmt.Fprintln(w, "  (no phase metrics recorded)")
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// histogram prints counts per bucket with an ASCII bar.
func histogram(w io.Writer, label string, xs []float64, edges []float64,
	fmtEdge func(float64) string) {
	counts := make([]int, len(edges)+1)
	for _, x := range xs {
		i := sort.SearchFloat64s(edges, x)
		if i < len(edges) && x == edges[i] {
			i++
		}
		counts[i]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		var lo, hi string
		switch {
		case i == 0:
			lo, hi = strings.Repeat(" ", len(fmtEdge(0))), "< "+strings.TrimSpace(fmtEdge(edges[0]))
		case i == len(edges):
			lo, hi = "≥ "+strings.TrimSpace(fmtEdge(edges[len(edges)-1])), ""
		default:
			lo, hi = strings.TrimSpace(fmtEdge(edges[i-1])), "– "+strings.TrimSpace(fmtEdge(edges[i]))
		}
		bar := strings.Repeat("#", int(math.Round(40*float64(c)/float64(max))))
		fmt.Fprintf(w, "  %-18s %5d %s\n", strings.TrimSpace(lo+" "+hi), c, bar)
	}
}

// BugExperiment reruns the §5.2 bug-reintroduction study: each bug is
// injected into ISel and the triggering program is validated; the expected
// outcome is rejection, while the bug-free compilation of the same program
// validates.
type BugExperiment struct {
	Name        string
	Program     string
	Fn          string
	BadOptions  isel.Options
	GoodOptions isel.Options
}

// BugResult reports one bug experiment.
type BugResult struct {
	Name        string
	GoodClass   tv.Class
	BuggyClass  tv.Class
	BugCaught   bool
	GoodPassed  bool
	GoodReport  *core.Report
	BuggyReport *core.Report
}

// RunBug executes one bug experiment.
func RunBug(e BugExperiment, budget tv.Budget) (*BugResult, error) {
	mod, err := llvmir.Parse(e.Program)
	if err != nil {
		return nil, err
	}
	good := tv.Validate(mod, e.Fn, e.GoodOptions, vcgen.Options{}, core.Options{}, budget)
	mod2, err := llvmir.Parse(e.Program)
	if err != nil {
		return nil, err
	}
	bad := tv.Validate(mod2, e.Fn, e.BadOptions, vcgen.Options{}, core.Options{}, budget)
	return &BugResult{
		Name:        e.Name,
		GoodClass:   good.Class,
		BuggyClass:  bad.Class,
		GoodPassed:  good.Class == tv.ClassSucceeded,
		BugCaught:   bad.Class == tv.ClassNotValidated,
		GoodReport:  good.Report,
		BuggyReport: bad.Report,
	}, nil
}

// RenderBugTable prints the §5.2 experiment results.
func RenderBugTable(w io.Writer, results []*BugResult) {
	fmt.Fprintln(w, "Section 5.2: Evaluation with real LLVM bugs")
	fmt.Fprintln(w, "+----------------------------------------+-----------------+-----------------+")
	fmt.Fprintln(w, "| Bug                                    | Correct version | Buggy version   |")
	fmt.Fprintln(w, "+----------------------------------------+-----------------+-----------------+")
	for _, r := range results {
		fmt.Fprintf(w, "| %-38s | %-15s | %-15s |\n", r.Name,
			verdictWord(r.GoodPassed, "validated", "NOT VALIDATED"),
			verdictWord(r.BugCaught, "rejected ✓", "MISSED ✗"))
	}
	fmt.Fprintln(w, "+----------------------------------------+-----------------+-----------------+")
}

func verdictWord(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}
