package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/telemetry"
	"repro/internal/tv"
)

// tracedConfig is the 4-worker traced run used by the concurrency tests;
// the deterministic term-node budget keeps classes identical across runs
// (see TestParallelRowsDeterministic).
func tracedConfig(tracer *telemetry.Tracer) Config {
	return Config{
		Profile:         parallelProfile,
		Budget:          tv.Budget{MaxTermNodes: 4_000_000},
		InadequateEvery: 7,
		Workers:         4,
		Tracer:          tracer,
	}
}

// TestTracedRunRowsIdentical: turning the tracer on must be pure
// observation — every row of a traced 4-worker run matches the untraced
// run. Under -race this also exercises the tracer's concurrency safety.
func TestTracedRunRowsIdentical(t *testing.T) {
	plain := Run(tracedConfig(nil))
	tracer := telemetry.NewTracer()
	traced := Run(tracedConfig(tracer))

	if len(plain.Rows) != len(traced.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(plain.Rows), len(traced.Rows))
	}
	for i := range plain.Rows {
		p, q := plain.Rows[i], traced.Rows[i]
		if p.Fn != q.Fn || p.Class != q.Class || p.CodeSize != q.CodeSize {
			t.Errorf("row %d differs: untraced {%s %v %d} vs traced {%s %v %d}",
				i, p.Fn, p.Class, p.CodeSize, q.Fn, q.Class, q.CodeSize)
		}
	}
	if tracer.Len() == 0 {
		t.Fatal("traced run recorded no spans")
	}
}

// TestTraceSpansNest: the spans of a parallel corpus run lint clean
// (unique ids, parents exist, children within parent intervals), every
// function has exactly one root with the full phase chain beneath it, and
// the per-phase child spans of each tv.validate span account for its
// duration (within 10% plus scheduling slack).
func TestTraceSpansNest(t *testing.T) {
	tracer := telemetry.NewTracer()
	sum := Run(tracedConfig(tracer))
	records := tracer.Records()
	if err := telemetry.Lint(records); err != nil {
		t.Fatalf("trace lint: %v", err)
	}

	byID := make(map[telemetry.SpanID]telemetry.Record, len(records))
	for _, r := range records {
		byID[r.ID] = r
	}
	// fn name -> summed child phase durations of its tv.validate span.
	validateByFn := make(map[string]telemetry.Record)
	childSum := make(map[telemetry.SpanID]int64)
	roots := 0
	for _, r := range records {
		switch r.Name {
		case "harness.fn":
			if r.Parent != 0 {
				t.Errorf("harness.fn span %d has parent %d, want root", r.ID, r.Parent)
			}
			roots++
		case "tv.validate":
			fn, _ := r.Attrs["fn"].(string)
			validateByFn[fn] = r
		case "tv.isel", "tv.vcgen", "tv.check":
			childSum[r.Parent] += r.DurNS
		}
	}
	if roots != sum.Total {
		t.Fatalf("%d harness.fn roots, want %d", roots, sum.Total)
	}
	if len(validateByFn) != sum.Total {
		t.Fatalf("%d tv.validate spans, want %d", len(validateByFn), sum.Total)
	}
	for _, row := range sum.Rows {
		v, ok := validateByFn[row.Fn]
		if !ok {
			t.Errorf("no tv.validate span for %s", row.Fn)
			continue
		}
		if class, _ := v.Attrs["class"].(string); class != row.Class.String() {
			t.Errorf("%s: span class %q, row class %q", row.Fn, class, row.Class)
		}
		// The phase spans are everything tv.validate does except mod.Func
		// lookup and span bookkeeping: their sum must explain the span's
		// own duration. 2ms slack absorbs scheduler noise on tiny rows.
		phases := childSum[v.ID]
		if slack := v.DurNS/10 + 2_000_000; phases < v.DurNS-slack {
			t.Errorf("%s: phase spans cover %dns of %dns validate span (slack %dns)",
				row.Fn, phases, v.DurNS, slack)
		}
	}
}

// TestMetricsMatchRows: the run-wide Metrics registry (merged from the
// per-worker shards) must agree with the rows it summarizes.
func TestMetricsMatchRows(t *testing.T) {
	sum := Run(tracedConfig(nil))
	if sum.Metrics == nil {
		t.Fatal("Summary.Metrics is nil")
	}
	h := sum.Metrics.Hist("fn.duration")
	if h.Count != int64(sum.Total) {
		t.Errorf("fn.duration count = %d, want %d", h.Count, sum.Total)
	}
	var classTotal int64
	for c, n := range sum.Counts() {
		got := sum.Metrics.Counter("class." + c.String())
		if got != int64(n) {
			t.Errorf("class.%s counter = %d, rows say %d", c, got, n)
		}
		classTotal += got
	}
	if classTotal != int64(sum.Total) {
		t.Errorf("class counters sum to %d, want %d", classTotal, sum.Total)
	}
	if sum.SMTStats.Queries > 0 {
		q := sum.Metrics.Hist("smt.query")
		if q.Count != sum.SMTStats.Queries {
			t.Errorf("smt.query observations = %d, solver stats say %d",
				q.Count, sum.SMTStats.Queries)
		}
	}
}

// TestPhaseReportRendering: the per-phase table renders from a real run
// with every pipeline phase present.
func TestPhaseReportRendering(t *testing.T) {
	sum := Run(tracedConfig(nil))
	var b strings.Builder
	sum.PhaseReport(&b)
	out := b.String()
	for _, want := range []string{"Per-phase time breakdown", "parse", "isel", "vcgen", "check", "step", "smt", "%cpu"} {
		if !strings.Contains(out, want) {
			t.Errorf("PhaseReport output missing %q:\n%s", want, out)
		}
	}
}

// TestFigure7FromMetrics: Figure 7 renders the time distribution from the
// metrics histogram (log2 buckets) when one was recorded.
func TestFigure7FromMetrics(t *testing.T) {
	sum := Run(tracedConfig(nil))
	var b strings.Builder
	sum.Figure7(&b)
	out := b.String()
	for _, want := range []string{"log2 buckets", "median", "Code size", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure7 output missing %q:\n%s", want, out)
		}
	}
}

// TestTimeoutRowsRespectBudget is the acceptance test for the SAT-level
// deadline poll: with a tight wall-clock budget no row may overrun its
// timeout by more than a second — previously one long restart segment
// could blow way past it.
func TestTimeoutRowsRespectBudget(t *testing.T) {
	budget := tv.Budget{Timeout: 150 * time.Millisecond}
	sum := Run(Config{Profile: corpus.GCCLike(20), Budget: budget, Workers: 4})
	for _, r := range sum.Rows {
		if r.Class != tv.ClassTimeout {
			continue
		}
		if over := r.Duration - budget.Timeout; over > time.Second {
			t.Errorf("%s: timeout row ran %v against a %v budget (%v over)",
				r.Fn, r.Duration, budget.Timeout, over)
		}
	}
}

// TestProofEmissionFailureReported: when certificate writing fails (here:
// ProofDir is a regular file), the failure must surface in the row's
// ProofErr, the summary's CertFailed count, and the stats rendering —
// never silently as Certified=false.
func TestProofEmissionFailureReported(t *testing.T) {
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	sum := Run(Config{
		Functions: []corpus.Function{goodFn("pe1"), goodFn("pe2")},
		Budget:    tv.Budget{Timeout: time.Minute},
		Workers:   1,
		ProofDir:  notADir,
	})
	if sum.CertFailed != 2 {
		t.Fatalf("CertFailed = %d, want 2 (rows: %+v)", sum.CertFailed, sum.Rows)
	}
	for _, r := range sum.Rows {
		if r.ProofErr == nil {
			t.Errorf("%s: ProofErr is nil", r.Fn)
		}
		if r.Certified {
			t.Errorf("%s: Certified despite write failure", r.Fn)
		}
	}
	if sum.firstProofErr() == nil {
		t.Error("firstProofErr() = nil with failed rows present")
	}
	var b strings.Builder
	sum.RenderStats(&b)
	if !strings.Contains(b.String(), "Proof emission FAILED for 2 functions") {
		t.Errorf("RenderStats does not report the proof failures:\n%s", b.String())
	}
}
