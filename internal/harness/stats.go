package harness

import (
	"repro/internal/telemetry"
)

// StatsJSON is the machine-readable form of RenderStats: one JSON
// object carrying the run's headline numbers, the Figure 6 class
// breakdown, the solver totals, and the query-latency quantiles.
// cmd/tv -stats-json prints it; the tvd daemon embeds the same struct
// in its batch summaries, so a local run and a remote one are
// field-for-field comparable.
type StatsJSON struct {
	Functions   int     `json:"functions"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
	CPUSeconds  float64 `json:"cpu_seconds"`
	Speedup     float64 `json:"speedup"`
	// Classes maps Class.String() to its row count (the Figure 6 table).
	Classes map[string]int `json:"classes"`

	SMT SMTStatsJSON `json:"smt"`
	// Latency is the smt.query histogram summary; omitted when no query
	// latencies were observed.
	Latency *LatencyJSON `json:"smt_latency,omitempty"`

	// Certified and CertFailed mirror Summary (zero when proof emission
	// was off).
	Certified  int `json:"certified"`
	CertFailed int `json:"cert_failed"`

	// Counters is the raw telemetry counter snapshot (class.*, store.*,
	// tvd.* ...) — the extension point: a consumer that needs a counter
	// the named fields don't carry reads it here without a schema change.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// SMTStatsJSON is smt.Stats with stable snake_case field names and
// durations in seconds.
type SMTStatsJSON struct {
	Queries      int64   `json:"queries"`
	FastQueries  int64   `json:"fast_queries"`
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheBytes   int64   `json:"cache_bytes"`
	Conflicts    int64   `json:"conflicts"`
	Decisions    int64   `json:"decisions"`
	Clauses      int64   `json:"clauses"`
	SolveSeconds float64 `json:"solve_seconds"`
	ProofBytes   int64   `json:"proof_bytes"`
	Certificates int64   `json:"certificates"`

	SubsumedClauses     int64 `json:"subsumed_clauses,omitempty"`
	StrengthenedClauses int64 `json:"strengthened_clauses,omitempty"`
	VivifiedClauses     int64 `json:"vivified_clauses,omitempty"`
	EliminatedVars      int64 `json:"eliminated_vars,omitempty"`

	Races               int64 `json:"races,omitempty"`
	RaceRacerWins       int64 `json:"race_racer_wins,omitempty"`
	RaceTokens          int64 `json:"race_tokens,omitempty"`
	RaceWastedConflicts int64 `json:"race_wasted_conflicts,omitempty"`
	RaceWastedProps     int64 `json:"race_wasted_props,omitempty"`

	CubeEscalations int64 `json:"cube_escalations,omitempty"`
	CubesGenerated  int64 `json:"cubes_generated,omitempty"`
	CubesRefuted    int64 `json:"cubes_refuted,omitempty"`
	CubesSat        int64 `json:"cubes_sat,omitempty"`
	CubeSteals      int64 `json:"cube_steals,omitempty"`
}

// LatencyJSON summarizes one latency histogram in nanoseconds.
type LatencyJSON struct {
	Count int64 `json:"count"`
	P50NS int64 `json:"p50_ns"`
	P90NS int64 `json:"p90_ns"`
	P99NS int64 `json:"p99_ns"`
	MaxNS int64 `json:"max_ns"`
}

// latencyJSON summarizes h, or returns nil when it is empty.
func latencyJSON(h telemetry.Histogram) *LatencyJSON {
	if h.Count == 0 {
		return nil
	}
	return &LatencyJSON{
		Count: h.Count,
		P50NS: int64(h.Quantile(0.5)),
		P90NS: int64(h.Quantile(0.9)),
		P99NS: int64(h.Quantile(0.99)),
		MaxNS: h.Max,
	}
}

// StatsJSON builds the machine-readable summary of the run.
func (s *Summary) StatsJSON() *StatsJSON {
	out := &StatsJSON{
		Functions:   s.Total,
		Workers:     s.Workers,
		WallSeconds: s.WallTime.Seconds(),
		CPUSeconds:  s.CPUTime.Seconds(),
		Speedup:     s.Speedup(),
		Classes:     s.ClassCounts(),
		SMT: SMTStatsJSON{
			Queries:      s.SMTStats.Queries,
			FastQueries:  s.SMTStats.FastQueries,
			CacheHits:    s.SMTStats.CacheHits,
			CacheMisses:  s.SMTStats.CacheMisses,
			CacheBytes:   s.SMTStats.CacheBytes,
			Conflicts:    s.SMTStats.SATConflicts,
			Decisions:    s.SMTStats.SATDecisions,
			Clauses:      s.SMTStats.CNFClauses,
			SolveSeconds: s.SMTStats.SolveDuration.Seconds(),
			ProofBytes:   s.SMTStats.ProofBytes,
			Certificates: s.SMTStats.Certificates,

			SubsumedClauses:     s.SMTStats.SubsumedClauses,
			StrengthenedClauses: s.SMTStats.StrengthenedClauses,
			VivifiedClauses:     s.SMTStats.VivifiedClauses,
			EliminatedVars:      s.SMTStats.EliminatedVars,

			Races:               s.SMTStats.Races,
			RaceRacerWins:       s.SMTStats.RaceRacerWins,
			RaceTokens:          s.SMTStats.RaceTokens,
			RaceWastedConflicts: s.SMTStats.RaceWastedConflicts,
			RaceWastedProps:     s.SMTStats.RaceWastedProps,

			CubeEscalations: s.SMTStats.CubeEscalations,
			CubesGenerated:  s.SMTStats.CubesGenerated,
			CubesRefuted:    s.SMTStats.CubesRefuted,
			CubesSat:        s.SMTStats.CubesSat,
			CubeSteals:      s.SMTStats.CubeSteals,
		},
		Certified:  s.Certified,
		CertFailed: s.CertFailed,
	}
	if s.Metrics != nil {
		out.Latency = latencyJSON(s.Metrics.Hist("smt.query"))
		counters, _ := s.Metrics.Snapshot()
		if len(counters) > 0 {
			out.Counters = counters
		}
	}
	return out
}
