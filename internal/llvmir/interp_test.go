package llvmir

import (
	"errors"
	"testing"

	"repro/internal/paperprogs"
)

func TestInterpArithmSeqSum(t *testing.T) {
	m := mustParse(t, paperprogs.ArithmSeqSum)
	in := NewInterp(m)
	// sum of a0, a0+d, ..., n terms: n*a0 + d*(n-1)*n/2
	for _, tc := range []struct{ a0, d, n, want uint64 }{
		{1, 1, 1, 1},
		{1, 1, 5, 15},
		{2, 3, 4, 2 + 5 + 8 + 11},
		{5, 0, 3, 15},
		{0, 0, 0, 0},
	} {
		got, err := in.Call("arithm_seq_sum", []uint64{tc.a0, tc.d, tc.n})
		if err != nil {
			t.Fatalf("Call(%v): %v", tc, err)
		}
		if got != tc.want {
			t.Errorf("arithm_seq_sum(%d,%d,%d) = %d, want %d", tc.a0, tc.d, tc.n, got, tc.want)
		}
	}
}

func TestInterpWAWStores(t *testing.T) {
	m := mustParse(t, paperprogs.WAWStores)
	in := NewInterp(m)
	if _, err := in.Call("waw_foo", nil); err != nil {
		t.Fatal(err)
	}
	o, _ := in.Layout.Find("@b")
	// store i16 0 at +2; store i16 2 at +3; store i16 1 at +0:
	// bytes: [01 00 00 02 00 ...] — offset 3 holds 2 (low byte of second
	// store), offset 2 holds 0, offsets 0-1 hold 01 00.
	want := []uint64{1, 0, 0, 2, 0, 0, 0, 0}
	for i, w := range want {
		got, err := in.Mem.Load(o.Base+uint64(i), 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("b[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestInterpMemSwap(t *testing.T) {
	m := mustParse(t, paperprogs.MemSwap)
	in := NewInterp(m)
	p, _ := in.Layout.Find("@p")
	q, _ := in.Layout.Find("@q")
	in.Mem.Store(p.Base, 4, 0x11111111)
	in.Mem.Store(q.Base, 4, 0x22222222)
	if _, err := in.Call("mem_swap", nil); err != nil {
		t.Fatal(err)
	}
	pv, _ := in.Mem.Load(p.Base, 4)
	qv, _ := in.Mem.Load(q.Base, 4)
	if pv != 0x22222222 || qv != 0x11111111 {
		t.Errorf("after swap: p=%#x q=%#x", pv, qv)
	}
}

func TestInterpAlloca(t *testing.T) {
	m := mustParse(t, paperprogs.AllocaExample)
	in := NewInterp(m)
	got, err := in.Call("alloca_example", []uint64{35})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("alloca_example(35) = %d, want 42", got)
	}
}

func TestInterpNSWOverflow(t *testing.T) {
	m := mustParse(t, paperprogs.NSWExample)
	in := NewInterp(m)
	if got, err := in.Call("nsw_example", []uint64{41}); err != nil || got != 42 {
		t.Fatalf("nsw_example(41) = %d, %v", got, err)
	}
	_, err := in.Call("nsw_example", []uint64{0x7FFFFFFF})
	var ub *UBError
	if !errors.As(err, &ub) || ub.Kind != "overflow" {
		t.Fatalf("nsw_example(INT_MAX) err = %v, want overflow UB", err)
	}
}

func TestInterpLoadNarrowOOBShape(t *testing.T) {
	// The correct program is in-bounds; loading 8 bytes at a+offset 4
	// would not be (that is what the buggy translation does — checked in
	// the isel tests). Here confirm the source program runs clean and
	// computes the expected narrowing.
	m := mustParse(t, paperprogs.LoadNarrow)
	in := NewInterp(m)
	a, _ := in.Layout.Find("@a")
	// a = 0x4455_66778899AABB truncated to 48 bits little-endian.
	for i, bv := range []uint64{0xBB, 0xAA, 0x99, 0x88, 0x77, 0x66} {
		in.Mem.Store(a.Base+uint64(i), 1, bv)
	}
	if _, err := in.Call("narrow_foo", nil); err != nil {
		t.Fatal(err)
	}
	b, _ := in.Layout.Find("@b")
	got, _ := in.Mem.Load(b.Base, 4)
	if got != 0x6677 {
		t.Errorf("b = %#x, want 0x6677 (upper 16 bits of a, zero-extended)", got)
	}
}

func TestInterpCalls(t *testing.T) {
	src := `
define i32 @double(i32 %x) {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}
define i32 @quad(i32 %x) {
entry:
  %a = call i32 @double(i32 %x)
  %b = call i32 @double(i32 %a)
  ret i32 %b
}
`
	m := mustParse(t, src)
	in := NewInterp(m)
	got, err := in.Call("quad", []uint64{5})
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("quad(5) = %d, want 20", got)
	}
}

func TestInterpExternals(t *testing.T) {
	m := mustParse(t, paperprogs.CallExample)
	in := NewInterp(m)
	in.Externals = map[string]func([]uint64) uint64{
		"callee": func(args []uint64) uint64 { return args[0] * args[1] },
	}
	got, err := in.Call("call_example", []uint64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	// sum=7, r=7*3=21, out=21+4=25
	if got != 25 {
		t.Errorf("call_example(3,4) = %d, want 25", got)
	}
	// Without externals the call must fail loudly.
	in2 := NewInterp(m)
	if _, err := in2.Call("call_example", []uint64{1, 2}); err == nil {
		t.Errorf("call to missing external succeeded")
	}
}

func TestInterpDivByZero(t *testing.T) {
	src := `
define i32 @div(i32 %a, i32 %b) {
entry:
  %r = udiv i32 %a, %b
  ret i32 %r
}
`
	m := mustParse(t, src)
	in := NewInterp(m)
	if got, err := in.Call("div", []uint64{10, 3}); err != nil || got != 3 {
		t.Fatalf("div(10,3) = %d, %v", got, err)
	}
	_, err := in.Call("div", []uint64{1, 0})
	var ub *UBError
	if !errors.As(err, &ub) || ub.Kind != "divzero" {
		t.Fatalf("div(1,0) err = %v, want divzero", err)
	}
}

func TestInterpGEPRuntimeIndex(t *testing.T) {
	src := `
@arr = external global [10 x i32]

define i32 @get(i64 %i) {
entry:
  %p = getelementptr inbounds [10 x i32], [10 x i32]* @arr, i64 0, i64 %i
  %v = load i32, i32* %p
  ret i32 %v
}
`
	m := mustParse(t, src)
	in := NewInterp(m)
	arr, _ := in.Layout.Find("@arr")
	for i := 0; i < 10; i++ {
		in.Mem.Store(arr.Base+uint64(4*i), 4, uint64(100+i))
	}
	for _, i := range []uint64{0, 3, 9} {
		got, err := in.Call("get", []uint64{i})
		if err != nil {
			t.Fatal(err)
		}
		if got != 100+i {
			t.Errorf("get(%d) = %d", i, got)
		}
	}
	// Out-of-bounds index traps.
	_, err := in.Call("get", []uint64{10})
	var ub *UBError
	if !errors.As(err, &ub) || ub.Kind != "oob" {
		t.Fatalf("get(10) err = %v, want oob", err)
	}
}

func TestInterpSelectAndCasts(t *testing.T) {
	src := `
define i64 @f(i32 %x, i1 %c) {
entry:
  %w = select i1 %c, i32 %x, i32 7
  %s = sext i32 %w to i64
  ret i64 %s
}
`
	m := mustParse(t, src)
	in := NewInterp(m)
	got, err := in.Call("f", []uint64{0xFFFFFFFF, 1}) // -1 sign extended
	if err != nil {
		t.Fatal(err)
	}
	if got != ^uint64(0) {
		t.Errorf("f(-1, true) = %#x", got)
	}
	got, err = in.Call("f", []uint64{123, 0})
	if err != nil || got != 7 {
		t.Errorf("f(123, false) = %d, %v", got, err)
	}
}
