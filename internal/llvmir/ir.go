package llvmir

import (
	"fmt"
	"strings"
)

// Module is a translation unit: globals plus function definitions and
// declarations.
type Module struct {
	Globals []*Global
	Funcs   []*Function
}

// Func returns the function named name (defined or declared).
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the global named name.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Global is a module-level variable. Type is the pointee type; the global
// symbol itself has type Type*.
type Global struct {
	Name     string // without the @ sigil
	Type     Type
	External bool
	Init     []byte // little-endian initial contents; nil means zero
}

// Function is a definition (Blocks non-nil) or declaration (Blocks nil).
type Function struct {
	Name   string // without the @ sigil
	Ret    Type
	Params []Param
	Blocks []*Block
}

// Param is a formal function parameter.
type Param struct {
	Name string // without the % sigil
	Ty   Type
}

// Defined reports whether the function has a body.
func (f *Function) Defined() bool { return len(f.Blocks) > 0 }

// Entry returns the entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// BlockByName returns the block with the given label.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// NumInstrs returns the total instruction count of the function, the code
// size metric used for the Figure 7 distribution.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Block is a basic block: phis (if any) first, exactly one terminator last.
type Block struct {
	Name   string
	Instrs []*Instr
}

// Term returns the block's terminator instruction.
func (b *Block) Term() *Instr { return b.Instrs[len(b.Instrs)-1] }

// Opcode enumerates the supported instructions.
type Opcode uint8

// Opcodes of the modeled LLVM IR subset.
const (
	OpAdd Opcode = iota
	OpSub
	OpMul
	OpUDiv
	OpURem
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	OpICmp
	OpTrunc
	OpZExt
	OpSExt
	OpBitcast
	OpIntToPtr
	OpPtrToInt
	OpGEP
	OpLoad
	OpStore
	OpAlloca
	OpBr     // unconditional: Labels[0]
	OpCondBr // Args[0] is the i1 condition; Labels[0]=true, Labels[1]=false
	OpRet    // Args[0] optional
	OpCall
	OpPhi
	OpSelect
)

var opNames = map[Opcode]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpUDiv: "udiv", OpURem: "urem",
	OpSDiv: "sdiv", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr",
	OpAShr: "ashr", OpICmp: "icmp", OpTrunc: "trunc", OpZExt: "zext",
	OpSExt: "sext", OpBitcast: "bitcast", OpIntToPtr: "inttoptr",
	OpPtrToInt: "ptrtoint", OpGEP: "getelementptr", OpLoad: "load",
	OpStore: "store", OpAlloca: "alloca", OpBr: "br", OpCondBr: "br",
	OpRet: "ret", OpCall: "call", OpPhi: "phi", OpSelect: "select",
}

// CmpPred is an icmp predicate.
type CmpPred uint8

// icmp predicates.
const (
	CmpEQ CmpPred = iota
	CmpNE
	CmpULT
	CmpULE
	CmpUGT
	CmpUGE
	CmpSLT
	CmpSLE
	CmpSGT
	CmpSGE
)

var predNames = map[CmpPred]string{
	CmpEQ: "eq", CmpNE: "ne", CmpULT: "ult", CmpULE: "ule", CmpUGT: "ugt",
	CmpUGE: "uge", CmpSLT: "slt", CmpSLE: "sle", CmpSGT: "sgt", CmpSGE: "sge",
}

var predByName = func() map[string]CmpPred {
	m := make(map[string]CmpPred, len(predNames))
	for k, v := range predNames {
		m[v] = k
	}
	return m
}()

// PhiIn is one incoming (value, predecessor) pair of a phi.
type PhiIn struct {
	Val  Value
	Pred string
}

// Instr is one instruction.
//
// Field usage by opcode:
//
//	arith/bitwise:  Ty operand type, Args[0..1], NSW for add/sub/mul
//	icmp:           Pred, Ty operand type, Args[0..1]; result is i1
//	casts:          SrcTy → Ty, Args[0]
//	gep:            SrcTy base pointee type, Args[0] base ptr, Args[1..] indices
//	load:           Ty loaded type, Args[0] pointer
//	store:          Ty stored type, Args[0] value, Args[1] pointer
//	alloca:         Ty allocated type
//	br/condbr:      Labels; Args[0] condition for condbr
//	ret:            Args[0] unless void
//	call:           Callee, Ty return type, Args arguments
//	phi:            Ty, Incoming
//	select:         Ty, Args[0] cond (i1), Args[1] true value, Args[2] false
type Instr struct {
	Op       Opcode
	Name     string // result register (without %); "" when none
	Ty       Type
	SrcTy    Type
	Args     []Value
	Labels   []string
	Incoming []PhiIn
	Pred     CmpPred
	NSW      bool
	Callee   string
}

// VKind classifies operand values.
type VKind uint8

// Value kinds.
const (
	VInt    VKind = iota // integer constant
	VReg                 // virtual register reference
	VGlobal              // address of a global plus a constant byte offset
)

// Value is an instruction operand.
type Value struct {
	Kind VKind
	Ty   Type
	Int  uint64 // VInt: the constant
	Name string // VReg / VGlobal
	Off  uint64 // VGlobal: folded constant-GEP byte offset
}

// IntV builds an integer-constant operand.
func IntV(ty Type, v uint64) Value { return Value{Kind: VInt, Ty: ty, Int: v} }

// RegV builds a register operand.
func RegV(ty Type, name string) Value { return Value{Kind: VReg, Ty: ty, Name: name} }

// GlobalV builds a global-address operand.
func GlobalV(ty Type, name string, off uint64) Value {
	return Value{Kind: VGlobal, Ty: ty, Name: name, Off: off}
}

func (v Value) String() string {
	switch v.Kind {
	case VInt:
		return fmt.Sprintf("%d", int64(v.Int))
	case VReg:
		return "%" + v.Name
	case VGlobal:
		if v.Off == 0 {
			return "@" + v.Name
		}
		return fmt.Sprintf("@%s+%d", v.Name, v.Off)
	}
	return "<bad value>"
}

// String renders the instruction in .ll-like syntax (diagnostic oriented;
// constant-GEP operands print in the folded @g+off form).
func (in *Instr) String() string {
	var b strings.Builder
	if in.Name != "" {
		fmt.Fprintf(&b, "%%%s = ", in.Name)
	}
	switch in.Op {
	case OpAdd, OpSub, OpMul, OpUDiv, OpURem, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr:
		nsw := ""
		if in.NSW {
			nsw = "nsw "
		}
		fmt.Fprintf(&b, "%s %s%s %s, %s", opNames[in.Op], nsw, in.Ty, in.Args[0], in.Args[1])
	case OpICmp:
		fmt.Fprintf(&b, "icmp %s %s %s, %s", predNames[in.Pred], in.Ty, in.Args[0], in.Args[1])
	case OpTrunc, OpZExt, OpSExt, OpBitcast, OpIntToPtr, OpPtrToInt:
		fmt.Fprintf(&b, "%s %s %s to %s", opNames[in.Op], in.SrcTy, in.Args[0], in.Ty)
	case OpGEP:
		fmt.Fprintf(&b, "getelementptr inbounds %s, %s %s", in.SrcTy, in.Args[0].Ty, in.Args[0])
		for _, a := range in.Args[1:] {
			fmt.Fprintf(&b, ", %s %s", a.Ty, a)
		}
	case OpLoad:
		fmt.Fprintf(&b, "load %s, %s %s", in.Ty, in.Args[0].Ty, in.Args[0])
	case OpStore:
		fmt.Fprintf(&b, "store %s %s, %s %s", in.Ty, in.Args[0], in.Args[1].Ty, in.Args[1])
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.Ty)
	case OpBr:
		fmt.Fprintf(&b, "br label %%%s", in.Labels[0])
	case OpCondBr:
		fmt.Fprintf(&b, "br i1 %s, label %%%s, label %%%s", in.Args[0], in.Labels[0], in.Labels[1])
	case OpRet:
		if len(in.Args) == 0 {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(&b, "ret %s %s", in.Ty, in.Args[0])
		}
	case OpCall:
		fmt.Fprintf(&b, "call %s @%s(", in.Ty, in.Callee)
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", a.Ty, a)
		}
		b.WriteByte(')')
	case OpPhi:
		fmt.Fprintf(&b, "phi %s ", in.Ty)
		for i, inc := range in.Incoming {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[ %s, %%%s ]", inc.Val, inc.Pred)
		}
	case OpSelect:
		fmt.Fprintf(&b, "select i1 %s, %s %s, %s %s", in.Args[0], in.Ty, in.Args[1], in.Ty, in.Args[2])
	default:
		fmt.Fprintf(&b, "<op %d>", in.Op)
	}
	return b.String()
}

// IsTerminator reports whether the instruction ends a block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpBr, OpCondBr, OpRet:
		return true
	}
	return false
}

// String renders the module in parseable .ll-subset syntax.
func (m *Module) String() string {
	var b strings.Builder
	for _, g := range m.Globals {
		if g.External {
			fmt.Fprintf(&b, "@%s = external global %s\n", g.Name, g.Type)
		} else {
			fmt.Fprintf(&b, "@%s = global %s zeroinitializer\n", g.Name, g.Type)
		}
	}
	for _, f := range m.Funcs {
		if !f.Defined() {
			fmt.Fprintf(&b, "declare %s @%s(%s)\n", f.Ret, f.Name, paramTypes(f))
			continue
		}
		fmt.Fprintf(&b, "define %s @%s(%s) {\n", f.Ret, f.Name, paramList(f))
		for i, blk := range f.Blocks {
			if i > 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "%s:\n", blk.Name)
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", in)
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func paramTypes(f *Function) string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.Ty.String()
	}
	return strings.Join(parts, ", ")
}

func paramList(f *Function) string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = fmt.Sprintf("%s %%%s", p.Ty, p.Name)
	}
	return strings.Join(parts, ", ")
}
