package llvmir

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/paperprogs"
	"repro/internal/smt"
)

// symRun symbolically executes f from entry with the parameters bound to
// fresh variables named after themselves, until all paths are final or
// error, and returns the terminal states.
func symRun(t *testing.T, m *Module, f *Function) (*smt.Context, []*state) {
	t.Helper()
	ctx := smt.NewContext()
	layout := BuildLayout(m, f)
	sem := NewSem(ctx, m, f, layout)
	presets := make(map[string]*smt.Term, len(f.Params))
	for _, p := range f.Params {
		bits, err := BitsOf(p.Ty)
		if err != nil {
			t.Fatal(err)
		}
		presets["%"+p.Name] = ctx.VarBV(p.Name, uint8(bits))
	}
	s0, err := sem.Instantiate("entry", presets, nil)
	if err != nil {
		t.Fatal(err)
	}
	var out []*state
	work := []core.State{s0}
	steps := 0
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		st := cur.(*state)
		if st.final || st.errKind != "" {
			out = append(out, st)
			continue
		}
		if steps++; steps > 10000 {
			t.Fatalf("symbolic execution did not terminate")
		}
		succs, err := sem.Step(cur)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		for _, n := range succs {
			if !n.PathCond().IsFalse() {
				work = append(work, n)
			}
		}
	}
	return ctx, out
}

// evalTerminal picks the terminal state whose path condition is true under
// the assignment and returns it.
func evalTerminal(t *testing.T, assign *smt.Assign, states []*state) *state {
	t.Helper()
	var hit *state
	for _, s := range states {
		ok, err := assign.EvalBool(s.pc)
		if err != nil {
			t.Fatalf("eval pc: %v", err)
		}
		if ok {
			if hit != nil {
				t.Fatalf("two terminal states satisfied (determinism violated)")
			}
			hit = s
		}
	}
	if hit == nil {
		t.Fatalf("no terminal state matched the assignment")
	}
	return hit
}

// TestSymbolicMatchesInterp is the differential property test: for the
// straight-line-with-branches function below, the symbolic semantics and
// the concrete interpreter must agree on every input.
func TestSymbolicMatchesInterp(t *testing.T) {
	src := `
define i32 @mix(i32 %x, i32 %y) {
entry:
  %c = icmp slt i32 %x, %y
  br i1 %c, label %a, label %b
a:
  %s = sub i32 %y, %x
  %m = mul i32 %s, 3
  br label %end
b:
  %xr = lshr i32 %x, 2
  %xo = or i32 %xr, %y
  br label %end
end:
  %r = phi i32 [ %m, %a ], [ %xo, %b ]
  %r2 = xor i32 %r, 257
  ret i32 %r2
}
`
	m := mustParse(t, src)
	f := m.Func("mix")
	ctx, terminals := symRun(t, m, f)
	_ = ctx
	check := func(x, y uint32) bool {
		in := NewInterp(m)
		want, err := in.Call("mix", []uint64{uint64(x), uint64(y)})
		if err != nil {
			return false
		}
		assign := smt.NewAssign()
		assign.BV["x"] = uint64(x)
		assign.BV["y"] = uint64(y)
		hit := evalTerminal(t, assign, terminals)
		got, err := assign.EvalBV(hit.ret)
		if err != nil {
			t.Fatalf("eval ret: %v", err)
		}
		return got == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolicLoopBounded(t *testing.T) {
	// The arithmetic-sequence loop unrolls fully for concrete bounds;
	// run it with n pinned by adding a path-condition assignment.
	m := mustParse(t, paperprogs.ArithmSeqSum)
	f := m.Func("arithm_seq_sum")
	ctx := smt.NewContext()
	layout := BuildLayout(m, f)
	sem := NewSem(ctx, m, f, layout)
	presets := map[string]*smt.Term{
		"%a0": ctx.VarBV("a0", 32),
		"%d":  ctx.VarBV("d", 32),
		"%n":  ctx.BV(3, 32), // concrete bound: terminates
	}
	s0, err := sem.Instantiate("entry", presets, nil)
	if err != nil {
		t.Fatal(err)
	}
	var finals []*state
	work := []core.State{s0}
	for len(work) > 0 && len(finals) < 10 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		st := cur.(*state)
		if st.final {
			finals = append(finals, st)
			continue
		}
		succs, err := sem.Step(cur)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range succs {
			if !n.PathCond().IsFalse() {
				work = append(work, n)
			}
		}
	}
	if len(finals) != 1 {
		t.Fatalf("got %d final states, want 1 (n=3 concrete)", len(finals))
	}
	// ret = a0 + (a0+d) + (a0+2d) = 3*a0 + 3*d
	assign := smt.NewAssign()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		a0 := uint64(rng.Uint32())
		d := uint64(rng.Uint32())
		assign.BV["a0"] = a0
		assign.BV["d"] = d
		got, err := assign.EvalBV(finals[0].ret)
		if err != nil {
			t.Fatal(err)
		}
		want := (3*a0 + 3*d) & 0xFFFFFFFF
		if got != want {
			t.Fatalf("sum(a0=%d,d=%d,n=3) = %d, want %d", a0, d, got, want)
		}
	}
}

func TestSymbolicMemoryOps(t *testing.T) {
	m := mustParse(t, paperprogs.MemSwap)
	f := m.Func("mem_swap")
	ctx, terminals := symRun(t, m, f)
	if len(terminals) != 1 {
		t.Fatalf("%d terminals", len(terminals))
	}
	fin := terminals[0]
	if fin.errKind != "" {
		t.Fatalf("mem_swap errored: %s", fin.errKind)
	}
	// Prove: final mem at @p equals initial mem at @q.
	layout := fin.mem.Layout()
	p, _ := layout.Find("@p")
	q, _ := layout.Find("@q")
	solver := smt.NewSolver(ctx)
	// The initial memory base is the term the state started from; read it
	// back through a fresh instantiation convention: initial base is the
	// unique VarMem the chain bottoms out in. Walk the chain.
	base := fin.mem.Term()
	for base.Kind == smt.KStore {
		base = base.Args[0]
	}
	init := fin.mem.WithTerm(base)
	proved, _, err := solver.Prove(ctx.Eq(fin.mem.Load(ctx.BV(p.Base, 64), 4), init.Load(ctx.BV(q.Base, 64), 4)))
	if err != nil || !proved {
		t.Fatalf("swap property: proved=%v err=%v", proved, err)
	}
}

func TestSymbolicNSWErrorBranch(t *testing.T) {
	m := mustParse(t, paperprogs.NSWExample)
	f := m.Func("nsw_example")
	_, terminals := symRun(t, m, f)
	var errStates, finals int
	for _, s := range terminals {
		if s.errKind == "overflow" {
			errStates++
		} else if s.final {
			finals++
		}
	}
	if errStates != 1 || finals != 1 {
		t.Fatalf("terminals: %d overflow, %d final; want 1 and 1", errStates, finals)
	}
	// The error path must be exactly x = INT_MAX.
	assign := smt.NewAssign()
	for _, s := range terminals {
		if s.errKind != "overflow" {
			continue
		}
		assign.BV["x"] = 0x7FFFFFFF
		ok, err := assign.EvalBool(s.pc)
		if err != nil || !ok {
			t.Errorf("overflow pc not satisfied at INT_MAX: %v", err)
		}
		assign.BV["x"] = 5
		ok, err = assign.EvalBool(s.pc)
		if err != nil || ok {
			t.Errorf("overflow pc satisfied at 5")
		}
	}
}

func TestSymbolicOOBErrorBranch(t *testing.T) {
	src := `
@arr = external global [10 x i32]

define i32 @get(i64 %i) {
entry:
  %p = getelementptr inbounds [10 x i32], [10 x i32]* @arr, i64 0, i64 %i
  %v = load i32, i32* %p
  ret i32 %v
}
`
	m := mustParse(t, src)
	f := m.Func("get")
	_, terminals := symRun(t, m, f)
	var sawOOB, sawOK bool
	assign := smt.NewAssign()
	for _, s := range terminals {
		switch {
		case s.errKind == "oob":
			sawOOB = true
			assign.BV["i"] = 12
			if ok, _ := assign.EvalBool(s.pc); !ok {
				t.Errorf("oob pc not satisfied at i=12")
			}
			assign.BV["i"] = 3
			if ok, _ := assign.EvalBool(s.pc); ok {
				t.Errorf("oob pc satisfied at i=3")
			}
		case s.final:
			sawOK = true
		}
	}
	if !sawOOB || !sawOK {
		t.Fatalf("terminals missing oob/final: oob=%v ok=%v", sawOOB, sawOK)
	}
}

func TestCallSitesAndLocations(t *testing.T) {
	m := mustParse(t, paperprogs.CallExample)
	f := m.Func("call_example")
	sites := CallSites(f)
	if len(sites) != 1 || sites[0].Callee != "callee" {
		t.Fatalf("sites = %+v", sites)
	}
	ctx := smt.NewContext()
	sem := NewSem(ctx, m, f, BuildLayout(m, f))
	s0, err := sem.Instantiate("entry", map[string]*smt.Term{
		"%x": ctx.VarBV("x", 32), "%y": ctx.VarBV("y", 32),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Step three times: arrival, add, then we are at the call.
	succ, err := sem.Step(s0)
	if err != nil || len(succ) != 1 {
		t.Fatalf("arrival step: %v", err)
	}
	succ, err = sem.Step(succ[0])
	if err != nil || len(succ) != 1 {
		t.Fatalf("step 1: %v", err)
	}
	if got := succ[0].Loc(); got != "call:callee:0:before" {
		t.Fatalf("loc = %q, want call:callee:0:before", got)
	}
	// arg observables at the call
	a0, err := succ[0].Observable("arg0")
	if err != nil {
		t.Fatal(err)
	}
	solver := smt.NewSolver(ctx)
	proved, _, err := solver.Prove(ctx.Eq(a0, ctx.Add(ctx.VarBV("x", 32), ctx.VarBV("y", 32))))
	if err != nil || !proved {
		t.Fatalf("arg0 = x+y: %v %v", proved, err)
	}
	// Stepping the call without a sync point must fail.
	if _, err := sem.Step(succ[0]); err == nil {
		t.Fatalf("stepping a call site succeeded")
	}
	// after-call instantiation works and resumes.
	sAfter, err := sem.Instantiate("call:callee:0:after", map[string]*smt.Term{
		"%r": ctx.VarBV("r", 32), "%y": ctx.VarBV("y", 32),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sAfter.Loc(); got != "call:callee:0:after" {
		t.Fatalf("after-call loc = %q", got)
	}
	succ2, err := sem.Step(sAfter) // commit the after-call position
	if err != nil || len(succ2) != 1 {
		t.Fatalf("step after call: %v", err)
	}
	succ2, err = sem.Step(succ2[0])
	if err != nil || len(succ2) != 1 {
		t.Fatalf("step add: %v", err)
	}
	succ3, err := sem.Step(succ2[0])
	if err != nil || len(succ3) != 1 || !succ3[0].IsFinal() {
		t.Fatalf("final: %v", err)
	}
}

func TestObservableWidths(t *testing.T) {
	m := mustParse(t, paperprogs.CallExample)
	f := m.Func("call_example")
	sem := NewSem(smt.NewContext(), m, f, BuildLayout(m, f))
	for _, tc := range []struct {
		loc  core.Location
		name string
		want uint8
	}{
		{"entry", "%x", 32},
		{"entry", "ret", 32},
		{"call:callee:0:before", "arg0", 32},
		{"call:callee:0:before", "arg1", 32},
	} {
		got, err := sem.ObservableWidth(tc.loc, tc.name)
		if err != nil {
			t.Errorf("ObservableWidth(%s, %s): %v", tc.loc, tc.name, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ObservableWidth(%s, %s) = %d, want %d", tc.loc, tc.name, got, tc.want)
		}
	}
	if _, err := sem.ObservableWidth("entry", "%ghost"); err == nil {
		t.Errorf("width of unknown register did not error")
	}
}
